package alex_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	alex "repro"
	"repro/internal/datasets"
)

// batchOptionSets covers the gapped-array default, the PMA layout, and
// split-on-insert — the configurations whose batch paths differ.
func batchOptionSets() [][]alex.Option {
	return [][]alex.Option{
		nil,
		{alex.WithLayout(alex.PackedMemoryArray)},
		{alex.WithSplitOnInsert(), alex.WithMaxKeysPerLeaf(512)},
	}
}

// assertSameContents fails unless both indexes hold identical elements.
func assertSameContents(t *testing.T, name string, got, want *alex.Index) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: Len = %d, want %d", name, got.Len(), want.Len())
	}
	gk, gv := got.ScanN(-1e308, got.Len()+1)
	wk, wv := want.ScanN(-1e308, want.Len()+1)
	for i := range gk {
		if gk[i] != wk[i] || gv[i] != wv[i] {
			t.Fatalf("%s: element %d = (%v,%v), want (%v,%v)", name, i, gk[i], gv[i], wk[i], wv[i])
		}
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

// TestBatchEqualsLoop verifies the acceptance property directly: batch
// results are identical to looped single-op results, on random,
// sorted, duplicate-carrying, and empty batches.
func TestBatchEqualsLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := datasets.GenLongitudes(20000, 1)
	fresh := datasets.GenLongitudes(30000, 2)[20000:]

	cases := map[string][]float64{
		"empty":  {},
		"random": append(append([]float64(nil), fresh[:4000]...), base[:300]...),
		"sorted": datasets.Sorted(append(append([]float64(nil), fresh[4000:8000]...), base[300:600]...)),
		"duplicate": func() []float64 {
			ks := append([]float64(nil), fresh[8000:9000]...)
			ks = append(ks, ks[:250]...) // intra-batch duplicates
			return ks
		}(),
	}

	for _, opts := range batchOptionSets() {
		for name, batch := range cases {
			pays := make([]uint64, len(batch))
			for i := range pays {
				pays[i] = uint64(rng.Intn(1 << 30))
			}
			batchIdx, err := alex.Load(base, nil, opts...)
			if err != nil {
				t.Fatal(err)
			}
			loopIdx, err := alex.Load(base, nil, opts...)
			if err != nil {
				t.Fatal(err)
			}

			gotN := batchIdx.InsertBatch(batch, pays)
			wantN := 0
			for i := range batch {
				if loopIdx.Insert(batch[i], pays[i]) {
					wantN++
				}
			}
			if gotN != wantN {
				t.Fatalf("%s: InsertBatch = %d, loop = %d", name, gotN, wantN)
			}
			assertSameContents(t, name+"/insert", batchIdx, loopIdx)

			probe := append(append([]float64(nil), batch...), -1, -2, 1e300)
			vals, found := batchIdx.GetBatch(probe)
			if len(vals) != len(probe) || len(found) != len(probe) {
				t.Fatalf("%s: GetBatch result lengths %d/%d", name, len(vals), len(found))
			}
			for i, k := range probe {
				wv, wok := loopIdx.Get(k)
				if vals[i] != wv || found[i] != wok {
					t.Fatalf("%s: GetBatch[%d] = (%v,%v), Get = (%v,%v)", name, i, vals[i], found[i], wv, wok)
				}
			}

			del := append(append([]float64(nil), batch...), -1, -2)
			gotD := batchIdx.DeleteBatch(del)
			wantD := 0
			for _, k := range del {
				if loopIdx.Delete(k) {
					wantD++
				}
			}
			if gotD != wantD {
				t.Fatalf("%s: DeleteBatch = %d, loop = %d", name, gotD, wantD)
			}
			assertSameContents(t, name+"/delete", batchIdx, loopIdx)
		}
	}
}

func TestMergeEqualsLoop(t *testing.T) {
	base := datasets.GenLongitudes(15000, 3)
	batch := datasets.GenLongitudes(40000, 4)[15000:]
	batch = append(batch, base[:500]...) // overwrites
	batch = append(batch, batch[0])      // duplicate: last occurrence wins
	pays := make([]uint64, len(batch))
	for i := range pays {
		pays[i] = uint64(i) + 7
	}
	for _, opts := range batchOptionSets() {
		mergeIdx, err := alex.Load(base, nil, opts...)
		if err != nil {
			t.Fatal(err)
		}
		loopIdx, err := alex.Load(base, nil, opts...)
		if err != nil {
			t.Fatal(err)
		}
		gotN := mergeIdx.Merge(batch, pays)
		wantN := 0
		for i := range batch {
			if loopIdx.Insert(batch[i], pays[i]) {
				wantN++
			}
		}
		if gotN != wantN {
			t.Fatalf("Merge = %d, loop = %d", gotN, wantN)
		}
		assertSameContents(t, "merge", mergeIdx, loopIdx)
	}

	// Merge into an empty index is a bulk load.
	empty := alex.New()
	keys := datasets.Sorted(datasets.GenLongitudes(5000, 5))
	if n := empty.Merge(keys, nil); n != len(keys) {
		t.Fatalf("Merge into empty = %d, want %d", n, len(keys))
	}
	if err := empty.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncBatchConcurrent exercises the SyncIndex batch methods under
// concurrent readers and a batch writer; run with -race it doubles as
// the data-race check for the one-lock-per-batch paths.
func TestSyncBatchConcurrent(t *testing.T) {
	base := datasets.GenLongitudes(20000, 6)
	s, err := alex.LoadSync(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseSet := make(map[float64]bool, len(base))
	for _, k := range base {
		baseSet[k] = true
	}
	stream := make([]float64, 0, 40000)
	for _, k := range datasets.GenLongitudes(60000, 7)[20000:] {
		if !baseSet[k] { // the writer deletes stream keys; keep base keys visible to readers
			stream = append(stream, k)
		}
	}
	sort.Float64s(stream)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			probe := append([]float64(nil), base[r*100:r*100+200]...)
			sort.Float64s(probe)
			for {
				select {
				case <-stop:
					return
				default:
				}
				vals, found := s.GetBatch(probe)
				for i := range probe {
					if !found[i] {
						t.Errorf("reader %d: key %v vanished", r, probe[i])
						return
					}
					_ = vals[i]
				}
				s.Len()
			}
		}(r)
	}

	const chunk = 500
	for lo := 0; lo+chunk <= len(stream); lo += chunk {
		ks := stream[lo : lo+chunk]
		ps := make([]uint64, chunk)
		switch (lo / chunk) % 3 {
		case 0:
			s.InsertBatch(ks, ps)
		case 1:
			s.Merge(ks, ps)
		default:
			s.InsertBatch(ks, ps)
			s.DeleteBatch(ks[:chunk/2])
		}
	}
	close(stop)
	wg.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
