package alex_test

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	alex "repro"
	"repro/internal/datasets"
)

// shardedFixture loads n lognormal keys into a ShardedIndex with the
// given shard count and returns the sorted keys for reference.
func shardedFixture(t *testing.T, shards, n int) (*alex.ShardedIndex, []float64) {
	t.Helper()
	keys := datasets.GenLognormal(n, 17)
	payloads := make([]uint64, n)
	for i := range payloads {
		payloads[i] = uint64(i)
	}
	s, err := alex.LoadSharded(shards, keys, payloads)
	if err != nil {
		t.Fatal(err)
	}
	return s, datasets.Sorted(keys)
}

func TestShardedPointOps(t *testing.T) {
	s, sorted := shardedFixture(t, 4, 5000)
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	if s.Len() != len(sorted) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(sorted))
	}
	for _, k := range sorted[:200] {
		if !s.Contains(k) {
			t.Fatalf("missing key %v", k)
		}
	}
	if _, ok := s.Get(sorted[0] - 1); ok {
		t.Fatal("found absent key")
	}
	// Update round-trips.
	if !s.Update(sorted[10], 999) {
		t.Fatal("update failed")
	}
	if v, _ := s.Get(sorted[10]); v != 999 {
		t.Fatalf("payload = %d after update", v)
	}
	// Insert new, delete old — across the whole key range so every
	// shard is exercised.
	for i, k := range sorted {
		if i%7 == 0 {
			if !s.Delete(k) {
				t.Fatalf("delete %v failed", k)
			}
		}
	}
	for i, k := range sorted {
		want := i%7 != 0
		if s.Contains(k) != want {
			t.Fatalf("Contains(%v) = %v after deletes", k, !want)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedRouterBalance(t *testing.T) {
	s, _ := shardedFixture(t, 8, 8000)
	lens := s.ShardLens()
	if len(lens) != 8 {
		t.Fatalf("lens = %v", lens)
	}
	total := 0
	for _, l := range lens {
		total += l
	}
	if total != 8000 {
		t.Fatalf("total = %d", total)
	}
	// Quantile boundaries put an equal share (±1) in every shard even
	// though the lognormal key *range* is wildly skewed.
	for i, l := range lens {
		if l < 999 || l > 1001 {
			t.Fatalf("shard %d holds %d of 8000; router is not quantile-balanced: %v", i, l, lens)
		}
	}
}

func TestShardedMinMax(t *testing.T) {
	s, sorted := shardedFixture(t, 5, 3000)
	if k, ok := s.MinKey(); !ok || k != sorted[0] {
		t.Fatalf("MinKey = %v %v", k, ok)
	}
	if k, ok := s.MaxKey(); !ok || k != sorted[len(sorted)-1] {
		t.Fatalf("MaxKey = %v %v", k, ok)
	}
	empty := alex.NewSharded(3)
	if _, ok := empty.MinKey(); ok {
		t.Fatal("MinKey on empty")
	}
	if _, ok := empty.MaxKey(); ok {
		t.Fatal("MaxKey on empty")
	}
	if empty.Len() != 0 {
		t.Fatal("Len on empty")
	}
}

func TestShardedBatchMatchesLoop(t *testing.T) {
	const n = 6000
	keys := datasets.GenLongitudes(2*n, 23)
	init, extra := keys[:n], datasets.Sorted(keys[n:])
	payloads := make([]uint64, len(extra))
	for i := range payloads {
		payloads[i] = uint64(i) * 3
	}

	s, err := alex.LoadSharded(4, init, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := alex.LoadSync(init, nil)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := s.InsertBatch(extra, payloads), ref.InsertBatch(extra, payloads); got != want {
		t.Fatalf("InsertBatch = %d, want %d", got, want)
	}
	probe := append(append([]float64{}, extra...), init[:100]...)
	probe = append(probe, -1e9) // absent
	gotV, gotF := s.GetBatch(probe)
	wantV, wantF := ref.GetBatch(probe)
	for i := range probe {
		if gotF[i] != wantF[i] || (gotF[i] && gotV[i] != wantV[i]) {
			t.Fatalf("GetBatch[%d] = (%d,%v), want (%d,%v)", i, gotV[i], gotF[i], wantV[i], wantF[i])
		}
	}
	if got, want := s.DeleteBatch(extra[:n/2]), ref.DeleteBatch(extra[:n/2]); got != want {
		t.Fatalf("DeleteBatch = %d, want %d", got, want)
	}
	if got, want := s.Merge(extra, payloads), ref.Merge(extra, payloads); got != want {
		t.Fatalf("Merge = %d, want %d", got, want)
	}
	if got, want := s.Len(), ref.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedBatchEmptyAndMismatch(t *testing.T) {
	s := alex.NewSharded(4)
	if v, f := s.GetBatch(nil); len(v) != 0 || len(f) != 0 {
		t.Fatal("GetBatch(nil) not empty")
	}
	if s.InsertBatch(nil, nil) != 0 || s.DeleteBatch(nil) != 0 || s.Merge(nil, nil) != 0 {
		t.Fatal("empty batches not zero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("InsertBatch length mismatch did not panic")
		}
	}()
	s.InsertBatch([]float64{1, 2}, []uint64{1})
}

func TestShardedScanStitchesShards(t *testing.T) {
	s, sorted := shardedFixture(t, 6, 4000)
	// Full scan returns the global key order across all shard seams.
	var got []float64
	n := s.Scan(math.Inf(-1), func(k float64, v uint64) bool {
		got = append(got, k)
		return true
	})
	if n != len(sorted) || len(got) != len(sorted) {
		t.Fatalf("scan visited %d, want %d", n, len(sorted))
	}
	for i := range got {
		if got[i] != sorted[i] {
			t.Fatalf("scan[%d] = %v, want %v", i, got[i], sorted[i])
		}
	}
	// Mid-range start and early stop.
	start := sorted[len(sorted)/2]
	count := 0
	s.Scan(start, func(k float64, v uint64) bool {
		if k < start {
			t.Fatalf("scan from %v visited smaller key %v", start, k)
		}
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("bounded scan visited %d", count)
	}
	// ScanN across a shard boundary: compare against the sorted slice.
	from := len(sorted)/3 - 5
	ks, _ := s.ScanN(sorted[from], 500)
	if len(ks) != 500 {
		t.Fatalf("ScanN returned %d", len(ks))
	}
	for i, k := range ks {
		if k != sorted[from+i] {
			t.Fatalf("ScanN[%d] = %v, want %v", i, k, sorted[from+i])
		}
	}
	if ks, vs := s.ScanN(sorted[0], 0); len(ks) != 0 || len(vs) != 0 {
		t.Fatal("ScanN max=0 returned elements")
	}
}

func TestShardedIterator(t *testing.T) {
	s, sorted := shardedFixture(t, 7, 3000)
	it := s.Iter()
	if it.Valid() {
		t.Fatal("fresh iterator valid")
	}
	i := 0
	for it.Next() {
		if it.Key() != sorted[i] {
			t.Fatalf("iter[%d] = %v, want %v", i, it.Key(), sorted[i])
		}
		i++
	}
	if i != len(sorted) || it.Valid() {
		t.Fatalf("iterated %d of %d", i, len(sorted))
	}
	// IterFrom starts at the lower bound.
	from := len(sorted) / 2
	it = s.IterFrom(sorted[from])
	for j := 0; j < 20; j++ {
		if !it.Next() {
			t.Fatal("IterFrom exhausted early")
		}
		if it.Key() != sorted[from+j] {
			t.Fatalf("IterFrom[%d] = %v, want %v", j, it.Key(), sorted[from+j])
		}
	}
	// An iterator on an empty index terminates immediately.
	if alex.NewSharded(2).Iter().Next() {
		t.Fatal("empty iterator advanced")
	}
}

func TestShardedColdStartRetrains(t *testing.T) {
	s := alex.NewSharded(4, alex.WithSplitOnInsert())
	// Cold start: everything routes to shard 0 until the router has
	// enough keys to learn quantile boundaries.
	keys := datasets.GenYCSB(6000, 31)
	for i, k := range keys {
		s.Insert(k, uint64(i))
	}
	// The drift-triggered retrain runs on a background goroutine; give
	// it a moment to land.
	deadline := time.Now().Add(5 * time.Second)
	for s.Retrains() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Retrains() == 0 {
		t.Fatal("router never retrained after 6000 skewed inserts")
	}
	// A manual Rebalance waits for any in-flight retrain and leaves a
	// deterministic balanced state to assert on.
	s.Rebalance()
	lens := s.ShardLens()
	total := 0
	for _, l := range lens {
		total += l
	}
	if total != s.Len() || total != 6000 {
		t.Fatalf("lens %v sum %d, want %d", lens, total, 6000)
	}
	// After a retrain the biggest shard must be near its fair share.
	biggest := 0
	for _, l := range lens {
		if l > biggest {
			biggest = l
		}
	}
	if biggest > 2*total/len(lens)+1024 {
		t.Fatalf("router left shards skewed: %v", lens)
	}
	// Contents survived the re-partitions.
	for i, k := range keys {
		if v, ok := s.Get(k); !ok || v != uint64(i) {
			t.Fatalf("key %v lost after retrains: %d %v", k, v, ok)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedManualRebalance(t *testing.T) {
	s, _ := shardedFixture(t, 4, 4000)
	// Skew the index: merge a dense block far above every boundary.
	block := make([]float64, 4000)
	vals := make([]uint64, 4000)
	for i := range block {
		block[i] = 1e6 + float64(i)
		vals[i] = uint64(i)
	}
	s.Merge(block, vals)
	s.Rebalance()
	if s.Retrains() == 0 {
		t.Fatal("manual Rebalance did not retrain")
	}
	lens := s.ShardLens()
	for i, l := range lens {
		if l < 1999 || l > 2001 {
			t.Fatalf("shard %d holds %d of 8000 after Rebalance: %v", i, l, lens)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedLoadErrors(t *testing.T) {
	if _, err := alex.LoadSharded(4, []float64{1, 2, 2, 3}, nil); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if _, err := alex.LoadSharded(4, []float64{1, math.NaN()}, nil); err == nil {
		t.Fatal("NaN key accepted")
	}
	if _, err := alex.LoadSharded(4, []float64{1, math.Inf(1)}, nil); err == nil {
		t.Fatal("Inf key accepted")
	}
	if _, err := alex.LoadSharded(4, []float64{1, 2}, []uint64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// More shards than keys: surplus shards sit empty but everything
	// still works.
	s, err := alex.LoadSharded(8, []float64{5, 1, 3}, []uint64{50, 10, 30})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if v, ok := s.Get(3); !ok || v != 30 {
		t.Fatalf("Get(3) = %d %v", v, ok)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedSerializationRoundTrip(t *testing.T) {
	s, sorted := shardedFixture(t, 4, 2000)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// The stream carries the configuration: restoring an index built
	// with a non-default option keeps that option without re-passing it.
	keys := []float64{1, 2, 3, 4}
	tuned, err := alex.LoadSharded(2, keys, nil, alex.WithMaxKeysPerLeaf(128))
	if err != nil {
		t.Fatal(err)
	}
	var tbuf bytes.Buffer
	if _, err := tuned.WriteTo(&tbuf); err != nil {
		t.Fatal(err)
	}
	var plainBuf bytes.Buffer
	ref, _ := alex.Load(keys, nil, alex.WithMaxKeysPerLeaf(128))
	if _, err := ref.WriteTo(&plainBuf); err != nil {
		t.Fatal(err)
	}
	// Identical contents and config serialize to identical streams.
	if !bytes.Equal(tbuf.Bytes(), plainBuf.Bytes()) {
		t.Fatal("sharded WriteTo lost the configured options")
	}
	// Restore with a different shard count.
	back, err := alex.ReadFromSharded(bytes.NewReader(buf.Bytes()), 6)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumShards() != 6 || back.Len() != len(sorted) {
		t.Fatalf("restored shards=%d len=%d", back.NumShards(), back.Len())
	}
	for i := 0; i < len(sorted); i += 37 {
		v1, _ := s.Get(sorted[i])
		v2, ok := back.Get(sorted[i])
		if !ok || v1 != v2 {
			t.Fatalf("round trip lost %v: %d vs %d (%v)", sorted[i], v1, v2, ok)
		}
	}
	// The single-index reader understands the same stream.
	plain, err := alex.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != len(sorted) {
		t.Fatalf("plain reader len = %d", plain.Len())
	}
}

func TestShardedStats(t *testing.T) {
	s, _ := shardedFixture(t, 4, 4000)
	st := s.Stats()
	if st.NumLeaves == 0 || st.Height < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if s.IndexSizeBytes() <= 0 || s.DataSizeBytes() <= 0 {
		t.Fatal("size accounting empty")
	}
}

// TestShardedConcurrentStress runs parallel readers, writers, batch
// callers and iterators against one ShardedIndex, with router retrains
// forced into the mix; run under -race in CI. Correctness bar: no
// races, no lost committed keys, iterators see sorted output.
func TestShardedConcurrentStress(t *testing.T) {
	s, sorted := shardedFixture(t, 4, 4000)
	stress(t, s, sorted)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncConcurrentStress runs the same mixed stress against the
// coarse-grained SyncIndex wrapper.
func TestSyncConcurrentStress(t *testing.T) {
	keys := datasets.GenLognormal(4000, 17)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i)
	}
	s, err := alex.LoadSync(keys, payloads, alex.WithSplitOnInsert())
	if err != nil {
		t.Fatal(err)
	}
	stress(t, s, datasets.Sorted(keys))
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// stressIndex is the surface the stress harness drives; both wrappers
// implement it directly. Ordered reads go through Scan/ScanN, which are
// concurrency-safe on both (ShardedIndex.Iter is additionally exercised
// in TestShardedIteratorUnderWrites; Index.Iterator is not safe under
// mutation, so it stays out of the shared harness).
type stressIndex interface {
	Get(key float64) (uint64, bool)
	Insert(key float64, payload uint64) bool
	Delete(key float64) bool
	GetBatch(keys []float64) ([]uint64, []bool)
	InsertBatch(keys []float64, payloads []uint64) int
	Scan(start float64, visit func(key float64, payload uint64) bool) int
	ScanN(start float64, max int) ([]float64, []uint64)
	Len() int
}

func stress(t *testing.T, idx stressIndex, stable []float64) {
	t.Helper()
	const (
		workersPerRole = 3
		opsPerWorker   = 1500
	)
	// stable keys are loaded and never deleted; fresh keys are disjoint
	// per writer.
	var wg sync.WaitGroup
	for w := 0; w < workersPerRole; w++ {
		// Writer: single-key inserts and deletes of its own key block,
		// well outside the stable range.
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := 1e7 * float64(w+1)
			for i := 0; i < opsPerWorker; i++ {
				k := base + float64(i%512)
				if i%3 == 2 {
					idx.Delete(k)
				} else {
					idx.Insert(k, uint64(i))
				}
			}
		}(w)
		// Batch writer: sorted sub-batches of a disjoint block.
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := 1e9 * float64(w+1)
			const batch = 64
			keys := make([]float64, batch)
			vals := make([]uint64, batch)
			for i := 0; i < opsPerWorker/batch; i++ {
				for j := range keys {
					keys[j] = base + float64(i*batch+j)
					vals[j] = uint64(j)
				}
				idx.InsertBatch(keys, vals)
			}
		}(w)
		// Reader: point gets of stable keys (must always be present)
		// plus batch gets.
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerWorker; i++ {
				k := stable[rng.Intn(len(stable))]
				if _, ok := idx.Get(k); !ok {
					t.Errorf("stable key %v missing during stress", k)
					return
				}
				if i%64 == 0 {
					probe := stable[:100]
					_, found := idx.GetBatch(probe)
					for j, ok := range found {
						if !ok {
							t.Errorf("stable key %v missing from batch", probe[j])
							return
						}
					}
				}
			}
		}(w)
		// Iterator / scanner: ordered reads while the index mutates.
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				prev := math.Inf(-1)
				n := 0
				idx.Scan(math.Inf(-1), func(k float64, v uint64) bool {
					if k < prev {
						t.Errorf("scan went backwards: %v after %v", k, prev)
						return false
					}
					prev = k
					n++
					return n < 2000
				})
				ks, _ := idx.ScanN(stable[len(stable)/2], 100)
				if !sort.Float64sAreSorted(ks) {
					t.Errorf("ScanN out of order")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// All stable keys survived.
	for _, k := range stable {
		if _, ok := idx.Get(k); !ok {
			t.Fatalf("stable key %v lost", k)
		}
	}
}

// TestShardedIteratorUnderWrites drives the chunked sharded iterator
// concurrently with writers; it must stay ordered and terminate.
func TestShardedIteratorUnderWrites(t *testing.T) {
	s, _ := shardedFixture(t, 4, 3000)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Insert(2e6+float64(i%4096), uint64(i))
			i++
		}
	}()
	for round := 0; round < 20; round++ {
		it := s.Iter()
		prev := math.Inf(-1)
		for it.Next() {
			if it.Key() < prev {
				t.Fatalf("iterator went backwards: %v after %v", it.Key(), prev)
			}
			prev = it.Key()
		}
	}
	close(stop)
	wg.Wait()
}
