package main_test

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// run executes the alexvet CLI from the repository root via go run and
// returns its combined output and exit code.
func run(t *testing.T, args ...string) (string, int) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", append([]string{"run", "./cmd/alexvet"}, args...)...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var exit *exec.ExitError
	if errors.As(err, &exit) {
		return string(out), exit.ExitCode()
	}
	t.Fatalf("go run ./cmd/alexvet %v: %v\n%s", args, err, out)
	return "", 0
}

// TestAlexvetSeededViolationFailsBuild is the CI-gate demonstration:
// pointing alexvet at a fixture package seeded with violations must
// exit non-zero, so a real violation anywhere in ./... fails the lint
// job the same way.
func TestAlexvetSeededViolationFails(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI")
	}
	out, code := run(t, "./internal/lint/testdata/src/atomicfield")
	if code != 1 {
		t.Fatalf("seeded violation: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "[atomicfield]") {
		t.Errorf("seeded violation: findings missing the [atomicfield] tag:\n%s", out)
	}
}

// TestAlexvetCleanPackageExitsZero checks the other half of the gate
// contract on a small always-clean package.
func TestAlexvetCleanPackageExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI")
	}
	out, code := run(t, "./internal/epoch")
	if code != 0 {
		t.Fatalf("clean package: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "0 blocking finding(s)") {
		t.Errorf("clean package: summary line missing:\n%s", out)
	}
}

// TestAlexvetListCatalog checks -list names every analyzer of the
// suite, which keeps docs/static-analysis.md honest about the catalog.
func TestAlexvetListCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI")
	}
	out, code := run(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d\n%s", code, out)
	}
	for _, name := range []string{"fsbypass", "epochpair", "atomicfield", "optparity", "errwrap", "locknest", "fieldalign"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out)
		}
	}
}
