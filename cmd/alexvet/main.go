// Command alexvet runs the project's custom static analyzers
// (internal/lint) over the repository and reports every violated
// invariant. It is the blocking lint gate CI runs:
//
//	go run ./cmd/alexvet ./...
//
// Each analyzer mechanically enforces one contract from
// docs/concurrency.md or docs/failure-model.md — the faultfs seam
// (fsbypass), epoch pin pairing (epochpair), atomic structural
// references (atomicfield), race/!race surface parity (optparity),
// the durability error contract (errwrap), and the shard lock-order
// rule (locknest) — plus an advisory struct-layout pass (fieldalign).
// See docs/static-analysis.md for the catalog and the
// //alexvet:ignore suppression convention.
//
// Exit status: 0 clean (advisory findings allowed), 1 blocking
// findings, 2 load or type-check failure. -q prints only the summary;
// -list prints the analyzer catalog; -strict-layout also blocks on
// fieldalign findings (the layout ratchet).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	quiet := flag.Bool("q", false, "print only the summary line")
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	strictLayout := flag.Bool("strict-layout", false, "treat advisory fieldalign findings as blocking")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			kind := "blocking"
			if a.Advisory {
				kind = "advisory"
			}
			fmt.Printf("%-12s %-9s %s\n", a.Name, kind, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alexvet: %v\n", err)
		os.Exit(2)
	}
	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "alexvet: %v\n", err)
		os.Exit(2)
	}

	loader := lint.NewLoader()
	blocking, advisory := 0, 0
	loadFailed := false
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alexvet: %s: %v\n", dir, err)
			loadFailed = true
			continue
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "alexvet: %s: type error: %v\n", pkg.Path, terr)
			loadFailed = true
		}
		rel, err := filepath.Rel(root, pkg.Dir)
		if err != nil {
			rel = dir
		}
		if rel == "." {
			rel = ""
		}
		for _, a := range analyzers {
			diags, err := lint.RunScoped(a, pkg, filepath.ToSlash(rel))
			if err != nil {
				fmt.Fprintf(os.Stderr, "alexvet: %v\n", err)
				loadFailed = true
				continue
			}
			for _, d := range diags {
				if d.Advisory && !*strictLayout {
					advisory++
				} else {
					blocking++
				}
				if !*quiet {
					pos := pkg.Fset.Position(d.Pos)
					tag := ""
					if d.Advisory {
						tag = " advisory:"
					}
					fmt.Printf("%s:%d:%d: [%s]%s %s\n", relPath(root, pos.Filename), pos.Line, pos.Column, d.Analyzer, tag, d.Message)
				}
			}
		}
	}
	fmt.Printf("alexvet: %d blocking finding(s), %d advisory\n", blocking, advisory)
	switch {
	case loadFailed:
		os.Exit(2)
	case blocking > 0:
		os.Exit(1)
	}
}

// relPath renders a file path relative to the working directory for
// compact, clickable findings.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return path
}
