// Command alexbench regenerates the tables and figures of the paper's
// evaluation (§5). Each experiment is a subcommand; `all` runs the full
// suite in the paper's order.
//
// Usage:
//
//	alexbench [flags] <experiment>
//
// Experiments: table1, fig4, fig4a, fig4b, fig4c, fig4d, fig5a, fig5b,
// fig5c, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, all, plus
// extensions beyond the paper (ablation-leaf, ablation-fanout,
// ablation-split, ext-delete, ext-theory, ext-apma, ext-disk,
// ext-batch — the batched-workload mode comparing sorted batch calls
// against single-key loops — and ext-concurrent, mixed read/write
// workloads at 1/4/8 goroutines comparing the single-mutex SyncIndex
// against the key-space-sharded ShardedIndex).
//
// Flags scale the run; the defaults finish on a laptop in minutes while
// preserving the comparative shapes of the paper's results:
//
//	-keys N    bulk-load size for read-only experiments (default 400000)
//	-rwkeys N  bulk-load size for read-write experiments (default 100000)
//	-ops N     operations per run (default 200000)
//	-seed N    dataset/workload seed (default 1)
//	-tune      grid-search B+Tree page size and Learned Index model
//	           count as §5.1 does (slower)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	opts := bench.DefaultOptions()
	flag.IntVar(&opts.ReadOnlyInit, "keys", opts.ReadOnlyInit, "bulk-load size for read-only experiments")
	flag.IntVar(&opts.RWInit, "rwkeys", opts.RWInit, "bulk-load size for read-write experiments")
	flag.IntVar(&opts.Ops, "ops", opts.Ops, "operations per run")
	flag.Int64Var(&opts.Seed, "seed", opts.Seed, "dataset and workload seed")
	flag.BoolVar(&opts.TuneBaselines, "tune", false, "grid-search baseline parameters (slower)")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	start := time.Now()
	switch {
	case name == "all":
		bench.RunAll(os.Stdout, opts)
	case bench.Experiments[name] != nil:
		bench.Experiments[name](os.Stdout, opts)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", name)
		usage()
		os.Exit(2)
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}

func usage() {
	names := make([]string, 0, len(bench.Experiments)+1)
	for n := range bench.Experiments {
		names = append(names, n)
	}
	names = append(names, "all")
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "usage: alexbench [flags] <experiment>\n\nexperiments: %s\n\nflags:\n",
		strings.Join(names, ", "))
	flag.PrintDefaults()
}
