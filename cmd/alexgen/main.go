// Command alexgen generates and inspects the synthetic evaluation
// datasets (Table 1 / Appendix C). It can describe a dataset's shape,
// print CDF samples for plotting, or write raw keys to a file (one
// per line) for use by external tooling.
//
// Usage:
//
//	alexgen [-n N] [-seed S] describe <dataset>
//	alexgen [-n N] [-seed S] [-points P] cdf <dataset>
//	alexgen [-n N] [-seed S] dump <dataset> <file>
//
// Datasets: longitudes, longlat, lognormal, ycsb.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/datasets"
	"repro/internal/stats"
)

func main() {
	n := flag.Int("n", 100000, "number of keys")
	seed := flag.Int64("seed", 1, "generator seed")
	points := flag.Int("points", 21, "CDF sample points")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() < 2 {
		usage()
		os.Exit(2)
	}
	verb, dsName := flag.Arg(0), datasets.Name(flag.Arg(1))
	valid := false
	for _, d := range datasets.All {
		if d == dsName {
			valid = true
		}
	}
	if !valid {
		fmt.Fprintf(os.Stderr, "unknown dataset %q (want one of %v)\n", dsName, datasets.All)
		os.Exit(2)
	}
	keys := datasets.Generate(dsName, *n, *seed)

	switch verb {
	case "describe":
		describe(dsName, keys)
	case "cdf":
		cdf(keys, *points)
	case "dump":
		if flag.NArg() != 3 {
			usage()
			os.Exit(2)
		}
		if err := dump(keys, flag.Arg(2)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func describe(name datasets.Name, keys []float64) {
	sorted := datasets.Sorted(keys)
	t := stats.NewTable("property", "value")
	t.AddRow("dataset", string(name))
	t.AddRow("keys", strconv.Itoa(len(keys)))
	t.AddRow("key type", name.KeyType())
	t.AddRow("payload", fmt.Sprintf("%d bytes", name.PayloadBytes()))
	t.AddRow("min", fmt.Sprintf("%.6g", sorted[0]))
	t.AddRow("median", fmt.Sprintf("%.6g", sorted[len(sorted)/2]))
	t.AddRow("max", fmt.Sprintf("%.6g", sorted[len(sorted)-1]))
	t.AddRow("non-linearity(64)", fmt.Sprintf("%.4f", datasets.NonLinearity(keys, 64)))
	fmt.Print(t.String())
}

func cdf(keys []float64, points int) {
	t := stats.NewTable("frac", "key")
	for _, p := range datasets.CDF(keys, points) {
		t.AddRow(fmt.Sprintf("%.3f", p.Frac), fmt.Sprintf("%.8g", p.Key))
	}
	fmt.Print(t.String())
}

func dump(keys []float64, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%.17g\n", k); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d keys to %s\n", len(keys), path)
	return nil
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  alexgen [-n N] [-seed S] describe <dataset>
  alexgen [-n N] [-seed S] [-points P] cdf <dataset>
  alexgen [-n N] [-seed S] dump <dataset> <file>

datasets: longitudes, longlat, lognormal, ycsb
flags:
`)
	flag.PrintDefaults()
}
