// Command alexkv serves an ALEX index over TCP with a line-oriented
// text protocol. The index is sharded across key-space partitions
// (alex.ShardedIndex), so concurrent clients writing to different key
// regions run in parallel instead of serializing behind one lock. One
// command per line, space-separated:
//
//	GET <key>            -> VALUE <v> | NOTFOUND
//	SET <key> <value>    -> OK inserted|updated
//	DEL <key>            -> OK | NOTFOUND
//	MGET <k1> <k2> ...   -> one "VALUE <v>" or "NOTFOUND" line per key, then END
//	MSET <k1> <v1> <k2> <v2> ... -> OK <newly inserted count>
//	MDEL <k1> <k2> ...   -> OK <deleted count>
//	SCAN <start> <n>     -> n lines "KEY <k> <v>", then END
//	LEN                  -> LEN <n>
//	STATS                -> STATS <leaves> <height> <indexBytes> <dataBytes>
//	QUIT                 -> closes the connection
//
// Keys are decimal floats, values unsigned integers. The M* commands
// are the pipelined batch forms: one protocol round-trip, and (for
// sorted key lists) one amortized tree descent per data node for the
// whole batch, fanned out across the shards in parallel — use them for
// bulk traffic.
//
// Usage: alexkv [-addr host:port] [-load N] [-shards N]
//
// -load N preloads N synthetic YCSB keys so GET/SCAN have data to hit.
// -shards N partitions the key space across N shards (0 = one per
// CPU); shard boundaries sit at key-sample quantiles and retrain as
// the distribution drifts. -shards 1 degenerates to a single index
// behind one lock, useful for A/B-ing the sharding win.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	alex "repro"
	"repro/internal/datasets"
	"repro/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	load := flag.Int("load", 0, "preload this many synthetic keys")
	shards := flag.Int("shards", 0, "key-space shards (0 = one per CPU)")
	flag.Parse()

	var idx *alex.ShardedIndex
	if *load > 0 {
		keys := datasets.GenYCSB(*load, 1)
		payloads := make([]uint64, len(keys))
		for i := range payloads {
			payloads[i] = uint64(i)
		}
		var err error
		idx, err = alex.LoadSharded(*shards, keys, payloads, alex.WithSplitOnInsert())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		log.Printf("preloaded %d keys", *load)
	} else {
		idx = alex.NewSharded(*shards, alex.WithSplitOnInsert())
	}
	log.Printf("index sharded %d ways", idx.NumShards())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log.Printf("alexkv listening on %s", ln.Addr())
	srv := server.New(idx)
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
