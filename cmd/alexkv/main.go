// Command alexkv serves an ALEX index over TCP with a line-oriented
// text protocol. The index is sharded across key-space partitions
// (alex.ShardedIndex), so concurrent clients writing to different key
// regions run in parallel instead of serializing behind one lock. With
// -data-dir it becomes durable (alex.DurableIndex): every acknowledged
// write is logged to a write-ahead log before it is applied, snapshots
// checkpoint the log away, and a restart recovers exactly the
// acknowledged writes. When the storage stack fails underneath it (a
// failed fsync, a full disk) the store degrades to read-only instead of
// lying: mutations answer "ERR degraded", reads keep serving, and
// HEALTH / WALSTATS report the state (see docs/failure-model.md).
// One command per line, space-separated:
//
//	GET <key>            -> VALUE <v> | NOTFOUND
//	SET <key> <value>    -> OK inserted|updated
//	DEL <key>            -> OK | NOTFOUND
//	MGET <k1> <k2> ...   -> one "VALUE <v>" or "NOTFOUND" line per key, then END
//	MSET <k1> <v1> <k2> <v2> ... -> OK <newly inserted count>
//	MDEL <k1> <k2> ...   -> OK <deleted count>
//	SCAN <start> <n>     -> n lines "KEY <k> <v>", then END
//	LEN                  -> LEN <n>
//	STATS                -> STATS <leaves> <height> <indexBytes> <dataBytes>
//	FLUSH                -> OK (acked writes fsynced to the WAL)
//	SAVE                 -> OK (synchronous checkpoint; durable mode only)
//	BGSAVE               -> OK scheduled (background checkpoint; durable mode only)
//	WALSTATS             -> WAL <appends> <fsyncs> <bytes> <checkpoints> <replayed> <followers> <maxLagBytes> <degraded>
//	HEALTH               -> OK | OK read-only | DEGRADED <cause>
//	REPLINFO             -> replication role/position/lag lines, then END
//	SNAPSHOT             -> SNAPSHOT <bytes> <startSeg> + raw snapshot (replica bootstrap)
//	REPLICATE <seg> <off> -> binary WAL record stream from that position (see internal/repl)
//	QUIT                 -> closes the connection
//
// Keys are decimal floats, values unsigned integers. The M* commands
// are the pipelined batch forms: one protocol round-trip, one WAL
// record (atomic on recovery), and (for sorted key lists) one amortized
// tree descent per data node for the whole batch.
//
// Usage: alexkv [-addr host:port] [-load N] [-shards N] [-data-dir DIR]
// [-fsync always|interval|never] [-fsync-interval D] [-checkpoint-every N]
// [-replica-of host:port] [-pprof host:port]
//
// -replica-of PRIMARY starts the server as a read replica: it
// bootstraps from the primary's snapshot, tails the primary's
// write-ahead log (applying records through the same coalescing replay
// path crash recovery uses), serves reads lock-free from the applied
// state, and rejects writes. Replication is asynchronous; REPLINFO on
// either side reports positions and lag. A replica keeps nothing on
// disk — on restart, truncated history, or a diverging primary it
// re-bootstraps automatically, and it reconnects with jittered backoff
// when the primary goes away. -data-dir, -fsync and -load are
// meaningless (and rejected) in replica mode.
//
// -load N preloads N synthetic YCSB keys so GET/SCAN have data to hit
// (skipped when a data dir already holds recovered keys).
// -shards N partitions the key space across N shards (0 = one per
// CPU); -shards 1 degenerates to a single index behind one lock.
// -data-dir DIR persists the index in DIR. -fsync picks the WAL
// policy: "always" acknowledges a write only after it is on stable
// storage (concurrent writers share fsyncs via group commit),
// "interval" fsyncs every -fsync-interval, "never" leaves flushing to
// the OS. -checkpoint-every N snapshots the index and truncates the
// WAL every N logged records (0 disables automatic checkpoints).
//
// -pprof exposes the net/http/pprof handlers on the given address
// (e.g. -pprof 127.0.0.1:6060), so read-path profiles can be captured
// under live MGET load:
//
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops
// accepting connections, drains in-flight commands, flushes the WAL,
// writes a final checkpoint, and closes the store — so the next start
// recovers instantly from the snapshot with an empty log tail.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	alex "repro"
	"repro/internal/datasets"
	"repro/internal/repl"
	"repro/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	load := flag.Int("load", 0, "preload this many synthetic keys")
	shards := flag.Int("shards", 0, "key-space shards (0 = one per CPU)")
	dataDir := flag.String("data-dir", "", "durable storage directory (empty = in-memory only)")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always|interval|never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "fsync timer for -fsync interval")
	checkpointEvery := flag.Int("checkpoint-every", 1<<20, "records between automatic checkpoints (0 disables)")
	replicaOf := flag.String("replica-of", "", "run as a read replica of the primary at this address")
	pprofAddr := flag.String("pprof", "", "expose net/http/pprof on this address (empty = off)")
	flag.Parse()

	if *replicaOf != "" && (*dataDir != "" || *load != 0) {
		fmt.Fprintln(os.Stderr, "alexkv: -replica-of is incompatible with -data-dir and -load (replica state comes from the primary)")
		os.Exit(2)
	}

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank
			// import; profiling is best-effort and never takes the
			// server down.
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}

	var store server.Store
	var durable *alex.DurableIndex
	var follower *repl.Follower
	if *replicaOf != "" {
		follower = repl.NewFollower(*replicaOf, *shards)
		follower.Start()
		store = follower
		log.Printf("replica of %s (read-only)", *replicaOf)
	} else {
		var err error
		store, durable, err = buildStore(*dataDir, *fsync, *fsyncInterval, *checkpointEvery, *shards, *load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log.Printf("alexkv listening on %s", ln.Addr())

	// Graceful shutdown: closing the listener makes Serve return, then
	// the handler drain + final checkpoint below run before exit.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("received %v, shutting down", sig)
		ln.Close()
	}()

	srv := server.New(store)
	srv.ReadOnly = follower != nil
	serveErr := srv.Serve(ln)
	if serveErr != nil {
		// Even on an accept failure, run the full durability teardown
		// below so no acknowledged write is left in a WAL buffer.
		log.Printf("serve: %v", serveErr)
	}
	srv.Close() // drain in-flight handlers before touching the store
	if follower != nil {
		follower.Stop()
	}
	if durable != nil {
		if err := durable.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		} else {
			log.Printf("final checkpoint written")
		}
	}
	if err := store.Close(); err != nil {
		log.Printf("close store: %v", err)
	}
	log.Printf("bye")
	if serveErr != nil {
		os.Exit(1)
	}
}

// buildStore assembles the configured index: durable (WAL +
// checkpoints) when dataDir is set, plain sharded otherwise. The
// returned DurableIndex is nil in the in-memory case.
func buildStore(dataDir, fsync string, interval time.Duration, ckptEvery, shards, load int) (server.Store, *alex.DurableIndex, error) {
	if dataDir == "" {
		idx := alex.NewSharded(shards, alex.WithSplitOnInsert())
		preload(idx, load)
		log.Printf("index sharded %d ways (in-memory)", idx.NumShards())
		return idx, nil, nil
	}
	policy, err := alex.ParseFsyncPolicy(fsync)
	if err != nil {
		return nil, nil, err
	}
	d, err := alex.OpenDurable(dataDir,
		alex.WithFsyncPolicy(policy),
		alex.WithFsyncInterval(interval),
		alex.WithCheckpointEvery(ckptEvery),
		alex.WithDurableShards(shards),
		alex.WithIndexOptions(alex.WithSplitOnInsert()),
	)
	if err != nil {
		return nil, nil, err
	}
	st := d.WALStats()
	log.Printf("durable index in %s: recovered %d keys (%d WAL records replayed), fsync=%s",
		dataDir, d.Len(), st.Replayed, fsync)
	if d.Len() == 0 {
		preload(d, load)
	}
	return d, d, nil
}

// preloadStore is the common preload surface of both index kinds.
type preloadStore interface {
	Merge(keys []float64, payloads []uint64) int
}

// preload merges n synthetic YCSB keys in chunks (each chunk is one WAL
// record in durable mode).
func preload(idx preloadStore, n int) {
	if n <= 0 {
		return
	}
	keys := datasets.GenYCSB(n, 1)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i)
	}
	const chunk = 1 << 18
	for start := 0; start < len(keys); start += chunk {
		end := min(start+chunk, len(keys))
		idx.Merge(keys[start:end], payloads[start:end])
	}
	log.Printf("preloaded %d keys", n)
}
