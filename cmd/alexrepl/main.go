// Command alexrepl monitors a replicated alexkv deployment: it polls
// REPLINFO on the primary (and optionally on replicas) and prints one
// status line per poll — the primary's WAL position and each
// follower's position and lag in bytes, or a replica's applied
// position and link state.
//
// Usage: alexrepl [-addr host:port] [-replicas a,b,c] [-interval D] [-n N]
//
//	alexrepl -addr 127.0.0.1:7070 -interval 1s
//	primary 127.0.0.1:7070 pos 3/41287 checkpoints 2 followers 2
//	  follower 127.0.0.1:52114 pos 3/41287 lag 0B
//	  follower 127.0.0.1:52120 pos 3/38011 lag 3.2KB
//
// -n bounds the number of polls (0 = forever). Exit status is non-zero
// if the final poll could not reach the primary.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "primary (or replica) address to poll")
	replicas := flag.String("replicas", "", "comma-separated replica addresses to poll too")
	interval := flag.Duration("interval", time.Second, "poll interval")
	n := flag.Int("n", 0, "number of polls (0 = forever)")
	flag.Parse()

	var targets []string
	targets = append(targets, *addr)
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			targets = append(targets, r)
		}
	}

	ok := true
	for i := 0; *n == 0 || i < *n; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		ok = true
		for _, t := range targets {
			if err := poll(t); err != nil {
				fmt.Printf("%s unreachable: %v\n", t, err)
				ok = false
			}
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// poll runs one REPLINFO exchange and renders the reply.
func poll(addr string) error {
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := fmt.Fprintln(c, "REPLINFO"); err != nil {
		return err
	}
	br := bufio.NewReader(c)
	var role, source, connected string
	var seg, off, ckpts uint64
	type fol struct {
		addr     string
		seg, off uint64
		lag      int64
	}
	var fols []fol
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimSpace(line)
		if line == "END" {
			break
		}
		if strings.HasPrefix(line, "ERR") {
			return fmt.Errorf("%s", line)
		}
		switch f := strings.Fields(line); f[0] {
		case "ROLE":
			role = f[1]
		case "POSITION", "APPLIED":
			fmt.Sscanf(f[1], "%d", &seg)
			fmt.Sscanf(f[2], "%d", &off)
		case "CHECKPOINTS":
			fmt.Sscanf(f[1], "%d", &ckpts)
		case "SOURCE":
			source = f[1]
		case "CONNECTED":
			connected = f[1]
		case "FOLLOWER":
			var fo fol
			fo.addr = f[1]
			fmt.Sscanf(f[2], "%d", &fo.seg)
			fmt.Sscanf(f[3], "%d", &fo.off)
			fmt.Sscanf(f[4], "%d", &fo.lag)
			fols = append(fols, fo)
		}
	}
	switch role {
	case "primary":
		fmt.Printf("primary %s pos %d/%d checkpoints %d followers %d\n", addr, seg, off, ckpts, len(fols))
		for _, fo := range fols {
			fmt.Printf("  follower %s pos %d/%d lag %s\n", fo.addr, fo.seg, fo.off, human(fo.lag))
		}
	case "replica":
		fmt.Printf("replica %s of %s connected=%s applied %d/%d\n", addr, source, connected, seg, off)
	default:
		fmt.Printf("%s role %q\n", addr, role)
	}
	return nil
}

// human renders a byte count compactly.
func human(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
