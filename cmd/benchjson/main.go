// Command benchjson converts `go test -bench` text output (stdin) into
// a machine-readable JSON document (stdout), so CI can archive every
// run's numbers as an artifact (BENCH_ci.json) and the perf trajectory
// is tracked per PR instead of eyeballed from logs.
//
//	go test -run '^$' -bench Concurrent -benchtime=100x . | benchjson > BENCH_ci.json
//
// Lines that are not benchmark results (headers, PASS, ok) are folded
// into the environment block when recognized and skipped otherwise.
// Derived sharded/sync speedups are computed for benchmark pairs that
// differ only by the index name, e.g. ConcurrentShardedWriteHeavy8 vs
// ConcurrentSyncWriteHeavy8 — the ratio the ISSUE's acceptance bar
// reads.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the whole artifact.
type Doc struct {
	GOOS       string             `json:"goos,omitempty"`
	GOARCH     string             `json:"goarch,omitempty"`
	Pkg        string             `json:"pkg,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks []Result           `json:"benchmarks"`
	Speedups   map[string]float64 `json:"sharded_over_sync_speedups,omitempty"`
	// DurabilityTax is ns/op of each DurableWrite* benchmark over the
	// DurableWriteBaseline (the same loop without the WAL) — the cost
	// of each fsync policy, tracked per CI run.
	DurabilityTax map[string]float64 `json:"durability_tax,omitempty"`
}

// benchLine matches "BenchmarkName-8   123   456.7 ns/op   8 B/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.eE+]+) ns/op(.*)$`)

func main() {
	doc := Doc{Speedups: map[string]float64{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: strings.TrimPrefix(m[1], "Benchmark")}
		if m[2] != "" {
			r.Procs, _ = strconv.Atoi(m[2])
		}
		r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		r.Metrics = parseMetrics(m[5])
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	// Derived ratios: for every ConcurrentSharded* result with a
	// ConcurrentSync* sibling, speedup = sync ns/op / sharded ns/op.
	byName := map[string]float64{}
	for _, r := range doc.Benchmarks {
		byName[r.Name] = r.NsPerOp
	}
	for name, ns := range byName {
		if !strings.Contains(name, "Sharded") || ns == 0 {
			continue
		}
		sibling := strings.Replace(name, "Sharded", "Sync", 1)
		if syncNs, ok := byName[sibling]; ok {
			doc.Speedups[name] = syncNs / ns
		}
	}
	if len(doc.Speedups) == 0 {
		doc.Speedups = nil
	}

	// Durability tax: each DurableWrite policy vs the WAL-less baseline.
	if base, ok := byName["DurableWriteBaseline"]; ok && base > 0 {
		doc.DurabilityTax = map[string]float64{}
		for name, ns := range byName {
			// Parallel variants are excluded: their wall-clock ns/op is
			// not comparable against the single-writer baseline.
			if strings.HasPrefix(name, "DurableWrite") && name != "DurableWriteBaseline" &&
				!strings.Contains(name, "Parallel") {
				doc.DurabilityTax[name] = ns / base
			}
		}
		if len(doc.DurabilityTax) == 0 {
			doc.DurabilityTax = nil
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseMetrics decodes the trailing "<value> <unit>" pairs of a
// benchmark line (B/op, allocs/op, and any b.ReportMetric extras).
func parseMetrics(rest string) map[string]float64 {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil
	}
	m := make(map[string]float64, len(fields)/2)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		m[fields[i+1]] = v
	}
	if len(m) == 0 {
		return nil
	}
	return m
}
