// Command benchjson converts `go test -bench` text output (stdin) into
// a machine-readable JSON document (stdout), so CI can archive every
// run's numbers as an artifact (BENCH_ci.json) and the perf trajectory
// is tracked per PR instead of eyeballed from logs.
//
//	go test -run '^$' -bench Concurrent -benchtime=100x . | benchjson > BENCH_ci.json
//
// Lines that are not benchmark results (headers, PASS, ok) are folded
// into the environment block when recognized and skipped otherwise.
// Derived sharded/sync speedups are computed for benchmark pairs that
// differ only by the index name, e.g. ConcurrentShardedWriteHeavy8 vs
// ConcurrentSyncWriteHeavy8 — the ratio the ISSUE's acceptance bar
// reads. Read-path ratios are derived the same way from X/XLocked
// pairs (the optimistic read path vs the forced-RLock baseline), along
// with the allocs/op of the zero-allocation read benchmarks when the
// run used -benchmem.
//
// With -baseline FILE the document is additionally gated benchstat
// style against a committed baseline (BENCH_baseline.json): for every
// benchmark named in -gate (comma separated), the run fails (exit 1)
// if ns/op regressed more than -gate-pct percent over the baseline's
// number. Benchmarks missing from either side only warn, so seeding a
// fresh baseline never blocks.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the whole artifact.
type Doc struct {
	GOOS       string             `json:"goos,omitempty"`
	GOARCH     string             `json:"goarch,omitempty"`
	Pkg        string             `json:"pkg,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks []Result           `json:"benchmarks"`
	Speedups   map[string]float64 `json:"sharded_over_sync_speedups,omitempty"`
	// DurabilityTax is ns/op of each DurableWrite* benchmark over the
	// DurableWriteBaseline (the same loop without the WAL) — the cost
	// of each fsync policy, tracked per CI run.
	DurabilityTax map[string]float64 `json:"durability_tax,omitempty"`
	// ReadPath tracks the optimistic read protocol: for every X/XLocked
	// benchmark pair, "X_locked_over_optimistic" is locked ns/op over
	// optimistic ns/op (>1 means the lock-free path wins), and
	// "X_allocs_per_op" echoes the allocs/op metric of the read
	// benchmarks so the zero-allocation contract is archived per run.
	ReadPath map[string]float64 `json:"read_path,omitempty"`
	// Replication archives the WAL-shipping pipeline from the
	// Replication benchmarks: write-to-replica-visible lag quantiles
	// (µs, min across repetitions) and the fan-out client's read
	// throughput (QPS, from the min ns/op) at each replica count.
	Replication map[string]float64 `json:"replication,omitempty"`
	// ErrorBounds archives the per-leaf prediction-error-bound state of
	// the GetBoundedVsExponential run: p50/p99 leaf error bound, the
	// share of probes served by the bounded fast path, and exponential
	// ns/op over bounded ns/op on the same drifted tree (>1 means the
	// error-bound strategy selection wins).
	ErrorBounds map[string]float64 `json:"error_bounds,omitempty"`
	// BulkLoad archives the cost-optimal bulk-load comparison from the
	// BulkLoadCostOptimal/BulkLoadHeuristic pair on the drifted
	// longitudes dataset: load ns/key, post-load p50/p99 per-leaf error
	// bounds and bounded-search share for each mode, the cost/heuristic
	// load-time ratio (the acceptance bar is <= 1.5), and the
	// recovery-rebuild open time from the RecoveryRebuild benchmark.
	BulkLoad map[string]float64 `json:"bulk_load,omitempty"`
	// Snapshot archives the epoch-snapshot concurrency numbers: insert
	// p99 latency (µs) with a checkpoint loop running concurrently vs
	// the undisturbed baseline and their ratio (the checkpoint cuts a
	// snapshot and serializes outside the index locks, so the bar is
	// ~2x, not the order-of-magnitude a whole-serialization stall
	// costs), plus Stats / snapshot-cut / 100-element snapshot-scan
	// ns/op measured under a write storm.
	Snapshot map[string]float64 `json:"snapshot,omitempty"`
}

// benchLine matches "BenchmarkName-8   123   456.7 ns/op   8 B/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.eE+]+) ns/op(.*)$`)

func main() {
	baseline := flag.String("baseline", "", "baseline JSON (a prior benchjson document) to gate against")
	gate := flag.String("gate", "", "comma-separated benchmark names the regression gate checks")
	gatePct := flag.Float64("gate-pct", 15, "max allowed ns/op regression over the baseline, percent")
	flag.Parse()

	doc := Doc{Speedups: map[string]float64{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: strings.TrimPrefix(m[1], "Benchmark")}
		if m[2] != "" {
			r.Procs, _ = strconv.Atoi(m[2])
		}
		r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		r.Metrics = parseMetrics(m[5])
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	// byName holds each benchmark's best (minimum) ns/op: with
	// `-count=N` repetitions the min is the benchstat-style noise
	// filter — shared-runner interference only ever slows a run down —
	// so the derived ratios and the regression gate see the least-noisy
	// measurement.
	byName := map[string]float64{}
	for _, r := range doc.Benchmarks {
		if v, ok := byName[r.Name]; !ok || r.NsPerOp < v {
			byName[r.Name] = r.NsPerOp
		}
	}

	// Derived ratios: for every ConcurrentSharded* result with a
	// ConcurrentSync* sibling, speedup = sync ns/op / sharded ns/op.
	for name, ns := range byName {
		if !strings.Contains(name, "Sharded") || ns == 0 {
			continue
		}
		sibling := strings.Replace(name, "Sharded", "Sync", 1)
		if syncNs, ok := byName[sibling]; ok {
			doc.Speedups[name] = syncNs / ns
		}
	}
	if len(doc.Speedups) == 0 {
		doc.Speedups = nil
	}

	// Durability tax: each DurableWrite policy vs the WAL-less baseline.
	if base, ok := byName["DurableWriteBaseline"]; ok && base > 0 {
		doc.DurabilityTax = map[string]float64{}
		for name, ns := range byName {
			// Parallel variants are excluded: their wall-clock ns/op is
			// not comparable against the single-writer baseline.
			if strings.HasPrefix(name, "DurableWrite") && name != "DurableWriteBaseline" &&
				!strings.Contains(name, "Parallel") {
				doc.DurabilityTax[name] = ns / base
			}
		}
		if len(doc.DurabilityTax) == 0 {
			doc.DurabilityTax = nil
		}
	}

	// Read-path ratios: every X with an XLocked sibling (min ns/op on
	// both sides), plus the allocs/op of the read benchmarks when
	// -benchmem was used (the max across repetitions — an alloc
	// regression must not hide behind one clean run).
	doc.ReadPath = map[string]float64{}
	for name, ns := range byName {
		if strings.HasSuffix(name, "Locked") || ns == 0 {
			continue
		}
		if lockedNs, ok := byName[name+"Locked"]; ok {
			doc.ReadPath[name+"_locked_over_optimistic"] = lockedNs / ns
		}
	}
	for _, r := range doc.Benchmarks {
		if !isReadBench(r.Name) {
			continue
		}
		if a, ok := r.Metrics["allocs/op"]; ok {
			key := r.Name + "_allocs_per_op"
			if prev, seen := doc.ReadPath[key]; !seen || a > prev {
				doc.ReadPath[key] = a
			}
		}
	}
	if len(doc.ReadPath) == 0 {
		doc.ReadPath = nil
	}

	// Replication block: lag quantiles from the Lag run (min across
	// repetitions — interference only adds lag) and read QPS per
	// replica count from the fan-out client runs.
	doc.Replication = map[string]float64{}
	for _, r := range doc.Benchmarks {
		if r.Name != "Replication/Lag" {
			continue
		}
		for metric, key := range map[string]string{
			"lag-p50-us": "lag_p50_us",
			"lag-p99-us": "lag_p99_us",
		} {
			if v, ok := r.Metrics[metric]; ok {
				if prev, seen := doc.Replication[key]; !seen || v < prev {
					doc.Replication[key] = v
				}
			}
		}
	}
	for name, ns := range byName {
		if rest, ok := strings.CutPrefix(name, "Replication/ReadQPS/replicas="); ok && ns > 0 {
			doc.Replication["read_qps_"+rest+"_replicas"] = 1e9 / ns
		}
	}
	if len(doc.Replication) == 0 {
		doc.Replication = nil
	}

	// Error-bounds block: the leaf error distribution reported by the
	// Bounded run, plus the exponential/bounded ratio of the pair.
	if boundedNs, ok := byName["GetBoundedVsExponential/Bounded"]; ok {
		doc.ErrorBounds = map[string]float64{}
		if expNs, ok := byName["GetBoundedVsExponential/Exponential"]; ok && boundedNs > 0 {
			doc.ErrorBounds["exponential_over_bounded"] = expNs / boundedNs
		}
		for _, r := range doc.Benchmarks {
			if r.Name != "GetBoundedVsExponential/Bounded" {
				continue
			}
			for metric, key := range map[string]string{
				"p50-leaf-err":  "p50_leaf_err",
				"p99-leaf-err":  "p99_leaf_err",
				"bounded-share": "bounded_probe_share",
			} {
				if v, ok := r.Metrics[metric]; ok {
					doc.ErrorBounds[key] = v
				}
			}
		}
		if len(doc.ErrorBounds) == 0 {
			doc.ErrorBounds = nil
		}
	}

	// Bulk-load block: the cost-optimal vs heuristic load pair. Metrics
	// come from the benchmark's b.ReportMetric extras; ns/key and the
	// error stats take the min across repetitions (interference only
	// slows a load down; the error stats are deterministic per build).
	doc.BulkLoad = map[string]float64{}
	for _, r := range doc.Benchmarks {
		var prefix string
		switch r.Name {
		case "BulkLoadCostOptimal":
			prefix = "cost_"
		case "BulkLoadHeuristic":
			prefix = "heuristic_"
		default:
			continue
		}
		for metric, key := range map[string]string{
			"ns/key":        "load_ns_per_key",
			"p50-leaf-err":  "p50_leaf_err",
			"p99-leaf-err":  "p99_leaf_err",
			"bounded-share": "bounded_share",
		} {
			if v, ok := r.Metrics[metric]; ok {
				if prev, seen := doc.BulkLoad[prefix+key]; !seen || v < prev {
					doc.BulkLoad[prefix+key] = v
				}
			}
		}
	}
	if cost, ok := byName["BulkLoadCostOptimal"]; ok {
		if heu, ok := byName["BulkLoadHeuristic"]; ok && heu > 0 {
			doc.BulkLoad["cost_over_heuristic_load_time"] = cost / heu
		}
	}
	if ns, ok := byName["RecoveryRebuild"]; ok {
		doc.BulkLoad["recovery_rebuild_ns"] = ns
	}
	if len(doc.BulkLoad) == 0 {
		doc.BulkLoad = nil
	}

	// Snapshot block: checkpoint-concurrent write p99 vs baseline (min
	// across repetitions on both sides) and the under-storm read/cut
	// latencies.
	doc.Snapshot = map[string]float64{}
	p99 := map[string]float64{}
	for _, r := range doc.Benchmarks {
		if v, ok := r.Metrics["write-p99-us"]; ok {
			if prev, seen := p99[r.Name]; !seen || v < prev {
				p99[r.Name] = v
			}
		}
	}
	if base, ok := p99["SnapshotWriteP99Baseline"]; ok {
		doc.Snapshot["write_p99_us_baseline"] = base
		if ck, ok := p99["SnapshotWriteP99Checkpointing"]; ok {
			doc.Snapshot["write_p99_us_checkpointing"] = ck
			if base > 0 {
				doc.Snapshot["checkpoint_p99_over_baseline"] = ck / base
			}
		}
	}
	for name, key := range map[string]string{
		"SnapshotStatsUnderWriteStorm":   "stats_under_storm_ns",
		"SnapshotCutUnderWriteStorm":     "cut_under_storm_ns",
		"SnapshotScan100UnderWriteStorm": "scan100_under_storm_ns",
	} {
		if ns, ok := byName[name]; ok {
			doc.Snapshot[key] = ns
		}
	}
	if len(doc.Snapshot) == 0 {
		doc.Snapshot = nil
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *baseline != "" {
		if err := gateAgainst(*baseline, strings.Split(*gate, ","), *gatePct, byName); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// isReadBench selects the benchmarks whose allocs/op belong in the
// read_path block: the point and batch read paths of the wrappers.
func isReadBench(name string) bool {
	switch name {
	case "Get", "ShardedGet", "GetBatchInto", "ScanNInto":
		return true
	}
	return false
}

// gateAgainst fails (returns an error) when any gated benchmark's
// ns/op regressed more than pct percent over the committed baseline.
// Benchmarks absent on either side warn instead of failing, so a gate
// list can be committed before its baseline numbers exist.
func gateAgainst(path string, names []string, pct float64, byName map[string]float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("gate: read baseline: %v", err)
	}
	var base Doc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("gate: parse baseline: %v", err)
	}
	// Same min-across-repetitions rule as the current run, so a
	// baseline archived from a -count=N run gates apples to apples.
	baseNs := map[string]float64{}
	for _, r := range base.Benchmarks {
		if v, ok := baseNs[r.Name]; !ok || r.NsPerOp < v {
			baseNs[r.Name] = r.NsPerOp
		}
	}
	var failures []string
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		got, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: gate: %s missing from this run, skipping\n", name)
			continue
		}
		want, ok := baseNs[name]
		if !ok || want == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: gate: %s missing from baseline, skipping\n", name)
			continue
		}
		limit := want * (1 + pct/100)
		if got > limit {
			failures = append(failures, fmt.Sprintf(
				"%s regressed: %.1f ns/op vs baseline %.1f (+%.1f%%, limit +%.0f%%)",
				name, got, want, (got/want-1)*100, pct))
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: gate: %s ok: %.1f ns/op vs baseline %.1f (%+.1f%%)\n",
				name, got, want, (got/want-1)*100)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// parseMetrics decodes the trailing "<value> <unit>" pairs of a
// benchmark line (B/op, allocs/op, and any b.ReportMetric extras).
func parseMetrics(rest string) map[string]float64 {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil
	}
	m := make(map[string]float64, len(fields)/2)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		m[fields[i+1]] = v
	}
	if len(m) == 0 {
		return nil
	}
	return m
}
