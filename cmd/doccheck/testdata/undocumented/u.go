package undocumented

// Documented carries a doc comment and must not be reported.
type Documented struct{}

type Bare struct{}

func Exposed() {}
