package main_test

import (
	"errors"
	"os/exec"
	"strings"
	"testing"
)

// run executes the doccheck CLI against a package pattern and returns
// its combined output and exit code.
func run(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var exit *exec.ExitError
	if errors.As(err, &exit) {
		return string(out), exit.ExitCode()
	}
	t.Fatalf("go run . %v: %v\n%s", args, err, out)
	return "", 0
}

// TestDoccheckAdvisoryByDefault: findings print but the exit stays 0,
// so the repo-wide CI step never blocks a PR.
func TestDoccheckAdvisoryByDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI")
	}
	out, code := run(t, "./testdata/undocumented")
	if code != 0 {
		t.Fatalf("advisory run: exit %d, want 0\n%s", code, out)
	}
	for _, want := range []string{"package undocumented has no package comment", "Bare has no doc comment", "Exposed has no doc comment"} {
		if !strings.Contains(out, want) {
			t.Errorf("advisory run: output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Documented") {
		t.Errorf("advisory run: documented declaration reported:\n%s", out)
	}
}

// TestDoccheckStrictExitsNonZero: the same findings under -strict fail
// the run — the blocking form CI uses on the documented packages.
func TestDoccheckStrictExitsNonZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI")
	}
	out, code := run(t, "-strict", "./testdata/undocumented")
	if code != 1 {
		t.Fatalf("strict run: exit %d, want 1\n%s", code, out)
	}
}
