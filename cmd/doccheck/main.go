// Command doccheck reports exported declarations that lack a doc
// comment, and packages that lack a package comment. By default it is
// advisory — findings are printed, exit status stays 0 — so CI can run
// it repo-wide and make godoc coverage regressions visible without
// blocking. With -strict, findings exit non-zero; CI runs the strict
// form over the packages whose documentation is part of the contract:
//
//	go run ./cmd/doccheck ./...                                  # advisory, repo-wide
//	go run ./cmd/doccheck -strict . ./server ./internal/wal ...  # blocking, documented surface
//
// Package patterns accept plain directories and the "./..." recursive
// form (testdata and hidden directories are skipped, as go list
// would). Pass -q to print only the summary line.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	quiet := flag.Bool("q", false, "print only the summary line")
	strict := flag.Bool("strict", false, "exit non-zero when findings exist (default: advisory)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	total := 0
	for _, dir := range dirs {
		total += checkDir(dir, *quiet)
	}
	fmt.Printf("doccheck: %d undocumented exported declarations\n", total)
	if total > 0 && *strict {
		os.Exit(1)
	}
}

// checkDir parses one directory (non-recursive, like a package path)
// and reports its undocumented exported declarations.
func checkDir(dir string, quiet bool) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
		return 0
	}
	n := 0
	report := func(pos token.Pos, what string) {
		n++
		if !quiet {
			p := fset.Position(pos)
			fmt.Printf("%s:%d: %s\n", filepath.ToSlash(p.Filename), p.Line, what)
		}
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			for _, f := range pkg.Files {
				report(f.Package, "package "+pkg.Name+" has no package comment")
				break
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && !isMethodOfUnexported(d) {
						report(d.Pos(), "exported "+kindOf(d)+" "+d.Name.Name+" has no doc comment")
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return n
}

// isMethodOfUnexported reports whether f is a method on an unexported
// receiver type — not part of the package's documented surface.
func isMethodOfUnexported(f *ast.FuncDecl) bool {
	if f.Recv == nil || len(f.Recv.List) == 0 {
		return false
	}
	t := f.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return !x.IsExported()
		default:
			return false
		}
	}
}

func kindOf(f *ast.FuncDecl) string {
	if f.Recv != nil {
		return "method"
	}
	return "function"
}

// checkGenDecl reports undocumented exported types, constants and
// variables. A doc comment on the grouped declaration covers every spec
// in the group (the idiomatic const-block style).
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	if d.Tok == token.IMPORT || d.Doc != nil {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "exported type "+s.Name.Name+" has no doc comment")
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(s.Pos(), "exported "+d.Tok.String()+" "+name.Name+" has no doc comment")
				}
			}
		}
	}
}
