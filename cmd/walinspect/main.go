// Command walinspect examines the write-ahead-log segments in a data
// directory offline: per-segment record counts (by op), the visible
// watermark a restart would recover to, and the exact byte offset of
// the first corruption or torn record in each segment. It is the
// forensic half of the fault-injection harness — after a scripted
// crash or a real one, walinspect shows what the log actually holds.
//
//	walinspect [-v] [-repair] DIR
//
// Output is one line per segment:
//
//	wal-0000000000000003.log  size=1048584  records=512  clean-end=1048584
//	wal-0000000000000004.log  size=20487    records=9    clean-end=20432  TORN tail: 55 trailing bytes
//
// followed by the recovery watermark — the position replay stops at,
// which is exactly the acknowledged prefix under the fsync=always
// policy. Exit status is 0 when every segment is clean, 1 when any
// segment holds a tear or corruption, 2 on usage or I/O errors.
//
// -repair truncates a torn tail at the last valid record boundary, so
// tools that insist on clean segments can run afterwards. Recovery
// itself never needs this: a tear in a sealed segment ends only that
// segment's replay, and later segments still hold valid acknowledged
// records. For the same reason -repair REFUSES to touch a segment when
// any later segment holds valid records — a mid-history tear with
// intact history after it is not a crash tail, and truncating it would
// destroy the evidence of whatever corrupted it. -v additionally
// prints per-op record counts.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/wal"
)

// segReport is one segment's scan result.
type segReport struct {
	seg      wal.Segment
	size     int64
	records  int
	byOp     map[wal.Op]int
	cleanEnd int64 // offset of the last valid record boundary
	torn     bool  // trailing bytes past cleanEnd that never decode
	badMagic bool
	corrupt  error // non-nil when the tail is ErrCorrupt rather than short
}

var opNames = map[wal.Op]string{
	wal.OpInsert:      "insert",
	wal.OpDelete:      "delete",
	wal.OpInsertBatch: "insert-batch",
	wal.OpDeleteBatch: "delete-batch",
	wal.OpMerge:       "merge",
	wal.OpCheckpoint:  "checkpoint",
	wal.OpUpdate:      "update",
}

func main() {
	verbose := flag.Bool("v", false, "print per-op record counts")
	repair := flag.Bool("repair", false, "truncate a torn tail at the last valid record boundary")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: walinspect [-v] [-repair] DIR\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	dir := flag.Arg(0)

	segs, err := wal.Segments(dir)
	if err != nil {
		fatalf("walinspect: %v", err)
	}
	if len(segs) == 0 {
		fmt.Printf("%s: no WAL segments\n", dir)
		return
	}

	reports := make([]*segReport, 0, len(segs))
	dirty := false
	for _, s := range segs {
		r, err := scanSegment(s)
		if err != nil {
			fatalf("walinspect: %s: %v", s.Path, err)
		}
		if r.torn || r.badMagic {
			dirty = true
		}
		reports = append(reports, r)
	}

	for _, r := range reports {
		printReport(r, *verbose)
	}
	last := reports[len(reports)-1]
	fmt.Printf("watermark: seg %d off %d\n", last.seg.Seq, last.cleanEnd)

	if *repair {
		if err := repairAll(reports); err != nil {
			fatalf("walinspect: %v", err)
		}
		return
	}
	if dirty {
		os.Exit(1)
	}
}

// scanSegment walks one segment's frames with the same decoder the
// recovery path uses, so its notion of "valid" is recovery's.
func scanSegment(s wal.Segment) (*segReport, error) {
	b, err := os.ReadFile(s.Path)
	if err != nil {
		return nil, err
	}
	r := &segReport{seg: s, size: int64(len(b)), byOp: make(map[wal.Op]int)}
	if int64(len(b)) < wal.HeaderSize || string(b[:wal.HeaderSize]) != wal.Magic {
		r.badMagic = true
		r.cleanEnd = 0
		return r, nil
	}
	off := wal.HeaderSize
	for off < int64(len(b)) {
		rec, n, err := wal.DecodeFramed(b[off:])
		if err != nil {
			r.torn = true
			if !errors.Is(err, wal.ErrShortFrame) {
				r.corrupt = err
			}
			break
		}
		r.records++
		r.byOp[rec.Op]++
		off += int64(n)
	}
	r.cleanEnd = off
	return r, nil
}

func printReport(r *segReport, verbose bool) {
	name := filepath.Base(r.seg.Path)
	switch {
	case r.badMagic:
		fmt.Printf("%s  size=%d  BAD HEADER (not a WAL segment)\n", name, r.size)
		return
	case r.corrupt != nil:
		fmt.Printf("%s  size=%d  records=%d  clean-end=%d  CORRUPT at offset %d: %v\n",
			name, r.size, r.records, r.cleanEnd, r.cleanEnd, r.corrupt)
	case r.torn:
		fmt.Printf("%s  size=%d  records=%d  clean-end=%d  TORN tail: %d trailing bytes\n",
			name, r.size, r.records, r.cleanEnd, r.size-r.cleanEnd)
	default:
		fmt.Printf("%s  size=%d  records=%d  clean-end=%d\n", name, r.size, r.records, r.cleanEnd)
	}
	if verbose {
		for op, name := range opNames {
			if n := r.byOp[op]; n > 0 {
				fmt.Printf("    %-13s %d\n", name, n)
			}
		}
	}
}

// repairAll truncates torn tails, newest-first, refusing to touch any
// segment that has valid records after it in the log.
func repairAll(reports []*segReport) error {
	repaired := 0
	for i, r := range reports {
		if !r.torn && !r.badMagic {
			continue
		}
		for _, later := range reports[i+1:] {
			if later.records > 0 {
				return fmt.Errorf("refusing to repair %s: later segment %s holds %d valid records (mid-history tear, not a crash tail)",
					filepath.Base(r.seg.Path), filepath.Base(later.seg.Path), later.records)
			}
		}
		if r.badMagic {
			return fmt.Errorf("refusing to repair %s: header is not a WAL header; remove the file manually if it does not belong",
				filepath.Base(r.seg.Path))
		}
		if err := os.Truncate(r.seg.Path, r.cleanEnd); err != nil {
			return err
		}
		fmt.Printf("repaired %s: truncated %d bytes at offset %d\n",
			filepath.Base(r.seg.Path), r.size-r.cleanEnd, r.cleanEnd)
		repaired++
	}
	if repaired == 0 {
		fmt.Println("nothing to repair")
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
