package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/wal"
)

// buildWALDir writes a real two-segment log: records, a rotation, more
// records.
func buildWALDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	l, err := wal.OpenLog(dir, wal.SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(&wal.Record{Op: wal.OpInsert, Keys: []float64{float64(i)}, Payloads: []uint64{uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(&wal.Record{Op: wal.OpDelete, Keys: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestFaultWalinspectScan: clean segments scan clean with the right
// counts; a torn tail is located at its exact offset.
func TestFaultWalinspectScan(t *testing.T) {
	dir := buildWALDir(t)
	segs, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("built %d segments, want 2", len(segs))
	}
	r0, err := scanSegment(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if r0.torn || r0.records != 10 || r0.byOp[wal.OpInsert] != 10 || r0.cleanEnd != r0.size {
		t.Fatalf("segment 0 scan: records=%d torn=%v cleanEnd=%d size=%d", r0.records, r0.torn, r0.cleanEnd, r0.size)
	}

	// Tear the tail of the LAST segment: scan must flag it and place
	// clean-end exactly at the pre-tear size.
	last := segs[1]
	st, _ := os.Stat(last.Path)
	f, err := os.OpenFile(last.Path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0, 1, 2}) // a 9-byte record's prefix, cut short
	f.Close()
	r1, err := scanSegment(last)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.torn || r1.records != 5 || r1.cleanEnd != st.Size() {
		t.Fatalf("torn scan: torn=%v records=%d cleanEnd=%d want %d", r1.torn, r1.records, r1.cleanEnd, st.Size())
	}

	// Repair truncates exactly the torn bytes.
	if err := repairAll([]*segReport{r0, r1}); err != nil {
		t.Fatal(err)
	}
	st2, _ := os.Stat(last.Path)
	if st2.Size() != st.Size() {
		t.Fatalf("repair left %d bytes, want %d", st2.Size(), st.Size())
	}
	r1b, _ := scanSegment(last)
	if r1b.torn || r1b.records != 5 {
		t.Fatalf("post-repair scan still dirty: torn=%v records=%d", r1b.torn, r1b.records)
	}
}

// TestFaultWalinspectRepairRefusesMidHistoryTear: a tear in a segment
// that is FOLLOWED by valid records is not a crash tail; repair must
// refuse to destroy the evidence.
func TestFaultWalinspectRepairRefusesMidHistoryTear(t *testing.T) {
	dir := buildWALDir(t)
	segs, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(segs[0].Path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{42, 0, 0, 0}) // torn frame in the OLD segment
	f.Close()

	var reports []*segReport
	for _, s := range segs {
		r, err := scanSegment(s)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, r)
	}
	if !reports[0].torn {
		t.Fatal("old-segment tear not detected")
	}
	err = repairAll(reports)
	if err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("repairAll = %v, want a refusal", err)
	}
	// And the file is untouched.
	r0, _ := scanSegment(segs[0])
	if !r0.torn {
		t.Fatal("refused repair still modified the segment")
	}
}
