package alex_test

// Tests for the per-leaf prediction-error bounds (ISSUE 5 tentpole) and
// the read/stats consistency bugfix sweep riding along:
//
//   - TestErrBoundStress* churn a concurrent index while readers probe
//     and periodically verify CheckInvariants, whose leaf audit
//     re-predicts every stored key and fails if the incrementally
//     maintained bound ever under-states the true error. The race gate
//     runs these under -race.
//   - TestShardedAggregateConsistency is the regression test for the
//     torn Len()/Stats() aggregation: cross-shard batches of a fixed
//     size must never be observed half-counted.
//   - TestGetBatchVariantsEquivalence fuzzes GetBatch (parallel,
//     allocating) against GetBatchInto (sequential, zero-alloc) and a
//     loop of Gets across all three wrappers, on batches salted with
//     NaN/±Inf/duplicate/boundary keys, sorted and unsorted.

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	alex "repro"
)

// churnStore is the mutation surface shared by SyncIndex and
// ShardedIndex that the stress tests drive.
type churnStore interface {
	Insert(key float64, payload uint64) bool
	Delete(key float64) bool
	InsertBatch(keys []float64, payloads []uint64) int
	Get(key float64) (uint64, bool)
	Len() int
	CheckInvariants() error
}

// runErrBoundStress hammers the store with inserters, a deleter and
// readers while an auditor repeatedly verifies the full invariant set
// (including the per-leaf error-bound audit) under the store's own
// locking.
func runErrBoundStress(t *testing.T, s churnStore) {
	t.Helper()
	const (
		writers = 3
		rounds  = 20
		minOps  = 3000 // writer mutations the audit must overlap with
	)
	var stop atomic.Bool
	var ops atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for !stop.Load() {
				// Mix point inserts with small sorted batches clumped in
				// narrow regions so leaf models go stale and the cost
				// model has something to correct. Keys come from a bounded
				// discrete pool so the index churns (payload overwrites,
				// deletes, re-inserts) without growing unboundedly under
				// the O(n) audit.
				base := float64(rng.Intn(2000)) / 20
				if rng.Intn(2) == 0 {
					keys := make([]float64, 8)
					pays := make([]uint64, 8)
					for i := range keys {
						keys[i] = base + float64(i)*1e-3
						pays[i] = uint64(i)
					}
					s.InsertBatch(keys, pays)
				} else {
					s.Insert(base+float64(rng.Intn(8))*1e-3, uint64(w))
				}
				if rng.Intn(2) == 0 {
					s.Delete(float64(rng.Intn(2000))/20 + float64(rng.Intn(8))*1e-3)
				}
				ops.Add(1)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for !stop.Load() {
			s.Get(rng.Float64() * 100)
		}
	}()
	for r := 0; r < rounds || ops.Load() < minOps; r++ {
		if err := s.CheckInvariants(); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("round %d: %v", r, err)
		}
		// Let the writers run between audits: the audit holds the read
		// side of the store's lock for an O(n) walk, and back-to-back
		// audits would starve the mutations the test exists to overlap.
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestErrBoundStressSync(t *testing.T) {
	keys := make([]float64, 4096)
	for i := range keys {
		keys[i] = float64(i) / 40
	}
	s, err := alex.LoadSync(keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	runErrBoundStress(t, s)
}

func TestErrBoundStressSharded(t *testing.T) {
	keys := make([]float64, 4096)
	for i := range keys {
		keys[i] = float64(i) / 40
	}
	s, err := alex.LoadSharded(4, keys, nil, alex.WithSplitOnInsert())
	if err != nil {
		t.Fatal(err)
	}
	runErrBoundStress(t, s)
}

// TestShardedAggregateConsistency is the regression test for the torn
// Len()/Stats() aggregation (shard.go): writers apply cross-shard
// batches of exactly batchK brand-new keys each, so every state the
// index acknowledges has (Len - seed) divisible by batchK. The old
// aggregation locked shards one at a time under the shared gate, so a
// reader could count shard A after a batch's sub-batch landed there
// and shard B before its half arrived — a total no acknowledged state
// ever had.
func TestShardedAggregateConsistency(t *testing.T) {
	const (
		shards  = 4
		seedN   = 4096
		batchK  = 64
		writers = 4
		batches = 60
		reads   = 400
	)
	seed := make([]float64, seedN)
	for i := range seed {
		seed[i] = float64(i) / seedN // uniform in [0, 1): shard bounds at quantiles
	}
	s, err := alex.LoadSharded(shards, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var done atomic.Int32
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer done.Add(1)
			for j := 0; j < batches; j++ {
				// batchK fresh keys spread across the whole key space (one
				// per 1/batchK-wide stripe), unique per (writer, batch):
				// every batch spans every shard.
				jitter := (float64(w*batches+j) + 1) / float64(writers*batches+2) / float64(batchK) / 2
				keys := make([]float64, batchK)
				pays := make([]uint64, batchK)
				for i := range keys {
					keys[i] = float64(i)/batchK + 1.0/(2*batchK) + jitter/seedN
					pays[i] = uint64(w)
				}
				if added := s.InsertBatch(keys, pays); added != batchK {
					t.Errorf("writer %d batch %d: added %d keys, want %d", w, j, added, batchK)
					return
				}
			}
		}(w)
	}
	for r := 0; r < reads || done.Load() < writers; r++ {
		if n := s.Len() - seedN; n%batchK != 0 {
			t.Fatalf("torn Len: %d extra keys is not a multiple of the batch size %d", n, batchK)
		}
		st := s.Stats()
		if n := int(st.KeysTotal) - seedN; n%batchK != 0 {
			t.Fatalf("torn Stats: %d extra keys is not a multiple of the batch size %d", n, batchK)
		}
		if r > 100000 {
			t.Fatal("writers never finished")
		}
	}
	wg.Wait()
	want := seedN + writers*batches*batchK
	if got := s.Len(); got != want {
		t.Fatalf("final Len = %d, want %d", got, want)
	}
}

// TestGetBatchVariantsEquivalence fuzzes the three batch-read shapes
// against each other and a loop of Gets, across all wrappers, with
// batches salted with NaN, ±Inf, duplicates and shard-boundary keys in
// both sorted and unsorted order (ROADMAP follow-up (3) groundwork).
func TestGetBatchVariantsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	stored := make([]float64, 8192)
	for i := range stored {
		stored[i] = rng.NormFloat64() * 50
	}
	pays := make([]uint64, len(stored))
	for i := range pays {
		pays[i] = uint64(i) + 1
	}
	ix, err := alex.Load(stored, pays)
	if err != nil {
		t.Fatal(err)
	}
	sy, err := alex.LoadSync(stored, pays)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := alex.LoadSharded(4, stored, pays)
	if err != nil {
		t.Fatal(err)
	}
	type batchGetter interface {
		Get(key float64) (uint64, bool)
		GetBatch(keys []float64) ([]uint64, []bool)
		GetBatchInto(keys []float64, payloads []uint64, found []bool)
	}
	wrappers := map[string]batchGetter{"Index": ix, "SyncIndex": sy, "ShardedIndex": sh}

	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(200)
		batch := make([]float64, n)
		for i := range batch {
			switch rng.Intn(10) {
			case 0:
				batch[i] = math.NaN()
			case 1:
				batch[i] = math.Inf(1)
			case 2:
				batch[i] = math.Inf(-1)
			case 3, 4:
				batch[i] = rng.NormFloat64() * 50 // mostly absent
			case 5:
				if i > 0 {
					batch[i] = batch[i-1] // duplicate run
				} else {
					batch[i] = stored[rng.Intn(len(stored))]
				}
			default:
				batch[i] = stored[rng.Intn(len(stored))]
			}
		}
		if trial%2 == 0 {
			// Sorted with NaNs first — the order Float64sAreSorted accepts
			// — exercising the run-advance paths at shard boundaries.
			sortNaNFirst(batch)
		}
		for name, w := range wrappers {
			vals, found := w.GetBatch(batch)
			intoV := make([]uint64, n)
			intoF := make([]bool, n)
			w.GetBatchInto(batch, intoV, intoF)
			for i, k := range batch {
				gv, gf := w.Get(k)
				if found[i] != gf || (gf && vals[i] != gv) {
					t.Fatalf("%s trial %d: GetBatch[%d]=(%v,%v) != Get(%v)=(%v,%v)",
						name, trial, i, vals[i], found[i], k, gv, gf)
				}
				if intoF[i] != gf || (gf && intoV[i] != gv) {
					t.Fatalf("%s trial %d: GetBatchInto[%d]=(%v,%v) != Get(%v)=(%v,%v)",
						name, trial, i, intoV[i], intoF[i], k, gv, gf)
				}
			}
		}
	}
}

// sortNaNFirst sorts keys with NaNs ordered first — the total order
// sort.Float64sAreSorted recognizes.
func sortNaNFirst(a []float64) {
	nans := 0
	for i, v := range a {
		if v != v {
			a[i], a[nans] = a[nans], a[i]
			nans++
		}
	}
	rest := a[nans:]
	for i := 1; i < len(rest); i++ { // insertion sort; batches are small
		for j := i; j > 0 && rest[j] < rest[j-1]; j-- {
			rest[j], rest[j-1] = rest[j-1], rest[j]
		}
	}
}
