//go:build !race

package alex

// optimisticReads enables the seqlock-style lock-free read path of
// SyncIndex and ShardedIndex.
//
// The protocol (see SyncIndex.Get for the read side and Apply for the
// write side) is a classic sequence lock: writers bump an atomic
// sequence number to odd before mutating and back to even after, and a
// reader snapshots the sequence, probes the index with plain loads, and
// only trusts the result if the sequence was even and unchanged across
// the probe. The speculative probe intentionally races with writers —
// that is the entire point; any value read during a mutation is thrown
// away by the revalidation. The point-lookup probe is panic-proof by
// construction against torn state (clamped and unsigned-guarded
// indexing in internal/leafbase, comma-ok descent in internal/core);
// the longer batch and scan probes additionally carry a recover frame.
// But the race detector cannot see the revalidation, so under `-race`
// builds this constant disables the speculation and every read takes
// the RLock fallback path. Race CI therefore verifies the locked path
// and the writer-side seq discipline; the stress tests run in both
// modes.
const optimisticReads = true

// raceEnabled mirrors the race detector's presence for tests that need
// to know which read path is live.
const raceEnabled = false

// optimisticRetries bounds how many times a reader re-attempts the
// lock-free probe before giving up and taking the read lock. A failed
// attempt means a writer was mid-mutation; retrying once or twice
// bridges short mutations without spinning against a long rebuild.
const optimisticRetries = 3
