//go:build !race

package alex

// optimisticReads enables the seqlock-style lock-free read path of
// SyncIndex and ShardedIndex.
//
// The protocol (see SyncIndex.Get for the read side and Apply for the
// write side) is a classic sequence lock: writers bump an atomic
// sequence number to odd before mutating and back to even after, and a
// reader snapshots the sequence, probes the index with plain loads, and
// only trusts the result if the sequence was even and unchanged across
// the probe. The speculative probe intentionally races with writers on
// slot *values* — that is the entire point; any value read during a
// mutation is thrown away by the revalidation.
//
// Structure, by contrast, no longer races at all: every node reference
// in internal/core is an atomic.Pointer, restructures (expand, retrain,
// split, merge, redistribute) build their replacement off to the side
// and publish it with a single atomic store, and retired structures are
// held by the epoch manager until no snapshot pins them. A speculative
// probe therefore always walks a tree that was fully constructed at
// some instant — it can observe a *stale* leaf (fixed by revalidation)
// but never a torn one, so the probe cannot fault. The remaining racy
// reads are confined to slot values inside a data node (keys, payloads,
// occupancy words) during in-place gap claims, which the seqlock check
// discards. The batch and scan probes keep a recover frame as
// defense-in-depth, not because a fault path is known.
//
// The race detector cannot model "racy value read, then revalidate and
// discard", so under `-race` builds this constant disables the
// speculation and every read takes the RLock fallback path. The
// structural path needs no such opt-out — atomic publication is
// race-clean and `-race` exercises it as-is; only the seqlock value
// reads are compiled out. See docs/concurrency.md for the full memory
// model.
const optimisticReads = true

// raceEnabled mirrors the race detector's presence for tests that need
// to know which read path is live.
const raceEnabled = false

// optimisticRetries bounds how many times a reader re-attempts the
// lock-free probe before giving up and taking the read lock. A failed
// attempt means a writer was mid-mutation; retrying once or twice
// bridges short mutations without spinning against a long rebuild.
const optimisticRetries = 3
