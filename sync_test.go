package alex_test

import (
	"bytes"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	alex "repro"
	"repro/internal/datasets"
)

func TestSyncBasicOps(t *testing.T) {
	s, err := alex.LoadSync([]float64{1, 2, 3}, []uint64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(2); !ok || v != 20 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	if !s.Insert(4, 40) || s.Len() != 4 {
		t.Fatal("insert")
	}
	if !s.Update(1, 11) || !s.Delete(3) {
		t.Fatal("update/delete")
	}
	if s.Contains(3) {
		t.Fatal("deleted key present")
	}
	keys, _ := s.ScanN(0, 10)
	if len(keys) != 3 {
		t.Fatalf("scan = %v", keys)
	}
	if mn, _ := s.MinKey(); mn != 1 {
		t.Fatalf("MinKey = %v", mn)
	}
	if mx, _ := s.MaxKey(); mx != 4 {
		t.Fatalf("MaxKey = %v", mx)
	}
	if s.IndexSizeBytes() <= 0 || s.DataSizeBytes() <= 0 {
		t.Fatal("sizes")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncConcurrentReadersAndWriter(t *testing.T) {
	init := datasets.GenYCSB(20000, 51)
	s, err := alex.LoadSync(init, nil, alex.WithSplitOnInsert())
	if err != nil {
		t.Fatal(err)
	}
	extra := datasets.GenYCSB(40000, 52)[20000:]

	var wg sync.WaitGroup
	var reads, scans atomic.Int64
	stop := make(chan struct{})

	// 4 readers hammer lookups and scans on the initial key set. Each
	// performs a minimum amount of work even if the writer finishes
	// first, so the test always overlaps reads with writes somewhere.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for n := 0; ; n++ {
				if n >= 2000 {
					select {
					case <-stop:
						return
					default:
					}
				}
				k := init[i%len(init)]
				if _, ok := s.Get(k); !ok {
					t.Errorf("reader lost key %v", k)
					return
				}
				reads.Add(1)
				if i%64 == 0 {
					s.Scan(k, func(float64, uint64) bool { return false })
					scans.Add(1)
				}
				i += 7
			}
		}(r * 1000)
	}

	// One writer inserts and deletes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, k := range extra {
			s.Insert(k, uint64(i))
			if i%4 == 0 {
				s.Delete(k)
			}
		}
		close(stop)
	}()

	wg.Wait()
	if t.Failed() {
		return
	}
	if reads.Load() == 0 || scans.Load() == 0 {
		t.Fatalf("reads=%d scans=%d", reads.Load(), scans.Load())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := 20000 + len(extra) - (len(extra)+3)/4
	if s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
}

func TestSyncConcurrentWriters(t *testing.T) {
	s := alex.NewSync(alex.WithMaxKeysPerLeaf(256), alex.WithSplitOnInsert())
	var wg sync.WaitGroup
	const perWriter = 5000
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Insert(float64(base*perWriter+i), uint64(i))
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 4*perWriter {
		t.Fatalf("Len = %d", s.Len())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncSerializeUnderReaders(t *testing.T) {
	s, _ := alex.LoadSync(datasets.GenLognormal(5000, 53), nil)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := alex.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip Len %d != %d", got.Len(), s.Len())
	}
	if s.Unwrap().Len() != s.Len() {
		t.Fatal("Unwrap disagrees")
	}
}

func TestIndexSerializationFacade(t *testing.T) {
	keys := datasets.GenLongitudes(10000, 54)
	idx, _ := alex.Load(keys, nil)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := alex.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var a, b []float64
	idx.Scan(math.Inf(-1), func(k float64, v uint64) bool { a = append(a, k); return true })
	got.Scan(math.Inf(-1), func(k float64, v uint64) bool { b = append(b, k); return true })
	if len(a) != len(b) {
		t.Fatalf("scan %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverges at %d", i)
		}
	}
	if _, err := alex.ReadFrom(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk accepted")
	}
}
