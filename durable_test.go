package alex_test

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	alex "repro"
)

func openDurable(t *testing.T, dir string, opts ...alex.DurableOption) *alex.DurableIndex {
	t.Helper()
	d, err := alex.OpenDurable(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// expectContents fails unless d holds exactly want.
func expectContents(t *testing.T, d *alex.DurableIndex, want map[float64]uint64) {
	t.Helper()
	if d.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(want))
	}
	for k, v := range want {
		got, ok := d.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%v) = %d,%v; want %d,true", k, got, ok, v)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableReplayWithoutCheckpoint closes without ever checkpointing,
// so recovery runs purely off the WAL tail.
func TestDurableReplayWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, alex.WithCheckpointEvery(0), alex.WithDurableShards(4))
	want := map[float64]uint64{}
	for i := 0; i < 500; i++ {
		k := float64(i) * 1.5
		d.Insert(k, uint64(i))
		want[k] = uint64(i)
	}
	keys := []float64{1000, 1001, 1002}
	pays := []uint64{1, 2, 3}
	d.InsertBatch(keys, pays)
	for i, k := range keys {
		want[k] = pays[i]
	}
	d.Delete(1.5)
	delete(want, 1.5)
	d.DeleteBatch([]float64{3, 4.5})
	delete(want, 3)
	delete(want, 4.5)
	d.Merge([]float64{2000, 2001}, []uint64{9, 9})
	want[2000], want[2001] = 9, 9
	if !d.Update(2000, 77) {
		t.Fatal("Update(existing) = false")
	}
	want[2000] = 77
	if d.Update(-555, 1) {
		t.Fatal("Update(missing) = true")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir, alex.WithCheckpointEvery(0), alex.WithDurableShards(4))
	defer re.Close()
	if st := re.WALStats(); st.Replayed == 0 {
		t.Fatal("nothing replayed")
	}
	expectContents(t, re, want)
}

// TestDurableCheckpointTruncates verifies a checkpoint writes the
// snapshot, deletes sealed segments, and recovery = snapshot + tail.
func TestDurableCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, alex.WithCheckpointEvery(0))
	want := map[float64]uint64{}
	for i := 0; i < 300; i++ {
		d.Insert(float64(i), uint64(i))
		want[float64(i)] = uint64(i)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if d.Checkpoints() != 1 {
		t.Fatalf("Checkpoints = %d", d.Checkpoints())
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.alex")); err != nil {
		t.Fatalf("no snapshot: %v", err)
	}
	// Post-checkpoint tail.
	for i := 300; i < 350; i++ {
		d.Insert(float64(i), uint64(i))
		want[float64(i)] = uint64(i)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir, alex.WithCheckpointEvery(0))
	defer re.Close()
	st := re.WALStats()
	// Only the records after the checkpoint (50 inserts + 1 marker
	// segment worth) should replay — far fewer than the 351 logged.
	if st.Replayed == 0 || st.Replayed > 60 {
		t.Fatalf("replayed %d records, want the ~50-record tail", st.Replayed)
	}
	expectContents(t, re, want)
}

// TestDurableTornTail truncates the last WAL segment mid-record: every
// record before the tear recovers, the torn one vanishes whole — a
// batch is never half-applied.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, alex.WithCheckpointEvery(0))
	for i := 0; i < 100; i++ {
		d.Insert(float64(i), uint64(i))
	}
	// The record that will be torn: a batch, to check atomicity.
	d.InsertBatch([]float64{500, 501, 502, 503}, []uint64{1, 2, 3, 4})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v err %v", segs, err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the batch record: cut into its payload but leave its header.
	if err := os.Truncate(last, fi.Size()-20); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir, alex.WithCheckpointEvery(0))
	defer re.Close()
	if re.Len() != 100 {
		t.Fatalf("Len = %d after torn tail, want 100", re.Len())
	}
	for _, k := range []float64{500, 501, 502, 503} {
		if re.Contains(k) {
			t.Fatalf("torn batch key %v partially applied", k)
		}
	}
	for i := 0; i < 100; i++ {
		if _, ok := re.Get(float64(i)); !ok {
			t.Fatalf("pre-tear key %d lost", i)
		}
	}
}

// TestDurableGroupCommit is the coalescing acceptance bar: with
// FsyncAlways and 8 concurrent writers, measured fsyncs per op < 1.
func TestDurableGroupCommit(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, alex.WithFsyncPolicy(alex.FsyncAlways), alex.WithCheckpointEvery(0))
	const writers, perWriter = 8, 150
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				d.Insert(float64(g*perWriter+i), uint64(g))
			}
		}(g)
	}
	wg.Wait()
	st := d.WALStats()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	total := uint64(writers * perWriter)
	if st.Appends != total {
		t.Fatalf("appends = %d, want %d", st.Appends, total)
	}
	if st.Syncs >= total {
		t.Fatalf("fsyncs per op = %.3f (syncs %d / appends %d), want < 1",
			float64(st.Syncs)/float64(total), st.Syncs, total)
	}
	t.Logf("group commit: %d appends, %d fsyncs (%.3f fsyncs/op)",
		total, st.Syncs, float64(st.Syncs)/float64(total))

	re := openDurable(t, dir)
	defer re.Close()
	if re.Len() != writers*perWriter {
		t.Fatalf("recovered Len = %d, want %d", re.Len(), writers*perWriter)
	}
}

// TestDurableSyncBackend runs the roundtrip over the SyncIndex backend.
func TestDurableSyncBackend(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, alex.WithSyncBackend(), alex.WithCheckpointEvery(0))
	want := map[float64]uint64{}
	for i := 0; i < 200; i++ {
		d.Insert(float64(i)/3, uint64(i))
		want[float64(i)/3] = uint64(i)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Delete(0)
	delete(want, 0)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re := openDurable(t, dir, alex.WithSyncBackend())
	defer re.Close()
	expectContents(t, re, want)
}

// TestDurableAutoCheckpoint: the background checkpointer fires once
// enough records accumulate.
func TestDurableAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, alex.WithCheckpointEvery(100), alex.WithFsyncPolicy(alex.FsyncNever))
	defer d.Close()
	for i := 0; i < 300; i++ {
		d.Insert(float64(i), 1)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Checkpoints() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no auto checkpoint after 300 records (every=100); err=%v", d.CheckpointError())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDurableConcurrentCheckpoint races writers against checkpoints and
// verifies no acked write is lost across recovery — the rotate barrier
// under test is exactly what guarantees sealed segments are fully
// applied before their snapshot replaces them.
func TestDurableConcurrentCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, alex.WithFsyncPolicy(alex.FsyncNever), alex.WithCheckpointEvery(0), alex.WithDurableShards(4))
	const writers, perWriter = 4, 300
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perWriter; i++ {
				switch rng.Intn(3) {
				case 0:
					d.Insert(float64(g*perWriter+i), uint64(g))
				case 1:
					ks := []float64{float64(g*perWriter+i) + 0.5}
					d.InsertBatch(ks, []uint64{7})
				case 2:
					d.Insert(float64(g*perWriter+i), uint64(g))
					d.Delete(float64(g*perWriter + i))
				}
			}
		}(g)
	}
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for i := 0; i < 10; i++ {
			if err := d.Checkpoint(); err != nil && !errors.Is(err, alex.ErrClosed) {
				t.Errorf("checkpoint: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-ckptDone
	wantLen := d.Len()
	snap := map[float64]uint64{}
	d.Scan(-1e18, func(k float64, v uint64) bool {
		snap[k] = v
		return true
	})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir, alex.WithDurableShards(4))
	defer re.Close()
	if re.Len() != wantLen {
		t.Fatalf("recovered Len = %d, want %d", re.Len(), wantLen)
	}
	for k, v := range snap {
		got, ok := re.Get(k)
		if !ok || got != v {
			t.Fatalf("recovered Get(%v) = %d,%v; want %d,true", k, got, ok, v)
		}
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableUpdateReplay: updates are logged ahead as conditional
// records — replay never resurrects a key that a delete beat to the
// log, and an update of an absent key replays as a no-op.
func TestDurableUpdateReplay(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, alex.WithCheckpointEvery(0))
	d.Insert(1, 10)
	if !d.Update(1, 11) {
		t.Fatal("Update(existing) = false")
	}
	if d.Update(99, 5) {
		t.Fatal("Update(missing) = true")
	}
	d.Insert(2, 20)
	d.Delete(2)
	if d.Update(2, 21) {
		t.Fatal("Update(deleted) = true")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re := openDurable(t, dir)
	defer re.Close()
	expectContents(t, re, map[float64]uint64{1: 11})
}

// TestDurableLifecycleAfterClose: lifecycle methods fail cleanly once
// closed.
func TestDurableLifecycleAfterClose(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	d.Insert(1, 2)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := d.Flush(); !errors.Is(err, alex.ErrClosed) {
		t.Fatalf("Flush after close: %v", err)
	}
	if err := d.Checkpoint(); !errors.Is(err, alex.ErrClosed) {
		t.Fatalf("Checkpoint after close: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Insert after Close did not panic")
			}
		}()
		d.Insert(3, 4)
	}()
}

// TestDurableChunkedBatch exercises the multi-record chunking path with
// a batch just over the per-record bound... scaled down via the public
// invariant instead: a large batch roundtrips. (The real bound is 2^20
// pairs; logging 2^20+1 keys here is still fast.)
func TestDurableChunkedBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("large batch")
	}
	dir := t.TempDir()
	d := openDurable(t, dir, alex.WithFsyncPolicy(alex.FsyncNever), alex.WithCheckpointEvery(0))
	n := 1<<20 + 3
	keys := make([]float64, n)
	pays := make([]uint64, n)
	for i := range keys {
		keys[i] = float64(i)
		pays[i] = uint64(i)
	}
	if got := d.InsertBatch(keys, pays); got != n {
		t.Fatalf("InsertBatch = %d, want %d", got, n)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re := openDurable(t, dir)
	defer re.Close()
	if re.Len() != n {
		t.Fatalf("recovered Len = %d, want %d", re.Len(), n)
	}
	for _, i := range []int{0, 1 << 19, 1 << 20, n - 1} {
		if v, ok := re.Get(keys[i]); !ok || v != pays[i] {
			t.Fatalf("Get(%v) = %d,%v", keys[i], v, ok)
		}
	}
}
