package alex

// This file defines the unified apply path for mutations. Point writes,
// batch writes, and write-ahead-log replay all reduce to an Op and flow
// through one Apply method per layer (Index, SyncIndex, ShardedIndex),
// so every path shares the same locking, routing, amortization, and
// retrain decisions. DurableIndex leans on this: logging happens once
// in front of Apply, and crash recovery replays WAL records through the
// very same entry point at batch speed.

// OpKind discriminates the mutation kinds of the unified apply path.
type OpKind uint8

// Mutation kinds. OpInsert upserts (existing keys get their payloads
// overwritten), OpDelete removes, OpMerge bulk-upserts through the
// sorted-merge rebuild path — fastest for large batches.
const (
	OpInsert OpKind = iota + 1
	OpDelete
	OpMerge
)

// Op is one logical mutation: one or many keys, applied atomically with
// respect to the layer's locking. A single-key Op takes the point fast
// path; multi-key Ops take the amortized batch path (see InsertBatch /
// DeleteBatch / Merge for the batch semantics).
type Op struct {
	Kind     OpKind
	Keys     []float64
	Payloads []uint64 // parallel to Keys for OpInsert/OpMerge (Merge may pass nil)
}

// Apply executes op on the index and returns the affected-key count:
// newly inserted keys for OpInsert/OpMerge, removed keys for OpDelete.
// It is the single mutation entry point the wrappers and WAL replay
// share; Insert/Delete/InsertBatch/DeleteBatch/Merge are thin
// constructors over it.
func (ix *Index) Apply(op Op) int {
	switch op.Kind {
	case OpInsert:
		if len(op.Keys) == 1 {
			if ix.t.Insert(op.Keys[0], op.Payloads[0]) {
				return 1
			}
			return 0
		}
		return ix.t.InsertBatch(op.Keys, op.Payloads)
	case OpDelete:
		if len(op.Keys) == 1 {
			if ix.t.Delete(op.Keys[0]) {
				return 1
			}
			return 0
		}
		return ix.t.DeleteBatch(op.Keys)
	case OpMerge:
		return ix.t.Merge(op.Keys, op.Payloads)
	}
	panic("alex: unknown op kind")
}
