package alex

import (
	"io"
	"math"

	"repro/internal/core"
)

// IndexSnapshot is a consistent point-in-time read-only view of a
// concurrent index (SyncIndex or ShardedIndex), cut by their Snapshot
// methods. The cut itself is cheap — a brief exclusive section that
// marks every data node frozen (an O(#leaves) pass of flag stores, no
// copying) and pins the current reclamation epoch — and once it
// returns, every read below runs with no locks and no coordination
// with writers: the writer clones a frozen node before first mutating
// it, so the snapshot's view never changes no matter how long it is
// held. Copying cost is paid lazily and only for nodes that are
// actually written after the cut.
//
// Call Close when done: it releases the snapshot's epoch pin so the
// index's reclamation bookkeeping can drop structures retired since the
// cut. A snapshot left unclosed is safe (the garbage collector is the
// ultimate reclaimer) but holds retired structures reachable through
// the epoch manager until it is finalized.
type IndexSnapshot struct {
	// parts are the per-tree snapshots in ascending key order: one for a
	// SyncIndex, one per shard for a ShardedIndex (shards own contiguous
	// key ranges, so concatenating parts yields global key order).
	parts   []*core.Snapshot
	cfg     core.Config
	count   int
	stats   Stats
	release func()
}

func newIndexSnapshot(parts []*core.Snapshot, cfg core.Config, release func()) *IndexSnapshot {
	s := &IndexSnapshot{parts: parts, cfg: cfg, release: release}
	for _, p := range parts {
		s.count += p.Count
		st := p.TreeStats
		s.stats.Merge(&st)
	}
	return s
}

// Len returns the number of elements at the cut.
func (s *IndexSnapshot) Len() int { return s.count }

// Stats returns the aggregated index statistics at the cut.
func (s *IndexSnapshot) Stats() Stats { return s.stats }

// Scan visits elements with key >= start in ascending key order until
// visit returns false, returning the number visited. It takes no locks:
// the caller may hold the snapshot open for arbitrarily long scans
// while writers proceed at full speed.
func (s *IndexSnapshot) Scan(start float64, visit func(key float64, payload uint64) bool) int {
	n := 0
	stopped := false
	wrapped := func(k float64, v uint64) bool {
		n++
		if !visit(k, v) {
			stopped = true
			return false
		}
		return true
	}
	for _, p := range s.parts {
		p.Scan(start, wrapped)
		if stopped {
			break
		}
	}
	return n
}

// ScanRange visits all elements with start <= key < end in order.
// Empty or unordered ranges (end <= start, NaN bounds) visit nothing.
func (s *IndexSnapshot) ScanRange(start, end float64, visit func(key float64, payload uint64) bool) int {
	if !(start < end) {
		return 0
	}
	n := 0
	s.Scan(start, func(k float64, v uint64) bool {
		if k >= end {
			return false
		}
		n++
		return visit(k, v)
	})
	return n
}

// ScanN collects up to max elements starting at the first key >= start.
func (s *IndexSnapshot) ScanN(start float64, max int) ([]float64, []uint64) {
	if max < 0 {
		max = 0
	}
	return s.ScanNInto(start, max, make([]float64, 0, max), make([]uint64, 0, max))
}

// ScanNInto is ScanN appending into caller-supplied slices (reset to
// length 0 first) and returning them; with capacity for max elements it
// allocates nothing.
func (s *IndexSnapshot) ScanNInto(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64) {
	keys, payloads = keys[:0], payloads[:0]
	for _, p := range s.parts {
		if len(keys) >= max {
			break
		}
		// Each part appends only its keys >= start (parts before the
		// start key contribute nothing), staged into the spare tail
		// capacity so a sufficiently large destination allocates nothing.
		tailK, tailP := keys[len(keys):], payloads[len(payloads):]
		k, v := p.ScanNInto(start, max-len(keys), tailK, tailP)
		keys = append(keys, k...)
		payloads = append(payloads, v...)
	}
	return keys, payloads
}

// Collect returns every element in key order.
func (s *IndexSnapshot) Collect() ([]float64, []uint64) {
	keys := make([]float64, 0, s.count)
	payloads := make([]uint64, 0, s.count)
	for _, p := range s.parts {
		pk, pv := p.Collect(nil, nil)
		keys = append(keys, pk...)
		payloads = append(payloads, pv...)
	}
	return keys, payloads
}

// WriteTo serializes the snapshot in the single-Index format
// (configuration included), so ReadFrom / ReadFromSharded restore it
// with any backend. The elements are bulk-loaded into a temporary
// single tree before streaming — the format embeds exact inner-node
// models, so there is no way to emit it without building the tree —
// which transiently costs roughly the snapshot's data size in extra
// memory. Unlike the pre-snapshot implementation, none of that work
// happens under any index lock.
func (s *IndexSnapshot) WriteTo(w io.Writer) (int64, error) {
	keys, vals := s.Collect()
	merged := &Index{t: core.BulkLoadSorted(keys, vals, s.cfg)}
	return merged.WriteTo(w)
}

// Close releases the snapshot's epoch pin. Idempotent; reads remain
// valid after Close (the snapshot still references its sealed nodes),
// but well-behaved callers Close as soon as they are done so retired
// structures stop accumulating on the epoch manager's hold list.
func (s *IndexSnapshot) Close() error {
	if s.release != nil {
		s.release()
		s.release = nil
	}
	return nil
}

// Iter returns a cursor over the snapshot positioned before its first
// element. Snapshot cursors need no Close of their own and stay valid
// as long as the snapshot.
func (s *IndexSnapshot) Iter() *SnapshotIterator { return s.IterFrom(math.Inf(-1)) }

// IterFrom returns a cursor positioned before the first element whose
// key is >= start.
func (s *IndexSnapshot) IterFrom(start float64) *SnapshotIterator {
	return &SnapshotIterator{s: s, pi: -1, start: start}
}

// SnapshotIterator is a stateful cursor over an IndexSnapshot in
// ascending key order. Unlike Index.Iterator it is immune to concurrent
// mutation: it reads the snapshot's sealed nodes, so it never
// invalidates, never skips, and never repeats, regardless of writer
// activity.
type SnapshotIterator struct {
	s     *IndexSnapshot
	pi    int // current part index; -1 before the first fetch
	cur   *core.SnapIterator
	start float64
	key   float64
	val   uint64
	ok    bool
}

// Next advances to the next element, reporting whether one exists.
func (it *SnapshotIterator) Next() bool {
	for {
		if it.cur == nil {
			it.pi++
			if it.pi >= len(it.s.parts) {
				it.ok = false
				return false
			}
			it.cur = it.s.parts[it.pi].IterFrom(it.start)
		}
		if it.cur.Next() {
			it.key, it.val = it.cur.Key(), it.cur.Payload()
			it.ok = true
			return true
		}
		it.cur = nil
	}
}

// Key returns the current element's key; valid only after Next returned
// true.
func (it *SnapshotIterator) Key() float64 { return it.key }

// Payload returns the current element's payload; valid only after Next
// returned true.
func (it *SnapshotIterator) Payload() uint64 { return it.val }

// Valid reports whether the iterator currently points at an element.
func (it *SnapshotIterator) Valid() bool { return it.ok }

// EpochStats reports the state of an index's epoch-based reclamation:
// the current epoch, how many snapshots are pinned, how many retired
// structures the manager still holds for them, and how many it has
// released to the garbage collector.
type EpochStats struct {
	Epoch     uint64
	Pins      int
	Retired   int
	Reclaimed uint64
}
