package alex_test

// Differential integration tests: every index implementation in the
// repository (four ALEX variants, the B+Tree baseline, the Learned Index
// baseline, and the paged ALEX) is driven with the same operation
// sequences and must produce identical answers. A divergence in any one
// implementation — wrong lookup, lost key, mis-ordered scan — fails the
// test and names the culprit.

import (
	"math"
	"math/rand"
	"testing"

	alex "repro"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/learned"
	"repro/internal/paged"
	"repro/internal/pagestore"
)

// kvIndex is the common differential surface.
type kvIndex interface {
	Get(key float64) (uint64, bool)
	Insert(key float64, payload uint64) bool
	Delete(key float64) bool
	Len() int
	ScanN(start float64, max int) ([]float64, []uint64)
}

// pagedAdapter lifts *paged.Index (whose mutating methods return errors)
// into kvIndex.
type pagedAdapter struct{ ix *paged.Index }

func (p pagedAdapter) Get(k float64) (uint64, bool) { return p.ix.Get(k) }
func (p pagedAdapter) Insert(k float64, v uint64) bool {
	ins, err := p.ix.Insert(k, v)
	if err != nil {
		panic(err)
	}
	return ins
}
func (p pagedAdapter) Delete(k float64) bool {
	del, err := p.ix.Delete(k)
	if err != nil {
		panic(err)
	}
	return del
}
func (p pagedAdapter) Len() int { return p.ix.Len() }
func (p pagedAdapter) ScanN(start float64, max int) ([]float64, []uint64) {
	keys, vals, err := p.ix.ScanN(start, max)
	if err != nil {
		panic(err)
	}
	return keys, vals
}

// facadeAdapter lifts *alex.Index (no-op: it already matches).
type facadeAdapter struct{ *alex.Index }

func buildAll(t *testing.T, init []float64) map[string]kvIndex {
	t.Helper()
	sorted := datasets.Sorted(init)
	out := make(map[string]kvIndex)
	for _, cfg := range []core.Config{
		{Layout: core.GappedArray, RMI: core.StaticRMI},
		{Layout: core.GappedArray, RMI: core.AdaptiveRMI, SplitOnInsert: true},
		{Layout: core.PackedMemoryArray, RMI: core.StaticRMI},
		{Layout: core.PackedMemoryArray, RMI: core.AdaptiveRMI, SplitOnInsert: true},
	} {
		cfg.MaxKeysPerLeaf = 256
		out[cfg.VariantName()] = core.BulkLoadSorted(sorted, nil, cfg)
	}
	out["B+Tree"] = btree.BulkLoad(sorted, nil, btree.Config{PageSizeBytes: 128})
	li, err := learned.BulkLoad(init, nil, learned.Config{NumModels: 8, RetrainEvery: 512})
	if err != nil {
		t.Fatal(err)
	}
	out["LearnedIndex"] = li
	pg, err := paged.BulkLoad(init, nil, pagestore.NewMemStore(1024), paged.Config{PageSize: 1024, CachePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	out["PagedALEX"] = pagedAdapter{pg}
	facade, err := alex.Load(init, nil, alex.WithMaxKeysPerLeaf(256), alex.WithSplitOnInsert())
	if err != nil {
		t.Fatal(err)
	}
	out["Facade"] = facadeAdapter{facade}
	return out
}

func TestDifferentialAllImplementations(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	init := datasets.GenLognormal(5000, 97)
	indexes := buildAll(t, init)
	ref := make(map[float64]uint64, len(init))
	for _, k := range init {
		ref[k] = 0
	}
	keyPool := append([]float64(nil), init...)

	for step := 0; step < 30000; step++ {
		var k float64
		if rng.Intn(2) == 0 && len(keyPool) > 0 {
			k = keyPool[rng.Intn(len(keyPool))]
		} else {
			k = math.Floor(rng.Float64()*1e12) + 0.5
		}
		switch rng.Intn(4) {
		case 0: // insert
			_, existed := ref[k]
			v := uint64(step) + 1
			for name, ix := range indexes {
				if ins := ix.Insert(k, v); ins == existed {
					t.Fatalf("step %d: %s Insert(%v) = %v, existed = %v", step, name, k, ins, existed)
				}
			}
			if !existed {
				keyPool = append(keyPool, k)
			}
			ref[k] = v
		case 1: // delete
			_, existed := ref[k]
			for name, ix := range indexes {
				if del := ix.Delete(k); del != existed {
					t.Fatalf("step %d: %s Delete(%v) = %v, want %v", step, name, k, del, existed)
				}
			}
			delete(ref, k)
		case 2: // get
			want, existed := ref[k]
			for name, ix := range indexes {
				v, ok := ix.Get(k)
				if ok != existed || (ok && v != want) {
					t.Fatalf("step %d: %s Get(%v) = (%v,%v), want (%v,%v)", step, name, k, v, ok, want, existed)
				}
			}
		case 3: // short scan, compared across implementations
			var wantK []float64
			first := true
			for name, ix := range indexes {
				gotK, _ := ix.ScanN(k, 8)
				if first {
					wantK = gotK
					first = false
					continue
				}
				if len(gotK) != len(wantK) {
					t.Fatalf("step %d: %s scan length %d != %d", step, name, len(gotK), len(wantK))
				}
				for i := range gotK {
					if gotK[i] != wantK[i] {
						t.Fatalf("step %d: %s scan[%d] = %v, others saw %v", step, name, i, gotK[i], wantK[i])
					}
				}
			}
		}
	}
	for name, ix := range indexes {
		if ix.Len() != len(ref) {
			t.Fatalf("%s: final Len %d != ref %d", name, ix.Len(), len(ref))
		}
	}
}

func TestDifferentialSequentialAndShift(t *testing.T) {
	// The adversarial patterns of Fig 5b/5c, differentially.
	init := make([]float64, 2000)
	for i := range init {
		init[i] = float64(i)
	}
	indexes := buildAll(t, init)
	// Sequential appends, then a disjoint-domain burst.
	for i := 0; i < 3000; i++ {
		k := float64(2000 + i)
		for name, ix := range indexes {
			if !ix.Insert(k, uint64(i)) {
				t.Fatalf("%s: sequential insert %v failed", name, k)
			}
		}
	}
	for i := 0; i < 3000; i++ {
		k := 1e9 + float64(i)
		for name, ix := range indexes {
			if !ix.Insert(k, uint64(i)) {
				t.Fatalf("%s: shifted insert %v failed", name, k)
			}
		}
	}
	// Everything answers identically at the seams.
	for _, probe := range []float64{-1, 0, 1999.5, 2000, 4999, 5000, 1e9 - 1, 1e9, 1e9 + 2999, 2e9} {
		var wantV uint64
		var wantOK bool
		first := true
		for name, ix := range indexes {
			v, ok := ix.Get(probe)
			if first {
				wantV, wantOK = v, ok
				first = false
				continue
			}
			if ok != wantOK || (ok && v != wantV) {
				t.Fatalf("%s: Get(%v) = (%v,%v), others saw (%v,%v)", name, probe, v, ok, wantV, wantOK)
			}
		}
	}
}
