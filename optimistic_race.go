//go:build race

package alex

// Under the race detector the seqlock probe's deliberate data race on
// slot values would be reported (the detector cannot model "racy read,
// then revalidate and discard"), so optimistic reads are compiled out
// and every read takes the RLock path. Structural publication needs no
// such opt-out: node references are atomic.Pointers, so `-race` builds
// exercise the copy-on-write restructure path unchanged. See
// optimistic.go and docs/concurrency.md for the protocol.
const optimisticReads = false

// raceEnabled mirrors the race detector's presence for tests.
const raceEnabled = true

// optimisticRetries is unused when optimisticReads is false; kept so
// both build variants expose the same constants.
const optimisticRetries = 3
