//go:build race

package alex

// Under the race detector the seqlock probe's deliberate data race
// would be reported (the detector cannot model "racy read, then
// revalidate and discard"), so optimistic reads are compiled out and
// every read takes the RLock path. See optimistic.go for the protocol.
const optimisticReads = false

// raceEnabled mirrors the race detector's presence for tests.
const raceEnabled = true

// optimisticRetries is unused when optimisticReads is false; kept so
// both build variants expose the same constants.
const optimisticRetries = 3
