package alex

// Internal router tests: the open-coded branchless locate must agree
// with the sort.Search definition it replaced, and the moved-flag
// retry must re-read the boundary slice only when the table pointer
// actually changed.

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLocateMatchesSortSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(17) // 0..16 bounds
		bounds := make([]float64, n)
		for i := range bounds {
			bounds[i] = rng.Float64() * 100
		}
		sort.Float64s(bounds)
		if n > 2 && rng.Intn(2) == 0 {
			bounds[n/2] = bounds[n/2-1] // duplicate boundary (empty shard)
		}
		tab := &shardTable{bounds: bounds}
		probes := []float64{math.Inf(-1), math.Inf(1), -1, 0, 50, 100, 101}
		for i := 0; i < 100; i++ {
			probes = append(probes, rng.Float64()*110-5)
		}
		for _, b := range bounds {
			probes = append(probes, b, math.Nextafter(b, math.Inf(-1)), math.Nextafter(b, math.Inf(1)))
		}
		for _, key := range probes {
			want := sort.Search(len(bounds), func(i int) bool { return key < bounds[i] })
			if got := tab.locate(key); got != want {
				t.Fatalf("locate(%v) over %v = %d, want %d", key, bounds, got, want)
			}
		}
	}
}

// TestReadShardMovedRetry pins the retry contract: a shard flagged
// moved sends the router back to the freshly installed table, and the
// returned shard is always current.
func TestReadShardMovedRetry(t *testing.T) {
	keys := make([]float64, 4096)
	for i := range keys {
		keys[i] = float64(i)
	}
	s, err := LoadSharded(4, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	old := s.tab.Load()
	// Install a new table and flag the old shards, exactly as
	// retrainLocked does.
	s.Rebalance()
	fresh := s.tab.Load()
	if fresh == old {
		t.Fatal("rebalance did not install a new table")
	}
	for _, sh := range old.shards {
		if !sh.moved {
			t.Fatal("old shard not flagged moved")
		}
	}
	for _, key := range []float64{0, 1000, 2047, 4095} {
		sh := s.readShard(key)
		found := false
		for _, cur := range fresh.shards {
			if cur == sh {
				found = true
			}
		}
		sh.mu.RUnlock()
		if !found {
			t.Fatalf("readShard(%v) returned a shard outside the current table", key)
		}
		if _, ok := s.Get(key); !ok {
			t.Fatalf("Get(%v) lost the key across the retrain", key)
		}
	}
}
