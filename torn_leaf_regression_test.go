package alex_test

// Regression tests for the torn-leaf crash: before restructures were
// published atomically, a lock-free optimistic probe could dereference
// a leaf whose backing arrays were being reallocated mid-rebuild
// (expand/retrain/split) and fault on inconsistent interior state —
// a SIGSEGV that hit roughly once per twenty stress runs. Structural
// changes now build their replacement off to the side and publish it
// with a single atomic pointer store (internal/core, leafops.go), so a
// probe can observe a stale node but never a torn one. These tests
// recreate the exact crash shape at high iteration: a restructure
// storm (tiny leaves, split-on-insert, batch merges and deletes that
// rebuild whole nodes) races lock-free readers and snapshot cutters.
// Any fault, torn payload, or inconsistent snapshot fails the test.
//
// They run in both build modes: normal builds exercise the optimistic
// probes against live restructures; -race builds vet the same
// publication discipline under the detector (the seqlock value reads
// are compiled out there, the atomic structural path is not — see
// optimistic.go).

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	alex "repro"
)

// tornStormSurface is the surface the storm drives; both concurrency
// wrappers satisfy it.
type tornStormSurface interface {
	Get(key float64) (uint64, bool)
	Insert(key float64, payload uint64) bool
	Delete(key float64) bool
	InsertBatch(keys []float64, payloads []uint64) int
	DeleteBatch(keys []float64) int
	Merge(keys []float64, payloads []uint64) int
	ScanNInto(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64)
	Len() int
	Stats() alex.Stats
	Snapshot() *alex.IndexSnapshot
}

// runTornLeafStorm races lock-free readers and snapshot cutters against
// a writer mix chosen to maximize structural churn: every Merge rebuilds
// the touched leaves wholesale, every batch delete triggers contraction
// rebuilds, and tiny split-on-insert leaves make point inserts split
// constantly. The old crash needed only one reader probing one leaf
// mid-reallocation; here thousands of rebuilds overlap millions of
// probes.
func runTornLeafStorm(t *testing.T, idx tornStormSurface) {
	const keySpace = 1 << 14
	keyAt := func(i int) float64 { return float64(i) * 1.5 }
	payload := func(k float64) uint64 { return math.Float64bits(k) ^ 0x5C5C5C5C5C5C5C5C }

	seedK := make([]float64, 0, keySpace/2)
	seedP := make([]uint64, 0, keySpace/2)
	for i := 0; i < keySpace; i += 2 {
		k := keyAt(i)
		seedK = append(seedK, k)
		seedP = append(seedP, payload(k))
	}
	idx.Merge(seedK, seedP)

	var stop atomic.Bool
	var torn atomic.Int64
	var reads atomic.Int64
	var wg sync.WaitGroup

	// Readers: raw lock-free probes over the whole key space.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			sk := make([]float64, 0, 64)
			sv := make([]uint64, 0, 64)
			for !stop.Load() {
				for i := 0; i < 256; i++ {
					k := keyAt(rng.Intn(keySpace))
					if v, ok := idx.Get(k); ok && v != payload(k) {
						torn.Add(1)
					}
				}
				start := keyAt(rng.Intn(keySpace))
				sk, sv = idx.ScanNInto(start, 64, sk, sv)
				prev := math.Inf(-1)
				for i, k := range sk {
					if k < start || k <= prev || sv[i] != payload(k) {
						torn.Add(1)
					}
					prev = k
				}
				reads.Add(256 + int64(len(sk)))
			}
		}(r)
	}

	// Snapshot cutter: cuts a consistent view mid-storm and verifies it
	// twice — a snapshot must be internally ordered, payload-consistent,
	// exactly Len() long, and must read identically on a second pass no
	// matter what the writers have done in between.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			snap := idx.Snapshot()
			iterate := func() int {
				n, prev := 0, math.Inf(-1)
				for it := snap.Iter(); it.Next(); {
					if it.Key() <= prev || it.Payload() != payload(it.Key()) {
						torn.Add(1)
					}
					prev = it.Key()
					n++
				}
				return n
			}
			n1, n2 := iterate(), iterate()
			if n1 != snap.Len() || n2 != n1 {
				torn.Add(1)
			}
			if snap.Stats().NumLeaves == 0 {
				torn.Add(1)
			}
			snap.Close()
			reads.Add(int64(n1 + n2))
		}
	}()

	// Writers: the restructure storm itself.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			ks := make([]float64, 128)
			ps := make([]uint64, 128)
			for !stop.Load() {
				base := rng.Intn(keySpace - len(ks)*2)
				for j := range ks {
					ks[j] = keyAt(base + j*2)
					ps[j] = payload(ks[j])
				}
				switch rng.Intn(4) {
				case 0: // wholesale leaf rebuilds
					idx.Merge(ks, ps)
				case 1: // contraction rebuilds
					idx.DeleteBatch(ks[:64])
				case 2: // split storms via the batch insert path
					idx.InsertBatch(ks, ps)
				default: // point churn: splits, expands, retrains
					for j := 0; j < 64; j++ {
						i := rng.Intn(keySpace)
						if j%3 == 0 {
							idx.Delete(keyAt(i))
						} else {
							idx.Insert(keyAt(i), payload(keyAt(i)))
						}
					}
				}
			}
		}(w)
	}

	deadline := time.Now().Add(15 * time.Second)
	for reads.Load() < 300000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn/inconsistent reads observed (of %d validated)", n, reads.Load())
	}
	st := idx.Stats()
	if st.Splits == 0 && st.Expands == 0 && st.Retrains == 0 {
		t.Fatal("storm produced no restructures; the regression was not exercised")
	}
	t.Logf("validated %d reads, 0 torn (splits=%d expands=%d retrains=%d)",
		reads.Load(), st.Splits, st.Expands, st.Retrains)
}

// TestTornLeafRegressionSync recreates the historical torn-leaf.data
// SIGSEGV shape against SyncIndex: restructure storm vs lock-free
// readers and concurrent snapshots.
func TestTornLeafRegressionSync(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	runTornLeafStorm(t, alex.NewSync(alex.WithSplitOnInsert(), alex.WithMaxKeysPerLeaf(128)))
}

// TestTornLeafRegressionSharded runs the same storm against
// ShardedIndex, whose router-table swaps add a second layer of atomic
// publication over the per-shard trees.
func TestTornLeafRegressionSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	runTornLeafStorm(t, alex.NewSharded(4, alex.WithSplitOnInsert(), alex.WithMaxKeysPerLeaf(128)))
}
