package alex_test

// Stress tests for the optimistic (seqlock) read path: concurrent
// readers run lock-free probes while writers insert, delete and
// update, a splitter keeps the tree shape churning (small leaves +
// split-on-insert force frequent node splits and retrains), and — for
// the sharded index — a retrainer keeps swapping the router table.
// Every payload is a pure function of its key, so the readers can
// verify the fundamental seqlock guarantee on every single result: a
// read returns either a value that was acked at some point or
// not-found — never a torn or otherwise fabricated payload.
//
// On normal builds this exercises the real optimistic path (probes
// racing mutations, revalidation discarding torn results). Under the
// race detector the optimistic path is compiled out (see
// optimistic.go) and the same assertions vet the locked fallback.

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	alex "repro"
)

// stressPayload derives the only payload ever written for a key, so a
// torn read is detectable as a mismatch.
func stressPayload(key float64) uint64 {
	return math.Float64bits(key) ^ 0xA5A5A5A5A5A5A5A5
}

// stressSurface is the read/write surface the stress drives; both
// wrappers satisfy it.
type stressSurface interface {
	Get(key float64) (uint64, bool)
	Insert(key float64, payload uint64) bool
	Delete(key float64) bool
	Update(key float64, payload uint64) bool
	GetBatchInto(keys []float64, payloads []uint64, found []bool)
	ScanNInto(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64)
}

func runOptimisticStress(t *testing.T, idx stressSurface, extra func(stop *atomic.Bool)) {
	const (
		keySpace = 1 << 15
		readers  = 4
		writers  = 2
	)
	keyAt := func(i int) float64 { return float64(i) * 1.25 }

	// Seed half the key space so readers hit immediately.
	seed := make([]float64, 0, keySpace/2)
	pays := make([]uint64, 0, keySpace/2)
	for i := 0; i < keySpace; i += 2 {
		k := keyAt(i)
		seed = append(seed, k)
		pays = append(pays, stressPayload(k))
	}
	if n := idx.Insert(seed[0], pays[0]); !n {
		t.Fatal("seed insert failed")
	}
	for i := 1; i < len(seed); i++ {
		idx.Insert(seed[i], pays[i])
	}

	var stop atomic.Bool
	var torn atomic.Int64
	var reads atomic.Int64
	var wg sync.WaitGroup

	check := func(key float64, v uint64, ok bool) {
		if ok && v != stressPayload(key) {
			torn.Add(1)
		}
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			batch := make([]float64, 32)
			vals := make([]uint64, 32)
			found := make([]bool, 32)
			scanK := make([]float64, 0, 64)
			scanV := make([]uint64, 0, 64)
			for !stop.Load() {
				switch rng.Intn(3) {
				case 0: // point gets
					for i := 0; i < 64; i++ {
						k := keyAt(rng.Intn(keySpace))
						v, ok := idx.Get(k)
						check(k, v, ok)
						reads.Add(1)
					}
				case 1: // sorted batch get
					base := rng.Intn(keySpace - len(batch)*2)
					for i := range batch {
						batch[i] = keyAt(base + i*2)
					}
					idx.GetBatchInto(batch, vals, found)
					for i := range batch {
						check(batch[i], vals[i], found[i])
					}
					reads.Add(int64(len(batch)))
				case 2: // bounded scan: pairs must be self-consistent and ordered
					start := keyAt(rng.Intn(keySpace))
					scanK, scanV = idx.ScanNInto(start, 64, scanK, scanV)
					prev := math.Inf(-1)
					for i, k := range scanK {
						if k < start || k <= prev {
							torn.Add(1)
						}
						prev = k
						check(k, scanV[i], true)
					}
					reads.Add(int64(len(scanK)))
				}
			}
		}(r)
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + w)))
			for !stop.Load() {
				i := rng.Intn(keySpace)
				k := keyAt(i)
				switch rng.Intn(4) {
				case 0:
					idx.Insert(k, stressPayload(k))
				case 1:
					idx.Delete(k)
				case 2:
					idx.Update(k, stressPayload(k))
				case 3: // churn a small sorted run through the batch path
					ks := make([]float64, 8)
					ps := make([]uint64, 8)
					for j := range ks {
						ks[j] = keyAt((i + j*2) % keySpace)
						ps[j] = stressPayload(ks[j])
					}
					idx.Insert(ks[0], ps[0]) // keep at least one present
					if w%2 == 0 {
						type batcher interface {
							InsertBatch(keys []float64, payloads []uint64) int
						}
						if b, ok := idx.(batcher); ok {
							b.InsertBatch(ks, ps)
						}
					}
				}
			}
		}(w)
	}

	if extra != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			extra(&stop)
		}()
	}

	// Run until the readers have validated a substantial number of
	// results (with a wall-clock cap so a starved box still finishes).
	deadline := time.Now().Add(20 * time.Second)
	for reads.Load() < 400000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn/fabricated reads observed (of %d validated)", n, reads.Load())
	}
	t.Logf("validated %d reads, 0 torn", reads.Load())
}

// TestOptimisticStressSyncIndex races readers against writers and the
// tree's own splitter: tiny leaves with split-on-insert make every few
// hundred inserts restructure the tree (splits, expands, retrains)
// while lock-free probes are in flight.
func TestOptimisticStressSyncIndex(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	idx := alex.NewSync(alex.WithSplitOnInsert(), alex.WithMaxKeysPerLeaf(256))
	runOptimisticStress(t, idx, nil)
}

// TestOptimisticStressShardedIndex adds the router retrainer: a
// dedicated goroutine keeps rebalancing the shard table, so optimistic
// readers constantly race table swaps and moved shards on top of the
// per-shard mutations.
func TestOptimisticStressShardedIndex(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	idx := alex.NewSharded(4, alex.WithSplitOnInsert(), alex.WithMaxKeysPerLeaf(256))
	runOptimisticStress(t, idx, func(stop *atomic.Bool) {
		for !stop.Load() {
			idx.Rebalance()
			time.Sleep(2 * time.Millisecond) // let readers race the fresh table
		}
	})
}
