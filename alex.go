// Package alex is a Go implementation of ALEX, the updatable adaptive
// learned index of Ding et al. (SIGMOD 2020). An ALEX index replaces
// B+Tree inner nodes with linear regression models (a Recursive Model
// Index) and stores data in gapped arrays whose elements sit at the
// positions the models predict, so lookups need only a short exponential
// search from the prediction and inserts rarely shift more than a few
// elements.
//
// Quick start:
//
//	idx, err := alex.Load(keys, payloads)       // bulk load
//	v, ok := idx.Get(k)                          // point lookup
//	idx.Insert(k, v)                             // dynamic insert
//	idx.Scan(lo, func(k float64, v uint64) bool { // range scan
//		return k < hi
//	})
//
// The public API is batch-first: multi-key variants of every point
// operation amortize the per-key costs across a batch. A sorted batch
// is grouped by destination data node, so it pays one RMI descent per
// leaf instead of per key, and each node makes at most one
// expand/retrain/split decision per batch:
//
//	vals, found := idx.GetBatch(keys)            // amortized lookups
//	idx.InsertBatch(keys, payloads)              // amortized inserts
//	idx.DeleteBatch(keys)                        // amortized deletes
//	idx.Merge(keys, payloads)                    // bulk-load-speed merge
//
// Unsorted batches remain correct (they fall back to per-key
// application; Merge sorts first), but sorted input is what unlocks the
// amortization. Batch results are always identical in content to the
// equivalent loop of single-key calls.
//
// The four variants the paper evaluates are expressed through options:
// the data node layout (gapped array vs packed memory array), the model
// hierarchy (adaptive vs static RMI), and node splitting on inserts.
// Defaults follow the paper's read-write sweet spot, ALEX-GA-ARMI with
// ~43% data space overhead.
//
// Keys are float64 and must be finite and unique; payloads are uint64
// (store an offset or pointer-equivalent for larger values). The index
// is not safe for concurrent mutation — like the system evaluated in
// the paper, it is single-writer (§7 lists concurrency as future work).
// Two wrappers add concurrency on top: SyncIndex guards one index with
// a readers-writer lock plus a lock-free optimistic read path (simple,
// read-mostly), and ShardedIndex partitions the key space across
// per-core shards behind a learned quantile router so reads and writes
// to different regions run in parallel (write-heavy, multi-core). Both
// publish structural changes with single atomic pointer stores and cut
// consistent point-in-time views via Snapshot, whose retired structures
// are reclaimed through epoch-based reclamation — see
// docs/architecture.md for the layer map and docs/concurrency.md for
// the full memory-model story. DurableIndex adds crash safety over
// either: every acknowledged mutation is written ahead to a
// group-committed log, a background checkpointer snapshots the index
// and truncates the log, and OpenDurable recovers the acknowledged
// state after any crash by replaying the log tail through the batch
// apply path.
package alex

import (
	"io"

	"repro/internal/core"
	"repro/internal/gapped"
	"repro/internal/leafbase"
)

// Layout selects the data node layout (§3.3 of the paper).
type Layout = core.Layout

// Available layouts.
const (
	// GappedArray optimizes search: model-based inserts keep elements at
	// their predicted positions.
	GappedArray = core.GappedArray
	// PackedMemoryArray balances insert and search: density-bounded
	// windows are rebalanced so no region becomes fully packed.
	PackedMemoryArray = core.PackedMemoryArray
)

// Stats aggregates the index's work counters (shifts, expands, splits,
// model retrains) and structural counts (leaves, inner nodes, height).
type Stats = core.Stats

// NodeStats is the per-data-node counter block inside Stats.
type NodeStats = leafbase.Stats

// Option configures an Index at construction.
type Option func(*core.Config)

// WithLayout selects the data node layout.
func WithLayout(l Layout) Option {
	return func(c *core.Config) { c.Layout = l }
}

// WithStaticRMI uses a fixed two-level RMI with numModels leaf models
// (0 = auto), as the Learned Index does; the default is the adaptive
// RMI of §3.4, which bounds leaf sizes and adapts depth to the data.
func WithStaticRMI(numModels int) Option {
	return func(c *core.Config) {
		c.RMI = core.StaticRMI
		c.NumLeafModels = numModels
	}
}

// WithMaxKeysPerLeaf bounds data node size for the adaptive RMI
// (default 4096).
func WithMaxKeysPerLeaf(n int) Option {
	return func(c *core.Config) { c.MaxKeysPerLeaf = n }
}

// WithSplitOnInsert enables node splitting on inserts (§3.4.2),
// recommended when the key distribution shifts over time.
func WithSplitOnInsert() Option {
	return func(c *core.Config) { c.SplitOnInsert = true }
}

// WithInnerFanout sets the partitions per non-root inner node during
// adaptive initialization (default 32).
func WithInnerFanout(n int) Option {
	return func(c *core.Config) { c.InnerFanout = n }
}

// WithSplitFanout sets the children created per node split (default 4).
// With the default cost-optimal load mode this is the fanout *budget*:
// the split planner may choose any power of two up to it, or nest
// deeper where the modeled cost is lower.
func WithSplitFanout(n int) Option {
	return func(c *core.Config) { c.SplitFanout = n }
}

// WithCostOptimalLoad selects cost-model-optimal bulk loading (§4 of
// the paper): construction plans each node's fanout by minimizing the
// modeled cost of future operations — expected search iterations from
// the prediction-error distribution plus expected insert shifts — and
// merges adjacent undersized partitions when a single data node is
// modeled cheaper. This is the default for the adaptive RMI; the option
// exists to state it explicitly and to override an earlier
// WithHeuristicLoad. Prefer it whenever loads are large and read
// performance matters: it adapts fanout to the data instead of applying
// one fixed fanout everywhere.
func WithCostOptimalLoad() Option {
	return func(c *core.Config) { c.Load = core.CostOptimalLoad }
}

// WithHeuristicLoad restores the fixed-fanout heuristic bulk load
// (root fanout from the key-space shape, fixed inner fanout below) as
// an A/B baseline against WithCostOptimalLoad, or for loads where
// minimum build time beats modeled operation cost.
func WithHeuristicLoad() Option {
	return func(c *core.Config) { c.Load = core.HeuristicLoad }
}

// WithDensity sets the gapped array's upper density limit d directly.
func WithDensity(d float64) Option {
	return func(c *core.Config) { c.Density = d }
}

// WithSpaceOverhead sets the gapped array density from a target data
// space overhead (Fig 10): 0.43 reproduces the paper's default
// (B+Tree-comparable), larger values trade memory for throughput.
func WithSpaceOverhead(overhead float64) Option {
	return func(c *core.Config) { c.Density = gapped.DensityForOverhead(overhead) }
}

// WithPayloadBytes sets the payload size used in data-size accounting
// (default 8; the paper's YCSB dataset uses 80).
func WithPayloadBytes(n int) Option {
	return func(c *core.Config) { c.PayloadBytes = n }
}

// WithAdaptivePMA selects the PackedMemoryArray layout with Bender &
// Hu's *adaptive* rebalancing, which §7 of the paper proposes against
// sequential-insert pathologies: window rebalances give recently-hot
// segments a larger share of the gaps.
func WithAdaptivePMA() Option {
	return func(c *core.Config) {
		c.Layout = core.PackedMemoryArray
		c.PMA.Adaptive = true
	}
}

// Index is an updatable adaptive learned index from float64 keys to
// uint64 payloads.
type Index struct {
	t *core.Tree
}

func buildConfig(opts []Option) core.Config {
	var cfg core.Config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// New returns an empty index (a "cold start": it grows by node
// expansion and, with WithSplitOnInsert, node splitting).
func New(opts ...Option) *Index {
	return &Index{t: core.New(buildConfig(opts))}
}

// Load bulk loads an index. keys need not be sorted; duplicates are
// rejected. payloads may be nil.
func Load(keys []float64, payloads []uint64, opts ...Option) (*Index, error) {
	t, err := core.BulkLoad(keys, payloads, buildConfig(opts))
	if err != nil {
		return nil, err
	}
	return &Index{t: t}, nil
}

// LoadSorted bulk loads from keys that are already sorted and unique,
// skipping the sort and the duplicate check.
func LoadSorted(keys []float64, payloads []uint64, opts ...Option) *Index {
	return &Index{t: core.BulkLoadSorted(keys, payloads, buildConfig(opts))}
}

// Get returns the payload stored for key.
func (ix *Index) Get(key float64) (uint64, bool) { return ix.t.Get(key) }

// Contains reports whether key is present.
func (ix *Index) Contains(key float64) bool { return ix.t.Contains(key) }

// Insert adds key with payload, reporting whether a new element was
// added; inserting an existing key overwrites its payload and returns
// false. Keys must be finite.
func (ix *Index) Insert(key float64, payload uint64) bool { return ix.t.Insert(key, payload) }

// Delete removes key, reporting whether it was present.
func (ix *Index) Delete(key float64) bool { return ix.t.Delete(key) }

// Update overwrites the payload of an existing key.
func (ix *Index) Update(key float64, payload uint64) bool { return ix.t.Update(key, payload) }

// GetBatch looks up many keys at once. It returns parallel slices:
// payloads[i] and found[i] describe keys[i]. A non-decreasing batch
// shares one tree descent per data node and amortizes the in-node
// searches; unsorted batches fall back to per-key lookups.
func (ix *Index) GetBatch(keys []float64) (payloads []uint64, found []bool) {
	return ix.t.GetBatch(keys)
}

// GetBatchInto is GetBatch into caller-supplied result slices:
// payloads and found must have len(keys) elements and every slot is
// overwritten. It is the zero-allocation form — the batch is resolved
// by streaming the sorted keys leaf by leaf, with no intermediate
// grouping structures.
func (ix *Index) GetBatchInto(keys []float64, payloads []uint64, found []bool) {
	ix.t.GetBatchInto(keys, payloads, found)
}

// InsertBatch adds many key/payload pairs, returning how many keys were
// new. Existing keys have their payloads overwritten, and a key
// duplicated within the batch keeps its last payload — the same end
// state as the equivalent loop of Insert calls. A non-decreasing batch
// pays one descent per data node and at most one expand/retrain/split
// decision per node; unsorted batches fall back to per-key inserts.
// len(payloads) must equal len(keys); keys must be finite.
func (ix *Index) InsertBatch(keys []float64, payloads []uint64) int {
	return ix.t.InsertBatch(keys, payloads)
}

// DeleteBatch removes many keys at once, returning how many were
// present. A non-decreasing batch shares one descent per data node and
// applies contraction policies once per batch; unsorted batches fall
// back to per-key deletes.
func (ix *Index) DeleteBatch(keys []float64) int { return ix.t.DeleteBatch(keys) }

// Merge bulk-merges key/payload pairs, returning how many keys were
// new. It is the fastest way to add a large batch: every touched data
// node is rebuilt once from a sorted merge of its elements and its
// slice of the batch — one retrain per node, no per-key shifting — so
// large batches approach bulk-load speed. Unsorted input is sorted
// first (the last occurrence of a duplicated key wins); merging into
// an empty index is exactly a bulk load. payloads may be nil.
func (ix *Index) Merge(keys []float64, payloads []uint64) int { return ix.t.Merge(keys, payloads) }

// Len returns the number of stored elements.
func (ix *Index) Len() int { return ix.t.Len() }

// Scan visits elements with key >= start in ascending key order until
// visit returns false; it returns the number of elements visited.
func (ix *Index) Scan(start float64, visit func(key float64, payload uint64) bool) int {
	return ix.t.Scan(start, visit)
}

// ScanN collects up to max elements starting from the first key >= start.
func (ix *Index) ScanN(start float64, max int) ([]float64, []uint64) {
	return ix.t.ScanN(start, max)
}

// ScanNInto is ScanN appending into caller-supplied slices (reset to
// length 0 first) and returning them; with capacity for max elements
// the whole scan allocates nothing.
func (ix *Index) ScanNInto(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64) {
	return ix.t.ScanNInto(start, max, keys, payloads)
}

// ScanRange visits all elements with start <= key < end in order.
// Empty or unordered ranges (end <= start, NaN bounds) visit nothing.
func (ix *Index) ScanRange(start, end float64, visit func(key float64, payload uint64) bool) int {
	if !(start < end) {
		return 0
	}
	n := 0
	ix.t.Scan(start, func(k float64, v uint64) bool {
		if k >= end {
			return false
		}
		n++
		return visit(k, v)
	})
	return n
}

// Iterator is a stateful cursor over the index in ascending key order.
// Mutating the index invalidates outstanding iterators.
type Iterator = core.Iterator

// Iter returns a cursor positioned before the first element.
func (ix *Index) Iter() *Iterator { return ix.t.Iter() }

// IterFrom returns a cursor positioned before the first element whose
// key is >= start.
func (ix *Index) IterFrom(start float64) *Iterator { return ix.t.IterFrom(start) }

// MinKey returns the smallest key.
func (ix *Index) MinKey() (float64, bool) { return ix.t.MinKey() }

// MaxKey returns the largest key.
func (ix *Index) MaxKey() (float64, bool) { return ix.t.MaxKey() }

// Height returns the number of tree levels (a lone data node is 1).
func (ix *Index) Height() int { return ix.t.Height() }

// IndexSizeBytes accounts the RMI structure: models, child pointers and
// node metadata — the quantity Fig 4e-4h compares against B+Tree inner
// nodes.
func (ix *Index) IndexSizeBytes() int { return ix.t.IndexSizeBytes() }

// DataSizeBytes accounts data node storage: key/payload arrays including
// gaps, plus occupancy bitmaps.
func (ix *Index) DataSizeBytes() int { return ix.t.DataSizeBytes() }

// Stats returns aggregated work counters and structural counts.
func (ix *Index) Stats() Stats { return ix.t.Stats() }

// PredictionError returns the RMI's absolute position prediction error
// for an existing key — the quantity of the paper's Fig 7.
func (ix *Index) PredictionError(key float64) (int, bool) { return ix.t.PredictionError(key) }

// LeafSizes returns the key count of every data node, left to right.
func (ix *Index) LeafSizes() []int { return ix.t.LeafSizes() }

// Rebuild reconstructs the whole index from its current contents
// through the cost-optimal fanout-tree planner, regardless of the
// configured load mode. Incremental growth — merges, splits, expansions
// — optimizes one node at a time; Rebuild re-plans globally, restoring
// bulk-load-quality structure after the tree has drifted far from its
// loaded shape (it is what recovery uses after replaying a large log
// tail). The old structure is retired through the retire hook.
func (ix *Index) Rebuild() { ix.t.RebuildCostOptimal() }

// CheckInvariants verifies the structural invariants of the whole tree;
// it is meant for tests and debugging and costs a full traversal.
func (ix *Index) CheckInvariants() error { return ix.t.CheckInvariants() }

// WriteTo serializes the index (configuration, tree shape, elements) to
// w. Data nodes are re-bulk-loaded on read, so a round trip restores an
// equivalent freshly-loaded index with identical contents.
func (ix *Index) WriteTo(w io.Writer) (int64, error) { return ix.t.WriteTo(w) }

// ReadFrom deserializes an index written with WriteTo. Corrupt or
// truncated streams are rejected with an error wrapping
// core.ErrBadFormat.
func ReadFrom(r io.Reader) (*Index, error) {
	t, err := core.ReadFrom(r)
	if err != nil {
		return nil, err
	}
	return &Index{t: t}, nil
}
