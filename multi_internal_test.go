package alex

import "testing"

// TestMultiOverflowSlotReuse verifies the overflow free-list: churn
// that repeatedly promotes keys to overflow slots and demotes them
// again must not grow the overflow table without bound.
func TestMultiOverflowSlotReuse(t *testing.T) {
	m := NewMulti()
	for round := 0; round < 100; round++ {
		k := float64(round % 7)
		m.Add(k, 1)
		m.Add(k, 2)
		m.Add(k, 3)
		if got := m.Count(k); got != 3 {
			t.Fatalf("round %d: Count = %d, want 3", round, got)
		}
		// Demote back to a direct value, then remove entirely.
		if !m.Remove(k, 2) || !m.Remove(k, 3) {
			t.Fatalf("round %d: Remove failed", round)
		}
		if got := m.Get(k); len(got) != 1 || got[0] != 1 {
			t.Fatalf("round %d: Get = %v, want [1]", round, got)
		}
		if !m.Remove(k, 1) {
			t.Fatalf("round %d: final Remove failed", round)
		}
	}
	if len(m.overflow) > 1 {
		t.Fatalf("overflow table grew to %d slots; demoted slots are not reused", len(m.overflow))
	}

	// RemoveAll on an overflowed key must release its slot too.
	for i := 0; i < 50; i++ {
		m.Add(9, uint64(i))
		m.Add(9, uint64(i)+100)
		if got := m.RemoveAll(9); got != 2 {
			t.Fatalf("RemoveAll = %d, want 2", got)
		}
	}
	if len(m.overflow) > 1 {
		t.Fatalf("overflow table grew to %d slots after RemoveAll churn", len(m.overflow))
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
}

// TestMultiGetSlicesSurviveSlotReuse pins down that slices returned by
// Get keep their contents when their overflow slot is later released
// and recycled for another key.
func TestMultiGetSlicesSurviveSlotReuse(t *testing.T) {
	m := NewMulti()
	m.Add(1, 10)
	m.Add(1, 11)
	got := m.Get(1)
	if len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("Get(1) = %v", got)
	}
	// Demote key 1 (releases its slot), then promote key 2 into the
	// recycled slot.
	m.Remove(1, 11)
	m.Add(2, 20)
	m.Add(2, 21)
	if got[0] != 10 || got[1] != 11 {
		t.Fatalf("held Get(1) slice changed to %v after slot reuse", got)
	}
	if g2 := m.Get(2); len(g2) != 2 || g2[0] != 20 || g2[1] != 21 {
		t.Fatalf("Get(2) = %v", g2)
	}
}
