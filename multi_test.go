package alex_test

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	alex "repro"
)

func TestMultiBasics(t *testing.T) {
	m := alex.NewMulti()
	if !m.Add(1, 10) {
		t.Fatal("first add")
	}
	if m.Add(1, 11) || m.Add(1, 12) {
		t.Fatal("duplicate adds must return false")
	}
	if got := m.Get(1); len(got) != 3 || got[0] != 10 || got[1] != 11 || got[2] != 12 {
		t.Fatalf("Get = %v", got)
	}
	if m.Count(1) != 3 || m.Count(2) != 0 {
		t.Fatal("Count")
	}
	if m.Len() != 3 || m.KeyLen() != 1 {
		t.Fatalf("Len=%d KeyLen=%d", m.Len(), m.KeyLen())
	}
	if m.Get(99) != nil {
		t.Fatal("absent key")
	}
}

func TestMultiRemove(t *testing.T) {
	m := alex.NewMulti()
	m.Add(5, 1)
	m.Add(5, 2)
	m.Add(5, 3)
	if !m.Remove(5, 2) {
		t.Fatal("remove middle")
	}
	if got := m.Get(5); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("after remove: %v", got)
	}
	if m.Remove(5, 2) {
		t.Fatal("double remove")
	}
	// Demotion back to a direct value.
	if !m.Remove(5, 1) {
		t.Fatal("remove to single")
	}
	if got := m.Get(5); len(got) != 1 || got[0] != 3 {
		t.Fatalf("after demote: %v", got)
	}
	if !m.Remove(5, 3) {
		t.Fatal("remove last")
	}
	if m.Count(5) != 0 || m.Len() != 0 {
		t.Fatal("not empty")
	}
	if m.Remove(5, 3) || m.Remove(9, 1) {
		t.Fatal("remove from empty")
	}
}

func TestMultiRemoveAll(t *testing.T) {
	m := alex.NewMulti()
	m.Add(1, 10)
	m.Add(2, 20)
	m.Add(2, 21)
	if n := m.RemoveAll(2); n != 2 {
		t.Fatalf("RemoveAll = %d", n)
	}
	if m.Len() != 1 || m.KeyLen() != 1 {
		t.Fatalf("Len=%d KeyLen=%d", m.Len(), m.KeyLen())
	}
	if n := m.RemoveAll(2); n != 0 {
		t.Fatalf("second RemoveAll = %d", n)
	}
}

func TestMultiSingleValueRemoveWrongValue(t *testing.T) {
	m := alex.NewMulti()
	m.Add(1, 10)
	if m.Remove(1, 99) {
		t.Fatal("removed wrong value")
	}
	if m.Count(1) != 1 {
		t.Fatal("count changed")
	}
}

func TestMultiScanOrder(t *testing.T) {
	m := alex.NewMulti()
	m.Add(3, 30)
	m.Add(1, 10)
	m.Add(2, 20)
	m.Add(2, 21)
	var keys []float64
	var vals []uint64
	m.Scan(0, func(k float64, v uint64) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	wantK := []float64{1, 2, 2, 3}
	wantV := []uint64{10, 20, 21, 30}
	if len(keys) != 4 {
		t.Fatalf("scan = %v", keys)
	}
	for i := range wantK {
		if keys[i] != wantK[i] || vals[i] != wantV[i] {
			t.Fatalf("scan[%d] = (%v,%v), want (%v,%v)", i, keys[i], vals[i], wantK[i], wantV[i])
		}
	}
	// Early stop mid-duplicates.
	n := 0
	m.Scan(0, func(k float64, v uint64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestMultiRejectsTopBit(t *testing.T) {
	m := alex.NewMulti()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 64-bit value")
		}
	}()
	m.Add(1, 1<<63)
}

// Property: MultiIndex behaves like a map[float64][]uint64 (as a
// multiset per key) under random adds and removes.
func TestQuickMultiAgainstMap(t *testing.T) {
	type op struct {
		Add   bool
		Key   uint8
		Value uint16
	}
	f := func(ops []op) bool {
		m := alex.NewMulti(alex.WithMaxKeysPerLeaf(64))
		ref := make(map[float64][]uint64)
		total := 0
		for _, o := range ops {
			k := float64(o.Key % 32)
			v := uint64(o.Value % 8) // force duplicate values too
			if o.Add {
				first := m.Add(k, v)
				if first != (len(ref[k]) == 0) {
					return false
				}
				ref[k] = append(ref[k], v)
				total++
			} else {
				removed := m.Remove(k, v)
				wantRemoved := false
				for i, got := range ref[k] {
					if got == v {
						ref[k] = append(ref[k][:i], ref[k][i+1:]...)
						if len(ref[k]) == 0 {
							delete(ref, k)
						}
						wantRemoved = true
						total--
						break
					}
				}
				if removed != wantRemoved {
					return false
				}
			}
		}
		if m.Len() != total || m.KeyLen() != len(ref) {
			return false
		}
		for k, want := range ref {
			got := m.Get(k)
			if len(got) != len(want) {
				return false
			}
			// Same multiset (insertion order is preserved by both, but
			// removal reshuffles ref differently; compare sorted).
			a := append([]uint64(nil), got...)
			b := append([]uint64(nil), want...)
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiLargeChurn(t *testing.T) {
	m := alex.NewMulti()
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 50000; i++ {
		m.Add(float64(rng.Intn(1000)), uint64(rng.Intn(1<<20)))
	}
	if m.Len() != 50000 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.KeyLen() > 1000 {
		t.Fatalf("KeyLen = %d", m.KeyLen())
	}
	if err := m.Unwrap().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every key's value count sums to the total.
	sum := 0
	for k := 0; k < 1000; k++ {
		sum += m.Count(float64(k))
	}
	if sum != 50000 {
		t.Fatalf("counts sum to %d", sum)
	}
}
