package alex

import (
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faultfs"
	"repro/internal/wal"
)

// Replayer coalesces consecutive same-kind WAL records into large
// batches before applying them, converting a stream of point records
// into the amortized batch path: inserts become bulk merges (the
// sorted-merge rebuild, near bulk-load speed; last duplicate wins, the
// same end state as sequential replay), deletes become sorted delete
// batches (one descent per leaf). Crash recovery and replication
// followers share it, so a replica applies the primary's record stream
// through exactly the code path recovery uses — a follower's state is
// byte-for-byte what the primary would reconstruct from the same log.
//
// Records buffered by Add are not observable in the backend until
// Flush; a follower therefore advances its applied position only at
// flush boundaries.
type Replayer struct {
	b    Backend
	kind OpKind // 0 = nothing buffered
	keys []float64
	pays []uint64
	// merged counts keys applied through coalesced merges, the signal
	// recovery uses to decide whether the replayed tree has drifted far
	// enough from bulk-load shape to be worth rebuilding (see
	// MergedKeys).
	merged int
}

// NewReplayer returns a replayer applying records to b.
func NewReplayer(b Backend) *Replayer { return &Replayer{b: b} }

// replayFlushAt bounds the coalescing buffer.
const replayFlushAt = 1 << 16

// Add buffers (or applies) one WAL record.
func (r *Replayer) Add(rec *wal.Record) error {
	switch rec.Op {
	case wal.OpInsert, wal.OpInsertBatch, wal.OpMerge:
		r.buffer(OpInsert, rec.Keys, rec.Payloads)
	case wal.OpDelete, wal.OpDeleteBatch:
		r.buffer(OpDelete, rec.Keys, nil)
	case wal.OpUpdate:
		// Conditional: applied in log position (after anything
		// buffered), touching the key only if present.
		r.Flush()
		r.b.Update(rec.Keys[0], rec.Payloads[0])
	case wal.OpCheckpoint:
		// Marker only; the snapshot it announces was already loaded.
	}
	return nil
}

func (r *Replayer) buffer(kind OpKind, keys []float64, pays []uint64) {
	if r.kind != 0 && r.kind != kind {
		r.Flush()
	}
	r.kind = kind
	r.keys = append(r.keys, keys...)
	if kind == OpInsert {
		r.pays = append(r.pays, pays...)
	}
	if len(r.keys) >= replayFlushAt {
		r.Flush()
	}
}

// Flush applies everything buffered to the backend.
func (r *Replayer) Flush() {
	if r.kind != 0 && len(r.keys) > 0 {
		switch r.kind {
		case OpInsert:
			r.b.Apply(Op{Kind: OpMerge, Keys: r.keys, Payloads: r.pays})
			r.merged += len(r.keys)
		case OpDelete:
			sort.Float64s(r.keys)
			r.b.Apply(Op{Kind: OpDelete, Keys: r.keys})
		}
	}
	r.keys, r.pays, r.kind = r.keys[:0], r.pays[:0], 0
}

// MergedKeys returns the cumulative number of keys this replayer has
// applied through coalesced merges. Each merge rebuilds only the leaves
// it touches, so a large merged volume over a small snapshot means the
// tree's shape is merge-grown rather than planned; recovery compares
// this against the recovered size to decide on a cost-optimal rebuild.
func (r *Replayer) MergedKeys() int { return r.merged }

// ReplicationPosition returns the log head a fully caught-up follower
// would have applied: the current WAL segment and its committed tail
// watermark. A mutation is covered by the position returned after it
// was acknowledged.
func (d *DurableIndex) ReplicationPosition() (seg uint64, off int64) {
	return d.log.Position()
}

// NewTailer opens a rotate-aware streaming reader over the index's WAL
// at (seg, off) — the primary-side engine of one follower's REPLICATE
// stream. seg 0 means the start of retained history. wal.ErrTruncated
// reports that the requested history was checkpointed away; the
// follower must bootstrap from SnapshotForReplication instead.
func (d *DurableIndex) NewTailer(seg uint64, off int64) (*wal.Tailer, error) {
	return d.log.NewTailer(seg, off)
}

// SnapshotForReplication opens the on-disk snapshot for streaming to a
// bootstrapping follower, returning the open file (nil when no
// checkpoint has run yet — the follower starts empty), its size, and
// the segment the follower must replay and tail from after loading it.
// The caller owns rc and must close it.
//
// The oldest retained segment is pinned *before* the snapshot is
// opened: if a checkpoint lands between the two steps, the streamed
// snapshot is newer than startSeg and the follower replays records the
// snapshot already contains — an idempotent overlap (the same one
// local recovery tolerates), never a gap. The pair (snapshot, replay
// from startSeg) therefore reconstructs exactly what OpenDurable would
// recover on the primary.
func (d *DurableIndex) SnapshotForReplication() (rc io.ReadCloser, size int64, startSeg uint64, err error) {
	segs, err := wal.SegmentsFS(d.cfg.fsys, d.dir)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(segs) > 0 {
		startSeg = segs[0].Seq
	} else {
		startSeg = d.log.CurrentSeq()
	}
	f, err := faultfs.Open(d.cfg.fsys, filepath.Join(d.dir, snapshotName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, startSeg, nil
		}
		return nil, 0, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	return f, st.Size(), startSeg, nil
}

// FollowerInfo is one connected follower's replication progress.
type FollowerInfo struct {
	Addr     string
	Seg      uint64 // segment of the next record the follower will apply
	Off      int64  // offset within it
	LagBytes int64  // committed log bytes the follower has not applied
}

// FollowerHandle tracks one follower's acknowledged position for lag
// reporting. The REPLICATE handler registers one per stream and
// advances it as records ship.
type FollowerHandle struct {
	d    *DurableIndex
	addr string
	seg  atomic.Uint64
	off  atomic.Int64
}

// RegisterFollower adds a follower (identified by its remote address)
// to the lag registry, positioned at (seg, off).
func (d *DurableIndex) RegisterFollower(addr string, seg uint64, off int64) *FollowerHandle {
	h := &FollowerHandle{d: d, addr: addr}
	h.seg.Store(seg)
	h.off.Store(off)
	d.folMu.Lock()
	if d.followers == nil {
		d.followers = make(map[*FollowerHandle]struct{})
	}
	d.followers[h] = struct{}{}
	d.folMu.Unlock()
	return h
}

// Advance records that the follower has been shipped everything up to
// (seg, off).
func (h *FollowerHandle) Advance(seg uint64, off int64) {
	h.seg.Store(seg)
	h.off.Store(off)
}

// Unregister removes the follower from the registry (stream ended).
func (h *FollowerHandle) Unregister() {
	h.d.folMu.Lock()
	delete(h.d.followers, h)
	h.d.folMu.Unlock()
}

// Followers snapshots every connected follower's progress and lag.
func (d *DurableIndex) Followers() []FollowerInfo {
	d.folMu.Lock()
	hs := make([]*FollowerHandle, 0, len(d.followers))
	for h := range d.followers {
		hs = append(hs, h)
	}
	d.folMu.Unlock()
	if len(hs) == 0 {
		return nil
	}
	pseg, poff := d.log.Position()
	segs, _ := wal.SegmentsFS(d.cfg.fsys, d.dir) // best effort: sizes for cross-segment lag
	infos := make([]FollowerInfo, 0, len(hs))
	for _, h := range hs {
		fseg, foff := h.seg.Load(), h.off.Load()
		infos = append(infos, FollowerInfo{
			Addr:     h.addr,
			Seg:      fseg,
			Off:      foff,
			LagBytes: lagBytes(d.cfg.fsys, segs, pseg, poff, fseg, foff),
		})
	}
	return infos
}

// lagBytes measures committed-but-unshipped log bytes between a
// follower position and the primary head: the remainder of the
// follower's segment, the full bodies of the segments between, and the
// committed prefix of the head segment. Segments already truncated
// contribute nothing (the follower is about to re-bootstrap anyway).
func lagBytes(fsys faultfs.FS, segs []wal.Segment, pseg uint64, poff int64, fseg uint64, foff int64) int64 {
	if fseg > pseg || (fseg == pseg && foff >= poff) {
		return 0
	}
	if fseg == pseg {
		return poff - foff
	}
	lag := poff - wal.HeaderSize // head segment's committed body
	for _, s := range segs {
		if s.Seq < fseg || s.Seq >= pseg {
			continue
		}
		st, err := fsys.Stat(s.Path)
		if err != nil {
			continue
		}
		from := wal.HeaderSize
		if s.Seq == fseg {
			from = foff
		}
		if n := st.Size() - from; n > 0 {
			lag += n
		}
	}
	return lag
}

// folMu guards the follower registry; split into its own type to keep
// DurableIndex's zero-value fields obvious at the declaration site.
type followerRegistry struct {
	folMu     sync.Mutex
	followers map[*FollowerHandle]struct{}
}
