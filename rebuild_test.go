package alex_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	alex "repro"
)

// rebuildBackend abstracts the two concurrent wrappers for the shared
// stress body.
type rebuildBackend interface {
	Get(key float64) (uint64, bool)
	GetBatchInto(keys []float64, payloads []uint64, found []bool)
	ScanNInto(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64)
	Insert(key float64, payload uint64) bool
	Rebuild()
	Len() int
	CheckInvariants() error
}

// TestRebuildUnderConcurrentReads hammers a wrapper with lock-free
// readers and a point writer while the main goroutine repeatedly
// rebuilds the whole structure through the cost-optimal planner. Every
// loaded key must stay visible through every rebuild, and the final
// tree must hold clean invariants. Run under -race this also checks the
// rebuild publishes its new root with the same discipline splits use.
func TestRebuildUnderConcurrentReads(t *testing.T) {
	const n = 50000
	keys := make([]float64, n)
	pays := make([]uint64, n)
	for i := range keys {
		keys[i] = float64(i) * 1.25
		pays[i] = uint64(i)
	}
	sIdx, err := alex.LoadSync(keys, pays)
	if err != nil {
		t.Fatal(err)
	}
	shIdx, err := alex.LoadSharded(4, keys, pays)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		b    rebuildBackend
	}{
		{"Sync", sIdx},
		{"Sharded", shIdx},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stop atomic.Bool
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					kb := make([]float64, 64)
					pb := make([]uint64, 64)
					fb := make([]bool, 64)
					for !stop.Load() {
						i := rng.Intn(n)
						if v, ok := tc.b.Get(keys[i]); !ok || v != pays[i] {
							t.Errorf("Get(%v) = %d,%v during rebuild; want %d,true", keys[i], v, ok, pays[i])
							return
						}
						at := rng.Intn(n - 64)
						copy(kb, keys[at:at+64])
						tc.b.GetBatchInto(kb, pb, fb)
						for j, ok := range fb {
							if !ok || pb[j] != pays[at+j] {
								t.Errorf("GetBatch(%v) = %d,%v during rebuild; want %d,true", kb[j], pb[j], ok, pays[at+j])
								return
							}
						}
						kb2, _ := tc.b.ScanNInto(keys[rng.Intn(n)], 32, nil, nil)
						for j := 1; j < len(kb2); j++ {
							if kb2[j] <= kb2[j-1] {
								t.Errorf("ScanN out of order during rebuild: %v", kb2)
								return
							}
						}
					}
				}(int64(g))
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(99))
				for i := 0; !stop.Load(); i++ {
					tc.b.Insert(float64(n)*1.25+float64(i)+rng.Float64()/2, uint64(i))
				}
			}()
			for r := 0; r < 5; r++ {
				tc.b.Rebuild()
			}
			stop.Store(true)
			wg.Wait()
			if err := tc.b.CheckInvariants(); err != nil {
				t.Fatalf("invariants after concurrent rebuilds: %v", err)
			}
			if got := tc.b.Len(); got < n {
				t.Fatalf("Len = %d after rebuilds, want >= %d", got, n)
			}
		})
	}
}

// TestDurableRecoveryRebuild replays a WAL tail large enough to trip
// the recovery rebuild threshold (>= 1<<16 merged keys, more than half
// the recovered contents) and verifies the rebuilt index serves exactly
// the acknowledged state.
func TestDurableRecoveryRebuild(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []alex.DurableOption
	}{
		{"Sharded", []alex.DurableOption{alex.WithCheckpointEvery(0), alex.WithDurableShards(4)}},
		{"Sync", []alex.DurableOption{alex.WithCheckpointEvery(0), alex.WithSyncBackend()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := openDurable(t, dir, tc.opts...)
			const n = 1<<16 + 1024
			keys := make([]float64, 0, 4096)
			pays := make([]uint64, 0, 4096)
			for i := 0; i < n; i++ {
				keys = append(keys, float64(i)*1.5)
				pays = append(pays, uint64(i))
				if len(keys) == 4096 {
					d.InsertBatch(keys, pays)
					keys, pays = keys[:0], pays[:0]
				}
			}
			if len(keys) > 0 {
				d.InsertBatch(keys, pays)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}

			re := openDurable(t, dir, tc.opts...)
			defer re.Close()
			if got := re.Len(); got != n {
				t.Fatalf("Len after recovery rebuild = %d, want %d", got, n)
			}
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 2000; i++ {
				j := rng.Intn(n)
				if v, ok := re.Get(float64(j) * 1.5); !ok || v != uint64(j) {
					t.Fatalf("Get(%v) = %d,%v after recovery rebuild; want %d,true", float64(j)*1.5, v, ok, j)
				}
			}
			if err := re.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
