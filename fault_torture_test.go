package alex_test

// Disk fault-injection torture: a DurableIndex opened over a scripted
// faultfs.Inject filesystem, driven through randomized fault schedules
// (failed fsync, disk full, short write, torn-write-at-crash, latency,
// failed directory sync, failed snapshot fsync). Every schedule checks
// the same contract the kill -9 harness checks at process level:
//
//   - every acknowledged write is recovered on reopen,
//   - the unacknowledged in-flight write fails loudly (a typed error,
//     never a silent drop) and is recovered all-or-nothing,
//   - after a durability failure the index degrades to read-only:
//     mutations are rejected with ErrDegraded while reads keep serving.
//
// Schedules are randomized per run; every test logs its seed and honors
// FAULT_SEED for deterministic replay.

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"syscall"
	"testing"
	"time"

	alex "repro"
	"repro/internal/faultfs"
	"repro/internal/wal"
)

// tortureSeed returns a fresh random seed, or the FAULT_SEED override,
// and logs it so a failure can be replayed exactly.
func tortureSeed(t *testing.T) int64 {
	t.Helper()
	seed := time.Now().UnixNano()
	if s := os.Getenv("FAULT_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("FAULT_SEED=%q: %v", s, err)
		}
		seed = v
	}
	t.Logf("fault schedule seed=%d (replay with FAULT_SEED=%d)", seed, seed)
	return seed
}

// tortureResult is the oracle a fault workload leaves behind: exactly
// what the index acknowledged, and what was in flight when it failed.
type tortureResult struct {
	acked    map[float64]uint64
	pending  []float64 // keys of the op that errored (empty if none)
	pendVal  uint64
	firstErr error
}

// runFaultWorkload drives single inserts and 4-key batches through the
// Try API until the schedule bites or rounds run out.
func runFaultWorkload(d *alex.DurableIndex, rounds int) *tortureResult {
	res := &tortureResult{acked: make(map[float64]uint64)}
	for i := 0; i < rounds; i++ {
		val := uint64(i + 1)
		if i%7 == 6 {
			keys := make([]float64, 4)
			vals := make([]uint64, 4)
			for j := range keys {
				keys[j] = 1e6 + float64(i*10+j)
				vals[j] = val
			}
			res.pending, res.pendVal = keys, val
			if _, err := d.TryInsertBatch(keys, vals); err != nil {
				res.firstErr = err
				return res
			}
			for _, k := range keys {
				res.acked[k] = val
			}
		} else {
			k := float64(i * 10)
			res.pending, res.pendVal = []float64{k}, val
			if _, err := d.TryInsert(k, val); err != nil {
				res.firstErr = err
				return res
			}
			res.acked[k] = val
		}
		res.pending = nil
	}
	return res
}

// assertDegraded checks the graceful-degradation contract on the still
// open index: sticky typed rejection of writes, reads fully served.
func assertDegraded(t *testing.T, d *alex.DurableIndex, res *tortureResult) {
	t.Helper()
	if err := d.Degraded(); !errors.Is(err, alex.ErrDegraded) {
		t.Fatalf("Degraded() = %v, want ErrDegraded", err)
	}
	if !errors.Is(res.firstErr, alex.ErrDegraded) {
		t.Fatalf("failing write returned %v, want it to wrap ErrDegraded", res.firstErr)
	}
	if !errors.Is(res.firstErr, faultfs.ErrInjected) {
		t.Fatalf("failing write returned %v, want the injected cause preserved", res.firstErr)
	}
	if _, err := d.TryInsert(-1, 1); !errors.Is(err, alex.ErrDegraded) {
		t.Fatalf("write on degraded index = %v, want ErrDegraded", err)
	}
	if !d.WALStats().Degraded {
		t.Fatal("WALStats().Degraded = false on a degraded index")
	}
	if err := d.Checkpoint(); !errors.Is(err, alex.ErrDegraded) {
		t.Fatalf("Checkpoint on degraded index = %v, want ErrDegraded", err)
	}
	// Reads keep serving the acknowledged prefix, lock-free.
	for k, v := range res.acked {
		got, ok := d.Get(k)
		if !ok || got != v {
			t.Fatalf("degraded read Get(%g) = %d,%v want %d,true", k, got, ok, v)
		}
	}
	if d.Len() < len(res.acked) {
		t.Fatalf("degraded Len = %d < %d acked", d.Len(), len(res.acked))
	}
}

// reopenAndVerify recovers dir with a clean filesystem and checks the
// acked-exactly contract: every acknowledged write present with its
// value, the in-flight op all-or-nothing, nothing else.
func reopenAndVerify(t *testing.T, dir string, res *tortureResult) {
	t.Helper()
	d, err := alex.OpenDurable(dir, alex.WithCheckpointEvery(0))
	if err != nil {
		t.Fatalf("reopen after fault: %v", err)
	}
	defer d.Close()
	for k, v := range res.acked {
		got, ok := d.Get(k)
		if !ok || got != v {
			t.Fatalf("acked key %g lost or wrong after recovery: %d,%v want %d,true", k, got, ok, v)
		}
	}
	inFlight, present := 0, 0
	for _, k := range res.pending {
		if _, acked := res.acked[k]; acked {
			continue
		}
		inFlight++
		if got, ok := d.Get(k); ok {
			if got != res.pendVal {
				t.Fatalf("in-flight key %g recovered with foreign value %d", k, got)
			}
			present++
		}
	}
	if present != 0 && present != inFlight {
		t.Fatalf("in-flight op half-recovered: %d of %d keys", present, inFlight)
	}
	if got, want := d.Len(), len(res.acked)+present; got != want {
		t.Fatalf("recovered Len = %d, want %d acked + %d whole in-flight", got, len(res.acked), present)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("recovered index invariants: %v", err)
	}
	t.Logf("recovered %d acked keys (+%d whole in-flight)", len(res.acked), present)
}

// openTorture opens a durable index over an injector with fsync=always,
// so acknowledged and fsynced coincide and the oracle is exact.
func openTorture(t *testing.T, dir string, inj *faultfs.Inject) *alex.DurableIndex {
	t.Helper()
	d, err := alex.OpenDurable(dir,
		alex.WithFilesystem(inj),
		alex.WithFsyncPolicy(alex.FsyncAlways),
		alex.WithCheckpointEvery(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFaultDiskFailNthFsync: the Nth WAL fsync fails. The write that
// needed it errors, the index degrades, and after a power cut at that
// point recovery returns exactly the acked prefix.
func TestFaultDiskFailNthFsync(t *testing.T) {
	rng := rand.New(rand.NewSource(tortureSeed(t)))
	n := 3 + rng.Intn(40)
	t.Logf("schedule: fail fsync #%d on wal segments, then crash", n)

	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS)
	inj.FailNth(faultfs.OpSync, "wal-", n, fmt.Errorf("scripted fsync failure"))

	d := openTorture(t, dir, inj)
	res := runFaultWorkload(d, n+60)
	if res.firstErr == nil {
		t.Fatalf("schedule never fired: %d writes all acked", len(res.acked))
	}
	assertDegraded(t, d, res)

	// Power cut while degraded: un-fsynced bytes vanish.
	inj.CrashNow()
	d.Close() // errors are expected on crashed storage; state is on disk
	reopenAndVerify(t, dir, res)
}

// TestFaultDiskENOSPC: the disk fills mid-workload. The write fails
// with an error carrying ENOSPC, the index degrades, and the torn
// record the partial write left behind is invisible to recovery.
func TestFaultDiskENOSPC(t *testing.T) {
	rng := rand.New(rand.NewSource(tortureSeed(t)))
	budget := int64(512 + rng.Intn(4096))
	t.Logf("schedule: write budget %d bytes (ENOSPC after)", budget)

	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS)
	inj.SetWriteBudget(budget)

	d := openTorture(t, dir, inj)
	res := runFaultWorkload(d, 800)
	if res.firstErr == nil {
		t.Fatal("schedule never fired: budget not exhausted")
	}
	if !errors.Is(res.firstErr, syscall.ENOSPC) {
		t.Fatalf("full-disk write returned %v, want it to wrap ENOSPC", res.firstErr)
	}
	assertDegraded(t, d, res)
	d.Close()
	reopenAndVerify(t, dir, res)
}

// TestFaultDiskShortWrite: one WAL write persists only a prefix. The
// append fails, the index degrades, and replay stops cleanly at the
// last whole record.
func TestFaultDiskShortWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(tortureSeed(t)))
	n := 2 + rng.Intn(30)
	keep := 1 + rng.Intn(8)
	t.Logf("schedule: write #%d to wal segments persists only %d bytes", n, keep)

	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS)
	inj.ShortWriteNth("wal-", n, keep, io.ErrShortWrite)

	d := openTorture(t, dir, inj)
	res := runFaultWorkload(d, n+60)
	if res.firstErr == nil {
		t.Fatal("schedule never fired")
	}
	assertDegraded(t, d, res)
	d.Close()
	reopenAndVerify(t, dir, res)
}

// TestFaultDiskTornWriteCrash: power loss mid-write leaves a torn
// record and loses everything not fsynced. Recovery returns exactly
// the acked prefix; the torn bytes never decode.
func TestFaultDiskTornWriteCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(tortureSeed(t)))
	n := 2 + rng.Intn(40)
	torn := rng.Intn(16)
	t.Logf("schedule: crash at wal write #%d, %d torn bytes persist", n, torn)

	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS)
	inj.CrashAtWrite("wal-", n, torn)

	d := openTorture(t, dir, inj)
	res := runFaultWorkload(d, n+60)
	if res.firstErr == nil {
		t.Fatal("schedule never fired")
	}
	if !inj.Crashed() {
		t.Fatal("injector did not crash")
	}
	if !errors.Is(res.firstErr, faultfs.ErrCrashed) {
		t.Fatalf("crashing write returned %v, want ErrCrashed", res.firstErr)
	}
	d.Close()
	reopenAndVerify(t, dir, res)
}

// TestFaultDiskLatency: injected per-op latency must slow the index
// down without changing any outcome: everything acks and recovers.
func TestFaultDiskLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(tortureSeed(t)))
	syncDelay := time.Duration(1+rng.Intn(3)) * time.Millisecond
	writeDelay := time.Duration(rng.Intn(2)) * time.Millisecond
	t.Logf("schedule: +%v per fsync, +%v per write", syncDelay, writeDelay)

	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS)
	inj.DelayOps(faultfs.OpSync, syncDelay)
	inj.DelayOps(faultfs.OpWrite, writeDelay)

	d := openTorture(t, dir, inj)
	res := runFaultWorkload(d, 60)
	if res.firstErr != nil {
		t.Fatalf("latency-only schedule failed a write: %v", res.firstErr)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint under latency: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	reopenAndVerify(t, dir, res)
}

// TestFaultDiskDirSyncRotateFailure: the directory fsync after a
// rotation fails. The checkpoint reports a transient error, nothing
// degrades, the backed-out segment does not block the retry, and no
// data is lost.
func TestFaultDiskDirSyncRotateFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(tortureSeed(t)))
	rounds := 50 + rng.Intn(100)
	t.Logf("schedule: fail dir fsync #2 (the one after the first rotate), %d writes", rounds)

	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS)
	// Dir sync #1 made the initial segment's entry durable at open;
	// #2 is the one covering the first rotation's new segment.
	inj.FailNth(faultfs.OpSyncDir, "", 2, fmt.Errorf("scripted dir fsync failure"))

	d := openTorture(t, dir, inj)
	res := runFaultWorkload(d, rounds)
	if res.firstErr != nil {
		t.Fatalf("workload failed before the checkpoint: %v", res.firstErr)
	}
	err := d.Checkpoint()
	if err == nil {
		t.Fatal("checkpoint swallowed the dir fsync failure")
	}
	if errors.Is(err, alex.ErrDegraded) || d.Degraded() != nil {
		t.Fatalf("transient rotate failure degraded the index: %v", err)
	}
	// Still writable, and the retry must not trip over the backed-out
	// segment file.
	if _, werr := d.TryInsert(-42, 1); werr != nil {
		t.Fatalf("write after failed rotate: %v", werr)
	}
	res.acked[-42] = 1
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint retry after backed-out rotate: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	reopenAndVerify(t, dir, res)
}

// TestFaultDiskSnapshotFsyncFailure: the snapshot file's fsync fails
// mid-checkpoint. The checkpoint errors BEFORE any WAL truncation, so
// the log still holds every record recovery needs.
func TestFaultDiskSnapshotFsyncFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(tortureSeed(t)))
	rounds := 50 + rng.Intn(100)
	t.Logf("schedule: fail the snapshot fsync, %d writes", rounds)

	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS)
	inj.FailNth(faultfs.OpSync, "snapshot", 1, fmt.Errorf("scripted snapshot fsync failure"))

	d := openTorture(t, dir, inj)
	res := runFaultWorkload(d, rounds)
	if res.firstErr != nil {
		t.Fatalf("workload failed before the checkpoint: %v", res.firstErr)
	}
	err := d.Checkpoint()
	if err == nil {
		t.Fatal("checkpoint swallowed the snapshot fsync failure")
	}
	if d.Degraded() != nil {
		t.Fatalf("transient snapshot failure degraded the index: %v", d.Degraded())
	}
	if got := d.Checkpoints(); got != 0 {
		t.Fatalf("failed checkpoint counted: %d", got)
	}
	// The failed checkpoint must not have truncated the segments the
	// (never-written) snapshot would have covered.
	segs, serr := wal.Segments(dir)
	if serr != nil {
		t.Fatal(serr)
	}
	if len(segs) < 2 {
		t.Fatalf("only %d WAL segments after failed checkpoint: pre-rotation history truncated", len(segs))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	reopenAndVerify(t, dir, res)
}

// TestDegradedPanicAPIAndRecovery: the bool mutation API panics with an
// error wrapping ErrDegraded (the server recovers it into a protocol
// error), Flush refuses, and a restart fully clears the state.
func TestDegradedPanicAPIAndRecovery(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS)
	inj.FailNth(faultfs.OpSync, "wal-", 3, fmt.Errorf("scripted fsync failure"))

	d := openTorture(t, dir, inj)
	res := runFaultWorkload(d, 30)
	if res.firstErr == nil {
		t.Fatal("schedule never fired")
	}
	mustPanicDegraded(t, func() { d.Insert(1, 1) })
	mustPanicDegraded(t, func() { d.Delete(1) })
	mustPanicDegraded(t, func() { d.InsertBatch([]float64{1}, []uint64{1}) })
	mustPanicDegraded(t, func() { d.DeleteBatch([]float64{1}) })
	mustPanicDegraded(t, func() { d.Merge([]float64{1}, []uint64{1}) })
	if err := d.Flush(); !errors.Is(err, alex.ErrDegraded) {
		t.Fatalf("Flush on degraded index = %v, want ErrDegraded", err)
	}
	d.Close()

	// Degradation is per-process state, not an on-disk mark: a restart
	// over healthy storage recovers and serves writes again.
	d2, err := alex.OpenDurable(dir, alex.WithCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Degraded() != nil {
		t.Fatalf("degraded state survived restart: %v", d2.Degraded())
	}
	if ok, err := d2.TryInsert(-7, 7); err != nil || !ok {
		t.Fatalf("write after restart = %v,%v", ok, err)
	}
	for k, v := range res.acked {
		if got, ok := d2.Get(k); !ok || got != v {
			t.Fatalf("acked key %g lost across degrade+restart", k)
		}
	}
}

func mustPanicDegraded(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("bool-API mutation did not panic on a degraded index")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, alex.ErrDegraded) {
			t.Fatalf("mutation panicked with %v, want an error wrapping ErrDegraded", r)
		}
	}()
	fn()
}
