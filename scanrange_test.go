package alex_test

import (
	"math"
	"testing"

	alex "repro"
)

// scanRanger is the ScanRange surface shared by all three index
// flavors.
type scanRanger interface {
	ScanRange(start, end float64, visit func(key float64, payload uint64) bool) int
}

// TestScanRangeEdgeCases pins the range contract on every flavor:
// start <= key < end, and empty or unordered ranges (end <= start, NaN
// bounds) visit nothing instead of scanning to the end of the index.
func TestScanRangeEdgeCases(t *testing.T) {
	keys := []float64{1, 2, 3, 5, 8, 13, 21, 34}
	nan := math.NaN()
	cases := []struct {
		name       string
		start, end float64
		want       int
	}{
		{"normal", 2, 13, 4},        // 2,3,5,8
		{"exclusive-end", 1, 34, 7}, // 34 excluded
		{"full", math.Inf(-1), math.Inf(1), 8},
		{"empty-equal", 5, 5, 0},
		{"inverted", 21, 3, 0},
		{"nan-start", nan, 13, 0},
		{"nan-end", 2, nan, 0},
		{"nan-both", nan, nan, 0},
		{"below-all", -10, 0, 0},
		{"above-all", 100, 200, 0},
		{"single", 8, 9, 1},
	}

	plain, err := alex.Load(keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	synced, err := alex.LoadSync(keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := alex.LoadSharded(3, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	flavors := []struct {
		name string
		idx  scanRanger
	}{
		{"Index", plain},
		{"SyncIndex", synced},
		{"ShardedIndex", sharded},
	}

	for _, f := range flavors {
		for _, c := range cases {
			t.Run(f.name+"/"+c.name, func(t *testing.T) {
				visited := 0
				n := f.idx.ScanRange(c.start, c.end, func(k float64, v uint64) bool {
					if !(k >= c.start && k < c.end) {
						t.Fatalf("visited %v outside [%v, %v)", k, c.start, c.end)
					}
					visited++
					return true
				})
				if n != c.want || visited != c.want {
					t.Fatalf("ScanRange(%v, %v) = %d (visited %d), want %d",
						c.start, c.end, n, visited, c.want)
				}
			})
		}
	}
}

// TestScanRangeEarlyStop pins the visited count when the callback
// stops the scan: the element that received false still counts.
func TestScanRangeEarlyStop(t *testing.T) {
	idx, err := alex.Load([]float64{1, 2, 3, 4, 5, 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := idx.ScanRange(1, 7, func(k float64, v uint64) bool { return k < 3 })
	if n != 3 {
		t.Fatalf("early-stopped ScanRange = %d, want 3", n)
	}
}
