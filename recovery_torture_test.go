package alex_test

// Crash-recovery torture harness: build the real cmd/alexkv binary,
// kill it with SIGKILL in the middle of a concurrent write storm,
// restart it over the same data dir, and verify that every
// acknowledged write survived and that no unacknowledged batch is
// half-applied. A second test drives the graceful-shutdown path
// (SIGTERM -> drain -> final checkpoint) and checks the restart
// recovers from the snapshot alone.

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildAlexkv compiles cmd/alexkv into dir and returns the binary path.
func buildAlexkv(t *testing.T) string {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("kill -9 harness is unix-only")
	}
	bin := filepath.Join(t.TempDir(), "alexkv")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/alexkv")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Skipf("cannot build alexkv (no go toolchain?): %v\n%s", err, out)
	}
	return bin
}

// startAlexkv launches a durable server on an ephemeral port and
// parses the bound address from its log output.
func startAlexkv(t *testing.T, bin, dataDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	return startAlexkvArgs(t, bin, append([]string{
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-fsync", "always",
		"-checkpoint-every", "0",
	}, extra...)...)
}

// startAlexkvArgs launches the binary with exactly these flags and
// parses the bound address from its log output. Duplicate flags later
// in the list override earlier ones.
func startAlexkvArgs(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stderr)
	addrCh := make(chan string, 1)
	go func() {
		const marker = "alexkv listening on "
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, marker); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len(marker):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		t.Fatal("alexkv did not report a listen address")
		return nil, ""
	}
}

// kvConn is a minimal protocol client with I/O deadlines.
type kvConn struct {
	c  net.Conn
	br *bufio.Reader
}

func dialKV(addr string) (*kvConn, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &kvConn{c: c, br: bufio.NewReader(c)}, nil
}

func (k *kvConn) roundTrip(cmd string) (string, error) {
	k.c.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := fmt.Fprintln(k.c, cmd); err != nil {
		return "", err
	}
	line, err := k.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\n"), nil
}

// writerLog is one storm writer's record of what the server
// acknowledged and what was in flight when the connection died.
type writerLog struct {
	acked   map[float64]uint64 // key -> value of every acked write
	pending []float64          // keys of the command that never got a reply
	pendVal uint64
}

// storm runs sequential SET/MSET traffic on one connection until stop
// closes or the connection dies, recording acks. Writer g owns the key
// range [g*1e6, g*1e6+...) so writers never overwrite each other.
func storm(g int, addr string, stop <-chan struct{}, lg *writerLog) {
	kv, err := dialKV(addr)
	if err != nil {
		return
	}
	defer kv.c.Close()
	lg.acked = make(map[float64]uint64)
	base := float64(g) * 1e6
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		val := uint64(g*1_000_000 + i)
		if i%5 == 4 {
			// A 4-key batch: one WAL record, atomic on recovery.
			keys := []float64{base + float64(i)*10, base + float64(i)*10 + 1,
				base + float64(i)*10 + 2, base + float64(i)*10 + 3}
			var sb strings.Builder
			sb.WriteString("MSET")
			for _, k := range keys {
				fmt.Fprintf(&sb, " %g %d", k, val)
			}
			lg.pending, lg.pendVal = keys, val
			if _, err := kv.roundTrip(sb.String()); err != nil {
				return
			}
			for _, k := range keys {
				lg.acked[k] = val
			}
		} else {
			k := base + float64(i)*10
			lg.pending, lg.pendVal = []float64{k}, val
			if _, err := kv.roundTrip(fmt.Sprintf("SET %g %d", k, val)); err != nil {
				return
			}
			lg.acked[k] = val
		}
		lg.pending = nil
	}
}

// TestKillNineRecovery is the acceptance bar: SIGKILL mid-write-storm,
// restart, and the reopened index holds exactly the acked writes (plus
// possibly whole — never partial — in-flight commands).
func TestKillNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	bin := buildAlexkv(t)
	dir := t.TempDir()
	cmd, addr := startAlexkv(t, bin, dir)

	const writers = 8
	logs := make([]writerLog, writers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			storm(g, addr, stop, &logs[g])
		}(g)
	}

	// Let the storm build up, then kill -9 mid-flight.
	time.Sleep(400 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	close(stop)
	wg.Wait()

	total := 0
	for g := range logs {
		total += len(logs[g].acked)
	}
	if total == 0 {
		t.Fatal("storm acked nothing before the kill; harness broken")
	}
	t.Logf("killed mid-storm after %d acked writes across %d writers", total, writers)

	// Restart over the same dir and verify.
	_, addr2 := startAlexkv(t, bin, dir)
	kv, err := dialKV(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer kv.c.Close()

	pendingApplied := 0
	for g := range logs {
		lg := &logs[g]
		for k, v := range lg.acked {
			resp, err := kv.roundTrip(fmt.Sprintf("GET %g", k))
			if err != nil {
				t.Fatal(err)
			}
			if resp != fmt.Sprintf("VALUE %d", v) {
				t.Fatalf("writer %d: acked key %g lost or wrong: %q (want VALUE %d)", g, k, resp, v)
			}
		}
		// The in-flight command may have become durable before the kill
		// or not — but a batch must be all-or-nothing.
		if len(lg.pending) > 0 {
			present := 0
			for _, k := range lg.pending {
				if _, acked := lg.acked[k]; acked {
					continue // an earlier acked write owns this key
				}
				resp, err := kv.roundTrip(fmt.Sprintf("GET %g", k))
				if err != nil {
					t.Fatal(err)
				}
				if resp == fmt.Sprintf("VALUE %d", lg.pendVal) {
					present++
				}
			}
			if present != 0 && present != len(lg.pending) {
				t.Fatalf("writer %d: unacked batch half-applied: %d of %d keys present",
					g, present, len(lg.pending))
			}
			pendingApplied += present
		}
	}
	// Exact-set check: nothing beyond acked + whole pending survived.
	resp, err := kv.roundTrip("LEN")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	if _, err := fmt.Sscanf(resp, "LEN %d", &n); err != nil {
		t.Fatalf("LEN reply %q: %v", resp, err)
	}
	if n != total+pendingApplied {
		t.Fatalf("recovered Len = %d, want %d acked + %d whole in-flight", n, total, pendingApplied)
	}
	t.Logf("recovered %d keys (%d acked + %d whole in-flight)", n, total, pendingApplied)
}

// TestGracefulShutdown: SIGTERM drains connections, flushes the WAL and
// writes a final checkpoint, so the restart recovers from the snapshot
// with an (essentially) empty log tail.
func TestGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	bin := buildAlexkv(t)
	dir := t.TempDir()
	cmd, addr := startAlexkv(t, bin, dir)

	kv, err := dialKV(addr)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := kv.roundTrip("MSET 1 10 2 20 3 30"); err != nil || resp != "OK 3" {
		t.Fatalf("MSET = %q, %v", resp, err)
	}
	kv.c.Close()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("alexkv exited with %v after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("alexkv did not exit after SIGTERM")
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.alex")); err != nil {
		t.Fatalf("graceful shutdown left no snapshot: %v", err)
	}

	_, addr2 := startAlexkv(t, bin, dir)
	kv2, err := dialKV(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.c.Close()
	if resp, _ := kv2.roundTrip("LEN"); resp != "LEN 3" {
		t.Fatalf("restarted LEN = %q", resp)
	}
	for k, v := range map[string]string{"1": "10", "2": "20", "3": "30"} {
		if resp, _ := kv2.roundTrip("GET " + k); resp != "VALUE "+v {
			t.Fatalf("restarted GET %s = %q", k, resp)
		}
	}
	resp, err := kv2.roundTrip("WALSTATS")
	if err != nil {
		t.Fatal(err)
	}
	var appends, syncs, bytes, ckpts uint64
	var replayed int
	if _, err := fmt.Sscanf(resp, "WAL %d %d %d %d %d", &appends, &syncs, &bytes, &ckpts, &replayed); err != nil {
		t.Fatalf("WALSTATS %q: %v", resp, err)
	}
	if replayed > 1 {
		t.Fatalf("replayed %d records after clean shutdown, want <= 1 (checkpoint marker only)", replayed)
	}
}

// reserveAddr grabs an ephemeral port and releases it, so a restarted
// primary can come back on the same address its replicas dial.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// replPosition polls REPLINFO on one connection and returns the node's
// position: POSITION for a primary, APPLIED for a replica.
func replPosition(kv *kvConn) (seg uint64, off int64, err error) {
	kv.c.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := fmt.Fprintln(kv.c, "REPLINFO"); err != nil {
		return 0, 0, err
	}
	for {
		line, err := kv.br.ReadString('\n')
		if err != nil {
			return 0, 0, err
		}
		line = strings.TrimSpace(line)
		if line == "END" {
			return seg, off, nil
		}
		if n, _ := fmt.Sscanf(line, "POSITION %d %d", &seg, &off); n == 2 {
			continue
		}
		fmt.Sscanf(line, "APPLIED %d %d", &seg, &off)
	}
}

// dumpKV returns the full contents of a node as protocol lines.
func dumpKV(t *testing.T, kv *kvConn) []string {
	t.Helper()
	resp, err := kv.roundTrip("LEN")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	if _, err := fmt.Sscanf(resp, "LEN %d", &n); err != nil {
		t.Fatalf("LEN reply %q: %v", resp, err)
	}
	kv.c.SetDeadline(time.Now().Add(60 * time.Second))
	if _, err := fmt.Fprintf(kv.c, "SCAN -1e18 %d\n", n+10); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for {
		line, err := kv.br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\n")
		if line == "END" {
			break
		}
		lines = append(lines, line)
	}
	if len(lines) != n {
		t.Fatalf("SCAN returned %d lines, LEN said %d", len(lines), n)
	}
	return lines
}

// TestReplicationKillNineConvergence is the replication acceptance
// bar: two replicas stream a concurrent write storm, the primary dies
// by SIGKILL mid-storm and restarts over the same data dir, and both
// replicas reconnect and converge byte-exact with the recovered state.
func TestReplicationKillNineConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	bin := buildAlexkv(t)
	dir := t.TempDir()
	primaryAddr := reserveAddr(t)
	cmd, _ := startAlexkvArgs(t, bin,
		"-addr", primaryAddr,
		"-data-dir", dir,
		"-fsync", "always",
		"-checkpoint-every", "0",
	)

	var replicas []string
	for i := 0; i < 2; i++ {
		_, raddr := startAlexkvArgs(t, bin, "-addr", "127.0.0.1:0", "-replica-of", primaryAddr)
		replicas = append(replicas, raddr)
	}

	const writers = 4
	logs := make([]writerLog, writers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			storm(g, primaryAddr, stop, &logs[g])
		}(g)
	}

	time.Sleep(400 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	close(stop)
	wg.Wait()

	total := 0
	for g := range logs {
		total += len(logs[g].acked)
	}
	if total == 0 {
		t.Fatal("storm acked nothing before the kill; harness broken")
	}
	t.Logf("killed mid-storm after %d acked writes", total)

	// Restart over the same dir on the same address; replicas reconnect
	// on their own. Recovery opens a fresh WAL segment that stays empty
	// until the next write, and an empty segment emits no frames — so
	// write one sentinel to push the stream (and the replicas' applied
	// positions) into the new segment.
	startAlexkvArgs(t, bin,
		"-addr", primaryAddr,
		"-data-dir", dir,
		"-fsync", "always",
		"-checkpoint-every", "0",
	)
	kv, err := dialKV(primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer kv.c.Close()
	if resp, err := kv.roundTrip("SET -5 99"); err != nil || !strings.HasPrefix(resp, "OK") {
		t.Fatalf("sentinel SET = %q, %v", resp, err)
	}
	pseg, poff, err := replPosition(kv)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for both replicas to reach the primary's position (reconnect
	// backoff is up to 2s, then the backlog drains).
	for _, raddr := range replicas {
		rkv, err := dialKV(raddr)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			rseg, roff, err := replPosition(rkv)
			if err != nil {
				t.Fatal(err)
			}
			if rseg > pseg || (rseg == pseg && roff >= poff) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %s stuck at %d/%d, primary at %d/%d", raddr, rseg, roff, pseg, poff)
			}
			time.Sleep(20 * time.Millisecond)
		}
		rkv.c.Close()
	}

	// Byte-exact: every replica's full dump equals the primary's.
	want := dumpKV(t, kv)
	for _, raddr := range replicas {
		rkv, err := dialKV(raddr)
		if err != nil {
			t.Fatal(err)
		}
		got := dumpKV(t, rkv)
		rkv.c.Close()
		if len(got) != len(want) {
			t.Fatalf("replica %s has %d keys, primary %d", raddr, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replica %s diverges at line %d: %q vs primary %q", raddr, i, got[i], want[i])
			}
		}
		// Writes must bounce off a replica.
		if resp, err := rkv2Write(raddr); err != nil || !strings.HasPrefix(resp, "ERR read-only") {
			t.Fatalf("replica accepted a write: %q, %v", resp, err)
		}
	}
	t.Logf("both replicas converged byte-exact on %d keys", len(want))
}

// rkv2Write attempts one SET against a replica and returns the reply.
func rkv2Write(addr string) (string, error) {
	kv, err := dialKV(addr)
	if err != nil {
		return "", err
	}
	defer kv.c.Close()
	return kv.roundTrip("SET 1 1")
}
