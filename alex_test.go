package alex_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	alex "repro"
	"repro/internal/datasets"
)

func TestQuickstartFlow(t *testing.T) {
	keys := []float64{10, 20, 30, 40, 50}
	payloads := []uint64{1, 2, 3, 4, 5}
	idx, err := alex.Load(keys, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := idx.Get(30); !ok || v != 3 {
		t.Fatalf("Get(30) = %v,%v", v, ok)
	}
	if !idx.Insert(35, 6) {
		t.Fatal("insert")
	}
	if idx.Len() != 6 {
		t.Fatalf("Len = %d", idx.Len())
	}
	got, _ := idx.ScanN(20, 3)
	want := []float64{20, 30, 35}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v", got)
		}
	}
	if !idx.Delete(10) {
		t.Fatal("delete")
	}
	if idx.Contains(10) {
		t.Fatal("deleted key present")
	}
	if !idx.Update(20, 22) {
		t.Fatal("update")
	}
	if v, _ := idx.Get(20); v != 22 {
		t.Fatalf("updated payload = %d", v)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := alex.Load([]float64{1, 1}, nil); err == nil {
		t.Fatal("duplicates accepted")
	}
	if _, err := alex.Load([]float64{math.NaN()}, nil); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestOptionsCompose(t *testing.T) {
	keys := datasets.GenLognormal(50000, 1)
	idx, err := alex.Load(keys, nil,
		alex.WithLayout(alex.PackedMemoryArray),
		alex.WithMaxKeysPerLeaf(512),
		alex.WithSplitOnInsert(),
		alex.WithInnerFanout(8),
		alex.WithSplitFanout(8),
		alex.WithPayloadBytes(80),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, sz := range idx.LeafSizes() {
		if sz > 512 {
			t.Fatalf("leaf size %d above bound", sz)
		}
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		idx.Insert(math.Floor(rng.Float64()*1e15)+0.5, uint64(i))
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if idx.Stats().Splits == 0 {
		t.Fatal("no splits with WithSplitOnInsert")
	}
}

func TestStaticRMIOption(t *testing.T) {
	keys := datasets.GenYCSB(30000, 3)
	idx, err := alex.Load(keys, nil, alex.WithStaticRMI(32))
	if err != nil {
		t.Fatal(err)
	}
	if h := idx.Height(); h != 2 {
		t.Fatalf("static RMI height = %d", h)
	}
}

func TestSpaceOverheadOption(t *testing.T) {
	keys := datasets.GenYCSB(50000, 4)
	tight, _ := alex.Load(keys, nil, alex.WithSpaceOverhead(0.2))
	roomy, _ := alex.Load(keys, nil, alex.WithSpaceOverhead(2.0))
	if roomy.DataSizeBytes() <= tight.DataSizeBytes() {
		t.Fatalf("2x overhead data size %d not above 20%%: %d",
			roomy.DataSizeBytes(), tight.DataSizeBytes())
	}
}

func TestScanRange(t *testing.T) {
	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i)
	}
	idx := alex.LoadSorted(keys, nil)
	var got []float64
	n := idx.ScanRange(100, 110, func(k float64, v uint64) bool {
		got = append(got, k)
		return true
	})
	if n != 10 || len(got) != 10 || got[0] != 100 || got[9] != 109 {
		t.Fatalf("ScanRange = %v (n=%d)", got, n)
	}
}

func TestMinMaxHeightSizes(t *testing.T) {
	keys := datasets.GenLongitudes(40000, 5)
	idx, _ := alex.Load(keys, nil)
	sorted := datasets.Sorted(keys)
	if k, _ := idx.MinKey(); k != sorted[0] {
		t.Fatalf("MinKey = %v", k)
	}
	if k, _ := idx.MaxKey(); k != sorted[len(sorted)-1] {
		t.Fatalf("MaxKey = %v", k)
	}
	if idx.IndexSizeBytes() <= 0 || idx.DataSizeBytes() <= 0 {
		t.Fatal("sizes")
	}
	if idx.Height() < 1 {
		t.Fatal("height")
	}
	st := idx.Stats()
	if st.NumLeaves < 1 {
		t.Fatal("stats")
	}
}

func TestPredictionErrorExposed(t *testing.T) {
	keys := make([]float64, 10000)
	for i := range keys {
		keys[i] = float64(i) * 2
	}
	idx := alex.LoadSorted(keys, nil)
	e, ok := idx.PredictionError(5000)
	if !ok {
		t.Fatal("key missing")
	}
	if e > 4 {
		t.Fatalf("prediction error %d on linear data", e)
	}
	if _, ok := idx.PredictionError(5001); ok {
		t.Fatal("absent key has error")
	}
}

// Property: the public API behaves like a sorted map end to end.
func TestQuickPublicAPIAgainstMap(t *testing.T) {
	type op struct {
		Kind    uint8
		Key     uint16
		Payload uint64
	}
	f := func(ops []op) bool {
		idx := alex.New(alex.WithMaxKeysPerLeaf(64), alex.WithSplitOnInsert())
		ref := make(map[float64]uint64)
		for _, o := range ops {
			k := float64(o.Key % 700)
			switch o.Kind % 4 {
			case 0:
				ins := idx.Insert(k, o.Payload)
				if _, existed := ref[k]; existed == ins {
					return false
				}
				ref[k] = o.Payload
			case 1:
				_, existed := ref[k]
				if idx.Delete(k) != existed {
					return false
				}
				delete(ref, k)
			case 2:
				_, existed := ref[k]
				if idx.Update(k, o.Payload) != existed {
					return false
				}
				if existed {
					ref[k] = o.Payload
				}
			case 3:
				v, ok := idx.Get(k)
				want, existed := ref[k]
				if ok != existed || (ok && v != want) {
					return false
				}
			}
		}
		if idx.Len() != len(ref) {
			return false
		}
		var scanned []float64
		idx.Scan(math.Inf(-1), func(k float64, v uint64) bool {
			scanned = append(scanned, k)
			return true
		})
		want := make([]float64, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Float64s(want)
		if len(scanned) != len(want) {
			return false
		}
		for i := range want {
			if scanned[i] != want[i] {
				return false
			}
		}
		return idx.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
