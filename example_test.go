package alex_test

import (
	"fmt"

	alex "repro"
)

func ExampleLoad() {
	keys := []float64{3, 1, 4, 1.5, 9, 2.6, 5}
	payloads := []uint64{30, 10, 40, 15, 90, 26, 50}
	idx, err := alex.Load(keys, payloads)
	if err != nil {
		panic(err)
	}
	v, ok := idx.Get(4)
	fmt.Println(v, ok)
	// Output: 40 true
}

func ExampleIndex_Scan() {
	idx := alex.LoadSorted([]float64{10, 20, 30, 40, 50}, []uint64{1, 2, 3, 4, 5})
	idx.Scan(15, func(k float64, v uint64) bool {
		fmt.Printf("%g=%d ", k, v)
		return k < 40
	})
	fmt.Println()
	// Output: 20=2 30=3 40=4
}

func ExampleIndex_Iter() {
	idx := alex.LoadSorted([]float64{1, 2, 3}, []uint64{10, 20, 30})
	it := idx.IterFrom(2)
	for it.Next() {
		fmt.Println(it.Key(), it.Payload())
	}
	// Output:
	// 2 20
	// 3 30
}

func ExampleWithSpaceOverhead() {
	keys := make([]float64, 10000)
	for i := range keys {
		keys[i] = float64(i)
	}
	// Trade memory for lookup speed (Fig 10 of the paper): a 2x space
	// budget puts nearly every key at its model-predicted slot.
	idx := alex.LoadSorted(keys, nil, alex.WithSpaceOverhead(2.0))
	e, _ := idx.PredictionError(5000)
	fmt.Println(e == 0)
	// Output: true
}

func ExampleNewMulti() {
	m := alex.NewMulti()
	m.Add(7, 100)
	m.Add(7, 200) // duplicate key: §7's unsupported case, handled here
	fmt.Println(m.Get(7))
	// Output: [100 200]
}

func ExampleIndex_Insert_coldStart() {
	// An empty index grows by node expansion and splitting (§3.4.2's
	// "cold start").
	idx := alex.New(alex.WithSplitOnInsert())
	for i := 0; i < 10; i++ {
		idx.Insert(float64(i), uint64(i*i))
	}
	v, _ := idx.Get(7)
	fmt.Println(v)
	// Output: 49
}
