package alex

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/search"
)

// ShardedIndex partitions the key space across N independent Index
// shards, each guarded by its own RWMutex, so reads and writes that
// touch different regions of the key space proceed in parallel. It is
// the scale-out counterpart to SyncIndex, whose single lock serializes
// every writer (and, under write pressure, starves readers too).
//
// Routing mirrors the paper's adaptive-model philosophy at the
// partition level: shard boundaries are the empirical quantiles of the
// stored keys, so each shard holds an equal slice of the data rather
// than an equal slice of the key range. As the distribution drifts and
// shards grow lopsided, the router is retrained opportunistically on a
// background goroutine — the whole key set is re-partitioned at fresh
// quantiles and each shard is re-bulk-loaded — just as ALEX retrains a
// data node's model when its cost drifts from the prediction.
//
// Batch operations fan sub-batches out to their shards and run the
// shards in parallel; a sorted batch stays sorted within each shard
// (shards cover contiguous key ranges), so the one-descent-per-leaf
// amortization of the batch API is preserved inside every shard.
// Ordered operations (Scan, ScanN, ScanRange, Iter) visit shards in
// key order and stitch the results, so callers observe one globally
// sorted sequence.
//
// Consistency: point and batch operations are linearizable per key.
// Multi-shard reads (Scan, Len, Stats, ...) hold a shared gate that
// excludes router retrains but not per-shard writers on shards they
// have not reached yet, so they observe a weakly consistent view —
// the same contract as iterating any concurrently-mutated map.
type ShardedIndex struct {
	tab atomic.Pointer[shardTable]
	// cfg is the effective per-shard configuration; kept as the
	// resolved core.Config (not the option list) so a ShardedIndex
	// restored from a serialized stream preserves the stream's config.
	cfg core.Config

	// gate is read-held by multi-shard operations and write-held by
	// router retrains, so a retrain never swaps the table out from under
	// a scan or batch fan-out.
	gate sync.RWMutex
	// retrainMu serializes retrains (TryLock makes the opportunistic
	// path non-blocking: if a retrain is already running, skip).
	retrainMu sync.Mutex

	writeTick    atomic.Uint64 // writes since the last drift check
	retrains     atomic.Uint64 // completed router retrains
	lastdistSize atomic.Int64  // Len() at the last (re)partition

	// lockOnly forces the locked read path; see SetOptimisticReads.
	lockOnly atomic.Bool

	// em tracks epoch-based reclamation across all shards: shard writers
	// retire every structure they unpublish, Snapshot pins the epoch its
	// view was cut in, and router retrains retire the superseded table.
	em *epoch.Manager
}

// shard is one key-space partition: an Index plus its lock and seqlock
// generation.
type shard struct {
	mu  sync.RWMutex
	idx *Index
	// seq is the shard's seqlock generation: odd while a writer mutates
	// the shard's index (under mu), even and advanced once it is done.
	// Optimistic readers validate their lock-free probes against it; see
	// optimistic.go for the protocol. A router retrain never bumps it:
	// retrains freeze the old shard (its index is never mutated again),
	// so a racing optimistic reader of a superseded shard still observes
	// an internally consistent — merely slightly stale, and therefore
	// still linearizable — view.
	seq atomic.Uint64
	// moved is set (under mu) when a retrain supersedes this shard: its
	// contents live in the new table, so lock-taking routers that raced
	// the swap must reload the table and retry.
	moved bool
}

// tryGetBatchInto is one optimistic probe for a contiguous run of a
// sorted batch; valid is false when a writer overlapped (including a
// probe that tripped over a mid-rebuild structure and panicked — the
// recover turns it into a retry).
func (sh *shard) tryGetBatchInto(keys []float64, payloads []uint64, found []bool) (valid bool) {
	s1 := sh.seq.Load()
	if s1&1 != 0 {
		return false
	}
	defer func() {
		if recover() != nil {
			valid = false
		}
	}()
	sh.idx.GetBatchInto(keys, payloads, found)
	return sh.seq.Load() == s1
}

// tryScanNInto is one optimistic scan probe appending to the given
// slices; on a failed validation the caller discards the returned
// slices and retries under the lock.
func (sh *shard) tryScanNInto(start float64, max int, keys []float64, payloads []uint64) (k []float64, p []uint64, valid bool) {
	s1 := sh.seq.Load()
	if s1&1 != 0 {
		return keys, payloads, false
	}
	defer func() {
		if recover() != nil {
			k, p, valid = keys, payloads, false
		}
	}()
	k, p = sh.idx.ScanNInto(start, max, keys, payloads)
	valid = sh.seq.Load() == s1
	return
}

// shardTable is one immutable routing epoch: bounds[i] is the exclusive
// upper key bound of shards[i] (the last shard is unbounded). Retrains
// install a whole new table; an installed table is never mutated.
type shardTable struct {
	bounds []float64 // len(shards)-1, non-decreasing
	shards []*shard
}

// locate returns the shard index owning key: the first i with
// key < bounds[i], else the last shard. Open-coded branchless upper
// bound — on the point-read hot path a sort.Search call (closure
// dispatch plus mispredicted halving branches) would cost more than the
// whole model prediction it precedes.
func (t *shardTable) locate(key float64) int {
	b := t.bounds
	n := len(b)
	if n == 0 {
		return 0
	}
	base := 0
	for n > 1 {
		half := n >> 1
		if b[base+half-1] <= key { // lowered to CMOV
			base += half
		}
		n -= half
	}
	if b[base] <= key {
		base++
	}
	return base
}

const (
	// driftCheckEvery spaces the opportunistic imbalance checks.
	driftCheckEvery = 1024
	// minRetrainLen is the smallest index worth re-partitioning.
	minRetrainLen = 1024
	// retrainSlack triggers a retrain when the largest shard exceeds
	// this multiple of the ideal per-shard share.
	retrainSlack = 2
)

// NewSharded returns an empty sharded index with the given shard count
// (<= 0 selects GOMAXPROCS). A cold-started index routes everything to
// the first shard until enough keys accumulate for the first quantile
// retrain to spread them out.
func NewSharded(shards int, opts ...Option) *ShardedIndex {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	s := &ShardedIndex{cfg: buildConfig(opts), em: epoch.New()}
	s.tab.Store(s.hookTable(buildShardTable(shards, nil, nil, s.cfg)))
	return s
}

// LoadSharded bulk loads a sharded index: keys are sorted, boundaries
// are picked at the keys' quantiles, and each shard is bulk-loaded with
// its slice. keys need not be sorted; duplicates and non-finite keys
// are rejected. payloads may be nil; shards <= 0 selects GOMAXPROCS.
func LoadSharded(shards int, keys []float64, payloads []uint64, opts ...Option) (*ShardedIndex, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	// Same copy/sort/validation as Load, shared via internal/core.
	ks, ps, err := core.SortPairs(keys, payloads)
	if err != nil {
		return nil, err
	}
	s := &ShardedIndex{cfg: buildConfig(opts), em: epoch.New()}
	s.tab.Store(s.hookTable(buildShardTable(shards, ks, ps, s.cfg)))
	s.lastdistSize.Store(int64(len(ks)))
	return s, nil
}

// buildShardTable partitions sorted unique keys at their quantiles into
// nsh shards. Surplus shards (more shards than keys) sit empty at the
// tail behind +Inf bounds.
func buildShardTable(nsh int, keys []float64, payloads []uint64, cfg core.Config) *shardTable {
	t := &shardTable{bounds: make([]float64, nsh-1), shards: make([]*shard, nsh)}
	n := len(keys)
	prev := 0
	for i := 0; i < nsh; i++ {
		hi := n
		if i < nsh-1 {
			hi = (i + 1) * n / nsh
			b := math.Inf(1)
			if hi < n {
				b = keys[hi]
			}
			t.bounds[i] = b
		}
		var sub []uint64
		if payloads != nil {
			sub = payloads[prev:hi]
		}
		t.shards[i] = &shard{idx: &Index{t: core.BulkLoadSorted(keys[prev:hi], sub, cfg)}}
		prev = hi
	}
	return t
}

// hookTable wires every shard tree's retirement hook to the index's
// epoch manager, before the table is published. Returns t for chaining.
func (s *ShardedIndex) hookTable(t *shardTable) *shardTable {
	for _, sh := range t.shards {
		sh.idx.t.SetRetireHook(s.em.Retire)
	}
	return t
}

// readShard routes key to its shard and returns it read-locked. The
// moved check makes the lock-free routing safe against a concurrent
// retrain: a stale table's shard flags itself and the caller retries
// against the freshly installed table. The common path costs exactly
// one atomic table load and one boundary search; on a moved-flag retry
// the boundary slice is re-read only if the router generation (the
// table pointer) actually changed — a retrain always installs the new
// table before flagging the old shards, so an unchanged pointer means
// the routing is still valid.
func (s *ShardedIndex) readShard(key float64) *shard {
	t := s.tab.Load()
	i := t.locate(key)
	for {
		sh := t.shards[i]
		sh.mu.RLock()
		if !sh.moved {
			return sh
		}
		sh.mu.RUnlock()
		if nt := s.tab.Load(); nt != t {
			t = nt
			i = t.locate(key)
		}
	}
}

// writeShard routes key to its shard and returns it write-locked; same
// single-load routing as readShard.
func (s *ShardedIndex) writeShard(key float64) *shard {
	t := s.tab.Load()
	i := t.locate(key)
	for {
		sh := t.shards[i]
		sh.mu.Lock()
		if !sh.moved {
			return sh
		}
		sh.mu.Unlock()
		if nt := s.tab.Load(); nt != t {
			t = nt
			i = t.locate(key)
		}
	}
}

// Get returns the payload stored for key. The read is optimistic
// first: route through the current table, probe the shard lock-free,
// and revalidate the shard's sequence; only detected writer overlap
// falls back to the shard's read lock. See SyncIndex for the protocol
// discussion — here the sequence is per shard, so a writer only
// disturbs readers of its own key-space partition.
func (s *ShardedIndex) Get(key float64) (uint64, bool) {
	if s.optimistic() {
		if v, ok, valid := s.optimisticGet(key); valid {
			return v, ok
		}
	}
	sh := s.readShard(key)
	v, ok := sh.idx.Get(key)
	sh.mu.RUnlock()
	return v, ok
}

// optimisticGet is the bounded-retry lock-free probe: route through
// the current table, probe the shard, revalidate its sequence; between
// attempts the route is refreshed only if the router generation
// changed. Like SyncIndex.optimisticGet it carries no recover frame —
// the point lookup path is panic-proof by construction against torn
// reads (clamped and unsigned-guarded indexing in leafbase), so a
// probe racing a node rebuild returns a wrong result that the
// validation below discards.
func (s *ShardedIndex) optimisticGet(key float64) (v uint64, ok, valid bool) {
	t := s.tab.Load()
	sh := t.shards[t.locate(key)]
	for a := 0; a < optimisticRetries; a++ {
		s1 := sh.seq.Load()
		if s1&1 == 0 {
			v, ok = sh.idx.Get(key)
			if sh.seq.Load() == s1 {
				return v, ok, true
			}
		}
		if nt := s.tab.Load(); nt != t {
			t = nt
			sh = t.shards[t.locate(key)]
		}
	}
	return 0, false, false
}

// Contains reports whether key is present.
func (s *ShardedIndex) Contains(key float64) bool {
	_, ok := s.Get(key)
	return ok
}

// SetOptimisticReads toggles the lock-free read path (default on; also
// compiled out under the race detector). Turning it off forces every
// read through the per-shard RLock fallback — the locked baseline the
// read_path benchmarks compare against.
func (s *ShardedIndex) SetOptimisticReads(enabled bool) { s.lockOnly.Store(!enabled) }

// optimistic reports whether reads should attempt the lock-free probe.
func (s *ShardedIndex) optimistic() bool { return optimisticReads && !s.lockOnly.Load() }

// Apply executes one mutation, routing it to the owning shard (point
// ops) or fanning sub-batches out across shards in parallel (batch
// ops). It is the single write path of the sharded index: the point and
// batch write methods construct Ops over it, and DurableIndex replays
// WAL records through it, so all three share the same routing, locking,
// and drift accounting.
func (s *ShardedIndex) Apply(op Op) int {
	switch op.Kind {
	case OpInsert:
		if len(op.Payloads) != len(op.Keys) {
			panic("alex: len(payloads) != len(keys)")
		}
		if len(op.Keys) == 1 {
			return s.applyPoint(op.Keys[0], func(ix *Index) bool {
				return ix.Insert(op.Keys[0], op.Payloads[0])
			})
		}
		return s.applyBatch(op.Keys, func(sh *shard, ks []float64, at []int) int {
			ps := make([]uint64, len(ks))
			for j, p := range at {
				ps[j] = op.Payloads[p]
			}
			return sh.idx.InsertBatch(ks, ps)
		}, true)
	case OpDelete:
		if len(op.Keys) == 1 {
			return s.applyPoint(op.Keys[0], func(ix *Index) bool {
				return ix.Delete(op.Keys[0])
			})
		}
		return s.applyBatch(op.Keys, func(sh *shard, ks []float64, _ []int) int {
			return sh.idx.DeleteBatch(ks)
		}, false)
	case OpMerge:
		if op.Payloads != nil && len(op.Payloads) != len(op.Keys) {
			panic("alex: len(payloads) != len(keys)")
		}
		return s.applyBatch(op.Keys, func(sh *shard, ks []float64, at []int) int {
			var ps []uint64
			if op.Payloads != nil {
				ps = make([]uint64, len(ks))
				for j, p := range at {
					ps[j] = op.Payloads[p]
				}
			}
			return sh.idx.Merge(ks, ps)
		}, true)
	}
	panic("alex: unknown op kind")
}

// applyPoint runs one single-key mutation on the owning shard, with
// the seqlock bumps that let optimistic readers of this shard detect
// the overlap.
func (s *ShardedIndex) applyPoint(key float64, mut func(*Index) bool) int {
	sh := s.writeShard(key)
	sh.seq.Add(1) // odd: mutation in flight
	changed := mut(sh.idx)
	sh.seq.Add(1)
	sh.mu.Unlock()
	s.noteWrites(1)
	if changed {
		return 1
	}
	return 0
}

// applyBatch fans one multi-key mutation out across the owning shards.
func (s *ShardedIndex) applyBatch(keys []float64, op func(sh *shard, ks []float64, at []int) int, withPos bool) int {
	n := s.fanOut(keys, false, withPos, op)
	s.noteWrites(len(keys))
	return n
}

// Insert adds key with payload; see Index.Insert. Only the owning
// shard is locked, so inserts to different shards run in parallel.
func (s *ShardedIndex) Insert(key float64, payload uint64) bool {
	k, p := [1]float64{key}, [1]uint64{payload}
	return s.Apply(Op{Kind: OpInsert, Keys: k[:], Payloads: p[:]}) > 0
}

// Delete removes key.
func (s *ShardedIndex) Delete(key float64) bool {
	k := [1]float64{key}
	return s.Apply(Op{Kind: OpDelete, Keys: k[:]}) > 0
}

// Update overwrites the payload of an existing key.
func (s *ShardedIndex) Update(key float64, payload uint64) bool {
	sh := s.writeShard(key)
	sh.seq.Add(1)
	ok := sh.idx.Update(key, payload)
	sh.seq.Add(1)
	sh.mu.Unlock()
	return ok
}

// partitionScratch is the reusable buffer set of a batch fan-out: the
// per-shard sub-batches, the scatter positions, and the per-worker
// result counts. Fan-outs are frequent on the server's M* command
// paths, so the backing arrays are pooled instead of reallocated per
// batch.
type partitionScratch struct {
	sub    [][]float64
	pos    [][]int
	counts []int
}

var partitionPool = sync.Pool{New: func() any { return new(partitionScratch) }}

// partition splits keys into per-shard sub-batches inside the scratch
// buffers. Input order is preserved within each sub-batch, so a sorted
// batch yields sorted sub-batches (shards own contiguous ranges) and
// duplicate keys keep their relative order. When withPos is set, pos
// maps sub-batch slots back to input slots (ops that don't scatter
// results skip the cost).
func (ps *partitionScratch) partition(t *shardTable, keys []float64, withPos bool) (sub [][]float64, pos [][]int) {
	nsh := len(t.shards)
	for len(ps.sub) < nsh {
		ps.sub = append(ps.sub, nil)
		ps.pos = append(ps.pos, nil)
		ps.counts = append(ps.counts, 0)
	}
	ps.sub = ps.sub[:nsh]
	ps.pos = ps.pos[:nsh]
	ps.counts = ps.counts[:nsh]
	for i := range nsh {
		ps.sub[i] = ps.sub[i][:0]
		ps.pos[i] = ps.pos[i][:0]
		ps.counts[i] = 0
	}
	for i, k := range keys {
		j := t.locate(k)
		ps.sub[j] = append(ps.sub[j], k)
		if withPos {
			ps.pos[j] = append(ps.pos[j], i)
		}
	}
	if !withPos {
		return ps.sub, nil
	}
	return ps.sub, ps.pos
}

// GetBatch looks up many keys, allocating the result slices; it is
// GetBatchInto (the sorted-run optimistic path, pooled sort+permute
// for unsorted batches) plus two allocations for the results.
func (s *ShardedIndex) GetBatch(keys []float64) (payloads []uint64, found []bool) {
	payloads = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	s.GetBatchInto(keys, payloads, found)
	return payloads, found
}

// GetBatchInto is GetBatch into caller-supplied result slices (both
// must have len(keys) elements; every slot is overwritten), performing
// no allocations. Instead of a parallel scatter fan-out it walks a
// sorted batch shard by shard in key order — one boundary search per
// involved shard bounds the contiguous run the shard owns — probing
// each run optimistically first and falling back to that shard's read
// lock on writer overlap. An unsorted batch is sorted into a pooled
// scratch copy (with the permutation back to input slots) and resolved
// through the same run path, so it pays one O(n log n) sort instead of
// n independent root-to-leaf descents; only tiny batches fall back to
// per-key lookups.
func (s *ShardedIndex) GetBatchInto(keys []float64, payloads []uint64, found []bool) {
	if len(payloads) != len(keys) || len(found) != len(keys) {
		panic("alex: GetBatchInto result slices must have len(keys)")
	}
	if len(keys) == 0 {
		return
	}
	if !sort.Float64sAreSorted(keys) {
		s.getBatchUnsorted(keys, payloads, found)
		return
	}
	s.getBatchSorted(keys, payloads, found)
}

// getBatchSorted resolves a key-sorted batch run by run.
func (s *ShardedIndex) getBatchSorted(keys []float64, payloads []uint64, found []bool) {
	i := 0
	for i < len(keys) {
		t := s.tab.Load()
		j := t.locate(keys[i])
		// The run this shard owns ends at its exclusive upper bound
		// (the last shard owns everything that remains).
		hi := len(keys)
		if j < len(t.bounds) {
			hi = i + search.LowerBoundBranchless(keys[i:], t.bounds[j])
		}
		if hi == i {
			// Forced progress: a NaN key compares below every bound
			// (sort.Float64sAreSorted also treats it as sorted-first),
			// yielding an empty run; resolve that one key against the
			// located shard — it is stored nowhere, so the lookup
			// misses — rather than spinning.
			hi = i + 1
		}
		if !s.getRun(t.shards[j], keys[i:hi], payloads[i:hi], found[i:hi]) {
			continue // shard superseded mid-fallback: re-route the run
		}
		i = hi
	}
}

// getBatchUnsorted resolves an unsorted batch: copy the keys into a
// pooled scratch, sort them together with the permutation of their
// input slots, run the sorted-run path into pooled staging results,
// and scatter those back to input order. Everything lives in the pool,
// so a warm path performs no allocations. Tiny batches skip the sort —
// per-key lookups win below the sort's fixed cost.
func (s *ShardedIndex) getBatchUnsorted(keys []float64, payloads []uint64, found []bool) {
	if len(keys) <= 8 {
		for i, k := range keys {
			payloads[i], found[i] = s.Get(k)
		}
		return
	}
	sc := getBatchPool.Get().(*getBatchScratch)
	defer getBatchPool.Put(sc)
	n := len(keys)
	sc.sorter.keys = append(sc.sorter.keys[:0], keys...)
	if cap(sc.sorter.perm) < n {
		sc.sorter.perm = make([]int, 0, cap(sc.sorter.keys))
	}
	sc.sorter.perm = sc.sorter.perm[:0]
	for i := range n {
		sc.sorter.perm = append(sc.sorter.perm, i)
	}
	sort.Sort(&sc.sorter)
	if cap(sc.pays) < n {
		sc.pays = make([]uint64, n)
		sc.found = make([]bool, n)
	}
	pays, fnd := sc.pays[:n], sc.found[:n]
	s.getBatchSorted(sc.sorter.keys, pays, fnd)
	for i, p := range sc.sorter.perm {
		payloads[p], found[p] = pays[i], fnd[i]
	}
}

// getBatchScratch pools the unsorted-batch buffers of GetBatchInto.
type getBatchScratch struct {
	sorter keyPermSorter
	pays   []uint64
	found  []bool
}

var getBatchPool = sync.Pool{New: func() any { return new(getBatchScratch) }}

// keyPermSorter sorts a key copy and the permutation of input slots in
// lockstep. NaN orders first *deterministically* — the `<` comparator
// alone is inconsistent around NaN and can leave the slice unsorted,
// which would silently break the run walk's boundary math.
type keyPermSorter struct {
	keys []float64
	perm []int
}

func (s *keyPermSorter) Len() int { return len(s.keys) }
func (s *keyPermSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
}
func (s *keyPermSorter) Less(i, j int) bool {
	a, b := s.keys[i], s.keys[j]
	if an, bn := a != a, b != b; an || bn {
		return an && !bn
	}
	return a < b
}

// getRun resolves one shard-contiguous run of a sorted batch:
// optimistic probes first, then the shard's read lock. It reports
// false when the locked path found the shard superseded by a retrain —
// the caller must re-route against the fresh table, because the run
// boundary it computed came from the superseded one.
func (s *ShardedIndex) getRun(sh *shard, keys []float64, payloads []uint64, found []bool) bool {
	if s.optimistic() {
		for a := 0; a < optimisticRetries; a++ {
			if sh.tryGetBatchInto(keys, payloads, found) {
				return true
			}
		}
	}
	sh.mu.RLock()
	if sh.moved {
		sh.mu.RUnlock()
		return false
	}
	sh.idx.GetBatchInto(keys, payloads, found)
	sh.mu.RUnlock()
	return true
}

// soleShard returns the index of the only non-empty sub-batch, or -1
// if zero or several shards are involved.
func soleShard(sub [][]float64) int {
	only := -1
	for i := range sub {
		if len(sub[i]) == 0 {
			continue
		}
		if only >= 0 {
			return -1
		}
		only = i
	}
	return only
}

// InsertBatch adds many key/payload pairs, returning how many were new;
// see Index.InsertBatch. Sub-batches run on their shards in parallel.
// len(payloads) must equal len(keys).
func (s *ShardedIndex) InsertBatch(keys []float64, payloads []uint64) int {
	return s.Apply(Op{Kind: OpInsert, Keys: keys, Payloads: payloads})
}

// DeleteBatch removes many keys, returning how many were present; see
// Index.DeleteBatch.
func (s *ShardedIndex) DeleteBatch(keys []float64) int {
	return s.Apply(Op{Kind: OpDelete, Keys: keys})
}

// Merge bulk-merges key/payload pairs at near-bulk-load speed,
// returning how many were new; see Index.Merge. payloads may be nil.
func (s *ShardedIndex) Merge(keys []float64, payloads []uint64) int {
	return s.Apply(Op{Kind: OpMerge, Keys: keys, Payloads: payloads})
}

// fanOut partitions keys and applies op to each involved shard under
// its lock (read or write per readOnly), summing the results. When a
// single shard is involved — the common case for small batches — op
// runs inline on the caller; otherwise each shard gets its own worker
// goroutine. withPos selects whether per-key input positions are
// tracked for ops that scatter results or payloads (at is nil
// otherwise). The whole fan-out holds the gate shared, so a router
// retrain or snapshot never interleaves with a half-applied batch.
func (s *ShardedIndex) fanOut(keys []float64, readOnly, withPos bool, op func(sh *shard, ks []float64, at []int) int) int {
	if len(keys) == 0 {
		return 0
	}
	s.gate.RLock()
	defer s.gate.RUnlock()
	t := s.tab.Load()
	scratch := partitionPool.Get().(*partitionScratch)
	defer partitionPool.Put(scratch)
	sub, pos := scratch.partition(t, keys, withPos)
	apply := func(i int) int {
		sh := t.shards[i]
		if readOnly {
			sh.mu.RLock()
			defer sh.mu.RUnlock()
		} else {
			sh.mu.Lock()
			sh.seq.Add(1) // odd: mutation in flight on this shard
			defer func() {
				sh.seq.Add(1)
				sh.mu.Unlock()
			}()
		}
		var at []int
		if withPos {
			at = pos[i]
		}
		return op(sh, sub[i], at)
	}
	if only := soleShard(sub); only >= 0 {
		return apply(only)
	}
	counts := scratch.counts
	var wg sync.WaitGroup
	for i := range sub {
		if len(sub[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counts[i] = apply(i)
		}(i)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// Scan visits elements with key >= start in ascending key order until
// visit returns false, stitching shards in key order; it returns the
// number of elements visited. visit runs under shard read locks and
// must not call back into the index.
func (s *ShardedIndex) Scan(start float64, visit func(key float64, payload uint64) bool) int {
	s.gate.RLock()
	defer s.gate.RUnlock()
	t := s.tab.Load()
	total := 0
	stopped := false
	wrapped := func(k float64, v uint64) bool {
		total++
		if !visit(k, v) {
			stopped = true
			return false
		}
		return true
	}
	from := start
	for i := t.locate(start); i < len(t.shards); i++ {
		sh := t.shards[i]
		sh.mu.RLock()
		sh.idx.Scan(from, wrapped)
		sh.mu.RUnlock()
		if stopped {
			break
		}
		from = math.Inf(-1)
	}
	return total
}

// ScanN collects up to max elements from the first key >= start.
func (s *ShardedIndex) ScanN(start float64, max int) ([]float64, []uint64) {
	if max <= 0 {
		return []float64{}, []uint64{}
	}
	return s.ScanNInto(start, max, make([]float64, 0, max), make([]uint64, 0, max))
}

// ScanNInto is ScanN appending into caller-supplied slices (reset to
// length 0 first) and returning them; with capacity for max elements
// it allocates nothing. Shards are visited in key order and stitched;
// each shard's slice of the range is probed optimistically first
// (elements are materialized before the sequence validation, so a torn
// probe is discarded and retried under that shard's read lock, never
// surfaced). The shared gate only excludes router retrains, exactly as
// in Scan, so the result is the same weakly consistent cut.
func (s *ShardedIndex) ScanNInto(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64) {
	keys, payloads = keys[:0], payloads[:0]
	if max <= 0 {
		return keys, payloads
	}
	s.gate.RLock()
	defer s.gate.RUnlock()
	t := s.tab.Load()
	from := start
	for i := t.locate(start); i < len(t.shards) && len(keys) < max; i++ {
		sh := t.shards[i]
		want := max - len(keys)
		// Probe into the spare tail capacity so a discarded attempt
		// leaves the stitched prefix untouched.
		tailK, tailP := keys[len(keys):], payloads[len(payloads):]
		k, p, valid := tailK, tailP, false
		if s.optimistic() {
			for a := 0; a < optimisticRetries && !valid; a++ {
				k, p, valid = sh.tryScanNInto(from, want, tailK, tailP)
			}
		}
		if !valid {
			sh.mu.RLock()
			k, p = sh.idx.ScanNInto(from, want, tailK, tailP)
			sh.mu.RUnlock()
		}
		// Appending the returned tail back: if the probe stayed within
		// the spare capacity this copies elements onto themselves (no
		// growth, no allocation); if it grew, the reallocated tail is
		// spliced on normally.
		keys = append(keys, k...)
		payloads = append(payloads, p...)
		from = math.Inf(-1)
	}
	return keys, payloads
}

// ScanRange visits all elements with start <= key < end in order.
// Empty or unordered ranges (end <= start, NaN bounds) visit nothing.
func (s *ShardedIndex) ScanRange(start, end float64, visit func(key float64, payload uint64) bool) int {
	if !(start < end) {
		return 0
	}
	n := 0
	s.Scan(start, func(k float64, v uint64) bool {
		if k >= end {
			return false
		}
		n++
		return visit(k, v)
	})
	return n
}

// ShardedIterator is a cursor over a ShardedIndex in ascending key
// order. Unlike Index.Iterator it is safe under concurrent mutation:
// construction seals a point-in-time snapshot of every shard (an
// O(#leaves) flag pass, no copying — writers clone sealed nodes on
// first write), and the cursor serves from those sealed structures
// with no further locking. Iteration is therefore *strongly*
// consistent: the cursor observes exactly the elements present at
// construction, never a later insert or delete. It used to stream
// chunks under the shard locks with weakly consistent semantics; the
// snapshot cut is both cheaper per element and a strictly stronger
// contract.
type ShardedIterator struct {
	parts []*core.Snapshot
	pi    int // current part index; -1 before the first part
	cur   *core.SnapIterator
	start float64
	key   float64
	val   uint64
	ok    bool
}

// Iter returns a cursor positioned before the first element.
func (s *ShardedIndex) Iter() *ShardedIterator { return s.IterFrom(math.Inf(-1)) }

// IterFrom returns a cursor positioned before the first element whose
// key is >= start.
func (s *ShardedIndex) IterFrom(start float64) *ShardedIterator {
	return &ShardedIterator{parts: s.sealAll(), pi: -1, start: start}
}

// Next advances to the next element, reporting whether one exists.
func (it *ShardedIterator) Next() bool {
	for {
		if it.cur == nil {
			it.pi++
			if it.pi >= len(it.parts) {
				it.ok = false
				return false
			}
			// Parts own ascending disjoint key ranges; IterFrom skips any
			// part entirely below the start key on its first Next.
			it.cur = it.parts[it.pi].IterFrom(it.start)
		}
		if it.cur.Next() {
			it.key, it.val = it.cur.Key(), it.cur.Payload()
			it.ok = true
			return true
		}
		it.cur = nil
	}
}

// Key returns the current element's key; valid only after Next
// returned true.
func (it *ShardedIterator) Key() float64 { return it.key }

// Payload returns the current element's payload; valid only after Next
// returned true.
func (it *ShardedIterator) Payload() uint64 { return it.val }

// Valid reports whether the iterator currently points at an element.
func (it *ShardedIterator) Valid() bool { return it.ok }

// lockAllRead takes the gate exclusively and read-locks every shard of
// the current table up front (in index order, the same order the
// retrain path locks in), returning the table and an unlock func. The
// whole-index aggregates (Len, Stats) use it so their totals are a
// consistent point-in-time cut: the exclusive gate excludes any batch
// fan-out mid-application (fan-outs hold the gate shared for their
// whole run) and any router retrain, and holding every shard's read
// lock at once excludes in-flight point ops. Aggregating under
// one-at-a-time shard locks — the previous scheme — could tear a
// cross-shard batch: shard A counted after its sub-batch applied,
// shard B before, so Len disagreed with every state the index ever
// acknowledged.
func (s *ShardedIndex) lockAllRead() (*shardTable, func()) {
	s.gate.Lock()
	t := s.tab.Load()
	for _, sh := range t.shards {
		sh.mu.RLock()
	}
	return t, func() {
		for _, sh := range t.shards {
			sh.mu.RUnlock()
		}
		s.gate.Unlock()
	}
}

// Len returns the number of stored elements across all shards, as a
// consistent cut (see lockAllRead): a concurrent cross-shard batch is
// counted either wholly or not at all.
func (s *ShardedIndex) Len() int {
	t, unlock := s.lockAllRead()
	defer unlock()
	n := 0
	for _, sh := range t.shards {
		n += sh.idx.Len()
	}
	return n
}

// MinKey returns the smallest key.
func (s *ShardedIndex) MinKey() (float64, bool) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	for _, sh := range s.tab.Load().shards {
		sh.mu.RLock()
		k, ok := sh.idx.MinKey()
		sh.mu.RUnlock()
		if ok {
			return k, true
		}
	}
	return 0, false
}

// MaxKey returns the largest key.
func (s *ShardedIndex) MaxKey() (float64, bool) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	shards := s.tab.Load().shards
	for i := len(shards) - 1; i >= 0; i-- {
		sh := shards[i]
		sh.mu.RLock()
		k, ok := sh.idx.MaxKey()
		sh.mu.RUnlock()
		if ok {
			return k, true
		}
	}
	return 0, false
}

// Stats returns counters aggregated across shards (work counters, node
// counts and error histograms sum; Height and MaxLeafErr are the
// worst shard's), as a consistent cut — see lockAllRead. Totals like
// Inserts and KeysTotal therefore always describe a state the index
// actually passed through, even under cross-shard batches.
func (s *ShardedIndex) Stats() Stats {
	t, unlock := s.lockAllRead()
	defer unlock()
	var agg Stats
	for _, sh := range t.shards {
		st := sh.idx.Stats()
		agg.Merge(&st)
	}
	return agg
}

// IndexSizeBytes accounts the RMI structures of all shards.
func (s *ShardedIndex) IndexSizeBytes() int {
	return s.sumShards(func(ix *Index) int { return ix.IndexSizeBytes() })
}

// DataSizeBytes accounts the data node storage of all shards.
func (s *ShardedIndex) DataSizeBytes() int {
	return s.sumShards(func(ix *Index) int { return ix.DataSizeBytes() })
}

func (s *ShardedIndex) sumShards(f func(*Index) int) int {
	s.gate.RLock()
	defer s.gate.RUnlock()
	n := 0
	for _, sh := range s.tab.Load().shards {
		sh.mu.RLock()
		n += f(sh.idx)
		sh.mu.RUnlock()
	}
	return n
}

// Rebuild reconstructs every shard from its current contents through
// the cost-optimal planner (see Index.Rebuild), one shard at a time so
// readers and writers of other shards keep running throughout. The
// shared gate excludes router retrains for the duration, so the table
// cannot be swapped mid-walk; within each shard the write lock and the
// seqlock bumps give optimistic readers the same overlap signal any
// mutation does.
func (s *ShardedIndex) Rebuild() {
	s.gate.RLock()
	defer s.gate.RUnlock()
	for _, sh := range s.tab.Load().shards {
		sh.mu.Lock()
		sh.seq.Add(1) // odd: mutation in flight
		sh.idx.Rebuild()
		sh.seq.Add(1)
		sh.mu.Unlock()
	}
}

// NumShards returns the shard count.
func (s *ShardedIndex) NumShards() int { return len(s.tab.Load().shards) }

// ShardLens returns the element count of every shard in key order —
// the router's balance, useful for monitoring and tests.
func (s *ShardedIndex) ShardLens() []int {
	s.gate.RLock()
	defer s.gate.RUnlock()
	shards := s.tab.Load().shards
	lens := make([]int, len(shards))
	for i, sh := range shards {
		sh.mu.RLock()
		lens[i] = sh.idx.Len()
		sh.mu.RUnlock()
	}
	return lens
}

// Flush implements the server.Store lifecycle; a purely in-memory
// index has nothing to flush. DurableIndex overrides this with a real
// WAL sync.
func (s *ShardedIndex) Flush() error { return nil }

// Close implements the server.Store lifecycle; a purely in-memory
// index holds no resources.
func (s *ShardedIndex) Close() error { return nil }

// Retrains returns how many times the router has re-partitioned the
// key space.
func (s *ShardedIndex) Retrains() uint64 { return s.retrains.Load() }

// WriteTo serializes a point-in-time snapshot of the whole index in
// the single-Index format (configuration included), so ReadFrom /
// ReadFromSharded can restore it with any shard count. It cuts a
// Snapshot — the exclusive gate is held only for the O(#leaves)
// sealing pass — and does all O(n) collection, bulk-loading and
// streaming from the sealed view, concurrently with writers. (The
// pre-snapshot implementation collected under lockAllRead, stalling
// every writer for the whole O(n) copy.)
func (s *ShardedIndex) WriteTo(w io.Writer) (int64, error) {
	snap := s.Snapshot()
	defer snap.Close()
	return snap.WriteTo(w)
}

// ReadFromSharded deserializes an index written by Index.WriteTo or
// ShardedIndex.WriteTo into a sharded index (shards <= 0 selects
// GOMAXPROCS). The configuration comes from the stream, exactly as
// with ReadFrom.
func ReadFromSharded(r io.Reader, shards int) (*ShardedIndex, error) {
	ix, err := ReadFrom(r)
	if err != nil {
		return nil, err
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	keys := make([]float64, 0, ix.Len())
	vals := make([]uint64, 0, ix.Len())
	ix.Scan(math.Inf(-1), func(k float64, v uint64) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	s := &ShardedIndex{cfg: ix.t.Config(), em: epoch.New()}
	s.tab.Store(s.hookTable(buildShardTable(shards, keys, vals, s.cfg)))
	s.lastdistSize.Store(int64(len(keys)))
	return s, nil
}

// Snapshot cuts a consistent point-in-time view across every shard.
// The cut takes the exclusive gate and all shard read locks only for
// the O(#leaves) sealing pass — no data is copied — after which the
// returned snapshot reads lock-free forever while shard writers
// proceed by cloning sealed nodes on first write. Close the snapshot
// when done to release its epoch pin.
func (s *ShardedIndex) Snapshot() *IndexSnapshot {
	t, unlock := s.lockAllRead()
	parts := make([]*core.Snapshot, len(t.shards))
	for i, sh := range t.shards {
		parts[i] = sh.idx.t.SealLeaves()
	}
	e := s.em.Pin()
	unlock()
	return newIndexSnapshot(parts, s.cfg, func() { s.em.Unpin(e) })
}

// sealAll is Snapshot without the epoch pin, for short-lived internal
// consumers (the snapshot iterator) that hold the sealed parts by
// strong reference alone and have no Close point to unpin at.
func (s *ShardedIndex) sealAll() []*core.Snapshot {
	t, unlock := s.lockAllRead()
	defer unlock()
	parts := make([]*core.Snapshot, len(t.shards))
	for i, sh := range t.shards {
		parts[i] = sh.idx.t.SealLeaves()
	}
	return parts
}

// EpochStats reports the index's epoch-based reclamation state.
func (s *ShardedIndex) EpochStats() EpochStats {
	cur, pins, retired, reclaimed := s.em.Stats()
	return EpochStats{Epoch: cur, Pins: pins, Retired: retired, Reclaimed: reclaimed}
}

// collectAll gathers every element of the table in key order. The
// caller must hold a lock (read or write) on every shard.
func collectAll(t *shardTable) ([]float64, []uint64) {
	n := 0
	for _, sh := range t.shards {
		n += sh.idx.Len()
	}
	keys := make([]float64, 0, n)
	vals := make([]uint64, 0, n)
	for _, sh := range t.shards {
		sh.idx.Scan(math.Inf(-1), func(k float64, v uint64) bool {
			keys = append(keys, k)
			vals = append(vals, v)
			return true
		})
	}
	return keys, vals
}

// CheckInvariants verifies every shard's tree plus the router's
// invariants: bounds are non-decreasing and every shard's keys lie
// inside its bound window.
func (s *ShardedIndex) CheckInvariants() error {
	s.gate.RLock()
	defer s.gate.RUnlock()
	t := s.tab.Load()
	lower := math.Inf(-1)
	for i, sh := range t.shards {
		upper := math.Inf(1)
		if i < len(t.bounds) {
			upper = t.bounds[i]
		}
		if upper < lower {
			return fmt.Errorf("alex: shard %d bound %v below previous %v", i, upper, lower)
		}
		sh.mu.RLock()
		err := sh.idx.CheckInvariants()
		if err == nil {
			if k, ok := sh.idx.MinKey(); ok && k < lower {
				err = fmt.Errorf("alex: shard %d min key %v below bound %v", i, k, lower)
			}
		}
		if err == nil {
			if k, ok := sh.idx.MaxKey(); ok && k >= upper {
				err = fmt.Errorf("alex: shard %d max key %v at or above bound %v", i, k, upper)
			}
		}
		sh.mu.RUnlock()
		if err != nil {
			return err
		}
		lower = upper
	}
	return nil
}

// Rebalance re-partitions the key space at fresh quantiles immediately,
// blocking until done. Normally the router retrains itself when writes
// skew the shards; this is the manual trigger.
func (s *ShardedIndex) Rebalance() {
	s.retrainMu.Lock()
	s.retrainLocked()
	s.retrainMu.Unlock()
}

// noteWrites advances the drift clock and, every driftCheckEvery
// writes, checks shard balance. Callers must not hold the gate or any
// shard lock.
func (s *ShardedIndex) noteWrites(n int) {
	if n == 0 {
		return
	}
	c := s.writeTick.Add(uint64(n))
	if c >= driftCheckEvery && s.writeTick.CompareAndSwap(c, 0) {
		s.maybeRetrain()
	}
}

// maybeRetrain retrains the router if the largest shard has drifted
// past retrainSlack times its fair share. Non-blocking twice over: if
// a retrain is already running it returns immediately, and when one is
// needed the rebuild runs on its own goroutine so the writer that
// tripped the drift check doesn't absorb an O(n) re-partition stall.
func (s *ShardedIndex) maybeRetrain() {
	if !s.retrainMu.TryLock() {
		return
	}
	t := s.tab.Load()
	if len(t.shards) == 1 {
		s.retrainMu.Unlock()
		return
	}
	total, biggest := 0, 0
	for _, sh := range t.shards {
		sh.mu.RLock()
		l := sh.idx.Len()
		sh.mu.RUnlock()
		total += l
		if l > biggest {
			biggest = l
		}
	}
	need := total >= minRetrainLen
	if need {
		// Require some growth since the last partition so a static
		// imbalance (e.g. many deletes in one region) cannot retrain
		// in a tight loop; a severe skew retrains regardless.
		if int64(total) < s.lastdistSize.Load()+driftCheckEvery/2 &&
			biggest*len(t.shards) <= 2*retrainSlack*total {
			need = false
		} else if biggest*len(t.shards) <= retrainSlack*total {
			need = false
		}
	}
	if !need {
		s.retrainMu.Unlock()
		return
	}
	// Hand the held retrainMu to the rebuild goroutine (Go mutexes are
	// not goroutine-owned); it is released when the retrain finishes.
	go func() {
		defer s.retrainMu.Unlock()
		s.retrainLocked()
	}()
}

// retrainLocked re-partitions all elements at fresh quantiles. Caller
// holds retrainMu. It write-locks the gate and every shard, copies the
// (globally sorted) contents, installs the new table, and marks the
// old shards moved so racing lock-free routers retry.
func (s *ShardedIndex) retrainLocked() {
	s.gate.Lock()
	t := s.tab.Load()
	for _, sh := range t.shards {
		sh.mu.Lock()
	}
	keys, vals := collectAll(t)
	s.tab.Store(s.hookTable(buildShardTable(len(t.shards), keys, vals, s.cfg)))
	for _, sh := range t.shards {
		sh.moved = true
	}
	// The old table (and every tree in it) is now unreachable through
	// the router; hand it to epoch-based reclamation so pinned snapshots
	// keep it exactly as long as they need it.
	s.em.Retire(t)
	for _, sh := range t.shards {
		sh.mu.Unlock()
	}
	s.gate.Unlock()
	s.lastdistSize.Store(int64(len(keys)))
	s.retrains.Add(1)
}
