module repro

// Zero third-party requirements, deliberately: the build environment
// is offline, so internal/lint + cmd/alexvet are built on the stdlib
// go/parser + go/types source importer instead of pinning
// golang.org/x/tools (whose go/analysis shapes internal/lint mirrors
// for a future migration). See docs/static-analysis.md.

go 1.23
