package alex_test

// Correctness tests for the zero-allocation *Into read variants: on
// every wrapper they must return exactly what the allocating forms
// return, for sorted and unsorted batches, across shard and leaf
// boundaries, with hits, misses and short destination capacities.

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	alex "repro"
	"repro/internal/datasets"
)

// intoSurface is the read surface shared by Index, SyncIndex,
// ShardedIndex and DurableIndex.
type intoSurface interface {
	Get(key float64) (uint64, bool)
	GetBatch(keys []float64) ([]uint64, []bool)
	GetBatchInto(keys []float64, payloads []uint64, found []bool)
	ScanN(start float64, max int) ([]float64, []uint64)
	ScanNInto(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64)
}

func checkIntoVariants(t *testing.T, name string, idx intoSurface, present, absent []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))

	// Batches mixing hits and misses, sorted and unsorted.
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(200)
		batch := make([]float64, n)
		for i := range batch {
			if rng.Intn(3) == 0 {
				batch[i] = absent[rng.Intn(len(absent))]
			} else {
				batch[i] = present[rng.Intn(len(present))]
			}
		}
		if trial%2 == 0 {
			sort.Float64s(batch)
		}
		wantV, wantF := idx.GetBatch(batch)
		gotV := make([]uint64, n)
		gotF := make([]bool, n)
		// Pre-poison the destinations: every slot must be overwritten.
		for i := range gotV {
			gotV[i], gotF[i] = ^uint64(0), true
		}
		idx.GetBatchInto(batch, gotV, gotF)
		for i := range batch {
			if gotF[i] != wantF[i] || (wantF[i] && gotV[i] != wantV[i]) {
				t.Fatalf("%s: GetBatchInto[%d] key %v = (%d,%v), GetBatch says (%d,%v)",
					name, i, batch[i], gotV[i], gotF[i], wantV[i], wantF[i])
			}
			if v, ok := idx.Get(batch[i]); ok != gotF[i] || (ok && v != gotV[i]) {
				t.Fatalf("%s: Get(%v) = (%d,%v) disagrees with batch (%d,%v)",
					name, batch[i], v, ok, gotV[i], gotF[i])
			}
		}
	}

	// Scans from assorted starts, including before-min, past-max, and
	// destination slices with zero, short, and ample capacity.
	starts := []float64{math.Inf(-1), present[0] - 1, present[len(present)/2], present[len(present)-1] + 1}
	for i := 0; i < 20; i++ {
		starts = append(starts, present[rng.Intn(len(present))])
	}
	for _, start := range starts {
		for _, max := range []int{0, 1, 7, 333} {
			wantK, wantV := idx.ScanN(start, max)
			var dstK []float64
			var dstV []uint64
			switch rng.Intn(3) {
			case 1:
				dstK, dstV = make([]float64, 0, max/2+1), make([]uint64, 0, max/2+1)
			case 2:
				dstK, dstV = make([]float64, 5, max+7), make([]uint64, 5, max+7)
			}
			gotK, gotV := idx.ScanNInto(start, max, dstK, dstV)
			if len(gotK) != len(wantK) || len(gotV) != len(wantV) {
				t.Fatalf("%s: ScanNInto(%v, %d) returned %d/%d elements, want %d",
					name, start, max, len(gotK), len(gotV), len(wantK))
			}
			for i := range wantK {
				if gotK[i] != wantK[i] || gotV[i] != wantV[i] {
					t.Fatalf("%s: ScanNInto(%v, %d)[%d] = (%v,%d), want (%v,%d)",
						name, start, max, i, gotK[i], gotV[i], wantK[i], wantV[i])
				}
			}
		}
	}
}

func intoFixture(t *testing.T, n int) (keys, absent []float64, pays []uint64) {
	t.Helper()
	all := datasets.GenLognormal(2*n, 5)
	keys, absent = all[:n], all[n:]
	// Deduplicate across the two halves so "absent" keys stay absent.
	seen := map[float64]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	kept := absent[:0]
	for _, k := range absent {
		if !seen[k] {
			kept = append(kept, k)
		}
	}
	absent = kept
	pays = make([]uint64, len(keys))
	for i := range pays {
		pays[i] = uint64(i) * 3
	}
	return keys, absent, pays
}

func TestGetBatchIntoMatchesGetBatch(t *testing.T) {
	keys, absent, pays := intoFixture(t, 30000)

	idx, err := alex.Load(keys, pays)
	if err != nil {
		t.Fatal(err)
	}
	checkIntoVariants(t, "Index", idx, keys, absent)

	sy, err := alex.LoadSync(keys, pays)
	if err != nil {
		t.Fatal(err)
	}
	checkIntoVariants(t, "SyncIndex", sy, keys, absent)
	sy.SetOptimisticReads(false)
	checkIntoVariants(t, "SyncIndex(locked)", sy, keys, absent)

	for _, shards := range []int{1, 3, 8} {
		sh, err := alex.LoadSharded(shards, keys, pays)
		if err != nil {
			t.Fatal(err)
		}
		checkIntoVariants(t, "ShardedIndex", sh, keys, absent)
		sh.SetOptimisticReads(false)
		checkIntoVariants(t, "ShardedIndex(locked)", sh, keys, absent)
	}
}

func TestDurableIntoDelegates(t *testing.T) {
	keys, absent, pays := intoFixture(t, 5000)
	d, err := alex.OpenDurable(t.TempDir(), alex.WithFsyncPolicy(alex.FsyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Merge(keys, pays)
	checkIntoVariants(t, "DurableIndex", d, keys, absent)
}

func TestGetBatchIntoPanicsOnShortSlices(t *testing.T) {
	idx, err := alex.LoadSync([]float64{1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []func(){
		func() { idx.GetBatchInto([]float64{1, 2}, make([]uint64, 1), make([]bool, 2)) },
		func() { idx.GetBatchInto([]float64{1, 2}, make([]uint64, 2), make([]bool, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on mismatched result slice lengths")
				}
			}()
			f()
		}()
	}
}

// Non-finite keys are rejected by every write path, but read paths
// must resolve them as plain misses — a NaN compares below every leaf
// bound and router boundary, which once livelocked the run-advance
// loops of GetBatchInto (and, through delegation, GetBatch).
func TestGetBatchNonFiniteKeysMiss(t *testing.T) {
	keys, _, pays := intoFixture(t, 20000)
	nasty := []float64{math.NaN(), math.Inf(-1), keys[10], math.NaN(), math.Inf(1)}
	check := func(name string, idx intoSurface) {
		t.Helper()
		done := make(chan struct{})
		go func() {
			defer close(done)
			vals, found := idx.GetBatch(nasty)
			gotV := make([]uint64, len(nasty))
			gotF := make([]bool, len(nasty))
			idx.GetBatchInto(nasty, gotV, gotF)
			for i := range nasty {
				if found[i] != (i == 2) || gotF[i] != (i == 2) {
					t.Errorf("%s: found[%d] = %v/%v, want %v", name, i, found[i], gotF[i], i == 2)
				}
				if i == 2 && (vals[i] != pays[10] || gotV[i] != pays[10]) {
					t.Errorf("%s: wrong payload for the one finite key", name)
				}
			}
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("%s: GetBatch with non-finite keys hung", name)
		}
	}

	idx, err := alex.Load(keys, pays)
	if err != nil {
		t.Fatal(err)
	}
	check("Index", idx)
	sy, err := alex.LoadSync(keys, pays)
	if err != nil {
		t.Fatal(err)
	}
	check("SyncIndex", sy)
	sh, err := alex.LoadSharded(4, keys, pays)
	if err != nil {
		t.Fatal(err)
	}
	check("ShardedIndex", sh)
	sh.SetOptimisticReads(false)
	check("ShardedIndex(locked)", sh)
}
