package alex

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultfs"
	"repro/internal/wal"
)

// DurableIndex makes an index survive process death: every acknowledged
// mutation is appended to a write-ahead log before it is applied to the
// wrapped in-memory index, a background checkpointer periodically
// serializes the index to a snapshot and truncates the log, and
// OpenDurable recovers by loading the latest snapshot and replaying the
// log tail through the unified batch apply path — so recovery runs at
// amortized one-descent-per-leaf speed rather than one descent per
// logged key.
//
// The directory holds one snapshot (written atomically via a temp file
// and rename) plus numbered WAL segments; a checkpoint rotates to a new
// segment, snapshots, and deletes the sealed segments the snapshot now
// covers. Both files are safe against torn writes: the snapshot is
// replaced atomically and the WAL reader stops at the first invalid
// record, so a mid-record crash loses nothing that was acknowledged.
//
// Durability is governed by the fsync policy: FsyncAlways acknowledges
// a mutation only once its record is on stable storage (concurrent
// writers group-commit, sharing fsyncs — see WALStats), FsyncInterval
// bounds the loss window to the sync interval, FsyncNever leaves
// flushing to the OS.
//
// Recovery replays the log in append order. For mutations that raced
// on the same key, log order and in-memory apply order can differ, so
// the recovered value is the last *logged* of the racing writes — a
// valid linearization of operations that were concurrent, but possibly
// not the one the pre-crash index settled on. Clients that serialize
// their own writes per key (the common case) always recover exactly
// what was acknowledged.
//
// The wrapped index is either a ShardedIndex (default) or a SyncIndex
// (WithSyncBackend); all read methods delegate to it and are safe for
// concurrent use, exactly as on the wrapped type.
//
// A WAL I/O failure (failed fsync, disk full, I/O error) poisons the
// index into a degraded read-only state: the failing mutation is never
// acknowledged, every later mutation is rejected with ErrDegraded, and
// lock-free reads keep serving the last acknowledged state. Degraded
// is terminal for the process — a failed fsync leaves the kernel's
// dirty-page state unknowable, so retrying a sync and acking on its
// success would ack data the disk may never have seen (the fsync-gate
// rule). Restart the process; recovery replays exactly the acknowledged
// prefix. The bool-returning mutators (the pre-degradation API) panic
// with an error wrapping ErrDegraded; the Try variants return it. See
// docs/failure-model.md.
type DurableIndex struct {
	backend Backend
	log     *wal.Log
	dir     string
	cfg     durableConfig

	// opGate is held shared across each mutation's log-then-apply pair
	// and exclusively around the checkpoint's segment rotation, so every
	// record in a sealed (deletable) segment is fully applied before the
	// snapshot that supersedes it is cut.
	opGate sync.RWMutex
	closed bool // guarded by opGate

	ckptMu      sync.Mutex // serializes checkpoints
	dirty       atomic.Int64
	checkpoints atomic.Uint64
	replayed    int
	torn        bool
	ckptErr     atomic.Pointer[error]

	// degradedErr is the first durability failure; non-nil means the
	// index is poisoned read-only (see the type comment). First cause
	// wins; never cleared.
	degradedErr atomic.Pointer[error]

	ckptCh chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup

	followerRegistry // connected replication followers, for lag reporting
}

// Backend is the thread-safe index surface DurableIndex wraps; both
// *SyncIndex and *ShardedIndex implement it. All mutations flow through
// Apply — the unified path WAL replay reuses.
type Backend interface {
	Get(key float64) (uint64, bool)
	Contains(key float64) bool
	GetBatch(keys []float64) ([]uint64, []bool)
	GetBatchInto(keys []float64, payloads []uint64, found []bool)
	Scan(start float64, visit func(key float64, payload uint64) bool) int
	ScanN(start float64, max int) ([]float64, []uint64)
	ScanNInto(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64)
	ScanRange(start, end float64, visit func(key float64, payload uint64) bool) int
	MinKey() (float64, bool)
	MaxKey() (float64, bool)
	Len() int
	Stats() Stats
	IndexSizeBytes() int
	DataSizeBytes() int
	WriteTo(w io.Writer) (int64, error)
	Apply(op Op) int
	Update(key float64, payload uint64) bool
	CheckInvariants() error
}

// Both concurrency wrappers implement the backend surface.
var (
	_ Backend = (*SyncIndex)(nil)
	_ Backend = (*ShardedIndex)(nil)
)

// Snapshotter is the optional backend capability DurableIndex prefers
// when writing checkpoints: cutting an epoch-pinned IndexSnapshot lets
// the snapshot file be serialized outside the backend's exclusive gate,
// so a checkpoint never stalls concurrent reads or writes for the
// duration of the disk write. Both concurrency wrappers implement it.
type Snapshotter interface {
	Snapshot() *IndexSnapshot
}

var (
	_ Snapshotter = (*SyncIndex)(nil)
	_ Snapshotter = (*ShardedIndex)(nil)
)

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways: every mutation is fsynced before it is acknowledged.
	// Concurrent writers group-commit: records appended while one fsync
	// is in flight all share the next, so fsyncs per op drop well below
	// one under load.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval: the WAL is fsynced on a timer; a crash loses at
	// most one interval of acknowledged writes.
	FsyncInterval
	// FsyncNever: flushing is left to the OS page cache.
	FsyncNever
)

func (p FsyncPolicy) walPolicy() wal.Policy {
	switch p {
	case FsyncInterval:
		return wal.SyncInterval
	case FsyncNever:
		return wal.SyncNever
	}
	return wal.SyncAlways
}

// ParseFsyncPolicy converts the flag spellings "always", "interval",
// "never" into a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("alex: unknown fsync policy %q (want always, interval or never)", s)
}

// ErrClosed is returned by lifecycle methods of a closed DurableIndex.
var ErrClosed = errors.New("alex: durable index closed")

// ErrDegraded reports that a durability failure (failed fsync, disk
// full, WAL I/O error) has poisoned the index into read-only mode:
// mutations are rejected, reads keep serving. Every rejection wraps
// both ErrDegraded and the original cause; test with errors.Is. The
// state is terminal until the process restarts and recovers.
var ErrDegraded = errors.New("alex: durable index degraded (read-only)")

type durableConfig struct {
	policy          FsyncPolicy
	interval        time.Duration
	checkpointEvery int
	shards          int
	syncBackend     bool
	indexOpts       []Option
	fsys            faultfs.FS
}

// DurableOption configures OpenDurable.
type DurableOption func(*durableConfig)

// WithFsyncPolicy selects the WAL fsync policy (default FsyncAlways).
func WithFsyncPolicy(p FsyncPolicy) DurableOption {
	return func(c *durableConfig) { c.policy = p }
}

// WithFsyncInterval sets the timer of FsyncInterval (default 100ms).
func WithFsyncInterval(d time.Duration) DurableOption {
	return func(c *durableConfig) { c.interval = d }
}

// WithCheckpointEvery sets how many logged mutation records accumulate
// before the background checkpointer snapshots the index and truncates
// the log (default 1<<20; 0 disables automatic checkpoints — Checkpoint
// and SAVE still work).
func WithCheckpointEvery(n int) DurableOption {
	return func(c *durableConfig) { c.checkpointEvery = n }
}

// WithDurableShards sets the shard count of the wrapped ShardedIndex
// (default 0 = one per CPU). Ignored with WithSyncBackend.
func WithDurableShards(n int) DurableOption {
	return func(c *durableConfig) { c.shards = n }
}

// WithSyncBackend wraps a SyncIndex (one index behind a readers-writer
// lock) instead of the default ShardedIndex.
func WithSyncBackend() DurableOption {
	return func(c *durableConfig) { c.syncBackend = true }
}

// WithIndexOptions passes index construction options through to the
// wrapped index. When a snapshot exists, its embedded configuration
// wins (exactly as with ReadFrom) and these are ignored.
func WithIndexOptions(opts ...Option) DurableOption {
	return func(c *durableConfig) { c.indexOpts = opts }
}

// WithFilesystem routes every file operation — WAL segments, snapshot
// writes, directory syncs — through fsys (default faultfs.OS). Fault
// injection tests pass a faultfs.Inject here; production never needs
// this option.
func WithFilesystem(fsys faultfs.FS) DurableOption {
	return func(c *durableConfig) { c.fsys = fsys }
}

const (
	snapshotName = "snapshot.alex"
	snapshotTmp  = "snapshot.alex.tmp"
)

// OpenDurable opens (or creates) the durable index stored in dir. It
// recovers the pre-crash state: the latest snapshot is loaded, then the
// WAL tail is replayed through the batch apply path — consecutive
// logged inserts coalesce into bulk merges and consecutive deletes into
// sorted delete batches, so replay pays one tree descent per touched
// leaf, not per logged key. Replay stops at the first invalid record (a
// torn tail from a mid-write crash loses only unacknowledged tail
// records). The directory must be owned by one process at a time.
func OpenDurable(dir string, opts ...DurableOption) (*DurableIndex, error) {
	cfg := durableConfig{
		policy:          FsyncAlways,
		interval:        100 * time.Millisecond,
		checkpointEvery: 1 << 20,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards <= 0 {
		cfg.shards = runtime.GOMAXPROCS(0)
	}
	if cfg.fsys == nil {
		cfg.fsys = faultfs.OS
	}
	if err := cfg.fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A crash mid-checkpoint can leave a partial temp snapshot; the real
	// snapshot (if any) is intact because the rename never happened.
	//alexvet:ignore best-effort cleanup of a crash leftover; the open itself does not depend on it
	_ = cfg.fsys.Remove(filepath.Join(dir, snapshotTmp))

	backend, err := openBackend(dir, &cfg)
	if err != nil {
		return nil, err
	}
	replayed, torn, err := replayInto(cfg.fsys, dir, backend)
	if err != nil {
		return nil, err
	}
	log, err := wal.OpenLogFS(cfg.fsys, dir, cfg.policy.walPolicy(), cfg.interval)
	if err != nil {
		return nil, err
	}
	d := &DurableIndex{
		backend:  backend,
		log:      log,
		dir:      dir,
		cfg:      cfg,
		replayed: replayed,
		torn:     torn,
		ckptCh:   make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	d.dirty.Store(int64(replayed))
	d.wg.Add(1)
	go d.checkpointLoop()
	if cfg.checkpointEvery > 0 && replayed >= cfg.checkpointEvery {
		d.TriggerCheckpoint()
	}
	return d, nil
}

// openBackend loads the snapshot into the configured backend kind, or
// builds an empty one.
func openBackend(dir string, cfg *durableConfig) (Backend, error) {
	f, err := faultfs.Open(cfg.fsys, filepath.Join(dir, snapshotName))
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, err
		}
		if cfg.syncBackend {
			return NewSync(cfg.indexOpts...), nil
		}
		return NewSharded(cfg.shards, cfg.indexOpts...), nil
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	if cfg.syncBackend {
		ix, err := ReadFrom(br)
		if err != nil {
			return nil, fmt.Errorf("alex: load snapshot: %w", err)
		}
		return newSyncFrom(ix), nil
	}
	s, err := ReadFromSharded(br, cfg.shards)
	if err != nil {
		return nil, fmt.Errorf("alex: load snapshot: %w", err)
	}
	return s, nil
}

// Rebuilder is the optional backend capability recovery uses to restore
// bulk-load-quality structure after a heavy replay; both *SyncIndex and
// *ShardedIndex implement it.
type Rebuilder interface{ Rebuild() }

// rebuildMinMerged is the merged-key volume below which a recovery
// rebuild cannot pay for itself: replay that touched fewer keys left
// most of the snapshot-loaded structure intact.
const rebuildMinMerged = 1 << 16

// replayInto applies the WAL tail to b through the batch apply path,
// reporting how many records replayed and whether replay stopped at an
// invalid record. When the coalesced merges dominated the recovered
// contents — at least rebuildMinMerged keys and half the final size —
// the tree's shape is replay-grown rather than planned, and the backend
// is rebuilt through the cost-optimal planner before the index opens.
// Followers tailing a primary never take this path: they apply records
// incrementally through their own Replayer and stay open throughout.
func replayInto(fsys faultfs.FS, dir string, b Backend) (int, bool, error) {
	segs, err := wal.SegmentsFS(fsys, dir)
	if err != nil {
		return 0, false, err
	}
	r := NewReplayer(b)
	n, torn, err := wal.ReplaySegmentsFS(fsys, segs, r.Add)
	if err != nil {
		return n, torn, err
	}
	r.Flush()
	if rb, ok := b.(Rebuilder); ok {
		if m := r.MergedKeys(); m >= rebuildMinMerged && 2*m >= b.Len() {
			rb.Rebuild()
		}
	}
	return n, torn, nil
}

// degrade poisons the index with cause (first cause wins) and returns
// the canonical degraded error — cause wrapped in ErrDegraded.
func (d *DurableIndex) degrade(cause error) error {
	werr := fmt.Errorf("%w: %w", ErrDegraded, cause)
	d.degradedErr.CompareAndSwap(nil, &werr)
	return *d.degradedErr.Load()
}

// Degraded returns nil while the index is healthy, or the error (first
// durability failure, wrapped in ErrDegraded) that poisoned it into
// read-only mode.
func (d *DurableIndex) Degraded() error {
	if p := d.degradedErr.Load(); p != nil {
		return *p
	}
	return nil
}

// applyErr logs rec and then applies op to the backend — the
// write-ahead ordering every acknowledged mutation follows. A WAL
// failure degrades the index (the record was never made durable, so
// the backend is NOT touched — the in-memory state stays exactly the
// acknowledged prefix) and returns an error wrapping ErrDegraded. Use
// after Close panics.
func (d *DurableIndex) applyErr(rec *wal.Record, op Op) (int, error) {
	d.opGate.RLock()
	defer d.opGate.RUnlock()
	if d.closed {
		panic("alex: DurableIndex used after Close")
	}
	if err := d.Degraded(); err != nil {
		return 0, err
	}
	if err := d.log.Append(rec); err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return 0, ErrClosed
		}
		return 0, d.degrade(err)
	}
	n := d.backend.Apply(op)
	d.noteRecords(1)
	return n, nil
}

// apply is applyErr for the bool-returning mutator surface: errors
// (including ErrDegraded rejections) panic with the error value, so
// callers that want a recoverable rejection use the Try variants.
func (d *DurableIndex) apply(rec *wal.Record, op Op) int {
	n, err := d.applyErr(rec, op)
	if err != nil {
		panic(err)
	}
	return n
}

// applyChunked logs and applies a batch, splitting batches beyond the
// WAL's per-record element bound into several records; each chunk is
// atomic on replay, and chunks apply in order so duplicate resolution
// matches the unchunked batch. A mid-batch degradation leaves the
// chunks already applied acknowledged (they are durable) and rejects
// the rest.
func (d *DurableIndex) applyChunked(kind OpKind, walOp wal.Op, keys []float64, payloads []uint64) (int, error) {
	total := 0
	for start := 0; start < len(keys); start += wal.MaxRecordPairs {
		end := min(start+wal.MaxRecordPairs, len(keys))
		ks := keys[start:end]
		var ps []uint64
		if payloads != nil {
			ps = payloads[start:end]
		}
		rec := wal.Record{Op: walOp, Keys: ks, Payloads: ps}
		n, err := d.applyErr(&rec, Op{Kind: kind, Keys: ks, Payloads: ps})
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Insert adds key with payload; see Index.Insert. With FsyncAlways it
// returns only once the mutation is on stable storage. On a degraded
// index it panics with an error wrapping ErrDegraded; use TryInsert
// for an error return.
func (d *DurableIndex) Insert(key float64, payload uint64) bool {
	ok, err := d.TryInsert(key, payload)
	if err != nil {
		panic(err)
	}
	return ok
}

// TryInsert is Insert with degradation as an error instead of a panic.
func (d *DurableIndex) TryInsert(key float64, payload uint64) (bool, error) {
	k, p := [1]float64{key}, [1]uint64{payload}
	rec := wal.Record{Op: wal.OpInsert, Keys: k[:], Payloads: p[:]}
	n, err := d.applyErr(&rec, Op{Kind: OpInsert, Keys: k[:], Payloads: p[:]})
	return n > 0, err
}

// Delete removes key; see Index.Delete. Panics when degraded; use
// TryDelete for an error return.
func (d *DurableIndex) Delete(key float64) bool {
	ok, err := d.TryDelete(key)
	if err != nil {
		panic(err)
	}
	return ok
}

// TryDelete is Delete with degradation as an error instead of a panic.
func (d *DurableIndex) TryDelete(key float64) (bool, error) {
	k := [1]float64{key}
	rec := wal.Record{Op: wal.OpDelete, Keys: k[:]}
	n, err := d.applyErr(&rec, Op{Kind: OpDelete, Keys: k[:]})
	return n > 0, err
}

// Update overwrites the payload of an existing key. Like every
// mutation it is logged before it is applied — as a dedicated
// update-if-present record, which replay applies conditionally, so a
// missing key is never resurrected. An update of an absent key logs a
// record that replays as a no-op. Panics when degraded; use TryUpdate
// for an error return.
func (d *DurableIndex) Update(key float64, payload uint64) bool {
	ok, err := d.TryUpdate(key, payload)
	if err != nil {
		panic(err)
	}
	return ok
}

// TryUpdate is Update with degradation as an error instead of a panic.
func (d *DurableIndex) TryUpdate(key float64, payload uint64) (bool, error) {
	d.opGate.RLock()
	defer d.opGate.RUnlock()
	if d.closed {
		panic("alex: DurableIndex used after Close")
	}
	if err := d.Degraded(); err != nil {
		return false, err
	}
	k, p := [1]float64{key}, [1]uint64{payload}
	rec := wal.Record{Op: wal.OpUpdate, Keys: k[:], Payloads: p[:]}
	if err := d.log.Append(&rec); err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return false, ErrClosed
		}
		return false, d.degrade(err)
	}
	ok := d.backend.Update(key, payload)
	d.noteRecords(1)
	return ok, nil
}

// InsertBatch adds many key/payload pairs, returning how many were new;
// see Index.InsertBatch. A batch of up to 2^20 pairs is logged as one
// WAL record, so replay applies it atomically — a crash can never leave
// it half-applied. Larger batches are logged and applied in 2^20-pair
// chunks: each chunk is atomic and chunks recover strictly in order, so
// a crash can truncate a giant batch only at a chunk boundary.
func (d *DurableIndex) InsertBatch(keys []float64, payloads []uint64) int {
	n, err := d.TryInsertBatch(keys, payloads)
	if err != nil {
		panic(err)
	}
	return n
}

// TryInsertBatch is InsertBatch with degradation as an error. The
// count reports pairs applied before a mid-batch failure (whole chunks
// of 2^20 pairs — all durable and acknowledged).
func (d *DurableIndex) TryInsertBatch(keys []float64, payloads []uint64) (int, error) {
	if len(payloads) != len(keys) {
		panic("alex: len(payloads) != len(keys)")
	}
	return d.applyChunked(OpInsert, wal.OpInsertBatch, keys, payloads)
}

// DeleteBatch removes many keys, returning how many were present; see
// Index.DeleteBatch. Logged as one record, like InsertBatch. Panics
// when degraded; use TryDeleteBatch for an error return.
func (d *DurableIndex) DeleteBatch(keys []float64) int {
	n, err := d.TryDeleteBatch(keys)
	if err != nil {
		panic(err)
	}
	return n
}

// TryDeleteBatch is DeleteBatch with degradation as an error.
func (d *DurableIndex) TryDeleteBatch(keys []float64) (int, error) {
	return d.applyChunked(OpDelete, wal.OpDeleteBatch, keys, nil)
}

// Merge bulk-merges key/payload pairs, returning how many were new; see
// Index.Merge. payloads may be nil. Logged as one record, like
// InsertBatch. Panics when degraded; use TryMerge for an error return.
func (d *DurableIndex) Merge(keys []float64, payloads []uint64) int {
	n, err := d.TryMerge(keys, payloads)
	if err != nil {
		panic(err)
	}
	return n
}

// TryMerge is Merge with degradation as an error.
func (d *DurableIndex) TryMerge(keys []float64, payloads []uint64) (int, error) {
	if payloads == nil {
		payloads = make([]uint64, len(keys))
	}
	if len(payloads) != len(keys) {
		panic("alex: len(payloads) != len(keys)")
	}
	return d.applyChunked(OpMerge, wal.OpMerge, keys, payloads)
}

// Get returns the payload stored for key.
func (d *DurableIndex) Get(key float64) (uint64, bool) { return d.backend.Get(key) }

// Contains reports whether key is present.
func (d *DurableIndex) Contains(key float64) bool { return d.backend.Contains(key) }

// GetBatch looks up many keys at once; see Index.GetBatch.
func (d *DurableIndex) GetBatch(keys []float64) ([]uint64, []bool) {
	return d.backend.GetBatch(keys)
}

// GetBatchInto is the zero-allocation GetBatch; reads never touch the
// WAL, so it delegates straight to the wrapped index's optimistic read
// path.
func (d *DurableIndex) GetBatchInto(keys []float64, payloads []uint64, found []bool) {
	d.backend.GetBatchInto(keys, payloads, found)
}

// Scan visits elements with key >= start in ascending key order; see
// the wrapped type's Scan for the callback restrictions.
func (d *DurableIndex) Scan(start float64, visit func(key float64, payload uint64) bool) int {
	return d.backend.Scan(start, visit)
}

// ScanN collects up to max elements from the first key >= start.
func (d *DurableIndex) ScanN(start float64, max int) ([]float64, []uint64) {
	return d.backend.ScanN(start, max)
}

// ScanNInto is the zero-allocation ScanN, delegating to the wrapped
// index's optimistic read path.
func (d *DurableIndex) ScanNInto(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64) {
	return d.backend.ScanNInto(start, max, keys, payloads)
}

// ScanRange visits all elements with start <= key < end in order.
func (d *DurableIndex) ScanRange(start, end float64, visit func(key float64, payload uint64) bool) int {
	return d.backend.ScanRange(start, end, visit)
}

// MinKey returns the smallest key.
func (d *DurableIndex) MinKey() (float64, bool) { return d.backend.MinKey() }

// MaxKey returns the largest key.
func (d *DurableIndex) MaxKey() (float64, bool) { return d.backend.MaxKey() }

// Len returns the number of stored elements.
func (d *DurableIndex) Len() int { return d.backend.Len() }

// Stats returns the wrapped index's aggregated counters.
func (d *DurableIndex) Stats() Stats { return d.backend.Stats() }

// IndexSizeBytes accounts the RMI structure of the wrapped index.
func (d *DurableIndex) IndexSizeBytes() int { return d.backend.IndexSizeBytes() }

// DataSizeBytes accounts the wrapped index's data node storage.
func (d *DurableIndex) DataSizeBytes() int { return d.backend.DataSizeBytes() }

// CheckInvariants verifies the wrapped index.
func (d *DurableIndex) CheckInvariants() error { return d.backend.CheckInvariants() }

// Unwrap returns the wrapped backend for read-only phases; callers must
// not mutate through it (those writes would bypass the WAL).
func (d *DurableIndex) Unwrap() Backend { return d.backend }

// WALStats reports durability activity: log records appended, fsyncs
// issued (under group commit Syncs/Appends < 1 with concurrent
// writers), bytes logged, checkpoints completed, and how many records
// the last OpenDurable replayed.
type WALStats struct {
	Appends     uint64
	Syncs       uint64
	Bytes       uint64
	Checkpoints uint64
	Replayed    int
	// TornTail reports that the last recovery hit an invalid record.
	// After a crash this is the expected torn tail of a segment (replay
	// resumes with the next segment, if any); if it ever appears after
	// a clean shutdown it indicates on-disk corruption.
	TornTail bool
	// Followers is the number of replication followers currently
	// streaming this index's WAL; MaxFollowerLagBytes is the worst
	// follower's committed-but-unshipped byte count (0 when none).
	Followers           int
	MaxFollowerLagBytes int64
	// Degraded reports the poisoned read-only state: a durability
	// failure occurred and mutations are being rejected (see
	// DurableIndex.Degraded for the cause).
	Degraded bool
}

// WALStats returns cumulative durability counters.
func (d *DurableIndex) WALStats() WALStats {
	st := d.log.Stats()
	ws := WALStats{
		Appends:     st.Appends,
		Syncs:       st.Syncs,
		Bytes:       st.Bytes,
		Checkpoints: d.checkpoints.Load(),
		Replayed:    d.replayed,
		TornTail:    d.torn,
		Degraded:    d.Degraded() != nil,
	}
	for _, f := range d.Followers() {
		ws.Followers++
		ws.MaxFollowerLagBytes = max(ws.MaxFollowerLagBytes, f.LagBytes)
	}
	return ws
}

// Flush blocks until every acknowledged mutation is on stable storage,
// regardless of the fsync policy. A sync failure degrades the index
// (the fsync-gate rule: a failed fsync is never retried over the same
// dirty buffers); on an already-degraded index Flush returns the
// poisoning error without touching the disk.
func (d *DurableIndex) Flush() error {
	if err := d.Degraded(); err != nil {
		return err
	}
	err := d.log.Sync()
	if errors.Is(err, wal.ErrClosed) {
		return ErrClosed
	}
	if err != nil {
		return d.degrade(err)
	}
	return nil
}

// Checkpoint synchronously serializes the index to a fresh snapshot and
// truncates the WAL segments the snapshot covers. Mutations continue
// concurrently (they land in the new segment, which is replayed over
// the snapshot on recovery; replay is idempotent, so overlap is
// harmless). Safe to call at any time; concurrent checkpoints
// serialize.
func (d *DurableIndex) Checkpoint() error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	// A degraded index must not checkpoint: the snapshot would capture
	// only the acknowledged prefix (the backend never applied the failed
	// mutation), but truncating WAL segments on degraded storage risks
	// deleting history while the snapshot's own durability is suspect.
	// Reads still serve; recovery after restart is the way forward.
	if err := d.Degraded(); err != nil {
		return err
	}
	// Rotate under the exclusive gate: once no mutation is in flight,
	// everything in the sealed segments is applied, so the snapshot cut
	// after the rotation covers them all.
	d.opGate.Lock()
	if d.closed {
		d.opGate.Unlock()
		return ErrClosed
	}
	covered := d.dirty.Load()
	err := d.log.Rotate()
	d.opGate.Unlock()
	if err != nil {
		if errors.Is(err, wal.ErrSealFailed) {
			// The rotated-out segment could not be flushed/fsynced:
			// records acknowledged under a deferred-sync policy may be
			// lost. That is a durability failure, not a transient
			// checkpoint failure.
			return d.degrade(err)
		}
		// Creating the next segment failed (e.g. disk full): nothing
		// rotated, appends continue into the current segment, and the
		// next trigger retries.
		return err
	}
	if err := d.writeSnapshot(); err != nil {
		// Leave dirty untouched: the auto-checkpoint clock keeps
		// ticking, so a transient failure (disk full) is retried as
		// soon as the next trigger fires instead of after another full
		// checkpointEvery records.
		return err
	}
	// Discharge only the records the snapshot covers; mutations logged
	// while it was being written stay on the clock.
	d.dirty.Add(-covered)
	// Advisory marker noting the snapshot; replay skips it.
	//alexvet:ignore the marker is advisory — recovery is correct without it; a real append failure resurfaces on the next mutation
	_ = d.log.Append(&wal.Record{Op: wal.OpCheckpoint, Seq: d.log.CurrentSeq()})
	if err := d.log.RemoveObsolete(); err != nil {
		return err
	}
	d.checkpoints.Add(1)
	return nil
}

// writeSnapshot atomically replaces the snapshot file with the current
// index state. Every failure path — create, write, fsync, rename, dir
// sync — returns before the caller reaches WAL truncation, so a failed
// checkpoint can never delete segments recovery still needs.
func (d *DurableIndex) writeSnapshot() error {
	tmp := filepath.Join(d.dir, snapshotTmp)
	f, err := faultfs.Create(d.cfg.fsys, tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if sn, ok := d.backend.(Snapshotter); ok {
		// Cut a snapshot (brief exclusive section) and stream it without
		// holding any index lock: writers proceed while the file is built.
		snap := sn.Snapshot()
		_, err = snap.WriteTo(bw)
		snap.Close()
	} else {
		_, err = d.backend.WriteTo(bw)
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		//alexvet:ignore best-effort backout of the temp file; the write error on the next line is the one that matters
		_ = d.cfg.fsys.Remove(tmp)
		return err
	}
	if err := d.cfg.fsys.Rename(tmp, filepath.Join(d.dir, snapshotName)); err != nil {
		return err
	}
	// The rename must be durable before the WAL segments it supersedes
	// are truncated; a swallowed error here could lose the snapshot AND
	// the log. faultfs.OS already treats platform "can't fsync a dir"
	// errnos as success, so every error left is real.
	return d.cfg.fsys.SyncDir(d.dir)
}

// TriggerCheckpoint asks the background checkpointer for a checkpoint
// without waiting for it (the BGSAVE path). A checkpoint already in
// flight absorbs the request; errors are retrievable via
// CheckpointError.
func (d *DurableIndex) TriggerCheckpoint() {
	select {
	case d.ckptCh <- struct{}{}:
	default:
	}
}

// CheckpointError returns the last background checkpoint failure, if
// any.
func (d *DurableIndex) CheckpointError() error {
	if p := d.ckptErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Checkpoints returns how many checkpoints have completed.
func (d *DurableIndex) Checkpoints() uint64 { return d.checkpoints.Load() }

// noteRecords advances the auto-checkpoint clock.
func (d *DurableIndex) noteRecords(n int) {
	if d.cfg.checkpointEvery <= 0 {
		return
	}
	if d.dirty.Add(int64(n)) >= int64(d.cfg.checkpointEvery) {
		d.TriggerCheckpoint()
	}
}

// checkpointLoop runs requested checkpoints off the mutation path.
func (d *DurableIndex) checkpointLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.done:
			return
		case <-d.ckptCh:
			if err := d.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
				d.ckptErr.Store(&err)
			}
		}
	}
}

// Close flushes the WAL to stable storage, stops the background
// checkpointer, and closes the log. It does not write a final
// checkpoint — call Checkpoint first for an instant next open (as the
// server's graceful shutdown does); recovery replays the log tail
// either way. Mutations must not race with Close; after it, they panic
// and lifecycle methods return ErrClosed.
func (d *DurableIndex) Close() error {
	d.opGate.Lock()
	if d.closed {
		d.opGate.Unlock()
		return nil
	}
	d.closed = true
	d.opGate.Unlock()
	close(d.done)
	d.wg.Wait()
	err := d.log.Close()
	if errors.Is(err, wal.ErrClosed) {
		return nil
	}
	return err
}
