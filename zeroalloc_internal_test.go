package alex

// Allocation regression tests for the read hot paths: Get, Contains,
// GetBatchInto and ScanNInto must stay at 0 allocs/op on all three
// wrappers. These are the guarantees the *Into API exists for — a batch
// read pipeline (facade → sync/shard → core → leaf) that never touches
// the garbage collector once the destination buffers are warm.
//
// Internal package test: it needs raceEnabled (the race detector's
// memory instrumentation allocates, so the assertions only hold on
// normal builds).

import (
	"math"
	"testing"
)

// allocKeys builds a deterministic quasi-uniform key set large enough
// to span many leaves and several shards.
func allocKeys(n int) []float64 {
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(i)*1.618 + math.Mod(float64(i)*0.337, 1.0)
	}
	return keys
}

type readSurface interface {
	Get(key float64) (uint64, bool)
	Contains(key float64) bool
	GetBatchInto(keys []float64, payloads []uint64, found []bool)
	ScanNInto(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64)
}

func assertZeroAlloc(t *testing.T, what string, f func()) {
	t.Helper()
	if got := testing.AllocsPerRun(100, f); got != 0 {
		t.Errorf("%s: %v allocs/op, want 0", what, got)
	}
}

func testZeroAllocReads(t *testing.T, name string, idx readSurface, keys []float64) {
	batch := keys[len(keys)/4 : len(keys)/4+64]
	vals := make([]uint64, len(batch))
	found := make([]bool, len(batch))
	scanK := make([]float64, 0, 128)
	scanV := make([]uint64, 0, 128)
	i := 0
	assertZeroAlloc(t, name+".Get", func() {
		i++
		idx.Get(keys[(i*31)%len(keys)])
	})
	assertZeroAlloc(t, name+".Contains", func() {
		i++
		idx.Contains(keys[(i*17)%len(keys)])
	})
	assertZeroAlloc(t, name+".GetBatchInto", func() {
		idx.GetBatchInto(batch, vals, found)
	})
	// Unsorted batches route through the pooled sort+permute scatter,
	// which must also be allocation free once the pool is warm.
	unsorted := make([]float64, len(batch))
	for j, k := range batch {
		unsorted[(j*29)%len(batch)] = k
	}
	assertZeroAlloc(t, name+".GetBatchInto(unsorted)", func() {
		idx.GetBatchInto(unsorted, vals, found)
	})
	assertZeroAlloc(t, name+".ScanNInto", func() {
		i++
		scanK, scanV = idx.ScanNInto(keys[(i*13)%len(keys)], 128, scanK, scanV)
	})
}

func TestZeroAllocReadPaths(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; assertions hold on normal builds only")
	}
	keys := allocKeys(20000)

	idx := LoadSorted(keys, nil)
	testZeroAllocReads(t, "Index", idx, keys)

	sy, err := LoadSync(keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	testZeroAllocReads(t, "SyncIndex", sy, keys)

	sh, err := LoadSharded(8, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	testZeroAllocReads(t, "ShardedIndex", sh, keys)
}

// The locked fallback path must stay allocation free too: it is what
// every read becomes under the race detector and heavy write pressure.
func TestZeroAllocLockedReadPaths(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; assertions hold on normal builds only")
	}
	keys := allocKeys(20000)

	sy, err := LoadSync(keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	sy.SetOptimisticReads(false)
	testZeroAllocReads(t, "SyncIndex(locked)", sy, keys)

	sh, err := LoadSharded(8, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh.SetOptimisticReads(false)
	testZeroAllocReads(t, "ShardedIndex(locked)", sh, keys)
}
