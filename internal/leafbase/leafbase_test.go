package leafbase

import (
	"math"
	"testing"
	"testing/quick"
)

func buildBase(keys []float64, capacity int) *Base {
	b := &Base{}
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i) + 1
	}
	b.BuildFromSorted(keys, payloads, capacity)
	return b
}

func seq(n int, step float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * step
	}
	return out
}

func TestInitEmpty(t *testing.T) {
	b := &Base{}
	b.Init(10)
	if b.Cap() != 10 || b.Num() != 0 {
		t.Fatalf("cap=%d num=%d", b.Cap(), b.Num())
	}
	for i, k := range b.Keys {
		if !math.IsInf(k, 1) {
			t.Fatalf("slot %d not +Inf fill: %v", i, k)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Lookup(1); ok {
		t.Fatal("lookup on empty")
	}
	if _, ok := b.MinKey(); ok {
		t.Fatal("MinKey on empty")
	}
	if _, ok := b.MaxKey(); ok {
		t.Fatal("MaxKey on empty")
	}
}

func TestInitMinCapacity(t *testing.T) {
	b := &Base{}
	b.Init(0)
	if b.Cap() < 1 {
		t.Fatal("capacity floor")
	}
}

func TestBuildFromSortedPlacesModelBased(t *testing.T) {
	keys := seq(1000, 2)
	b := buildBase(keys, 2000)
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !b.HasModel {
		t.Fatal("1000-key node should have a model")
	}
	// Perfectly linear data at 2x capacity: keys should sit very near
	// their predicted slot (Theorem 1 regime).
	var sumErr int
	for _, k := range keys {
		e, ok := b.PredictionError(k)
		if !ok {
			t.Fatalf("key %v missing", k)
		}
		sumErr += e
	}
	if avg := float64(sumErr) / float64(len(keys)); avg > 0.5 {
		t.Fatalf("mean placement error %v on linear data with 2x space", avg)
	}
}

func TestColdStartHasNoModel(t *testing.T) {
	keys := seq(MinModelKeys-1, 1)
	b := buildBase(keys, 64)
	if b.HasModel {
		t.Fatalf("%d-key node should be model-less (cold start)", len(keys))
	}
	// Lookups still work through plain binary search.
	for _, k := range keys {
		if _, ok := b.Lookup(k); !ok {
			t.Fatalf("cold-start lookup of %v failed", k)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGapFillInvariantAfterDeletes(t *testing.T) {
	keys := seq(100, 1)
	b := buildBase(keys, 200)
	// Delete a run in the middle; fills behind it must repair.
	for i := 40; i < 60; i++ {
		if !b.Delete(float64(i)) {
			t.Fatalf("Delete(%d)", i)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete the maximum repeatedly; trailing fills become +Inf.
	for i := 99; i >= 90; i-- {
		if !b.Delete(float64(i)) {
			t.Fatalf("Delete(%d)", i)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if k, _ := b.MaxKey(); k != 89 {
		t.Fatalf("MaxKey = %v", k)
	}
}

func TestPlaceModelBasedDuplicate(t *testing.T) {
	b := buildBase(seq(50, 1), 100)
	if r := b.PlaceModelBased(25, 999, 0, b.Cap()); r != Duplicate {
		t.Fatalf("result = %v, want Duplicate", r)
	}
	if v, _ := b.Lookup(25); v != 999 {
		t.Fatalf("payload not overwritten: %d", v)
	}
	if b.Num() != 50 {
		t.Fatalf("Num changed: %d", b.Num())
	}
}

func TestPlaceModelBasedNeedRoomWhenFull(t *testing.T) {
	keys := seq(10, 1)
	b := buildBase(keys, 10) // zero gaps
	if r := b.PlaceModelBased(3.5, 1, 0, b.Cap()); r != NeedRoom {
		t.Fatalf("result = %v, want NeedRoom on full node", r)
	}
}

func TestInsertBeyondMaxWithFullTail(t *testing.T) {
	// Arrange a node whose last slot is occupied and insert a key larger
	// than everything: the shift-left path must engage.
	b := &Base{}
	b.BuildFromSorted(seq(9, 1), make([]uint64, 9), 10)
	// Force the last slot occupied: insert keys until the tail fills.
	for i := 0; i < 40 && !b.Occ.Test(b.Cap()-1); i++ {
		b.PlaceModelBased(100+float64(i), 1, 0, b.Cap())
	}
	if !b.Occ.Test(b.Cap()-1) || b.Num() >= b.Cap() {
		t.Skip("could not arrange occupied tail with a free gap")
	}
	max, _ := b.MaxKey()
	if r := b.PlaceModelBased(max+1, 7, 0, b.Cap()); r != Inserted {
		t.Fatalf("result = %v", r)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if k, _ := b.MaxKey(); k != max+1 {
		t.Fatalf("MaxKey = %v, want %v", k, max+1)
	}
}

func TestShiftWindowRespected(t *testing.T) {
	// With the shift window restricted to a segment that is full, the
	// placement must report NeedRoom rather than shifting outside.
	b := &Base{}
	b.Init(16)
	// Occupy slots 0..7 with keys 0..7 (a full "segment"), leave 8..15 free.
	for i := 0; i < 8; i++ {
		b.Keys[i] = float64(i)
		b.Payloads[i] = uint64(i)
		b.Occ.Set(i)
		b.NumKeys++
	}
	b.repairAllFills()
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Key 3.5's lower bound is slot 4, inside the full window [0, 8).
	if r := b.PlaceModelBased(3.5, 9, 0, 8); r != NeedRoom {
		t.Fatalf("result = %v, want NeedRoom for full window", r)
	}
	// With the window widened the shift succeeds (gap at slot 8).
	if r := b.PlaceModelBased(3.5, 9, 0, 16); r != Inserted {
		t.Fatalf("result = %v, want Inserted", r)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRedistributeUniform(t *testing.T) {
	b := &Base{}
	b.Init(32)
	// Pack 8 keys at the left edge.
	for i := 0; i < 8; i++ {
		b.Keys[i] = float64(i * 10)
		b.Payloads[i] = uint64(i)
		b.Occ.Set(i)
		b.NumKeys++
	}
	b.repairAllFills()
	moved := b.RedistributeUniform(0, 32, false, 0, 0)
	if moved != 8 {
		t.Fatalf("moved = %d", moved)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Uniform spacing: slots 0,4,8,...,28.
	for i := 0; i < 8; i++ {
		if !b.Occ.Test(i * 4) {
			t.Fatalf("slot %d not occupied after redistribution", i*4)
		}
	}
	// Redistribution with an inserted extra key keeps order.
	b.RedistributeUniform(0, 32, true, 35, 99)
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if v, ok := b.Lookup(35); !ok || v != 99 {
		t.Fatalf("extra key lookup = %v,%v", v, ok)
	}
	if b.Num() != 9 {
		t.Fatalf("Num = %d", b.Num())
	}
}

func TestScanFromStopsEarly(t *testing.T) {
	b := buildBase(seq(100, 1), 200)
	count := 0
	stopped := b.ScanFrom(10, func(k float64, v uint64) bool {
		count++
		return count < 5
	})
	if !stopped || count != 5 {
		t.Fatalf("stopped=%v count=%d", stopped, count)
	}
	stopped = b.ScanFrom(95, func(k float64, v uint64) bool { return true })
	if stopped {
		t.Fatal("scan to the end should report not-stopped")
	}
}

func TestCollectIntoProvidedSlices(t *testing.T) {
	b := buildBase(seq(10, 1), 20)
	keys := make([]float64, 0, 16)
	payloads := make([]uint64, 0, 16)
	keys, payloads = b.Collect(keys, payloads)
	if len(keys) != 10 || len(payloads) != 10 {
		t.Fatalf("collected %d/%d", len(keys), len(payloads))
	}
	for i := range keys {
		if keys[i] != float64(i) || payloads[i] != uint64(i)+1 {
			t.Fatalf("collect[%d] = %v,%v", i, keys[i], payloads[i])
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Shifts: 1, Expands: 2, Contracts: 3, Rebalances: 4, Retrains: 5, Inserts: 6, Deletes: 7}
	var b Stats
	b.Add(&a)
	b.Add(&a)
	if b.Shifts != 2 || b.Deletes != 14 || b.Retrains != 10 {
		t.Fatalf("Add: %+v", b)
	}
}

func TestDataSizeBytes(t *testing.T) {
	b := buildBase(seq(10, 1), 64)
	want8 := 64*8 + 64*8 + b.Occ.SizeBytes()
	if got := b.DataSizeBytes(8); got != want8 {
		t.Fatalf("DataSizeBytes(8) = %d, want %d", got, want8)
	}
	if b.DataSizeBytes(80) <= want8 {
		t.Fatal("80-byte payload accounting too small")
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	b := buildBase(seq(20, 1), 40)
	// Corrupt a gap fill.
	for i := range b.Keys {
		if !b.Occ.Test(i) {
			b.Keys[i] = -1
			break
		}
	}
	if err := b.CheckInvariants(); err == nil {
		t.Fatal("corrupt fill not detected")
	}
	// Corrupt the count.
	b2 := buildBase(seq(20, 1), 40)
	b2.NumKeys++
	if err := b2.CheckInvariants(); err == nil {
		t.Fatal("count mismatch not detected")
	}
}

func TestUpdateAndAccessors(t *testing.T) {
	b := buildBase(seq(50, 2), 100)
	if !b.Update(48, 777) {
		t.Fatal("update existing")
	}
	if v, _ := b.Lookup(48); v != 777 {
		t.Fatalf("payload = %d", v)
	}
	if b.Update(49, 1) {
		t.Fatal("update absent")
	}
	if b.BaseStats() == nil || b.BaseStats().Retrains == 0 {
		t.Fatal("BaseStats")
	}
	if d := b.Density(); d != 0.5 {
		t.Fatalf("Density = %v", d)
	}
	// NextSlot/At traverse exactly the occupied slots in order.
	count := 0
	prev := math.Inf(-1)
	for s := b.NextSlot(-1); s >= 0; s = b.NextSlot(s) {
		k, _ := b.At(s)
		if k <= prev {
			t.Fatal("NextSlot out of order")
		}
		prev = k
		count++
	}
	if count != 50 {
		t.Fatalf("NextSlot visited %d", count)
	}
	// At on a gap panics.
	gap := b.Occ.NextClear(0)
	defer func() {
		if recover() == nil {
			t.Fatal("At(gap) did not panic")
		}
	}()
	b.At(gap)
}

func TestRebuildModelBasedPreservesContents(t *testing.T) {
	b := buildBase(seq(200, 3), 300)
	b.Delete(30)
	b.Delete(60)
	b.RebuildModelBased(512)
	if b.Cap() != 512 || b.Num() != 198 {
		t.Fatalf("cap=%d num=%d", b.Cap(), b.Num())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Lookup(30); ok {
		t.Fatal("deleted key resurrected")
	}
	if _, ok := b.Lookup(33); !ok {
		t.Fatal("key lost in rebuild")
	}
}

func TestRedistributeWeightedSkewsGaps(t *testing.T) {
	b := &Base{}
	b.Init(64)
	// 32 keys packed left.
	for i := 0; i < 32; i++ {
		b.Keys[i] = float64(i)
		b.Payloads[i] = uint64(i)
		b.Occ.Set(i)
		b.NumKeys++
	}
	b.repairAllFills()
	// 4 segments of 16; give segment 3 (rightmost) 10x gap weight.
	weights := []float64{1, 1, 1, 10}
	moved := b.RedistributeWeighted(0, 64, 16, weights, false, 0, 0)
	if moved != 32 {
		t.Fatalf("moved = %d", moved)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The hot segment must hold far fewer elements than the cold ones.
	hot := b.Occ.CountRange(48, 64)
	cold := b.Occ.CountRange(0, 16)
	if hot >= cold {
		t.Fatalf("hot segment %d elements, cold %d; weighting had no effect", hot, cold)
	}
	// All keys still present and ordered.
	count := 0
	b.ScanFrom(math.Inf(-1), func(k float64, v uint64) bool { count++; return true })
	if count != 32 {
		t.Fatalf("scan count %d", count)
	}
}

func TestRedistributeWeightedWithExtraKey(t *testing.T) {
	b := &Base{}
	b.Init(32)
	for i := 0; i < 10; i++ {
		b.Keys[i] = float64(i * 10)
		b.Payloads[i] = uint64(i)
		b.Occ.Set(i)
		b.NumKeys++
	}
	b.repairAllFills()
	b.RedistributeWeighted(0, 32, 8, []float64{1, 2, 3, 4}, true, 55, 99)
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if v, ok := b.Lookup(55); !ok || v != 99 {
		t.Fatalf("extra key = %v,%v", v, ok)
	}
	if b.Num() != 11 {
		t.Fatalf("Num = %d", b.Num())
	}
}

func TestRedistributeWeightedDegenerateFallsBack(t *testing.T) {
	b := &Base{}
	b.Init(16)
	for i := 0; i < 8; i++ {
		b.Keys[i] = float64(i)
		b.Payloads[i] = uint64(i)
		b.Occ.Set(i)
		b.NumKeys++
	}
	b.repairAllFills()
	// Nil weights: every segment defaults to weight 1 (uniform-ish).
	b.RedistributeWeighted(0, 16, 4, nil, false, 0, 0)
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if b.Num() != 8 {
		t.Fatalf("Num = %d", b.Num())
	}
}

// Property: RedistributeWeighted preserves contents and invariants for
// arbitrary weights.
func TestQuickRedistributeWeighted(t *testing.T) {
	f := func(rawKeys []uint16, w1, w2, w3, w4 uint8) bool {
		seen := make(map[float64]bool)
		var keys []float64
		for _, v := range rawKeys {
			k := float64(v)
			if !seen[k] && len(keys) < 48 {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		b := &Base{}
		b.BuildFromSorted(keys, make([]uint64, len(keys)), 64)
		weights := []float64{float64(w1) + 1, float64(w2) + 1, float64(w3) + 1, float64(w4) + 1}
		b.RedistributeWeighted(0, 64, 16, weights, false, 0, 0)
		if err := b.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		got, _ := b.Collect(nil, nil)
		if len(got) != len(keys) {
			return false
		}
		for i := range keys {
			if got[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: BuildFromSorted round-trips any strictly increasing key set
// at any capacity >= n.
func TestQuickBuildRoundTrip(t *testing.T) {
	f := func(raw []uint32, extraCap uint8) bool {
		seen := make(map[float64]bool)
		keys := make([]float64, 0, len(raw))
		for _, v := range raw {
			k := float64(v)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		// BuildFromSorted requires sorted input.
		for i := 1; i < len(keys); i++ {
			if keys[i] < keys[i-1] {
				// insertion sort the small slice
				for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
					keys[j], keys[j-1] = keys[j-1], keys[j]
				}
			}
		}
		b := &Base{}
		b.BuildFromSorted(keys, make([]uint64, len(keys)), len(keys)+int(extraCap))
		if err := b.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		for _, k := range keys {
			if _, ok := b.Lookup(k); !ok {
				return false
			}
		}
		gotKeys, _ := b.Collect(nil, nil)
		if len(gotKeys) != len(keys) {
			return false
		}
		for i := range keys {
			if gotKeys[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
