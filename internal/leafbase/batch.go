package leafbase

import "repro/internal/search"

// This file implements the data-node half of the batch API: amortized
// multi-key primitives that the tree layer invokes once per leaf after
// grouping a sorted batch by destination node. The amortizations are
// the ones batching makes possible inside a node: successive searches
// start from the previous hit instead of from scratch, and a merge
// rebuild replaces per-key shifting with one model retrain and one
// model-based placement pass (Algorithm 3 run once for the whole
// batch instead of once per expansion).

// LookupBatch resolves keys against the node, filling the parallel
// result slices (vals[i], found[i] describe keys[i]; all three must
// have equal length). Results are correct for any key order.
//
// The per-key search strategy mirrors Find: a direct-hit check at the
// predicted slot, then — on leaves whose error bound fits the bounded
// window — a one-sided branch-free window search per key, else
// exponential search. Only the exponential regime uses the
// previous-slot hint (a non-decreasing batch starts each bracketing at
// the later of the prediction and the previous key's slot): a bounded
// probe's clamped result for an *absent* key is not a true lower
// bound, so feeding it forward as a floor could skip a later key's
// window, while the bounded window itself already makes the hint's
// saving irrelevant.
func (b *Base) LookupBatch(keys []float64, vals []uint64, found []bool) {
	hint := 0
	bounded := b.HasModel && b.ErrBound <= boundedMax
	for i, k := range keys {
		var slot int
		if bounded {
			p := b.predictFast(k)
			switch kp := b.Keys[p]; {
			case kp == k:
				slot = p
			case kp < k: // one-sided windows, as in Find
				slot = search.LowerBoundLinear(b.Keys, k, p+1, p+b.ErrBound+1)
			default:
				slot = search.LowerBoundLinear(b.Keys, k, p-b.ErrBound, p+1)
			}
		} else {
			pos := hint
			if b.HasModel {
				if p := b.predictFast(k); p > pos {
					pos = p
				}
			}
			slot = search.ExponentialBranchless(b.Keys, k, pos)
			hint = slot
		}
		if slot >= len(b.Keys) || b.Keys[slot] != k {
			continue
		}
		// Unsigned bound folds the miss and the torn-probe guard (see
		// Find) into one compare.
		occ := b.Occ.NextSet(slot)
		if uint(occ) < uint(len(b.Keys)) && b.Keys[occ] == k && uint(occ) < uint(len(b.Payloads)) {
			vals[i] = b.Payloads[occ]
			found[i] = true
		}
	}
}

// MergeSorted merges a non-decreasing batch with the node's current
// elements into fresh sorted slices, without touching the node. A batch
// key equal to an existing key overwrites its payload; within the batch
// the last occurrence of a duplicated key wins. added is the number of
// batch keys that were not already present. The caller rebuilds the
// node from the returned slices with its own capacity policy.
func (b *Base) MergeSorted(keys []float64, payloads []uint64) (mk []float64, mp []uint64, added int) {
	ek, ep := b.Collect(nil, nil)
	mk = make([]float64, 0, len(ek)+len(keys))
	mp = make([]uint64, 0, len(ek)+len(keys))
	i, j := 0, 0
	for i < len(ek) && j < len(keys) {
		// Collapse an intra-batch duplicate run to its last occurrence.
		for j+1 < len(keys) && keys[j+1] == keys[j] {
			j++
		}
		switch {
		case ek[i] < keys[j]:
			mk = append(mk, ek[i])
			mp = append(mp, ep[i])
			i++
		case ek[i] > keys[j]:
			mk = append(mk, keys[j])
			mp = append(mp, payloads[j])
			j++
			added++
		default:
			mk = append(mk, keys[j])
			mp = append(mp, payloads[j])
			i++
			j++
		}
	}
	mk = append(mk, ek[i:]...)
	mp = append(mp, ep[i:]...)
	for j < len(keys) {
		for j+1 < len(keys) && keys[j+1] == keys[j] {
			j++
		}
		mk = append(mk, keys[j])
		mp = append(mp, payloads[j])
		j++
		added++
	}
	return mk, mp, added
}

// DeleteSortedNoRepack removes every present key of a non-decreasing
// batch, returning how many were removed. It never contracts the node;
// layouts wrap it and apply their contraction policy once per batch
// instead of once per key.
func (b *Base) DeleteSortedNoRepack(keys []float64) int {
	n := 0
	for _, k := range keys {
		if b.Delete(k) {
			n++
		}
	}
	return n
}
