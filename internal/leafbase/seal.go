package leafbase

import "sync/atomic"

// This file implements the freeze half of the index's epoch-snapshot
// protocol. A snapshot does not copy data nodes; it *seals* them: the
// sealed flag promises that the arrays behind this Base will never be
// mutated again. The writer honors the promise with copy-on-write — its
// first mutation of a sealed node clones it (CloneInto) and republishes
// the clone through the node's atomic array pointer, leaving the sealed
// original frozen for every snapshot that pinned it. Snapshot creation
// is therefore O(#leaves) flag stores, not O(n) copying, and the copy
// cost is paid lazily, only for nodes that are actually written while a
// snapshot is live.

// Seal freezes the node: after Seal returns, no mutation may touch the
// node's arrays — writers must clone first (see CloneInto). Sealing is
// idempotent. It must be called with writers excluded (the snapshot
// code paths hold the shard/index locks), but may overlap lock-free
// readers, which never consult the flag.
func (b *Base) Seal() { atomic.StoreUint32(&b.sealed, 1) }

// Sealed reports whether the node was frozen by a snapshot. The writer
// checks it at the top of every mutating leaf operation.
func (b *Base) Sealed() bool { return atomic.LoadUint32(&b.sealed) != 0 }

// CloneInto deep-copies the node's storage into dst, which becomes an
// unsealed, independently mutable replica: the key/payload arrays and
// the occupancy bitmap are duplicated, the model, error bounds, and
// work counters carry over by value. The receiver is left untouched.
func (b *Base) CloneInto(dst *Base) {
	*dst = *b
	dst.Keys = append([]float64(nil), b.Keys...)
	dst.Payloads = append([]uint64(nil), b.Payloads...)
	dst.Occ = b.Occ.Clone()
	//alexvet:ignore dst is a private replica no reader has seen yet; the plain store happens-before its publication
	dst.sealed = 0
}
