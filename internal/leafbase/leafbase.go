// Package leafbase implements the machinery shared by ALEX's two data
// node layouts (Gapped Array, §3.3.1, and Packed Memory Array, §3.3.2):
//
//   - a key array with gaps, where every gap slot duplicates the key of
//     the closest occupied slot to its right (trailing gaps hold +Inf),
//     so the array is always non-decreasing and exponential search works
//     without consulting the bitmap;
//   - an occupancy bitmap distinguishing real elements from gaps
//     (§5.2.3);
//   - a per-node linear model with model-based inserts, lookups by
//     exponential search from the predicted position (Alg 3), and
//     model-based re-insertion during node rebuilds;
//   - gap-making by shifting toward the closest gap (Alg 1), with shift
//     accounting for the Fig 8 experiment.
//
// The concrete layouts embed Base and supply their own growth policy:
// the gapped array grows by 1/d when its density d is reached, the PMA
// doubles and additionally rebalances windows under density bounds.
package leafbase

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bitmapx"
	"repro/internal/linmodel"
	"repro/internal/search"
)

// Stats counts the work a data node performs, in units the paper reports:
// Shifts is the number of element moves caused by inserts (Fig 8),
// Expands counts node expansions, Rebalances counts PMA window
// redistributions, Retrains counts model retrainings.
type Stats struct {
	Shifts     uint64
	Expands    uint64
	Contracts  uint64
	Rebalances uint64
	Retrains   uint64
	Inserts    uint64
	Deletes    uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other *Stats) {
	s.Shifts += other.Shifts
	s.Expands += other.Expands
	s.Contracts += other.Contracts
	s.Rebalances += other.Rebalances
	s.Retrains += other.Retrains
	s.Inserts += other.Inserts
	s.Deletes += other.Deletes
}

// MinModelKeys is the cold-start threshold of §3.3.3: nodes with fewer
// keys do not maintain a model and serve lookups with plain binary
// search, exactly like a B+Tree node.
const MinModelKeys = 16

// BoundedSearchMaxErr is the largest per-leaf prediction-error bound
// for which the point probes use the bounded window search instead of
// exponential bracketing. The §4 cost model prices the strategies in
// expected work per probe: the bounded path resolves a miss with e+1
// *independent* branch-free compares in a one-sided window around the
// prediction (the direct-hit compare already fixed the direction), so
// the out-of-order core runs it at full width with no mispredictable
// bracket loop and no serial load chain; exponential costs ~2*log2(err)
// probes, half of them data-dependent branches, but adapts to the
// actual per-key error. Small bounds therefore favor the fixed window,
// large bounds the adaptive bracketing; 16 (a 17-slot window, 1-2 cache
// lines) is the measured crossover on the CI container.
const BoundedSearchMaxErr = 16

// costRetrainSlack is the absolute drift allowance of the §4
// cost-model feedback: a retrain is only advised once the bound has
// grown past both this slack and twice the bound a fresh model
// achieved at the last rebuild (see RetrainAdvised), so the trigger
// measures *drift a retrain can recover*, not intrinsic model error.
const costRetrainSlack = 4 * BoundedSearchMaxErr

// boundedMax is the effective ErrBound ceiling for the bounded-search
// fast path. It is BoundedSearchMaxErr normally and -1 when bounded
// search is disabled, so the probe-time strategy pick stays a single
// integer compare with no extra enabled-flag branch.
var boundedMax = BoundedSearchMaxErr

// SetBoundedSearch toggles the error-bound-driven bounded-search fast
// path (default on). Benchmarks flip it to measure bounded vs
// exponential search on identical trees; it is not synchronized and
// must not be toggled while the index is in use.
func SetBoundedSearch(on bool) {
	if on {
		boundedMax = BoundedSearchMaxErr
	} else {
		boundedMax = -1
	}
}

// Base is the storage core of a data node. It is not safe for concurrent
// use; like the system evaluated in the paper, the index is single-writer.
type Base struct {
	Keys     []float64 // len == capacity; gaps duplicate nearest right key
	Payloads []uint64
	Occ      *bitmapx.Bitmap
	Model    linmodel.Model
	NumKeys  int
	Stats    Stats

	// capF caches float64(len(Keys)) so the hot predict path clamps the
	// model output entirely in float registers: one FMA for the model,
	// two float compares for the clamp, one conversion for the result —
	// no per-lookup int→float conversion of the capacity. Maintained by
	// Init alongside every (re)allocation of Keys.
	capF float64

	// ErrBound is an upper bound on |occupied slot - predicted slot|
	// over every stored key — the per-leaf expected-prediction-error
	// signal of the paper's §4 cost model, maintained incrementally
	// (the "modular materialisation" framing: updated in place on every
	// mutation, recomputed exactly only when a rebuild retrains the
	// model anyway). It is exact after BuildFromSorted and widens
	// monotonically between rebuilds: a gap-claim insert folds in the
	// new key's error, a shift insert re-predicts exactly the slots the
	// shift moved (an O(shift) pass riding on the O(shift) copy), a PMA
	// window redistribution folds in the window's recomputed errors,
	// and deletes leave positions — and so the bound — untouched.
	// Probes use it to pick their search
	// strategy (see Find) and the tree's cost model reads it through
	// ErrorBound/RetrainAdvised. Meaningful only while HasModel.
	ErrBound int

	// rebuildErr is ErrBound as computed by the last BuildFromSorted —
	// the error a fresh model achieves on this node's data.
	// RetrainAdvised compares the current bound against it so that only
	// drift a retrain can actually recover triggers one; a node whose
	// data is inherently hard to fit has a large rebuildErr and is left
	// to exponential search instead of futile O(n) rebuilds.
	rebuildErr int

	// sinceRebuild counts inserts since the last model rebuild;
	// RetrainAdvised uses it to amortize cost-model retrains so a leaf
	// cannot retrain on every insert.
	sinceRebuild int

	// sealed marks the node as frozen by a snapshot (see Seal). It is a
	// plain word accessed with sync/atomic functions rather than an
	// atomic.Uint32 so Base stays trivially copyable (CloneInto and the
	// COW rebuilds assign whole Base values); the flag is only ever
	// written under the index's writer exclusion, the atomics exist so
	// the store in Seal and the load in Sealed are data-race-free when
	// snapshot creation overlaps lock-free readers. The annotation
	// below makes alexvet enforce atomic-only access mechanically.
	//alex:atomic
	sealed uint32

	// HasModel sits last so the bool packs into sealed's word instead
	// of costing a padded slot of its own (fieldalign: 184 -> 176).
	HasModel bool
}

// Init sets up an empty node with the given capacity.
func (b *Base) Init(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	b.Keys = make([]float64, capacity)
	for i := range b.Keys {
		b.Keys[i] = math.Inf(1)
	}
	b.Payloads = make([]uint64, capacity)
	b.Occ = bitmapx.New(capacity)
	b.Model = linmodel.Model{}
	b.HasModel = false
	b.NumKeys = 0
	b.capF = float64(capacity)
	b.ErrBound = 0
	b.rebuildErr = 0
	b.sinceRebuild = 0
}

// Cap returns the slot capacity of the node.
func (b *Base) Cap() int { return len(b.Keys) }

// BaseStats returns the node's work counters.
func (b *Base) BaseStats() *Stats { return &b.Stats }

// Num returns the number of real elements.
func (b *Base) Num() int { return b.NumKeys }

// Density returns NumKeys / capacity.
func (b *Base) Density() float64 {
	if len(b.Keys) == 0 {
		return 0
	}
	return float64(b.NumKeys) / float64(len(b.Keys))
}

// predictFast is the hot-path slot prediction: the model's FMA clamped
// into [0, cap) without leaving float registers until the final
// conversion. Callers must ensure HasModel; the cold-start regime goes
// through predictSlot.
//
// The final integer clamp re-checks against len(Keys) even though a
// consistent node always has capF == len(Keys): optimistic readers
// (see the root package's seqlock protocol) probe nodes that may be
// mid-rebuild, where capF and Keys can be observed torn, and the read
// path must degrade to a wrong-but-in-bounds slot — whose result the
// sequence validation then discards — never to an index panic.
func (b *Base) predictFast(key float64) int {
	p := math.Floor(b.Model.Slope*key + b.Model.Intercept)
	if !(p > 0) { // negative, -0, or NaN
		return 0
	}
	i := len(b.Keys) - 1
	if p < b.capF {
		if j := int(p); j < i {
			i = j
		}
	}
	return i
}

// predictSlot returns the model's predicted slot for key, or a plain
// lower-bound position when the node is in its cold-start (model-less)
// regime.
func (b *Base) predictSlot(key float64) int {
	if !b.HasModel {
		return search.LowerBound(b.Keys, key)
	}
	return b.predictFast(key)
}

// LowerBoundSlot returns the first slot (gap or element) whose key value
// is >= key, locating it by exponential search from the model prediction.
func (b *Base) LowerBoundSlot(key float64) int {
	if !b.HasModel {
		return search.LowerBoundBranchless(b.Keys, key)
	}
	return search.ExponentialBranchless(b.Keys, key, b.predictFast(key))
}

// Find returns the occupied slot holding key, or -1.
//
// The common case pays one model FMA and one key comparison: model-based
// insertion places elements at (or next to) their predicted slots, so
// the prediction usually lands exactly on the key — or on one of the gap
// fills duplicating it, in which case the element is the next occupied
// slot. Only a miss searches, and the leaf's error bound picks the
// strategy (§4 cost model): a bound that fits the bounded window
// resolves the probe with a handful of *independent* branch-free
// compares around the prediction — no bracketing loop, no serial
// dependency chain — while a high-error leaf keeps exponential search,
// whose cost scales with log(error) rather than log(node).
//
// Bounded search is exact here even though ErrBound only covers stored
// keys: for a stored key the occupied slot s satisfies |s - pos| <=
// ErrBound, and the gap fills left of s duplicate its key, so the
// window's lower bound lands on a slot holding the key and the bitmap
// walk below reaches s. For an absent key the window result may not be
// the true lower bound, but its slot can never *equal* the key (fills
// only duplicate stored keys), so the equality check reports the miss
// exactly as the exponential path would. The direct-hit compare already
// established which side of pos the key is on, so the window is
// one-sided: e+1 slots, not 2e+1. (k < key is false for a NaN key, and
// the left window then misses.)
func (b *Base) Find(key float64) int {
	var lo int
	if b.HasModel {
		pos := b.predictFast(key)
		if k := b.Keys[pos]; k != key {
			if e := b.ErrBound; e <= boundedMax {
				if k < key {
					lo = search.LowerBoundLinear(b.Keys, key, pos+1, pos+e+1)
				} else {
					lo = search.LowerBoundLinear(b.Keys, key, pos-e, pos+1)
				}
			} else {
				lo = search.ExponentialBranchless(b.Keys, key, pos)
			}
			if lo >= len(b.Keys) || b.Keys[lo] != key {
				return -1
			}
		} else {
			if b.Occ.Test(pos) {
				return pos // direct hit at the predicted slot
			}
			lo = pos // a gap fill duplicating the key: element is to the right
		}
	} else {
		lo = search.LowerBoundBranchless(b.Keys, key)
		if lo >= len(b.Keys) || b.Keys[lo] != key {
			return -1
		}
	}
	// The unsigned compare folds occ < 0 and occ >= len(Keys) into one
	// branch. The upper bound can only trip for optimistic readers that
	// caught the bitmap and key array mid-swap (a consistent node's
	// bitmap never returns a slot past its own capacity); they must get
	// a miss, not a panic — the sequence validation discards it.
	occ := b.Occ.NextSet(lo)
	if uint(occ) >= uint(len(b.Keys)) || b.Keys[occ] != key {
		return -1
	}
	return occ
}

// Lookup returns the payload stored for key. The payload bound check
// mirrors Find's: torn probes degrade to misses, never panics.
func (b *Base) Lookup(key float64) (uint64, bool) {
	if i := b.Find(key); uint(i) < uint(len(b.Payloads)) {
		return b.Payloads[i], true
	}
	return 0, false
}

// PredictionError returns |predicted slot - actual slot| for an existing
// key (Fig 7). ok is false when the key is absent.
func (b *Base) PredictionError(key float64) (int, bool) {
	occ := b.Find(key)
	if occ < 0 {
		return 0, false
	}
	pred := b.predictSlot(key)
	if pred > occ {
		return pred - occ, true
	}
	return occ - pred, true
}

// ErrorBound returns the node's current prediction-error bound, or -1
// for a model-less (cold start) node. The tree layer reads it for the
// split/expand cost decision and the Stats error histogram.
func (b *Base) ErrorBound() int {
	if !b.HasModel {
		return -1
	}
	return b.ErrBound
}

// RetrainAdvised reports the §4 cost-model feedback signal: the node's
// error bound (expected search work ~log2(2*ErrBound) iterations) has
// drifted well past what a fresh model achieved at the last rebuild,
// and enough inserts accumulated since then that an O(n) retrain is
// amortized. Comparing against the rebuild-time bound — rather than an
// absolute threshold — means a node whose data is inherently hard to
// fit is not rebuilt futilely, while the insert-count hysteresis keeps
// any node from retraining on every insert.
func (b *Base) RetrainAdvised() bool {
	if !b.HasModel || b.ErrBound <= 2*b.rebuildErr+costRetrainSlack {
		return false
	}
	// An O(n) rebuild every >= n/16 inserts is O(16) amortized slots of
	// work per insert — cheaper than the extra log2(e) search iterations
	// every lookup pays on a drifted leaf.
	min := b.NumKeys / 16
	if min < MinModelKeys {
		min = MinModelKeys
	}
	return b.sinceRebuild >= min
}

// noteInsertErr widens the error bound after placing key at slot when
// the model predicted pred. Callers pass slots already clamped into the
// array.
func (b *Base) noteInsertErr(slot, pred int) {
	e := slot - pred
	if e < 0 {
		e = -e
	}
	if e > b.ErrBound {
		b.ErrBound = e
	}
}

// notePlacedErr widens the error bound for an element re-placed at slot
// during a window redistribution; no-op for model-less nodes.
func (b *Base) notePlacedErr(slot int, key float64) {
	if b.HasModel {
		b.noteInsertErr(slot, b.predictFast(key))
	}
}

// Update overwrites the payload of an existing key.
func (b *Base) Update(key float64, payload uint64) bool {
	if i := b.Find(key); i >= 0 {
		b.Payloads[i] = payload
		return true
	}
	return false
}

// LowerBoundOcc returns the first occupied slot whose key is >= key, or
// -1 when no such element exists. Range scans start here.
func (b *Base) LowerBoundOcc(key float64) int {
	lo := b.LowerBoundSlot(key)
	if lo >= len(b.Keys) {
		return -1
	}
	return b.Occ.NextSet(lo)
}

// ScanFrom visits elements with key >= start in ascending key order until
// visit returns false. It reports whether visiting stopped early (visit
// returned false), so multi-node scans know when to stop.
func (b *Base) ScanFrom(start float64, visit func(key float64, payload uint64) bool) bool {
	for i := b.LowerBoundOcc(start); i >= 0; i = b.Occ.NextSet(i + 1) {
		if !visit(b.Keys[i], b.Payloads[i]) {
			return true
		}
	}
	return false
}

// AppendFrom appends up to max elements with key >= start, in ascending
// key order, to the given slices and returns them. It is the
// callback-free sibling of ScanFrom: the tree's zero-allocation ScanNInto
// walks the leaf chain with it, so no per-call visitor closure escapes
// to the heap. Passing slices with spare capacity makes it allocation
// free.
func (b *Base) AppendFrom(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64) {
	i := b.LowerBoundOcc(start)
	for ; i >= 0 && max > 0; i = b.Occ.NextSet(i + 1) {
		keys = append(keys, b.Keys[i])
		payloads = append(payloads, b.Payloads[i])
		max--
	}
	return keys, payloads
}

// NextSlot returns the first occupied slot strictly after slot, or -1.
// Pass -1 to get the first occupied slot. Iterators use it for
// callback-free traversal.
func (b *Base) NextSlot(slot int) int {
	return b.Occ.NextSet(slot + 1)
}

// At returns the key and payload stored in an occupied slot. It panics
// on a gap or out-of-range slot; callers must only pass slots obtained
// from NextSlot or LowerBoundOcc.
func (b *Base) At(slot int) (float64, uint64) {
	if !b.Occ.Test(slot) {
		panic("leafbase: At on a gap slot")
	}
	return b.Keys[slot], b.Payloads[slot]
}

// MinKey returns the smallest stored key.
func (b *Base) MinKey() (float64, bool) {
	i := b.Occ.NextSet(0)
	if i < 0 {
		return 0, false
	}
	return b.Keys[i], true
}

// MaxKey returns the largest stored key.
func (b *Base) MaxKey() (float64, bool) {
	i := b.Occ.PrevSet(len(b.Keys) - 1)
	if i < 0 {
		return 0, false
	}
	return b.Keys[i], true
}

// Collect appends the node's elements in key order to the given slices
// and returns them. Passing nil slices allocates exact-size ones.
func (b *Base) Collect(keys []float64, payloads []uint64) ([]float64, []uint64) {
	if keys == nil {
		keys = make([]float64, 0, b.NumKeys)
	}
	if payloads == nil {
		payloads = make([]uint64, 0, b.NumKeys)
	}
	for i := b.Occ.NextSet(0); i >= 0; i = b.Occ.NextSet(i + 1) {
		keys = append(keys, b.Keys[i])
		payloads = append(payloads, b.Payloads[i])
	}
	return keys, payloads
}

// InsertResult describes the outcome of a placement attempt.
type InsertResult int

const (
	// Inserted means the key was placed.
	Inserted InsertResult = iota
	// Duplicate means the key already existed; its payload was overwritten.
	Duplicate
	// NeedRoom means no slot could be found without violating the
	// caller's constraints (node full, or PMA density bound hit).
	NeedRoom
)

// PlaceModelBased implements the shared insert path of Algorithms 1-3:
// locate the valid insertion range for key by exponential search from the
// model prediction, then
//
//   - overwrite the payload if the key exists (Duplicate);
//   - if the range contains a gap, claim the gap closest to the predicted
//     position and repair gap fills;
//   - otherwise create a gap by shifting toward the closest gap
//     (maxShiftLo/maxShiftHi bound how far the shift may reach; pass
//     0 and Cap() for the gapped array's node-wide shifts).
//
// NeedRoom is returned when the node is full or the shift window contains
// no gap.
func (b *Base) PlaceModelBased(key float64, payload uint64, maxShiftLo, maxShiftHi int) InsertResult {
	cap := len(b.Keys)
	lo := b.LowerBoundSlot(key)
	if lo < cap && b.Keys[lo] == key {
		if occ := b.Occ.NextSet(lo); occ >= 0 && b.Keys[occ] == key {
			b.Payloads[occ] = payload
			return Duplicate
		}
	}
	if b.NumKeys >= cap {
		return NeedRoom
	}
	if lo >= cap {
		// Key is greater than every value including trailing fills;
		// can only happen when there are no trailing gaps (last slot
		// occupied). Fall through to gap-making at the last slot.
		lo = cap // handled below by the shift path with hiGap == -1
	}

	// The valid placement range is [lo, firstOcc-1] where firstOcc is the
	// first occupied slot at or after lo (its key is > key).
	var hi int
	if lo < cap {
		if firstOcc := b.Occ.NextSet(lo); firstOcc < 0 {
			hi = cap - 1
		} else {
			hi = firstOcc - 1
		}
	} else {
		hi = lo - 1
	}

	if lo <= hi {
		// There is at least one gap in range; claim the one nearest the
		// model's prediction so later lookups hit directly (§3.2,
		// "model-based insertion").
		pred := b.predictSlot(key)
		q := pred
		if q < lo {
			q = lo
		} else if q > hi {
			q = hi
		}
		b.fillRange(lo, q, key)
		b.Keys[q] = key
		b.Payloads[q] = payload
		b.Occ.Set(q)
		b.NumKeys++
		b.Stats.Inserts++
		b.sinceRebuild++
		if b.HasModel {
			// Nothing else moved: only the new key's error can widen the
			// bound, by however far the clamp pushed it off its
			// prediction.
			b.noteInsertErr(q, pred)
		}
		return Inserted
	}

	// lo is occupied (or past the end): make a gap by shifting toward the
	// closest gap within the caller's window.
	return b.insertWithShift(key, payload, lo, maxShiftLo, maxShiftHi)
}

// insertWithShift creates a gap at the lower-bound position lo by shifting
// elements toward the nearest gap found within [maxShiftLo, maxShiftHi).
func (b *Base) insertWithShift(key float64, payload uint64, lo, maxShiftLo, maxShiftHi int) InsertResult {
	cap := len(b.Keys)
	if maxShiftLo < 0 {
		maxShiftLo = 0
	}
	if maxShiftHi > cap {
		maxShiftHi = cap
	}
	gapL, gapR := -1, -1
	if lo-1 >= maxShiftLo {
		if g := b.Occ.PrevClear(lo - 1); g >= maxShiftLo {
			gapL = g
		}
	}
	if lo < maxShiftHi {
		if g := b.Occ.NextClear(lo); g >= 0 && g < maxShiftHi {
			gapR = g
		}
	}
	var at, runLo, runHi int
	switch {
	case gapL < 0 && gapR < 0:
		return NeedRoom
	case gapR >= 0 && (gapL < 0 || gapR-lo <= lo-gapL):
		// Shift [lo, gapR-1] right by one; insert at lo.
		copy(b.Keys[lo+1:gapR+1], b.Keys[lo:gapR])
		copy(b.Payloads[lo+1:gapR+1], b.Payloads[lo:gapR])
		b.Occ.Set(gapR)
		b.Keys[lo] = key
		b.Payloads[lo] = payload
		at, runLo, runHi = lo, lo+1, gapR
		b.Stats.Shifts += uint64(gapR - lo)
	default:
		// Shift [gapL+1, lo-1] left by one; insert at lo-1.
		copy(b.Keys[gapL:lo-1], b.Keys[gapL+1:lo])
		copy(b.Payloads[gapL:lo-1], b.Payloads[gapL+1:lo])
		b.Occ.Set(gapL)
		b.Keys[lo-1] = key
		b.Payloads[lo-1] = payload
		at, runLo, runHi = lo-1, gapL, lo-2
		b.Stats.Shifts += uint64(lo - 1 - gapL)
	}
	b.NumKeys++
	b.Stats.Inserts++
	b.sinceRebuild++
	if b.HasModel {
		// The new key's error, plus exact re-predictions of the shifted
		// run: same O(shift) as the copy above, and far tighter than the
		// sound-but-useless alternative of bumping the bound by one per
		// shifting insert, which would disqualify every leaf from
		// bounded search within a few thousand inserts of a rebuild.
		// Elements outside the run did not move, so the old bound still
		// covers them.
		b.noteInsertErr(at, b.predictFast(key))
		b.noteRunErr(runLo, runHi)
	}
	return Inserted
}

// noteRunErr folds the exact prediction errors of the occupied slots in
// [lo, hi] into the bound; callers pass the slot range a shift just
// re-placed.
func (b *Base) noteRunErr(lo, hi int) {
	for i := b.Occ.NextSet(lo); i >= 0 && i <= hi; i = b.Occ.NextSet(i + 1) {
		b.noteInsertErr(i, b.predictFast(b.Keys[i]))
	}
}

// fillRange rewrites the gap fills in [from, to) to value, maintaining the
// "gap duplicates closest right key" invariant after a placement at 'to'.
func (b *Base) fillRange(from, to int, value float64) {
	for i := from; i < to; i++ {
		b.Keys[i] = value
	}
}

// Delete removes key, repairs the gap fills of the run ending at its
// slot, and returns whether the key was present.
func (b *Base) Delete(key float64) bool {
	occ := b.Find(key)
	if occ < 0 {
		return false
	}
	b.Occ.Clear(occ)
	b.NumKeys--
	b.Stats.Deletes++
	// The slot and any gaps immediately to its left must now duplicate
	// the next occupied key to the right (or +Inf at the tail).
	fill := math.Inf(1)
	if n := b.Occ.NextSet(occ + 1); n >= 0 {
		fill = b.Keys[n]
	}
	for i := occ; i >= 0 && !b.Occ.Test(i); i-- {
		b.Keys[i] = fill
	}
	return true
}

// RebuildModelBased rebuilds the node into a fresh array of newCapacity
// slots: it retrains the linear model on the current elements, scales it
// to the new capacity (Alg 3), and re-inserts every element at its
// predicted position in sorted order, falling forward to the next free
// slot on collision. Nodes below the cold-start threshold are spread
// uniformly instead and keep no model.
func (b *Base) RebuildModelBased(newCapacity int) {
	keys, payloads := b.Collect(nil, nil)
	b.BuildFromSorted(keys, payloads, newCapacity)
}

// BuildFromSorted initializes the node from sorted unique keys with the
// given capacity, using model-based placement. It is used at bulk load,
// after expansions, and when splitting distributes keys to new leaves.
func (b *Base) BuildFromSorted(keys []float64, payloads []uint64, capacity int) {
	n := len(keys)
	if capacity < n {
		capacity = n
	}
	if capacity < 1 {
		capacity = 1
	}
	b.Init(capacity)
	if n == 0 {
		return
	}
	b.NumKeys = n
	b.Stats.Retrains++

	if n >= MinModelKeys {
		b.Model = linmodel.Train(keys).Scale(float64(capacity) / float64(n))
		b.HasModel = true
	} else {
		b.Model = linmodel.Model{}
		b.HasModel = false
	}

	last := -1
	for i := 0; i < n; i++ {
		var pos, pred int
		if b.HasModel {
			pos = b.Model.PredictClamped(keys[i], capacity)
			pred = pos
		} else {
			// Cold start: spread uniformly like a PMA rebalance.
			pos = i * capacity / n
		}
		if pos <= last {
			pos = last + 1
		}
		// Never let the remaining elements run out of slots.
		if maxPos := capacity - (n - i); pos > maxPos {
			pos = maxPos
		}
		b.Keys[pos] = keys[i]
		b.Payloads[pos] = payloads[i]
		b.Occ.Set(pos)
		if b.HasModel {
			// The rebuild is where the bound is exact, for free: the
			// prediction and the final slot are both in hand, so the max
			// over the placement loop is the true maximum error.
			b.noteInsertErr(pos, pred)
		}
		last = pos
	}
	b.repairAllFills()
	b.rebuildErr = b.ErrBound
}

// RedistributeUniform places the node's elements uniformly spaced across
// [winLo, winHi) — the PMA window rebalance. Elements outside the window
// are untouched. extraKey/extraPayload, when insertExtra is true, are
// merged into the redistribution (this is how a PMA insert that triggers
// a rebalance places its new element). Returns the number of element
// moves performed.
func (b *Base) RedistributeUniform(winLo, winHi int, insertExtra bool, extraKey float64, extraPayload uint64) int {
	keys := make([]float64, 0, winHi-winLo+1)
	payloads := make([]uint64, 0, winHi-winLo+1)
	for i := b.Occ.NextSet(winLo); i >= 0 && i < winHi; i = b.Occ.NextSet(i + 1) {
		keys = append(keys, b.Keys[i])
		payloads = append(payloads, b.Payloads[i])
		b.Occ.Clear(i)
	}
	if insertExtra {
		at := search.LowerBound(keys, extraKey)
		keys = append(keys, 0)
		payloads = append(payloads, 0)
		copy(keys[at+1:], keys[at:])
		copy(payloads[at+1:], payloads[at:])
		keys[at] = extraKey
		payloads[at] = extraPayload
		b.NumKeys++
		b.Stats.Inserts++
		b.sinceRebuild++
	}
	return b.finishRedistribute(winLo, winHi, keys, payloads)
}

// RedistributeWeighted is RedistributeUniform with per-segment gap
// weighting — the primitive behind the *adaptive* PMA of Bender & Hu
// that §7 proposes against sequential-insert pathologies. The window
// [winLo, winHi) is divided into segments of segSize slots; segment s
// receives a share of the window's gaps proportional to weights[s]
// (weights index is relative to the window). Hot segments (recent
// insertion targets) should get larger weights so subsequent inserts
// find local gaps. Elements keep their global sort order; within a
// segment they are spread uniformly. Returns the number of moves.
func (b *Base) RedistributeWeighted(winLo, winHi, segSize int, weights []float64, insertExtra bool, extraKey float64, extraPayload uint64) int {
	keys := make([]float64, 0, winHi-winLo+1)
	payloads := make([]uint64, 0, winHi-winLo+1)
	for i := b.Occ.NextSet(winLo); i >= 0 && i < winHi; i = b.Occ.NextSet(i + 1) {
		keys = append(keys, b.Keys[i])
		payloads = append(payloads, b.Payloads[i])
		b.Occ.Clear(i)
	}
	if insertExtra {
		at := search.LowerBound(keys, extraKey)
		keys = append(keys, 0)
		payloads = append(payloads, 0)
		copy(keys[at+1:], keys[at:])
		copy(payloads[at+1:], payloads[at:])
		keys[at] = extraKey
		payloads[at] = extraPayload
		b.NumKeys++
		b.Stats.Inserts++
		b.sinceRebuild++
	}
	m := len(keys)
	w := winHi - winLo
	numSegs := (w + segSize - 1) / segSize
	if numSegs < 1 || m > w {
		// Degenerate; fall back to uniform spacing.
		return b.finishRedistribute(winLo, winHi, keys, payloads)
	}
	// Gap budget per segment ∝ weight; element count = segSize - gaps.
	totalGaps := w - m
	var sumW float64
	for s := 0; s < numSegs; s++ {
		if s < len(weights) && weights[s] > 0 {
			sumW += weights[s]
		} else {
			sumW += 1
		}
	}
	perSeg := make([]int, numSegs)
	assigned := 0
	for s := 0; s < numSegs; s++ {
		wt := 1.0
		if s < len(weights) && weights[s] > 0 {
			wt = weights[s]
		}
		segLen := segSize
		if winLo+(s+1)*segSize > winHi {
			segLen = winHi - winLo - s*segSize
		}
		gaps := int(float64(totalGaps) * wt / sumW)
		if gaps > segLen {
			gaps = segLen
		}
		perSeg[s] = segLen - gaps
		assigned += perSeg[s]
	}
	// Fix rounding so exactly m elements are placed: trim or grow from
	// the left, respecting segment capacities.
	for s := 0; assigned > m && s < numSegs; s++ {
		take := assigned - m
		if take > perSeg[s] {
			take = perSeg[s]
		}
		perSeg[s] -= take
		assigned -= take
	}
	for s := 0; assigned < m && s < numSegs; s++ {
		segLen := segSize
		if winLo+(s+1)*segSize > winHi {
			segLen = winHi - winLo - s*segSize
		}
		room := segLen - perSeg[s]
		add := m - assigned
		if add > room {
			add = room
		}
		perSeg[s] += add
		assigned += add
	}
	if assigned != m {
		return b.finishRedistribute(winLo, winHi, keys, payloads)
	}
	// Place each segment's contiguous run uniformly within the segment.
	idx := 0
	for s := 0; s < numSegs; s++ {
		segLo := winLo + s*segSize
		segLen := segSize
		if segLo+segLen > winHi {
			segLen = winHi - segLo
		}
		cnt := perSeg[s]
		for j := 0; j < cnt; j++ {
			pos := segLo + j*segLen/cnt
			b.Keys[pos] = keys[idx]
			b.Payloads[pos] = payloads[idx]
			b.Occ.Set(pos)
			b.notePlacedErr(pos, keys[idx])
			idx++
		}
	}
	b.repairFillsWindow(winLo, winHi)
	b.Stats.Shifts += uint64(m)
	return m
}

// finishRedistribute places already-collected elements uniformly — the
// shared tail of the uniform path and the weighted path's fallback.
// Re-placed elements fold their fresh prediction errors into the
// bound; elements outside the window did not move, so the old bound
// still covers them and the max with the window's errors stays a true
// upper bound.
func (b *Base) finishRedistribute(winLo, winHi int, keys []float64, payloads []uint64) int {
	m := len(keys)
	w := winHi - winLo
	for i := 0; i < m; i++ {
		pos := winLo + i*w/m
		b.Keys[pos] = keys[i]
		b.Payloads[pos] = payloads[i]
		b.Occ.Set(pos)
		b.notePlacedErr(pos, keys[i])
	}
	b.repairFillsWindow(winLo, winHi)
	b.Stats.Shifts += uint64(m)
	return m
}

// repairAllFills rewrites every gap to duplicate its closest right key.
func (b *Base) repairAllFills() {
	b.repairFillsWindow(0, len(b.Keys))
}

// repairFillsWindow rewrites gap fills in [winLo, winHi). The carry value
// for gaps at the window's right edge is taken from the first occupied
// slot at or after winHi.
func (b *Base) repairFillsWindow(winLo, winHi int) {
	fill := math.Inf(1)
	if n := b.Occ.NextSet(winHi); n >= 0 {
		fill = b.Keys[n]
	}
	for i := winHi - 1; i >= winLo; i-- {
		if b.Occ.Test(i) {
			fill = b.Keys[i]
		} else {
			b.Keys[i] = fill
		}
	}
}

// DataSizeBytes accounts the node's data storage per §5.1: the allocated
// key and payload arrays including gaps, plus the bitmap.
func (b *Base) DataSizeBytes(payloadBytes int) int {
	return len(b.Keys)*8 + len(b.Payloads)*payloadBytes + b.Occ.SizeBytes()
}

// ErrInvariant is wrapped by all CheckInvariants failures.
var ErrInvariant = errors.New("leafbase: invariant violated")

// CheckInvariants verifies the structural invariants of the node:
// the bitmap count matches NumKeys, the full key array (fills included)
// is non-decreasing, occupied keys are strictly increasing and finite,
// every gap duplicates its closest right key (or +Inf at the tail), and
// — on modeled nodes — ErrBound is a true upper bound on every stored
// key's prediction error (verified by exhaustive re-prediction, so any
// test that checks invariants after a mutation sequence also audits the
// incrementally-maintained bound).
func (b *Base) CheckInvariants() error {
	if b.Occ.Count() != b.NumKeys {
		return fmt.Errorf("%w: bitmap count %d != NumKeys %d", ErrInvariant, b.Occ.Count(), b.NumKeys)
	}
	if b.Occ.Len() != len(b.Keys) || len(b.Keys) != len(b.Payloads) {
		return fmt.Errorf("%w: capacity mismatch keys=%d payloads=%d bitmap=%d",
			ErrInvariant, len(b.Keys), len(b.Payloads), b.Occ.Len())
	}
	prev := math.Inf(-1)
	prevOcc := math.Inf(-1)
	for i, k := range b.Keys {
		if k < prev {
			return fmt.Errorf("%w: keys[%d]=%v < keys[%d]=%v", ErrInvariant, i, k, i-1, prev)
		}
		prev = k
		if b.Occ.Test(i) {
			if math.IsInf(k, 0) || math.IsNaN(k) {
				return fmt.Errorf("%w: occupied slot %d holds non-finite key %v", ErrInvariant, i, k)
			}
			if k <= prevOcc {
				return fmt.Errorf("%w: duplicate/unordered occupied key %v at %d", ErrInvariant, k, i)
			}
			prevOcc = k
			if b.HasModel {
				pred := b.predictFast(k)
				if e := i - pred; e > b.ErrBound || -e > b.ErrBound {
					return fmt.Errorf("%w: key %v at slot %d predicted at %d: error %d exceeds ErrBound %d",
						ErrInvariant, k, i, pred, e, b.ErrBound)
				}
			}
		} else {
			want := math.Inf(1)
			if n := b.Occ.NextSet(i); n >= 0 {
				want = b.Keys[n]
			}
			if k != want {
				return fmt.Errorf("%w: gap fill at %d is %v, want %v", ErrInvariant, i, k, want)
			}
		}
	}
	return nil
}
