package analysis

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gapped"
)

func randomSortedKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[float64]bool)
	keys := make([]float64, 0, n)
	for len(keys) < n {
		k := rng.Float64() * 1000
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Float64s(keys)
	return keys
}

func TestMinDelta(t *testing.T) {
	if d := MinDelta([]float64{1, 3, 4, 10}); d != 1 {
		t.Fatalf("MinDelta = %v", d)
	}
	if d := MinDelta([]float64{5}); !math.IsInf(d, 1) {
		t.Fatalf("single-key MinDelta = %v", d)
	}
}

func TestTheorem1UniformKeys(t *testing.T) {
	// Perfectly uniform keys: a = 1/step, min δ = step, so the Theorem 1
	// threshold is exactly 1 — no extra space needed for all direct hits.
	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i) * 7
	}
	c := DirectHitExpansion(keys)
	if c < 0.99 || c > 1.01 {
		t.Fatalf("uniform threshold = %v, want ~1", c)
	}
	if hits := SimulateDirectHits(keys, c*1.001); hits != len(keys) {
		t.Fatalf("at threshold: %d/%d direct hits", hits, len(keys))
	}
}

func TestTheorem1GuaranteesAllHits(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		keys := randomSortedKeys(200, seed)
		c := DirectHitExpansion(keys)
		if math.IsInf(c, 1) {
			continue
		}
		// Slightly above threshold to absorb float rounding at the edge.
		if hits := SimulateDirectHits(keys, c*(1+1e-9)); hits != len(keys) {
			t.Fatalf("seed %d: c=%v gave %d/%d hits", seed, c, hits, len(keys))
		}
	}
}

func TestTheorem2UpperBoundHolds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		keys := randomSortedKeys(300, seed)
		for _, c := range []float64{0.5, 1, 1.5, 2, 4, 8, 32} {
			hits := SimulateDirectHits(keys, c)
			ub := UpperBoundDirectHits(keys, c)
			if hits > ub {
				t.Fatalf("seed %d c=%v: hits %d > upper bound %d", seed, c, hits, ub)
			}
		}
	}
}

func TestTheorem3LowerBoundHolds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		keys := randomSortedKeys(300, seed)
		for _, c := range []float64{0.5, 1, 1.5, 2, 4, 8, 32} {
			hits := SimulateDirectHits(keys, c)
			lb := LowerBoundDirectHits(keys, c)
			if hits < lb {
				t.Fatalf("seed %d c=%v: hits %d < lower bound %d", seed, c, hits, lb)
			}
		}
	}
}

func TestBoundsCoincideAboveThreshold(t *testing.T) {
	// §4: "When Theorem 1's condition is true, the exact and the
	// approximate lower bound, and the exact upper bound all become
	// equal" (= n).
	keys := randomSortedKeys(150, 99)
	c := DirectHitExpansion(keys) * (1 + 1e-9)
	if math.IsInf(c, 1) {
		t.Skip("degenerate threshold")
	}
	n := len(keys)
	if ub := UpperBoundDirectHits(keys, c); ub != n {
		t.Fatalf("upper bound %d != n %d above threshold", ub, n)
	}
	if lb := LowerBoundDirectHits(keys, c); lb != n {
		t.Fatalf("lower bound %d != n %d above threshold", lb, n)
	}
	if al := ApproxLowerBoundDirectHits(keys, c); al != n {
		t.Fatalf("approx lower bound %d != n %d above threshold", al, n)
	}
}

func TestDirectHitsMonotoneInC(t *testing.T) {
	// More space can only help: the positive correlation §4 derives.
	keys := randomSortedKeys(500, 7)
	prev := -1
	for _, c := range []float64{0.25, 0.5, 1, 2, 4, 8, 16, 64} {
		hits := SimulateDirectHits(keys, c)
		if hits < prev {
			t.Fatalf("hits decreased from %d to %d at c=%v", prev, hits, c)
		}
		prev = hits
	}
	if f := DirectHitFraction(keys, 1e6); f != 1 {
		t.Fatalf("fraction at huge c = %v", f)
	}
}

func TestC1MatchesKraskaRegime(t *testing.T) {
	// c=1 is the original Learned Index's dense array (§4: "this upper
	// bound also applies to the previously proposed RMI where c = 1").
	// On clustered data, the hit fraction must be visibly below 1.
	rng := rand.New(rand.NewSource(8))
	keys := make([]float64, 0, 500)
	seen := make(map[float64]bool)
	for len(keys) < 500 {
		k := math.Floor(math.Exp(rng.NormFloat64())*1000) / 10
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Float64s(keys)
	if f := DirectHitFraction(keys, 1); f > 0.9 {
		t.Fatalf("dense array on skewed keys has %.2f direct-hit fraction; expected collisions", f)
	}
}

func TestDegenerateInputs(t *testing.T) {
	if SimulateDirectHits(nil, 2) != 0 {
		t.Fatal("empty")
	}
	if SimulateDirectHits([]float64{5}, 2) != 1 {
		t.Fatal("single key is always a direct hit")
	}
	if LowerBoundDirectHits(nil, 2) != 0 || LowerBoundDirectHits([]float64{1}, 2) != 1 {
		t.Fatal("lower bound degenerate")
	}
	if UpperBoundDirectHits([]float64{1, 2}, 2) != 2 {
		t.Fatal("upper bound n<=2")
	}
}

// Property: for arbitrary key sets and expansion factors the sandwich
// lower <= simulated <= upper always holds.
func TestQuickTheoremSandwich(t *testing.T) {
	f := func(raw []uint32, cRaw uint8) bool {
		seen := make(map[float64]bool)
		keys := make([]float64, 0, len(raw))
		for _, v := range raw {
			k := float64(v % 100000)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		sort.Float64s(keys)
		c := 0.25 + float64(cRaw)/16
		hits := SimulateDirectHits(keys, c)
		return hits >= LowerBoundDirectHits(keys, c) && hits <= UpperBoundDirectHits(keys, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// The theory must describe the real gapped array too: bulk loading at
// low density (high c) should put most keys at their predicted slots.
func TestTheoryPredictsGappedArrayBehaviour(t *testing.T) {
	keys := randomSortedKeys(5000, 13)
	payloads := make([]uint64, len(keys))
	// Density d=0.5 => initial density d²=0.25 => c=4.
	a := gapped.NewFromSorted(keys, payloads, gapped.Config{Density: 0.5})
	zero := 0
	for _, k := range keys {
		if e, ok := a.PredictionError(k); ok && e == 0 {
			zero++
		}
	}
	simulated := DirectHitFraction(keys, 4)
	actual := float64(zero) / float64(len(keys))
	// The real node clamps at array edges, so allow slack; the orders
	// must agree.
	if actual < simulated-0.25 {
		t.Fatalf("gapped array direct-hit fraction %.2f far below theory %.2f", actual, simulated)
	}
}
