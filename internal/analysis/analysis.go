// Package analysis implements §4 of the paper, "Analysis of Model-Based
// Inserts": the relationship between the expansion factor c (allocated
// slots per key) and the number of *direct hits* — keys stored exactly
// at the slot their model predicts, which cost zero comparisons to find.
//
// With keys x₁ < x₂ < … < xₙ, the node's linear model before expansion
// is y = a·x + b (the least-squares fit of keys to ranks), and after
// allocating c·n slots the scaled model is y = c(a·x + b). Define
// δᵢ = xᵢ₊₁ - xᵢ and Δᵢ = xᵢ₊₂ - xᵢ. The paper proves:
//
//   - Theorem 1: c ≥ 1/(a·min δᵢ) ⟹ every key lands at its predicted
//     slot (n direct hits).
//   - Theorem 2: direct hits ≤ 2 + |{i : Δᵢ > 1/(c·a)}|.
//   - Theorem 3: direct hits ≥ l + 1, where l is the longest prefix
//     with δᵢ ≥ 1/(c·a); and ≈ 1 + |{i : δᵢ ≥ 1/(c·a)}| if collision
//     chains are ignored.
//
// SimulateDirectHits reproduces the placement process itself (sorted
// model-based insertion with fall-forward on collision, the
// ModelBasedInsert of Algorithm 3), so the theorems can be checked
// against ground truth — the package's tests do exactly that.
package analysis

import (
	"math"

	"repro/internal/linmodel"
)

// BaseModel returns the c=1 linear model of §4: the least-squares fit of
// the sorted keys to their ranks. The slope is the "a" in the theorems.
func BaseModel(keys []float64) linmodel.Model {
	return linmodel.Train(keys)
}

// MinDelta returns min over i of keys[i+1]-keys[i]. It returns +Inf for
// fewer than two keys.
func MinDelta(keys []float64) float64 {
	min := math.Inf(1)
	for i := 0; i+1 < len(keys); i++ {
		if d := keys[i+1] - keys[i]; d < min {
			min = d
		}
	}
	return min
}

// DirectHitExpansion returns the Theorem 1 threshold 1/(a·min δᵢ): any
// expansion factor at or above it guarantees every key is a direct hit.
// It returns +Inf when the model slope is non-positive or keys collide.
func DirectHitExpansion(keys []float64) float64 {
	a := BaseModel(keys).Slope
	d := MinDelta(keys)
	if a <= 0 || d <= 0 || math.IsInf(d, 1) {
		return math.Inf(1)
	}
	return 1 / (a * d)
}

// UpperBoundDirectHits returns the Theorem 2 bound
// 2 + |{1 ≤ i ≤ n-2 : Δᵢ > 1/(c·a)}| (capped at n).
func UpperBoundDirectHits(keys []float64, c float64) int {
	n := len(keys)
	if n <= 2 {
		return n
	}
	a := BaseModel(keys).Slope
	if a <= 0 || c <= 0 {
		return n
	}
	threshold := 1 / (c * a)
	count := 2
	for i := 0; i+2 < n; i++ {
		if keys[i+2]-keys[i] > threshold {
			count++
		}
	}
	if count > n {
		count = n
	}
	return count
}

// LowerBoundDirectHits returns the Theorem 3 bound l+1, where l is the
// number of consecutive δᵢ from the beginning with δᵢ ≥ 1/(c·a).
func LowerBoundDirectHits(keys []float64, c float64) int {
	n := len(keys)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return 1
	}
	a := BaseModel(keys).Slope
	if a <= 0 || c <= 0 {
		return 1
	}
	threshold := 1 / (c * a)
	l := 0
	for i := 0; i+1 < n; i++ {
		if keys[i+1]-keys[i] >= threshold {
			l++
		} else {
			break
		}
	}
	return l + 1
}

// ApproxLowerBoundDirectHits returns the collision-chain-ignoring
// approximation 1 + |{1 ≤ i ≤ n-1 : δᵢ ≥ 1/(c·a)}| discussed after
// Theorem 3. It is not a guaranteed bound.
func ApproxLowerBoundDirectHits(keys []float64, c float64) int {
	n := len(keys)
	if n <= 1 {
		return n
	}
	a := BaseModel(keys).Slope
	if a <= 0 || c <= 0 {
		return 1
	}
	threshold := 1 / (c * a)
	count := 1
	for i := 0; i+1 < n; i++ {
		if keys[i+1]-keys[i] >= threshold {
			count++
		}
	}
	return count
}

// SimulateDirectHits performs the §4 placement process exactly: keys are
// inserted in sorted order at floor(c·(a·x+b)) when that slot is still
// free and to the right of every earlier placement, otherwise at the
// first free slot to the right (a collision, not a direct hit). It
// returns the number of direct hits. The simulated array is unbounded
// on the right, matching the theorems' idealization.
func SimulateDirectHits(keys []float64, c float64) int {
	n := len(keys)
	if n == 0 {
		return 0
	}
	model := BaseModel(keys).Scale(c)
	hits := 0
	// The theorems idealize an array unbounded on both sides (the first
	// key's prediction can round below zero and still count as a direct
	// hit), so the occupancy frontier starts at -infinity.
	last := math.MinInt32
	for _, x := range keys {
		pos := int(math.Floor(model.Predict(x)))
		if pos > last {
			hits++
			last = pos
		} else {
			last++
		}
	}
	return hits
}

// DirectHitFraction is SimulateDirectHits normalized by n — the quantity
// one would plot against c to visualize the §4 space-time trade-off.
func DirectHitFraction(keys []float64, c float64) float64 {
	if len(keys) == 0 {
		return 0
	}
	return float64(SimulateDirectHits(keys, c)) / float64(len(keys))
}
