// Package btree implements the in-memory B+Tree baseline of the paper's
// evaluation (§5.1), standing in for the STX B+Tree: values live only in
// leaves, leaves are chained for range scans, and the page size — the
// only parameter the paper grid-searches — is configurable in bytes.
//
// The tree supports bulk load, point lookup, insert with node splits,
// delete with borrow/merge rebalancing, and range scans, plus the size
// accounting of §5.1 (index size = inner nodes, data size = leaf nodes).
package btree

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/search"
)

// Config parameterizes the tree.
type Config struct {
	// PageSizeBytes is the node size in bytes; a leaf stores
	// PageSizeBytes/16 key-value pairs, an inner node the same number of
	// separators+children. Default 256 (16 entries), the STX default.
	PageSizeBytes int
	// FillFactor is the leaf occupancy used by BulkLoad, in (0, 1].
	// Default 1.0 (completely full, like STX bulk load).
	FillFactor float64
	// PayloadBytes is the payload size used in data-size accounting.
	// Default 8.
	PayloadBytes int
}

func (c Config) withDefaults() Config {
	if c.PageSizeBytes < 64 {
		c.PageSizeBytes = 256
	}
	if c.FillFactor <= 0 || c.FillFactor > 1 {
		c.FillFactor = 1.0
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 8
	}
	return c
}

func (c Config) leafCap() int {
	n := c.PageSizeBytes / 16
	if n < 4 {
		n = 4
	}
	return n
}

func (c Config) innerCap() int {
	n := c.PageSizeBytes / 16
	if n < 4 {
		n = 4
	}
	return n
}

type leaf struct {
	keys       []float64
	vals       []uint64
	next, prev *leaf
}

// inner holds len(children) == len(keys)+1; child i covers keys in
// [keys[i-1], keys[i]).
type inner struct {
	keys     []float64
	children []interface{}
}

// Tree is an in-memory B+Tree from float64 keys to uint64 payloads.
type Tree struct {
	cfg   Config
	root  interface{}
	head  *leaf
	count int
	// splits and merges are exposed through Stats for experiments.
	splits, merges, borrows uint64
}

// Stats reports structural counters.
type Stats struct {
	Splits, Merges, Borrows uint64
	NumLeaves, NumInner     int
	Height                  int
}

// New returns an empty tree.
func New(cfg Config) *Tree {
	cfg = cfg.withDefaults()
	l := &leaf{keys: make([]float64, 0, cfg.leafCap()), vals: make([]uint64, 0, cfg.leafCap())}
	return &Tree{cfg: cfg, root: l, head: l}
}

// BulkLoad builds a tree from sorted unique keys, packing leaves to the
// configured fill factor and building inner levels bottom-up.
func BulkLoad(keys []float64, payloads []uint64, cfg Config) *Tree {
	cfg = cfg.withDefaults()
	if payloads == nil {
		payloads = make([]uint64, len(keys))
	}
	t := &Tree{cfg: cfg}
	if len(keys) == 0 {
		l := &leaf{keys: make([]float64, 0, cfg.leafCap()), vals: make([]uint64, 0, cfg.leafCap())}
		t.root = l
		t.head = l
		return t
	}
	per := int(float64(cfg.leafCap()) * cfg.FillFactor)
	if per < 1 {
		per = 1
	}
	// Build the leaf level.
	var leaves []interface{}
	var seps []float64 // first key of each leaf except the first
	var prev *leaf
	for i := 0; i < len(keys); i += per {
		j := i + per
		if j > len(keys) {
			j = len(keys)
		}
		l := &leaf{keys: make([]float64, j-i, cfg.leafCap()), vals: make([]uint64, j-i, cfg.leafCap())}
		copy(l.keys, keys[i:j])
		copy(l.vals, payloads[i:j])
		l.prev = prev
		if prev != nil {
			prev.next = l
		} else {
			t.head = l
		}
		prev = l
		leaves = append(leaves, l)
		if i > 0 {
			seps = append(seps, keys[i])
		}
	}
	t.count = len(keys)
	// Build inner levels until a single root remains.
	level := leaves
	levelSeps := seps
	for len(level) > 1 {
		fan := cfg.innerCap()
		var nextLevel []interface{}
		var nextSeps []float64
		for i := 0; i < len(level); {
			j := i + fan
			if j > len(level) {
				j = len(level)
			}
			// Avoid a trailing single-child inner node.
			if len(level)-j == 1 {
				j--
				if j <= i {
					j = i + 1
				}
			}
			n := &inner{
				keys:     append([]float64(nil), levelSeps[i:j-1]...),
				children: append([]interface{}(nil), level[i:j]...),
			}
			nextLevel = append(nextLevel, n)
			if i > 0 {
				nextSeps = append(nextSeps, levelSeps[i-1])
			}
			i = j
		}
		level = nextLevel
		levelSeps = nextSeps
	}
	t.root = level[0]
	return t
}

// routeIdx returns the child index for key within an inner node.
func routeIdx(n *inner, key float64) int {
	return search.UpperBound(n.keys, key)
}

// findLeaf descends to the leaf responsible for key, recording the path.
func (t *Tree) findLeaf(key float64, path *[]pathEntry) *leaf {
	cur := t.root
	for {
		switch n := cur.(type) {
		case *inner:
			i := routeIdx(n, key)
			if path != nil {
				*path = append(*path, pathEntry{n, i})
			}
			cur = n.children[i]
		case *leaf:
			return n
		default:
			panic("btree: corrupt node")
		}
	}
}

type pathEntry struct {
	node *inner
	slot int
}

// Get returns the payload stored for key.
func (t *Tree) Get(key float64) (uint64, bool) {
	l := t.findLeaf(key, nil)
	i := search.LowerBound(l.keys, key)
	if i < len(l.keys) && l.keys[i] == key {
		return l.vals[i], true
	}
	return 0, false
}

// Contains reports whether key is present.
func (t *Tree) Contains(key float64) bool {
	_, ok := t.Get(key)
	return ok
}

// Insert adds key with payload, splitting nodes as needed. Inserting an
// existing key overwrites the payload and returns false.
func (t *Tree) Insert(key float64, payload uint64) bool {
	if math.IsNaN(key) || math.IsInf(key, 0) {
		panic("btree: key must be finite")
	}
	var path []pathEntry
	l := t.findLeaf(key, &path)
	i := search.LowerBound(l.keys, key)
	if i < len(l.keys) && l.keys[i] == key {
		l.vals[i] = payload
		return false
	}
	l.keys = append(l.keys, 0)
	l.vals = append(l.vals, 0)
	copy(l.keys[i+1:], l.keys[i:])
	copy(l.vals[i+1:], l.vals[i:])
	l.keys[i] = key
	l.vals[i] = payload
	t.count++
	if len(l.keys) > t.cfg.leafCap() {
		t.splitLeaf(l, path)
	}
	return true
}

// splitLeaf splits an overfull leaf and propagates up the path.
func (t *Tree) splitLeaf(l *leaf, path []pathEntry) {
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append(make([]float64, 0, t.cfg.leafCap()), l.keys[mid:]...),
		vals: append(make([]uint64, 0, t.cfg.leafCap()), l.vals[mid:]...),
		next: l.next,
		prev: l,
	}
	l.keys = l.keys[:mid]
	l.vals = l.vals[:mid]
	if right.next != nil {
		right.next.prev = right
	}
	l.next = right
	t.splits++
	t.insertInParent(l, right.keys[0], right, path)
}

// insertInParent links newRight (with separator sep) next to left,
// splitting inner nodes as needed.
func (t *Tree) insertInParent(left interface{}, sep float64, newRight interface{}, path []pathEntry) {
	if len(path) == 0 {
		t.root = &inner{keys: []float64{sep}, children: []interface{}{left, newRight}}
		return
	}
	p := path[len(path)-1]
	n, i := p.node, p.slot
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = newRight
	if len(n.children) > t.cfg.innerCap() {
		mid := len(n.keys) / 2
		upSep := n.keys[mid]
		right := &inner{
			keys:     append([]float64(nil), n.keys[mid+1:]...),
			children: append([]interface{}(nil), n.children[mid+1:]...),
		}
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
		t.splits++
		t.insertInParent(n, upSep, right, path[:len(path)-1])
	}
}

// Delete removes key, rebalancing with borrow/merge. It reports whether
// the key was present.
func (t *Tree) Delete(key float64) bool {
	var path []pathEntry
	l := t.findLeaf(key, &path)
	i := search.LowerBound(l.keys, key)
	if i >= len(l.keys) || l.keys[i] != key {
		return false
	}
	copy(l.keys[i:], l.keys[i+1:])
	copy(l.vals[i:], l.vals[i+1:])
	l.keys = l.keys[:len(l.keys)-1]
	l.vals = l.vals[:len(l.vals)-1]
	t.count--
	t.rebalanceLeaf(l, path)
	return true
}

func (t *Tree) rebalanceLeaf(l *leaf, path []pathEntry) {
	minFill := t.cfg.leafCap() / 2
	if len(l.keys) >= minFill || len(path) == 0 {
		return
	}
	p := path[len(path)-1]
	parent, slot := p.node, p.slot
	// Try borrowing from siblings under the same parent.
	if slot > 0 {
		left := parent.children[slot-1].(*leaf)
		if len(left.keys) > minFill {
			k := left.keys[len(left.keys)-1]
			v := left.vals[len(left.vals)-1]
			left.keys = left.keys[:len(left.keys)-1]
			left.vals = left.vals[:len(left.vals)-1]
			l.keys = append([]float64{k}, l.keys...)
			l.vals = append([]uint64{v}, l.vals...)
			parent.keys[slot-1] = k
			t.borrows++
			return
		}
	}
	if slot < len(parent.children)-1 {
		right := parent.children[slot+1].(*leaf)
		if len(right.keys) > minFill {
			k := right.keys[0]
			v := right.vals[0]
			copy(right.keys, right.keys[1:])
			copy(right.vals, right.vals[1:])
			right.keys = right.keys[:len(right.keys)-1]
			right.vals = right.vals[:len(right.vals)-1]
			l.keys = append(l.keys, k)
			l.vals = append(l.vals, v)
			parent.keys[slot] = right.keys[0]
			t.borrows++
			return
		}
	}
	// Merge with a sibling.
	if slot > 0 {
		left := parent.children[slot-1].(*leaf)
		left.keys = append(left.keys, l.keys...)
		left.vals = append(left.vals, l.vals...)
		left.next = l.next
		if l.next != nil {
			l.next.prev = left
		}
		t.removeChild(parent, slot, path[:len(path)-1])
	} else if slot < len(parent.children)-1 {
		right := parent.children[slot+1].(*leaf)
		l.keys = append(l.keys, right.keys...)
		l.vals = append(l.vals, right.vals...)
		l.next = right.next
		if right.next != nil {
			right.next.prev = l
		}
		t.removeChild(parent, slot+1, path[:len(path)-1])
	}
	t.merges++
}

// removeChild deletes children[slot] (and keys[slot-1]) from n and
// rebalances inner nodes upward.
func (t *Tree) removeChild(n *inner, slot int, path []pathEntry) {
	sepIdx := slot - 1
	if sepIdx < 0 {
		sepIdx = 0
	}
	copy(n.keys[sepIdx:], n.keys[sepIdx+1:])
	n.keys = n.keys[:len(n.keys)-1]
	copy(n.children[slot:], n.children[slot+1:])
	n.children = n.children[:len(n.children)-1]

	if len(path) == 0 {
		// n is the root: collapse when it has a single child.
		if len(n.children) == 1 {
			t.root = n.children[0]
		}
		return
	}
	minFill := t.cfg.innerCap() / 2
	if len(n.children) >= minFill {
		return
	}
	p := path[len(path)-1]
	parent, slotInParent := p.node, p.slot
	if slotInParent > 0 {
		left := parent.children[slotInParent-1].(*inner)
		if len(left.children) > minFill {
			// Rotate rightmost child of left through the parent.
			n.keys = append([]float64{parent.keys[slotInParent-1]}, n.keys...)
			n.children = append([]interface{}{left.children[len(left.children)-1]}, n.children...)
			parent.keys[slotInParent-1] = left.keys[len(left.keys)-1]
			left.keys = left.keys[:len(left.keys)-1]
			left.children = left.children[:len(left.children)-1]
			t.borrows++
			return
		}
	}
	if slotInParent < len(parent.children)-1 {
		right := parent.children[slotInParent+1].(*inner)
		if len(right.children) > minFill {
			n.keys = append(n.keys, parent.keys[slotInParent])
			n.children = append(n.children, right.children[0])
			parent.keys[slotInParent] = right.keys[0]
			copy(right.keys, right.keys[1:])
			right.keys = right.keys[:len(right.keys)-1]
			copy(right.children, right.children[1:])
			right.children = right.children[:len(right.children)-1]
			t.borrows++
			return
		}
	}
	// Merge inner nodes.
	if slotInParent > 0 {
		left := parent.children[slotInParent-1].(*inner)
		left.keys = append(left.keys, parent.keys[slotInParent-1])
		left.keys = append(left.keys, n.keys...)
		left.children = append(left.children, n.children...)
		t.merges++
		t.removeChild(parent, slotInParent, path[:len(path)-1])
	} else if slotInParent < len(parent.children)-1 {
		right := parent.children[slotInParent+1].(*inner)
		n.keys = append(n.keys, parent.keys[slotInParent])
		n.keys = append(n.keys, right.keys...)
		n.children = append(n.children, right.children...)
		t.merges++
		t.removeChild(parent, slotInParent+1, path[:len(path)-1])
	}
}

// Update overwrites the payload of an existing key.
func (t *Tree) Update(key float64, payload uint64) bool {
	l := t.findLeaf(key, nil)
	i := search.LowerBound(l.keys, key)
	if i < len(l.keys) && l.keys[i] == key {
		l.vals[i] = payload
		return true
	}
	return false
}

// Len returns the number of stored elements.
func (t *Tree) Len() int { return t.count }

// Scan visits elements with key >= start in ascending order until visit
// returns false, returning the number visited.
func (t *Tree) Scan(start float64, visit func(key float64, payload uint64) bool) int {
	l := t.findLeaf(start, nil)
	i := search.LowerBound(l.keys, start)
	n := 0
	for l != nil {
		for ; i < len(l.keys); i++ {
			n++
			if !visit(l.keys[i], l.vals[i]) {
				return n
			}
		}
		l = l.next
		i = 0
	}
	return n
}

// ScanN collects up to max elements starting at the first key >= start.
func (t *Tree) ScanN(start float64, max int) ([]float64, []uint64) {
	keys := make([]float64, 0, max)
	vals := make([]uint64, 0, max)
	t.Scan(start, func(k float64, v uint64) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return len(keys) < max
	})
	return keys, vals
}

// ScanCount visits up to max elements from start without materializing.
func (t *Tree) ScanCount(start float64, max int) int {
	remaining := max
	return t.Scan(start, func(float64, uint64) bool {
		remaining--
		return remaining > 0
	})
}

// MinKey returns the smallest key.
func (t *Tree) MinKey() (float64, bool) {
	for l := t.head; l != nil; l = l.next {
		if len(l.keys) > 0 {
			return l.keys[0], true
		}
	}
	return 0, false
}

// MaxKey returns the largest key.
func (t *Tree) MaxKey() (float64, bool) {
	cur := t.root
	for {
		switch n := cur.(type) {
		case *inner:
			cur = n.children[len(n.children)-1]
		case *leaf:
			if len(n.keys) == 0 {
				if n.prev != nil {
					cur = n.prev
					continue
				}
				return 0, false
			}
			return n.keys[len(n.keys)-1], true
		}
	}
}

// Height returns the number of levels.
func (t *Tree) Height() int {
	h := 1
	cur := t.root
	for {
		n, ok := cur.(*inner)
		if !ok {
			return h
		}
		h++
		cur = n.children[0]
	}
}

// IndexSizeBytes sums inner node storage (§5.1: "the index size of
// B+Tree is the sum of the sizes of all inner nodes"): allocated key and
// child arrays plus a header.
func (t *Tree) IndexSizeBytes() int {
	const headerBytes = 24
	total := 0
	var walk func(c interface{})
	walk = func(c interface{}) {
		if n, ok := c.(*inner); ok {
			total += headerBytes + cap(n.keys)*8 + cap(n.children)*8
			for _, ch := range n.children {
				walk(ch)
			}
		}
	}
	walk(t.root)
	return total
}

// DataSizeBytes sums leaf storage: allocated key and payload arrays plus
// headers and sibling pointers.
func (t *Tree) DataSizeBytes() int {
	const headerBytes = 40 // header + next/prev
	total := 0
	for l := t.head; l != nil; l = l.next {
		total += headerBytes + cap(l.keys)*8 + cap(l.vals)*t.cfg.PayloadBytes
	}
	return total
}

// Stats returns structural counters.
func (t *Tree) Stats() Stats {
	s := Stats{Splits: t.splits, Merges: t.merges, Borrows: t.borrows, Height: t.Height()}
	for l := t.head; l != nil; l = l.next {
		s.NumLeaves++
	}
	var walk func(c interface{})
	walk = func(c interface{}) {
		if n, ok := c.(*inner); ok {
			s.NumInner++
			for _, ch := range n.children {
				walk(ch)
			}
		}
	}
	walk(t.root)
	return s
}

// CheckInvariants verifies ordering, capacity, separator correctness,
// leaf-chain connectivity, and the element count.
func (t *Tree) CheckInvariants() error {
	total := 0
	prev := math.Inf(-1)
	for l := t.head; l != nil; l = l.next {
		if !sort.Float64sAreSorted(l.keys) {
			return errors.New("btree: unsorted leaf")
		}
		if len(l.keys) != len(l.vals) {
			return errors.New("btree: leaf keys/vals length mismatch")
		}
		if len(l.keys) > t.cfg.leafCap() {
			return fmt.Errorf("btree: overfull leaf (%d > %d)", len(l.keys), t.cfg.leafCap())
		}
		for _, k := range l.keys {
			if k <= prev {
				return fmt.Errorf("btree: key %v out of global order", k)
			}
			prev = k
		}
		if l.next != nil && l.next.prev != l {
			return errors.New("btree: broken prev link")
		}
		total += len(l.keys)
	}
	if total != t.count {
		return fmt.Errorf("btree: leaf total %d != count %d", total, t.count)
	}
	var walk func(c interface{}, lo, hi float64) error
	walk = func(c interface{}, lo, hi float64) error {
		switch n := c.(type) {
		case *inner:
			if len(n.children) != len(n.keys)+1 {
				return fmt.Errorf("btree: inner with %d children, %d keys", len(n.children), len(n.keys))
			}
			if len(n.children) > t.cfg.innerCap() {
				return errors.New("btree: overfull inner node")
			}
			if !sort.Float64sAreSorted(n.keys) {
				return errors.New("btree: unsorted inner keys")
			}
			for i, ch := range n.children {
				cLo, cHi := lo, hi
				if i > 0 {
					cLo = n.keys[i-1]
				}
				if i < len(n.keys) {
					cHi = n.keys[i]
				}
				if err := walk(ch, cLo, cHi); err != nil {
					return err
				}
			}
		case *leaf:
			for _, k := range n.keys {
				if k < lo || k >= hi {
					return fmt.Errorf("btree: leaf key %v outside separator range [%v,%v)", k, lo, hi)
				}
			}
		}
		return nil
	}
	return walk(t.root, math.Inf(-1), math.Inf(1))
}
