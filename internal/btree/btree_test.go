package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func uniqueSorted(n int, seed int64) ([]float64, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[float64]bool, n)
	keys := make([]float64, 0, n)
	for len(keys) < n {
		k := math.Floor(rng.Float64() * 1e12)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Float64s(keys)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i) + 1
	}
	return keys, vals
}

func TestBulkLoadAndGet(t *testing.T) {
	for _, page := range []int{64, 256, 1024, 4096} {
		keys, vals := uniqueSorted(20000, int64(page))
		tr := BulkLoad(keys, vals, Config{PageSizeBytes: page})
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("page %d: %v", page, err)
		}
		if tr.Len() != len(keys) {
			t.Fatalf("Len = %d", tr.Len())
		}
		for i, k := range keys {
			v, ok := tr.Get(k)
			if !ok || v != vals[i] {
				t.Fatalf("page %d: Get(%v) = (%v,%v), want (%v,true)", page, k, v, ok, vals[i])
			}
		}
		if _, ok := tr.Get(-1); ok {
			t.Fatal("absent key found")
		}
	}
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	tr := BulkLoad(nil, nil, Config{})
	if tr.Len() != 0 {
		t.Fatal("nonzero empty")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tr = BulkLoad([]float64{42}, []uint64{7}, Config{})
	if v, ok := tr.Get(42); !ok || v != 7 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	if h := tr.Height(); h != 1 {
		t.Fatalf("single-key height = %d", h)
	}
}

func TestBulkLoadFillFactor(t *testing.T) {
	keys, vals := uniqueSorted(10000, 1)
	full := BulkLoad(keys, vals, Config{FillFactor: 1.0})
	loose := BulkLoad(keys, vals, Config{FillFactor: 0.5})
	if loose.Stats().NumLeaves <= full.Stats().NumLeaves {
		t.Fatal("lower fill factor should create more leaves")
	}
	if err := loose.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertWithSplits(t *testing.T) {
	tr := New(Config{PageSizeBytes: 128})
	rng := rand.New(rand.NewSource(2))
	ref := make(map[float64]uint64)
	for i := 0; i < 20000; i++ {
		k := math.Floor(rng.Float64() * 1e9)
		ins := tr.Insert(k, uint64(i))
		if _, existed := ref[k]; existed == ins {
			t.Fatal("insert return mismatch")
		}
		ref[k] = uint64(i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len %d != %d", tr.Len(), len(ref))
	}
	if tr.Stats().Splits == 0 {
		t.Fatal("no splits")
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%v) = (%v,%v), want (%v,true)", k, got, ok, v)
		}
	}
}

func TestSequentialInserts(t *testing.T) {
	tr := New(Config{PageSizeBytes: 256})
	for i := 0; i < 50000; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h := tr.Height(); h < 3 {
		t.Fatalf("height = %d after 50k sequential inserts", h)
	}
}

func TestDeleteWithRebalance(t *testing.T) {
	keys, vals := uniqueSorted(30000, 3)
	tr := BulkLoad(keys, vals, Config{PageSizeBytes: 128})
	rng := rand.New(rand.NewSource(4))
	perm := rng.Perm(len(keys))
	for _, i := range perm[:25000] {
		if !tr.Delete(keys[i]) {
			t.Fatalf("Delete(%v) failed", keys[i])
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	st := tr.Stats()
	if st.Merges == 0 && st.Borrows == 0 {
		t.Fatal("no rebalancing after heavy deletes")
	}
	for _, i := range perm[25000:] {
		if _, ok := tr.Get(keys[i]); !ok {
			t.Fatalf("survivor %v lost", keys[i])
		}
	}
	if tr.Delete(keys[perm[0]]) {
		t.Fatal("double delete succeeded")
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	tr := New(Config{PageSizeBytes: 64})
	for i := 0; i < 1000; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	for i := 0; i < 1000; i++ {
		if !tr.Delete(float64(i)) {
			t.Fatalf("Delete(%d)", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tr.Insert(float64(i)+0.5, uint64(i))
	}
	if tr.Len() != 100 {
		t.Fatalf("reuse Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdate(t *testing.T) {
	tr := New(Config{})
	tr.Insert(1, 10)
	if !tr.Update(1, 20) {
		t.Fatal("update failed")
	}
	if v, _ := tr.Get(1); v != 20 {
		t.Fatalf("v = %d", v)
	}
	if tr.Update(9, 1) {
		t.Fatal("update absent succeeded")
	}
	if tr.Insert(1, 30) {
		t.Fatal("duplicate insert returned true")
	}
	if v, _ := tr.Get(1); v != 30 {
		t.Fatalf("v = %d", v)
	}
}

func TestScan(t *testing.T) {
	keys, vals := uniqueSorted(10000, 5)
	tr := BulkLoad(keys, vals, Config{PageSizeBytes: 128})
	got, _ := tr.ScanN(keys[3000], 500)
	if len(got) != 500 {
		t.Fatalf("scan = %d", len(got))
	}
	for i := range got {
		if got[i] != keys[3000+i] {
			t.Fatalf("scan[%d] = %v, want %v", i, got[i], keys[3000+i])
		}
	}
	// Scan from between keys.
	mid := (keys[10] + keys[11]) / 2
	first, _ := tr.ScanN(mid, 1)
	if len(first) != 1 || first[0] != keys[11] {
		t.Fatalf("scan(mid) = %v", first)
	}
	if n := tr.ScanCount(keys[len(keys)-1]+1, 10); n != 0 {
		t.Fatalf("scan past end = %d", n)
	}
	if n := tr.ScanCount(math.Inf(-1), len(keys)+10); n != len(keys) {
		t.Fatalf("full scan = %d, want %d", n, len(keys))
	}
}

func TestMinMaxHeight(t *testing.T) {
	keys, vals := uniqueSorted(5000, 6)
	tr := BulkLoad(keys, vals, Config{PageSizeBytes: 128})
	if k, ok := tr.MinKey(); !ok || k != keys[0] {
		t.Fatalf("MinKey = %v,%v", k, ok)
	}
	if k, ok := tr.MaxKey(); !ok || k != keys[len(keys)-1] {
		t.Fatalf("MaxKey = %v,%v", k, ok)
	}
	if tr.Height() < 2 {
		t.Fatalf("Height = %d", tr.Height())
	}
}

func TestSizesGrowWithPageChoice(t *testing.T) {
	keys, vals := uniqueSorted(50000, 7)
	small := BulkLoad(keys, vals, Config{PageSizeBytes: 64})
	big := BulkLoad(keys, vals, Config{PageSizeBytes: 4096})
	if small.IndexSizeBytes() <= big.IndexSizeBytes() {
		t.Fatalf("small pages should need more inner-node bytes: %d vs %d",
			small.IndexSizeBytes(), big.IndexSizeBytes())
	}
	if small.DataSizeBytes() < len(keys)*16 {
		t.Fatal("data size below raw minimum")
	}
}

// Property: the tree matches a map under random operations.
func TestQuickAgainstMap(t *testing.T) {
	type op struct {
		Kind    uint8
		Key     uint16
		Payload uint64
	}
	f := func(ops []op, page uint8) bool {
		tr := New(Config{PageSizeBytes: 64 + int(page)%512})
		ref := make(map[float64]uint64)
		for _, o := range ops {
			k := float64(o.Key % 512)
			switch o.Kind % 4 {
			case 0:
				ins := tr.Insert(k, o.Payload)
				if _, existed := ref[k]; existed == ins {
					return false
				}
				ref[k] = o.Payload
			case 1:
				_, existed := ref[k]
				if tr.Delete(k) != existed {
					return false
				}
				delete(ref, k)
			case 2:
				_, existed := ref[k]
				if tr.Update(k, o.Payload) != existed {
					return false
				}
				if existed {
					ref[k] = o.Payload
				}
			case 3:
				v, ok := tr.Get(k)
				want, existed := ref[k]
				if ok != existed || (ok && v != want) {
					return false
				}
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		var got []float64
		tr.Scan(math.Inf(-1), func(k float64, v uint64) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(ref) {
			return false
		}
		want := make([]float64, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Float64s(want)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGet(b *testing.B) {
	keys, vals := uniqueSorted(1<<18, 8)
	tr := BulkLoad(keys, vals, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i&(len(keys)-1)])
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	tr := New(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Float64()*1e12, uint64(i))
	}
}
