package pma

import "math"

// InsertSortedBatch adds a non-decreasing batch of keys in one pass,
// reporting how many were new (existing keys have their payloads
// overwritten). The resize decision is made once per batch: a batch
// that would push the whole array past its root density bound takes a
// single merge rebuild — one retrain, one model-based placement pass —
// instead of a doubling per overflow; a batch that fits runs the
// normal Algorithm 2 per element, whose rebalances stay window-local.
func (a *Array) InsertSortedBatch(keys []float64, payloads []uint64) int {
	if len(keys) == 0 {
		return 0
	}
	checkFiniteBatch(keys)
	if float64(a.NumKeys+len(keys)) > a.cfg.TauRoot*float64(a.Cap()) {
		return a.MergeSorted(keys, payloads)
	}
	n := 0
	for i := range keys {
		if a.Insert(keys[i], payloads[i]) {
			n++
		}
	}
	return n
}

// MergeSorted bulk-merges a non-decreasing batch into the node: the
// existing elements and the batch are merged into one sorted run and
// the node is rebuilt at the bulk-load capacity (root-bound midpoint
// density), exactly as NewFromSorted would build it. It returns the
// number of keys that were not already present.
func (a *Array) MergeSorted(keys []float64, payloads []uint64) int {
	checkFiniteBatch(keys)
	mk, mp, added := a.Base.MergeSorted(keys, payloads)
	newCap := a.capacityFor(len(mk))
	if newCap > a.Cap() {
		a.Stats.Expands++
	} else if newCap < a.Cap() {
		a.Stats.Contracts++
	}
	a.rebuildInto(mk, mp, newCap)
	return added
}

// DeleteSortedBatch removes a non-decreasing batch of keys, reporting
// how many were present. The contraction decision is made once per
// batch rather than once per key.
func (a *Array) DeleteSortedBatch(keys []float64) int {
	n := a.DeleteSortedNoRepack(keys)
	if n > 0 && a.Cap() > minCapacity && a.Density() < a.cfg.RhoRoot/2 {
		a.Stats.Contracts++
		ks, ps := a.Collect(nil, nil)
		a.rebuildInto(ks, ps, a.capacityFor(a.NumKeys))
	}
	return n
}

// checkFiniteBatch guards batch entry points the way Insert guards its
// single key.
func checkFiniteBatch(keys []float64) {
	for _, k := range keys {
		if math.IsNaN(k) || math.IsInf(k, 0) {
			panic("pma: key must be finite")
		}
	}
}
