package pma

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildSorted(n int, seed int64) ([]float64, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[float64]bool, n)
	keys := make([]float64, 0, n)
	for len(keys) < n {
		k := rng.Float64() * 1e6
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Float64s(keys)
	payloads := make([]uint64, n)
	for i := range payloads {
		payloads[i] = uint64(i) + 1
	}
	return keys, payloads
}

func TestGeometry(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 4096, 10000} {
		keys, payloads := buildSorted(n, int64(n)+1)
		a := NewFromSorted(keys, payloads, Config{})
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if c := a.Cap(); c&(c-1) != 0 {
			t.Fatalf("n=%d capacity %d not power of two", n, c)
		}
		if a.Cap()%a.SegmentSize() != 0 {
			t.Fatalf("segment %d !| capacity %d", a.SegmentSize(), a.Cap())
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Fatalf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestBulkLoadAndLookup(t *testing.T) {
	keys, payloads := buildSorted(5000, 2)
	a := NewFromSorted(keys, payloads, Config{})
	for i, k := range keys {
		v, ok := a.Lookup(k)
		if !ok || v != payloads[i] {
			t.Fatalf("Lookup(%v) = (%v,%v), want (%v,true)", k, v, ok, payloads[i])
		}
	}
	if _, ok := a.Lookup(-5); ok {
		t.Fatal("absent key found")
	}
}

func TestInsertGrowsByDoubling(t *testing.T) {
	a := New(Config{})
	rng := rand.New(rand.NewSource(3))
	prevCap := a.Cap()
	for i := 0; i < 30000; i++ {
		a.Insert(rng.Float64()*1e9, uint64(i))
		if c := a.Cap(); c != prevCap {
			if c != prevCap*2 && c != prevCap*4 {
				t.Fatalf("capacity changed %d -> %d, not doubling", prevCap, c)
			}
			prevCap = c
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if a.Stats.Expands == 0 {
		t.Fatal("no expansions counted")
	}
	if a.Stats.Rebalances == 0 {
		t.Fatal("no rebalances counted — density bounds never triggered")
	}
}

func TestInsertDuplicateOverwrites(t *testing.T) {
	a := New(Config{})
	if !a.Insert(7, 1) {
		t.Fatal("insert")
	}
	if a.Insert(7, 2) {
		t.Fatal("duplicate returned true")
	}
	if v, _ := a.Lookup(7); v != 2 {
		t.Fatalf("payload = %d", v)
	}
}

func TestSequentialInsertsStayLogarithmic(t *testing.T) {
	// The PMA's reason to exist (§3.3.2): sequential inserts must not
	// degrade to O(n) shifting the way a gapped array can. We check that
	// average moves per insert stay modest.
	a := New(Config{})
	n := 30000
	for i := 0; i < n; i++ {
		a.Insert(float64(i), uint64(i))
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	perInsert := float64(a.Stats.Shifts) / float64(n)
	if perInsert > 100 {
		t.Fatalf("sequential insert moves per op = %v, want bounded", perInsert)
	}
	for i := 0; i < n; i += 997 {
		if _, ok := a.Lookup(float64(i)); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

func TestDeleteAndContract(t *testing.T) {
	keys, payloads := buildSorted(8192, 4)
	a := NewFromSorted(keys, payloads, Config{})
	capBefore := a.Cap()
	for _, k := range keys[:8000] {
		if !a.Delete(k) {
			t.Fatalf("Delete(%v)", k)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if a.Cap() >= capBefore {
		t.Fatalf("no contraction: %d -> %d", capBefore, a.Cap())
	}
	for _, k := range keys[8000:] {
		if _, ok := a.Lookup(k); !ok {
			t.Fatalf("survivor %v lost", k)
		}
	}
	if a.Delete(12345.6789) {
		t.Fatal("absent delete succeeded")
	}
}

func TestScanFrom(t *testing.T) {
	keys, payloads := buildSorted(3000, 5)
	a := NewFromSorted(keys, payloads, Config{})
	var got []float64
	a.ScanFrom(keys[1000], func(k float64, v uint64) bool {
		got = append(got, k)
		return len(got) < 50
	})
	for i := range got {
		if got[i] != keys[1000+i] {
			t.Fatalf("scan[%d] = %v, want %v", i, got[i], keys[1000+i])
		}
	}
}

func TestDensityBoundsInterpolation(t *testing.T) {
	keys, payloads := buildSorted(4096, 6)
	a := NewFromSorted(keys, payloads, Config{})
	levels := a.levels()
	prev := a.tau(0)
	for l := 1; l < levels; l++ {
		cur := a.tau(l)
		if cur > prev {
			t.Fatalf("tau must be non-increasing toward root: tau(%d)=%v > tau(%d)=%v", l, cur, l-1, prev)
		}
		prev = cur
	}
	prev = a.rho(0)
	for l := 1; l < levels; l++ {
		cur := a.rho(l)
		if cur < prev {
			t.Fatalf("rho must be non-decreasing toward root: rho(%d)=%v < rho(%d)=%v", l, cur, l-1, prev)
		}
		prev = cur
	}
	if a.tau(levels-1) <= a.rho(levels-1) {
		t.Fatal("root tau must exceed root rho")
	}
}

// Property test: PMA equals a sorted map under a random workload.
func TestQuickAgainstReferenceMap(t *testing.T) {
	type op struct {
		Kind    uint8
		Key     uint16
		Payload uint64
	}
	f := func(ops []op) bool {
		a := New(Config{})
		ref := make(map[float64]uint64)
		for _, o := range ops {
			k := float64(o.Key % 512)
			switch o.Kind % 4 {
			case 0:
				ins := a.Insert(k, o.Payload)
				_, existed := ref[k]
				if ins == existed {
					return false
				}
				ref[k] = o.Payload
			case 1:
				del := a.Delete(k)
				_, existed := ref[k]
				if del != existed {
					return false
				}
				delete(ref, k)
			case 2:
				upd := a.Update(k, o.Payload)
				_, existed := ref[k]
				if upd != existed {
					return false
				}
				if existed {
					ref[k] = o.Payload
				}
			case 3:
				v, ok := a.Lookup(k)
				want, existed := ref[k]
				if ok != existed || (ok && v != want) {
					return false
				}
			}
		}
		if a.Num() != len(ref) {
			return false
		}
		if err := a.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		want := make([]float64, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Float64s(want)
		got := make([]float64, 0, len(ref))
		a.ScanFrom(math.Inf(-1), func(k float64, v uint64) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The Fig 8 claim: under static models with skewed inserts the PMA does
// far fewer shifts than a gapped array would need in its worst case.
// Here we verify that sequential inserts into a PMA never trigger a
// single shift longer than the array (trivially true) and that the
// rebalance mechanism engages.
func TestRebalanceEngagesOnSkew(t *testing.T) {
	a := New(Config{})
	for i := 0; i < 5000; i++ {
		a.Insert(1e6+float64(i), uint64(i)) // all keys land at the right end
	}
	if a.Stats.Rebalances == 0 {
		t.Fatal("skewed inserts never rebalanced")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptivePMACorrectness(t *testing.T) {
	// The adaptive PMA must stay a correct sorted map under the same
	// workloads as the plain one.
	a := New(Config{Adaptive: true})
	ref := make(map[float64]uint64)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 30000; i++ {
		var k float64
		if i%3 == 0 {
			k = float64(i) // sequential component (the hotspot)
		} else {
			k = rng.Float64() * 1e6
		}
		ins := a.Insert(k, uint64(i))
		if _, existed := ref[k]; existed == ins {
			t.Fatal("insert mismatch")
		}
		ref[k] = uint64(i)
		if i%5000 == 0 {
			if err := a.CheckInvariants(); err != nil {
				t.Fatalf("at %d: %v", i, err)
			}
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if a.Num() != len(ref) {
		t.Fatalf("Num %d != %d", a.Num(), len(ref))
	}
	for k, v := range ref {
		got, ok := a.Lookup(k)
		if !ok || got != v {
			t.Fatalf("Lookup(%v) = (%v,%v)", k, got, ok)
		}
	}
}

func TestAdaptivePMAFewerRebalancesOnSequential(t *testing.T) {
	// §7's hypothesis: the adaptive PMA should handle the sequential
	// hotspot with fewer rebalances (or at least fewer moves) than the
	// uniform PMA, because hot segments keep receiving extra gaps.
	run := func(adaptive bool) (uint64, uint64) {
		a := New(Config{Adaptive: adaptive})
		for i := 0; i < 40000; i++ {
			a.Insert(float64(i), uint64(i))
		}
		return a.Stats.Rebalances, a.Stats.Shifts
	}
	ur, us := run(false)
	ar, as := run(true)
	if ar > ur && as > us {
		t.Fatalf("adaptive PMA did worse on both metrics: rebalances %d vs %d, moves %d vs %d",
			ar, ur, as, us)
	}
	t.Logf("uniform: %d rebalances %d moves; adaptive: %d rebalances %d moves", ur, us, ar, as)
}

func TestAdaptivePMADeleteAndContract(t *testing.T) {
	keys, payloads := buildSorted(8192, 22)
	a := NewFromSorted(keys, payloads, Config{Adaptive: true})
	for _, k := range keys[:8000] {
		if !a.Delete(k) {
			t.Fatalf("Delete(%v)", k)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[8000:] {
		if _, ok := a.Lookup(k); !ok {
			t.Fatalf("survivor %v lost", k)
		}
	}
}

func BenchmarkInsertUniform(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	a := New(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Insert(rng.Float64()*1e12, uint64(i))
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	a := New(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Insert(float64(i), uint64(i))
	}
}

func BenchmarkLookup(b *testing.B) {
	keys, payloads := buildSorted(1<<17, 11)
	a := NewFromSorted(keys, payloads, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Lookup(keys[i&(len(keys)-1)])
	}
}
