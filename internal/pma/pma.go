// Package pma implements ALEX's Packed Memory Array data node layout
// (§3.3.2, Algorithm 2), after Bender & Hu's adaptive PMA. The array's
// size is a power of two, divided into equal power-of-two segments, with
// an implicit binary tree of density bounds over the segments: leaves
// (segments) tolerate high density, the root low density. An insert that
// would violate its segment's bound walks up the implicit tree until a
// window satisfies the bounds and uniformly redistributes that window;
// when even the root window violates, the insert fails and the node
// expands by doubling.
//
// Two ALEX-specific deviations from a textbook PMA (both from the
// paper): after an expansion the elements are re-inserted *model-based*
// rather than uniformly spaced, and lookups use the node's linear model
// plus exponential search. Over time rebalances spread elements toward
// uniform spacing, so the layout is a middle ground between the gapped
// array's search speed and the PMA's insert bounds.
package pma

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/leafbase"
)

// Config parameterizes the PMA's density bounds. The zero value uses the
// defaults, which are tuned so data space overhead is comparable to a
// B+Tree (§5.1).
type Config struct {
	// TauLeaf/TauRoot are the maximum densities at segment/root level.
	TauLeaf, TauRoot float64
	// RhoLeaf/RhoRoot are the minimum densities at segment/root level
	// (used to trigger contraction after deletes).
	RhoLeaf, RhoRoot float64
	// Adaptive enables the *adaptive* PMA of Bender & Hu that §7
	// proposes against sequential-insert pathologies: rebalances give
	// recently-hot segments a larger share of the gaps, so insertion
	// hotspots keep finding local free slots instead of rebalancing
	// again immediately.
	Adaptive bool
}

func (c Config) withDefaults() Config {
	if c.TauLeaf <= 0 {
		c.TauLeaf = 0.92
	}
	if c.TauRoot <= 0 {
		c.TauRoot = 0.70
	}
	if c.RhoLeaf <= 0 {
		c.RhoLeaf = 0.05
	}
	if c.RhoRoot <= 0 {
		c.RhoRoot = 0.20
	}
	return c
}

const minCapacity = 8

// Array is a PMA data node.
type Array struct {
	leafbase.Base
	cfg     Config
	segSize int // power of two; capacity/segSize is a power of two
	// heat counts recent inserts per segment (adaptive mode); decayed at
	// every rebalance that covers the segment, reset on resize.
	heat []float64
}

// New returns an empty PMA.
func New(cfg Config) *Array {
	a := &Array{cfg: cfg.withDefaults()}
	a.rebuildInto(nil, nil, minCapacity)
	return a
}

// NewFromSorted bulk-loads a PMA from sorted unique keys with initial
// density ≈ 0.5 (half way between the root bounds), placing elements
// model-based.
func NewFromSorted(keys []float64, payloads []uint64, cfg Config) *Array {
	a := &Array{cfg: cfg.withDefaults()}
	a.rebuildInto(keys, payloads, a.capacityFor(len(keys)))
	return a
}

// capacityFor returns the smallest valid capacity (power of two) giving
// initial density at or below the midpoint of the root bounds.
func (a *Array) capacityFor(n int) int {
	target := (a.cfg.TauRoot + a.cfg.RhoRoot) / 2
	want := int(math.Ceil(float64(n) / target))
	if want < minCapacity {
		want = minCapacity
	}
	return nextPow2(want)
}

func nextPow2(v int) int {
	if v <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(v-1))
}

// rebuildInto rebuilds the node with the given sorted contents and
// capacity, recomputing segment geometry: segments are Θ(log₂ capacity)
// slots rounded up to a power of two.
func (a *Array) rebuildInto(keys []float64, payloads []uint64, capacity int) {
	capacity = nextPow2(capacity)
	if capacity < minCapacity {
		capacity = minCapacity
	}
	seg := nextPow2(bits.Len(uint(capacity)))
	if seg > capacity {
		seg = capacity
	}
	if seg < 4 {
		seg = 4
	}
	a.segSize = seg
	a.Base.BuildFromSorted(keys, payloads, capacity)
	if a.cfg.Adaptive {
		a.heat = make([]float64, capacity/seg)
	} else {
		a.heat = nil
	}
}

// Config returns the node's configuration.
func (a *Array) Config() Config { return a.cfg }

// SegmentSize returns the current segment size in slots.
func (a *Array) SegmentSize() int { return a.segSize }

// levels returns the number of levels in the implicit tree (segments are
// level 0, the whole array is level levels-1).
func (a *Array) levels() int {
	return bits.TrailingZeros(uint(a.Cap()/a.segSize)) + 1
}

// tau returns the maximum density bound for a window at the given level
// (0 = segment), interpolating between TauLeaf and TauRoot.
func (a *Array) tau(level int) float64 {
	h := a.levels() - 1
	if h == 0 {
		return a.cfg.TauLeaf
	}
	frac := float64(level) / float64(h)
	return a.cfg.TauLeaf + (a.cfg.TauRoot-a.cfg.TauLeaf)*frac
}

// rho returns the minimum density bound for a window at the given level.
func (a *Array) rho(level int) float64 {
	h := a.levels() - 1
	if h == 0 {
		return a.cfg.RhoLeaf
	}
	frac := float64(level) / float64(h)
	return a.cfg.RhoLeaf + (a.cfg.RhoRoot-a.cfg.RhoLeaf)*frac
}

// Insert adds key with payload per Algorithm 2: place at the predicted
// position if its segment keeps its density bound (shifting only within
// the segment), otherwise rebalance the smallest enclosing window whose
// bound holds, and if no window qualifies, expand by doubling with
// model-based re-insertion and retry.
func (a *Array) Insert(key float64, payload uint64) bool {
	if math.IsNaN(key) || math.IsInf(key, 0) {
		panic("pma: key must be finite")
	}
	switch a.tryInsert(key, payload) {
	case leafbase.Inserted:
		return true
	case leafbase.Duplicate:
		return false
	}
	// Density bounds violated everywhere: expand (Alg 2 lines 7-10).
	a.Expand()
	switch a.tryInsert(key, payload) {
	case leafbase.Inserted:
		return true
	case leafbase.Duplicate:
		return false
	}
	// Model-based re-insertion can leave badly skewed windows; a uniform
	// root rebalance always makes room after an expansion.
	a.Stats.Rebalances++
	a.RedistributeUniform(0, a.Cap(), true, key, payload)
	return true
}

// tryInsert attempts placement under the density bounds.
func (a *Array) tryInsert(key float64, payload uint64) leafbase.InsertResult {
	lo := a.LowerBoundSlot(key)
	if lo < a.Cap() && a.Keys[lo] == key {
		if occ := a.Occ.NextSet(lo); occ >= 0 && a.Keys[occ] == key {
			a.Payloads[occ] = payload
			return leafbase.Duplicate
		}
	}
	if a.NumKeys >= a.Cap() {
		return leafbase.NeedRoom
	}
	// slot anchors the segment/window walk; clamp a past-the-end lower
	// bound (key greater than everything, last slot occupied) to the
	// final segment.
	slot := lo
	if slot >= a.Cap() {
		slot = a.Cap() - 1
	}
	segLo := slot - slot%a.segSize
	segHi := segLo + a.segSize
	if a.heat != nil {
		a.heat[segLo/a.segSize]++
	}
	segCount := a.Occ.CountRange(segLo, segHi)
	if float64(segCount+1) <= a.tau(0)*float64(a.segSize) {
		// The segment can absorb the insert: claim a gap in the valid
		// range, shifting only within the segment if gap-making is
		// needed (PMA shifts are segment-local).
		res := a.PlaceModelBased(key, payload, segLo, segHi)
		if res != leafbase.NeedRoom {
			return res
		}
	}
	// Segment bound violated (or no usable gap in segment): walk up the
	// implicit tree for the smallest window that satisfies its bound with
	// the new element included, and redistribute it (Bender & Hu) —
	// uniformly, or heat-weighted in adaptive mode.
	size := a.segSize
	for level := 1; level < a.levels(); level++ {
		size <<= 1
		winLo := slot - slot%size
		winHi := winLo + size
		count := a.Occ.CountRange(winLo, winHi)
		if float64(count+1) <= a.tau(level)*float64(winHi-winLo) {
			a.Stats.Rebalances++
			if a.heat != nil {
				a.rebalanceAdaptive(winLo, winHi, key, payload)
			} else {
				a.RedistributeUniform(winLo, winHi, true, key, payload)
			}
			return leafbase.Inserted
		}
	}
	return leafbase.NeedRoom
}

// rebalanceAdaptive performs a heat-weighted window redistribution and
// decays the covered segments' heat so stale hotspots fade.
func (a *Array) rebalanceAdaptive(winLo, winHi int, key float64, payload uint64) {
	s0 := winLo / a.segSize
	s1 := winHi / a.segSize
	weights := make([]float64, s1-s0)
	for s := s0; s < s1; s++ {
		weights[s-s0] = 1 + a.heat[s]
		a.heat[s] /= 2
	}
	a.RedistributeWeighted(winLo, winHi, a.segSize, weights, true, key, payload)
}

// Expand doubles the array and re-inserts all elements model-based
// (§3.3.2: "ALEX uses model-based inserts after every PMA expansion").
func (a *Array) Expand() {
	a.Stats.Expands++
	keys, payloads := a.Collect(nil, nil)
	a.rebuildInto(keys, payloads, a.Cap()*2)
}

// Retrain rebuilds the node at the bulk-load capacity with a fresh
// model and model-based placement — the §4 cost-model action the tree
// takes when the node's prediction-error bound says searches have
// drifted (see leafbase.RetrainAdvised).
func (a *Array) Retrain() {
	keys, payloads := a.Collect(nil, nil)
	a.rebuildInto(keys, payloads, a.capacityFor(a.NumKeys))
}

// Delete removes key. When the root density falls below RhoRoot the
// array contracts by halving.
func (a *Array) Delete(key float64) bool {
	if !a.Base.Delete(key) {
		return false
	}
	if a.Cap() > minCapacity && a.Density() < a.cfg.RhoRoot/2 {
		a.Stats.Contracts++
		keys, payloads := a.Collect(nil, nil)
		a.rebuildInto(keys, payloads, a.capacityFor(a.NumKeys))
	}
	return true
}

// CheckInvariants verifies base invariants plus PMA geometry.
func (a *Array) CheckInvariants() error {
	if err := a.Base.CheckInvariants(); err != nil {
		return err
	}
	if a.Cap()&(a.Cap()-1) != 0 {
		return fmt.Errorf("%w: capacity %d not a power of two", leafbase.ErrInvariant, a.Cap())
	}
	if a.segSize&(a.segSize-1) != 0 || a.Cap()%a.segSize != 0 {
		return fmt.Errorf("%w: segment size %d does not divide capacity %d", leafbase.ErrInvariant, a.segSize, a.Cap())
	}
	return nil
}
