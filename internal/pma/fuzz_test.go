package pma

import "testing"

// FuzzArrayOps drives both PMA modes (uniform and adaptive) with
// byte-decoded operations against a reference map.
func FuzzArrayOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, false)
	f.Add([]byte{9, 9, 9, 9}, true)
	f.Add([]byte{0, 255, 0, 255, 128, 128}, true)
	f.Fuzz(func(t *testing.T, data []byte, adaptive bool) {
		a := New(Config{Adaptive: adaptive})
		ref := make(map[float64]uint64)
		for i := 0; i+1 < len(data); i += 2 {
			k := float64(data[i+1])
			switch data[i] % 3 {
			case 0:
				ins := a.Insert(k, uint64(i))
				if _, existed := ref[k]; existed == ins {
					t.Fatalf("insert(%v) = %v, existed %v", k, ins, existed)
				}
				ref[k] = uint64(i)
			case 1:
				_, existed := ref[k]
				if a.Delete(k) != existed {
					t.Fatalf("delete(%v) disagreed", k)
				}
				delete(ref, k)
			case 2:
				v, ok := a.Lookup(k)
				want, existed := ref[k]
				if ok != existed || (ok && v != want) {
					t.Fatalf("lookup(%v) = (%v,%v), want (%v,%v)", k, v, ok, want, existed)
				}
			}
		}
		if a.Num() != len(ref) {
			t.Fatalf("Num %d != %d", a.Num(), len(ref))
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
