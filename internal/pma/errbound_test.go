package pma

import (
	"math/rand"
	"testing"
)

// TestErrBoundUpperBoundProperty is the PMA counterpart of the gapped
// array's error-bound maintenance property test: window rebalances
// (uniform and adaptive/heat-weighted) re-place elements far from their
// predictions, and the bound must fold those fresh errors in — after
// every mutation the stored bound covers every key's true error.
func TestErrBoundUpperBoundProperty(t *testing.T) {
	for _, cfg := range []Config{{}, {Adaptive: true}} {
		rng := rand.New(rand.NewSource(5))
		a := New(cfg)
		check := func(op string) {
			t.Helper()
			if err := a.CheckInvariants(); err != nil {
				t.Fatalf("adaptive=%v after %s: %v", cfg.Adaptive, op, err)
			}
			if !a.HasModel {
				return
			}
			for i := a.NextSlot(-1); i >= 0; i = a.NextSlot(i) {
				k, _ := a.At(i)
				if e, ok := a.PredictionError(k); ok && e > a.ErrBound {
					t.Fatalf("adaptive=%v after %s: key %v error %d exceeds bound %d",
						cfg.Adaptive, op, k, e, a.ErrBound)
				}
			}
		}
		for op := 0; op < 3000; op++ {
			// Sequential-ish clumps trigger segment overflows and window
			// rebalances, the PMA-specific bound-maintenance paths.
			k := float64(op%500) + float64(rng.Intn(100))/1000
			switch rng.Intn(8) {
			case 0:
				a.Delete(k)
				if op%97 == 0 {
					check("Delete")
				}
			case 1:
				a.Retrain()
				check("Retrain")
			default:
				a.Insert(k, uint64(op))
				if op%31 == 0 {
					check("Insert")
				}
			}
		}
		check("final")
	}
}
