package pma

import (
	"math"

	"repro/internal/leafbase"
)

// Copy-on-write variants of the mutating operations, for nodes
// published behind atomic pointers (see the gapped package's cow.go for
// the protocol). For the PMA the in-place/COW boundary falls naturally
// out of Algorithm 2: segment-local placements and window
// redistributions move values within the existing arrays (value-only
// mutations, tolerated by seqlock readers), while a doubling, a
// contraction halving, a retrain, or a merge rebuild reallocates — and
// is therefore built off to the side and returned for atomic
// publication. A nil repl means the receiver stayed the live array.

// CloneForWrite returns an unsealed deep copy of the array, including
// the segment geometry and adaptive heat, the copy-on-write step taken
// before first mutating a snapshot-sealed node.
func (a *Array) CloneForWrite() *Array {
	r := &Array{cfg: a.cfg, segSize: a.segSize}
	a.Base.CloneInto(&r.Base)
	if a.heat != nil {
		r.heat = append([]float64(nil), a.heat...)
	}
	return r
}

// rebuiltCopy builds a fresh array holding the receiver's current
// elements at the given capacity — the COW counterpart of rebuildInto.
// Work counters carry over; the rebuild counts its retrain as usual.
func (a *Array) rebuiltCopy(capacity int) *Array {
	r := &Array{cfg: a.cfg}
	r.Stats = a.Stats
	keys, payloads := a.Collect(nil, nil)
	r.rebuildInto(keys, payloads, capacity)
	return r
}

// InsertCOW is Insert for a published node: Algorithm 2 with the
// expansion fallback rebuilt off to the side. The common case — the
// segment absorbs the insert, or a window redistribution makes room —
// mutates in place and returns nil.
func (a *Array) InsertCOW(key float64, payload uint64) (repl *Array, inserted bool) {
	if math.IsNaN(key) || math.IsInf(key, 0) {
		panic("pma: key must be finite")
	}
	switch a.tryInsert(key, payload) {
	case leafbase.Inserted:
		return nil, true
	case leafbase.Duplicate:
		return nil, false
	}
	// Density bounds violated everywhere: expand by doubling into a copy
	// (Alg 2 lines 7-10) and retry there.
	repl = a.rebuiltCopy(a.Cap() * 2)
	repl.Stats.Expands++
	switch repl.tryInsert(key, payload) {
	case leafbase.Inserted:
		return repl, true
	case leafbase.Duplicate:
		return repl, false
	}
	// Model-based re-insertion can leave badly skewed windows; a uniform
	// root rebalance always makes room after an expansion.
	repl.Stats.Rebalances++
	repl.RedistributeUniform(0, repl.Cap(), true, key, payload)
	return repl, true
}

// DeleteCOW is Delete for a published node: in-place removal, COW
// contraction.
func (a *Array) DeleteCOW(key float64) (repl *Array, deleted bool) {
	if !a.Base.Delete(key) {
		return nil, false
	}
	if a.Cap() > minCapacity && a.Density() < a.cfg.RhoRoot/2 {
		repl = a.rebuiltCopy(a.capacityFor(a.NumKeys))
		repl.Stats.Contracts++
	}
	return repl, true
}

// RetrainCOW is Retrain for a published node.
func (a *Array) RetrainCOW() *Array {
	return a.rebuiltCopy(a.capacityFor(a.NumKeys))
}

// MergeSortedCOW is MergeSorted for a published node; Base.MergeSorted
// is pure, so nothing here touches the receiver.
func (a *Array) MergeSortedCOW(keys []float64, payloads []uint64) (repl *Array, added int) {
	checkFiniteBatch(keys)
	mk, mp, added := a.Base.MergeSorted(keys, payloads)
	r := &Array{cfg: a.cfg}
	r.Stats = a.Stats
	newCap := a.capacityFor(len(mk))
	if newCap > a.Cap() {
		r.Stats.Expands++
	} else if newCap < a.Cap() {
		r.Stats.Contracts++
	}
	r.rebuildInto(mk, mp, newCap)
	return r, added
}

// InsertSortedBatchCOW is InsertSortedBatch for a published node; after
// a mid-batch expansion the remainder of the batch continues on the
// (not yet published) copy.
func (a *Array) InsertSortedBatchCOW(keys []float64, payloads []uint64) (repl *Array, added int) {
	if len(keys) == 0 {
		return nil, 0
	}
	checkFiniteBatch(keys)
	if float64(a.NumKeys+len(keys)) > a.cfg.TauRoot*float64(a.Cap()) {
		return a.MergeSortedCOW(keys, payloads)
	}
	cur := a
	n := 0
	for i := range keys {
		r, ok := cur.InsertCOW(keys[i], payloads[i])
		if r != nil {
			repl = r
			cur = r
		}
		if ok {
			n++
		}
	}
	return repl, n
}

// DeleteSortedBatchCOW is DeleteSortedBatch for a published node:
// in-place removals, one COW contraction decision per batch.
func (a *Array) DeleteSortedBatchCOW(keys []float64) (repl *Array, deleted int) {
	n := a.DeleteSortedNoRepack(keys)
	if n > 0 && a.Cap() > minCapacity && a.Density() < a.cfg.RhoRoot/2 {
		repl = a.rebuiltCopy(a.capacityFor(a.NumKeys))
		repl.Stats.Contracts++
	}
	return repl, n
}
