package paged

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/pagestore"
)

func uniqueKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[float64]bool, n)
	keys := make([]float64, 0, n)
	for len(keys) < n {
		k := math.Floor(rng.Float64() * 1e12)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func mustBulkLoad(t *testing.T, keys []float64, payloads []uint64, cfg Config) *Index {
	t.Helper()
	ix, err := BulkLoad(keys, payloads, pagestore.NewMemStore(cfg.PageSize), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBulkLoadAndGet(t *testing.T) {
	keys := uniqueKeys(30000, 1)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i) + 1
	}
	ix := mustBulkLoad(t, keys, payloads, Config{})
	defer ix.Close()
	if ix.Len() != len(keys) {
		t.Fatalf("Len = %d", ix.Len())
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, ok := ix.Get(k)
		if !ok || v != payloads[i] {
			t.Fatalf("Get(%v) = (%v,%v), want (%v,true)", k, v, ok, payloads[i])
		}
	}
	if _, ok := ix.Get(-5); ok {
		t.Fatal("absent key found")
	}
	if ix.Pages() == 0 {
		t.Fatal("no pages allocated")
	}
}

func TestBulkLoadRejectsDuplicates(t *testing.T) {
	_, err := BulkLoad([]float64{1, 1}, nil, pagestore.NewMemStore(0), Config{})
	if err == nil {
		t.Fatal("duplicates accepted")
	}
	_, err = BulkLoad([]float64{1, 2}, []uint64{1}, pagestore.NewMemStore(0), Config{})
	if err == nil {
		t.Fatal("mismatched payloads accepted")
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := mustBulkLoad(t, nil, nil, Config{})
	defer ix.Close()
	if ix.Len() != 0 {
		t.Fatal("len")
	}
	if _, ok := ix.Get(1); ok {
		t.Fatal("phantom")
	}
	ins, err := ix.Insert(5, 50)
	if err != nil || !ins {
		t.Fatalf("insert into empty: %v %v", ins, err)
	}
	if v, ok := ix.Get(5); !ok || v != 50 {
		t.Fatal("get after insert")
	}
}

func TestInsertWithPageSplits(t *testing.T) {
	keys := uniqueKeys(4000, 2)
	ix := mustBulkLoad(t, keys[:1000], nil, Config{PageSize: 1024}) // ~63 entries/page
	defer ix.Close()
	ref := make(map[float64]uint64, 4000)
	for _, k := range keys[:1000] {
		ref[k] = 0
	}
	for i, k := range keys[1000:] {
		ins, err := ix.Insert(k, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ins {
			t.Fatalf("duplicate reported for fresh key %v", k)
		}
		ref[k] = uint64(i)
	}
	if ix.Splits() == 0 {
		t.Fatal("no page splits after tripling the data")
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, v := range ref {
		got, ok := ix.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%v) = (%v,%v), want (%v,true)", k, got, ok, v)
		}
	}
}

func TestInsertDuplicateOverwrites(t *testing.T) {
	ix := mustBulkLoad(t, []float64{1, 2, 3}, []uint64{1, 2, 3}, Config{})
	defer ix.Close()
	ins, err := ix.Insert(2, 99)
	if err != nil || ins {
		t.Fatalf("dup insert = %v, %v", ins, err)
	}
	if v, _ := ix.Get(2); v != 99 {
		t.Fatalf("payload = %d", v)
	}
	if ix.Len() != 3 {
		t.Fatal("len changed")
	}
}

func TestDelete(t *testing.T) {
	keys := uniqueKeys(5000, 3)
	ix := mustBulkLoad(t, keys, nil, Config{PageSize: 1024})
	defer ix.Close()
	for _, k := range keys[:2500] {
		del, err := ix.Delete(k)
		if err != nil || !del {
			t.Fatalf("Delete(%v) = %v, %v", k, del, err)
		}
	}
	if ix.Len() != 2500 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if del, _ := ix.Delete(keys[0]); del {
		t.Fatal("double delete")
	}
	for _, k := range keys[2500:] {
		if _, ok := ix.Get(k); !ok {
			t.Fatalf("survivor %v lost", k)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanAcrossPages(t *testing.T) {
	n := 10000
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(i) * 2
	}
	ix := mustBulkLoad(t, keys, nil, Config{PageSize: 512})
	defer ix.Close()
	got, _, err := ix.ScanN(keys[n/2], 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("scan = %d", len(got))
	}
	for i := range got {
		if got[i] != keys[n/2+i] {
			t.Fatalf("scan[%d] = %v", i, got[i])
		}
	}
	// Full scan equals the sorted input.
	all, _, _ := ix.ScanN(math.Inf(-1), n+10)
	if len(all) != n {
		t.Fatalf("full scan = %d", len(all))
	}
	// Scan from between keys and past the end.
	first, _, _ := ix.ScanN(keys[3]+1, 1)
	if len(first) != 1 || first[0] != keys[4] {
		t.Fatalf("between-scan = %v", first)
	}
	none, _, _ := ix.ScanN(keys[n-1]+1, 5)
	if len(none) != 0 {
		t.Fatalf("past-end scan = %d", len(none))
	}
}

func TestCacheStatsExposeIOBehaviour(t *testing.T) {
	keys := uniqueKeys(20000, 4)
	cfg := Config{PageSize: 1024, CachePages: 4} // tiny cache, many pages
	ix := mustBulkLoad(t, keys, nil, cfg)
	defer ix.Close()
	ix.ResetCacheStats()
	// Random lookups across all pages: mostly misses with 4 cache pages.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		ix.Get(keys[rng.Intn(len(keys))])
	}
	cold := ix.CacheStats()
	if cold.Misses == 0 {
		t.Fatal("tiny cache produced no misses")
	}
	// Repeatedly hitting one key: all hits after the first.
	ix.ResetCacheStats()
	for i := 0; i < 1000; i++ {
		ix.Get(keys[0])
	}
	hot := ix.CacheStats()
	if hot.Hits < 999 {
		t.Fatalf("hot key hits = %d", hot.Hits)
	}
	hitRate := float64(cold.Hits) / float64(cold.Hits+cold.Misses)
	if hitRate > 0.5 {
		t.Fatalf("cold hit rate %.2f suspiciously high for a 4-page cache", hitRate)
	}
}

func TestFileBackedIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alex.pages")
	store, err := pagestore.NewFileStore(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	keys := uniqueKeys(5000, 6)
	ix, err := BulkLoad(keys, nil, store, Config{PageSize: 1024, CachePages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for _, k := range keys[:500] {
		if _, ok := ix.Get(k); !ok {
			t.Fatalf("file-backed Get(%v) failed", k)
		}
	}
	if _, err := ix.Insert(0.5, 1); err != nil {
		t.Fatal(err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSizesAccounting(t *testing.T) {
	keys := uniqueKeys(30000, 7)
	ix := mustBulkLoad(t, keys, nil, Config{})
	defer ix.Close()
	if ix.IndexSizeBytes() <= 0 {
		t.Fatal("index size")
	}
	if ix.DataSizeBytes() != ix.Pages()*pagestore.DefaultPageSize {
		t.Fatal("data size mismatch")
	}
	// The learned-index property survives paging: tiny in-memory index.
	if ix.IndexSizeBytes() > ix.DataSizeBytes()/10 {
		t.Fatalf("RMI %d B not small vs pages %d B", ix.IndexSizeBytes(), ix.DataSizeBytes())
	}
}

// Property: the paged index matches a map under random ops.
func TestQuickAgainstMap(t *testing.T) {
	type op struct {
		Kind    uint8
		Key     uint16
		Payload uint64
	}
	f := func(initRaw []uint16, ops []op) bool {
		seen := make(map[float64]bool)
		var init []float64
		for _, v := range initRaw {
			k := float64(v)
			if !seen[k] {
				seen[k] = true
				init = append(init, k)
			}
		}
		ix, err := BulkLoad(init, nil, pagestore.NewMemStore(512), Config{PageSize: 512, CachePages: 2})
		if err != nil {
			return false
		}
		defer ix.Close()
		ref := make(map[float64]uint64, len(init))
		for _, k := range init {
			ref[k] = 0
		}
		for _, o := range ops {
			k := float64(o.Key % 1024)
			switch o.Kind % 3 {
			case 0:
				ins, err := ix.Insert(k, o.Payload)
				if err != nil {
					return false
				}
				if _, existed := ref[k]; existed == ins {
					return false
				}
				ref[k] = o.Payload
			case 1:
				del, err := ix.Delete(k)
				if err != nil {
					return false
				}
				if _, existed := ref[k]; del != existed {
					return false
				}
				delete(ref, k)
			case 2:
				v, ok := ix.Get(k)
				want, existed := ref[k]
				if ok != existed || (ok && v != want) {
					return false
				}
			}
		}
		if ix.Len() != len(ref) {
			return false
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		got, _, _ := ix.ScanN(math.Inf(-1), len(ref)+1)
		want := make([]float64, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Float64s(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGetWarmCache(b *testing.B) {
	keys := uniqueKeys(1<<16, 8)
	ix, _ := BulkLoad(keys, nil, pagestore.NewMemStore(0), Config{CachePages: 1 << 12})
	defer ix.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Get(keys[i&(len(keys)-1)])
	}
}

func BenchmarkGetColdCache(b *testing.B) {
	keys := uniqueKeys(1<<16, 9)
	ix, _ := BulkLoad(keys, nil, pagestore.NewMemStore(0), Config{CachePages: 2})
	defer ix.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Get(keys[i&(len(keys)-1)])
	}
}
