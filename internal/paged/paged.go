// Package paged implements the §7 "Secondary Storage" extension of
// ALEX: the RMI (inner nodes and models) stays in memory, while every
// leaf stores a pointer to a data page in secondary storage — exactly
// the "simple extension" the paper sketches. Pages are fixed-size,
// densely sorted (gaps are an in-memory trick; on storage, dense pages
// minimize I/O), and served through an LRU cache so experiments can
// report hit ratios and physical I/O.
//
// Inserts rewrite the leaf's page; a full leaf splits like §3.4.2 —
// its model becomes an in-memory inner node routing to fresh pages.
// The index is single-writer, like the in-memory ALEX.
package paged

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/linmodel"
	"repro/internal/pagestore"
	"repro/internal/search"
)

// Config parameterizes a paged index.
type Config struct {
	// PageSize is the data page size in bytes. Default 4096 (≈255
	// key/payload pairs per page).
	PageSize int
	// CachePages is the LRU cache capacity. Default 64.
	CachePages int
	// FillFactor is the page occupancy at bulk load, leaving room for
	// inserts. Default 0.7.
	FillFactor float64
	// InnerFanout is the partitions per inner node at bulk load.
	// Default 16.
	InnerFanout int
	// SplitFanout is the pages created per leaf split. Default 2.
	SplitFanout int
}

func (c Config) withDefaults() Config {
	if c.PageSize < 256 {
		c.PageSize = pagestore.DefaultPageSize
	}
	if c.CachePages <= 0 {
		c.CachePages = 64
	}
	if c.FillFactor <= 0 || c.FillFactor > 1 {
		c.FillFactor = 0.7
	}
	if c.InnerFanout < 2 {
		c.InnerFanout = 16
	}
	if c.SplitFanout < 2 {
		c.SplitFanout = 2
	}
	return c
}

// pageHeader is count(uint32) + reserved(uint32).
const pageHeaderBytes = 8

// perPage returns the entry capacity of one page.
func (c Config) perPage() int {
	return (c.PageSize - pageHeaderBytes) / 16
}

// child is either *inner or *leaf.
type child interface{}

// inner routes keys by linear model, like core's inner nodes.
type inner struct {
	model    linmodel.Model
	children []child
}

// leaf is the in-memory handle of one data page.
type leaf struct {
	page       pagestore.PageID
	n          int // cached element count
	next, prev *leaf
}

// Index is a paged ALEX: in-memory RMI over on-storage data pages.
type Index struct {
	cfg    Config
	cache  *pagestore.Cache
	root   child
	head   *leaf
	count  int
	buf    []byte // page scratch, single-writer
	keys   []float64
	vals   []uint64
	splits uint64
}

// BulkLoad builds a paged index over keys (unsorted ok, duplicates
// rejected) on the given store.
func BulkLoad(keys []float64, payloads []uint64, store pagestore.Store, cfg Config) (*Index, error) {
	cfg = cfg.withDefaults()
	if payloads != nil && len(payloads) != len(keys) {
		return nil, errors.New("paged: len(payloads) != len(keys)")
	}
	ks := append([]float64(nil), keys...)
	ps := make([]uint64, len(keys))
	if payloads != nil {
		copy(ps, payloads)
	}
	idx := make([]int, len(ks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ks[idx[a]] < ks[idx[b]] })
	sk := make([]float64, len(ks))
	sp := make([]uint64, len(ks))
	for i, j := range idx {
		sk[i] = ks[j]
		sp[i] = ps[j]
	}
	for i := 1; i < len(sk); i++ {
		if sk[i] == sk[i-1] {
			return nil, fmt.Errorf("paged: duplicate key %v", sk[i])
		}
	}
	ix := &Index{
		cfg:   cfg,
		cache: pagestore.NewCache(store, cfg.CachePages),
		buf:   make([]byte, cfg.PageSize),
		keys:  make([]float64, 0, cfg.perPage()+1),
		vals:  make([]uint64, 0, cfg.perPage()+1),
		count: len(sk),
	}
	maxKeys := int(float64(cfg.perPage()) * cfg.FillFactor)
	if maxKeys < 1 {
		maxKeys = 1
	}
	root, err := ix.build(sk, sp, maxKeys, 0)
	if err != nil {
		return nil, err
	}
	ix.root = root
	ix.linkLeaves()
	return ix, nil
}

// maxBuildDepth guards degenerate recursion, as in core.
const maxBuildDepth = 48

// build is the adaptive-RMI bulk load (Alg 4) with pages as leaves.
func (ix *Index) build(keys []float64, payloads []uint64, maxKeys, depth int) (child, error) {
	n := len(keys)
	if n <= maxKeys || depth >= maxBuildDepth {
		return ix.newLeafPages(keys, payloads)
	}
	p := ix.cfg.InnerFanout
	if depth == 0 {
		p = (n + maxKeys - 1) / maxKeys
		if p < 2 {
			p = 2
		}
	}
	model, bounds, nonEmpty := partition(keys, p)
	if nonEmpty <= 1 {
		return ix.newLeafPages(keys, payloads)
	}
	in := &inner{model: model, children: make([]child, p)}
	for i := 0; i < p; {
		size := bounds[i+1] - bounds[i]
		if size > maxKeys {
			c, err := ix.build(keys[bounds[i]:bounds[i+1]], payloads[bounds[i]:bounds[i+1]], maxKeys, depth+1)
			if err != nil {
				return nil, err
			}
			in.children[i] = c
			i++
			continue
		}
		begin := i
		acc := size
		for i+1 < p && acc+(bounds[i+2]-bounds[i+1]) <= maxKeys {
			i++
			acc += bounds[i+1] - bounds[i]
		}
		c, err := ix.newLeafPages(keys[bounds[begin]:bounds[i+1]], payloads[bounds[begin]:bounds[i+1]])
		if err != nil {
			return nil, err
		}
		for q := begin; q <= i; q++ {
			in.children[q] = c
		}
		i++
	}
	return in, nil
}

// newLeafPages writes a segment to one page; segments above a page's
// capacity chain into an inner node of page-sized leaves (rare: only
// when the model could not subdivide).
func (ix *Index) newLeafPages(keys []float64, payloads []uint64) (child, error) {
	per := ix.cfg.perPage()
	if len(keys) <= per {
		return ix.writeNewLeaf(keys, payloads)
	}
	// Degenerate oversized segment: chain pages under a rank-spread
	// inner node (endpoint model over the segment).
	pages := (len(keys) + per - 1) / per
	model := linmodel.TrainEndpoints(keys, 0, len(keys)).Scale(float64(pages) / float64(len(keys)))
	in := &inner{model: model, children: make([]child, pages)}
	for i := 0; i < pages; i++ {
		lo := i * len(keys) / pages
		hi := (i + 1) * len(keys) / pages
		lf, err := ix.writeNewLeaf(keys[lo:hi], payloads[lo:hi])
		if err != nil {
			return nil, err
		}
		in.children[i] = lf
	}
	return in, nil
}

// writeNewLeaf allocates and writes one page.
func (ix *Index) writeNewLeaf(keys []float64, payloads []uint64) (*leaf, error) {
	if len(keys) > ix.cfg.perPage() {
		return nil, fmt.Errorf("paged: segment of %d keys exceeds page capacity %d", len(keys), ix.cfg.perPage())
	}
	id, err := ix.cache.Alloc()
	if err != nil {
		return nil, err
	}
	lf := &leaf{page: id, n: len(keys)}
	if err := ix.writePage(lf, keys, payloads); err != nil {
		return nil, err
	}
	return lf, nil
}

// writePage serializes entries into the leaf's page.
func (ix *Index) writePage(lf *leaf, keys []float64, payloads []uint64) error {
	buf := ix.buf
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(keys)))
	off := pageHeaderBytes
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(k))
		off += 8
	}
	for _, v := range payloads {
		binary.LittleEndian.PutUint64(buf[off:], v)
		off += 8
	}
	lf.n = len(keys)
	return ix.cache.Write(lf.page, buf)
}

// readPage deserializes the leaf's page into the scratch slices.
func (ix *Index) readPage(lf *leaf) ([]float64, []uint64, error) {
	if err := ix.cache.Read(lf.page, ix.buf); err != nil {
		return nil, nil, err
	}
	cnt := int(binary.LittleEndian.Uint32(ix.buf[0:4]))
	if cnt > ix.cfg.perPage() {
		return nil, nil, fmt.Errorf("paged: corrupt page %d count %d", lf.page, cnt)
	}
	keys := ix.keys[:0]
	vals := ix.vals[:0]
	off := pageHeaderBytes
	for i := 0; i < cnt; i++ {
		keys = append(keys, math.Float64frombits(binary.LittleEndian.Uint64(ix.buf[off:])))
		off += 8
	}
	for i := 0; i < cnt; i++ {
		vals = append(vals, binary.LittleEndian.Uint64(ix.buf[off:]))
		off += 8
	}
	ix.keys, ix.vals = keys, vals
	return keys, vals, nil
}

// traverse returns the leaf for key and its parent.
func (ix *Index) traverse(key float64) (*leaf, *inner) {
	var parent *inner
	cur := ix.root
	for {
		switch n := cur.(type) {
		case *inner:
			parent = n
			cur = n.children[n.model.PredictClamped(key, len(n.children))]
		case *leaf:
			return n, parent
		default:
			panic("paged: corrupt tree")
		}
	}
}

// Get returns the payload stored for key.
func (ix *Index) Get(key float64) (uint64, bool) {
	lf, _ := ix.traverse(key)
	keys, vals, err := ix.readPage(lf)
	if err != nil {
		return 0, false
	}
	i := search.LowerBound(keys, key)
	if i < len(keys) && keys[i] == key {
		return vals[i], true
	}
	return 0, false
}

// Insert adds key with payload; existing keys get their payload
// overwritten (returns false). A full page splits per §3.4.2.
func (ix *Index) Insert(key float64, payload uint64) (bool, error) {
	if math.IsNaN(key) || math.IsInf(key, 0) {
		return false, errors.New("paged: key must be finite")
	}
	lf, parent := ix.traverse(key)
	if lf.n >= ix.cfg.perPage() {
		if err := ix.splitLeaf(lf, parent); err != nil {
			return false, err
		}
		lf, _ = ix.traverse(key)
	}
	keys, vals, err := ix.readPage(lf)
	if err != nil {
		return false, err
	}
	i := search.LowerBound(keys, key)
	if i < len(keys) && keys[i] == key {
		vals[i] = payload
		return false, ix.writePage(lf, keys, vals)
	}
	keys = append(keys, 0)
	vals = append(vals, 0)
	copy(keys[i+1:], keys[i:])
	copy(vals[i+1:], vals[i:])
	keys[i] = key
	vals[i] = payload
	ix.keys, ix.vals = keys, vals
	ix.count++
	return true, ix.writePage(lf, keys, vals)
}

// splitLeaf turns a full page into an inner node with SplitFanout pages,
// distributing by the leaf's model (§3.4.2 on storage).
func (ix *Index) splitLeaf(lf *leaf, parent *inner) error {
	keys, vals, err := ix.readPage(lf)
	if err != nil {
		return err
	}
	s := ix.cfg.SplitFanout
	model, bounds, nonEmpty := partition(keys, s)
	if nonEmpty <= 1 {
		// Un-partitionable page (pathological clustering): split by rank.
		model = linmodel.TrainEndpoints(keys, 0, len(keys)).Scale(float64(s) / float64(len(keys)))
		bounds = make([]int, s+1)
		for i := 0; i <= s; i++ {
			bounds[i] = i * len(keys) / s
		}
	}
	// Copy out of the scratch slices before writing new pages.
	ck := append([]float64(nil), keys...)
	cv := append([]uint64(nil), vals...)
	in := &inner{model: model, children: make([]child, s)}
	leaves := make([]*leaf, 0, s)
	var last *leaf
	for p := 0; p < s; p++ {
		lo, hi := bounds[p], bounds[p+1]
		if last != nil && lo == hi {
			in.children[p] = last
			continue
		}
		nl, err := ix.writeNewLeaf(ck[lo:hi], cv[lo:hi])
		if err != nil {
			return err
		}
		in.children[p] = nl
		leaves = append(leaves, nl)
		last = nl
	}
	for i := 1; i < len(leaves); i++ {
		leaves[i-1].next = leaves[i]
		leaves[i].prev = leaves[i-1]
	}
	first, lastNew := leaves[0], leaves[len(leaves)-1]
	first.prev = lf.prev
	lastNew.next = lf.next
	if lf.prev != nil {
		lf.prev.next = first
	} else {
		ix.head = first
	}
	if lf.next != nil {
		lf.next.prev = lastNew
	}
	if parent == nil {
		ix.root = in
	} else {
		for i := range parent.children {
			if parent.children[i] == child(lf) {
				parent.children[i] = in
			}
		}
	}
	ix.splits++
	return nil
}

// Delete removes key, rewriting the page.
func (ix *Index) Delete(key float64) (bool, error) {
	lf, _ := ix.traverse(key)
	keys, vals, err := ix.readPage(lf)
	if err != nil {
		return false, err
	}
	i := search.LowerBound(keys, key)
	if i >= len(keys) || keys[i] != key {
		return false, nil
	}
	copy(keys[i:], keys[i+1:])
	copy(vals[i:], vals[i+1:])
	keys = keys[:len(keys)-1]
	vals = vals[:len(vals)-1]
	ix.keys, ix.vals = keys, vals
	ix.count--
	return true, ix.writePage(lf, keys, vals)
}

// Scan visits elements with key >= start in order until visit returns
// false; each page is read once through the cache.
func (ix *Index) Scan(start float64, visit func(key float64, payload uint64) bool) (int, error) {
	lf, _ := ix.traverse(start)
	n := 0
	for lf != nil {
		keys, vals, err := ix.readPage(lf)
		if err != nil {
			return n, err
		}
		i := 0
		if n == 0 {
			i = search.LowerBound(keys, start)
		}
		for ; i < len(keys); i++ {
			n++
			if !visit(keys[i], vals[i]) {
				return n, nil
			}
		}
		lf = lf.next
	}
	return n, nil
}

// ScanN collects up to max elements from the first key >= start.
func (ix *Index) ScanN(start float64, max int) ([]float64, []uint64, error) {
	keys := make([]float64, 0, max)
	vals := make([]uint64, 0, max)
	_, err := ix.Scan(start, func(k float64, v uint64) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return len(keys) < max
	})
	return keys, vals, err
}

// Len returns the number of stored elements.
func (ix *Index) Len() int { return ix.count }

// Pages returns the number of allocated data pages.
func (ix *Index) Pages() int { return ix.cache.NumPages() }

// Splits returns the number of leaf splits performed.
func (ix *Index) Splits() uint64 { return ix.splits }

// CacheStats returns the page cache counters.
func (ix *Index) CacheStats() pagestore.Stats { return ix.cache.Stats() }

// ResetCacheStats zeroes the cache counters (e.g. after warmup).
func (ix *Index) ResetCacheStats() { ix.cache.ResetStats() }

// IndexSizeBytes accounts the in-memory RMI, as §5.1 does for ALEX.
func (ix *Index) IndexSizeBytes() int {
	const modelBytes, headerBytes = 16, 24
	total := 0
	var walk func(c child)
	walk = func(c child) {
		switch n := c.(type) {
		case *inner:
			total += modelBytes + headerBytes + 8*len(n.children)
			var last child
			for _, ch := range n.children {
				if ch == last {
					continue
				}
				last = ch
				walk(ch)
			}
		case *leaf:
			total += headerBytes + 4 + 16 // header + page id + links
		}
	}
	walk(ix.root)
	return total
}

// DataSizeBytes is the allocated page bytes on storage.
func (ix *Index) DataSizeBytes() int { return ix.Pages() * ix.cfg.PageSize }

// Close releases the cache and backing store.
func (ix *Index) Close() error { return ix.cache.Close() }

// linkLeaves rebuilds the in-memory sibling chain in key order.
func (ix *Index) linkLeaves() {
	var prev *leaf
	ix.head = nil
	var walk func(c child)
	walk = func(c child) {
		switch n := c.(type) {
		case *inner:
			var last child
			for _, ch := range n.children {
				if ch == last {
					continue
				}
				last = ch
				walk(ch)
			}
		case *leaf:
			if prev == n {
				return
			}
			n.prev = prev
			n.next = nil
			if prev != nil {
				prev.next = n
			} else {
				ix.head = n
			}
			prev = n
		}
	}
	walk(ix.root)
}

// CheckInvariants verifies page contents, chain order and the count.
func (ix *Index) CheckInvariants() error {
	total := 0
	prev := math.Inf(-1)
	for lf := ix.head; lf != nil; lf = lf.next {
		keys, _, err := ix.readPage(lf)
		if err != nil {
			return err
		}
		if len(keys) != lf.n {
			return fmt.Errorf("paged: cached count %d != page count %d", lf.n, len(keys))
		}
		for _, k := range keys {
			if k <= prev {
				return fmt.Errorf("paged: key %v out of global order", k)
			}
			prev = k
		}
		if lf.next != nil && lf.next.prev != lf {
			return errors.New("paged: broken prev link")
		}
		total += len(keys)
	}
	if total != ix.count {
		return fmt.Errorf("paged: page totals %d != count %d", total, ix.count)
	}
	return nil
}

// partition mirrors core's bulk-load partitioning (kept local: core's is
// unexported and the paged index is deliberately self-contained). Like
// core, it falls back to an endpoint fit when least squares degenerates
// or loses monotonicity to float cancellation.
func partition(keys []float64, p int) (linmodel.Model, []int, int) {
	n := len(keys)
	model := linmodel.Train(keys).Scale(float64(p) / float64(n))
	usable := model.Slope >= 0 && !math.IsInf(model.Slope, 0) && !math.IsNaN(model.Slope)
	var bounds []int
	nonEmpty := 0
	if usable {
		bounds, nonEmpty = boundaries(keys, model, p)
	}
	if nonEmpty <= 1 && n > 1 {
		model = linmodel.TrainEndpoints(keys, 0, n).Scale(float64(p) / float64(n))
		bounds, nonEmpty = boundaries(keys, model, p)
	}
	return model, bounds, nonEmpty
}

func boundaries(keys []float64, model linmodel.Model, p int) ([]int, int) {
	n := len(keys)
	bounds := make([]int, p+1)
	bounds[p] = n
	for i := 1; i < p; i++ {
		target := float64(i)
		bounds[i] = sort.Search(n, func(j int) bool { return model.Predict(keys[j]) >= target })
	}
	for i := 1; i <= p; i++ {
		if bounds[i] < bounds[i-1] {
			bounds[i] = bounds[i-1]
		}
	}
	nonEmpty := 0
	for i := 0; i < p; i++ {
		if bounds[i+1] > bounds[i] {
			nonEmpty++
		}
	}
	return bounds, nonEmpty
}
