package datasets

import "math"

// Zipfian generates ranks in [0, n) with a Zipf distribution of the
// YCSB flavour (Gray et al.'s algorithm, the one the YCSB workload
// generator uses), which — unlike math/rand.Zipf — supports the YCSB
// constant θ = 0.99 < 1. The paper's workloads select lookup keys
// "according to a Zipfian distribution" (§5.1.2).
//
// The generator supports growing n incrementally (as inserts add keys)
// by extending the zeta sum, which is how YCSB handles expanding key
// spaces.
type Zipfian struct {
	n          int
	theta      float64
	alpha      float64
	zetan      float64
	zeta2theta float64
	eta        float64
	rng        rngSource
}

// rngSource is the minimal randomness Zipfian needs; *math/rand.Rand
// satisfies it.
type rngSource interface {
	Float64() float64
}

// ZipfTheta is the YCSB default skew constant.
const ZipfTheta = 0.99

// NewZipfian returns a Zipfian generator over [0, n) with constant theta
// (use ZipfTheta for the YCSB default). n must be >= 1.
func NewZipfian(rng rngSource, n int, theta float64) *Zipfian {
	if n < 1 {
		n = 1
	}
	z := &Zipfian{theta: theta, rng: rng}
	z.zeta2theta = zetaStatic(2, theta)
	z.grow(n)
	return z
}

// zetaStatic computes sum_{i=1..n} 1/i^theta.
func zetaStatic(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// grow extends the generator to cover [0, n), incrementally extending
// the zeta sum.
func (z *Zipfian) grow(n int) {
	if n <= z.n {
		return
	}
	for i := z.n + 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), z.theta)
	}
	z.n = n
	z.alpha = 1 / (1 - z.theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
}

// SetN grows the domain to n (shrinking is ignored; YCSB key spaces only
// grow).
func (z *Zipfian) SetN(n int) { z.grow(n) }

// N returns the current domain size.
func (z *Zipfian) N() int { return z.n }

// Next returns the next rank in [0, n). Rank 0 is the most popular.
func (z *Zipfian) Next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	r := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	if r < 0 {
		r = 0
	}
	return r
}

// Scrambled returns the next rank passed through a stateless scramble,
// so popularity is spread over the key space instead of clustering at
// the smallest ranks — YCSB's "scrambled zipfian". The result stays in
// [0, n).
func (z *Zipfian) Scrambled() int {
	return int(fnvHash64(uint64(z.Next())) % uint64(z.n))
}

// fnvHash64 is YCSB's FNV-1a 64-bit hash used for scrambling.
func fnvHash64(v uint64) uint64 {
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}
