// Package datasets synthesizes the four evaluation datasets of Table 1.
// The paper uses Open Street Maps dumps (longitudes, longlat) plus
// generated lognormal and YCSB keys; we have no OSM data, so the
// geographic datasets are synthesized from a deterministic mixture of
// population clusters that preserves the properties the experiments
// depend on (Appendix C): longitudes has a smooth, locally-linear but
// globally non-linear CDF; longlat applies the paper's own compound-key
// transform k = 180·round(lon) + lat, producing the step-function CDF of
// Fig 14; lognormal follows the paper's exact recipe (exp(N(0,2))·1e9,
// floored); YCSB keys are uniform integers.
//
// All keys are float64. Integer-valued datasets stay below 2^53 so the
// float64 representation is exact. Generators are deterministic in
// (n, seed), reject duplicates, and return keys in shuffled order, which
// is how the paper feeds them to the indexes ("randomly shuffled to
// simulate a uniform dataset distribution over time", §5.1.1).
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Name identifies one of the paper's datasets.
type Name string

// The four datasets of Table 1.
const (
	Longitudes Name = "longitudes"
	LongLat    Name = "longlat"
	Lognormal  Name = "lognormal"
	YCSB       Name = "ycsb"
)

// LongitudesDrifted is a longitudes variant whose local density drifts
// across the key space: the western hemisphere keeps the smooth cluster
// mixture, while eastward the mass concentrates into progressively
// sharper spikes. One fixed fanout cannot serve both regimes — the
// smooth half wants few large well-modeled leaves while the spiky half
// wants deep subdivision — making it the stress dataset for
// cost-optimal (adaptive-fanout) bulk loading. Not part of Table 1.
const LongitudesDrifted Name = "longitudes-drifted"

// All lists the datasets in the paper's column order.
var All = []Name{Longitudes, LongLat, Lognormal, YCSB}

// PayloadBytes returns the payload size Table 1 assigns to the dataset:
// 80 bytes for YCSB, 8 bytes for the rest.
func (n Name) PayloadBytes() int {
	if n == YCSB {
		return 80
	}
	return 8
}

// KeyType returns the paper's key type description for the dataset.
func (n Name) KeyType() string {
	switch n {
	case Longitudes, LongLat, LongitudesDrifted:
		return "double"
	default:
		return "64-bit int"
	}
}

// Generate returns n unique keys for the named dataset, shuffled
// deterministically by seed. It panics on an unknown name (the set is
// closed, Table 1).
func Generate(name Name, n int, seed int64) []float64 {
	switch name {
	case Longitudes:
		return GenLongitudes(n, seed)
	case LongLat:
		return GenLongLat(n, seed)
	case Lognormal:
		return GenLognormal(n, seed)
	case YCSB:
		return GenYCSB(n, seed)
	case LongitudesDrifted:
		return GenLongitudesDrifted(n, seed)
	default:
		panic(fmt.Sprintf("datasets: unknown dataset %q", name))
	}
}

// cluster is a longitude population center for the synthetic OSM stand-in.
type cluster struct {
	center float64
	sigma  float64
	weight float64
}

// worldClusters builds a deterministic set of population clusters. The
// real OSM longitude distribution concentrates around inhabited
// longitudes (Europe, South/East Asia, the Americas) with smooth local
// behaviour; a weighted Gaussian mixture reproduces that shape.
func worldClusters(rng *rand.Rand) []cluster {
	// Anchors roughly at inhabited longitude bands, with deterministic
	// jitter so different seeds explore slightly different mixtures.
	anchors := []struct{ c, w float64 }{
		{-122, 0.06}, {-99, 0.07}, {-74, 0.08}, {-47, 0.05}, {-3, 0.09},
		{7, 0.08}, {20, 0.06}, {37, 0.05}, {55, 0.04}, {77, 0.10},
		{91, 0.05}, {104, 0.09}, {116, 0.08}, {127, 0.04}, {139, 0.06},
	}
	clusters := make([]cluster, 0, len(anchors))
	for _, a := range anchors {
		clusters = append(clusters, cluster{
			center: a.c + rng.NormFloat64()*1.5,
			sigma:  2 + rng.Float64()*8,
			weight: a.w * (0.8 + rng.Float64()*0.4),
		})
	}
	return clusters
}

// sampleLongitude draws one longitude from the cluster mixture with a
// uniform background component, clamped to [-180, 180].
func sampleLongitude(rng *rand.Rand, clusters []cluster, totalWeight float64) float64 {
	// 12% uniform background: oceans, roads, sparse regions.
	if rng.Float64() < 0.12 {
		return rng.Float64()*360 - 180
	}
	r := rng.Float64() * totalWeight
	for _, c := range clusters {
		r -= c.weight
		if r <= 0 {
			v := c.center + rng.NormFloat64()*c.sigma
			if v < -180 {
				v = -180 + math.Mod(-v-180, 360)
			}
			if v > 180 {
				v = 180 - math.Mod(v-180, 360)
			}
			return v
		}
	}
	return rng.Float64()*360 - 180
}

// GenLongitudes synthesizes the longitudes dataset: unique doubles in
// [-180, 180] from a population-weighted mixture.
func GenLongitudes(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	clusters := worldClusters(rng)
	var total float64
	for _, c := range clusters {
		total += c.weight
	}
	seen := make(map[float64]bool, n)
	keys := make([]float64, 0, n)
	for len(keys) < n {
		k := sampleLongitude(rng, clusters, total)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// GenLongitudesDrifted synthesizes the drifted-longitudes dataset (see
// LongitudesDrifted): 55% of the mass is the smooth cluster mixture,
// 45% is drawn from spike clusters marching eastward across [0, 170]
// with geometrically shrinking spread, so local key density spans
// several orders of magnitude within one dataset.
func GenLongitudesDrifted(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	clusters := worldClusters(rng)
	var total float64
	for _, c := range clusters {
		total += c.weight
	}
	// Spikes sharpen eastward: the same key mass lands in an
	// exponentially narrower longitude band each step.
	const spikes = 12
	centers := make([]float64, spikes)
	sigmas := make([]float64, spikes)
	for i := range centers {
		centers[i] = float64(i)*170/spikes + rng.NormFloat64()
		sigmas[i] = 4 * math.Pow(0.45, float64(i))
	}
	seen := make(map[float64]bool, n)
	keys := make([]float64, 0, n)
	for len(keys) < n {
		var k float64
		if rng.Float64() < 0.55 {
			k = sampleLongitude(rng, clusters, total)
		} else {
			i := rng.Intn(spikes)
			k = centers[i] + rng.NormFloat64()*sigmas[i]
			if k < -180 || k > 180 {
				continue
			}
		}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// GenLongLat synthesizes the longlat dataset with the paper's compound
// transform (Appendix C): round the longitude to the nearest integer
// degree, multiply by 180, add the latitude. Iterating the keys in
// sorted order walks the world one longitude strip at a time, giving the
// step-function CDF of Fig 14.
func GenLongLat(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	clusters := worldClusters(rng)
	var total float64
	for _, c := range clusters {
		total += c.weight
	}
	seen := make(map[float64]bool, n)
	keys := make([]float64, 0, n)
	for len(keys) < n {
		lon := sampleLongitude(rng, clusters, total)
		// Latitudes concentrate in the temperate band.
		lat := rng.NormFloat64() * 25
		if lat > 90 {
			lat = 90
		}
		if lat < -90 {
			lat = -90
		}
		k := 180*math.Round(lon) + lat
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// GenLognormal follows Appendix C exactly: 190M values (here: n) drawn
// from lognormal(0, σ=2), multiplied by 1e9 and rounded down.
func GenLognormal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[float64]bool, n)
	keys := make([]float64, 0, n)
	for len(keys) < n {
		k := math.Floor(math.Exp(rng.NormFloat64()*2) * 1e9)
		if k >= 1<<53 { // keep float64 integer-exact
			continue
		}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// GenYCSB synthesizes the YCSB dataset: uniformly distributed user-ID
// integers (kept below 2^53 for float64 exactness).
func GenYCSB(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[float64]bool, n)
	keys := make([]float64, 0, n)
	for len(keys) < n {
		k := float64(rng.Int63n(1 << 53))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// Sorted returns a sorted copy of keys.
func Sorted(keys []float64) []float64 {
	out := append([]float64(nil), keys...)
	sort.Float64s(out)
	return out
}

// Shuffle permutes keys in place, deterministically by seed.
func Shuffle(keys []float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
}

// CDFPoint is one (key, cumulative fraction) sample.
type CDFPoint struct {
	Key  float64
	Frac float64
}

// CDF samples the empirical CDF of keys at `points` evenly spaced ranks
// (Fig 13). keys need not be sorted.
func CDF(keys []float64, points int) []CDFPoint {
	if len(keys) == 0 || points <= 0 {
		return nil
	}
	sorted := Sorted(keys)
	if points > len(sorted) {
		points = len(sorted)
	}
	out := make([]CDFPoint, points)
	for i := 0; i < points; i++ {
		rank := i * (len(sorted) - 1) / max(points-1, 1)
		out[i] = CDFPoint{Key: sorted[rank], Frac: float64(rank) / float64(len(sorted)-1)}
	}
	return out
}

// NonLinearity quantifies how hard a dataset is to model with piecewise
// linear functions: it fits a straight line to each of `pieces` equal
// rank ranges and returns the mean absolute rank error normalized by the
// range size. Appendix C's observation that longlat is "much more
// non-linear at a smaller scale" shows up as a higher score.
func NonLinearity(keys []float64, pieces int) float64 {
	sorted := Sorted(keys)
	n := len(sorted)
	if n < 2*pieces || pieces <= 0 {
		return 0
	}
	per := n / pieces
	var total float64
	for p := 0; p < pieces; p++ {
		lo := p * per
		hi := lo + per
		span := sorted[hi-1] - sorted[lo]
		if span <= 0 {
			continue
		}
		slope := float64(per-1) / span
		var sum float64
		for i := lo; i < hi; i++ {
			pred := slope * (sorted[i] - sorted[lo])
			sum += math.Abs(pred - float64(i-lo))
		}
		total += sum / float64(per) / float64(per)
	}
	return total / float64(pieces)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
