package datasets

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestGenerateAllUniqueAndSized(t *testing.T) {
	for _, name := range All {
		keys := Generate(name, 20000, 42)
		if len(keys) != 20000 {
			t.Fatalf("%s: %d keys", name, len(keys))
		}
		seen := make(map[float64]bool, len(keys))
		for _, k := range keys {
			if math.IsNaN(k) || math.IsInf(k, 0) {
				t.Fatalf("%s: non-finite key %v", name, k)
			}
			if seen[k] {
				t.Fatalf("%s: duplicate key %v", name, k)
			}
			seen[k] = true
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, name := range All {
		a := Generate(name, 5000, 7)
		b := Generate(name, 5000, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic at %d", name, i)
			}
		}
		c := Generate(name, 5000, 8)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seed has no effect", name)
		}
	}
}

func TestGenerateUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Generate("nope", 10, 1)
}

func TestLongitudesRange(t *testing.T) {
	for _, k := range GenLongitudes(20000, 1) {
		if k < -180 || k > 180 {
			t.Fatalf("longitude %v out of range", k)
		}
	}
}

func TestLongitudesNonUniform(t *testing.T) {
	// Population clustering: the middle half of the domain should not
	// hold exactly half the keys.
	keys := GenLongitudes(50000, 2)
	inBand := 0
	for _, k := range keys {
		if k > -90 && k < 90 {
			inBand++
		}
	}
	frac := float64(inBand) / float64(len(keys))
	if frac > 0.45 && frac < 0.55 {
		t.Fatalf("longitudes look uniform (band fraction %v)", frac)
	}
}

func TestLongLatTransform(t *testing.T) {
	keys := GenLongLat(20000, 3)
	for _, k := range keys {
		if k < 180*(-180)-90 || k > 180*180+90 {
			t.Fatalf("longlat key %v outside transform range", k)
		}
	}
}

func TestLongLatMoreNonLinearThanLongitudes(t *testing.T) {
	// Appendix C: at local scale, longlat's CDF is a step function and
	// much harder to model piecewise-linearly than longitudes.
	lon := GenLongitudes(40000, 4)
	ll := GenLongLat(40000, 4)
	nlLon := NonLinearity(lon, 64)
	nlLL := NonLinearity(ll, 64)
	if nlLL <= nlLon {
		t.Fatalf("longlat non-linearity %v should exceed longitudes %v", nlLL, nlLon)
	}
}

func TestLognormalSkew(t *testing.T) {
	keys := GenLognormal(50000, 5)
	for _, k := range keys {
		if k < 0 || k != math.Floor(k) {
			t.Fatalf("lognormal key %v not a non-negative integer", k)
		}
	}
	s := Sorted(keys)
	median := s[len(s)/2]
	mean := 0.0
	for _, k := range s {
		mean += k
	}
	mean /= float64(len(s))
	if mean < 3*median {
		t.Fatalf("lognormal should be heavily right-skewed: mean %v, median %v", mean, median)
	}
}

func TestYCSBUniform(t *testing.T) {
	keys := GenYCSB(50000, 6)
	for _, k := range keys {
		if k < 0 || k >= 1<<53 || k != math.Floor(k) {
			t.Fatalf("ycsb key %v out of integer range", k)
		}
	}
	// Quarters of the domain should hold roughly a quarter each.
	buckets := make([]int, 4)
	for _, k := range keys {
		buckets[int(k/(1<<53)*4)]++
	}
	for i, b := range buckets {
		frac := float64(b) / float64(len(keys))
		if frac < 0.2 || frac > 0.3 {
			t.Fatalf("ycsb bucket %d fraction %v not ~0.25", i, frac)
		}
	}
}

func TestPayloadBytesAndKeyType(t *testing.T) {
	if YCSB.PayloadBytes() != 80 {
		t.Fatal("ycsb payload")
	}
	if Longitudes.PayloadBytes() != 8 {
		t.Fatal("longitudes payload")
	}
	if Longitudes.KeyType() != "double" || Lognormal.KeyType() != "64-bit int" {
		t.Fatal("key types")
	}
}

func TestSortedAndShuffle(t *testing.T) {
	keys := []float64{3, 1, 2}
	s := Sorted(keys)
	if !sort.Float64sAreSorted(s) {
		t.Fatal("not sorted")
	}
	if keys[0] != 3 {
		t.Fatal("Sorted mutated input")
	}
	big := GenYCSB(1000, 7)
	cp := append([]float64(nil), big...)
	Shuffle(cp, 9)
	diff := 0
	for i := range cp {
		if cp[i] != big[i] {
			diff++
		}
	}
	if diff < 900 {
		t.Fatalf("shuffle moved only %d elements", diff)
	}
	// Deterministic shuffle.
	cp2 := append([]float64(nil), big...)
	Shuffle(cp2, 9)
	for i := range cp {
		if cp[i] != cp2[i] {
			t.Fatal("shuffle not deterministic")
		}
	}
}

func TestCDF(t *testing.T) {
	keys := GenYCSB(10000, 8)
	pts := CDF(keys, 100)
	if len(pts) != 100 {
		t.Fatalf("%d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Key < pts[i-1].Key || pts[i].Frac < pts[i-1].Frac {
			t.Fatal("CDF not monotone")
		}
	}
	if pts[0].Frac != 0 || pts[len(pts)-1].Frac != 1 {
		t.Fatalf("CDF endpoints %v..%v", pts[0].Frac, pts[len(pts)-1].Frac)
	}
	if CDF(nil, 10) != nil {
		t.Fatal("empty CDF")
	}
}

func TestZipfianDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	z := NewZipfian(rng, 10000, ZipfTheta)
	counts := make(map[int]int)
	draws := 200000
	for i := 0; i < draws; i++ {
		r := z.Next()
		if r < 0 || r >= 10000 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must be far more popular than a uniform draw (20/draw).
	if counts[0] < draws/100 {
		t.Fatalf("rank 0 drawn %d times; not skewed", counts[0])
	}
	// Monotone-ish decay: rank 0 >> rank 100.
	if counts[0] <= counts[100] {
		t.Fatal("no popularity decay")
	}
}

func TestZipfianGrow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	z := NewZipfian(rng, 100, ZipfTheta)
	z.SetN(1000)
	if z.N() != 1000 {
		t.Fatalf("N = %d", z.N())
	}
	seenHigh := false
	for i := 0; i < 50000; i++ {
		r := z.Next()
		if r >= 1000 {
			t.Fatalf("rank %d out of grown range", r)
		}
		if r >= 100 {
			seenHigh = true
		}
	}
	if !seenHigh {
		t.Fatal("grown domain never sampled")
	}
	z.SetN(10) // shrink ignored
	if z.N() != 1000 {
		t.Fatal("shrink was not ignored")
	}
}

func TestZipfianScrambledSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	z := NewZipfian(rng, 100000, ZipfTheta)
	// Scrambling should spread the hottest ranks over the domain: the
	// first decile should no longer dominate.
	decile := 0
	for i := 0; i < 50000; i++ {
		if z.Scrambled() < 10000 {
			decile++
		}
	}
	frac := float64(decile) / 50000
	if frac > 0.3 {
		t.Fatalf("scrambled zipf still clusters in first decile: %v", frac)
	}
}

func TestNonLinearityZeroForLine(t *testing.T) {
	keys := make([]float64, 10000)
	for i := range keys {
		keys[i] = float64(i)
	}
	if nl := NonLinearity(keys, 16); nl > 1e-9 {
		t.Fatalf("perfectly linear data scored %v", nl)
	}
}

func BenchmarkGenLongitudes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenLongitudes(10000, int64(i))
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	z := NewZipfian(rng, 1<<20, ZipfTheta)
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}
