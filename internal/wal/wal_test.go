package wal

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func sampleRecords() []*Record {
	return []*Record{
		{Op: OpInsert, Keys: []float64{1.5}, Payloads: []uint64{10}},
		{Op: OpDelete, Keys: []float64{-2.25}},
		{Op: OpInsertBatch, Keys: []float64{1, 2, 3}, Payloads: []uint64{4, 5, 6}},
		{Op: OpDeleteBatch, Keys: []float64{7, 8}},
		{Op: OpMerge, Keys: []float64{9, 10}, Payloads: []uint64{11, 12}},
		{Op: OpUpdate, Keys: []float64{3.25}, Payloads: []uint64{13}},
		{Op: OpCheckpoint, Seq: 42},
		{Op: OpInsertBatch, Keys: []float64{}, Payloads: []uint64{}},
	}
}

// encodeStream frames recs into a full segment image (magic included).
func encodeStream(t *testing.T, recs []*Record) []byte {
	t.Helper()
	buf := []byte(Magic)
	for _, r := range recs {
		var err error
		buf, err = AppendRecord(buf, r)
		if err != nil {
			t.Fatalf("AppendRecord: %v", err)
		}
	}
	return buf
}

// readAll decodes records until EOF or corruption.
func readAll(t *testing.T, stream []byte) (recs []*Record, corrupt bool) {
	t.Helper()
	rd, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("NewReader: %v", err)
		}
		return nil, true
	}
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return recs, false
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Next: %v", err)
			}
			return recs, true
		}
		recs = append(recs, rec)
	}
}

func recordsEqual(a, b *Record) bool {
	if a.Op != b.Op || a.Seq != b.Seq || len(a.Keys) != len(b.Keys) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
	}
	// Normalize nil vs empty payload slices before comparing.
	return reflect.DeepEqual(append([]uint64{}, a.Payloads...), append([]uint64{}, b.Payloads...))
}

func TestWALCodecRoundTrip(t *testing.T) {
	want := sampleRecords()
	got, corrupt := readAll(t, encodeStream(t, want))
	if corrupt {
		t.Fatal("round trip reported corruption")
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(got[i], want[i]) {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestWALCodecRejects(t *testing.T) {
	if _, err := AppendRecord(nil, &Record{Op: Op(99)}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := AppendRecord(nil, &Record{Op: OpInsert, Keys: []float64{1}, Payloads: nil}); err == nil {
		t.Error("insert without payload accepted")
	}
	big := make([]float64, MaxRecordPairs+1)
	if _, err := AppendRecord(nil, &Record{Op: OpDeleteBatch, Keys: big}); err == nil {
		t.Error("oversized batch accepted")
	}
}

// TestWALTornTail truncates a valid stream at every possible byte
// offset: the decoded records must always be a prefix of the originals
// and decoding must never error fatally or panic.
func TestWALTornTail(t *testing.T) {
	want := sampleRecords()
	stream := encodeStream(t, want)
	for cut := 0; cut <= len(stream); cut++ {
		got, _ := readAll(t, stream[:cut])
		if len(got) > len(want) {
			t.Fatalf("cut %d: decoded %d > %d records", cut, len(got), len(want))
		}
		for i := range got {
			if !recordsEqual(got[i], want[i]) {
				t.Fatalf("cut %d: record %d diverged", cut, i)
			}
		}
	}
}

// TestWALCorruptByte flips each byte of the stream in turn; decoding
// must yield a prefix of the original records (CRC catches the flip).
func TestWALCorruptByte(t *testing.T) {
	want := sampleRecords()
	stream := encodeStream(t, want)
	for pos := 0; pos < len(stream); pos++ {
		mut := append([]byte(nil), stream...)
		mut[pos] ^= 0xff
		got, _ := readAll(t, mut)
		for i := range got {
			if i < len(want) && !recordsEqual(got[i], want[i]) {
				// The flipped byte landed in this record yet it decoded:
				// only acceptable if CRC happened to collide, which
				// crc32c cannot for a single-byte flip.
				t.Fatalf("flip at %d: record %d decoded differently", pos, i)
			}
		}
	}
}

// TestWALZeroRecord: a zero length prefix (e.g. preallocated zero pages
// after a crash) stops replay cleanly.
func TestWALZeroRecord(t *testing.T) {
	stream := encodeStream(t, sampleRecords()[:2])
	stream = append(stream, make([]byte, 64)...)
	got, corrupt := readAll(t, stream)
	if !corrupt || len(got) != 2 {
		t.Fatalf("got %d records, corrupt=%v; want 2, true", len(got), corrupt)
	}
}

// TestWALNonFiniteKeyRejected: even a CRC-valid record cannot smuggle a
// NaN key into replay.
func TestWALNonFiniteKeyRejected(t *testing.T) {
	stream := []byte(Magic)
	stream, err := AppendRecord(stream, &Record{Op: OpInsert, Keys: []float64{math.NaN()}, Payloads: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	got, corrupt := readAll(t, stream)
	if !corrupt || len(got) != 0 {
		t.Fatalf("NaN key decoded: %d records, corrupt=%v", len(got), corrupt)
	}
}

func TestWALWriterReadBack(t *testing.T) {
	for _, policy := range []Policy{SyncAlways, SyncInterval, SyncNever} {
		dir := t.TempDir()
		path := filepath.Join(dir, "seg.log")
		w, err := NewWriter(path, policy, 5*time.Millisecond, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := sampleRecords()
		for _, r := range want {
			if err := w.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(want[0]); !errors.Is(err, ErrClosed) {
			t.Fatalf("append after close: %v", err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got, corrupt := readAll(t, data)
		if corrupt || len(got) != len(want) {
			t.Fatalf("policy %d: %d records, corrupt=%v", policy, len(got), corrupt)
		}
	}
}

// TestWALGroupCommit: 8 concurrent appenders under SyncAlways must
// coalesce fsyncs — strictly fewer syncs than appends.
func TestWALGroupCommit(t *testing.T) {
	w, err := NewWriter(filepath.Join(t.TempDir(), "seg.log"), SyncAlways, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := &Record{Op: OpInsert, Keys: []float64{float64(g*perWriter + i)}, Payloads: []uint64{uint64(i)}}
				if err := w.Append(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Appends != writers*perWriter {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if st.Syncs == 0 || st.Syncs >= st.Appends {
		t.Fatalf("syncs = %d for %d appends: group commit not coalescing", st.Syncs, st.Appends)
	}
	t.Logf("group commit: %d appends, %d fsyncs (%.3f fsyncs/op)",
		st.Appends, st.Syncs, float64(st.Syncs)/float64(st.Appends))
}

func TestWALLogRotateAndRemove(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Record{Op: OpInsert, Keys: []float64{1}, Payloads: []uint64{2}}
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil || len(segs) != 2 {
		t.Fatalf("segments = %v, err %v; want 2", segs, err)
	}
	// Replay across both segments sees both records.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	n, torn, err := ReplaySegments(segs, func(*Record) error { return nil })
	if err != nil || torn || n != 2 {
		t.Fatalf("replay: n=%d torn=%v err=%v", n, torn, err)
	}
	if err := l.RemoveObsolete(); err != nil {
		t.Fatal(err)
	}
	segs, _ = Segments(dir)
	if len(segs) != 1 || segs[0].Seq != l.CurrentSeq() {
		t.Fatalf("after remove: %v, cur %d", segs, l.CurrentSeq())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

// TestWALLogConcurrentAppendRotate races appenders against rotations;
// every acked append must survive into some segment.
func TestWALLogConcurrentAppendRotate(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 100
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := &Record{Op: OpInsert, Keys: []float64{float64(g*perWriter + i)}, Payloads: []uint64{1}}
				if err := l.Append(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 5; i++ {
		if err := l.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := Segments(dir)
	seen := map[float64]bool{}
	n, torn, err := ReplaySegments(segs, func(r *Record) error {
		seen[r.Keys[0]] = true
		return nil
	})
	if err != nil || torn {
		t.Fatalf("replay: n=%d torn=%v err=%v", n, torn, err)
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("replayed %d distinct keys, want %d", len(seen), writers*perWriter)
	}
}
