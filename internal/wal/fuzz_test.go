package wal

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// fuzzSeed builds a small valid segment image for the fuzz corpus.
func fuzzSeed() []byte {
	buf := []byte(Magic)
	for _, r := range []*Record{
		{Op: OpInsert, Keys: []float64{3.5}, Payloads: []uint64{7}},
		{Op: OpInsertBatch, Keys: []float64{1, 2}, Payloads: []uint64{3, 4}},
		{Op: OpDeleteBatch, Keys: []float64{1}},
		{Op: OpUpdate, Keys: []float64{2}, Payloads: []uint64{5}},
		{Op: OpCheckpoint, Seq: 9},
	} {
		buf, _ = AppendRecord(buf, r)
	}
	return buf
}

// FuzzReader feeds arbitrary bytes to the segment reader: it must never
// panic, must terminate, and every record it does yield must be
// structurally valid (finite keys, parallel payloads).
func FuzzReader(f *testing.F) {
	f.Add(fuzzSeed())
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add([]byte(Magic + "\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add(append([]byte(Magic), 0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4))
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("NewReader error %v is not ErrCorrupt", err)
			}
			return
		}
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Next error %v is not ErrCorrupt", err)
				}
				return
			}
			for _, k := range rec.Keys {
				if math.IsNaN(k) || math.IsInf(k, 0) {
					t.Fatalf("reader yielded non-finite key %v", k)
				}
			}
			switch rec.Op {
			case OpInsert, OpUpdate, OpInsertBatch, OpMerge:
				if len(rec.Payloads) != len(rec.Keys) {
					t.Fatalf("op %d: %d payloads for %d keys", rec.Op, len(rec.Payloads), len(rec.Keys))
				}
			case OpDelete, OpDeleteBatch, OpCheckpoint:
			default:
				t.Fatalf("reader yielded unknown op %d", rec.Op)
			}
		}
	})
}

// FuzzTruncatedStream cuts a valid stream at an arbitrary offset and
// flips one byte: decoding must stop at or before the damage and yield
// only records identical to the originals.
func FuzzTruncatedStream(f *testing.F) {
	f.Add(uint16(0), uint16(0), byte(0xff))
	f.Add(uint16(20), uint16(9), byte(1))
	f.Add(uint16(1000), uint16(30), byte(0x80))
	f.Fuzz(func(t *testing.T, cut, pos uint16, flip byte) {
		orig := fuzzSeed()
		want := decodeValid(t, orig)
		mut := append([]byte(nil), orig...)
		if int(cut) < len(mut) {
			mut = mut[:cut]
		}
		if len(mut) > 0 {
			mut[int(pos)%len(mut)] ^= flip
		}
		got := decodeValid(t, mut)
		if len(got) > len(want) {
			t.Fatalf("mutated stream yielded %d records, original %d", len(got), len(want))
		}
		for i := range got {
			if !fuzzRecordsEqual(got[i], want[i]) {
				t.Fatalf("record %d diverged after mutation", i)
			}
		}
	})
}

func decodeValid(t *testing.T, data []byte) []*Record {
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return nil
	}
	var recs []*Record
	for {
		rec, err := rd.Next()
		if err != nil {
			return recs
		}
		recs = append(recs, rec)
	}
}

func fuzzRecordsEqual(a, b *Record) bool {
	if a.Op != b.Op || a.Seq != b.Seq || len(a.Keys) != len(b.Keys) || len(a.Payloads) != len(b.Payloads) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
	}
	for i := range a.Payloads {
		if a.Payloads[i] != b.Payloads[i] {
			return false
		}
	}
	return true
}
