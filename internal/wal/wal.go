// Package wal implements the write-ahead log behind alex.DurableIndex:
// an append-only sequence of length-prefixed, CRC-checked mutation
// records stored in numbered segment files.
//
// The on-disk format of a segment is
//
//	magic "ALEXWAL1" (8 bytes)
//	record*
//
// and each record is
//
//	u32 little-endian payload length n (1 <= n <= MaxRecordBytes)
//	u32 little-endian CRC-32C (Castagnoli) of the payload
//	payload (n bytes): op byte, then the op-specific body
//
// A record is the unit of atomicity: readers either yield a record
// whole or stop, so a batch logged as one record can never be replayed
// half-applied. The Reader validates every field and stops at the first
// invalid record — after a crash the tail of the last segment may be
// torn mid-record, and everything before the tear is still recovered.
//
// The Writer implements group commit: concurrent appenders under the
// SyncAlways policy coalesce into a single fsync per flush window, so
// the measured fsyncs per operation drop well below one as concurrency
// rises (observable via Stats).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic begins every segment file.
const Magic = "ALEXWAL1"

// Op identifies a record type.
type Op byte

// Record types. Point and batch mutations carry keys (and payloads for
// the insert flavors); Checkpoint is a marker noting that a snapshot
// covering everything before it has been written.
const (
	OpInsert      Op = 1 // one key, one payload
	OpDelete      Op = 2 // one key
	OpInsertBatch Op = 3 // n keys, n payloads (upsert, last duplicate wins)
	OpDeleteBatch Op = 4 // n keys
	OpMerge       Op = 5 // n keys, n payloads (bulk upsert via the merge path)
	OpCheckpoint  Op = 6 // marker; Seq is the segment the checkpoint rotated to
	OpUpdate      Op = 7 // one key, one payload; replayed as update-if-present
)

// Size limits. A record's length prefix is validated against
// MaxRecordBytes before any allocation, so a corrupt length can never
// trigger a huge read; MaxRecordPairs bounds the element count of batch
// records (callers chunk larger batches into several records).
const (
	MaxRecordPairs = 1 << 20
	MaxRecordBytes = 1 + 4 + MaxRecordPairs*16
)

// ErrCorrupt marks an invalid record: torn tail, CRC mismatch, bad
// length, unknown op, malformed body, or a non-finite key. Readers
// return it (wrapped) and callers treat it as end-of-log.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrClosed is returned by appends to a closed Writer or Log.
var ErrClosed = errors.New("wal: closed")

// Record is one logical WAL entry.
type Record struct {
	Op       Op
	Keys     []float64
	Payloads []uint64 // parallel to Keys for insert/merge flavors; nil otherwise
	Seq      uint64   // OpCheckpoint only
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// payloadSize returns the encoded payload length of r (op byte + body).
func payloadSize(r *Record) (int, error) {
	switch r.Op {
	case OpInsert, OpUpdate:
		return 1 + 16, nil
	case OpDelete:
		return 1 + 8, nil
	case OpInsertBatch, OpMerge:
		if len(r.Keys) > MaxRecordPairs {
			return 0, fmt.Errorf("wal: batch of %d pairs exceeds MaxRecordPairs", len(r.Keys))
		}
		return 1 + 4 + len(r.Keys)*16, nil
	case OpDeleteBatch:
		if len(r.Keys) > MaxRecordPairs {
			return 0, fmt.Errorf("wal: batch of %d keys exceeds MaxRecordPairs", len(r.Keys))
		}
		return 1 + 4 + len(r.Keys)*8, nil
	case OpCheckpoint:
		return 1 + 8, nil
	}
	return 0, fmt.Errorf("wal: unknown op %d", r.Op)
}

// AppendRecord appends the framed encoding of r to dst and returns the
// extended slice. It errors on oversized batches and ops the insert
// flavors require payloads for.
func AppendRecord(dst []byte, r *Record) ([]byte, error) {
	n, err := payloadSize(r)
	if err != nil {
		return dst, err
	}
	switch r.Op {
	case OpInsert, OpUpdate, OpInsertBatch, OpMerge:
		if len(r.Payloads) != len(r.Keys) {
			return dst, fmt.Errorf("wal: op %d has %d payloads for %d keys", r.Op, len(r.Payloads), len(r.Keys))
		}
	}
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = binary.LittleEndian.AppendUint32(dst, 0) // CRC placeholder
	body := len(dst)
	dst = append(dst, byte(r.Op))
	switch r.Op {
	case OpInsert, OpUpdate:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Keys[0]))
		dst = binary.LittleEndian.AppendUint64(dst, r.Payloads[0])
	case OpDelete:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Keys[0]))
	case OpInsertBatch, OpMerge:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Keys)))
		for _, k := range r.Keys {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(k))
		}
		for _, p := range r.Payloads {
			dst = binary.LittleEndian.AppendUint64(dst, p)
		}
	case OpDeleteBatch:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Keys)))
		for _, k := range r.Keys {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(k))
		}
	case OpCheckpoint:
		dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	}
	crc := crc32.Checksum(dst[body:], castagnoli)
	binary.LittleEndian.PutUint32(dst[start+4:], crc)
	return dst, nil
}

// decodeRecord parses one payload (already CRC-verified) into a Record.
// Every structural property is validated so a CRC-colliding corruption
// still cannot reach the index: exact body length, bounded counts, and
// finite keys.
func decodeRecord(payload []byte) (*Record, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	r := &Record{Op: Op(payload[0])}
	body := payload[1:]
	switch r.Op {
	case OpInsert, OpUpdate:
		if len(body) != 16 {
			return nil, fmt.Errorf("%w: insert body %d bytes", ErrCorrupt, len(body))
		}
		r.Keys = []float64{math.Float64frombits(binary.LittleEndian.Uint64(body))}
		r.Payloads = []uint64{binary.LittleEndian.Uint64(body[8:])}
	case OpDelete:
		if len(body) != 8 {
			return nil, fmt.Errorf("%w: delete body %d bytes", ErrCorrupt, len(body))
		}
		r.Keys = []float64{math.Float64frombits(binary.LittleEndian.Uint64(body))}
	case OpInsertBatch, OpMerge:
		n, err := batchCount(body, 16)
		if err != nil {
			return nil, err
		}
		r.Keys = decodeKeys(body[4:], n)
		r.Payloads = make([]uint64, n)
		for i := range r.Payloads {
			r.Payloads[i] = binary.LittleEndian.Uint64(body[4+n*8+i*8:])
		}
	case OpDeleteBatch:
		n, err := batchCount(body, 8)
		if err != nil {
			return nil, err
		}
		r.Keys = decodeKeys(body[4:], n)
	case OpCheckpoint:
		if len(body) != 8 {
			return nil, fmt.Errorf("%w: checkpoint body %d bytes", ErrCorrupt, len(body))
		}
		r.Seq = binary.LittleEndian.Uint64(body)
		return r, nil
	default:
		return nil, fmt.Errorf("%w: unknown op %d", ErrCorrupt, payload[0])
	}
	for _, k := range r.Keys {
		if math.IsNaN(k) || math.IsInf(k, 0) {
			return nil, fmt.Errorf("%w: non-finite key", ErrCorrupt)
		}
	}
	return r, nil
}

// batchCount validates a batch body (u32 count + count*pairBytes) and
// returns the count.
func batchCount(body []byte, pairBytes int) (int, error) {
	if len(body) < 4 {
		return 0, fmt.Errorf("%w: batch body %d bytes", ErrCorrupt, len(body))
	}
	n := int(binary.LittleEndian.Uint32(body))
	if n > MaxRecordPairs || len(body) != 4+n*pairBytes {
		return 0, fmt.Errorf("%w: batch count %d for %d body bytes", ErrCorrupt, n, len(body))
	}
	return n, nil
}

func decodeKeys(b []byte, n int) []float64 {
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return keys
}
