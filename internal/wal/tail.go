package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"repro/internal/faultfs"
)

// HeaderSize is the byte length of the segment magic — the file offset
// where a segment's first record starts, and therefore the canonical
// "start of segment" replication position.
const HeaderSize = int64(len(Magic))

// ErrTruncated reports that a tailer's position points into log history
// that a checkpoint has truncated away (or that a primary crash made
// unreachable). The reader cannot catch up incrementally and must
// re-bootstrap from a snapshot.
var ErrTruncated = errors.New("wal: position truncated")

// ErrStopped is returned by Tailer.Next when the caller's stop channel
// fired while waiting at the live tail.
var ErrStopped = errors.New("wal: tail stopped")

// ErrIdle is returned by Tailer.NextTimeout when no record arrived
// within the idle window. The tailer remains usable; callers typically
// emit a heartbeat and wait again.
var ErrIdle = errors.New("wal: tail idle")

// ErrShortFrame reports that a byte buffer ends before the framed
// record it starts does.
var ErrShortFrame = errors.New("wal: short frame")

// DecodeFramed decodes one framed record (length, CRC, payload — the
// exact segment wire format) from the front of b, returning the record
// and the wire bytes it occupied. ErrShortFrame means b holds only a
// prefix of a record; errors wrapping ErrCorrupt mean the bytes can
// never become a valid record no matter how many more arrive.
func DecodeFramed(b []byte) (*Record, int, error) {
	if len(b) < 8 {
		return nil, 0, ErrShortFrame
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n > MaxRecordBytes {
		return nil, 0, fmt.Errorf("%w: record length %d", ErrCorrupt, n)
	}
	if len(b) < 8+int(n) {
		return nil, 0, ErrShortFrame
	}
	payload := b[8 : 8+n]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:]) {
		return nil, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return nil, 0, err
	}
	return rec, 8 + int(n), nil
}

// ReadFramed reads one framed record from r (header first, then the
// payload it announces), for streams that carry the segment wire format
// outside a segment file — the replication stream. scratch is reused
// across calls and returned possibly grown.
func ReadFramed(r io.Reader, scratch []byte) (*Record, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, scratch, io.EOF
		}
		return nil, scratch, fmt.Errorf("%w: torn record header", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 || n > MaxRecordBytes {
		return nil, scratch, fmt.Errorf("%w: record length %d", ErrCorrupt, n)
	}
	need := 8 + int(n)
	if cap(scratch) < need {
		scratch = make([]byte, need)
	}
	scratch = scratch[:need]
	copy(scratch, hdr[:])
	if _, err := io.ReadFull(r, scratch[8:]); err != nil {
		return nil, scratch, fmt.Errorf("%w: torn record payload", ErrCorrupt)
	}
	rec, _, err := DecodeFramed(scratch)
	return rec, scratch, err
}

// Tailer streams a Log's records from a given position and never stops
// at the end: at the live tail it blocks until the next group commit
// lands, and at the end of a sealed segment it rolls into the next one.
// It is the primary-side engine of WAL-shipping replication.
//
// Torn tails are disambiguated by segment state, which is the edge a
// plain ReplaySegments cannot see: an incomplete record in the *live*
// segment means the writer is mid-append (or bufio flushed mid-record),
// so the Tailer waits and re-reads; an incomplete record in a *sealed*
// segment is a permanent crash tear — the records past it were never
// acknowledged or applied, so the Tailer skips to the next segment,
// exactly matching what crash recovery reconstructs. The visible
// watermark (advanced only at record boundaries, after the policy's
// flush/fsync) bounds live reads, so a record is never shipped to a
// follower before the primary itself is committed to it.
//
// A Tailer is not safe for concurrent use; each follower stream owns
// one.
type Tailer struct {
	log        *Log
	seg        uint64
	off        int64 // file offset of the next unread byte
	f          faultfs.File
	sealedSize int64 // stat'd size once the segment is known sealed; -1 before
	buf        []byte
	idle       *time.Timer // NextTimeout's reusable idle timer
}

// NewTailer positions a tailer at (seg, off). seg 0 means "the start of
// retained history": the oldest segment still on disk. Offsets below
// HeaderSize are rounded up to it. ErrTruncated reports that seg was
// checkpointed away; positions beyond the current segment are invalid.
func (l *Log) NewTailer(seg uint64, off int64) (*Tailer, error) {
	l.mu.RLock()
	closed, cur := l.closed, l.curSeq
	l.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if seg == 0 {
		segs, err := SegmentsFS(l.fsys, l.dir)
		if err != nil {
			return nil, err
		}
		if len(segs) > 0 {
			seg = segs[0].Seq
		} else {
			seg = cur
		}
		off = HeaderSize
	}
	if seg > cur {
		return nil, fmt.Errorf("wal: segment %d is beyond the log head %d", seg, cur)
	}
	if off < HeaderSize {
		off = HeaderSize
	}
	t := &Tailer{log: l, seg: seg, off: off, sealedSize: -1}
	if err := t.open(); err != nil {
		return nil, err
	}
	return t, nil
}

// open opens the tailer's current segment file.
func (t *Tailer) open() error {
	f, err := faultfs.Open(t.log.fsys, segmentPath(t.log.dir, t.seg))
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: segment %d", ErrTruncated, t.seg)
		}
		return err
	}
	t.f = f
	t.sealedSize = -1
	t.buf = t.buf[:0]
	return nil
}

// Seg returns the segment of the next unread record.
func (t *Tailer) Seg() uint64 { return t.seg }

// Off returns the file offset of the next unread record — together
// with Seg, the position a follower resumes from.
func (t *Tailer) Off() int64 { return t.off }

// state samples the log: the live visible watermark (when the tailer's
// segment is the current one), whether its segment is sealed, and
// whether the log is closed.
func (t *Tailer) state() (vis int64, sealed, closed bool) {
	l := t.log
	l.mu.RLock()
	defer l.mu.RUnlock()
	if t.seg < l.curSeq {
		return 0, true, l.closed
	}
	return l.cur.Visible(), false, l.closed
}

// limit returns the readable byte bound of the current segment: the
// visible watermark while live, the file size once sealed.
func (t *Tailer) limit(vis int64, sealed bool) (int64, error) {
	if !sealed {
		return vis, nil
	}
	if t.sealedSize < 0 {
		st, err := t.f.Stat()
		if err != nil {
			return 0, err
		}
		t.sealedSize = st.Size()
	}
	return t.sealedSize, nil
}

// advance rolls the tailer into the next segment.
func (t *Tailer) advance() error {
	t.f.Close()
	t.seg++
	t.off = HeaderSize
	return t.open()
}

// fill loads more of the current segment into the buffer, which always
// holds the bytes starting at t.off. It returns how many bytes were
// added (0 at the readable limit).
func (t *Tailer) fill(limit int64) (int, error) {
	avail := limit - t.off - int64(len(t.buf))
	if avail <= 0 {
		return 0, nil
	}
	chunk := avail
	if chunk > 1<<16 {
		chunk = 1 << 16
	}
	start := len(t.buf)
	t.buf = append(t.buf, make([]byte, chunk)...)
	n, err := t.f.ReadAt(t.buf[start:], t.off+int64(start))
	t.buf = t.buf[:start+n]
	if err != nil && err != io.EOF {
		return n, err
	}
	return n, nil
}

// Next returns the next record and the position immediately after it
// (the follower's resume position once the record is applied). It
// blocks at the live tail until new records land; stop (may be nil)
// aborts the wait with ErrStopped. ErrClosed reports the log closed
// with nothing left to drain; ErrTruncated reports the next segment
// was checkpointed away (re-bootstrap required). Errors wrapping
// ErrCorrupt are real corruption inside the committed prefix of the
// live segment and should end the stream.
func (t *Tailer) Next(stop <-chan struct{}) (rec *Record, seg uint64, off int64, err error) {
	return t.next(stop, nil)
}

// NextTimeout is Next with an idle bound: when no record becomes
// available within idle, it returns ErrIdle instead of blocking on.
// The tailer's position is unchanged by an idle return, so the caller
// can send a heartbeat and call again. idle <= 0 means no bound.
func (t *Tailer) NextTimeout(stop <-chan struct{}, idle time.Duration) (rec *Record, seg uint64, off int64, err error) {
	if idle <= 0 {
		return t.next(stop, nil)
	}
	if t.idle == nil {
		t.idle = time.NewTimer(idle)
	} else {
		// The timer is never running here: every next() return path
		// leaves it stopped and drained.
		t.idle.Reset(idle)
	}
	rec, seg, off, err = t.next(stop, t.idle.C)
	if !t.idle.Stop() && err != ErrIdle {
		<-t.idle.C
	}
	return rec, seg, off, err
}

// next is the shared engine of Next and NextTimeout. idleC (may be
// nil) aborts a live-tail wait with ErrIdle.
func (t *Tailer) next(stop <-chan struct{}, idleC <-chan time.Time) (rec *Record, seg uint64, off int64, err error) {
	for {
		// Grab the wait channel before sampling state: a bump between
		// the sample and the wait closes this channel, so no visible
		// advance can be lost.
		waitCh := t.log.tailers.wait()
		vis, sealed, closed := t.state()
		limit, err := t.limit(vis, sealed)
		if err != nil {
			return nil, 0, 0, err
		}
		for {
			r, wire, derr := DecodeFramed(t.buf)
			if derr == nil {
				t.buf = t.buf[wire:]
				t.off += int64(wire)
				return r, t.seg, t.off, nil
			}
			recoverable := errors.Is(derr, ErrShortFrame) || errors.Is(derr, ErrCorrupt)
			if !recoverable {
				return nil, 0, 0, derr
			}
			if errors.Is(derr, ErrShortFrame) {
				n, ferr := t.fill(limit)
				if ferr != nil {
					return nil, 0, 0, ferr
				}
				if n > 0 {
					continue // more bytes arrived; retry the decode
				}
			}
			// Nothing more readable below the limit, or bytes that can
			// never decode. Sealed: this is the permanent crash tear (or
			// clean end) of the segment — roll forward. Live: wait for
			// the writer. A corrupt frame below the live visible
			// watermark cannot be a mid-append tear (watermarks advance
			// at record boundaries), so it is real corruption — but only
			// once the frame is complete; short frames wait.
			if sealed {
				if err := t.advance(); err != nil {
					return nil, 0, 0, err
				}
				break // outer loop: re-sample state for the new segment
			}
			if !errors.Is(derr, ErrShortFrame) {
				return nil, 0, 0, derr
			}
			if closed {
				return nil, 0, 0, ErrClosed
			}
			select {
			case <-waitCh:
			case <-stop:
				return nil, 0, 0, ErrStopped
			case <-idleC:
				return nil, 0, 0, ErrIdle
			}
			break // outer loop: re-sample state
		}
	}
}

// Pending reports whether a record is likely ready without blocking —
// the stream flush heuristic: callers flush buffered output before a
// Next that would block.
func (t *Tailer) Pending() bool {
	if len(t.buf) >= 8 {
		if n := binary.LittleEndian.Uint32(t.buf); len(t.buf) >= 8+int(n) {
			return true
		}
	}
	vis, sealed, _ := t.state()
	if sealed {
		return true
	}
	return t.off+int64(len(t.buf)) < vis
}

// Close releases the tailer's file handle.
func (t *Tailer) Close() error {
	if t.f != nil {
		return t.f.Close()
	}
	return nil
}
