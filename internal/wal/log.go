package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/faultfs"
)

// ErrSealFailed reports that Rotate could not flush and fsync the
// rotated-out segment. Records acknowledged into that segment under a
// deferred-sync policy may not be durable — callers treat this as a
// durability failure, not a transient one.
var ErrSealFailed = errors.New("wal: seal rotated segment")

// Segment names one on-disk log segment.
type Segment struct {
	Path string
	Seq  uint64
}

const segPrefix, segSuffix = "wal-", ".log"

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", segPrefix, seq, segSuffix))
}

// Segments lists dir's log segments in ascending sequence order.
func Segments(dir string) ([]Segment, error) {
	return SegmentsFS(faultfs.OS, dir)
}

// SegmentsFS is Segments on an explicit filesystem.
func SegmentsFS(fsys faultfs.FS, dir string) ([]Segment, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []Segment
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || len(name) != len(segPrefix)+16+len(segSuffix) ||
			name[:len(segPrefix)] != segPrefix || filepath.Ext(name) != segSuffix {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name[len(segPrefix):len(name)-len(segSuffix)], "%d", &seq); err != nil {
			continue
		}
		segs = append(segs, Segment{Path: filepath.Join(dir, name), Seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// Log is a segmented write-ahead log: appends go to the newest segment,
// Rotate starts a fresh one (so a checkpoint can truncate everything
// older), and counters aggregate across segments.
type Log struct {
	dir      string
	fsys     faultfs.FS
	policy   Policy
	interval time.Duration
	stats    counters
	tailers  notifier // bumped when the visible tail grows, rotates, or closes

	mu     sync.RWMutex // appends share it; rotation/close take it exclusively
	cur    *Writer
	curSeq uint64
	closed bool
}

// notifier is a coalescing broadcast: waiters grab the current channel
// and block on it; bump closes it and installs a fresh one, waking
// every waiter at once. Bumps happen at flush/fsync/rotate frequency,
// never per append, so the cost stays off the write hot path.
type notifier struct {
	mu sync.Mutex
	ch chan struct{}
}

func (n *notifier) wait() <-chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ch == nil {
		n.ch = make(chan struct{})
	}
	return n.ch
}

func (n *notifier) bump() {
	n.mu.Lock()
	if n.ch != nil {
		close(n.ch)
		n.ch = nil
	}
	n.mu.Unlock()
}

// OpenLog opens dir's log for appending, always starting a fresh
// segment numbered after the existing ones (old segments are replayed
// by recovery and removed by the next checkpoint — never appended to).
func OpenLog(dir string, policy Policy, interval time.Duration) (*Log, error) {
	return OpenLogFS(faultfs.OS, dir, policy, interval)
}

// OpenLogFS is OpenLog on an explicit filesystem — the seam fault
// injection enters through.
func OpenLogFS(fsys faultfs.FS, dir string, policy Policy, interval time.Duration) (*Log, error) {
	segs, err := SegmentsFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if len(segs) > 0 {
		next = segs[len(segs)-1].Seq + 1
	}
	l := &Log{dir: dir, fsys: fsys, policy: policy, interval: interval, curSeq: next}
	l.cur, err = NewWriterFS(fsys, segmentPath(dir, next), policy, interval, &l.stats, l.tailers.bump)
	if err != nil {
		return nil, err
	}
	// Make the new segment's directory entry durable before any record
	// is acknowledged from it: without this, a crash can lose the whole
	// segment (the file's data is fsynced, its name is not).
	if err := fsys.SyncDir(dir); err != nil {
		l.cur.Close()
		//alexvet:ignore best-effort backout of the half-born segment; the SyncDir error below is the durability failure being reported
		_ = fsys.Remove(segmentPath(dir, next))
		return nil, fmt.Errorf("wal: sync dir after segment create: %w", err)
	}
	return l, nil
}

// Append appends rec to the current segment, blocking per the sync
// policy. Safe for concurrent use.
func (l *Log) Append(rec *Record) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return ErrClosed
	}
	return l.cur.Append(rec)
}

// Sync blocks until every appended record is durable.
func (l *Log) Sync() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return ErrClosed
	}
	return l.cur.Sync()
}

// Rotate seals the current segment (flushing and fsyncing it) and
// starts the next one. On return every previously appended record is
// durable in a sealed segment and new appends land in the new segment.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	next, err := NewWriterFS(l.fsys, segmentPath(l.dir, l.curSeq+1), l.policy, l.interval, &l.stats, l.tailers.bump)
	if err != nil {
		return err
	}
	// The new segment's directory entry must be durable before the old
	// segment seals: otherwise a crash after rotation loses the entry —
	// and with it every record acked into the new segment. Back out the
	// new writer on failure so a retried Rotate does not trip O_EXCL.
	if err := l.fsys.SyncDir(l.dir); err != nil {
		next.Close()
		//alexvet:ignore best-effort backout so a retried Rotate does not trip O_EXCL; the SyncDir error below is the reported failure
		_ = l.fsys.Remove(segmentPath(l.dir, l.curSeq+1))
		return fmt.Errorf("wal: sync dir after rotate: %w", err)
	}
	old := l.cur
	l.cur, l.curSeq = next, l.curSeq+1
	if err := old.Close(); err != nil {
		return fmt.Errorf("%w: %w", ErrSealFailed, err)
	}
	// Wake tailers parked at the old segment's live tail: it is sealed
	// now, so they advance into the new segment.
	l.tailers.bump()
	return nil
}

// CurrentSeq returns the sequence number of the segment now accepting
// appends.
func (l *Log) CurrentSeq() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.curSeq
}

// RemoveObsolete deletes every sealed segment older than the current
// one. Callers invoke it after a snapshot covering those segments is
// durable.
func (l *Log) RemoveObsolete() error {
	l.mu.RLock()
	cur := l.curSeq
	l.mu.RUnlock()
	segs, err := SegmentsFS(l.fsys, l.dir)
	if err != nil {
		return err
	}
	removed := false
	for _, seg := range segs {
		if seg.Seq >= cur {
			continue
		}
		if err := l.fsys.Remove(seg.Path); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		// Make the truncation durable: a crash that resurrects removed
		// entries is harmless for correctness (their records are covered
		// by the snapshot) but the dir sync bounds recovery work and
		// keeps the on-disk state the code reasons about.
		if err := l.fsys.SyncDir(l.dir); err != nil {
			return fmt.Errorf("wal: sync dir after truncate: %w", err)
		}
	}
	return nil
}

// Close seals the current segment. Further appends return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.cur.Close()
	// Wake tailers so they observe the closed log and return.
	l.tailers.bump()
	return err
}

// Position returns the live replication position: the current segment
// and its visible tail watermark. A follower that has applied
// everything up to Position has applied every record the durability
// policy has committed.
func (l *Log) Position() (seg uint64, off int64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.curSeq, l.cur.Visible()
}

// visibleBytes reports how much of segment seg a tailer may read:
// the whole file for sealed segments, the live writer's watermark for
// the current one, and nothing for segments that do not exist yet.
func (l *Log) visibleBytes(seg uint64) int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	switch {
	case seg < l.curSeq:
		return int64(^uint64(0) >> 1) // sealed: the file itself bounds the read
	case seg == l.curSeq:
		return l.cur.Visible()
	}
	return 0
}

// Stats returns counters cumulative across all segments of this Log.
func (l *Log) Stats() Stats { return l.stats.snapshot() }
