package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/faultfs"
)

// Reader iterates the records of one segment. Any invalid byte — a
// torn tail after a crash, flipped bits, a bad length — stops iteration
// with an error wrapping ErrCorrupt; everything decoded before it is
// valid, so "replay until the first error" recovers the longest durable
// prefix.
type Reader struct {
	r      *bufio.Reader
	header [8]byte
	buf    []byte
}

// NewReader wraps r, consuming and checking the segment magic. A short
// or empty stream yields an empty reader (a segment created but never
// fully written during a crash); wrong magic bytes are corruption.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		// Treat a truncated header as an empty segment, not an error:
		// the process may have died between creating the file and
		// writing the magic.
		//alexvet:ignore torn header means crash-before-magic; an empty segment is the defined recovery, not a swallowed failure
		return &Reader{r: bufio.NewReader(emptyReader{})}, nil
	}
	if string(m[:]) != Magic {
		return nil, fmt.Errorf("%w: bad segment magic %q", ErrCorrupt, m)
	}
	return &Reader{r: br}, nil
}

// emptyReader is an always-EOF source backing empty segments.
type emptyReader struct{}

func (emptyReader) Read([]byte) (int, error) { return 0, io.EOF }

// Next returns the next record, io.EOF at a clean end, or an error
// wrapping ErrCorrupt at the first invalid byte.
func (rd *Reader) Next() (*Record, error) {
	if _, err := io.ReadFull(rd.r, rd.header[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: torn record header", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(rd.header[:4])
	if n == 0 || n > MaxRecordBytes {
		return nil, fmt.Errorf("%w: record length %d", ErrCorrupt, n)
	}
	if cap(rd.buf) < int(n) {
		rd.buf = make([]byte, n)
	}
	payload := rd.buf[:n]
	if _, err := io.ReadFull(rd.r, payload); err != nil {
		return nil, fmt.Errorf("%w: torn record payload", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(rd.header[4:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return decodeRecord(payload)
}

// ReplaySegments streams every record of segs in order to fn. An
// invalid record ends that *segment's* replay (torn reports whether any
// segment ended that way) but not the whole history: a segment is
// sealed either by a clean rotation (no tear possible) or by a crash —
// and after a crash tear, nothing valid follows in that segment (fsync
// order matches append order), while the segments a restarted process
// appended afterwards hold acknowledged writes that must still replay.
// Stopping the entire replay at the first tear would silently drop
// them after a second crash. fn errors and file-open errors abort the
// replay.
func ReplaySegments(segs []Segment, fn func(*Record) error) (n int, torn bool, err error) {
	return ReplaySegmentsFS(faultfs.OS, segs, fn)
}

// ReplaySegmentsFS is ReplaySegments on an explicit filesystem.
func ReplaySegmentsFS(fsys faultfs.FS, segs []Segment, fn func(*Record) error) (n int, torn bool, err error) {
	for _, seg := range segs {
		f, err := faultfs.Open(fsys, seg.Path)
		if err != nil {
			return n, torn, err
		}
		rd, err := NewReader(f)
		if err != nil {
			f.Close()
			if errors.Is(err, ErrCorrupt) {
				torn = true
				continue
			}
			return n, torn, err
		}
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				// Crash tear: the rest of this segment is the un-fsynced
				// (never acknowledged) tail; later segments are valid.
				torn = true
				break
			}
			if err := fn(rec); err != nil {
				f.Close()
				return n, torn, err
			}
			n++
		}
		f.Close()
	}
	return n, torn, nil
}
