package wal

import (
	"errors"
	"os"
	"testing"
	"time"
)

// collectTail drains every immediately available record (stopping at
// the live tail via a pre-closed stop channel would abort mid-record,
// so it uses Pending as the gate).
func collectTail(t *testing.T, tl *Tailer) []*Record {
	t.Helper()
	var got []*Record
	for tl.Pending() {
		rec, _, _, err := tl.Next(nil)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				break
			}
			t.Fatalf("Next: %v", err)
		}
		got = append(got, rec)
	}
	return got
}

// TestTailAcrossRotation: a tailer that starts at the beginning of
// history must see every record exactly once, in order, across segment
// rotations — no drops at the seam, no duplicates.
func TestTailAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var want []float64
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			k := float64(len(want))
			want = append(want, k)
			if err := l.Append(&Record{Op: OpInsert, Keys: []float64{k}, Payloads: []uint64{1}}); err != nil {
				t.Fatal(err)
			}
		}
	}

	appendN(50)
	tl, err := l.NewTailer(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	got := collectTail(t, tl)
	for r := 0; r < 3; r++ {
		if err := l.Rotate(); err != nil {
			t.Fatal(err)
		}
		appendN(25)
		got = append(got, collectTail(t, tl)...)
	}

	if len(got) != len(want) {
		t.Fatalf("tailed %d records across rotations, want %d", len(got), len(want))
	}
	for i, rec := range got {
		if rec.Keys[0] != want[i] {
			t.Fatalf("record %d: key %g, want %g (drop or duplicate at the seam)", i, rec.Keys[0], want[i])
		}
	}
	if tl.Seg() != l.CurrentSeq() {
		t.Fatalf("tailer parked at segment %d, want current %d", tl.Seg(), l.CurrentSeq())
	}
}

// TestTailLiveWakeup: a tailer blocked at the live tail must wake when
// the next record commits, without polling.
func TestTailLiveWakeup(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	tl, err := l.NewTailer(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	type result struct {
		rec *Record
		err error
	}
	res := make(chan result, 1)
	go func() {
		rec, _, _, err := tl.Next(nil)
		res <- result{rec, err}
	}()

	select {
	case r := <-res:
		t.Fatalf("Next returned before any append: %+v %v", r.rec, r.err)
	case <-time.After(20 * time.Millisecond):
	}

	if err := l.Append(&Record{Op: OpInsert, Keys: []float64{7}, Payloads: []uint64{7}}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-res:
		if r.err != nil || r.rec.Keys[0] != 7 {
			t.Fatalf("woke with %+v, %v", r.rec, r.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tailer never woke after commit")
	}
}

// TestTailStopAndClose: stop aborts a live-tail wait with ErrStopped;
// closing the log surfaces ErrClosed once drained.
func TestTailStopAndClose(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}

	tl, err := l.NewTailer(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		_, _, _, err := tl.Next(stop)
		errs <- err
	}()
	close(stop)
	select {
	case err := <-errs:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("stopped wait returned %v, want ErrStopped", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stop did not abort the wait")
	}

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tl.Next(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("tail of closed log returned %v, want ErrClosed", err)
	}
}

// TestTailMidRecordFlush: a record larger than the writer's buffer
// auto-flushes in pieces, so the segment file transiently ends inside a
// record. The visible watermark must hold the tailer back — it may not
// see a torn frame, and must deliver the whole record only after the
// policy commits it.
func TestTailMidRecordFlush(t *testing.T) {
	dir := t.TempDir()
	// An interval far beyond the test's lifetime: nothing commits until
	// the explicit Sync.
	l, err := OpenLog(dir, SyncInterval, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	tl, err := l.NewTailer(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	// ~160 KiB of key/payload pairs — crosses the 64 KiB bufio buffer,
	// forcing mid-record auto-flushes.
	n := 10_000
	keys := make([]float64, n)
	pays := make([]uint64, n)
	for i := range keys {
		keys[i] = float64(i)
		pays[i] = uint64(i)
	}
	if err := l.Append(&Record{Op: OpInsertBatch, Keys: keys, Payloads: pays}); err != nil {
		t.Fatal(err)
	}

	seg, vis := l.Position()
	st, err := os.Stat(segmentPath(dir, seg))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() <= vis {
		t.Fatalf("file size %d not past visible %d: record did not auto-flush mid-append; grow it", st.Size(), vis)
	}
	if tl.Pending() {
		t.Fatal("tailer sees a pending record inside an uncommitted tail")
	}

	res := make(chan *Record, 1)
	errs := make(chan error, 1)
	go func() {
		rec, _, _, err := tl.Next(nil)
		if err != nil {
			errs <- err
			return
		}
		res <- rec
	}()
	select {
	case rec := <-res:
		t.Fatalf("record of %d pairs delivered before commit", len(rec.Keys))
	case err := <-errs:
		t.Fatalf("Next: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	select {
	case rec := <-res:
		if len(rec.Keys) != n || rec.Keys[n-1] != float64(n-1) {
			t.Fatalf("decoded %d pairs, want %d", len(rec.Keys), n)
		}
	case err := <-errs:
		t.Fatalf("Next after sync: %v", err)
	case <-time.After(2 * time.Second):
		t.Fatal("tailer never delivered the committed record")
	}
}

// TestTailSealedTornTail: an incomplete record at the end of a *sealed*
// segment is a permanent crash tear — the tailer must skip past it into
// the next segment instead of waiting forever, matching what recovery
// replays.
func TestTailSealedTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&Record{Op: OpInsert, Keys: []float64{1}, Payloads: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash tear: a half-written record at the tail of the
	// now-final segment.
	segs, err := Segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[0].Path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := AppendRecord(nil, &Record{Op: OpInsert, Keys: []float64{99}, Payloads: []uint64{99}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The restarted process appends acknowledged records to a new segment.
	l2, err := OpenLog(dir, SyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append(&Record{Op: OpInsert, Keys: []float64{2}, Payloads: []uint64{2}}); err != nil {
		t.Fatal(err)
	}

	tl, err := l2.NewTailer(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	got := collectTail(t, tl)
	if len(got) != 2 || got[0].Keys[0] != 1 || got[1].Keys[0] != 2 {
		t.Fatalf("tailed %d records across the tear, want keys [1 2]", len(got))
	}

	// Recovery must reconstruct the same stream: the tear ends segment 1
	// but not the history — segment 2's acknowledged record replays.
	segs, err = Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var keys []float64
	n, torn, err := ReplaySegments(segs, func(r *Record) error {
		keys = append(keys, r.Keys[0])
		return nil
	})
	if err != nil || !torn || n != 2 || keys[0] != 1 || keys[1] != 2 {
		t.Fatalf("replay: n=%d torn=%v keys=%v err=%v; want both sides of the tear", n, torn, keys, err)
	}
}

// TestTailTruncated: positioning a tailer inside checkpointed-away
// history fails with ErrTruncated — the re-bootstrap signal.
func TestTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(&Record{Op: OpInsert, Keys: []float64{1}, Payloads: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	first := l.CurrentSeq()
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveObsolete(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.NewTailer(first, HeaderSize); !errors.Is(err, ErrTruncated) {
		t.Fatalf("tailer into truncated history: %v, want ErrTruncated", err)
	}
	// seg 0 ("oldest retained") still works and sees only live history.
	tl, err := l.NewTailer(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tl.Close()
}
