package wal

import (
	"bufio"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultfs"
)

// Policy selects when appended records are fsynced.
type Policy int

const (
	// SyncAlways makes every Append block until its record is on stable
	// storage. Concurrent appenders group-commit: records buffered while
	// one fsync is in flight are all covered by the next, so the cost is
	// amortized across writers.
	SyncAlways Policy = iota
	// SyncInterval fsyncs on a timer; a crash loses at most one
	// interval's worth of acknowledged records.
	SyncInterval
	// SyncNever writes records through to the OS but never fsyncs; an
	// OS crash or power loss may lose records the kernel has not yet
	// written back (a mere process crash loses nothing).
	SyncNever
)

// Stats counts log activity. Counters are cumulative across segment
// rotations when read from a Log.
type Stats struct {
	Appends uint64 // records appended
	Syncs   uint64 // fsync calls issued
	Bytes   uint64 // record bytes written
}

// counters is the shared mutable form of Stats, so rotated-out writers
// keep contributing to one cumulative total.
type counters struct {
	appends atomic.Uint64
	syncs   atomic.Uint64
	bytes   atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{Appends: c.appends.Load(), Syncs: c.syncs.Load(), Bytes: c.bytes.Load()}
}

// Writer appends records to one segment file. It is safe for
// concurrent use; under SyncAlways, concurrent Appends coalesce into
// shared fsyncs (group commit).
type Writer struct {
	policy   Policy
	interval time.Duration
	stats    *counters
	notify   func() // called after visible advances; may be nil

	mu      sync.Mutex
	cond    *sync.Cond
	f       faultfs.File
	buf     *bufio.Writer
	seq     uint64 // records appended
	synced  uint64 // records known durable
	written int64  // file offset past the last appended record (buffered or not)
	syncing bool   // a leader is mid-fsync
	err     error  // sticky I/O error
	closed  bool

	// visible is the tail watermark replication may ship: the file
	// offset up to which the segment holds only whole records that the
	// durability policy has committed to (flushed under SyncNever,
	// fsynced otherwise). bufio may auto-flush mid-record when a record
	// crosses the buffer boundary, so readers of a live segment must
	// never trust raw file size — only this watermark, which advances
	// exclusively at record boundaries.
	visible atomic.Int64

	stop chan struct{} // interval syncer shutdown
	done chan struct{}
}

// NewWriter creates path (which must not exist — segments are never
// reopened for append) and returns a Writer over it. stats may be nil;
// notify (may be nil) is invoked whenever the visible tail watermark
// advances, so tailing readers can wake without polling.
func NewWriter(path string, policy Policy, interval time.Duration, stats *counters, notify func()) (*Writer, error) {
	return NewWriterFS(faultfs.OS, path, policy, interval, stats, notify)
}

// NewWriterFS is NewWriter on an explicit filesystem — the seam fault
// injection enters through.
func NewWriterFS(fsys faultfs.FS, path string, policy Policy, interval time.Duration, stats *counters, notify func()) (*Writer, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(Magic)); err != nil {
		f.Close()
		return nil, err
	}
	if stats == nil {
		stats = &counters{}
	}
	w := &Writer{
		policy:   policy,
		interval: interval,
		stats:    stats,
		notify:   notify,
		f:        f,
		buf:      bufio.NewWriterSize(f, 1<<16),
		written:  int64(len(Magic)),
	}
	w.visible.Store(int64(len(Magic)))
	w.cond = sync.NewCond(&w.mu)
	if policy == SyncInterval {
		if interval <= 0 {
			w.interval = 100 * time.Millisecond
		}
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// Append encodes rec, writes it to the segment, and blocks per the sync
// policy: until durable (SyncAlways) or just buffered (the others).
func (w *Writer) Append(rec *Record) error {
	enc, err := AppendRecord(nil, rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrClosed
	}
	if _, err := w.buf.Write(enc); err != nil {
		w.err = err
		w.cond.Broadcast()
		return err
	}
	w.seq++
	w.written += int64(len(enc))
	w.stats.appends.Add(1)
	w.stats.bytes.Add(uint64(len(enc)))
	switch w.policy {
	case SyncNever:
		// Hand the record to the OS right away: "never" means the
		// kernel decides when it reaches disk, so a process kill (as
		// opposed to an OS crash) still loses nothing.
		if err := w.buf.Flush(); err != nil {
			w.err = err
			w.cond.Broadcast()
			return err
		}
		w.advanceVisible(w.written)
		return nil
	case SyncInterval:
		// Buffered; the interval loop flushes and fsyncs.
		return nil
	}
	return w.syncToLocked(w.seq)
}

// syncToLocked blocks until records up to lsn are durable, electing the
// caller as the flush leader when no fsync is in flight. Followers wait;
// the leader's fsync covers every record buffered before its flush, so
// under concurrency many appends share one fsync. Caller holds w.mu.
func (w *Writer) syncToLocked(lsn uint64) error {
	for w.err == nil && w.synced < lsn {
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.syncing = true
		upTo := w.seq
		upToBytes := w.written
		err := w.buf.Flush()
		if err == nil {
			// fsync outside the lock: appenders keep buffering into the
			// next commit group while the disk works.
			w.mu.Unlock()
			err = w.f.Sync()
			w.mu.Lock()
		}
		w.syncing = false
		if err != nil {
			w.err = err
		} else {
			w.synced = upTo
			w.stats.syncs.Add(1)
			w.advanceVisible(upToBytes)
		}
		w.cond.Broadcast()
	}
	return w.err
}

// Sync flushes buffered records and blocks until everything appended so
// far is durable, regardless of policy.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return ErrClosed
	}
	if w.synced >= w.seq {
		return nil
	}
	return w.syncToLocked(w.seq)
}

// syncLoop is the SyncInterval flusher.
func (w *Writer) syncLoop() {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			// Errors stick in w.err and surface on the next Append.
			//alexvet:ignore interval sync is advisory; Sync latches its error in w.err and every later Append returns it
			_ = w.Sync()
		}
	}
}

// Close makes all appended records durable and closes the file. Further
// appends return ErrClosed.
func (w *Writer) Close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	var err error
	if w.err == nil && w.synced < w.seq {
		err = w.syncToLocked(w.seq)
	}
	w.closed = true
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close segment: %w", cerr)
		w.err = err
	}
	w.cond.Broadcast()
	return err
}

// Stats returns this writer's cumulative counters.
func (w *Writer) Stats() Stats { return w.stats.snapshot() }

// advanceVisible publishes a new tail watermark and wakes tailing
// readers. Watermarks only move forward; every call site passes a
// record-boundary offset captured under w.mu.
func (w *Writer) advanceVisible(off int64) {
	if off > w.visible.Load() {
		w.visible.Store(off)
		if w.notify != nil {
			w.notify()
		}
	}
}

// Visible returns the segment file offset up to which the segment is
// safe to replicate: everything below it is whole records the sync
// policy has committed (see the field comment).
func (w *Writer) Visible() int64 { return w.visible.Load() }
