package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig9Row reports minibatch insert latency percentiles for one index.
type Fig9Row struct {
	Index  string
	Median time.Duration
	P99    time.Duration
	P999   time.Duration
	Max    time.Duration
}

// Fig9 regenerates the insert tail-latency study (§5.3): a write-only
// workload on longitudes, latency measured per minibatch of 1000
// inserts. The paper's claim: ALEX-PMA-SRMI has low median latency but
// tail latencies up to 200x higher than ALEX-GA-ARMI, whose tails are
// competitive with the B+Tree (large static-RMI nodes expand in unison;
// adaptive RMI bounds node size and therefore expansion cost).
func Fig9(w io.Writer, o Options) []Fig9Row {
	o = o.withFloors()
	initN := o.RWInit
	all := datasets.GenLongitudes(initN+o.Ops, o.Seed)
	init, stream := all[:initN], all[initN:]

	type target struct {
		label string
		run   func(rec *stats.LatencyRecorder)
	}
	insertAll := func(idx workload.Index, rec *stats.LatencyRecorder) {
		const minibatch = 1000
		payload := uint64(1)
		for lo := 0; lo+minibatch <= len(stream); lo += minibatch {
			t0 := time.Now()
			for _, k := range stream[lo : lo+minibatch] {
				idx.Insert(k, payload)
				payload++
			}
			rec.Observe(time.Since(t0))
		}
	}
	targets := []target{
		{"ALEX-PMA-SRMI", func(rec *stats.LatencyRecorder) {
			insertAll(buildALEX(init, core.Config{Layout: core.PackedMemoryArray, RMI: core.StaticRMI}), rec)
		}},
		{"ALEX-GA-ARMI", func(rec *stats.LatencyRecorder) {
			insertAll(buildALEX(init, core.Config{Layout: core.GappedArray, RMI: core.AdaptiveRMI, SplitOnInsert: true}), rec)
		}},
		{"B+Tree", func(rec *stats.LatencyRecorder) {
			insertAll(buildBTree(init, btree.Config{}), rec)
		}},
	}

	var rows []Fig9Row
	for _, tg := range targets {
		rec := stats.NewLatencyRecorder(len(stream) / 1000)
		tg.run(rec)
		rows = append(rows, Fig9Row{
			Index:  tg.label,
			Median: rec.Median(),
			P99:    rec.Percentile(99),
			P999:   rec.Percentile(99.9),
			Max:    rec.Max(),
		})
	}

	t := stats.NewTable("index", "median", "P99", "P99.9", "max", "max/median")
	for _, r := range rows {
		ratio := 0.0
		if r.Median > 0 {
			ratio = float64(r.Max) / float64(r.Median)
		}
		t.AddRow(r.Index, r.Median.String(), r.P99.String(), r.P999.String(), r.Max.String(),
			fmt.Sprintf("%.1fx", ratio))
	}
	section(w, fmt.Sprintf("Fig 9: insert latency per 1k-insert minibatch (longitudes, init=%d, inserts=%d)", initN, len(stream)))
	io.WriteString(w, t.String())
	return rows
}
