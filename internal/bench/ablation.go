package bench

import (
	"fmt"
	"io"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationRow is one configuration point of a parameter sweep.
type AblationRow struct {
	Param      string
	Value      int
	Label      string // non-empty overrides Value in the printed table (e.g. "cost")
	Throughput float64
	IndexBytes int
	Leaves     int
	Height     int
}

// AblationLeafBound sweeps MaxKeysPerLeaf — the knob §3.4.1 says must be
// "tuned or learned for each dataset" — on a write-heavy longitudes
// workload. Small bounds mean more leaves, deeper RMIs and more pointer
// chases; large bounds mean bigger expansions and longer fully-packed
// regions. The sweet spot sits in between.
func AblationLeafBound(w io.Writer, o Options) []AblationRow {
	o = o.withFloors()
	all := datasets.GenLongitudes(o.RWInit+o.Ops, o.Seed)
	init, stream := all[:o.RWInit], all[o.RWInit:]
	var rows []AblationRow
	for _, bound := range []int{256, 1024, 4096, 16384, 65536} {
		cfg := core.Config{Layout: core.GappedArray, RMI: core.AdaptiveRMI, MaxKeysPerLeaf: bound}
		at := buildALEX(init, cfg)
		res := workload.Run(at, workload.Spec{
			Kind: workload.WriteHeavy, InitKeys: init, InsertStream: stream,
			Ops: o.Ops, Seed: o.Seed + 21,
		})
		st := at.Stats()
		rows = append(rows, AblationRow{
			Param: "MaxKeysPerLeaf", Value: bound,
			Throughput: res.Throughput, IndexBytes: res.IndexBytes,
			Leaves: st.NumLeaves, Height: st.Height,
		})
	}
	printAblation(w, "ablation: MaxKeysPerLeaf (write-heavy, longitudes)", rows)
	return rows
}

// AblationInnerFanout sweeps the non-root partition count of adaptive
// RMI initialization (§3.4.1's "fixed number of partitions that is tuned
// or learned for each dataset"), read-heavy on the skewed lognormal
// dataset where the recursion depth depends on it.
func AblationInnerFanout(w io.Writer, o Options) []AblationRow {
	o = o.withFloors()
	all := datasets.GenLognormal(o.RWInit+o.Ops, o.Seed)
	init, stream := all[:o.RWInit], all[o.RWInit:]
	spec := workload.Spec{
		Kind: workload.ReadHeavy, InitKeys: init, InsertStream: stream,
		Ops: o.Ops, Seed: o.Seed + 22,
	}
	var rows []AblationRow
	// The fixed-fanout series needs the heuristic load explicitly: the
	// default cost-optimal builder plans its own fanouts and would make
	// the sweep a no-op.
	for _, fan := range []int{4, 8, 16, 32, 64, 128} {
		cfg := core.Config{RMI: core.AdaptiveRMI, InnerFanout: fan, MaxKeysPerLeaf: 1024, Load: core.HeuristicLoad}
		at := buildALEX(init, cfg)
		res := workload.Run(at, spec)
		st := at.Stats()
		rows = append(rows, AblationRow{
			Param: "InnerFanout", Value: fan,
			Throughput: res.Throughput, IndexBytes: res.IndexBytes,
			Leaves: st.NumLeaves, Height: st.Height,
		})
	}
	// Cost-chosen series: the fanout-tree planner picks per-node fanouts
	// from the cost model instead of one swept constant.
	{
		cfg := core.Config{RMI: core.AdaptiveRMI, MaxKeysPerLeaf: 1024, Load: core.CostOptimalLoad}
		at := buildALEX(init, cfg)
		res := workload.Run(at, spec)
		st := at.Stats()
		rows = append(rows, AblationRow{
			Param: "InnerFanout", Label: "cost",
			Throughput: res.Throughput, IndexBytes: res.IndexBytes,
			Leaves: st.NumLeaves, Height: st.Height,
		})
	}
	printAblation(w, "ablation: InnerFanout (read-heavy, lognormal)", rows)
	return rows
}

// AblationSplitFanout sweeps the children-per-split parameter of §3.4.2
// under the distribution-shift workload, where splits actually happen.
func AblationSplitFanout(w io.Writer, o Options) []AblationRow {
	o = o.withFloors()
	keys := datasets.GenLongitudes(o.RWInit*2, o.Seed)
	sorted := datasets.Sorted(keys)
	initHalf := append([]float64(nil), sorted[:len(sorted)/2]...)
	insertHalf := append([]float64(nil), sorted[len(sorted)/2:]...)
	datasets.Shuffle(initHalf, o.Seed+1)
	datasets.Shuffle(insertHalf, o.Seed+2)

	spec := workload.Spec{
		Kind: workload.WriteHeavy, InitKeys: initHalf, InsertStream: insertHalf,
		Ops: o.Ops, Seed: o.Seed + 23,
	}
	var rows []AblationRow
	// Fixed midpoint splits need the heuristic mode explicitly — the
	// default cost-optimal mode plans split points from the cost model.
	for _, fan := range []int{2, 4, 8, 16} {
		cfg := core.Config{
			RMI: core.AdaptiveRMI, SplitOnInsert: true, SplitFanout: fan,
			MaxKeysPerLeaf: 2048, Load: core.HeuristicLoad,
		}
		at := buildALEX(initHalf, cfg)
		res := workload.Run(at, spec)
		st := at.Stats()
		rows = append(rows, AblationRow{
			Param: "SplitFanout", Value: fan,
			Throughput: res.Throughput, IndexBytes: res.IndexBytes,
			Leaves: st.NumLeaves, Height: st.Height,
		})
	}
	// Cost-chosen series: splits pick their point and fanout (up to the
	// default budget) by minimizing the children's modeled cost.
	{
		cfg := core.Config{
			RMI: core.AdaptiveRMI, SplitOnInsert: true,
			MaxKeysPerLeaf: 2048, Load: core.CostOptimalLoad,
		}
		at := buildALEX(initHalf, cfg)
		res := workload.Run(at, spec)
		st := at.Stats()
		rows = append(rows, AblationRow{
			Param: "SplitFanout", Label: "cost",
			Throughput: res.Throughput, IndexBytes: res.IndexBytes,
			Leaves: st.NumLeaves, Height: st.Height,
		})
	}
	printAblation(w, "ablation: SplitFanout (distribution shift, longitudes)", rows)
	return rows
}

func printAblation(w io.Writer, title string, rows []AblationRow) {
	t := stats.NewTable("param", "value", "throughput", "index size", "leaves", "height")
	for _, r := range rows {
		val := r.Label
		if val == "" {
			val = fmt.Sprintf("%d", r.Value)
		}
		t.AddRow(r.Param, val,
			stats.FormatOps(r.Throughput), stats.FormatBytes(r.IndexBytes),
			fmt.Sprintf("%d", r.Leaves), fmt.Sprintf("%d", r.Height))
	}
	section(w, title)
	io.WriteString(w, t.String())
}

// ExtDeleteRow reports the delete-churn extension experiment.
type ExtDeleteRow struct {
	Index      string
	Throughput float64
	DataBytes  int
	Contracts  uint64
}

// ExtDeleteChurn runs the delete-heavy extension workload (50% reads,
// 25% inserts, 25% deletes) on longitudes: §3.2 argues deletes are
// strictly simpler than inserts because they never shift keys; node
// contraction keeps data space bounded under churn.
func ExtDeleteChurn(w io.Writer, o Options) []ExtDeleteRow {
	o = o.withFloors()
	all := datasets.GenLongitudes(o.RWInit+o.Ops, o.Seed)
	init, stream := all[:o.RWInit], all[o.RWInit:]
	spec := workload.Spec{
		Kind: workload.DeleteHeavy, InitKeys: init, InsertStream: stream,
		Ops: o.Ops, Seed: o.Seed + 24,
	}

	at := buildALEX(init, core.Config{Layout: core.GappedArray, RMI: core.AdaptiveRMI})
	ar := workload.Run(at, spec)
	pt := buildALEX(init, core.Config{Layout: core.PackedMemoryArray, RMI: core.AdaptiveRMI})
	pr := workload.Run(pt, spec)
	bt := buildBTree(init, btree.Config{})
	br := workload.Run(bt, spec)

	rows := []ExtDeleteRow{
		{Index: "ALEX-GA-ARMI", Throughput: ar.Throughput, DataBytes: ar.DataBytes, Contracts: at.Stats().Contracts},
		{Index: "ALEX-PMA-ARMI", Throughput: pr.Throughput, DataBytes: pr.DataBytes, Contracts: pt.Stats().Contracts},
		{Index: "B+Tree", Throughput: br.Throughput, DataBytes: br.DataBytes},
	}
	t := stats.NewTable("index", "throughput", "data size", "contractions", "vs B+Tree")
	for _, r := range rows {
		t.AddRow(r.Index, stats.FormatOps(r.Throughput), stats.FormatBytes(r.DataBytes),
			fmt.Sprintf("%d", r.Contracts), fmt.Sprintf("%.2fx", r.Throughput/br.Throughput))
	}
	section(w, "extension: delete-heavy churn (50r/25i/25d, longitudes)")
	io.WriteString(w, t.String())
	return rows
}
