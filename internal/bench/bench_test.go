package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/leafbase"
	"repro/internal/workload"
)

// tiny returns options small enough for unit tests.
func tiny() Options {
	return Options{ReadOnlyInit: 30000, RWInit: 8000, Ops: 20000, Seed: 3}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	tab := Table1(&buf, tiny())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := buf.String()
	for _, want := range []string{"longitudes", "longlat", "lognormal", "ycsb", "80B"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig4ReadOnlyIncludesLearnedIndex(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig4(&buf, tiny(), workload.ReadOnly)
	if len(rows) != 12 { // 4 datasets x (ALEX, B+Tree, LearnedIndex)
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Fatalf("no throughput for %s/%s", r.Dataset, r.Index)
		}
		if r.Misses != 0 {
			t.Fatalf("%s/%s had %d misses", r.Dataset, r.Index, r.Misses)
		}
	}
	if !strings.Contains(buf.String(), "LearnedIndex") {
		t.Fatal("learned index missing from read-only output")
	}
	// Headline claim (Fig 4e): ALEX index size orders of magnitude below
	// B+Tree's on every dataset.
	for i := 0; i < len(rows); i += 3 {
		alex, bt := rows[i], rows[i+1]
		if alex.IndexBytes >= bt.IndexBytes {
			t.Fatalf("%s: ALEX index %d B not smaller than B+Tree %d B", alex.Dataset, alex.IndexBytes, bt.IndexBytes)
		}
	}
}

func TestFig4WriteHeavyExcludesLearnedIndex(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig4(&buf, tiny(), workload.WriteHeavy)
	if len(rows) != 8 { // 4 datasets x (ALEX, B+Tree)
		t.Fatalf("rows = %d", len(rows))
	}
	if strings.Contains(buf.String(), "LearnedIndex") {
		t.Fatal("learned index in write-heavy output")
	}
	for _, r := range rows {
		if r.Misses != 0 {
			t.Fatalf("%s/%s: %d misses", r.Dataset, r.Index, r.Misses)
		}
	}
}

func TestFig4VariantSelection(t *testing.T) {
	if BestALEXFor(workload.ReadOnly) != "ALEX-GA-SRMI" {
		t.Fatal("read-only should use GA-SRMI (§5.2.1)")
	}
	for _, k := range []workload.Kind{workload.ReadHeavy, workload.WriteHeavy, workload.RangeScan} {
		if BestALEXFor(k) != "ALEX-GA-ARMI" {
			t.Fatalf("%v should use GA-ARMI (§5.2.2)", k)
		}
	}
}

func TestFig5a(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig5a(&buf, tiny())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	prev := 0
	for _, r := range rows {
		if r.InitKeys <= prev {
			t.Fatal("sweep not increasing")
		}
		prev = r.InitKeys
		if r.ALEXThroughput <= 0 || r.BTreeThroughput <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestFig5b(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig5b(&buf, tiny())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	ratio := rows[0].Throughput / rows[1].Throughput
	// §5.2.5: ALEX is "competitive" under moderate shift — allow a wide
	// band but fail if it collapses.
	if ratio < 0.2 {
		t.Fatalf("ALEX/B+Tree = %.2f under distribution shift; should be competitive", ratio)
	}
}

func TestFig5c(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig5c(&buf, tiny())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestFig6(t *testing.T) {
	o := tiny()
	o.ReadOnlyInit = 20000
	var buf bytes.Buffer
	series := Fig6(&buf, o)
	if len(series) != 2 {
		t.Fatalf("datasets = %d", len(series))
	}
	for name, ss := range series {
		if len(ss) != 4 {
			t.Fatalf("%s: series = %d", name, len(ss))
		}
		for _, s := range ss {
			if len(s.Points) == 0 {
				t.Fatalf("%s/%s: no points", name, s.Index)
			}
			for _, p := range s.Points {
				if p.InsertNsPerOp <= 0 || p.LookupNsPerOp <= 0 {
					t.Fatalf("%s/%s: bad point %+v", name, s.Index, p)
				}
			}
		}
	}
}

func TestFig7PredictionErrorShape(t *testing.T) {
	var buf bytes.Buffer
	res := Fig7(&buf, tiny())
	// The paper's central drilldown claim: ALEX error after init is far
	// below the Learned Index's, with a large zero-error fraction.
	if res.ALEXAfterInit.Mean() >= res.LearnedIndex.Mean() {
		t.Fatalf("ALEX mean error %.2f not below Learned Index %.2f",
			res.ALEXAfterInit.Mean(), res.LearnedIndex.Mean())
	}
	if res.ALEXAfterInit.ZeroFraction() < 0.25 {
		t.Fatalf("ALEX zero-error fraction %.2f too small; model-based inserts should give direct hits",
			res.ALEXAfterInit.ZeroFraction())
	}
	// After inserts errors may grow but must stay well under Learned Index.
	if res.ALEXAfterInserts.Mean() >= res.LearnedIndex.Mean() {
		t.Fatalf("ALEX error after inserts %.2f reached Learned Index territory %.2f",
			res.ALEXAfterInserts.Mean(), res.LearnedIndex.Mean())
	}
}

func TestFig8ShiftOrdering(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig8(&buf, tiny())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Index] = r.ShiftsPerInsert
	}
	// Fig 8 claims: Learned Index >> all ALEX variants; GA-SRMI is the
	// worst ALEX variant; PMA or ARMI mitigate it.
	if byName["LearnedIndex"] <= byName["ALEX-GA-SRMI"] {
		t.Fatalf("LearnedIndex shifts %.1f should exceed GA-SRMI %.1f",
			byName["LearnedIndex"], byName["ALEX-GA-SRMI"])
	}
	if byName["ALEX-PMA-SRMI"] >= byName["ALEX-GA-SRMI"] {
		t.Fatalf("PMA-SRMI %.1f should shift less than GA-SRMI %.1f",
			byName["ALEX-PMA-SRMI"], byName["ALEX-GA-SRMI"])
	}
	if byName["ALEX-GA-ARMI"] >= byName["ALEX-GA-SRMI"] {
		t.Fatalf("GA-ARMI %.1f should shift less than GA-SRMI %.1f",
			byName["ALEX-GA-ARMI"], byName["ALEX-GA-SRMI"])
	}
}

func TestFig9(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig9(&buf, tiny())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Median <= 0 || r.Max < r.P99 || r.P99 < r.Median {
			t.Fatalf("bad percentiles: %+v", r)
		}
	}
}

func TestFig10(t *testing.T) {
	var buf bytes.Buffer
	rows := Fig10(&buf, tiny())
	if len(rows) != 16 { // 4 datasets x 4 overheads
		t.Fatalf("rows = %d", len(rows))
	}
	// Data size must grow with the overhead budget within each dataset.
	for d := 0; d < 4; d++ {
		base := rows[d*4]
		top := rows[d*4+3]
		if top.DataBytes <= base.DataBytes {
			t.Fatalf("%s: 3x budget data %d not above 20%% budget %d",
				top.Dataset, top.DataBytes, base.DataBytes)
		}
	}
}

func TestFig11ExponentialScalesWithError(t *testing.T) {
	o := tiny()
	o.ReadOnlyInit = 100000
	var buf bytes.Buffer
	rows := Fig11(&buf, o)
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Comparisons must grow with error size for exponential search.
	if rows[0].ExpComparisons >= rows[len(rows)-1].ExpComparisons {
		t.Fatalf("exp comparisons did not grow with error: %.1f .. %.1f",
			rows[0].ExpComparisons, rows[len(rows)-1].ExpComparisons)
	}
	// At tiny error, exponential must beat the wide bounded binary.
	if rows[0].ExpNsPerOp >= rows[0].Bin4096NsPerOp*2 {
		t.Fatalf("exp search at error 0 (%.1f ns) not competitive with bin4096 (%.1f ns)",
			rows[0].ExpNsPerOp, rows[0].Bin4096NsPerOp)
	}
}

func TestFig12AdaptiveBoundsLeaves(t *testing.T) {
	var buf bytes.Buffer
	res := Fig12(&buf, tiny())
	if res.AdaptiveOver != 0 {
		t.Fatalf("adaptive RMI has %d leaves over the bound", res.AdaptiveOver)
	}
	if len(res.StaticSizes) == 0 || len(res.AdaptiveSizes) == 0 {
		t.Fatal("no leaves")
	}
}

func TestFig13(t *testing.T) {
	var buf bytes.Buffer
	Fig13(&buf, tiny())
	out := buf.String()
	if !strings.Contains(out, "Fig 13") || !strings.Contains(out, "Fig 14") {
		t.Fatalf("missing sections:\n%s", out)
	}
}

func TestAblationLeafBound(t *testing.T) {
	var buf bytes.Buffer
	rows := AblationLeafBound(&buf, tiny())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Smaller bounds must yield more leaves.
	if rows[0].Leaves <= rows[len(rows)-1].Leaves {
		t.Fatalf("leaf count did not shrink with bound: %d .. %d",
			rows[0].Leaves, rows[len(rows)-1].Leaves)
	}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestAblationInnerFanout(t *testing.T) {
	var buf bytes.Buffer
	rows := AblationInnerFanout(&buf, tiny())
	if len(rows) != 7 { // 6 swept fanouts + the cost-chosen row
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Throughput <= 0 || r.Height < 1 {
			t.Fatalf("bad row %+v", r)
		}
	}
	if rows[len(rows)-1].Label != "cost" {
		t.Fatalf("last row = %+v, want the cost-chosen series", rows[len(rows)-1])
	}
}

func TestAblationSplitFanout(t *testing.T) {
	var buf bytes.Buffer
	rows := AblationSplitFanout(&buf, tiny())
	if len(rows) != 5 { // 4 swept fanouts + the cost-chosen row
		t.Fatalf("rows = %d", len(rows))
	}
	// Larger split fanout must produce at least as many leaves under the
	// same shift workload (comparing within the swept series).
	if rows[3].Leaves < rows[0].Leaves {
		t.Fatalf("fanout 16 leaves %d < fanout 2 leaves %d",
			rows[3].Leaves, rows[0].Leaves)
	}
	if rows[len(rows)-1].Label != "cost" {
		t.Fatalf("last row = %+v, want the cost-chosen series", rows[len(rows)-1])
	}
}

func TestExtDeleteChurn(t *testing.T) {
	var buf bytes.Buffer
	rows := ExtDeleteChurn(&buf, tiny())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Throughput <= 0 || r.DataBytes <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestExtTheory(t *testing.T) {
	var buf bytes.Buffer
	out := ExtTheory(&buf, tiny())
	if len(out) != 4 {
		t.Fatalf("datasets = %d", len(out))
	}
	for name, rows := range out {
		prev := -1.0
		for _, r := range rows {
			if r.Simulated < r.LowerFrac-1e-9 || r.Simulated > r.UpperFrac+1e-9 {
				t.Fatalf("%s c=%v: simulated %.3f outside [%v, %v]",
					name, r.C, r.Simulated, r.LowerFrac, r.UpperFrac)
			}
			if r.Simulated < prev {
				t.Fatalf("%s: direct-hit fraction fell from %.3f to %.3f", name, prev, r.Simulated)
			}
			prev = r.Simulated
		}
	}
}

func TestExtAdaptivePMA(t *testing.T) {
	var buf bytes.Buffer
	rows := ExtAdaptivePMA(&buf, tiny())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	uniform, adaptive := rows[0], rows[1]
	if adaptive.Rebalances >= uniform.Rebalances {
		t.Fatalf("adaptive PMA rebalances %d not below uniform %d",
			adaptive.Rebalances, uniform.Rebalances)
	}
}

func TestExtDisk(t *testing.T) {
	var buf bytes.Buffer
	rows := ExtDisk(&buf, tiny())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	warm, tinyCache := rows[1], rows[3]
	if warm.HitRate < 0.99 {
		t.Fatalf("warm cache hit rate %.3f", warm.HitRate)
	}
	if tinyCache.HitRate > 0.5 {
		t.Fatalf("4-page cache hit rate %.3f suspiciously high", tinyCache.HitRate)
	}
	if tinyCache.PhysReads == 0 {
		t.Fatal("tiny cache performed no physical reads")
	}
	// The paged RMI stays tiny relative to paged data.
	if rows[1].IndexBytes > rows[1].DataBytes/10 {
		t.Fatalf("paged RMI %d B not small vs data %d B", rows[1].IndexBytes, rows[1].DataBytes)
	}
}

func TestTuneBaselines(t *testing.T) {
	// The -tune path mirrors §5.1's grid search; it must pick a valid
	// candidate and the tuned Fig 4 run must still work end to end.
	o := tiny()
	o.ReadOnlyInit = 20000
	o.Ops = 10000
	o.TuneBaselines = true
	var buf bytes.Buffer
	rows := Fig4(&buf, o, workload.ReadOnly)
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := buf.String()
	if !strings.Contains(out, "B+Tree(page=") {
		t.Fatalf("no tuned page size in output:\n%s", out)
	}
	for _, r := range rows {
		if r.Throughput <= 0 || r.Misses != 0 {
			t.Fatalf("bad tuned row %+v", r)
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	for _, name := range Order {
		if Experiments[name] == nil {
			t.Fatalf("experiment %q not registered", name)
		}
	}
	// The combined fig4 alias exists but is not in Order (its four
	// columns are).
	if Experiments["fig4"] == nil {
		t.Fatal("fig4 alias missing")
	}
	if len(Experiments) != len(Order)+1 {
		t.Fatalf("registry has %d entries, want %d", len(Experiments), len(Order)+1)
	}
}

func TestExtConcurrent(t *testing.T) {
	var buf bytes.Buffer
	rows := ExtConcurrent(&buf, tiny())
	if len(rows) != 6 { // 2 mixes x 3 goroutine counts
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SyncOpsPerS <= 0 || r.ShardedOpsPerS <= 0 || r.Speedup <= 0 {
			t.Fatalf("bad row %+v", r)
		}
		if r.Goroutines != 1 && r.Goroutines != 4 && r.Goroutines != 8 {
			t.Fatalf("unexpected goroutine count %d", r.Goroutines)
		}
	}
	if !strings.Contains(buf.String(), "ShardedIndex") {
		t.Fatal("sharded column missing from output")
	}
}

func TestExtErrorBounds(t *testing.T) {
	var buf bytes.Buffer
	rows := ExtErrorBounds(&buf, tiny())
	if len(rows) != len(datasets.All) {
		t.Fatalf("rows = %d, want %d", len(rows), len(datasets.All))
	}
	for _, r := range rows {
		if r.P50 < 0 || r.P99 < r.P50 {
			t.Fatalf("%s: percentiles not monotone: p50=%d p99=%d", r.Dataset, r.P50, r.P99)
		}
		if r.BoundedShare < 0 || r.BoundedShare > 1 {
			t.Fatalf("%s: bounded share %v out of range", r.Dataset, r.BoundedShare)
		}
		if r.BoundedNs <= 0 || r.ExpNs <= 0 {
			t.Fatalf("%s: non-positive timings %v / %v", r.Dataset, r.BoundedNs, r.ExpNs)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "error bounds & search-strategy selection") {
		t.Fatalf("missing section header in:\n%s", out)
	}
	if !strings.Contains(out, "error-bound histogram") {
		t.Fatalf("missing histogram in:\n%s", out)
	}
}

// BenchmarkGetBoundedVsExponential measures the same point lookups on
// the same drifted tree with the error-bound-driven bounded search on
// (the default) and forced off (every miss brackets exponentially —
// the pre-ISSUE-5 read path). The Bounded run also reports the leaf
// error distribution, which benchjson folds into BENCH_ci.json's
// error_bounds block.
func BenchmarkGetBoundedVsExponential(b *testing.B) {
	defer leafbase.SetBoundedSearch(true)
	keys := datasets.Generate(datasets.Longitudes, 1<<17, 7)
	init, stream := keys[:1<<16], keys[1<<16:]
	tr, err := core.BulkLoad(init, nil, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for i, k := range stream {
		tr.Insert(k, uint64(i))
	}
	mask := len(keys) - 1
	for _, mode := range []struct {
		name string
		on   bool
	}{{"Bounded", true}, {"Exponential", false}} {
		b.Run(mode.name, func(b *testing.B) {
			leafbase.SetBoundedSearch(mode.on)
			var sink uint64
			for i := 0; i < b.N; i++ {
				v, _ := tr.Get(keys[i&mask])
				sink += v
			}
			_ = sink
			if mode.on {
				st := tr.Stats()
				b.ReportMetric(float64(st.LeafErrPercentile(50)), "p50-leaf-err")
				b.ReportMetric(float64(st.LeafErrPercentile(99)), "p99-leaf-err")
				b.ReportMetric(st.BoundedShare(), "bounded-share")
			}
		})
	}
}
