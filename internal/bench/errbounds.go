package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/leafbase"
	"repro/internal/stats"
)

// ErrBoundsRow is one dataset's error-bound and search-selection
// summary.
type ErrBoundsRow struct {
	Dataset      datasets.Name
	P50, P99     int     // per-leaf error-bound percentiles
	MaxErr       int     // worst leaf
	BoundedShare float64 // fraction of keys served by bounded search
	CostRetrains uint64  // cost-model retrains triggered during the run
	BoundedNs    float64 // Get ns/op with the bounded fast path on
	ExpNs        float64 // Get ns/op forced through exponential search
}

// ExtErrorBounds reports the per-leaf prediction-error-bound
// distribution and what the §4 cost-model search selection buys: for
// each dataset it bulk loads at the read-write scale, applies an
// insert stream (so bounds drift the way they do in production, not
// just at bulk-load), then measures point lookups with the bounded
// fast path on vs forced exponential search, and renders the leaf
// error histogram.
func ExtErrorBounds(w io.Writer, o Options) []ErrBoundsRow {
	o = o.withFloors()
	defer leafbase.SetBoundedSearch(true)
	var out []ErrBoundsRow
	t := stats.NewTable("dataset", "p50 err", "p99 err", "max err", "bounded share",
		"cost retrains", "bounded ns/get", "exponential ns/get", "speedup")
	for _, name := range datasets.All {
		keys := datasets.Generate(name, o.RWInit+o.Ops, o.Seed)
		init, stream := keys[:o.RWInit], keys[o.RWInit:]
		tr, err := core.BulkLoad(init, nil, core.Config{})
		if err != nil {
			panic(err)
		}
		for i, k := range stream {
			tr.Insert(k, uint64(i))
		}
		st := tr.Stats()
		row := ErrBoundsRow{
			Dataset:      name,
			P50:          st.LeafErrPercentile(50),
			P99:          st.LeafErrPercentile(99),
			MaxErr:       st.MaxLeafErr,
			BoundedShare: st.BoundedShare(),
			CostRetrains: st.CostRetrains,
		}
		// Alternate the two modes and keep each mode's best pass, so
		// cold caches and GC pauses cannot be attributed to whichever
		// mode happens to run first.
		probes := o.Ops
		row.BoundedNs = timeGets(tr, keys, probes, true)
		row.ExpNs = timeGets(tr, keys, probes, false)
		for pass := 0; pass < 4; pass++ {
			if ns := timeGets(tr, keys, probes, true); ns < row.BoundedNs {
				row.BoundedNs = ns
			}
			if ns := timeGets(tr, keys, probes, false); ns < row.ExpNs {
				row.ExpNs = ns
			}
		}
		out = append(out, row)
		speedup := 0.0
		if row.BoundedNs > 0 {
			speedup = row.ExpNs / row.BoundedNs
		}
		t.AddRow(string(name),
			fmt.Sprintf("%d", row.P50), fmt.Sprintf("%d", row.P99),
			fmt.Sprintf("%d", row.MaxErr), fmt.Sprintf("%.3f", row.BoundedShare),
			fmt.Sprintf("%d", row.CostRetrains),
			fmt.Sprintf("%.1f", row.BoundedNs), fmt.Sprintf("%.1f", row.ExpNs),
			fmt.Sprintf("%.2fx", speedup))
		if name == datasets.Longitudes {
			section(w, "per-leaf error-bound histogram (longitudes, leaves per power-of-two bucket)")
			io.WriteString(w, stats.HistogramFromCounts(st.ErrHist[:]).Render(40))
		}
	}
	section(w, fmt.Sprintf("extension: error bounds & search-strategy selection (init=%d, stream=%d)",
		o.RWInit, o.Ops))
	io.WriteString(w, t.String())
	return out
}

// timeGets measures ns per Get over a shuffled probe set with the
// bounded fast path toggled.
func timeGets(tr *core.Tree, keys []float64, probes int, bounded bool) float64 {
	leafbase.SetBoundedSearch(bounded)
	rng := rand.New(rand.NewSource(77))
	order := make([]float64, probes)
	for i := range order {
		order[i] = keys[rng.Intn(len(keys))]
	}
	start := time.Now()
	var sink uint64
	for _, k := range order {
		v, _ := tr.Get(k)
		sink += v
	}
	_ = sink
	return float64(time.Since(start).Nanoseconds()) / float64(probes)
}
