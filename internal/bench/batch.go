package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/stats"
)

// ExtBatchRow is one row of the batch-API study: an operation applied
// as a loop of single-key calls versus one sorted batch call.
type ExtBatchRow struct {
	Op           string
	LoopOpsPerS  float64
	BatchOpsPerS float64
	Speedup      float64
}

// ExtBatch measures the batch-first API extension: the same multi-key
// workload executed as a loop of single-key operations and as sorted
// batch calls. The batch path pays one RMI descent per touched data
// node, amortized in-node searches, and at most one
// expand/retrain/split decision per node per batch — the set-at-a-time
// amortization the redesign exists for. Measured on GA-ARMI (the
// paper's read-write default) with longitudes keys.
func ExtBatch(w io.Writer, o Options) []ExtBatchRow {
	o = o.withFloors()
	initN := o.RWInit
	batchN := o.Ops
	all := datasets.GenLongitudes(initN+2*batchN, o.Seed)
	init := all[:initN]
	streams := [2][]float64{
		datasets.Sorted(all[initN : initN+batchN]),
		datasets.Sorted(all[initN+batchN:]),
	}
	payloads := make([]uint64, batchN)
	for i := range payloads {
		payloads[i] = uint64(i)
	}
	cfg := core.Config{Layout: core.GappedArray, RMI: core.AdaptiveRMI}

	var rows []ExtBatchRow
	add := func(op string, n int, loop, batch time.Duration) {
		r := ExtBatchRow{
			Op:           op,
			LoopOpsPerS:  float64(n) / loop.Seconds(),
			BatchOpsPerS: float64(n) / batch.Seconds(),
		}
		r.Speedup = r.BatchOpsPerS / r.LoopOpsPerS
		rows = append(rows, r)
	}

	// Inserts: the same sorted stream into two identically-loaded trees.
	loopT := buildALEX(init, cfg)
	batchT := buildALEX(init, cfg)
	start := time.Now()
	for i, k := range streams[0] {
		loopT.Insert(k, payloads[i])
	}
	loopD := time.Since(start)
	start = time.Now()
	batchT.InsertBatch(streams[0], payloads)
	add("insert", batchN, loopD, time.Since(start))

	// Merge: the second stream, against the loop of single inserts.
	start = time.Now()
	for i, k := range streams[1] {
		loopT.Insert(k, payloads[i])
	}
	loopD = time.Since(start)
	start = time.Now()
	batchT.Merge(streams[1], payloads)
	add("merge", batchN, loopD, time.Since(start))

	// Gets: both trees now hold identical contents; probe with a sorted
	// mix of present keys.
	probe := append([]float64(nil), streams[0]...)
	probe = append(probe, init...)
	probe = datasets.Sorted(probe)
	if len(probe) > batchN {
		probe = probe[:batchN]
	}
	start = time.Now()
	for _, k := range probe {
		loopT.Get(k)
	}
	loopD = time.Since(start)
	start = time.Now()
	batchT.GetBatch(probe)
	add("get", len(probe), loopD, time.Since(start))

	// Deletes: remove the first stream from both trees.
	start = time.Now()
	for _, k := range streams[0] {
		loopT.Delete(k)
	}
	loopD = time.Since(start)
	start = time.Now()
	batchT.DeleteBatch(streams[0])
	add("delete", batchN, loopD, time.Since(start))

	t := stats.NewTable("op", "loop Mops/s", "batch Mops/s", "speedup")
	for _, r := range rows {
		t.AddRow(r.Op,
			fmt.Sprintf("%.2f", r.LoopOpsPerS/1e6),
			fmt.Sprintf("%.2f", r.BatchOpsPerS/1e6),
			fmt.Sprintf("%.2fx", r.Speedup),
		)
	}
	section(w, fmt.Sprintf("Ext: batch API, one sorted %d-key batch vs single-key loop (GA-ARMI, longitudes)", batchN))
	io.WriteString(w, t.String())
	return rows
}
