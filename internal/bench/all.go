package bench

import (
	"io"

	"repro/internal/workload"
)

// Experiments maps experiment names (the CLI's subcommands) to drivers.
// Drivers write their tables to w; return values are dropped here —
// callers needing structured results use the typed functions directly.
var Experiments = map[string]func(w io.Writer, o Options){
	"table1": func(w io.Writer, o Options) { Table1(w, o) },
	"fig4a":  func(w io.Writer, o Options) { Fig4(w, o, workload.ReadOnly) },
	"fig4b":  func(w io.Writer, o Options) { Fig4(w, o, workload.ReadHeavy) },
	"fig4c":  func(w io.Writer, o Options) { Fig4(w, o, workload.WriteHeavy) },
	"fig4d":  func(w io.Writer, o Options) { Fig4(w, o, workload.RangeScan) },
	"fig4":   func(w io.Writer, o Options) { Fig4All(w, o) },
	"fig5a":  func(w io.Writer, o Options) { Fig5a(w, o) },
	"fig5b":  func(w io.Writer, o Options) { Fig5b(w, o) },
	"fig5c":  func(w io.Writer, o Options) { Fig5c(w, o) },
	"fig6":   func(w io.Writer, o Options) { Fig6(w, o) },
	"fig7":   func(w io.Writer, o Options) { Fig7(w, o) },
	"fig8":   func(w io.Writer, o Options) { Fig8(w, o) },
	"fig9":   func(w io.Writer, o Options) { Fig9(w, o) },
	"fig10":  func(w io.Writer, o Options) { Fig10(w, o) },
	"fig11":  func(w io.Writer, o Options) { Fig11(w, o) },
	"fig12":  func(w io.Writer, o Options) { Fig12(w, o) },
	"fig13":  func(w io.Writer, o Options) { Fig13(w, o) },
	// Extensions beyond the paper's figures: parameter ablations for the
	// knobs §3.4 says are "tuned or learned", and delete churn (§3.2).
	"ablation-leaf":   func(w io.Writer, o Options) { AblationLeafBound(w, o) },
	"ablation-fanout": func(w io.Writer, o Options) { AblationInnerFanout(w, o) },
	"ablation-split":  func(w io.Writer, o Options) { AblationSplitFanout(w, o) },
	"ext-delete":      func(w io.Writer, o Options) { ExtDeleteChurn(w, o) },
	"ext-theory":      func(w io.Writer, o Options) { ExtTheory(w, o) },
	"ext-apma":        func(w io.Writer, o Options) { ExtAdaptivePMA(w, o) },
	"ext-disk":        func(w io.Writer, o Options) { ExtDisk(w, o) },
	"ext-batch":       func(w io.Writer, o Options) { ExtBatch(w, o) },
	"ext-concurrent":  func(w io.Writer, o Options) { ExtConcurrent(w, o) },
	"ext-errbounds":   func(w io.Writer, o Options) { ExtErrorBounds(w, o) },
}

// Order is the canonical experiment ordering for `alexbench all`.
var Order = []string{
	"table1", "fig4a", "fig4b", "fig4c", "fig4d",
	"fig5a", "fig5b", "fig5c", "fig6", "fig7", "fig8",
	"fig9", "fig10", "fig11", "fig12", "fig13",
	"ablation-leaf", "ablation-fanout", "ablation-split",
	"ext-delete", "ext-theory", "ext-apma", "ext-disk", "ext-batch",
	"ext-concurrent", "ext-errbounds",
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, o Options) {
	for _, name := range Order {
		Experiments[name](w, o)
	}
}
