package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/learned"
	"repro/internal/stats"
)

// Fig8Row is one bar of Fig 8: average element shifts per insert.
type Fig8Row struct {
	Index           string
	ShiftsPerInsert float64
}

// Fig8 regenerates the shifts-per-insert study (§5.3): a write-only
// workload on longitudes against the Learned Index's dense array and all
// four ALEX variants. The paper's claims: the gap-less Learned Index
// array shifts enormously; PMA cuts GA's shifts by ~45x under static
// RMI; adaptive RMI cuts GA's shifts by ~37x; under ARMI the two layouts
// are comparable.
func Fig8(w io.Writer, o Options) []Fig8Row {
	o = o.withFloors()
	// The paper's regime: a well-initialized index receiving inserts that
	// are small relative to the initial size. The static RMI is given few
	// models (its grid search optimizes throughput, not leaf evenness),
	// so its leaves are large and uneven — the source of fully-packed
	// regions — while adaptive RMI bounds every leaf at initialization.
	initN := o.ReadOnlyInit
	inserts := initN / 2
	all := datasets.GenLongitudes(initN+inserts, o.Seed)
	init, stream := all[:initN], all[initN:]
	staticModels := initN / 16384
	if staticModels < 1 {
		staticModels = 1
	}

	var rows []Fig8Row

	// Learned Index: every insert shifts on average half the dense
	// array, so the full stream would dominate the driver's runtime; a
	// prefix sample estimates the per-insert average just as well.
	liInserts := len(stream)
	if liInserts > 20000 {
		liInserts = 20000
	}
	li, err := learned.BulkLoad(init, nil, learned.Config{})
	if err == nil {
		for i, k := range stream[:liInserts] {
			li.Insert(k, uint64(i))
		}
		rows = append(rows, Fig8Row{
			Index:           "LearnedIndex",
			ShiftsPerInsert: float64(li.Stats().Shifts) / float64(liInserts),
		})
	}

	for _, cfg := range []core.Config{
		{Layout: core.GappedArray, RMI: core.StaticRMI, NumLeafModels: staticModels},
		{Layout: core.PackedMemoryArray, RMI: core.StaticRMI, NumLeafModels: staticModels},
		{Layout: core.GappedArray, RMI: core.AdaptiveRMI},
		{Layout: core.PackedMemoryArray, RMI: core.AdaptiveRMI},
	} {
		at := buildALEX(init, cfg)
		before := at.Stats().Shifts
		for i, k := range stream {
			at.Insert(k, uint64(i))
		}
		after := at.Stats().Shifts
		rows = append(rows, Fig8Row{
			Index:           cfg.VariantName(),
			ShiftsPerInsert: float64(after-before) / float64(len(stream)),
		})
	}

	t := stats.NewTable("index", "shifts/insert")
	for _, r := range rows {
		t.AddRow(r.Index, fmt.Sprintf("%.2f", r.ShiftsPerInsert))
	}
	section(w, fmt.Sprintf("Fig 8: shifts per insert (longitudes, init=%d, inserts=%d)", initN, inserts))
	io.WriteString(w, t.String())
	return rows
}
