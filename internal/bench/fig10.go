package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gapped"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig10Row is one (dataset, space budget) cell of Fig 10.
type Fig10Row struct {
	Dataset    datasets.Name
	Overhead   float64
	Density    float64
	Throughput float64
	DataBytes  int
}

// Fig10 regenerates the data-space study (§5.3.1): the read-heavy
// workload with the gapped array's space overhead swept over 20%, 43%
// (the default, comparable to B+Tree), 2x and 3x. The paper's claims:
// more space usually helps (fewer fully-packed regions), with
// diminishing returns, and easy datasets (lognormal, YCSB) regress at 3x
// from cache effects.
func Fig10(w io.Writer, o Options) []Fig10Row {
	o = o.withFloors()
	overheads := []float64{0.20, 0.43, 1.0, 2.0}
	var rows []Fig10Row
	for _, name := range datasets.All {
		all := datasets.Generate(name, o.RWInit+o.Ops, o.Seed)
		init, stream := all[:o.RWInit], all[o.RWInit:]
		for _, ov := range overheads {
			d := gapped.DensityForOverhead(ov)
			cfg := core.Config{
				Layout: core.GappedArray, RMI: core.AdaptiveRMI,
				Density: d, PayloadBytes: name.PayloadBytes(),
			}
			at := buildALEX(init, cfg)
			res := workload.Run(at, workload.Spec{
				Kind: workload.ReadHeavy, InitKeys: init, InsertStream: stream,
				Ops: o.Ops, Seed: o.Seed + 11,
			})
			rows = append(rows, Fig10Row{
				Dataset: name, Overhead: ov, Density: d,
				Throughput: res.Throughput, DataBytes: res.DataBytes,
			})
		}
	}
	t := stats.NewTable("dataset", "space overhead", "density d", "throughput", "data size")
	for _, r := range rows {
		t.AddRow(string(r.Dataset),
			fmt.Sprintf("%.0f%%", r.Overhead*100),
			fmt.Sprintf("%.3f", r.Density),
			stats.FormatOps(r.Throughput),
			stats.FormatBytes(r.DataBytes))
	}
	section(w, "Fig 10: data space overhead vs read-heavy throughput")
	io.WriteString(w, t.String())
	return rows
}
