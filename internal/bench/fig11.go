package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/search"
	"repro/internal/stats"
)

// Fig11Row is one error-size point of the search microbenchmark.
type Fig11Row struct {
	ErrSize        int
	ExpNsPerOp     float64
	ExpComparisons float64
	Bin64NsPerOp   float64
	Bin512NsPerOp  float64
	Bin4096NsPerOp float64
}

// Fig11 regenerates the exponential vs binary search microbenchmark
// (§5.3.2): a perfectly uniform integer array; searches receive a
// predicted position offset from the true position by a synthetic error;
// exponential search is compared against bounded binary search with
// three fixed bound sizes. Expected shape: exponential cost grows with
// log(error), bounded binary is flat in the error but pays its full
// bound always.
func Fig11(w io.Writer, o Options) []Fig11Row {
	o = o.withFloors()
	n := o.ReadOnlyInit * 4
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	lookups := o.Ops / 2
	if lookups < 10000 {
		lookups = 10000
	}
	errSizes := []int{0, 2, 8, 32, 128, 512, 2048, 4096}

	timeSearch := func(errSize int, f func(truePos int) int) float64 {
		rng := rand.New(rand.NewSource(o.Seed + int64(errSize)))
		positions := make([]int, lookups)
		for i := range positions {
			positions[i] = rng.Intn(n-2*4096-2) + 4096
		}
		t0 := time.Now()
		sink := 0
		for _, p := range positions {
			sink += f(p)
		}
		el := time.Since(t0)
		_ = sink
		return float64(el.Nanoseconds()) / float64(lookups)
	}

	var rows []Fig11Row
	for _, e := range errSizes {
		row := Fig11Row{ErrSize: e}
		row.ExpNsPerOp = timeSearch(e, func(p int) int {
			return search.Exponential(a, a[p], p+e)
		})
		var probes search.Probes
		sampleN := 1000
		rng := rand.New(rand.NewSource(o.Seed))
		for i := 0; i < sampleN; i++ {
			p := rng.Intn(n-2*4096-2) + 4096
			probes.Exponential(a, a[p], p+e)
		}
		row.ExpComparisons = float64(probes.Comparisons) / float64(sampleN)
		row.Bin64NsPerOp = timeSearch(e, func(p int) int {
			pos := p + e
			if e > 64 {
				pos = p // bounds would not contain the target; give best case
			}
			return search.BoundedBinary(a, a[p], pos, 64, 64)
		})
		row.Bin512NsPerOp = timeSearch(e, func(p int) int {
			pos := p + e
			if e > 512 {
				pos = p
			}
			return search.BoundedBinary(a, a[p], pos, 512, 512)
		})
		row.Bin4096NsPerOp = timeSearch(e, func(p int) int {
			return search.BoundedBinary(a, a[p], p+e, 4096, 4096)
		})
		rows = append(rows, row)
	}

	t := stats.NewTable("error", "exp ns/op", "exp cmps", "bin64 ns/op", "bin512 ns/op", "bin4096 ns/op")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.ErrSize),
			fmt.Sprintf("%.1f", r.ExpNsPerOp),
			fmt.Sprintf("%.1f", r.ExpComparisons),
			fmt.Sprintf("%.1f", r.Bin64NsPerOp),
			fmt.Sprintf("%.1f", r.Bin512NsPerOp),
			fmt.Sprintf("%.1f", r.Bin4096NsPerOp))
	}
	section(w, fmt.Sprintf("Fig 11: exponential vs bounded binary search (array n=%d)", n))
	io.WriteString(w, t.String())
	return rows
}
