package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig5aRow is one point of the scalability curve.
type Fig5aRow struct {
	InitKeys        int
	ALEXThroughput  float64
	BTreeThroughput float64
}

// Fig5a regenerates the scalability study (§5.2.4): the read-heavy
// workload on longitudes with the number of initialization keys swept,
// ALEX-GA-ARMI vs B+Tree.
func Fig5a(w io.Writer, o Options) []Fig5aRow {
	o = o.withFloors()
	maxInit := o.ReadOnlyInit
	sweep := []int{maxInit / 8, maxInit / 4, maxInit / 2, maxInit}
	all := datasets.GenLongitudes(maxInit+o.Ops, o.Seed)

	var rows []Fig5aRow
	for _, initN := range sweep {
		init, stream := all[:initN], all[maxInit:]
		spec := workload.Spec{Kind: workload.ReadHeavy, InitKeys: init, InsertStream: stream, Ops: o.Ops, Seed: o.Seed + 3}
		at := buildALEX(init, core.Config{Layout: core.GappedArray, RMI: core.AdaptiveRMI})
		ar := workload.Run(at, spec)
		bt := buildBTree(init, btree.Config{})
		br := workload.Run(bt, spec)
		rows = append(rows, Fig5aRow{InitKeys: initN, ALEXThroughput: ar.Throughput, BTreeThroughput: br.Throughput})
	}
	t := stats.NewTable("init keys", "ALEX-GA-ARMI", "B+Tree", "ALEX/B+Tree")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.InitKeys),
			stats.FormatOps(r.ALEXThroughput), stats.FormatOps(r.BTreeThroughput),
			fmt.Sprintf("%.2fx", r.ALEXThroughput/r.BTreeThroughput))
	}
	section(w, "Fig 5a: scalability (read-heavy, longitudes)")
	io.WriteString(w, t.String())
	return rows
}

// Fig5bRow reports the distribution-shift result for one index.
type Fig5bRow struct {
	Index      string
	Throughput float64
}

// Fig5b regenerates the dataset distribution shift study (§5.2.5): the
// longitudes keys are sorted, the index initialized with the (shuffled)
// first half, and the (shuffled) disjoint second half is inserted.
// ALEX-GA-ARMI runs with node splitting on inserts, as the paper states.
func Fig5b(w io.Writer, o Options) []Fig5bRow {
	o = o.withFloors()
	n := o.RWInit * 2
	keys := datasets.GenLongitudes(n, o.Seed)
	sort.Float64s(keys)
	initHalf := append([]float64(nil), keys[:n/2]...)
	insertHalf := append([]float64(nil), keys[n/2:]...)
	datasets.Shuffle(initHalf, o.Seed+1)
	datasets.Shuffle(insertHalf, o.Seed+2)

	spec := workload.Spec{Kind: workload.WriteHeavy, InitKeys: initHalf, InsertStream: insertHalf, Ops: o.Ops, Seed: o.Seed + 4}

	at := buildALEX(initHalf, core.Config{Layout: core.GappedArray, RMI: core.AdaptiveRMI, SplitOnInsert: true})
	ar := workload.Run(at, spec)
	bt := buildBTree(initHalf, btree.Config{})
	br := workload.Run(bt, spec)

	rows := []Fig5bRow{
		{Index: "ALEX-GA-ARMI(split)", Throughput: ar.Throughput},
		{Index: "B+Tree", Throughput: br.Throughput},
	}
	t := stats.NewTable("index", "throughput", "vs B+Tree")
	for _, r := range rows {
		t.AddRow(r.Index, stats.FormatOps(r.Throughput), fmt.Sprintf("%.2fx", r.Throughput/br.Throughput))
	}
	splits := at.Stats().Splits
	section(w, fmt.Sprintf("Fig 5b: distribution shift (disjoint key domains; ALEX splits=%d)", splits))
	io.WriteString(w, t.String())
	return rows
}

// Fig5c regenerates the sequential-insert adversarial case (§5.2.5):
// strictly increasing keys always landing in the right-most leaf. The
// paper reports up to 11x lower ALEX throughput; ALEX-PMA-ARMI is the
// best ALEX variant here.
func Fig5c(w io.Writer, o Options) []Fig5bRow {
	o = o.withFloors()
	initN := o.RWInit
	init := make([]float64, initN)
	for i := range init {
		init[i] = float64(i)
	}
	stream := make([]float64, o.Ops)
	for i := range stream {
		stream[i] = float64(initN + i)
	}
	spec := workload.Spec{Kind: workload.WriteHeavy, InitKeys: init, InsertStream: stream, Ops: o.Ops, Seed: o.Seed + 5}

	pmaT := buildALEX(init, core.Config{Layout: core.PackedMemoryArray, RMI: core.AdaptiveRMI, SplitOnInsert: true})
	pr := workload.Run(pmaT, spec)
	gaT := buildALEX(init, core.Config{Layout: core.GappedArray, RMI: core.AdaptiveRMI, SplitOnInsert: true})
	gr := workload.Run(gaT, spec)
	bt := buildBTree(init, btree.Config{})
	br := workload.Run(bt, spec)

	rows := []Fig5bRow{
		{Index: "ALEX-PMA-ARMI(split)", Throughput: pr.Throughput},
		{Index: "ALEX-GA-ARMI(split)", Throughput: gr.Throughput},
		{Index: "B+Tree", Throughput: br.Throughput},
	}
	t := stats.NewTable("index", "throughput", "vs B+Tree")
	for _, r := range rows {
		t.AddRow(r.Index, stats.FormatOps(r.Throughput), fmt.Sprintf("%.2fx", r.Throughput/br.Throughput))
	}
	section(w, "Fig 5c: sequential inserts (adversarial)")
	io.WriteString(w, t.String())
	return rows
}
