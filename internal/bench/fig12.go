package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/stats"
)

// Fig12Result summarizes the leaf-size distributions of static vs
// adaptive RMI after bulk load.
type Fig12Result struct {
	StaticSizes    []int
	AdaptiveSizes  []int
	StaticWasted   int // leaves with < 1% of the bound
	AdaptiveWasted int
	StaticOver     int // leaves above the max-keys bound
	AdaptiveOver   int
}

// Fig12 regenerates Appendix B / Fig 12: bulk load longitudes with both
// RMI modes and compare leaf-size distributions. The paper's claim:
// static RMI produces both wasted (near-empty) leaves and oversized
// leaves prone to fully-packed regions, while adaptive RMI keeps every
// leaf at or under the bound with few wasted leaves.
func Fig12(w io.Writer, o Options) Fig12Result {
	o = o.withFloors()
	keys := datasets.GenLongitudes(o.ReadOnlyInit, o.Seed)
	maxKeys := 4096

	st := buildALEX(keys, core.Config{RMI: core.StaticRMI, MaxKeysPerLeaf: maxKeys})
	ad := buildALEX(keys, core.Config{RMI: core.AdaptiveRMI, MaxKeysPerLeaf: maxKeys})

	res := Fig12Result{StaticSizes: st.LeafSizes(), AdaptiveSizes: ad.LeafSizes()}
	wastedBound := maxKeys / 100
	for _, s := range res.StaticSizes {
		if s <= wastedBound {
			res.StaticWasted++
		}
		if s > maxKeys {
			res.StaticOver++
		}
	}
	for _, s := range res.AdaptiveSizes {
		if s <= wastedBound {
			res.AdaptiveWasted++
		}
		if s > maxKeys {
			res.AdaptiveOver++
		}
	}

	t := stats.NewTable("RMI", "leaves", "min", "p50", "p90", "max", "wasted(<1%)", "over bound")
	for _, e := range []struct {
		label string
		sizes []int
		waste int
		over  int
	}{
		{"static", res.StaticSizes, res.StaticWasted, res.StaticOver},
		{"adaptive", res.AdaptiveSizes, res.AdaptiveWasted, res.AdaptiveOver},
	} {
		s := append([]int(nil), e.sizes...)
		sort.Ints(s)
		t.AddRow(e.label,
			fmt.Sprintf("%d", len(s)),
			fmt.Sprintf("%d", s[0]),
			fmt.Sprintf("%d", s[len(s)/2]),
			fmt.Sprintf("%d", s[len(s)*9/10]),
			fmt.Sprintf("%d", s[len(s)-1]),
			fmt.Sprintf("%d", e.waste),
			fmt.Sprintf("%d", e.over))
	}
	section(w, fmt.Sprintf("Fig 12: leaf sizes, static vs adaptive RMI (longitudes n=%d, bound=%d)", o.ReadOnlyInit, maxKeys))
	io.WriteString(w, t.String())
	return res
}
