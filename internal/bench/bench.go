// Package bench contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (§5). Each driver builds
// the indexes involved, runs the workload of the corresponding
// experiment, and prints a table whose rows mirror what the paper plots.
// DESIGN.md carries the experiment index mapping figures to drivers;
// EXPERIMENTS.md records paper-vs-measured outcomes.
//
// Scales are configurable: the paper runs 50M-1B keys on a 64 GB
// testbed, the defaults here are laptop-sized (hundreds of thousands of
// keys) but preserve the comparative shapes.
package bench

import (
	"io"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/learned"
	"repro/internal/workload"
)

// Options scales the experiments.
type Options struct {
	// ReadOnlyInit is the bulk-load size for read-only experiments
	// (Table 1's "read-only init size", scaled down).
	ReadOnlyInit int
	// RWInit is the smaller bulk-load size for read-write experiments,
	// "so that we capture the throughput as the index grows" (§5.2.2).
	RWInit int
	// Ops is the number of operations per run (stands in for the
	// paper's 60-second timed window).
	Ops int
	// Seed drives dataset generation and workload choices.
	Seed int64
	// TuneBaselines grid-searches the B+Tree page size and Learned
	// Index model count with short probe runs, as §5.1 does. When
	// false, sensible defaults are used.
	TuneBaselines bool
}

// DefaultOptions returns the laptop-scale defaults.
func DefaultOptions() Options {
	return Options{
		ReadOnlyInit: 400000,
		RWInit:       100000,
		Ops:          200000,
		Seed:         1,
	}
}

// withFloors clamps pathological option values.
func (o Options) withFloors() Options {
	if o.ReadOnlyInit < 1000 {
		o.ReadOnlyInit = 1000
	}
	if o.RWInit < 500 {
		o.RWInit = 500
	}
	if o.Ops < 1000 {
		o.Ops = 1000
	}
	return o
}

// alexConfigFor returns the ALEX variant the paper uses for each
// workload: GA-SRMI for read-only (§5.2.1), GA-ARMI for read-write and
// scans (§5.2.2).
func alexConfigFor(kind workload.Kind, payloadBytes int) core.Config {
	cfg := core.Config{Layout: core.GappedArray, PayloadBytes: payloadBytes}
	if kind == ReadOnlyKind {
		cfg.RMI = core.StaticRMI
	} else {
		cfg.RMI = core.AdaptiveRMI
	}
	return cfg
}

// ReadOnlyKind re-exports workload.ReadOnly for signature clarity.
const ReadOnlyKind = workload.ReadOnly

// buildALEX bulk loads an ALEX tree from unsorted keys.
func buildALEX(keys []float64, cfg core.Config) *core.Tree {
	sorted := datasets.Sorted(keys)
	return core.BulkLoadSorted(sorted, nil, cfg)
}

// buildBTree bulk loads the baseline B+Tree.
func buildBTree(keys []float64, cfg btree.Config) *btree.Tree {
	sorted := datasets.Sorted(keys)
	return btree.BulkLoad(sorted, nil, cfg)
}

// tuneBTreePage probes candidate page sizes with a short run and returns
// the best, mirroring the paper's grid search ("for each benchmark, we
// use grid search to tune the page size used for B+Tree").
func tuneBTreePage(keys []float64, kind workload.Kind, stream []float64, ops int, seed int64, payloadBytes int) int {
	candidates := []int{128, 256, 512, 1024, 4096}
	best, bestTput := 256, -1.0
	probeOps := ops / 10
	if probeOps < 2000 {
		probeOps = 2000
	}
	for _, page := range candidates {
		t := buildBTree(keys, btree.Config{PageSizeBytes: page, PayloadBytes: payloadBytes})
		res := workload.Run(t, workload.Spec{
			Kind: kind, InitKeys: keys, InsertStream: stream, Ops: probeOps, Seed: seed,
		})
		if res.Throughput > bestTput {
			bestTput = res.Throughput
			best = page
		}
	}
	return best
}

// tuneLearnedModels probes second-stage model counts for the Learned
// Index baseline on a read-only workload.
func tuneLearnedModels(keys []float64, ops int, seed int64) int {
	n := len(keys)
	candidates := []int{n / 8192, n / 2048, n / 512, n / 128}
	best, bestTput := 0, -1.0
	probeOps := ops / 10
	if probeOps < 2000 {
		probeOps = 2000
	}
	for _, m := range candidates {
		if m < 1 {
			m = 1
		}
		ix, err := learned.BulkLoad(keys, nil, learned.Config{NumModels: m})
		if err != nil {
			continue
		}
		res := workload.Run(ix, workload.Spec{Kind: workload.ReadOnly, InitKeys: keys, Ops: probeOps, Seed: seed})
		if res.Throughput > bestTput {
			bestTput = res.Throughput
			best = m
		}
	}
	if best < 1 {
		best = 1
	}
	return best
}

// section prints a titled separator for multi-table outputs.
func section(w io.Writer, title string) {
	io.WriteString(w, "\n== "+title+" ==\n")
}
