package bench

import (
	"fmt"
	"io"

	"repro/internal/btree"
	"repro/internal/datasets"
	"repro/internal/learned"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig4Row is one cell group of Figure 4: a (dataset, index) pair with
// its throughput and sizes.
type Fig4Row struct {
	Dataset    datasets.Name
	Index      string
	Throughput float64
	IndexBytes int
	DataBytes  int
	Misses     int
}

// Fig4 regenerates one workload column of Figure 4 (throughput, 4a-4d,
// and index size, 4e-4h) across all four datasets. The read-only
// workload includes the Learned Index baseline; read-write workloads
// exclude it, as the paper does ("The Learned Index has insert time
// orders of magnitude slower than ALEX and B+Tree, so we do not include
// it", §5.2.2).
func Fig4(w io.Writer, o Options, kind workload.Kind) []Fig4Row {
	o = o.withFloors()
	initN := o.ReadOnlyInit
	if kind != workload.ReadOnly {
		initN = o.RWInit
	}
	var rows []Fig4Row
	for _, name := range datasets.All {
		rows = append(rows, fig4Dataset(o, kind, name, initN)...)
	}
	t := stats.NewTable("dataset", "index", "throughput", "index size", "data size")
	for _, r := range rows {
		t.AddRow(string(r.Dataset), r.Index,
			stats.FormatOps(r.Throughput),
			stats.FormatBytes(r.IndexBytes),
			stats.FormatBytes(r.DataBytes))
	}
	var figure string
	switch kind {
	case workload.ReadOnly:
		figure = "Fig 4a/4e: read-only"
	case workload.ReadHeavy:
		figure = "Fig 4b/4f: read-heavy (95/5)"
	case workload.WriteHeavy:
		figure = "Fig 4c/4g: write-heavy (50/50)"
	case workload.RangeScan:
		figure = "Fig 4d/4h: range scan (95/5, scan<=100)"
	}
	section(w, fmt.Sprintf("%s, init=%d ops=%d", figure, initN, o.Ops))
	io.WriteString(w, t.String())
	return rows
}

func fig4Dataset(o Options, kind workload.Kind, name datasets.Name, initN int) []Fig4Row {
	// The generator is deterministic, so init and insert stream are
	// disjoint slices of one double-size draw.
	all := datasets.Generate(name, initN+o.Ops, o.Seed)
	init, stream := all[:initN], all[initN:]
	payloadBytes := name.PayloadBytes()
	spec := workload.Spec{Kind: kind, InitKeys: init, InsertStream: stream, Ops: o.Ops, Seed: o.Seed + 7}

	var rows []Fig4Row

	// ALEX, with the variant the paper selects for this workload.
	alexCfg := alexConfigFor(kind, payloadBytes)
	at := buildALEX(init, alexCfg)
	ar := workload.Run(at, spec)
	rows = append(rows, Fig4Row{
		Dataset: name, Index: alexCfg.VariantName(),
		Throughput: ar.Throughput, IndexBytes: ar.IndexBytes, DataBytes: ar.DataBytes, Misses: ar.Misses,
	})

	// B+Tree baseline.
	page := 256
	if o.TuneBaselines {
		page = tuneBTreePage(init, kind, stream, o.Ops, o.Seed+7, payloadBytes)
	}
	bt := buildBTree(init, btree.Config{PageSizeBytes: page, PayloadBytes: payloadBytes})
	br := workload.Run(bt, spec)
	rows = append(rows, Fig4Row{
		Dataset: name, Index: fmt.Sprintf("B+Tree(page=%d)", page),
		Throughput: br.Throughput, IndexBytes: br.IndexBytes, DataBytes: br.DataBytes, Misses: br.Misses,
	})

	// Learned Index, read-only workloads only.
	if kind == workload.ReadOnly {
		m := 0
		if o.TuneBaselines {
			m = tuneLearnedModels(init, o.Ops, o.Seed+7)
		}
		li, err := learned.BulkLoad(init, nil, learned.Config{NumModels: m, PayloadBytes: payloadBytes})
		if err == nil {
			lr := workload.Run(li, spec)
			rows = append(rows, Fig4Row{
				Dataset: name, Index: fmt.Sprintf("LearnedIndex(m=%d)", li.NumModels()),
				Throughput: lr.Throughput, IndexBytes: lr.IndexBytes, DataBytes: lr.DataBytes, Misses: lr.Misses,
			})
		}
	}
	return rows
}

// Fig4All runs all four workload columns.
func Fig4All(w io.Writer, o Options) {
	for _, kind := range workload.Kinds {
		Fig4(w, o, kind)
	}
}

// BestALEXFor is exported for tests: the variant name used per workload.
func BestALEXFor(kind workload.Kind) string {
	return alexConfigFor(kind, 8).VariantName()
}
