package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/stats"
)

// Fig6Point is one sample of the lifetime study: cumulative insert and
// lookup costs at a given index size.
type Fig6Point struct {
	Keys          int
	InsertNsPerOp float64
	LookupNsPerOp float64
}

// Fig6Series is one index's lifetime trajectory.
type Fig6Series struct {
	Index  string
	Points []Fig6Point
}

// Fig6 regenerates the lifetime study (§5.2.6): initialize with a small
// key count, insert up to the full dataset, pausing periodically to
// probe lookups. Variants: ALEX-PMA-SRMI, ALEX-GA-ARMI, ALEX-PMA-ARMI
// (GA-SRMI is omitted, as in the paper — its inserts degrade badly),
// plus the B+Tree, on longitudes and longlat.
func Fig6(w io.Writer, o Options) map[datasets.Name][]Fig6Series {
	o = o.withFloors()
	out := make(map[datasets.Name][]Fig6Series)
	for _, name := range []datasets.Name{datasets.Longitudes, datasets.LongLat} {
		out[name] = fig6Dataset(w, o, name)
	}
	return out
}

func fig6Dataset(w io.Writer, o Options, name datasets.Name) []Fig6Series {
	total := o.ReadOnlyInit
	initN := total / 100
	if initN < 1000 {
		initN = 1000
	}
	all := datasets.Generate(name, total, o.Seed)
	init, stream := all[:initN], all[initN:]

	type target struct {
		label string
		idx   lifetimeIndex
	}
	targets := []target{
		{"ALEX-PMA-SRMI", buildALEX(init, core.Config{Layout: core.PackedMemoryArray, RMI: core.StaticRMI})},
		{"ALEX-GA-ARMI", buildALEX(init, core.Config{Layout: core.GappedArray, RMI: core.AdaptiveRMI, SplitOnInsert: true})},
		{"ALEX-PMA-ARMI", buildALEX(init, core.Config{Layout: core.PackedMemoryArray, RMI: core.AdaptiveRMI, SplitOnInsert: true})},
		{"B+Tree", buildBTree(init, btree.Config{})},
	}

	const checkpoints = 8
	batch := len(stream) / checkpoints
	probes := 2000

	series := make([]Fig6Series, len(targets))
	for ti, tg := range targets {
		series[ti].Index = tg.label
		rng := rand.New(rand.NewSource(o.Seed + int64(ti)))
		inserted := 0
		var sink uint64
		for c := 0; c < checkpoints; c++ {
			lo, hi := c*batch, (c+1)*batch
			if hi > len(stream) {
				hi = len(stream)
			}
			t0 := time.Now()
			for _, k := range stream[lo:hi] {
				tg.idx.Insert(k, 1)
			}
			insertNs := float64(time.Since(t0).Nanoseconds()) / float64(hi-lo)
			inserted += hi - lo
			// Probe lookups over everything inserted so far.
			t1 := time.Now()
			for p := 0; p < probes; p++ {
				var k float64
				if rng.Intn(2) == 0 || inserted == 0 {
					k = init[rng.Intn(len(init))]
				} else {
					k = stream[rng.Intn(inserted)]
				}
				v, _ := tg.idx.Get(k)
				sink += v
			}
			lookupNs := float64(time.Since(t1).Nanoseconds()) / float64(probes)
			series[ti].Points = append(series[ti].Points, Fig6Point{
				Keys: initN + inserted, InsertNsPerOp: insertNs, LookupNsPerOp: lookupNs,
			})
		}
		_ = sink
	}

	t := stats.NewTable("index", "keys", "insert ns/op", "lookup ns/op")
	for _, s := range series {
		for _, p := range s.Points {
			t.AddRow(s.Index, fmt.Sprintf("%d", p.Keys),
				fmt.Sprintf("%.0f", p.InsertNsPerOp), fmt.Sprintf("%.0f", p.LookupNsPerOp))
		}
	}
	section(w, fmt.Sprintf("Fig 6: lifetime study, %s (init=%d, grow to %d)", name, initN, total))
	io.WriteString(w, t.String())
	return series
}

// lifetimeIndex is the subset of operations Fig 6 needs.
type lifetimeIndex interface {
	Insert(key float64, payload uint64) bool
	Get(key float64) (uint64, bool)
}
