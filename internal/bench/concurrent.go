package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	alex "repro"
	"repro/internal/datasets"
	"repro/internal/stats"
)

// ExtConcurrentRow is one row of the concurrency study: the same mixed
// workload at one goroutine count, run against the single-mutex
// SyncIndex and the key-space-partitioned ShardedIndex.
type ExtConcurrentRow struct {
	Mix            string
	Goroutines     int
	SyncOpsPerS    float64
	ShardedOpsPerS float64
	Speedup        float64
}

// concurrentShards fixes the shard count so results compare across
// hosts; 8 matches the benchmark's widest goroutine count.
const concurrentShards = 8

// ConcurrentIndex is the point-op surface the concurrent workload
// drives; both alex.SyncIndex and alex.ShardedIndex satisfy it.
type ConcurrentIndex interface {
	Get(key float64) (uint64, bool)
	Insert(key float64, payload uint64) bool
}

// ExtConcurrent measures concurrent throughput: 1/4/8 goroutines
// running a read-heavy (90% get / 10% insert) and a write-heavy
// (50% / 50%) mix against SyncIndex (every op behind one RWMutex) and
// ShardedIndex (per-shard locks behind a quantile router). The paper
// evaluates ALEX single-threaded and sketches fine-grained concurrency
// as future work (§7); partitioning the key space is the coarse
// parallelism that needs no per-node latches, and this table is where
// its win is measured rather than asserted.
func ExtConcurrent(w io.Writer, o Options) []ExtConcurrentRow {
	o = o.withFloors()
	init := datasets.GenLongitudes(o.RWInit, o.Seed)
	pool := datasets.GenLongitudes(o.Ops, o.Seed+1)

	mixes := []struct {
		name     string
		writePct int
	}{
		{"read-heavy", 10},
		{"write-heavy", 50},
	}
	var rows []ExtConcurrentRow
	for _, mix := range mixes {
		for _, g := range []int{1, 4, 8} {
			syncIdx, err := alex.LoadSync(init, nil, alex.WithSplitOnInsert())
			if err != nil {
				panic(err)
			}
			syncTput := RunConcurrentMix(syncIdx, init, pool, g, o.Ops, mix.writePct, o.Seed)
			shardIdx, err := alex.LoadSharded(concurrentShards, init, nil, alex.WithSplitOnInsert())
			if err != nil {
				panic(err)
			}
			shardTput := RunConcurrentMix(shardIdx, init, pool, g, o.Ops, mix.writePct, o.Seed)
			rows = append(rows, ExtConcurrentRow{
				Mix:            mix.name,
				Goroutines:     g,
				SyncOpsPerS:    syncTput,
				ShardedOpsPerS: shardTput,
				Speedup:        shardTput / syncTput,
			})
		}
	}

	t := stats.NewTable("mix", "goroutines", "SyncIndex Mops/s", "ShardedIndex Mops/s", "sharded/sync")
	for _, r := range rows {
		t.AddRow(r.Mix,
			fmt.Sprintf("%d", r.Goroutines),
			fmt.Sprintf("%.2f", r.SyncOpsPerS/1e6),
			fmt.Sprintf("%.2f", r.ShardedOpsPerS/1e6),
			fmt.Sprintf("%.2fx", r.Speedup),
		)
	}
	section(w, fmt.Sprintf("Ext: concurrent throughput, %d-op mixes, %d shards (GA-ARMI, longitudes)",
		o.Ops, concurrentShards))
	io.WriteString(w, t.String())
	return rows
}

// RunConcurrentMix runs at least ops operations split across g
// goroutines — writePct percent inserts, the rest gets — and returns
// the aggregate throughput in ops/s. Each goroutine draws reads
// uniformly from readKeys and takes a disjoint stride of the insert
// pool, so goroutines never insert the same key. The root package's
// BenchmarkConcurrent* functions drive this same loop, so the numbers
// CI records and the ext-concurrent table measure one workload.
func RunConcurrentMix(idx ConcurrentIndex, readKeys, insertPool []float64, g, ops, writePct int, seed int64) float64 {
	per := (ops + g - 1) / g
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			pi := w
			for i := 0; i < per; i++ {
				if rng.Intn(100) < writePct {
					idx.Insert(insertPool[pi%len(insertPool)], uint64(i))
					pi += g
				} else {
					idx.Get(readKeys[rng.Intn(len(readKeys))])
				}
			}
		}(w)
	}
	wg.Wait()
	return float64(per*g) / time.Since(start).Seconds()
}
