package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/learned"
	"repro/internal/stats"
)

// Fig7Result carries the three prediction-error histograms of Fig 7.
type Fig7Result struct {
	LearnedIndex     *stats.Histogram // Fig 7a
	ALEXAfterInit    *stats.Histogram // Fig 7b
	ALEXAfterInserts *stats.Histogram // Fig 7c
}

// Fig7 regenerates the prediction-error study (§5.3): initialize on
// longitudes, record |predicted - actual| for every key; then insert a
// further 20% of keys into ALEX and measure again. The paper's claims:
// the Learned Index error mode is 8-32 positions with a long tail; ALEX
// "often has no prediction error" after init and keeps errors low after
// inserts thanks to model-based insertion.
func Fig7(w io.Writer, o Options) Fig7Result {
	o = o.withFloors()
	n := o.ReadOnlyInit
	extra := n / 5
	all := datasets.GenLongitudes(n+extra, o.Seed)
	init, stream := all[:n], all[n:]

	res := Fig7Result{
		LearnedIndex:     stats.NewHistogram(),
		ALEXAfterInit:    stats.NewHistogram(),
		ALEXAfterInserts: stats.NewHistogram(),
	}

	li, err := learned.BulkLoad(init, nil, learned.Config{})
	if err == nil {
		for _, k := range init {
			if e, ok := li.PredictionError(k); ok {
				res.LearnedIndex.Observe(e)
			}
		}
	}

	at := buildALEX(init, core.Config{Layout: core.GappedArray, RMI: core.AdaptiveRMI})
	for _, k := range init {
		if e, ok := at.PredictionError(k); ok {
			res.ALEXAfterInit.Observe(e)
		}
	}
	for i, k := range stream {
		at.Insert(k, uint64(i))
	}
	for _, k := range all {
		if e, ok := at.PredictionError(k); ok {
			res.ALEXAfterInserts.Observe(e)
		}
	}

	section(w, fmt.Sprintf("Fig 7a: Learned Index prediction error (n=%d, mean=%.1f, zero=%.1f%%)",
		n, res.LearnedIndex.Mean(), 100*res.LearnedIndex.ZeroFraction()))
	io.WriteString(w, res.LearnedIndex.Render(40))
	section(w, fmt.Sprintf("Fig 7b: ALEX after init (mean=%.2f, zero=%.1f%%)",
		res.ALEXAfterInit.Mean(), 100*res.ALEXAfterInit.ZeroFraction()))
	io.WriteString(w, res.ALEXAfterInit.Render(40))
	section(w, fmt.Sprintf("Fig 7c: ALEX after %d inserts (mean=%.2f, zero=%.1f%%)",
		len(stream), res.ALEXAfterInserts.Mean(), 100*res.ALEXAfterInserts.ZeroFraction()))
	io.WriteString(w, res.ALEXAfterInserts.Render(40))
	return res
}
