package bench

import (
	"fmt"
	"io"

	"repro/internal/datasets"
	"repro/internal/stats"
)

// Table1 regenerates Table 1 (dataset characteristics) at the configured
// scale, adding the non-linearity score that Appendix C discusses
// qualitatively.
func Table1(w io.Writer, o Options) *stats.Table {
	o = o.withFloors()
	t := stats.NewTable("dataset", "num keys", "key type", "payload", "min key", "max key", "non-linearity(64)")
	for _, name := range datasets.All {
		keys := datasets.Generate(name, o.ReadOnlyInit, o.Seed)
		sorted := datasets.Sorted(keys)
		nl := datasets.NonLinearity(keys, 64)
		t.AddRow(
			string(name),
			fmt.Sprintf("%d", len(keys)),
			name.KeyType(),
			fmt.Sprintf("%dB", name.PayloadBytes()),
			fmt.Sprintf("%.4g", sorted[0]),
			fmt.Sprintf("%.4g", sorted[len(sorted)-1]),
			fmt.Sprintf("%.4f", nl),
		)
	}
	section(w, "Table 1: dataset characteristics")
	io.WriteString(w, t.String())
	return t
}

// Fig13 prints the dataset CDFs (Appendix C, Fig 13) as coarse samples,
// plus a zoomed window for longitudes vs longlat (Fig 14) showing the
// step-function behaviour of longlat.
func Fig13(w io.Writer, o Options) *stats.Table {
	o = o.withFloors()
	t := stats.NewTable("dataset", "frac", "key")
	for _, name := range datasets.All {
		keys := datasets.Generate(name, o.ReadOnlyInit/4, o.Seed)
		for _, p := range datasets.CDF(keys, 11) {
			t.AddRow(string(name), fmt.Sprintf("%.2f", p.Frac), fmt.Sprintf("%.6g", p.Key))
		}
	}
	section(w, "Fig 13: dataset CDFs (11-point samples)")
	io.WriteString(w, t.String())

	// Fig 14: zoom into the middle 10% of longitudes vs longlat.
	zoom := stats.NewTable("dataset", "frac", "key")
	for _, name := range []datasets.Name{datasets.Longitudes, datasets.LongLat} {
		keys := datasets.Generate(name, o.ReadOnlyInit/4, o.Seed)
		sorted := datasets.Sorted(keys)
		lo, hi := len(sorted)/2, len(sorted)/2+len(sorted)/10
		window := sorted[lo:hi]
		for _, p := range datasets.CDF(window, 11) {
			frac := float64(lo)/float64(len(sorted)) + p.Frac*0.1
			zoom.AddRow(string(name), fmt.Sprintf("%.3f", frac), fmt.Sprintf("%.6g", p.Key))
		}
	}
	section(w, "Fig 14: zoomed CDFs (middle 10%), longlat steps vs longitudes smoothness")
	io.WriteString(w, zoom.String())
	return t
}
