package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pma"
	"repro/internal/stats"
	"repro/internal/workload"
)

// APMARow reports one index's behaviour under sequential inserts.
type APMARow struct {
	Index      string
	Throughput float64
	Rebalances uint64
	Shifts     uint64
}

// ExtAdaptivePMA revisits the Fig 5c adversary with the adaptive PMA §7
// proposes: "the adaptive PMA could, in theory, prevent the adversarial
// case". Strictly increasing keys are inserted into the uniform PMA,
// the adaptive PMA, and the gapped array (all under adaptive RMI with
// splitting); the adaptive PMA should rebalance far less.
func ExtAdaptivePMA(w io.Writer, o Options) []APMARow {
	o = o.withFloors()
	initN := o.RWInit
	init := make([]float64, initN)
	for i := range init {
		init[i] = float64(i)
	}
	stream := make([]float64, o.Ops)
	for i := range stream {
		stream[i] = float64(initN + i)
	}
	spec := workload.Spec{Kind: workload.WriteHeavy, InitKeys: init, InsertStream: stream, Ops: o.Ops, Seed: o.Seed + 31}

	type target struct {
		label string
		cfg   core.Config
	}
	targets := []target{
		{"ALEX-PMA-ARMI(uniform)", core.Config{Layout: core.PackedMemoryArray, RMI: core.AdaptiveRMI, SplitOnInsert: true}},
		{"ALEX-PMA-ARMI(adaptive)", core.Config{Layout: core.PackedMemoryArray, RMI: core.AdaptiveRMI, SplitOnInsert: true, PMA: pma.Config{Adaptive: true}}},
		{"ALEX-GA-ARMI", core.Config{Layout: core.GappedArray, RMI: core.AdaptiveRMI, SplitOnInsert: true}},
	}
	var rows []APMARow
	for _, tg := range targets {
		at := buildALEX(init, tg.cfg)
		res := workload.Run(at, spec)
		st := at.Stats()
		rows = append(rows, APMARow{
			Index: tg.label, Throughput: res.Throughput,
			Rebalances: st.Rebalances, Shifts: st.Shifts,
		})
	}
	t := stats.NewTable("index", "throughput", "rebalances", "moves")
	for _, r := range rows {
		t.AddRow(r.Index, stats.FormatOps(r.Throughput),
			fmt.Sprintf("%d", r.Rebalances), fmt.Sprintf("%d", r.Shifts))
	}
	section(w, "extension: adaptive PMA vs sequential inserts (§7 future work)")
	io.WriteString(w, t.String())
	return rows
}
