package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/paged"
	"repro/internal/pagestore"
	"repro/internal/stats"
)

// DiskRow reports one configuration of the secondary-storage study.
type DiskRow struct {
	Index      string
	LookupNs   float64
	HitRate    float64
	PhysReads  uint64
	IndexBytes int
	DataBytes  int
}

// ExtDisk evaluates the §7 "Secondary Storage" extension: the same
// lookup workload against the in-memory ALEX, a paged ALEX with a large
// (warm) cache, and a paged ALEX with a tiny cache that forces physical
// reads — reporting hit rates and per-lookup cost. The learned-index
// property to observe: the in-memory RMI stays tiny, so a paged lookup
// costs exactly one page read when the cache misses (no inner-node I/O,
// unlike a disk B+Tree).
func ExtDisk(w io.Writer, o Options) []DiskRow {
	o = o.withFloors()
	keys := datasets.GenLongitudes(o.ReadOnlyInit, o.Seed)
	lookups := o.Ops
	rng := rand.New(rand.NewSource(o.Seed + 41))
	probes := make([]float64, lookups)
	for i := range probes {
		probes[i] = keys[rng.Intn(len(keys))]
	}

	var rows []DiskRow

	// In-memory baseline.
	mem := buildALEX(keys, core.Config{Layout: core.GappedArray, RMI: core.AdaptiveRMI})
	t0 := time.Now()
	var sink uint64
	for _, k := range probes {
		v, _ := mem.Get(k)
		sink += v
	}
	rows = append(rows, DiskRow{
		Index:      "ALEX (in-memory)",
		LookupNs:   float64(time.Since(t0).Nanoseconds()) / float64(lookups),
		HitRate:    1,
		IndexBytes: mem.IndexSizeBytes(),
		DataBytes:  mem.DataSizeBytes(),
	})

	for _, tc := range []struct {
		label string
		cache int
	}{
		{"ALEX paged (warm cache)", 1 << 20},
		{"ALEX paged (64-page cache)", 64},
		{"ALEX paged (4-page cache)", 4},
	} {
		ix, err := paged.BulkLoad(keys, nil, pagestore.NewMemStore(0), paged.Config{CachePages: tc.cache})
		if err != nil {
			continue
		}
		// Warm up, then measure.
		for _, k := range probes[:lookups/10] {
			ix.Get(k)
		}
		ix.ResetCacheStats()
		t1 := time.Now()
		for _, k := range probes {
			v, _ := ix.Get(k)
			sink += v
		}
		el := time.Since(t1)
		st := ix.CacheStats()
		hitRate := 0.0
		if st.Hits+st.Misses > 0 {
			hitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		rows = append(rows, DiskRow{
			Index:      tc.label,
			LookupNs:   float64(el.Nanoseconds()) / float64(lookups),
			HitRate:    hitRate,
			PhysReads:  st.PhysReads,
			IndexBytes: ix.IndexSizeBytes(),
			DataBytes:  ix.DataSizeBytes(),
		})
		ix.Close()
	}
	_ = sink

	t := stats.NewTable("index", "lookup ns/op", "cache hit rate", "phys reads", "RMI size", "data size")
	for _, r := range rows {
		t.AddRow(r.Index,
			fmt.Sprintf("%.0f", r.LookupNs),
			fmt.Sprintf("%.3f", r.HitRate),
			fmt.Sprintf("%d", r.PhysReads),
			stats.FormatBytes(r.IndexBytes),
			stats.FormatBytes(r.DataBytes))
	}
	section(w, fmt.Sprintf("extension: secondary storage (§7), %d keys, %d lookups", len(keys), lookups))
	io.WriteString(w, t.String())
	return rows
}
