package bench

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/datasets"
	"repro/internal/stats"
)

// TheoryRow is one expansion-factor point of the §4 analysis.
type TheoryRow struct {
	C          float64
	Simulated  float64 // direct-hit fraction from exact placement
	UpperFrac  float64 // Theorem 2 bound / n
	LowerFrac  float64 // Theorem 3 bound / n
	ApproxFrac float64 // approximate lower bound / n
}

// ExtTheory evaluates §4's space-time analysis on real dataset prefixes:
// for each dataset it sweeps the expansion factor c and reports the
// simulated direct-hit fraction next to the Theorem 2/3 bounds. This is
// the mechanism behind Fig 10 — more slots per key means more direct
// hits means fewer comparisons per lookup — made quantitative.
func ExtTheory(w io.Writer, o Options) map[datasets.Name][]TheoryRow {
	o = o.withFloors()
	n := o.RWInit
	if n > 20000 {
		n = 20000 // the bounds are O(n) per c; keep the sweep snappy
	}
	out := make(map[datasets.Name][]TheoryRow)
	t := stats.NewTable("dataset", "c", "direct-hit frac", "thm2 upper", "thm3 lower", "approx lower")
	for _, name := range datasets.All {
		keys := datasets.Sorted(datasets.Generate(name, n, o.Seed))
		var rows []TheoryRow
		for _, c := range []float64{1, 1.25, 1.5, 2, 3, 5, 10} {
			fn := float64(len(keys))
			row := TheoryRow{
				C:          c,
				Simulated:  analysis.DirectHitFraction(keys, c),
				UpperFrac:  float64(analysis.UpperBoundDirectHits(keys, c)) / fn,
				LowerFrac:  float64(analysis.LowerBoundDirectHits(keys, c)) / fn,
				ApproxFrac: float64(analysis.ApproxLowerBoundDirectHits(keys, c)) / fn,
			}
			rows = append(rows, row)
			t.AddRow(string(name), fmt.Sprintf("%.2f", c),
				fmt.Sprintf("%.3f", row.Simulated),
				fmt.Sprintf("%.3f", row.UpperFrac),
				fmt.Sprintf("%.3f", row.LowerFrac),
				fmt.Sprintf("%.3f", row.ApproxFrac))
		}
		out[name] = rows
	}
	section(w, fmt.Sprintf("extension: §4 direct-hit analysis vs expansion factor (n=%d)", n))
	io.WriteString(w, t.String())
	return out
}
