package core

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, tr *Tree) *Tree {
	t.Helper()
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestEncodeRoundTripAllVariants(t *testing.T) {
	keys := uniqueKeys(20000, 41)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i) * 3
	}
	for _, cfg := range allVariants() {
		cfg.MaxKeysPerLeaf = 512
		tr, err := BulkLoad(keys, payloads, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := roundTrip(t, tr)
		if got.Len() != tr.Len() {
			t.Fatalf("%s: Len %d != %d", cfg.VariantName(), got.Len(), tr.Len())
		}
		if got.Config().VariantName() != cfg.VariantName() {
			t.Fatalf("config lost: %s", got.Config().VariantName())
		}
		for i, k := range keys {
			v, ok := got.Get(k)
			if !ok || v != payloads[i] {
				t.Fatalf("%s: Get(%v) = (%v,%v) after round trip", cfg.VariantName(), k, v, ok)
			}
		}
		if err := got.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", cfg.VariantName(), err)
		}
	}
}

func TestEncodeRoundTripAfterMutation(t *testing.T) {
	cfg := Config{MaxKeysPerLeaf: 128, SplitOnInsert: true}
	tr := New(cfg)
	for i := 0; i < 10000; i++ {
		tr.Insert(float64(i)*1.5, uint64(i))
	}
	for i := 0; i < 10000; i += 3 {
		tr.Delete(float64(i) * 1.5)
	}
	got := roundTrip(t, tr)
	if got.Len() != tr.Len() {
		t.Fatalf("Len %d != %d", got.Len(), tr.Len())
	}
	var want, have []float64
	tr.Scan(math.Inf(-1), func(k float64, v uint64) bool { want = append(want, k); return true })
	got.Scan(math.Inf(-1), func(k float64, v uint64) bool { have = append(have, k); return true })
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("scan diverges at %d: %v vs %v", i, want[i], have[i])
		}
	}
}

func TestEncodeEmptyIndex(t *testing.T) {
	tr := New(Config{})
	got := roundTrip(t, tr)
	if got.Len() != 0 {
		t.Fatalf("Len = %d", got.Len())
	}
	if _, ok := got.Get(1); ok {
		t.Fatal("phantom key")
	}
	got.Insert(5, 50)
	if v, _ := got.Get(5); v != 50 {
		t.Fatal("insert after decode")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC battered remains of a stream"),
		append([]byte(magic), make([]byte, 10)...), // truncated header
	}
	for i, data := range cases {
		if _, err := ReadFrom(bytes.NewReader(data)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	tr, _ := BulkLoad(uniqueKeys(5000, 42), nil, Config{MaxKeysPerLeaf: 256})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := ReadFrom(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		} else if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("truncation error not ErrBadFormat: %v", err)
		}
	}
}

func TestDecodeRejectsCorruptLeafOrder(t *testing.T) {
	tr := BulkLoadSorted([]float64{1, 2, 3, 4}, nil, Config{})
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	data := buf.Bytes()
	// Flip bytes in the key area until decoding fails or we exhaust the
	// stream; any accepted mutation must still satisfy invariants.
	rejected := 0
	for off := len(data) - 64; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xff
		got, err := ReadFrom(bytes.NewReader(mut))
		if err != nil {
			rejected++
			continue
		}
		if err := got.CheckInvariants(); err != nil {
			t.Fatalf("accepted corrupt stream violates invariants: %v", err)
		}
	}
	if rejected == 0 {
		t.Fatal("no corruption was ever rejected")
	}
}

// Property: encode/decode is lossless for contents over random key sets.
func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(raw []uint16, variant uint8) bool {
		seen := make(map[float64]bool)
		var keys []float64
		for _, v := range raw {
			k := float64(v)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		cfg := allVariants()[int(variant)%4]
		cfg.MaxKeysPerLeaf = 64
		tr, err := BulkLoad(keys, nil, cfg)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Log(err)
			return false
		}
		if got.Len() != len(keys) {
			return false
		}
		for _, k := range keys {
			if _, ok := got.Get(k); !ok {
				return false
			}
		}
		return got.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
