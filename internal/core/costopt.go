package core

import (
	"repro/internal/costmodel"
	"repro/internal/gapped"
)

// LoadMode selects how adaptive-RMI structure is chosen at bulk load,
// at recovery rebuilds, and at node splits.
type LoadMode int

const (
	// CostOptimalLoad (the default) plans structure with the §4
	// cost-model fanout tree: per node, the partition model is trained
	// once, power-of-two fanout candidates are evaluated against the
	// modeled search + shift + traverse cost, and adjacent undersized
	// partitions merge when the merged data node is cheaper.
	CostOptimalLoad LoadMode = iota
	// HeuristicLoad keeps the fixed heuristics (root fanout n/MaxKeys,
	// non-root InnerFanout, midpoint splits at SplitFanout) as the A/B
	// baseline for the cost-optimal builder.
	HeuristicLoad
)

// planParams derives the cost-model parameters from the tree's
// configuration: the leaf bound, the split-fanout-scaled budget, and
// the expected post-build occupancy of the configured layout (d² for
// the gapped array's n/d² build capacity, ~0.5 for the PMA's
// power-of-two capacities).
func (t *Tree) planParams() costmodel.Params {
	occ := 0.5
	if t.cfg.Layout == GappedArray {
		d := t.cfg.Density
		if d <= 0 || d > 1 {
			d = gapped.DefaultDensity
		}
		occ = d * d
	}
	return costmodel.Params{
		MaxKeysPerLeaf: t.cfg.MaxKeysPerLeaf,
		Density:        occ,
	}
}

// buildCostOptimal builds the subtree for the sorted segment through
// the fanout-tree planner.
func (t *Tree) buildCostOptimal(keys []float64, payloads []uint64) *node {
	return t.buildFromPlan(keys, payloads, t.planParams().NewPlan(keys), 0)
}

// buildFromPlan materializes a fanout-tree plan into nodes. Repeated
// child-plan pointers (the planner's merged undersized partitions)
// become repeated child-node pointers, the same sharing convention the
// heuristic builder and splitLeaf use.
func (t *Tree) buildFromPlan(keys []float64, payloads []uint64, pl *costmodel.Plan, depth int) *node {
	if pl.Children == nil || depth >= maxBuildDepth {
		return t.newLeaf(keys[pl.Lo:pl.Hi], payloads[pl.Lo:pl.Hi])
	}
	inner := newInner(pl.Model, len(pl.Children))
	var lastPlan *costmodel.Plan
	var lastNode *node
	for i, c := range pl.Children {
		if c == lastPlan {
			inner.children[i].Store(lastNode)
			continue
		}
		nd := t.buildFromPlan(keys, payloads, c, depth+1)
		inner.children[i].Store(nd)
		lastPlan, lastNode = c, nd
	}
	return inner
}

// RebuildCostOptimal rebuilds the whole tree through the fanout-tree
// planner, regardless of the configured LoadMode: the recovery path
// calls it after heavy coalesced replay left the tree shaped by
// incremental merges rather than by a plan. The replacement is built
// completely off to the side and published with two atomic stores
// (root, then head), so concurrent lock-free readers observe either
// the old intact tree or the new one; the old root is retired for
// epoch reclamation. Caller must hold the writer's exclusion.
func (t *Tree) RebuildCostOptimal() {
	keys := make([]float64, 0, t.count)
	payloads := make([]uint64, 0, t.count)
	for l := t.head.Load(); l != nil; l = l.next.Load() {
		keys, payloads = l.data().Collect(keys, payloads)
	}
	oldRoot := t.root.Load()
	var root *node
	if len(keys) == 0 {
		root = t.newLeaf(nil, nil)
	} else {
		root = t.buildCostOptimal(keys, payloads)
	}
	head, _ := linkChain(root)
	t.root.Store(root)
	t.head.Store(head)
	t.retireObj(oldRoot)
}
