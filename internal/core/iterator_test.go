package core

import (
	"math"
	"sort"
	"testing"
)

func collectIter(it *Iterator, max int) []float64 {
	var out []float64
	for it.Next() {
		out = append(out, it.Key())
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

func TestIteratorFullWalk(t *testing.T) {
	keys := uniqueKeys(20000, 31)
	sorted := append([]float64(nil), keys...)
	sort.Float64s(sorted)
	for _, cfg := range allVariants() {
		cfg.MaxKeysPerLeaf = 512
		tr, err := BulkLoad(keys, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := collectIter(tr.Iter(), 0)
		if len(got) != len(sorted) {
			t.Fatalf("%s: walked %d keys, want %d", cfg.VariantName(), len(got), len(sorted))
		}
		for i := range got {
			if got[i] != sorted[i] {
				t.Fatalf("%s: iter[%d] = %v, want %v", cfg.VariantName(), i, got[i], sorted[i])
			}
		}
	}
}

func TestIteratorFrom(t *testing.T) {
	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i) * 3
	}
	tr := BulkLoadSorted(keys, nil, Config{MaxKeysPerLeaf: 64})
	// Exact start.
	it := tr.IterFrom(300)
	if !it.Next() || it.Key() != 300 {
		t.Fatalf("IterFrom(exact) first = %v", it.Key())
	}
	// Between keys.
	it = tr.IterFrom(301)
	if !it.Next() || it.Key() != 303 {
		t.Fatalf("IterFrom(between) first = %v", it.Key())
	}
	// Before everything.
	it = tr.IterFrom(-10)
	if !it.Next() || it.Key() != 0 {
		t.Fatalf("IterFrom(before) first = %v", it.Key())
	}
	// Past the end.
	it = tr.IterFrom(5000)
	if it.Next() {
		t.Fatalf("IterFrom(past end) yielded %v", it.Key())
	}
	if it.Valid() {
		t.Fatal("exhausted iterator claims validity")
	}
}

func TestIteratorPayloadAndValid(t *testing.T) {
	tr, _ := BulkLoad([]float64{1, 2, 3}, []uint64{10, 20, 30}, Config{})
	it := tr.Iter()
	if it.Valid() {
		t.Fatal("fresh iterator claims validity")
	}
	want := []uint64{10, 20, 30}
	for i := 0; it.Next(); i++ {
		if !it.Valid() {
			t.Fatal("Valid false after Next true")
		}
		if it.Payload() != want[i] {
			t.Fatalf("payload[%d] = %d", i, it.Payload())
		}
	}
	// Exhausted iterators stay exhausted.
	if it.Next() {
		t.Fatal("Next after exhaustion")
	}
}

func TestIteratorEmptyIndex(t *testing.T) {
	tr := New(Config{})
	if tr.Iter().Next() {
		t.Fatal("empty index iterator yielded an element")
	}
}

func TestIteratorCrossesLeavesWithGapsAndDeletes(t *testing.T) {
	keys := uniqueKeys(5000, 32)
	cfg := Config{MaxKeysPerLeaf: 128, SplitOnInsert: true}
	tr, _ := BulkLoad(keys, nil, cfg)
	// Delete every third key; iterator must skip them.
	sorted := append([]float64(nil), keys...)
	sort.Float64s(sorted)
	want := sorted[:0:0]
	for i, k := range sorted {
		if i%3 == 0 {
			tr.Delete(k)
		} else {
			want = append(want, k)
		}
	}
	got := collectIter(tr.Iter(), 0)
	if len(got) != len(want) {
		t.Fatalf("walked %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("iter[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIteratorAgreesWithScan(t *testing.T) {
	keys := uniqueKeys(8000, 33)
	tr, _ := BulkLoad(keys, nil, Config{MaxKeysPerLeaf: 256})
	var fromScan []float64
	tr.Scan(math.Inf(-1), func(k float64, v uint64) bool {
		fromScan = append(fromScan, k)
		return true
	})
	fromIter := collectIter(tr.Iter(), 0)
	if len(fromScan) != len(fromIter) {
		t.Fatalf("scan %d vs iter %d", len(fromScan), len(fromIter))
	}
	for i := range fromScan {
		if fromScan[i] != fromIter[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, fromScan[i], fromIter[i])
		}
	}
}
