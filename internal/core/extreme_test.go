package core

import (
	"math"
	"testing"
)

// Failure-injection tests: key distributions chosen to stress the models
// and placement machinery at the edges of float64.

func TestExtremeMagnitudeKeys(t *testing.T) {
	keys := []float64{
		-1e300, -1e200, -1e100, -1, -1e-300, 0,
		5e-324, // smallest subnormal
		1e-300, 1, 1e100, 1e200, 1e300,
	}
	for _, cfg := range allVariants() {
		tr, err := BulkLoad(keys, nil, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.VariantName(), err)
		}
		for _, k := range keys {
			if _, ok := tr.Get(k); !ok {
				t.Fatalf("%s: Get(%v) failed", cfg.VariantName(), k)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", cfg.VariantName(), err)
		}
	}
}

func TestAdjacentFloatKeys(t *testing.T) {
	// Keys one ULP apart: the model slope explodes; exponential search
	// and placement must still behave.
	base := 1e15
	keys := make([]float64, 100)
	k := base
	for i := range keys {
		keys[i] = k
		k = math.Nextafter(k, math.Inf(1))
	}
	tr := BulkLoadSorted(keys, nil, Config{MaxKeysPerLeaf: 32})
	for _, key := range keys {
		if _, ok := tr.Get(key); !ok {
			t.Fatalf("Get(%v) failed", key)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Inserts between adjacent representable floats are impossible, but
	// inserting far-away keys into this cluster must work.
	tr2 := New(Config{MaxKeysPerLeaf: 32, SplitOnInsert: true})
	for _, key := range keys {
		tr2.Insert(key, 1)
	}
	tr2.Insert(0, 2)
	tr2.Insert(1e30, 3)
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != len(keys)+2 {
		t.Fatalf("Len = %d", tr2.Len())
	}
}

func TestClusteredPlusOutlierKeys(t *testing.T) {
	// A dense cluster plus one extreme outlier destroys a single linear
	// fit; adaptive RMI must recurse and remain correct.
	var keys []float64
	for i := 0; i < 10000; i++ {
		keys = append(keys, 1000+float64(i)*0.001)
	}
	keys = append(keys, 1e18)
	tr, err := BulkLoad(keys, nil, Config{MaxKeysPerLeaf: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Get(1e18); !ok {
		t.Fatal("outlier lost")
	}
	if _, ok := tr.Get(1000.5); !ok {
		t.Fatal("cluster key lost")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAlternatingEndsInserts(t *testing.T) {
	// Inserts alternating between the extremes of the domain stress the
	// leftmost/rightmost leaves simultaneously.
	for _, cfg := range allVariants() {
		cfg.MaxKeysPerLeaf = 256
		cfg.SplitOnInsert = cfg.RMI == AdaptiveRMI
		tr := New(cfg)
		for i := 0; i < 5000; i++ {
			tr.Insert(float64(i), uint64(i))
			tr.Insert(-float64(i)-1, uint64(i))
		}
		if tr.Len() != 10000 {
			t.Fatalf("%s: Len = %d", cfg.VariantName(), tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", cfg.VariantName(), err)
		}
		if mn, _ := tr.MinKey(); mn != -5000 {
			t.Fatalf("%s: MinKey = %v", cfg.VariantName(), mn)
		}
		if mx, _ := tr.MaxKey(); mx != 4999 {
			t.Fatalf("%s: MaxKey = %v", cfg.VariantName(), mx)
		}
	}
}

func TestTinyLeafBoundAndFanouts(t *testing.T) {
	// Pathologically small tuning values must clamp, not crash.
	cfg := Config{MaxKeysPerLeaf: 1, InnerFanout: 1, SplitFanout: 1, SplitOnInsert: true}
	tr := New(cfg)
	for i := 0; i < 1000; i++ {
		tr.Insert(float64(i), uint64(i))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	keys := uniqueKeys(3000, 71)
	tr2, err := BulkLoad(keys, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleKeyAndTwoKeyTrees(t *testing.T) {
	for _, cfg := range allVariants() {
		one, err := BulkLoad([]float64{42}, []uint64{7}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := one.Get(42); !ok || v != 7 {
			t.Fatalf("%s: single-key Get", cfg.VariantName())
		}
		if mn, _ := one.MinKey(); mn != 42 {
			t.Fatal("MinKey")
		}
		two, _ := BulkLoad([]float64{1, 2}, nil, cfg)
		if !two.Delete(1) || !two.Delete(2) {
			t.Fatalf("%s: two-key deletes", cfg.VariantName())
		}
		if two.Len() != 0 {
			t.Fatal("not empty")
		}
		if err := two.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNegativeZeroKey(t *testing.T) {
	// -0.0 == 0.0 in float comparison; inserting both must behave as one
	// key (a duplicate), never two.
	tr := New(Config{})
	if !tr.Insert(0.0, 1) {
		t.Fatal("insert 0")
	}
	negZero := math.Copysign(0, -1)
	if tr.Insert(negZero, 2) {
		t.Fatal("-0.0 treated as a distinct key")
	}
	if v, _ := tr.Get(0); v != 2 {
		t.Fatalf("payload = %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}
