package core

import (
	"math"
	"sort"

	"repro/internal/search"
)

// This file implements the tree half of the batch API. The point of
// batching is amortization across every layer the single-key path pays
// per key: one RMI descent per *leaf group* instead of per key, and at
// most one expand/retrain/split decision per node per batch instead of
// per insert. The grouping pass visits each inner node on the batch's
// route once, partitioning the sorted keys among its children by the
// same monotone model the single-key path routes with, so the batch
// and looped results are always identical in content.

// leafGroup is a contiguous run keys[lo:hi] of a sorted batch that
// routes to one data node.
type leafGroup struct {
	leaf   *node
	parent *node
	lo, hi int
}

// groupSorted partitions a non-decreasing key batch by destination
// leaf. Inner-node models have non-negative slope (partition enforces
// it), so a child's key run is contiguous in the sorted batch and each
// boundary is found with a binary search over the batch — O(L log B)
// model evaluations for a batch of B keys spanning L leaves, instead
// of B full descents. Writer-side only: it assumes the child slots are
// stable while it runs.
func (t *Tree) groupSorted(keys []float64) []leafGroup {
	groups := make([]leafGroup, 0, 8)
	var descend func(c, parent *node, ks []float64, base int)
	descend = func(c, parent *node, ks []float64, base int) {
		for {
			if c.isLeaf() {
				groups = append(groups, leafGroup{c, parent, base, base + len(ks)})
				return
			}
			n := c
			p := len(n.children)
			first := n.model.PredictClamped(ks[0], p)
			last := n.model.PredictClamped(ks[len(ks)-1], p)
			if n.children[first].Load() == n.children[last].Load() {
				// One child takes the whole run (a shared child always
				// occupies a contiguous slot range): descend iteratively.
				parent = n
				c = n.children[first].Load()
				continue
			}
			i, idx := 0, first
			for i < len(ks) {
				// Slots [idx, run] all point at the same child; keys
				// predicted into any of them form one group.
				cur := n.children[idx].Load()
				run := idx
				for run+1 < p && n.children[run+1].Load() == cur {
					run++
				}
				j := i + sort.Search(len(ks)-i, func(k int) bool {
					return n.model.PredictClamped(ks[i+k], p) > run
				})
				descend(cur, n, ks[i:j], base+i)
				i = j
				if i < len(ks) {
					idx = n.model.PredictClamped(ks[i], p)
				}
			}
			return
		}
	}
	if len(keys) > 0 {
		descend(t.root.Load(), nil, keys, 0)
	}
	return groups
}

// GetBatch looks up many keys at once, returning parallel payload and
// found slices. A non-decreasing batch shares one descent per leaf and
// amortized in-node searches; other batches fall back to per-key gets.
func (t *Tree) GetBatch(keys []float64) ([]uint64, []bool) {
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	t.GetBatchInto(keys, vals, found)
	return vals, found
}

// GetBatchInto is GetBatch into caller-supplied result slices (vals[i],
// found[i] describe keys[i]; both must have len(keys) elements — every
// slot is overwritten). It performs no allocations at all: instead of
// materializing the leaf groups the way the mutation path does, it
// streams a sorted batch leaf by leaf — one descent locates the leaf of
// the first unresolved key, and one binary search against the next
// non-empty leaf's minimum bounds the contiguous run of batch keys that
// leaf can hold (leaves own disjoint, ordered key ranges, so no key
// beyond that bound can live there).
func (t *Tree) GetBatchInto(keys []float64, vals []uint64, found []bool) {
	if len(vals) != len(keys) || len(found) != len(keys) {
		panic("core: GetBatchInto result slices must have len(keys)")
	}
	if len(keys) == 0 {
		return
	}
	clear(vals)
	clear(found)
	if !sort.Float64sAreSorted(keys) {
		for i, k := range keys {
			vals[i], found[i] = t.Get(k)
		}
		return
	}
	i := 0
	for i < len(keys) {
		leaf := t.leafFor(keys[i])
		if leaf == nil {
			// Only a torn optimistic probe can see a half-published
			// descent; resolve the key as a miss and let the seqlock
			// validation discard the batch.
			i++
			continue
		}
		// The run for this leaf ends at the first key that could belong
		// to a later leaf: the first key >= the next non-empty leaf's
		// minimum. Routing is monotone, so for finite keys keys[i]
		// itself is below that bound and the run is non-empty.
		hi := len(keys)
		for next := leaf.next.Load(); next != nil; next = next.next.Load() {
			d := next.data()
			if d == nil {
				break // torn probe; the forced-progress guard covers it
			}
			if mn, ok := d.MinKey(); ok {
				hi = i + search.LowerBoundBranchless(keys[i:hi], mn)
				break
			}
		}
		if hi == i {
			// Forced progress: a NaN key (which compares below every
			// bound and is stored nowhere) or a torn probe's
			// inconsistent leaf chain can produce an empty run; resolve
			// that one key against this leaf rather than spinning.
			hi = i + 1
		}
		// Devirtualize both layouts, like Get.
		if g := leaf.ga.Load(); g != nil {
			g.LookupBatch(keys[i:hi], vals[i:hi], found[i:hi])
		} else if p := leaf.pa.Load(); p != nil {
			p.LookupBatch(keys[i:hi], vals[i:hi], found[i:hi])
		}
		i = hi
	}
}

// InsertBatch adds many key/payload pairs, returning how many keys were
// new (existing keys have their payloads overwritten, and a key
// duplicated within the batch keeps its last payload — the same end
// state a loop of single Inserts reaches). A non-decreasing batch is
// grouped by destination leaf, with at most one expand/retrain/split
// decision per node per batch; other batches fall back to per-key
// inserts. len(payloads) must equal len(keys).
func (t *Tree) InsertBatch(keys []float64, payloads []uint64) int {
	if len(payloads) != len(keys) {
		panic("core: InsertBatch len(payloads) != len(keys)")
	}
	if len(keys) == 0 {
		return 0
	}
	if !sort.Float64sAreSorted(keys) {
		n := 0
		for i := range keys {
			if t.Insert(keys[i], payloads[i]) {
				n++
			}
		}
		return n
	}
	return t.insertSorted(keys, payloads)
}

// insertSorted inserts an already-sorted batch group by group. A leaf
// at the split bound is split once and its group re-routed through the
// fresh subtree; the split distributes the leaf's keys across several
// children, so re-routed groups sit below the bound and the recursion
// terminates after one level.
func (t *Tree) insertSorted(keys []float64, payloads []uint64) int {
	n := 0
	for _, g := range t.groupSorted(keys) {
		ks, ps := keys[g.lo:g.hi], payloads[g.lo:g.hi]
		if t.cfg.RMI == AdaptiveRMI && t.cfg.SplitOnInsert && g.leaf.data().Num() >= t.cfg.MaxKeysPerLeaf {
			if t.splitLeaf(g.leaf, g.parent) {
				n += t.insertSorted(ks, ps)
				continue
			}
		}
		added := t.leafInsertSortedBatch(g.leaf, ks, ps)
		t.count += added
		n += added
		// One cost-model decision per node per batch, like the
		// expand/retrain/split decisions the batch API amortizes.
		t.costCheck(g.leaf, g.parent)
		t.restoreLeafBound(ks)
	}
	return n
}

// restoreLeafBound re-establishes the MaxKeysPerLeaf bound over the
// leaves holding the sorted keys after a batch poured into them at
// once — the state a loop of single inserts would have reached by
// splitting at each crossing. Each over-bound leaf is split until its
// pieces fit (or until its keys cannot be partitioned). No-op unless
// split-on-insert is enabled.
func (t *Tree) restoreLeafBound(ks []float64) {
	if t.cfg.RMI != AdaptiveRMI || !t.cfg.SplitOnInsert || len(ks) == 0 {
		return
	}
	i := 0
	for i < len(ks) {
		leaf, parent := t.traverse(ks[i])
		if leaf.data().Num() > t.cfg.MaxKeysPerLeaf && t.splitLeaf(leaf, parent) {
			continue // re-check the same key against the new children
		}
		// Skip the rest of this leaf's keys.
		adv := 1
		if mx, ok := leaf.data().MaxKey(); ok {
			if a := sort.Search(len(ks)-i, func(j int) bool { return ks[i+j] > mx }); a > adv {
				adv = a
			}
		}
		i += adv
	}
}

// DeleteBatch removes many keys at once, returning how many were
// present. A non-decreasing batch shares one descent per leaf and
// applies each node's contraction policy once per batch; other batches
// fall back to per-key deletes.
func (t *Tree) DeleteBatch(keys []float64) int {
	if len(keys) == 0 {
		return 0
	}
	if !sort.Float64sAreSorted(keys) {
		n := 0
		for _, k := range keys {
			if t.Delete(k) {
				n++
			}
		}
		return n
	}
	n := 0
	for _, g := range t.groupSorted(keys) {
		d := t.leafDeleteSortedBatch(g.leaf, keys[g.lo:g.hi])
		t.count -= d
		n += d
	}
	return n
}

// Merge bulk-merges key/payload pairs into the index, returning how
// many keys were new. It is the sorted-bulk-merge fast path: every
// touched data node is rebuilt once from the merge of its current
// elements and its slice of the batch — one retrain and one
// model-based placement pass per node, no per-key shifting — so large
// batches approach bulk-load speed. Unsorted input is sorted first
// (last occurrence of a duplicated key wins); merging into an empty
// index is exactly a bulk load. payloads may be nil (zero payloads);
// otherwise len(payloads) must equal len(keys).
func (t *Tree) Merge(keys []float64, payloads []uint64) int {
	if payloads == nil {
		payloads = make([]uint64, len(keys))
	}
	if len(payloads) != len(keys) {
		panic("core: Merge len(payloads) != len(keys)")
	}
	if len(keys) == 0 {
		return 0
	}
	if !sort.Float64sAreSorted(keys) {
		idx := make([]int, len(keys))
		for i := range idx {
			idx[i] = i
		}
		// Stable on the original order so "last occurrence wins"
		// survives the sort.
		sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
		sk := make([]float64, len(keys))
		sp := make([]uint64, len(keys))
		for i, j := range idx {
			sk[i] = keys[j]
			sp[i] = payloads[j]
		}
		keys, payloads = sk, sp
	}
	if t.count == 0 {
		return t.mergeIntoEmpty(keys, payloads)
	}
	n := 0
	for _, g := range t.groupSorted(keys) {
		added := t.leafMergeSorted(g.leaf, keys[g.lo:g.hi], payloads[g.lo:g.hi])
		t.count += added
		n += added
		t.restoreLeafBound(keys[g.lo:g.hi])
	}
	return n
}

// mergeIntoEmpty rebuilds the whole tree from a sorted batch — merging
// into an empty index is a bulk load. The fresh root is published with
// one atomic store, so concurrent readers cut over atomically; the old
// (empty) structure is retired.
func (t *Tree) mergeIntoEmpty(keys []float64, payloads []uint64) int {
	uk := make([]float64, 0, len(keys))
	up := make([]uint64, 0, len(keys))
	for i := range keys {
		if i+1 < len(keys) && keys[i+1] == keys[i] {
			continue // last occurrence wins
		}
		uk = append(uk, keys[i])
		up = append(up, payloads[i])
	}
	for _, k := range uk {
		if math.IsNaN(k) || math.IsInf(k, 0) {
			panic("core: key must be finite")
		}
	}
	nt := bulkLoadSorted(uk, up, t.cfg)
	old := t.root.Load()
	t.head.Store(nt.head.Load())
	t.root.Store(nt.root.Load())
	t.count = nt.count
	t.retireObj(old)
	return nt.count
}
