package core

import (
	"math"
	"testing"
)

// FuzzTreeOps drives one ALEX variant with an op stream decoded from raw
// bytes and cross-checks against a map plus full invariant verification.
// `go test` exercises the seed corpus; `go test -fuzz=FuzzTreeOps` explores.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(0))
	f.Add([]byte{255, 254, 253, 1, 1, 1, 9, 9}, uint8(1))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}, uint8(2))
	f.Add([]byte{0, 0, 0, 0, 128, 128, 64, 32, 16, 8, 4, 2, 1}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, variant uint8) {
		cfgs := []Config{
			{Layout: GappedArray, RMI: StaticRMI},
			{Layout: GappedArray, RMI: AdaptiveRMI, SplitOnInsert: true},
			{Layout: PackedMemoryArray, RMI: StaticRMI},
			{Layout: PackedMemoryArray, RMI: AdaptiveRMI, SplitOnInsert: true},
		}
		cfg := cfgs[int(variant)%len(cfgs)]
		cfg.MaxKeysPerLeaf = 32
		cfg.InnerFanout = 4
		cfg.SplitFanout = 2
		tr := New(cfg)
		ref := make(map[float64]uint64)
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 4
			k := float64(data[i+1])
			switch op {
			case 0:
				ins := tr.Insert(k, uint64(i))
				if _, existed := ref[k]; existed == ins {
					t.Fatalf("insert(%v) returned %v with existed=%v", k, ins, existed)
				}
				ref[k] = uint64(i)
			case 1:
				_, existed := ref[k]
				if tr.Delete(k) != existed {
					t.Fatalf("delete(%v) disagreed with reference", k)
				}
				delete(ref, k)
			case 2:
				v, ok := tr.Get(k)
				want, existed := ref[k]
				if ok != existed || (ok && v != want) {
					t.Fatalf("get(%v) = (%v,%v), want (%v,%v)", k, v, ok, want, existed)
				}
			case 3:
				_, existed := ref[k]
				if tr.Update(k, uint64(i)+1) != existed {
					t.Fatalf("update(%v) disagreed with reference", k)
				}
				if existed {
					ref[k] = uint64(i) + 1
				}
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("Len %d != ref %d", tr.Len(), len(ref))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		// The full scan must visit exactly the reference keys in order.
		prev := math.Inf(-1)
		visited := 0
		tr.Scan(math.Inf(-1), func(k float64, v uint64) bool {
			if k <= prev {
				t.Fatalf("scan out of order: %v after %v", k, prev)
			}
			prev = k
			if want, ok := ref[k]; !ok || want != v {
				t.Fatalf("scan saw (%v,%v), ref has (%v,%v)", k, v, want, ok)
			}
			visited++
			return true
		})
		if visited != len(ref) {
			t.Fatalf("scan visited %d, ref %d", visited, len(ref))
		}
	})
}

// FuzzBulkLoadScan fuzzes bulk loading with arbitrary byte-derived key
// sets and verifies the loaded tree against its own iterator.
func FuzzBulkLoadScan(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(0))
	f.Add([]byte{9, 9, 9}, uint8(1))
	f.Add([]byte{}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, variant uint8) {
		seen := make(map[float64]bool)
		var keys []float64
		for i, b := range data {
			k := float64(b)*256 + float64(i%256)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		cfgs := []Config{
			{Layout: GappedArray, RMI: StaticRMI},
			{Layout: GappedArray, RMI: AdaptiveRMI},
			{Layout: PackedMemoryArray, RMI: AdaptiveRMI},
		}
		cfg := cfgs[int(variant)%len(cfgs)]
		cfg.MaxKeysPerLeaf = 16
		cfg.InnerFanout = 4
		tr, err := BulkLoad(keys, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		it := tr.Iter()
		count := 0
		prev := math.Inf(-1)
		for it.Next() {
			if it.Key() <= prev {
				t.Fatalf("iterator out of order: %v after %v", it.Key(), prev)
			}
			prev = it.Key()
			if !seen[it.Key()] {
				t.Fatalf("iterator invented key %v", it.Key())
			}
			count++
		}
		if count != len(keys) {
			t.Fatalf("iterator saw %d keys, want %d", count, len(keys))
		}
	})
}
