package core

import (
	"math/rand"
	"testing"

	"repro/internal/leafbase"
)

// driftKeys bulk-loads a uniform key set and returns a clumped insert
// stream aimed at a narrow region, the distribution-shift pattern that
// stales a leaf's model without tripping its density bound first.
func driftKeys(n int) (load, stream []float64) {
	load = make([]float64, n)
	for i := range load {
		load[i] = float64(i)
	}
	rng := rand.New(rand.NewSource(42))
	stream = make([]float64, 4*n)
	for i := range stream {
		// Everything lands between two adjacent loaded keys, so the
		// leaf's trained model (fit on the uniform load) mispredicts the
		// clump by ever more slots as it grows.
		stream[i] = float64(n/2) + rng.Float64()*0.9999
	}
	return load, stream
}

// TestErrBoundCostRetrainOnDrift asserts the tentpole feedback loop:
// a chronically mispredicting leaf (clumped inserts under a model fit
// on uniform data) must trigger cost-model retrains — not just density
// expansions — and the tree must stay fully consistent throughout.
func TestErrBoundCostRetrainOnDrift(t *testing.T) {
	load, stream := driftKeys(8192)
	tr := BulkLoadSorted(load, nil, Config{})
	for i, k := range stream {
		tr.Insert(k, uint64(i))
		if i%1024 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d drift inserts: %v", i, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.CostRetrains == 0 {
		t.Fatalf("no cost-model retrains under drift (max leaf err %d, retrains %d)",
			st.MaxLeafErr, st.Retrains)
	}
	// Every key — loaded and drifted — must still be found.
	for _, k := range load {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("loaded key %v lost", k)
		}
	}
	for i, k := range stream {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("drift key %v (#%d) lost", k, i)
		}
	}
}

// TestErrBoundStatsDistribution checks the Stats error-distribution
// block: histogram totals match the modeled-leaf count, percentiles are
// monotone and within [0, MaxLeafErr], and the key-weighted shares add
// up.
func TestErrBoundStatsDistribution(t *testing.T) {
	load, stream := driftKeys(4096)
	tr := BulkLoadSorted(load, nil, Config{})
	for i, k := range stream[:8192] {
		tr.Insert(k, uint64(i))
	}
	st := tr.Stats()
	var histTotal uint64
	for _, c := range st.ErrHist {
		histTotal += c
	}
	modeled := 0
	for l := tr.head.Load(); l != nil; l = l.next.Load() {
		if l.data().ErrorBound() >= 0 {
			modeled++
		}
	}
	if histTotal != uint64(modeled) {
		t.Fatalf("ErrHist total %d != modeled leaves %d", histTotal, modeled)
	}
	p50, p99 := st.LeafErrPercentile(50), st.LeafErrPercentile(99)
	if p50 < 0 || p99 < p50 {
		t.Fatalf("percentiles not monotone: p50=%d p99=%d", p50, p99)
	}
	if p99 > st.MaxLeafErr && st.MaxLeafErr > 0 {
		t.Fatalf("p99=%d above MaxLeafErr=%d", p99, st.MaxLeafErr)
	}
	if st.KeysBounded > st.KeysModeled || st.KeysModeled > st.KeysTotal {
		t.Fatalf("key weights inconsistent: bounded=%d modeled=%d total=%d",
			st.KeysBounded, st.KeysModeled, st.KeysTotal)
	}
	if int(st.KeysTotal) != tr.Len() {
		t.Fatalf("KeysTotal %d != Len %d", st.KeysTotal, tr.Len())
	}
	if share := st.BoundedShare(); share < 0 || share > 1 {
		t.Fatalf("BoundedShare %v out of range", share)
	}
	// Merge must sum histograms and key weights and max the maxima.
	sum := st
	sum.Merge(&st)
	if sum.KeysTotal != 2*st.KeysTotal || sum.MaxLeafErr != st.MaxLeafErr {
		t.Fatalf("Merge: got total=%d max=%d, want total=%d max=%d",
			sum.KeysTotal, sum.MaxLeafErr, 2*st.KeysTotal, st.MaxLeafErr)
	}
}

// TestBoundedSearchAgreesWithExponential runs the same lookups (hits,
// misses, batch and point) with the bounded fast path on and off — the
// two strategies must be observationally identical.
func TestBoundedSearchAgreesWithExponential(t *testing.T) {
	defer leafbase.SetBoundedSearch(true)
	load, stream := driftKeys(4096)
	tr := BulkLoadSorted(load, nil, Config{})
	for i, k := range stream[:4096] {
		tr.Insert(k, uint64(i))
	}
	rng := rand.New(rand.NewSource(9))
	queries := make([]float64, 0, 4096)
	queries = append(queries, load[:1024]...)
	queries = append(queries, stream[:1024]...)
	for i := 0; i < 1024; i++ {
		queries = append(queries, rng.Float64()*10000) // mostly misses
	}
	type res struct {
		v  uint64
		ok bool
	}
	run := func(on bool) []res {
		leafbase.SetBoundedSearch(on)
		out := make([]res, 0, len(queries)+len(queries))
		for _, q := range queries {
			v, ok := tr.Get(q)
			out = append(out, res{v, ok})
		}
		vals := make([]uint64, len(queries))
		found := make([]bool, len(queries))
		tr.GetBatchInto(queries, vals, found)
		for i := range vals {
			out = append(out, res{vals[i], found[i]})
		}
		return out
	}
	bounded, exponential := run(true), run(false)
	for i := range bounded {
		if bounded[i] != exponential[i] {
			t.Fatalf("result %d: bounded=%+v exponential=%+v", i, bounded[i], exponential[i])
		}
	}
}
