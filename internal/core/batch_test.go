package core

import (
	"math/rand"
	"sort"
	"testing"
)

// batchVariants is allVariants plus split-on-insert, the configuration
// whose batch path exercises splitting and re-routing.
func batchVariants() []Config {
	vs := allVariants()
	vs = append(vs,
		Config{Layout: GappedArray, RMI: AdaptiveRMI, SplitOnInsert: true},
		Config{Layout: PackedMemoryArray, RMI: AdaptiveRMI, SplitOnInsert: true},
	)
	return vs
}

// crossCheck verifies that got (a batch-built tree) and want (the same
// operations applied one key at a time) hold identical contents.
func crossCheck(t *testing.T, name string, got, want *Tree) {
	t.Helper()
	if err := got.CheckInvariants(); err != nil {
		t.Fatalf("%s: batch tree invariants: %v", name, err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: Len = %d, want %d", name, got.Len(), want.Len())
	}
	gk, gp := collectAll(got)
	wk, wp := collectAll(want)
	if len(gk) != len(wk) {
		t.Fatalf("%s: %d elements, want %d", name, len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] || gp[i] != wp[i] {
			t.Fatalf("%s: element %d = (%v,%v), want (%v,%v)", name, i, gk[i], gp[i], wk[i], wp[i])
		}
	}
}

func collectAll(tr *Tree) ([]float64, []uint64) {
	var ks []float64
	var ps []uint64
	tr.Scan(negInf(), func(k float64, v uint64) bool {
		ks = append(ks, k)
		ps = append(ps, v)
		return true
	})
	return ks, ps
}

func negInf() float64 { return -1e308 }

func TestBatchMatchesSingleOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := uniqueKeys(6000, 2)
	basePay := make([]uint64, len(base))
	for i := range basePay {
		basePay[i] = uint64(i) + 1
	}
	// Batch mixes new keys, keys already present, and intra-batch
	// duplicates.
	batch := append([]float64(nil), uniqueKeys(4000, 3)...)
	batch = append(batch, base[:500]...)
	batch = append(batch, batch[:200]...)
	pays := make([]uint64, len(batch))
	for i := range pays {
		pays[i] = uint64(rng.Intn(1 << 30))
	}

	for _, sorted := range []bool{true, false} {
		ks := append([]float64(nil), batch...)
		ps := append([]uint64(nil), pays...)
		if sorted {
			idx := make([]int, len(ks))
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(a, b int) bool { return ks[idx[a]] < ks[idx[b]] })
			sk := make([]float64, len(ks))
			sp := make([]uint64, len(ks))
			for i, j := range idx {
				sk[i] = ks[j]
				sp[i] = ps[j]
			}
			ks, ps = sk, sp
		}
		for _, cfg := range batchVariants() {
			cfg.MaxKeysPerLeaf = 512
			name := cfg.VariantName()
			if cfg.SplitOnInsert {
				name += "-split"
			}
			if sorted {
				name += "-sorted"
			}

			batchTree, err := BulkLoad(base, basePay, cfg)
			if err != nil {
				t.Fatal(err)
			}
			loopTree, err := BulkLoad(base, basePay, cfg)
			if err != nil {
				t.Fatal(err)
			}

			gotN := batchTree.InsertBatch(ks, ps)
			wantN := 0
			for i := range ks {
				if loopTree.Insert(ks[i], ps[i]) {
					wantN++
				}
			}
			if gotN != wantN {
				t.Fatalf("%s: InsertBatch = %d new, loop = %d", name, gotN, wantN)
			}
			crossCheck(t, name+"/insert", batchTree, loopTree)

			// GetBatch over present and absent keys.
			probe := append(append([]float64(nil), ks[:1000]...), -5, -7, 1e300)
			if sorted {
				sort.Float64s(probe)
			}
			vals, found := batchTree.GetBatch(probe)
			for i, k := range probe {
				wv, wok := loopTree.Get(k)
				if found[i] != wok || vals[i] != wv {
					t.Fatalf("%s: GetBatch[%d]=(%v,%v), Get=(%v,%v)", name, i, vals[i], found[i], wv, wok)
				}
			}

			// DeleteBatch over a mix of present, absent and duplicated keys.
			del := append([]float64(nil), ks[:1500]...)
			del = append(del, -5, -7, del[0])
			if sorted {
				sort.Float64s(del)
			}
			gotD := batchTree.DeleteBatch(del)
			wantD := 0
			for _, k := range del {
				if loopTree.Delete(k) {
					wantD++
				}
			}
			if gotD != wantD {
				t.Fatalf("%s: DeleteBatch = %d, loop = %d", name, gotD, wantD)
			}
			crossCheck(t, name+"/delete", batchTree, loopTree)
		}
	}
}

func TestBatchEmptyAndEdge(t *testing.T) {
	for _, cfg := range batchVariants() {
		tr := New(cfg)
		if n := tr.InsertBatch(nil, nil); n != 0 {
			t.Fatalf("InsertBatch(nil) = %d", n)
		}
		if n := tr.DeleteBatch(nil); n != 0 {
			t.Fatalf("DeleteBatch(nil) = %d", n)
		}
		vals, found := tr.GetBatch(nil)
		if len(vals) != 0 || len(found) != 0 {
			t.Fatal("GetBatch(nil) returned elements")
		}
		// Batch insert into a cold-start (empty) tree.
		keys := uniqueKeys(3000, 4)
		sort.Float64s(keys)
		pays := make([]uint64, len(keys))
		for i := range pays {
			pays[i] = uint64(i)
		}
		if n := tr.InsertBatch(keys, pays); n != len(keys) {
			t.Fatalf("InsertBatch into empty = %d, want %d", n, len(keys))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		vals, found = tr.GetBatch(keys)
		for i := range keys {
			if !found[i] || vals[i] != pays[i] {
				t.Fatalf("GetBatch[%d] = (%v,%v), want (%v,true)", i, vals[i], found[i], pays[i])
			}
		}
		if n := tr.DeleteBatch(keys); n != len(keys) {
			t.Fatalf("DeleteBatch = %d, want %d", n, len(keys))
		}
		if tr.Len() != 0 {
			t.Fatalf("Len after full delete = %d", tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMergeMatchesSingleOps(t *testing.T) {
	base := uniqueKeys(5000, 5)
	basePay := make([]uint64, len(base))
	for i := range basePay {
		basePay[i] = uint64(i) + 1
	}
	batch := append([]float64(nil), uniqueKeys(8000, 6)...)
	batch = append(batch, base[:400]...) // overwrite some existing keys
	batch = append(batch, batch[0])      // intra-batch duplicate: last wins
	pays := make([]uint64, len(batch))
	for i := range pays {
		pays[i] = uint64(i) + 100
	}
	for _, cfg := range batchVariants() {
		cfg.MaxKeysPerLeaf = 512
		name := cfg.VariantName()

		mergeTree, err := BulkLoad(base, basePay, cfg)
		if err != nil {
			t.Fatal(err)
		}
		loopTree, err := BulkLoad(base, basePay, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotN := mergeTree.Merge(batch, pays)
		wantN := 0
		for i := range batch {
			if loopTree.Insert(batch[i], pays[i]) {
				wantN++
			}
		}
		if gotN != wantN {
			t.Fatalf("%s: Merge = %d new, loop = %d", name, gotN, wantN)
		}
		crossCheck(t, name+"/merge", mergeTree, loopTree)
	}
}

func TestMergeIntoEmptyIsBulkLoad(t *testing.T) {
	keys := uniqueKeys(10000, 7)
	pays := make([]uint64, len(keys))
	for i := range pays {
		pays[i] = uint64(i)
	}
	for _, cfg := range batchVariants() {
		tr := New(cfg)
		if n := tr.Merge(keys, pays); n != len(keys) {
			t.Fatalf("Merge into empty = %d, want %d", n, len(keys))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			if v, ok := tr.Get(k); !ok || v != pays[i] {
				t.Fatalf("Get(%v) = (%v,%v) after empty merge", k, v, ok)
			}
		}
	}
}

// TestBatchRandomizedChurn interleaves batch and single operations over
// many rounds and checks the tree against a map oracle.
func TestBatchRandomizedChurn(t *testing.T) {
	for _, cfg := range batchVariants() {
		cfg.MaxKeysPerLeaf = 256
		rng := rand.New(rand.NewSource(99))
		tr := New(cfg)
		oracle := make(map[float64]uint64)
		keyOf := func() float64 { return float64(rng.Intn(5000)) }
		for round := 0; round < 60; round++ {
			n := rng.Intn(200)
			ks := make([]float64, n)
			ps := make([]uint64, n)
			for i := range ks {
				ks[i] = keyOf()
				ps[i] = uint64(rng.Intn(1 << 20))
			}
			sort.Float64s(ks)
			switch round % 4 {
			case 0:
				tr.InsertBatch(ks, ps)
				for i := range ks {
					// Later duplicates overwrite earlier ones, matching
					// in-order application.
					oracle[ks[i]] = ps[i]
				}
			case 1:
				tr.Merge(ks, ps)
				for i := range ks {
					oracle[ks[i]] = ps[i]
				}
			case 2:
				tr.DeleteBatch(ks)
				for _, k := range ks {
					delete(oracle, k)
				}
			default:
				for i := range ks {
					tr.Insert(ks[i], ps[i])
					oracle[ks[i]] = ps[i]
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("%s round %d: %v", cfg.VariantName(), round, err)
			}
			if tr.Len() != len(oracle) {
				t.Fatalf("%s round %d: Len %d, oracle %d", cfg.VariantName(), round, tr.Len(), len(oracle))
			}
		}
		for k, want := range oracle {
			if v, ok := tr.Get(k); !ok || v != want {
				t.Fatalf("%s: Get(%v) = (%v,%v), want (%v,true)", cfg.VariantName(), k, v, ok, want)
			}
		}
	}
}

// TestBatchRestoresLeafBound verifies that a batch pouring many keys
// into one leaf leaves the tree with bounded leaves under
// split-on-insert, as a loop of single inserts would.
func TestBatchRestoresLeafBound(t *testing.T) {
	const maxLeaf = 256
	for _, layout := range []Layout{GappedArray, PackedMemoryArray} {
		for _, useMerge := range []bool{false, true} {
			cfg := Config{Layout: layout, RMI: AdaptiveRMI, SplitOnInsert: true, MaxKeysPerLeaf: maxLeaf}
			base := uniqueKeys(2000, 8)
			tr, err := BulkLoad(base, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// A dense cluster in a narrow range routes to few leaves.
			cluster := make([]float64, 8000)
			for i := range cluster {
				cluster[i] = 1e6 + float64(i)/16
			}
			pays := make([]uint64, len(cluster))
			if useMerge {
				tr.Merge(cluster, pays)
			} else {
				tr.InsertBatch(cluster, pays)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			worst := 0
			for _, sz := range tr.LeafSizes() {
				if sz > worst {
					worst = sz
				}
			}
			if worst > maxLeaf {
				t.Fatalf("%s merge=%v: leaf of %d keys exceeds bound %d after batch",
					layout, useMerge, worst, maxLeaf)
			}
		}
	}
}
