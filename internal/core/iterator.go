package core

import "math"

// Iterator is a stateful cursor over the index in ascending key order.
// It walks data nodes through the sibling links, skipping gaps via the
// occupancy bitmaps. The iterator reads live structures: mutating the
// index while iterating invalidates the cursor (like the single-writer
// contract of the index itself). For an iterator that stays valid under
// concurrent writes, cut a Snapshot and use its SnapIterator.
type Iterator struct {
	leaf *node
	slot int
	key  float64
	val  uint64
	ok   bool
}

// iterAccessor is the slot-level surface iterators need from data nodes;
// both layouts provide it through leafbase.
type iterAccessor interface {
	LowerBoundOcc(key float64) int
	NextSlot(slot int) int
	At(slot int) (float64, uint64)
}

// Iter returns an iterator positioned before the first element; call
// Next to advance onto it.
func (t *Tree) Iter() *Iterator {
	return t.IterFrom(math.Inf(-1))
}

// IterFrom returns an iterator positioned before the first element whose
// key is >= start.
func (t *Tree) IterFrom(start float64) *Iterator {
	leaf, _ := t.traverse(start)
	acc := leaf.data().(iterAccessor)
	slot := acc.LowerBoundOcc(start)
	// Position "before" the target slot so the first Next lands on it.
	return &Iterator{leaf: leaf, slot: slot, ok: false, key: start}
}

// Next advances to the next element, reporting whether one exists.
func (it *Iterator) Next() bool {
	if it.leaf == nil {
		return false
	}
	if it.ok {
		// Advance past the current slot.
		it.slot = it.leaf.data().(iterAccessor).NextSlot(it.slot)
	} else if it.slot >= 0 {
		// First call: the stored slot, if any, is the element itself.
		// (slot already points at the lower bound; nothing to do.)
	} else {
		it.slot = -1
	}
	for it.slot < 0 {
		it.leaf = it.leaf.next.Load()
		if it.leaf == nil {
			it.ok = false
			return false
		}
		it.slot = it.leaf.data().(iterAccessor).NextSlot(-1)
	}
	it.key, it.val = it.leaf.data().(iterAccessor).At(it.slot)
	it.ok = true
	return true
}

// Key returns the current element's key; valid only after Next returned
// true.
func (it *Iterator) Key() float64 { return it.key }

// Payload returns the current element's payload; valid only after Next
// returned true.
func (it *Iterator) Payload() uint64 { return it.val }

// Valid reports whether the iterator currently points at an element.
func (it *Iterator) Valid() bool { return it.ok }
