package core

import "math"

// Snapshot is a consistent, immutable point-in-time view of a tree: the
// ordered set of its sealed data nodes plus the element count and stats
// captured at the cut. Once SealLeaves returns, the snapshot never
// changes — the writer clones any sealed array before mutating it
// (leafops.go) — so every read below runs without any coordination with
// the live tree, for as long as the caller keeps the snapshot alive.
type Snapshot struct {
	// Leaves holds the sealed data nodes in ascending key order. They
	// own disjoint key ranges; some may be empty.
	Leaves []DataNode
	// Count is the number of elements at the cut.
	Count int
	// TreeStats is the full Stats() aggregate at the cut, captured
	// eagerly because the snapshot keeps no reference to the tree.
	TreeStats Stats
}

// SealLeaves cuts a snapshot: it seals every data node in the sibling
// chain (an O(#leaves) pass of single flag stores — the copying cost is
// paid lazily, only by leaves the writer actually mutates afterwards)
// and captures count and stats. It must run under writer exclusion, so
// the chain is stable and the cut is consistent; the returned snapshot
// is then safe to read concurrently with any later writes.
func (t *Tree) SealLeaves() *Snapshot {
	s := &Snapshot{Count: t.count, TreeStats: t.Stats()}
	for l := t.head.Load(); l != nil; l = l.next.Load() {
		d := l.data()
		d.Seal()
		s.Leaves = append(s.Leaves, d)
	}
	return s
}

// Len returns the number of elements in the snapshot.
func (s *Snapshot) Len() int { return s.Count }

// Scan visits elements with key >= start in ascending order until visit
// returns false, returning the number visited.
func (s *Snapshot) Scan(start float64, visit func(key float64, payload uint64) bool) int {
	n := 0
	wrapped := func(k float64, v uint64) bool {
		n++
		return visit(k, v)
	}
	for i := s.firstLeaf(start); i < len(s.Leaves); i++ {
		if s.Leaves[i].ScanFrom(start, wrapped) {
			break
		}
		start = math.Inf(-1)
	}
	return n
}

// ScanNInto appends up to max elements with key >= start to keys[:0]
// and payloads[:0], returning the filled slices — the snapshot
// counterpart of Tree.ScanNInto.
func (s *Snapshot) ScanNInto(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64) {
	keys, payloads = keys[:0], payloads[:0]
	if max <= 0 {
		return keys, payloads
	}
	for i := s.firstLeaf(start); i < len(s.Leaves); i++ {
		keys, payloads = s.Leaves[i].AppendFrom(start, max-len(keys), keys, payloads)
		if len(keys) >= max {
			break
		}
		start = math.Inf(-1)
	}
	return keys, payloads
}

// Collect appends every element in key order to keys[:0] and
// payloads[:0] and returns the filled slices.
func (s *Snapshot) Collect(keys []float64, payloads []uint64) ([]float64, []uint64) {
	keys, payloads = keys[:0], payloads[:0]
	for _, d := range s.Leaves {
		keys, payloads = d.Collect(keys, payloads)
	}
	return keys, payloads
}

// firstLeaf returns the index of the first leaf that can hold keys >=
// start: leaves own disjoint ascending ranges, so it is the first
// non-empty leaf whose max key is >= start (empty leaves before it
// contribute nothing). Linear from the left with an early exit; scans
// dominated by the visit cost don't benefit from a binary search here.
func (s *Snapshot) firstLeaf(start float64) int {
	for i, d := range s.Leaves {
		if mx, ok := d.MaxKey(); ok && mx >= start {
			return i
		}
	}
	return len(s.Leaves)
}

// SnapIterator is a stateful cursor over a snapshot in ascending key
// order — the snapshot counterpart of Iterator, reading sealed arrays,
// so it stays valid indefinitely regardless of concurrent writes.
type SnapIterator struct {
	s    *Snapshot
	li   int // current leaf index
	slot int
	key  float64
	val  uint64
	ok   bool
}

// Iter returns an iterator positioned before the snapshot's first
// element.
func (s *Snapshot) Iter() *SnapIterator { return s.IterFrom(math.Inf(-1)) }

// IterFrom returns an iterator positioned before the first element
// whose key is >= start.
func (s *Snapshot) IterFrom(start float64) *SnapIterator {
	li := s.firstLeaf(start)
	it := &SnapIterator{s: s, li: li, slot: -1}
	if li < len(s.Leaves) {
		it.slot = s.Leaves[li].(iterAccessor).LowerBoundOcc(start)
	}
	return it
}

// Next advances to the next element, reporting whether one exists.
func (it *SnapIterator) Next() bool {
	if it.li >= len(it.s.Leaves) {
		it.ok = false
		return false
	}
	if it.ok {
		it.slot = it.s.Leaves[it.li].(iterAccessor).NextSlot(it.slot)
	}
	for it.slot < 0 {
		it.li++
		if it.li >= len(it.s.Leaves) {
			it.ok = false
			return false
		}
		it.slot = it.s.Leaves[it.li].(iterAccessor).NextSlot(-1)
	}
	it.key, it.val = it.s.Leaves[it.li].(iterAccessor).At(it.slot)
	it.ok = true
	return true
}

// Key returns the current element's key; valid only after Next returned
// true.
func (it *SnapIterator) Key() float64 { return it.key }

// Payload returns the current element's payload; valid only after Next
// returned true.
func (it *SnapIterator) Payload() uint64 { return it.val }

// Valid reports whether the iterator currently points at an element.
func (it *SnapIterator) Valid() bool { return it.ok }
