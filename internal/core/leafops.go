package core

import (
	"repro/internal/gapped"
	"repro/internal/pma"
)

// This file is the writer-side dispatch between the tree and the leaf
// layouts' copy-on-write operation variants. Every mutation of a
// published leaf goes through one of the leafXxx helpers, which:
//
//  1. obtain a writable array — cloning it first if a snapshot sealed
//     the current one (freeze-on-snapshot, clone-on-first-write);
//  2. run the layout's COW variant, which mutates in place when the
//     operation is value-only and otherwise builds a replacement;
//  3. publish any replacement with a single atomic store and retire
//     the superseded array for epoch-based reclamation.
//
// Lock-free readers that loaded the old array keep probing it — it is
// never mutated again once unpublished (sealed case) or only ever
// value-mutated (live case, discarded by seqlock validation) — so no
// reader can fault, and pinned snapshots keep their sealed arrays
// byte-stable forever.

// writableGA returns the leaf's gapped array ready for mutation,
// cloning and republishing it first when a snapshot sealed it. Returns
// nil when the leaf is PMA-backed.
func (t *Tree) writableGA(n *node) *gapped.Array {
	g := n.ga.Load()
	if g == nil || !g.Sealed() {
		return g
	}
	c := g.CloneForWrite()
	n.ga.Store(c)
	t.retireObj(g)
	return c
}

// writablePA is writableGA for the PMA layout.
func (t *Tree) writablePA(n *node) *pma.Array {
	p := n.pa.Load()
	if p == nil || !p.Sealed() {
		return p
	}
	c := p.CloneForWrite()
	n.pa.Store(c)
	t.retireObj(p)
	return c
}

func (t *Tree) leafInsert(n *node, key float64, payload uint64) bool {
	if g := t.writableGA(n); g != nil {
		repl, ok := g.InsertCOW(key, payload)
		if repl != nil {
			n.ga.Store(repl)
			t.retireObj(g)
		}
		return ok
	}
	p := t.writablePA(n)
	repl, ok := p.InsertCOW(key, payload)
	if repl != nil {
		n.pa.Store(repl)
		t.retireObj(p)
	}
	return ok
}

func (t *Tree) leafDelete(n *node, key float64) bool {
	if g := t.writableGA(n); g != nil {
		repl, ok := g.DeleteCOW(key)
		if repl != nil {
			n.ga.Store(repl)
			t.retireObj(g)
		}
		return ok
	}
	p := t.writablePA(n)
	repl, ok := p.DeleteCOW(key)
	if repl != nil {
		n.pa.Store(repl)
		t.retireObj(p)
	}
	return ok
}

// leafUpdate overwrites a payload in place. The write itself is
// value-only, but a sealed array must still be cloned first — snapshot
// readers own its exact contents.
func (t *Tree) leafUpdate(n *node, key float64, payload uint64) bool {
	if g := t.writableGA(n); g != nil {
		return g.Update(key, payload)
	}
	return t.writablePA(n).Update(key, payload)
}

func (t *Tree) leafRetrain(n *node) {
	if g := n.ga.Load(); g != nil {
		repl := g.RetrainCOW()
		n.ga.Store(repl)
		t.retireObj(g)
		return
	}
	p := n.pa.Load()
	repl := p.RetrainCOW()
	n.pa.Store(repl)
	t.retireObj(p)
}

func (t *Tree) leafInsertSortedBatch(n *node, keys []float64, payloads []uint64) int {
	if g := t.writableGA(n); g != nil {
		repl, added := g.InsertSortedBatchCOW(keys, payloads)
		if repl != nil {
			n.ga.Store(repl)
			t.retireObj(g)
		}
		return added
	}
	p := t.writablePA(n)
	repl, added := p.InsertSortedBatchCOW(keys, payloads)
	if repl != nil {
		n.pa.Store(repl)
		t.retireObj(p)
	}
	return added
}

func (t *Tree) leafDeleteSortedBatch(n *node, keys []float64) int {
	if g := t.writableGA(n); g != nil {
		repl, deleted := g.DeleteSortedBatchCOW(keys)
		if repl != nil {
			n.ga.Store(repl)
			t.retireObj(g)
		}
		return deleted
	}
	p := t.writablePA(n)
	repl, deleted := p.DeleteSortedBatchCOW(keys)
	if repl != nil {
		n.pa.Store(repl)
		t.retireObj(p)
	}
	return deleted
}

func (t *Tree) leafMergeSorted(n *node, keys []float64, payloads []uint64) int {
	if g := n.ga.Load(); g != nil {
		repl, added := g.MergeSortedCOW(keys, payloads)
		n.ga.Store(repl)
		t.retireObj(g)
		return added
	}
	p := n.pa.Load()
	repl, added := p.MergeSortedCOW(keys, payloads)
	n.pa.Store(repl)
	t.retireObj(p)
	return added
}
