// Package core implements ALEX, the updatable adaptive learned index
// (§3). An ALEX tree is a Recursive Model Index whose inner nodes hold a
// linear model and an array of child pointers (possibly repeated, when
// adjacent partitions were merged at bulk load), and whose leaves are
// data nodes in one of two layouts: Gapped Array or Packed Memory Array.
//
// The four variants evaluated in the paper are expressed through Config:
// Layout × RMIMode give ALEX-GA-SRMI, ALEX-GA-ARMI, ALEX-PMA-SRMI and
// ALEX-PMA-ARMI; SplitOnInsert additionally enables §3.4.2 node
// splitting (used for the distribution-shift and sequential-insert
// experiments).
//
// The tree is single-writer, but it is built to be read lock-free while
// that writer works (the paper's system is single-threaded; §7 lists
// concurrency as future work, and the root package's seqlock + snapshot
// protocols are this reproduction's answer). Every mutable reference —
// child slots, a leaf's data array, the sibling links, root and head —
// is an atomic.Pointer, and every structural change (split, expand,
// retrain, contract, merge rebuild) builds its replacement off to the
// side and publishes it with one atomic store, so a concurrent reader
// always observes either the old or the new structure, never a torn
// intermediate. Value-level mutations (gap claims, shifts, payload
// overwrites) do happen in place; the wrappers' seqlock validation
// discards any read that overlapped them. See docs/concurrency.md for
// the full memory-model argument.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"

	"repro/internal/gapped"
	"repro/internal/leafbase"
	"repro/internal/linmodel"
	"repro/internal/pma"
	"repro/internal/stats"
)

// Layout selects the data node layout (§3.3).
type Layout int

const (
	// GappedArray is the search-optimized layout (§3.3.1).
	GappedArray Layout = iota
	// PackedMemoryArray balances update and search performance (§3.3.2).
	PackedMemoryArray
)

// String returns the layout's short name ("GA", "PMA").
func (l Layout) String() string {
	switch l {
	case GappedArray:
		return "GA"
	case PackedMemoryArray:
		return "PMA"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// RMIMode selects between the static and adaptive model hierarchies (§3.4).
type RMIMode int

const (
	// AdaptiveRMI initializes the tree with Algorithm 4, bounding leaf
	// sizes and adapting depth to the data.
	AdaptiveRMI RMIMode = iota
	// StaticRMI uses a two-level RMI with a fixed number of leaf models,
	// like the Learned Index of Kraska et al.
	StaticRMI
)

// String returns the mode's short name ("ARMI", "SRMI").
func (m RMIMode) String() string {
	switch m {
	case AdaptiveRMI:
		return "ARMI"
	case StaticRMI:
		return "SRMI"
	default:
		return fmt.Sprintf("RMIMode(%d)", int(m))
	}
}

// Config parameterizes an ALEX index. The zero value gives ALEX-GA-ARMI
// with the paper's default space overhead (§5.1).
type Config struct {
	// Layout selects the data node layout.
	Layout Layout
	// RMI selects static vs adaptive model hierarchy.
	RMI RMIMode
	// MaxKeysPerLeaf is the maximum bound on keys per data node used by
	// adaptive RMI initialization and node splitting (§3.4). Default 4096.
	MaxKeysPerLeaf int
	// InnerFanout is the number of partitions given to each non-root
	// inner node during adaptive initialization (§3.4.1). Default 32.
	InnerFanout int
	// SplitFanout is the number of children created when a node splits
	// on insert (§3.4.2). Default 4.
	SplitFanout int
	// SplitOnInsert enables node splitting on inserts. Per §5.1,
	// "unless otherwise stated, adaptive RMI does not do node splitting
	// on inserts", so the default is false.
	SplitOnInsert bool
	// NumLeafModels is the number of leaf models for static RMI.
	// 0 means one model per MaxKeysPerLeaf/2 keys at bulk load.
	NumLeafModels int
	// Density is the gapped array's upper density limit d. 0 uses the
	// default tuned for ~43% space overhead.
	Density float64
	// PMA configures the Packed Memory Array density bounds.
	PMA pma.Config
	// PayloadBytes is the payload size used in data-size accounting
	// (8 for most datasets, 80 for YCSB). Default 8.
	PayloadBytes int
	// Load selects how adaptive-RMI structure is chosen: the zero
	// value CostOptimalLoad plans bulk loads, rebuilds and splits with
	// the §4 cost-model fanout tree; HeuristicLoad keeps the fixed
	// fanout heuristics. Ignored by StaticRMI.
	Load LoadMode
}

func (c Config) withDefaults() Config {
	if c.MaxKeysPerLeaf <= 0 {
		c.MaxKeysPerLeaf = 4096
	}
	if c.InnerFanout < 2 {
		c.InnerFanout = 32
	}
	if c.SplitFanout < 2 {
		c.SplitFanout = 4
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 8
	}
	return c
}

// VariantName returns the paper's name for this configuration, e.g.
// "ALEX-GA-ARMI".
func (c Config) VariantName() string {
	return "ALEX-" + c.Layout.String() + "-" + c.RMI.String()
}

// DataNode is the contract both leaf layouts satisfy. The batch
// methods take non-decreasing key runs (the tree groups a sorted batch
// by destination node before calling them) and amortize the per-key
// growth/contraction decisions to once per batch.
//
// The plain mutating methods (Insert, Delete, ...) may reallocate the
// node's backing arrays in place; the tree therefore never calls them
// on a published node — writer-side mutations go through the layouts'
// COW variants (InsertCOW, ...), dispatched by the leaf-op helpers in
// leafops.go, which republish capacity changes atomically.
type DataNode interface {
	Insert(key float64, payload uint64) bool
	Lookup(key float64) (uint64, bool)
	Update(key float64, payload uint64) bool
	Delete(key float64) bool
	LookupBatch(keys []float64, vals []uint64, found []bool)
	InsertSortedBatch(keys []float64, payloads []uint64) int
	DeleteSortedBatch(keys []float64) int
	MergeSorted(keys []float64, payloads []uint64) int
	Num() int
	Cap() int
	Collect(keys []float64, payloads []uint64) ([]float64, []uint64)
	ScanFrom(start float64, visit func(key float64, payload uint64) bool) bool
	MinKey() (float64, bool)
	MaxKey() (float64, bool)
	AppendFrom(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64)
	PredictionError(key float64) (int, bool)
	// ErrorBound / RetrainAdvised / Retrain are the §4 cost-model
	// surface: the per-leaf prediction-error bound (-1 for model-less
	// nodes), the drift signal derived from it, and the corrective
	// rebuild. See leafbase for the maintenance rules.
	ErrorBound() int
	RetrainAdvised() bool
	Retrain()
	// Seal / Sealed are the snapshot freeze protocol (leafbase.Seal):
	// SealLeaves marks a node frozen, and the writer clones it before
	// its next mutation.
	Seal()
	Sealed() bool
	DataSizeBytes(payloadBytes int) int
	BaseStats() *leafbase.Stats
	CheckInvariants() error
}

var (
	_ DataNode = (*gapped.Array)(nil)
	_ DataNode = (*pma.Array)(nil)
)

// node is a tree node — inner or leaf, distinguished by children:
// non-nil marks an inner node routing keys through its linear model,
// nil marks a leaf holding one data array. A single concrete type (no
// interface) keeps every mutable reference a typed atomic.Pointer, so
// lock-free readers can never observe a torn two-word interface value —
// the root cause of the historical Get SIGSEGV this layout fixed.
//
// Publication discipline: all non-atomic fields (model, fanF, the
// children slice header and its length) are written only before the
// node is first published through an atomic pointer, and never after.
// The atomic store that publishes the node is a release, every child
// load an acquire, so readers see those fields fully initialized.
type node struct {
	// Inner-node routing state. children's *elements* are swapped after
	// publication (splits replace a leaf with a fresh subtree), but the
	// slice itself is never grown, shrunk, or reallocated.
	model    linmodel.Model
	fanF     float64 // cached float64(len(children)), see routeSlot
	children []atomic.Pointer[node]

	// Leaf state: exactly one of ga/pa is non-nil, matching the tree's
	// configured layout. Two typed pointers instead of one DataNode
	// interface keep the swap atomic and the hot probe devirtualized.
	// Restructures store a rebuilt array; value-only mutations touch the
	// current array in place.
	ga atomic.Pointer[gapped.Array]
	pa atomic.Pointer[pma.Array]

	// Sibling links for range scans, maintained by the writer, followed
	// lock-free by scans.
	next, prev atomic.Pointer[node]
}

// newInner builds an inner node with n child slots (filled by the
// caller before publication) and the routing clamp precomputed.
func newInner(model linmodel.Model, n int) *node {
	return &node{model: model, children: make([]atomic.Pointer[node], n), fanF: float64(n)}
}

// isLeaf reports whether the node is a leaf. The children slice is set
// exactly once, before publication, so this needs no synchronization.
func (n *node) isLeaf() bool { return n.children == nil }

func (n *node) route(key float64) *node {
	return n.children[n.routeSlot(key)].Load()
}

// routeSlot is the descent-hot clamped prediction over the child array.
func (n *node) routeSlot(key float64) int {
	p := math.Floor(n.model.Slope*key + n.model.Intercept)
	if !(p > 0) { // negative, -0, or NaN
		return 0
	}
	if p >= n.fanF {
		return len(n.children) - 1
	}
	return int(p)
}

// data returns the leaf's data array through the DataNode interface —
// the cold-path accessor (stats, scans, invariants). Hot paths load ga
// or pa directly to stay devirtualized. Returns nil for inner nodes.
func (n *node) data() DataNode {
	if g := n.ga.Load(); g != nil {
		return g
	}
	if p := n.pa.Load(); p != nil {
		return p
	}
	return nil
}

// child returns slot i's current child; writer-side walks use it.
func (n *node) child(i int) *node { return n.children[i].Load() }

// Stats aggregates tree-level and data-node-level counters, plus the
// distribution of per-leaf prediction-error bounds the §4 cost model
// maintains (see leafbase.Base.ErrBound).
type Stats struct {
	leafbase.Stats
	Splits uint64
	// CostRetrains counts leaf retrains (or splits) triggered by the
	// error-bound cost model rather than by density or size bounds.
	CostRetrains uint64
	NumLeaves    int
	NumInner     int
	Height       int

	// ErrHist buckets modeled leaves by their error bound in powers of
	// two (bucket 0 holds exactly 0, bucket i>0 holds [2^(i-1), 2^i)),
	// the x-axis of the paper's Fig 7 prediction-error plots. Cold
	// (model-less) leaves are excluded.
	ErrHist [20]uint64
	// MaxLeafErr is the largest per-leaf error bound.
	MaxLeafErr int
	// KeysBounded / KeysModeled / KeysTotal weight the distribution by
	// stored keys: KeysBounded live in leaves whose bound fits the
	// bounded-search window (a uniform random stored key is served by
	// bounded search with probability KeysBounded/KeysTotal), KeysModeled
	// in any modeled leaf, KeysTotal everywhere.
	KeysBounded uint64
	KeysModeled uint64
	KeysTotal   uint64
}

// errBucket maps an error bound to its ErrHist bucket.
func errBucket(e int) int {
	b := bits.Len(uint(e)) // 0→0, 1→1, 2..3→2, 4..7→3, ...
	if max := len(Stats{}.ErrHist) - 1; b > max {
		b = max
	}
	return b
}

// Merge accumulates other into s the way a multi-tree wrapper (the
// sharded index) aggregates per-tree stats: counters and histograms
// sum, Height and MaxLeafErr take the maximum.
func (s *Stats) Merge(other *Stats) {
	s.Stats.Add(&other.Stats)
	s.Splits += other.Splits
	s.CostRetrains += other.CostRetrains
	s.NumLeaves += other.NumLeaves
	s.NumInner += other.NumInner
	if other.Height > s.Height {
		s.Height = other.Height
	}
	for i := range s.ErrHist {
		s.ErrHist[i] += other.ErrHist[i]
	}
	if other.MaxLeafErr > s.MaxLeafErr {
		s.MaxLeafErr = other.MaxLeafErr
	}
	s.KeysBounded += other.KeysBounded
	s.KeysModeled += other.KeysModeled
	s.KeysTotal += other.KeysTotal
}

// LeafErrPercentile returns the p-th percentile (0 <= p <= 100) of the
// per-leaf error bounds, resolved to the bucket lower bound of ErrHist;
// -1 when no modeled leaves exist. It delegates to internal/stats so
// the archived percentiles and the rendered histograms share one
// bucket-rank algorithm.
func (s *Stats) LeafErrPercentile(p float64) int {
	return stats.HistogramFromCounts(s.ErrHist[:]).Percentile(p)
}

// BoundedShare returns the fraction of stored keys living in leaves
// served by the bounded-search fast path.
func (s *Stats) BoundedShare() float64 {
	if s.KeysTotal == 0 {
		return 0
	}
	return float64(s.KeysBounded) / float64(s.KeysTotal)
}

// Tree is an ALEX index from float64 keys to uint64 payloads. A Tree
// must not be copied after first use (it holds atomic pointers).
type Tree struct {
	cfg          Config
	root         atomic.Pointer[node]
	head         atomic.Pointer[node] // leftmost leaf
	count        int
	splits       uint64
	costRetrains uint64

	// retire, when set (SetRetireHook), receives every structure the
	// writer unpublishes — replaced data arrays, superseded nodes — so
	// the owner can run epoch-based reclamation over them. Called under
	// the writer's exclusion.
	retire func(any)
}

// SetRetireHook installs the unpublish callback for epoch-based
// reclamation. It must be set before the tree is shared and not changed
// afterwards; a nil hook (the default) drops unpublished structures
// straight to the garbage collector.
func (t *Tree) SetRetireHook(f func(any)) { t.retire = f }

// retireObj hands an unpublished structure to the reclamation hook.
func (t *Tree) retireObj(x any) {
	if t.retire != nil && x != nil {
		t.retire(x)
	}
}

// maxBuildDepth caps adaptive-RMI recursion against degenerate data.
const maxBuildDepth = 48

// New returns an empty index ("cold start", §3.4.2): a single empty data
// node that grows by expansion and — with SplitOnInsert — by splitting.
func New(cfg Config) *Tree {
	t := &Tree{cfg: cfg.withDefaults()}
	leaf := t.newLeaf(nil, nil)
	t.root.Store(leaf)
	t.head.Store(leaf)
	return t
}

// BulkLoad builds an index over the given keys and payloads, which need
// not be sorted. Duplicate keys are rejected with an error (ALEX does
// not support duplicates, §7). payloads may be nil, in which case zero
// payloads are stored; otherwise len(payloads) must equal len(keys).
func BulkLoad(keys []float64, payloads []uint64, cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	sortedK, sortedP, err := SortPairs(keys, payloads)
	if err != nil {
		return nil, err
	}
	return bulkLoadSorted(sortedK, sortedP, cfg), nil
}

// SortPairs returns keys (with their payloads riding along) in sorted
// order and validates the bulk-load contract: keys unique and finite.
// payloads may be nil, in which case zero payloads are returned. Every
// entry point that accepts unsorted user keys shares this one
// implementation of the acceptance rules.
//
// Already-sorted input — the common case for bulk loads from scans,
// merge batches, and replay coalescing — is detected with one O(n)
// pass and returned as-is, skipping the index sort and the permutation
// copy: a strict ascent proves both order and uniqueness (and NaN,
// which fails every comparison, falls through to the slow path), so
// only finiteness still needs checking. Callers must therefore not
// assume the returned slices are fresh copies.
func SortPairs(keys []float64, payloads []uint64) ([]float64, []uint64, error) {
	if payloads != nil && len(payloads) != len(keys) {
		return nil, nil, errors.New("core: len(payloads) != len(keys)")
	}
	sorted := true
	for i := 1; i < len(keys); i++ {
		if !(keys[i] > keys[i-1]) {
			sorted = false
			break
		}
	}
	if sorted {
		for _, k := range keys {
			if math.IsNaN(k) || math.IsInf(k, 0) {
				return nil, nil, fmt.Errorf("core: non-finite key %v", k)
			}
		}
		if payloads == nil {
			payloads = make([]uint64, len(keys))
		}
		return keys, payloads, nil
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	sortedK := make([]float64, len(keys))
	sortedP := make([]uint64, len(keys))
	for i, j := range idx {
		sortedK[i] = keys[j]
		if payloads != nil {
			sortedP[i] = payloads[j]
		}
	}
	for i := 1; i < len(sortedK); i++ {
		if sortedK[i] == sortedK[i-1] {
			return nil, nil, fmt.Errorf("core: duplicate key %v", sortedK[i])
		}
	}
	for _, k := range sortedK {
		if math.IsNaN(k) || math.IsInf(k, 0) {
			return nil, nil, fmt.Errorf("core: non-finite key %v", k)
		}
	}
	return sortedK, sortedP, nil
}

// BulkLoadSorted builds an index over keys that are already sorted and
// unique. It avoids the copy and sort of BulkLoad; the caller must
// guarantee order and uniqueness.
func BulkLoadSorted(keys []float64, payloads []uint64, cfg Config) *Tree {
	cfg = cfg.withDefaults()
	if payloads == nil {
		payloads = make([]uint64, len(keys))
	}
	return bulkLoadSorted(keys, payloads, cfg)
}

func bulkLoadSorted(keys []float64, payloads []uint64, cfg Config) *Tree {
	t := &Tree{cfg: cfg}
	if len(keys) == 0 {
		leaf := t.newLeaf(nil, nil)
		t.root.Store(leaf)
		t.head.Store(leaf)
		return t
	}
	t.count = len(keys)
	switch {
	case cfg.RMI == StaticRMI:
		t.root.Store(t.buildStatic(keys, payloads))
	case cfg.Load == HeuristicLoad:
		t.root.Store(t.buildAdaptive(keys, payloads, 0))
	default:
		t.root.Store(t.buildCostOptimal(keys, payloads))
	}
	t.linkLeaves()
	return t
}

// newLeaf creates a data node of the configured layout from a sorted
// unique segment.
func (t *Tree) newLeaf(keys []float64, payloads []uint64) *node {
	n := &node{}
	switch t.cfg.Layout {
	case PackedMemoryArray:
		if len(keys) == 0 {
			n.pa.Store(pma.New(t.cfg.PMA))
		} else {
			n.pa.Store(pma.NewFromSorted(keys, payloads, t.cfg.PMA))
		}
	default:
		gcfg := gapped.Config{Density: t.cfg.Density}
		if len(keys) == 0 {
			n.ga.Store(gapped.New(gcfg))
		} else {
			n.ga.Store(gapped.NewFromSorted(keys, payloads, gcfg))
		}
	}
	return n
}

// buildStatic builds the two-level static RMI (§3.2): a root linear model
// over M leaf models, each leaf holding its contiguous partition.
func (t *Tree) buildStatic(keys []float64, payloads []uint64) *node {
	n := len(keys)
	m := t.cfg.NumLeafModels
	if m <= 0 {
		m = n / (t.cfg.MaxKeysPerLeaf / 2)
	}
	if m < 1 {
		m = 1
	}
	model, bounds, nonEmpty := partition(keys, m)
	if m == 1 || nonEmpty <= 1 {
		return t.newLeaf(keys, payloads)
	}
	inner := newInner(model, m)
	for p := 0; p < m; p++ {
		lo, hi := bounds[p], bounds[p+1]
		inner.children[p].Store(t.newLeaf(keys[lo:hi], payloads[lo:hi]))
	}
	return inner
}

// buildAdaptive implements Algorithm 4. Keys is the sorted segment
// assigned to this subtree; depth 0 is the root.
func (t *Tree) buildAdaptive(keys []float64, payloads []uint64, depth int) *node {
	n := len(keys)
	maxKeys := t.cfg.MaxKeysPerLeaf
	if n <= maxKeys || depth >= maxBuildDepth {
		return t.newLeaf(keys, payloads)
	}
	// The root receives enough partitions that each holds maxKeys in
	// expectation; non-root nodes use the fixed fanout (§3.4.1).
	p := t.cfg.InnerFanout
	if depth == 0 {
		p = (n + maxKeys - 1) / maxKeys
		if p < 2 {
			p = 2
		}
	}
	model, bounds, nonEmpty := partition(keys, p)
	if nonEmpty <= 1 {
		// The model cannot subdivide this segment (extreme skew):
		// fall back to a single leaf rather than recurse forever.
		return t.newLeaf(keys, payloads)
	}
	inner := newInner(model, p)
	for i := 0; i < p; {
		size := bounds[i+1] - bounds[i]
		if size > maxKeys {
			// Oversized partition: recurse into a child inner node.
			inner.children[i].Store(t.buildAdaptive(keys[bounds[i]:bounds[i+1]], payloads[bounds[i]:bounds[i+1]], depth+1))
			i++
			continue
		}
		// Undersized: merge subsequent partitions while the accumulated
		// size stays within the bound, then emit one shared leaf.
		begin := i
		acc := size
		for i+1 < p && acc+(bounds[i+2]-bounds[i+1]) <= maxKeys {
			i++
			acc += bounds[i+1] - bounds[i]
		}
		leaf := t.newLeaf(keys[bounds[begin]:bounds[i+1]], payloads[bounds[begin]:bounds[i+1]])
		for q := begin; q <= i; q++ {
			inner.children[q].Store(leaf)
		}
		i++
	}
	return inner
}

// partition trains a model over the sorted keys, scales it to p
// partitions, and returns the model, the p+1 partition boundaries
// (bounds[i] is the first key index of partition i), and the number of
// non-empty partitions. When least squares degenerates — to a single
// non-empty partition, or to a non-monotone fit (catastrophic
// cancellation on extreme key magnitudes can yield a slightly negative
// slope, which would break routing) — an endpoint fit is used instead.
func partition(keys []float64, p int) (linmodel.Model, []int, int) {
	n := len(keys)
	model := linmodel.Train(keys).Scale(float64(p) / float64(n))
	usable := model.Slope >= 0 && !math.IsInf(model.Slope, 0) && !math.IsNaN(model.Slope)
	var bounds []int
	nonEmpty := 0
	if usable {
		bounds, nonEmpty = boundaries(keys, model, p)
	}
	if nonEmpty <= 1 && n > 1 {
		model = linmodel.TrainEndpoints(keys, 0, n).Scale(float64(p) / float64(n))
		bounds, nonEmpty = boundaries(keys, model, p)
	}
	return model, bounds, nonEmpty
}

// boundaries computes partition boundaries for a monotone model:
// bounds[i] = first key index whose unfloored prediction is >= i. Keys
// whose clamped partition is 0 or p-1 are absorbed by the end clamps.
func boundaries(keys []float64, model linmodel.Model, p int) ([]int, int) {
	n := len(keys)
	bounds := make([]int, p+1)
	bounds[0] = 0
	bounds[p] = n
	for i := 1; i < p; i++ {
		target := float64(i)
		bounds[i] = sort.Search(n, func(j int) bool { return model.Predict(keys[j]) >= target })
	}
	// Boundaries from a monotone model are non-decreasing, but guard
	// against pathological slopes.
	for i := 1; i <= p; i++ {
		if bounds[i] < bounds[i-1] {
			bounds[i] = bounds[i-1]
		}
	}
	nonEmpty := 0
	for i := 0; i < p; i++ {
		if bounds[i+1] > bounds[i] {
			nonEmpty++
		}
	}
	return bounds, nonEmpty
}

// linkLeaves rebuilds the sibling chain by an in-order walk. Only used
// at build time, before the tree is shared.
func (t *Tree) linkLeaves() {
	head, _ := linkChain(t.root.Load())
	t.head.Store(head)
}

// linkChain links the subtree's leaves among themselves by an in-order
// walk, deduplicating repeated child pointers, and returns the
// leftmost and rightmost leaf. The links are internal to the subtree —
// safe to set before the subtree is published.
func linkChain(root *node) (head, tail *node) {
	var prev *node
	var walk func(c *node)
	walk = func(c *node) {
		if !c.isLeaf() {
			var last *node
			for i := range c.children {
				ch := c.children[i].Load()
				if ch == last {
					continue
				}
				last = ch
				walk(ch)
			}
			return
		}
		if prev == c {
			return
		}
		c.prev.Store(prev)
		c.next.Store(nil)
		if prev != nil {
			prev.next.Store(c)
		} else {
			head = c
		}
		prev = c
	}
	walk(root)
	return head, prev
}

// traverse returns the leaf responsible for key and its immediate parent
// (nil when the root is a leaf).
func (t *Tree) traverse(key float64) (leaf, parent *node) {
	cur := t.root.Load()
	for !cur.isLeaf() {
		parent = cur
		cur = cur.route(key)
	}
	return cur, parent
}

// leafFor is the read-hot half of traverse: it returns only the leaf,
// skipping the parent bookkeeping mutations need, so the descent loop
// is small enough to stay in registers. Each level is one cached-clamp
// model evaluation and one atomic pointer load.
//
// The descent is safe against concurrent restructures by construction:
// a child slot is a typed atomic pointer, and a split publishes its
// fresh subtree with a single release store, so a lock-free reader
// loads either the old child or the fully built new one — never a torn
// reference. The nil check guards the (unreachable on a consistent
// tree) case of a slot that was never filled; such a probe returns a
// nil leaf — a miss the seqlock validation then discards — instead of
// a fault.
func (t *Tree) leafFor(key float64) *node {
	cur := t.root.Load()
	for cur != nil && !cur.isLeaf() {
		cur = cur.children[cur.routeSlot(key)].Load()
	}
	return cur
}

// Get returns the payload stored for key.
func (t *Tree) Get(key float64) (uint64, bool) {
	leaf := t.leafFor(key)
	if leaf == nil {
		return 0, false // torn optimistic probe; see leafFor
	}
	// Devirtualize both layouts: a direct typed call lets the probe
	// chain (Find, the branchless searches) inline into one frame, where
	// an interface call would pin it behind dynamic dispatch. The array
	// pointer is loaded once; a restructure publishing a rebuilt array
	// concurrently leaves this probe on the old (intact) one.
	if g := leaf.ga.Load(); g != nil {
		return g.Lookup(key)
	}
	if p := leaf.pa.Load(); p != nil {
		return p.Lookup(key)
	}
	return 0, false
}

// Contains reports whether key is present.
func (t *Tree) Contains(key float64) bool {
	_, ok := t.Get(key)
	return ok
}

// Insert adds key with payload. It reports whether a new element was
// added; inserting an existing key overwrites its payload and returns
// false. Non-finite keys are rejected with a panic, mirroring the data
// nodes.
func (t *Tree) Insert(key float64, payload uint64) bool {
	leaf, parent := t.traverse(key)
	if t.cfg.RMI == AdaptiveRMI && t.cfg.SplitOnInsert && leaf.data().Num() >= t.cfg.MaxKeysPerLeaf {
		if t.splitLeaf(leaf, parent) {
			leaf, parent = t.traverse(key)
		}
	}
	if t.leafInsert(leaf, key, payload) {
		t.count++
		t.costCheck(leaf, parent)
		return true
	}
	return false
}

// costCheck applies the §4 cost-model feedback after inserts touched a
// leaf: when the leaf's prediction-error bound reports that searches
// have drifted well past the bounded-search budget (see
// leafbase.RetrainAdvised, which also amortizes the O(n) correction
// over the inserts since the last rebuild), the leaf is corrected —
// split when splitting is enabled and the leaf is large enough that
// partitioning it gives each child its own, better-fitting model,
// retrained in place otherwise. This is what makes chronically
// mispredicting leaves retrain or split *sooner* than the density and
// size bounds alone would: the expansion/split decision consumes the
// measured error, not just occupancy.
func (t *Tree) costCheck(leaf, parent *node) {
	if !leaf.data().RetrainAdvised() {
		return
	}
	if t.cfg.RMI == AdaptiveRMI && t.cfg.SplitOnInsert && leaf.data().Num() >= t.cfg.MaxKeysPerLeaf/2 {
		if t.splitLeaf(leaf, parent) {
			t.costRetrains++
			return
		}
	}
	t.leafRetrain(leaf)
	t.costRetrains++
}

// splitLeaf implements node splitting on inserts (§3.4.2): the leaf
// becomes an inner subtree whose structure is chosen by the configured
// LoadMode — the fanout-tree planner minimizing the children's modeled
// cost under CostOptimalLoad (falling back to the heuristic when the
// planner cannot partition), a flat SplitFanout partition of the
// leaf's model under HeuristicLoad; sibling links are spliced. Returns
// false when the leaf's keys cannot be partitioned at all (all keys in
// one partition), in which case the leaf is left in place to expand.
//
// The replacement subtree — inner node(s), children, their data
// arrays, their internal sibling links — is built completely off to
// the side; publication is the final child-slot stores (or the root
// store). A lock-free reader therefore sees either the old leaf, still
// intact with all its data, or the finished subtree. The old leaf's
// own next/prev are deliberately left pointing into the chain, so a
// scan paused on it still terminates correctly; the seqlock validation
// rejects its result.
func (t *Tree) splitLeaf(leaf, parent *node) bool {
	keys, payloads := leaf.data().Collect(nil, nil)
	var sub *node
	if t.cfg.Load != HeuristicLoad {
		if pl := t.planParams().NewSplitPlan(keys, t.cfg.SplitFanout); pl != nil {
			sub = t.buildFromPlan(keys, payloads, pl, 0)
		}
	}
	if sub == nil {
		s := t.cfg.SplitFanout
		model, bounds, nonEmpty := partition(keys, s)
		if nonEmpty <= 1 {
			return false
		}
		inner := newInner(model, s)
		var last *node
		for p := 0; p < s; p++ {
			lo, hi := bounds[p], bounds[p+1]
			if last != nil && lo == hi {
				// Empty partition: share the preceding leaf rather than
				// materialize an empty node in the middle of the chain.
				inner.children[p].Store(last)
				continue
			}
			nl := t.newLeaf(keys[lo:hi], payloads[lo:hi])
			inner.children[p].Store(nl)
			last = nl
		}
		sub = inner
	}
	// Link the new leaves among themselves, then splice them into the
	// sibling chain. The chain stores are individually atomic; every
	// intermediate state keeps both directions acyclic and terminating.
	first, lastNew := linkChain(sub)
	prev, next := leaf.prev.Load(), leaf.next.Load()
	first.prev.Store(prev)
	lastNew.next.Store(next)
	if prev != nil {
		prev.next.Store(first)
	} else {
		t.head.Store(first)
	}
	if next != nil {
		next.prev.Store(lastNew)
	}
	// Publish: replace the pointer(s) in the parent (merged partitions
	// may hold several copies), or the root. Each store atomically
	// reroutes one slot from the old leaf to the new subtree.
	if parent == nil {
		t.root.Store(sub)
	} else {
		for i := range parent.children {
			if parent.children[i].Load() == leaf {
				parent.children[i].Store(sub)
			}
		}
	}
	t.retireObj(leaf)
	t.splits++
	return true
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key float64) bool {
	leaf, _ := t.traverse(key)
	if t.leafDelete(leaf, key) {
		t.count--
		return true
	}
	return false
}

// Update overwrites the payload of an existing key.
func (t *Tree) Update(key float64, payload uint64) bool {
	leaf, _ := t.traverse(key)
	return t.leafUpdate(leaf, key, payload)
}

// Len returns the number of stored elements.
func (t *Tree) Len() int { return t.count }

// Config returns the tree's configuration (with defaults applied).
func (t *Tree) Config() Config { return t.cfg }

// Scan visits elements with key >= start in ascending order until visit
// returns false, crossing leaf boundaries through the sibling links. It
// returns the number of elements visited.
func (t *Tree) Scan(start float64, visit func(key float64, payload uint64) bool) int {
	leaf, _ := t.traverse(start)
	// The routed leaf can sit past smaller siblings when start is below
	// the leaf's range; scans never need to look left, because traverse
	// routes by the same model inserts used.
	n := 0
	wrapped := func(k float64, v uint64) bool {
		n++
		return visit(k, v)
	}
	stopped := leaf.data().ScanFrom(start, wrapped)
	for !stopped {
		leaf = leaf.next.Load()
		if leaf == nil {
			break
		}
		stopped = leaf.data().ScanFrom(math.Inf(-1), wrapped)
	}
	return n
}

// ScanN collects up to max elements starting at the first key >= start.
// It returns the keys and payloads visited, for callers that want a
// materialized range (the YCSB-E style scan of §5.1.2).
func (t *Tree) ScanN(start float64, max int) ([]float64, []uint64) {
	if max < 0 {
		max = 0
	}
	return t.ScanNInto(start, max, make([]float64, 0, max), make([]uint64, 0, max))
}

// ScanNInto is ScanN into caller-supplied destination slices: results
// are appended to keys[:0] and payloads[:0] and the filled slices
// returned. Unlike Scan it walks the leaf chain without a visitor
// callback, so when the destinations have capacity for max elements the
// whole scan performs zero allocations.
func (t *Tree) ScanNInto(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64) {
	keys, payloads = keys[:0], payloads[:0]
	if max <= 0 {
		return keys, payloads
	}
	leaf := t.leafFor(start)
	for leaf != nil {
		d := leaf.data()
		if d == nil {
			break // torn optimistic probe
		}
		keys, payloads = d.AppendFrom(start, max-len(keys), keys, payloads)
		if len(keys) >= max {
			break
		}
		leaf = leaf.next.Load()
		start = math.Inf(-1)
	}
	return keys, payloads
}

// ScanCount visits up to max elements from start, discarding them; it
// returns how many were visited. Benchmarks use it to avoid allocation.
func (t *Tree) ScanCount(start float64, max int) int {
	remaining := max
	return t.Scan(start, func(k float64, v uint64) bool {
		remaining--
		return remaining > 0
	})
}

// MinKey returns the smallest key in the index.
func (t *Tree) MinKey() (float64, bool) {
	for l := t.head.Load(); l != nil; l = l.next.Load() {
		if k, ok := l.data().MinKey(); ok {
			return k, true
		}
	}
	return 0, false
}

// MaxKey returns the largest key in the index.
func (t *Tree) MaxKey() (float64, bool) {
	var tail *node
	for l := t.head.Load(); l != nil; l = l.next.Load() {
		tail = l
	}
	for l := tail; l != nil; l = l.prev.Load() {
		if k, ok := l.data().MaxKey(); ok {
			return k, true
		}
	}
	return 0, false
}

// Height returns the number of levels (a lone leaf has height 1).
func (t *Tree) Height() int {
	var h func(c *node) int
	h = func(c *node) int {
		if c.isLeaf() {
			return 1
		}
		best := 0
		var last *node
		for i := range c.children {
			ch := c.children[i].Load()
			if ch == last {
				continue
			}
			last = ch
			if d := h(ch); d > best {
				best = d
			}
		}
		return best + 1
	}
	return h(t.root.Load())
}

// Stats aggregates counters over the whole tree, including the
// error-bound distribution the cost model maintains per leaf.
func (t *Tree) Stats() Stats {
	var s Stats
	s.Splits = t.splits
	s.CostRetrains = t.costRetrains
	s.Height = t.Height()
	for l := t.head.Load(); l != nil; l = l.next.Load() {
		d := l.data()
		s.NumLeaves++
		s.Stats.Add(d.BaseStats())
		n := uint64(d.Num())
		s.KeysTotal += n
		if e := d.ErrorBound(); e >= 0 {
			s.KeysModeled += n
			s.ErrHist[errBucket(e)]++
			if e > s.MaxLeafErr {
				s.MaxLeafErr = e
			}
			if e <= leafbase.BoundedSearchMaxErr {
				s.KeysBounded += n
			}
		}
	}
	var walk func(c *node)
	walk = func(c *node) {
		if c.isLeaf() {
			return
		}
		s.NumInner++
		var last *node
		for i := range c.children {
			ch := c.children[i].Load()
			if ch == last {
				continue
			}
			last = ch
			walk(ch)
		}
	}
	walk(t.root.Load())
	return s
}

// LeafSizes returns the number of keys in each leaf, left to right
// (Fig 12, Appendix B).
func (t *Tree) LeafSizes() []int {
	var sizes []int
	for l := t.head.Load(); l != nil; l = l.next.Load() {
		sizes = append(sizes, l.data().Num())
	}
	return sizes
}

// IndexSizeBytes accounts the index structure per §5.1: every model is
// two float64s (16 B); inner nodes add 8 B per child pointer; every node
// carries a small metadata header. Data nodes' models and sibling
// pointers count toward the index, their arrays toward DataSizeBytes.
func (t *Tree) IndexSizeBytes() int {
	const modelBytes = 16
	const headerBytes = 24
	total := 0
	var walk func(c *node)
	walk = func(c *node) {
		if c.isLeaf() {
			total += modelBytes + headerBytes + 16 // model + header + next/prev
			return
		}
		total += modelBytes + headerBytes + 8*len(c.children)
		var last *node
		for i := range c.children {
			ch := c.children[i].Load()
			if ch == last {
				continue
			}
			last = ch
			walk(ch)
		}
	}
	walk(t.root.Load())
	return total
}

// DataSizeBytes accounts leaf storage: allocated key/payload arrays
// including gaps, plus the occupancy bitmaps.
func (t *Tree) DataSizeBytes() int {
	total := 0
	for l := t.head.Load(); l != nil; l = l.next.Load() {
		total += l.data().DataSizeBytes(t.cfg.PayloadBytes)
	}
	return total
}

// PredictionError returns the RMI's absolute slot prediction error for an
// existing key (Fig 7).
func (t *Tree) PredictionError(key float64) (int, bool) {
	leaf, _ := t.traverse(key)
	return leaf.data().PredictionError(key)
}

// CheckInvariants verifies the whole tree: every data node's internal
// invariants, the sibling chain's order and connectivity, the key-routing
// consistency (every stored key is found by traversal), and the element
// count.
func (t *Tree) CheckInvariants() error {
	// Data node invariants + chain order.
	total := 0
	prevMax := math.Inf(-1)
	seen := make(map[*node]bool)
	for l := t.head.Load(); l != nil; l = l.next.Load() {
		if seen[l] {
			return errors.New("core: sibling chain has a cycle")
		}
		seen[l] = true
		d := l.data()
		if d == nil {
			return errors.New("core: leaf without a data array")
		}
		if err := d.CheckInvariants(); err != nil {
			return err
		}
		if mn, ok := d.MinKey(); ok {
			if mn <= prevMax {
				return fmt.Errorf("core: leaf chain out of order: %v <= %v", mn, prevMax)
			}
			mx, _ := d.MaxKey()
			prevMax = mx
		}
		if next := l.next.Load(); next != nil && next.prev.Load() != l {
			return errors.New("core: broken prev link")
		}
		total += d.Num()
	}
	if total != t.count {
		return fmt.Errorf("core: leaf totals %d != count %d", total, t.count)
	}
	// Every leaf reachable from the root must be in the chain, and every
	// stored key must be routed back to its leaf.
	var walk func(c *node) error
	walk = func(c *node) error {
		if !c.isLeaf() {
			if len(c.children) == 0 {
				return errors.New("core: inner node with no children")
			}
			var last *node
			for i := range c.children {
				ch := c.children[i].Load()
				if ch == nil {
					return errors.New("core: nil child")
				}
				if ch == last {
					continue
				}
				last = ch
				if err := walk(ch); err != nil {
					return err
				}
			}
			return nil
		}
		if !seen[c] {
			return errors.New("core: reachable leaf missing from sibling chain")
		}
		keys, _ := c.data().Collect(nil, nil)
		for _, k := range keys {
			routed, _ := t.traverse(k)
			if routed != c {
				return fmt.Errorf("core: key %v stored in one leaf but routed to another", k)
			}
		}
		return nil
	}
	return walk(t.root.Load())
}
