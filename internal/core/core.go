// Package core implements ALEX, the updatable adaptive learned index
// (§3). An ALEX tree is a Recursive Model Index whose inner nodes hold a
// linear model and an array of child pointers (possibly repeated, when
// adjacent partitions were merged at bulk load), and whose leaves are
// data nodes in one of two layouts: Gapped Array or Packed Memory Array.
//
// The four variants evaluated in the paper are expressed through Config:
// Layout × RMIMode give ALEX-GA-SRMI, ALEX-GA-ARMI, ALEX-PMA-SRMI and
// ALEX-PMA-ARMI; SplitOnInsert additionally enables §3.4.2 node
// splitting (used for the distribution-shift and sequential-insert
// experiments).
//
// The index is single-writer, like the system the paper evaluates;
// concurrency control is listed as future work there (§7).
package core

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/gapped"
	"repro/internal/leafbase"
	"repro/internal/linmodel"
	"repro/internal/pma"
	"repro/internal/stats"
)

// Layout selects the data node layout (§3.3).
type Layout int

const (
	// GappedArray is the search-optimized layout (§3.3.1).
	GappedArray Layout = iota
	// PackedMemoryArray balances update and search performance (§3.3.2).
	PackedMemoryArray
)

func (l Layout) String() string {
	switch l {
	case GappedArray:
		return "GA"
	case PackedMemoryArray:
		return "PMA"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// RMIMode selects between the static and adaptive model hierarchies (§3.4).
type RMIMode int

const (
	// AdaptiveRMI initializes the tree with Algorithm 4, bounding leaf
	// sizes and adapting depth to the data.
	AdaptiveRMI RMIMode = iota
	// StaticRMI uses a two-level RMI with a fixed number of leaf models,
	// like the Learned Index of Kraska et al.
	StaticRMI
)

func (m RMIMode) String() string {
	switch m {
	case AdaptiveRMI:
		return "ARMI"
	case StaticRMI:
		return "SRMI"
	default:
		return fmt.Sprintf("RMIMode(%d)", int(m))
	}
}

// Config parameterizes an ALEX index. The zero value gives ALEX-GA-ARMI
// with the paper's default space overhead (§5.1).
type Config struct {
	// Layout selects the data node layout.
	Layout Layout
	// RMI selects static vs adaptive model hierarchy.
	RMI RMIMode
	// MaxKeysPerLeaf is the maximum bound on keys per data node used by
	// adaptive RMI initialization and node splitting (§3.4). Default 4096.
	MaxKeysPerLeaf int
	// InnerFanout is the number of partitions given to each non-root
	// inner node during adaptive initialization (§3.4.1). Default 32.
	InnerFanout int
	// SplitFanout is the number of children created when a node splits
	// on insert (§3.4.2). Default 4.
	SplitFanout int
	// SplitOnInsert enables node splitting on inserts. Per §5.1,
	// "unless otherwise stated, adaptive RMI does not do node splitting
	// on inserts", so the default is false.
	SplitOnInsert bool
	// NumLeafModels is the number of leaf models for static RMI.
	// 0 means one model per MaxKeysPerLeaf/2 keys at bulk load.
	NumLeafModels int
	// Density is the gapped array's upper density limit d. 0 uses the
	// default tuned for ~43% space overhead.
	Density float64
	// PMA configures the Packed Memory Array density bounds.
	PMA pma.Config
	// PayloadBytes is the payload size used in data-size accounting
	// (8 for most datasets, 80 for YCSB). Default 8.
	PayloadBytes int
}

func (c Config) withDefaults() Config {
	if c.MaxKeysPerLeaf <= 0 {
		c.MaxKeysPerLeaf = 4096
	}
	if c.InnerFanout < 2 {
		c.InnerFanout = 32
	}
	if c.SplitFanout < 2 {
		c.SplitFanout = 4
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 8
	}
	return c
}

// VariantName returns the paper's name for this configuration, e.g.
// "ALEX-GA-ARMI".
func (c Config) VariantName() string {
	return "ALEX-" + c.Layout.String() + "-" + c.RMI.String()
}

// DataNode is the contract both leaf layouts satisfy. The batch
// methods take non-decreasing key runs (the tree groups a sorted batch
// by destination node before calling them) and amortize the per-key
// growth/contraction decisions to once per batch.
type DataNode interface {
	Insert(key float64, payload uint64) bool
	Lookup(key float64) (uint64, bool)
	Update(key float64, payload uint64) bool
	Delete(key float64) bool
	LookupBatch(keys []float64, vals []uint64, found []bool)
	InsertSortedBatch(keys []float64, payloads []uint64) int
	DeleteSortedBatch(keys []float64) int
	MergeSorted(keys []float64, payloads []uint64) int
	Num() int
	Cap() int
	Collect(keys []float64, payloads []uint64) ([]float64, []uint64)
	ScanFrom(start float64, visit func(key float64, payload uint64) bool) bool
	MinKey() (float64, bool)
	MaxKey() (float64, bool)
	AppendFrom(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64)
	PredictionError(key float64) (int, bool)
	// ErrorBound / RetrainAdvised / Retrain are the §4 cost-model
	// surface: the per-leaf prediction-error bound (-1 for model-less
	// nodes), the drift signal derived from it, and the corrective
	// rebuild. See leafbase for the maintenance rules.
	ErrorBound() int
	RetrainAdvised() bool
	Retrain()
	DataSizeBytes(payloadBytes int) int
	BaseStats() *leafbase.Stats
	CheckInvariants() error
}

var (
	_ DataNode = (*gapped.Array)(nil)
	_ DataNode = (*pma.Array)(nil)
)

// child is either *innerNode or *leafNode.
type child interface{}

// innerNode routes keys to children with a linear model: child index =
// clamp(floor(model(key)), 0, len(children)-1). Adjacent slots may point
// to the same child (merged partitions, §3.4.1).
type innerNode struct {
	model    linmodel.Model
	children []child
	// fanF caches float64(len(children)) so each routing step clamps the
	// model output in float registers without an int→float conversion —
	// the same trick the leaf predict uses. Set by newInner; children is
	// never resized after construction.
	fanF float64
}

// newInner builds an inner node with n child slots (filled by the
// caller) and the routing clamp precomputed.
func newInner(model linmodel.Model, n int) *innerNode {
	return &innerNode{model: model, children: make([]child, n), fanF: float64(n)}
}

func (n *innerNode) route(key float64) child {
	return n.children[n.routeSlot(key)]
}

// routeSlot is the descent-hot clamped prediction over the child array.
func (n *innerNode) routeSlot(key float64) int {
	p := math.Floor(n.model.Slope*key + n.model.Intercept)
	if !(p > 0) { // negative, -0, or NaN
		return 0
	}
	if p >= n.fanF {
		return len(n.children) - 1
	}
	return int(p)
}

// leafNode wraps a data node and its sibling links for range scans.
type leafNode struct {
	data       DataNode
	next, prev *leafNode
}

// Stats aggregates tree-level and data-node-level counters, plus the
// distribution of per-leaf prediction-error bounds the §4 cost model
// maintains (see leafbase.Base.ErrBound).
type Stats struct {
	leafbase.Stats
	Splits uint64
	// CostRetrains counts leaf retrains (or splits) triggered by the
	// error-bound cost model rather than by density or size bounds.
	CostRetrains uint64
	NumLeaves    int
	NumInner     int
	Height       int

	// ErrHist buckets modeled leaves by their error bound in powers of
	// two (bucket 0 holds exactly 0, bucket i>0 holds [2^(i-1), 2^i)),
	// the x-axis of the paper's Fig 7 prediction-error plots. Cold
	// (model-less) leaves are excluded.
	ErrHist [20]uint64
	// MaxLeafErr is the largest per-leaf error bound.
	MaxLeafErr int
	// KeysBounded / KeysModeled / KeysTotal weight the distribution by
	// stored keys: KeysBounded live in leaves whose bound fits the
	// bounded-search window (a uniform random stored key is served by
	// bounded search with probability KeysBounded/KeysTotal), KeysModeled
	// in any modeled leaf, KeysTotal everywhere.
	KeysBounded uint64
	KeysModeled uint64
	KeysTotal   uint64
}

// errBucket maps an error bound to its ErrHist bucket.
func errBucket(e int) int {
	b := bits.Len(uint(e)) // 0→0, 1→1, 2..3→2, 4..7→3, ...
	if max := len(Stats{}.ErrHist) - 1; b > max {
		b = max
	}
	return b
}

// Merge accumulates other into s the way a multi-tree wrapper (the
// sharded index) aggregates per-tree stats: counters and histograms
// sum, Height and MaxLeafErr take the maximum.
func (s *Stats) Merge(other *Stats) {
	s.Stats.Add(&other.Stats)
	s.Splits += other.Splits
	s.CostRetrains += other.CostRetrains
	s.NumLeaves += other.NumLeaves
	s.NumInner += other.NumInner
	if other.Height > s.Height {
		s.Height = other.Height
	}
	for i := range s.ErrHist {
		s.ErrHist[i] += other.ErrHist[i]
	}
	if other.MaxLeafErr > s.MaxLeafErr {
		s.MaxLeafErr = other.MaxLeafErr
	}
	s.KeysBounded += other.KeysBounded
	s.KeysModeled += other.KeysModeled
	s.KeysTotal += other.KeysTotal
}

// LeafErrPercentile returns the p-th percentile (0 <= p <= 100) of the
// per-leaf error bounds, resolved to the bucket lower bound of ErrHist;
// -1 when no modeled leaves exist. It delegates to internal/stats so
// the archived percentiles and the rendered histograms share one
// bucket-rank algorithm.
func (s *Stats) LeafErrPercentile(p float64) int {
	return stats.HistogramFromCounts(s.ErrHist[:]).Percentile(p)
}

// BoundedShare returns the fraction of stored keys living in leaves
// served by the bounded-search fast path.
func (s *Stats) BoundedShare() float64 {
	if s.KeysTotal == 0 {
		return 0
	}
	return float64(s.KeysBounded) / float64(s.KeysTotal)
}

// Tree is an ALEX index from float64 keys to uint64 payloads.
type Tree struct {
	cfg          Config
	root         child
	head         *leafNode // leftmost leaf
	count        int
	splits       uint64
	costRetrains uint64
}

// maxBuildDepth caps adaptive-RMI recursion against degenerate data.
const maxBuildDepth = 48

// New returns an empty index ("cold start", §3.4.2): a single empty data
// node that grows by expansion and — with SplitOnInsert — by splitting.
func New(cfg Config) *Tree {
	t := &Tree{cfg: cfg.withDefaults()}
	leaf := t.newLeaf(nil, nil)
	t.root = leaf
	t.head = leaf
	return t
}

// BulkLoad builds an index over the given keys and payloads, which need
// not be sorted. Duplicate keys are rejected with an error (ALEX does
// not support duplicates, §7). payloads may be nil, in which case zero
// payloads are stored; otherwise len(payloads) must equal len(keys).
func BulkLoad(keys []float64, payloads []uint64, cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	sortedK, sortedP, err := SortPairs(keys, payloads)
	if err != nil {
		return nil, err
	}
	return bulkLoadSorted(sortedK, sortedP, cfg), nil
}

// SortPairs copies keys (with their payloads riding along) into sorted
// order and validates the bulk-load contract: keys unique and finite.
// payloads may be nil, in which case zero payloads are returned. Every
// entry point that accepts unsorted user keys shares this one
// implementation of the acceptance rules.
func SortPairs(keys []float64, payloads []uint64) ([]float64, []uint64, error) {
	if payloads != nil && len(payloads) != len(keys) {
		return nil, nil, errors.New("core: len(payloads) != len(keys)")
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	sortedK := make([]float64, len(keys))
	sortedP := make([]uint64, len(keys))
	for i, j := range idx {
		sortedK[i] = keys[j]
		if payloads != nil {
			sortedP[i] = payloads[j]
		}
	}
	for i := 1; i < len(sortedK); i++ {
		if sortedK[i] == sortedK[i-1] {
			return nil, nil, fmt.Errorf("core: duplicate key %v", sortedK[i])
		}
	}
	for _, k := range sortedK {
		if math.IsNaN(k) || math.IsInf(k, 0) {
			return nil, nil, fmt.Errorf("core: non-finite key %v", k)
		}
	}
	return sortedK, sortedP, nil
}

// BulkLoadSorted builds an index over keys that are already sorted and
// unique. It avoids the copy and sort of BulkLoad; the caller must
// guarantee order and uniqueness.
func BulkLoadSorted(keys []float64, payloads []uint64, cfg Config) *Tree {
	cfg = cfg.withDefaults()
	if payloads == nil {
		payloads = make([]uint64, len(keys))
	}
	return bulkLoadSorted(keys, payloads, cfg)
}

func bulkLoadSorted(keys []float64, payloads []uint64, cfg Config) *Tree {
	t := &Tree{cfg: cfg}
	if len(keys) == 0 {
		leaf := t.newLeaf(nil, nil)
		t.root = leaf
		t.head = leaf
		return t
	}
	t.count = len(keys)
	if cfg.RMI == StaticRMI {
		t.root = t.buildStatic(keys, payloads)
	} else {
		t.root = t.buildAdaptive(keys, payloads, 0)
	}
	t.linkLeaves()
	return t
}

// newLeaf creates a data node of the configured layout from a sorted
// unique segment.
func (t *Tree) newLeaf(keys []float64, payloads []uint64) *leafNode {
	var d DataNode
	switch t.cfg.Layout {
	case PackedMemoryArray:
		if len(keys) == 0 {
			d = pma.New(t.cfg.PMA)
		} else {
			d = pma.NewFromSorted(keys, payloads, t.cfg.PMA)
		}
	default:
		gcfg := gapped.Config{Density: t.cfg.Density}
		if len(keys) == 0 {
			d = gapped.New(gcfg)
		} else {
			d = gapped.NewFromSorted(keys, payloads, gcfg)
		}
	}
	return &leafNode{data: d}
}

// buildStatic builds the two-level static RMI (§3.2): a root linear model
// over M leaf models, each leaf holding its contiguous partition.
func (t *Tree) buildStatic(keys []float64, payloads []uint64) child {
	n := len(keys)
	m := t.cfg.NumLeafModels
	if m <= 0 {
		m = n / (t.cfg.MaxKeysPerLeaf / 2)
	}
	if m < 1 {
		m = 1
	}
	model, bounds, nonEmpty := partition(keys, m)
	if m == 1 || nonEmpty <= 1 {
		return t.newLeaf(keys, payloads)
	}
	inner := newInner(model, m)
	for p := 0; p < m; p++ {
		lo, hi := bounds[p], bounds[p+1]
		inner.children[p] = t.newLeaf(keys[lo:hi], payloads[lo:hi])
	}
	return inner
}

// buildAdaptive implements Algorithm 4. Keys is the sorted segment
// assigned to this subtree; depth 0 is the root.
func (t *Tree) buildAdaptive(keys []float64, payloads []uint64, depth int) child {
	n := len(keys)
	maxKeys := t.cfg.MaxKeysPerLeaf
	if n <= maxKeys || depth >= maxBuildDepth {
		return t.newLeaf(keys, payloads)
	}
	// The root receives enough partitions that each holds maxKeys in
	// expectation; non-root nodes use the fixed fanout (§3.4.1).
	p := t.cfg.InnerFanout
	if depth == 0 {
		p = (n + maxKeys - 1) / maxKeys
		if p < 2 {
			p = 2
		}
	}
	model, bounds, nonEmpty := partition(keys, p)
	if nonEmpty <= 1 {
		// The model cannot subdivide this segment (extreme skew):
		// fall back to a single leaf rather than recurse forever.
		return t.newLeaf(keys, payloads)
	}
	inner := newInner(model, p)
	for i := 0; i < p; {
		size := bounds[i+1] - bounds[i]
		if size > maxKeys {
			// Oversized partition: recurse into a child inner node.
			inner.children[i] = t.buildAdaptive(keys[bounds[i]:bounds[i+1]], payloads[bounds[i]:bounds[i+1]], depth+1)
			i++
			continue
		}
		// Undersized: merge subsequent partitions while the accumulated
		// size stays within the bound, then emit one shared leaf.
		begin := i
		acc := size
		for i+1 < p && acc+(bounds[i+2]-bounds[i+1]) <= maxKeys {
			i++
			acc += bounds[i+1] - bounds[i]
		}
		leaf := t.newLeaf(keys[bounds[begin]:bounds[i+1]], payloads[bounds[begin]:bounds[i+1]])
		for q := begin; q <= i; q++ {
			inner.children[q] = leaf
		}
		i++
	}
	return inner
}

// partition trains a model over the sorted keys, scales it to p
// partitions, and returns the model, the p+1 partition boundaries
// (bounds[i] is the first key index of partition i), and the number of
// non-empty partitions. When least squares degenerates — to a single
// non-empty partition, or to a non-monotone fit (catastrophic
// cancellation on extreme key magnitudes can yield a slightly negative
// slope, which would break routing) — an endpoint fit is used instead.
func partition(keys []float64, p int) (linmodel.Model, []int, int) {
	n := len(keys)
	model := linmodel.Train(keys).Scale(float64(p) / float64(n))
	usable := model.Slope >= 0 && !math.IsInf(model.Slope, 0) && !math.IsNaN(model.Slope)
	var bounds []int
	nonEmpty := 0
	if usable {
		bounds, nonEmpty = boundaries(keys, model, p)
	}
	if nonEmpty <= 1 && n > 1 {
		model = linmodel.TrainEndpoints(keys, 0, n).Scale(float64(p) / float64(n))
		bounds, nonEmpty = boundaries(keys, model, p)
	}
	return model, bounds, nonEmpty
}

// boundaries computes partition boundaries for a monotone model:
// bounds[i] = first key index whose unfloored prediction is >= i. Keys
// whose clamped partition is 0 or p-1 are absorbed by the end clamps.
func boundaries(keys []float64, model linmodel.Model, p int) ([]int, int) {
	n := len(keys)
	bounds := make([]int, p+1)
	bounds[0] = 0
	bounds[p] = n
	for i := 1; i < p; i++ {
		target := float64(i)
		bounds[i] = sort.Search(n, func(j int) bool { return model.Predict(keys[j]) >= target })
	}
	// Boundaries from a monotone model are non-decreasing, but guard
	// against pathological slopes.
	for i := 1; i <= p; i++ {
		if bounds[i] < bounds[i-1] {
			bounds[i] = bounds[i-1]
		}
	}
	nonEmpty := 0
	for i := 0; i < p; i++ {
		if bounds[i+1] > bounds[i] {
			nonEmpty++
		}
	}
	return bounds, nonEmpty
}

// linkLeaves rebuilds the sibling chain by an in-order walk, deduplicating
// repeated child pointers.
func (t *Tree) linkLeaves() {
	var prev *leafNode
	t.head = nil
	var walk func(c child)
	walk = func(c child) {
		switch n := c.(type) {
		case *innerNode:
			var last child
			for _, ch := range n.children {
				if ch == last {
					continue
				}
				last = ch
				walk(ch)
			}
		case *leafNode:
			if prev == n {
				return
			}
			n.prev = prev
			n.next = nil
			if prev != nil {
				prev.next = n
			} else {
				t.head = n
			}
			prev = n
		}
	}
	walk(t.root)
}

// traverse returns the leaf responsible for key and its immediate parent
// (nil when the root is a leaf).
func (t *Tree) traverse(key float64) (*leafNode, *innerNode) {
	var parent *innerNode
	cur := t.root
	for {
		switch n := cur.(type) {
		case *innerNode:
			parent = n
			cur = n.route(key)
		case *leafNode:
			return n, parent
		default:
			panic("core: corrupt tree node")
		}
	}
}

// leafFor is the read-hot half of traverse: it returns only the leaf,
// skipping the parent bookkeeping mutations need, so the descent loop
// is small enough to stay in registers. Each level is one cached-clamp
// model evaluation and one pointer chase.
//
// Both type assertions are comma-ok: on a consistent tree every child
// is an inner or leaf node and the second assertion always succeeds,
// but a lock-free optimistic reader (the root package's seqlock
// protocol) can race a split publishing a fresh inner node and observe
// a nil child slot. Such a probe gets a nil leaf — a miss the sequence
// validation then discards — instead of an interface-conversion panic
// on a path that deliberately carries no recover frame.
func (t *Tree) leafFor(key float64) *leafNode {
	cur := t.root
	for {
		n, ok := cur.(*innerNode)
		if !ok {
			leaf, _ := cur.(*leafNode)
			return leaf
		}
		cur = n.children[n.routeSlot(key)]
	}
}

// Get returns the payload stored for key.
func (t *Tree) Get(key float64) (uint64, bool) {
	leaf := t.leafFor(key)
	if leaf == nil || leaf.data == nil {
		return 0, false // torn optimistic probe; see leafFor
	}
	// Devirtualize the dominant layout: a direct *gapped.Array call lets
	// the probe chain (Find, the branchless searches) inline into one
	// frame, where the interface call would pin it behind dynamic
	// dispatch.
	if g, ok := leaf.data.(*gapped.Array); ok {
		return g.Lookup(key)
	}
	return leaf.data.Lookup(key)
}

// Contains reports whether key is present.
func (t *Tree) Contains(key float64) bool {
	_, ok := t.Get(key)
	return ok
}

// Insert adds key with payload. It reports whether a new element was
// added; inserting an existing key overwrites its payload and returns
// false. Non-finite keys are rejected with a panic, mirroring the data
// nodes.
func (t *Tree) Insert(key float64, payload uint64) bool {
	leaf, parent := t.traverse(key)
	if t.cfg.RMI == AdaptiveRMI && t.cfg.SplitOnInsert && leaf.data.Num() >= t.cfg.MaxKeysPerLeaf {
		if t.splitLeaf(leaf, parent) {
			leaf, parent = t.traverse(key)
		}
	}
	if leaf.data.Insert(key, payload) {
		t.count++
		t.costCheck(leaf, parent)
		return true
	}
	return false
}

// costCheck applies the §4 cost-model feedback after inserts touched a
// leaf: when the leaf's prediction-error bound reports that searches
// have drifted well past the bounded-search budget (see
// leafbase.RetrainAdvised, which also amortizes the O(n) correction
// over the inserts since the last rebuild), the leaf is corrected —
// split when splitting is enabled and the leaf is large enough that
// partitioning it gives each child its own, better-fitting model,
// retrained in place otherwise. This is what makes chronically
// mispredicting leaves retrain or split *sooner* than the density and
// size bounds alone would: the expansion/split decision consumes the
// measured error, not just occupancy.
func (t *Tree) costCheck(leaf *leafNode, parent *innerNode) {
	if !leaf.data.RetrainAdvised() {
		return
	}
	if t.cfg.RMI == AdaptiveRMI && t.cfg.SplitOnInsert && leaf.data.Num() >= t.cfg.MaxKeysPerLeaf/2 {
		if t.splitLeaf(leaf, parent) {
			t.costRetrains++
			return
		}
	}
	leaf.data.Retrain()
	t.costRetrains++
}

// splitLeaf implements node splitting on inserts (§3.4.2): the leaf's
// model becomes an inner node with SplitFanout children; the data is
// distributed to the children by that model; sibling links are spliced.
// Returns false when the leaf's keys cannot be partitioned (all keys in
// one partition), in which case the leaf is left in place to expand.
func (t *Tree) splitLeaf(leaf *leafNode, parent *innerNode) bool {
	keys, payloads := leaf.data.Collect(nil, nil)
	s := t.cfg.SplitFanout
	model, bounds, nonEmpty := partition(keys, s)
	if nonEmpty <= 1 {
		return false
	}
	inner := newInner(model, s)
	leaves := make([]*leafNode, 0, s)
	var last *leafNode
	for p := 0; p < s; p++ {
		lo, hi := bounds[p], bounds[p+1]
		if last != nil && lo == hi {
			// Empty partition: share the preceding leaf rather than
			// materialize an empty node in the middle of the chain.
			inner.children[p] = last
			continue
		}
		nl := t.newLeaf(keys[lo:hi], payloads[lo:hi])
		inner.children[p] = nl
		leaves = append(leaves, nl)
		last = nl
	}
	// Splice the new leaves into the sibling chain.
	for i, nl := range leaves {
		if i > 0 {
			leaves[i-1].next = nl
			nl.prev = leaves[i-1]
		}
	}
	first, lastNew := leaves[0], leaves[len(leaves)-1]
	first.prev = leaf.prev
	lastNew.next = leaf.next
	if leaf.prev != nil {
		leaf.prev.next = first
	} else {
		t.head = first
	}
	if leaf.next != nil {
		leaf.next.prev = lastNew
	}
	// Replace the pointer(s) in the parent (merged partitions may hold
	// several copies), or the root.
	if parent == nil {
		t.root = inner
	} else {
		for i := range parent.children {
			if parent.children[i] == child(leaf) {
				parent.children[i] = inner
			}
		}
	}
	t.splits++
	return true
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key float64) bool {
	leaf, _ := t.traverse(key)
	if leaf.data.Delete(key) {
		t.count--
		return true
	}
	return false
}

// Update overwrites the payload of an existing key.
func (t *Tree) Update(key float64, payload uint64) bool {
	leaf, _ := t.traverse(key)
	return leaf.data.Update(key, payload)
}

// Len returns the number of stored elements.
func (t *Tree) Len() int { return t.count }

// Config returns the tree's configuration (with defaults applied).
func (t *Tree) Config() Config { return t.cfg }

// Scan visits elements with key >= start in ascending order until visit
// returns false, crossing leaf boundaries through the sibling links. It
// returns the number of elements visited.
func (t *Tree) Scan(start float64, visit func(key float64, payload uint64) bool) int {
	leaf, _ := t.traverse(start)
	// The routed leaf can sit past smaller siblings when start is below
	// the leaf's range; scans never need to look left, because traverse
	// routes by the same model inserts used.
	n := 0
	wrapped := func(k float64, v uint64) bool {
		n++
		return visit(k, v)
	}
	stopped := leaf.data.ScanFrom(start, wrapped)
	for !stopped && leaf.next != nil {
		leaf = leaf.next
		stopped = leaf.data.ScanFrom(math.Inf(-1), wrapped)
	}
	return n
}

// ScanN collects up to max elements starting at the first key >= start.
// It returns the keys and payloads visited, for callers that want a
// materialized range (the YCSB-E style scan of §5.1.2).
func (t *Tree) ScanN(start float64, max int) ([]float64, []uint64) {
	if max < 0 {
		max = 0
	}
	return t.ScanNInto(start, max, make([]float64, 0, max), make([]uint64, 0, max))
}

// ScanNInto is ScanN into caller-supplied destination slices: results
// are appended to keys[:0] and payloads[:0] and the filled slices
// returned. Unlike Scan it walks the leaf chain without a visitor
// callback, so when the destinations have capacity for max elements the
// whole scan performs zero allocations.
func (t *Tree) ScanNInto(start float64, max int, keys []float64, payloads []uint64) ([]float64, []uint64) {
	keys, payloads = keys[:0], payloads[:0]
	if max <= 0 {
		return keys, payloads
	}
	leaf := t.leafFor(start)
	for leaf != nil && leaf.data != nil { // nil only on a torn optimistic probe
		keys, payloads = leaf.data.AppendFrom(start, max-len(keys), keys, payloads)
		if len(keys) >= max || leaf.next == nil {
			break
		}
		leaf = leaf.next
		start = math.Inf(-1)
	}
	return keys, payloads
}

// ScanCount visits up to max elements from start, discarding them; it
// returns how many were visited. Benchmarks use it to avoid allocation.
func (t *Tree) ScanCount(start float64, max int) int {
	remaining := max
	return t.Scan(start, func(k float64, v uint64) bool {
		remaining--
		return remaining > 0
	})
}

// MinKey returns the smallest key in the index.
func (t *Tree) MinKey() (float64, bool) {
	for l := t.head; l != nil; l = l.next {
		if k, ok := l.data.MinKey(); ok {
			return k, true
		}
	}
	return 0, false
}

// MaxKey returns the largest key in the index.
func (t *Tree) MaxKey() (float64, bool) {
	var tail *leafNode
	for l := t.head; l != nil; l = l.next {
		tail = l
	}
	for l := tail; l != nil; l = l.prev {
		if k, ok := l.data.MaxKey(); ok {
			return k, true
		}
	}
	return 0, false
}

// Height returns the number of levels (a lone leaf has height 1).
func (t *Tree) Height() int {
	var h func(c child) int
	h = func(c child) int {
		if n, ok := c.(*innerNode); ok {
			best := 0
			var last child
			for _, ch := range n.children {
				if ch == last {
					continue
				}
				last = ch
				if d := h(ch); d > best {
					best = d
				}
			}
			return best + 1
		}
		return 1
	}
	return h(t.root)
}

// Stats aggregates counters over the whole tree, including the
// error-bound distribution the cost model maintains per leaf.
func (t *Tree) Stats() Stats {
	var s Stats
	s.Splits = t.splits
	s.CostRetrains = t.costRetrains
	s.Height = t.Height()
	for l := t.head; l != nil; l = l.next {
		s.NumLeaves++
		s.Stats.Add(l.data.BaseStats())
		n := uint64(l.data.Num())
		s.KeysTotal += n
		if e := l.data.ErrorBound(); e >= 0 {
			s.KeysModeled += n
			s.ErrHist[errBucket(e)]++
			if e > s.MaxLeafErr {
				s.MaxLeafErr = e
			}
			if e <= leafbase.BoundedSearchMaxErr {
				s.KeysBounded += n
			}
		}
	}
	var walk func(c child)
	walk = func(c child) {
		if n, ok := c.(*innerNode); ok {
			s.NumInner++
			var last child
			for _, ch := range n.children {
				if ch == last {
					continue
				}
				last = ch
				walk(ch)
			}
		}
	}
	walk(t.root)
	return s
}

// LeafSizes returns the number of keys in each leaf, left to right
// (Fig 12, Appendix B).
func (t *Tree) LeafSizes() []int {
	var sizes []int
	for l := t.head; l != nil; l = l.next {
		sizes = append(sizes, l.data.Num())
	}
	return sizes
}

// IndexSizeBytes accounts the index structure per §5.1: every model is
// two float64s (16 B); inner nodes add 8 B per child pointer; every node
// carries a small metadata header. Data nodes' models and sibling
// pointers count toward the index, their arrays toward DataSizeBytes.
func (t *Tree) IndexSizeBytes() int {
	const modelBytes = 16
	const headerBytes = 24
	total := 0
	var walk func(c child)
	walk = func(c child) {
		switch n := c.(type) {
		case *innerNode:
			total += modelBytes + headerBytes + 8*len(n.children)
			var last child
			for _, ch := range n.children {
				if ch == last {
					continue
				}
				last = ch
				walk(ch)
			}
		case *leafNode:
			total += modelBytes + headerBytes + 16 // model + header + next/prev
		}
	}
	walk(t.root)
	return total
}

// DataSizeBytes accounts leaf storage: allocated key/payload arrays
// including gaps, plus the occupancy bitmaps.
func (t *Tree) DataSizeBytes() int {
	total := 0
	for l := t.head; l != nil; l = l.next {
		total += l.data.DataSizeBytes(t.cfg.PayloadBytes)
	}
	return total
}

// PredictionError returns the RMI's absolute slot prediction error for an
// existing key (Fig 7).
func (t *Tree) PredictionError(key float64) (int, bool) {
	leaf, _ := t.traverse(key)
	return leaf.data.PredictionError(key)
}

// CheckInvariants verifies the whole tree: every data node's internal
// invariants, the sibling chain's order and connectivity, the key-routing
// consistency (every stored key is found by traversal), and the element
// count.
func (t *Tree) CheckInvariants() error {
	// Data node invariants + chain order.
	total := 0
	prevMax := math.Inf(-1)
	seen := make(map[*leafNode]bool)
	for l := t.head; l != nil; l = l.next {
		if seen[l] {
			return errors.New("core: sibling chain has a cycle")
		}
		seen[l] = true
		if err := l.data.CheckInvariants(); err != nil {
			return err
		}
		if mn, ok := l.data.MinKey(); ok {
			if mn <= prevMax {
				return fmt.Errorf("core: leaf chain out of order: %v <= %v", mn, prevMax)
			}
			mx, _ := l.data.MaxKey()
			prevMax = mx
		}
		if l.next != nil && l.next.prev != l {
			return errors.New("core: broken prev link")
		}
		total += l.data.Num()
	}
	if total != t.count {
		return fmt.Errorf("core: leaf totals %d != count %d", total, t.count)
	}
	// Every leaf reachable from the root must be in the chain, and every
	// stored key must be routed back to its leaf.
	var walk func(c child) error
	walk = func(c child) error {
		switch n := c.(type) {
		case *innerNode:
			if len(n.children) == 0 {
				return errors.New("core: inner node with no children")
			}
			var last child
			for _, ch := range n.children {
				if ch == nil {
					return errors.New("core: nil child")
				}
				if ch == last {
					continue
				}
				last = ch
				if err := walk(ch); err != nil {
					return err
				}
			}
		case *leafNode:
			if !seen[n] {
				return errors.New("core: reachable leaf missing from sibling chain")
			}
			keys, _ := n.data.Collect(nil, nil)
			for _, k := range keys {
				routed, _ := t.traverse(k)
				if routed != n {
					return fmt.Errorf("core: key %v stored in one leaf but routed to another", k)
				}
			}
		}
		return nil
	}
	return walk(t.root)
}
