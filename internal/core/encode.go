package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/linmodel"
)

// Serialization format (little-endian):
//
//	magic "ALEXGO01" (8 bytes)
//	config: layout, rmi, maxKeysPerLeaf, innerFanout, splitFanout,
//	        splitOnInsert, numLeafModels, density, payloadBytes
//	count (uint64)
//	tree: pre-order node stream — tag byte (0 inner, 1 leaf);
//	      inner: model (2 float64), child count, then children with
//	      run-length encoding of repeated pointers (repeat tag 2);
//	      leaf: element count, keys, payloads (capacities and models are
//	      rebuilt on load via the normal bulk-load path, so a saved
//	      index round-trips to an equivalent — not bit-identical —
//	      structure with identical contents and routing).
//
// Leaves are rebuilt rather than copied verbatim: gap placement is a
// performance property, not a logical one, and rebuilding restores the
// freshly-bulk-loaded layout (density d², model-based placement).

const magic = "ALEXGO01"

const (
	tagInner  = 0
	tagLeaf   = 1
	tagRepeat = 2
)

// ErrBadFormat is returned when decoding fails structurally.
var ErrBadFormat = errors.New("core: bad index encoding")

// WriteTo serializes the index. It returns the number of bytes written.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	bw := &countingWriter{w: bufio.NewWriter(w)}
	if _, err := bw.Write([]byte(magic)); err != nil {
		return bw.n, err
	}
	cfg := t.cfg
	hdr := []uint64{
		uint64(cfg.Layout), uint64(cfg.RMI), uint64(cfg.MaxKeysPerLeaf),
		uint64(cfg.InnerFanout), uint64(cfg.SplitFanout), boolU64(cfg.SplitOnInsert),
		uint64(cfg.NumLeafModels), math.Float64bits(cfg.Density), uint64(cfg.PayloadBytes),
		uint64(t.count),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return bw.n, err
		}
	}
	if err := t.writeNode(bw, t.root.Load()); err != nil {
		return bw.n, err
	}
	return bw.n, bw.w.(*bufio.Writer).Flush()
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (t *Tree) writeNode(w io.Writer, n *node) error {
	if n == nil {
		return fmt.Errorf("%w: nil node", ErrBadFormat)
	}
	if !n.isLeaf() {
		if err := binary.Write(w, binary.LittleEndian, [3]uint64{
			tagInner, math.Float64bits(n.model.Slope), math.Float64bits(n.model.Intercept),
		}); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(len(n.children))); err != nil {
			return err
		}
		var last *node
		for i := range n.children {
			ch := n.children[i].Load()
			if ch == last {
				if err := binary.Write(w, binary.LittleEndian, uint64(tagRepeat)); err != nil {
					return err
				}
				continue
			}
			last = ch
			if err := t.writeNode(w, ch); err != nil {
				return err
			}
		}
		return nil
	}
	keys, payloads := n.data().Collect(nil, nil)
	if err := binary.Write(w, binary.LittleEndian, [2]uint64{tagLeaf, uint64(len(keys))}); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, keys); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, payloads)
}

// ReadFrom deserializes an index previously written with WriteTo.
func ReadFrom(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(m[:]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, m)
	}
	var hdr [10]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("%w: short header: %v", ErrBadFormat, err)
		}
	}
	cfg := Config{
		Layout:         Layout(hdr[0]),
		RMI:            RMIMode(hdr[1]),
		MaxKeysPerLeaf: int(hdr[2]),
		InnerFanout:    int(hdr[3]),
		SplitFanout:    int(hdr[4]),
		SplitOnInsert:  hdr[5] != 0,
		NumLeafModels:  int(hdr[6]),
		Density:        math.Float64frombits(hdr[7]),
		PayloadBytes:   int(hdr[8]),
	}
	if cfg.Layout != GappedArray && cfg.Layout != PackedMemoryArray {
		return nil, fmt.Errorf("%w: layout %d", ErrBadFormat, hdr[0])
	}
	if cfg.RMI != AdaptiveRMI && cfg.RMI != StaticRMI {
		return nil, fmt.Errorf("%w: rmi %d", ErrBadFormat, hdr[1])
	}
	count := int(hdr[9])
	if count < 0 || count > 1<<40 {
		return nil, fmt.Errorf("%w: count %d", ErrBadFormat, count)
	}
	t := &Tree{cfg: cfg.withDefaults()}
	root, total, err := t.readNode(br, count)
	if err != nil {
		return nil, err
	}
	if total != count {
		return nil, fmt.Errorf("%w: leaf totals %d != header count %d", ErrBadFormat, total, count)
	}
	t.root.Store(root)
	t.count = count
	t.linkLeaves()
	if t.head.Load() == nil {
		// Completely empty tree serialized as one empty leaf.
		if root.isLeaf() {
			t.head.Store(root)
		} else {
			return nil, fmt.Errorf("%w: no leaves", ErrBadFormat)
		}
	}
	return t, nil
}

// readNode reconstructs one subtree. budget bounds total elements to the
// header's count so corrupt streams cannot allocate unboundedly.
func (t *Tree) readNode(r io.Reader, budget int) (*node, int, error) {
	var tag uint64
	if err := binary.Read(r, binary.LittleEndian, &tag); err != nil {
		return nil, 0, fmt.Errorf("%w: missing node tag: %v", ErrBadFormat, err)
	}
	return t.readTagged(r, tag, budget)
}

// readTagged reconstructs a node whose tag has already been consumed.
func (t *Tree) readTagged(r io.Reader, tag uint64, budget int) (*node, int, error) {
	switch tag {
	case tagInner:
		var bits [2]uint64
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return nil, 0, fmt.Errorf("%w: short inner model: %v", ErrBadFormat, err)
		}
		var nc uint64
		if err := binary.Read(r, binary.LittleEndian, &nc); err != nil {
			return nil, 0, fmt.Errorf("%w: short child count: %v", ErrBadFormat, err)
		}
		if nc == 0 || nc > 1<<24 {
			return nil, 0, fmt.Errorf("%w: child count %d", ErrBadFormat, nc)
		}
		var model linmodel.Model
		model.Slope = math.Float64frombits(bits[0])
		model.Intercept = math.Float64frombits(bits[1])
		n := newInner(model, int(nc))
		total := 0
		var last *node
		for i := range n.children {
			var ctag uint64
			if err := binary.Read(r, binary.LittleEndian, &ctag); err != nil {
				return nil, 0, fmt.Errorf("%w: short child tag: %v", ErrBadFormat, err)
			}
			if ctag == tagRepeat {
				if last == nil {
					return nil, 0, fmt.Errorf("%w: repeat with no prior child", ErrBadFormat)
				}
				n.children[i].Store(last)
				continue
			}
			ch, sub, err := t.readTagged(r, ctag, budget-total)
			if err != nil {
				return nil, 0, err
			}
			n.children[i].Store(ch)
			last = ch
			total += sub
		}
		return n, total, nil
	case tagLeaf:
		return t.readLeafBody(r, budget)
	default:
		return nil, 0, fmt.Errorf("%w: tag %d", ErrBadFormat, tag)
	}
}

func (t *Tree) readLeafBody(r io.Reader, budget int) (*node, int, error) {
	var cnt uint64
	if err := binary.Read(r, binary.LittleEndian, &cnt); err != nil {
		return nil, 0, fmt.Errorf("%w: short leaf count: %v", ErrBadFormat, err)
	}
	if budget < 0 || cnt > uint64(budget) {
		return nil, 0, fmt.Errorf("%w: leaf count %d exceeds remaining budget %d", ErrBadFormat, cnt, budget)
	}
	// Read in bounded chunks so a corrupt count fails on EOF before a
	// single huge allocation can happen.
	const chunk = 1 << 16
	keys := make([]float64, 0, minU64(cnt, chunk))
	for read := uint64(0); read < cnt; {
		n := minU64(cnt-read, chunk)
		buf := make([]float64, n)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, 0, fmt.Errorf("%w: short leaf keys: %v", ErrBadFormat, err)
		}
		keys = append(keys, buf...)
		read += n
	}
	payloads := make([]uint64, 0, minU64(cnt, chunk))
	for read := uint64(0); read < cnt; {
		n := minU64(cnt-read, chunk)
		buf := make([]uint64, n)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, 0, fmt.Errorf("%w: short leaf payloads: %v", ErrBadFormat, err)
		}
		payloads = append(payloads, buf...)
		read += n
	}
	prev := math.Inf(-1)
	for _, k := range keys {
		if math.IsNaN(k) || math.IsInf(k, 0) || k <= prev {
			return nil, 0, fmt.Errorf("%w: leaf keys not strictly increasing and finite", ErrBadFormat)
		}
		prev = k
	}
	return t.newLeaf(keys, payloads), int(cnt), nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
