package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// allVariants enumerates the paper's four ALEX configurations (§5.1).
func allVariants() []Config {
	return []Config{
		{Layout: GappedArray, RMI: StaticRMI},
		{Layout: GappedArray, RMI: AdaptiveRMI},
		{Layout: PackedMemoryArray, RMI: StaticRMI},
		{Layout: PackedMemoryArray, RMI: AdaptiveRMI},
	}
}

func uniqueKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[float64]bool, n)
	keys := make([]float64, 0, n)
	for len(keys) < n {
		k := math.Floor(rng.Float64()*1e12) / 100
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func TestVariantNames(t *testing.T) {
	want := map[string]bool{
		"ALEX-GA-SRMI": true, "ALEX-GA-ARMI": true,
		"ALEX-PMA-SRMI": true, "ALEX-PMA-ARMI": true,
	}
	for _, cfg := range allVariants() {
		if !want[cfg.VariantName()] {
			t.Fatalf("unexpected variant name %q", cfg.VariantName())
		}
	}
}

func TestBulkLoadAndGetAllVariants(t *testing.T) {
	keys := uniqueKeys(30000, 1)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i) + 1
	}
	for _, cfg := range allVariants() {
		cfg.MaxKeysPerLeaf = 1024
		tr, err := BulkLoad(keys, payloads, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.VariantName(), err)
		}
		if tr.Len() != len(keys) {
			t.Fatalf("%s: Len = %d", cfg.VariantName(), tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", cfg.VariantName(), err)
		}
		for i, k := range keys {
			v, ok := tr.Get(k)
			if !ok || v != payloads[i] {
				t.Fatalf("%s: Get(%v) = (%v,%v), want (%v,true)", cfg.VariantName(), k, v, ok, payloads[i])
			}
		}
		if _, ok := tr.Get(-1e18); ok {
			t.Fatalf("%s: absent key found", cfg.VariantName())
		}
	}
}

func TestBulkLoadRejectsBadInput(t *testing.T) {
	if _, err := BulkLoad([]float64{1, 2, 2}, nil, Config{}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if _, err := BulkLoad([]float64{1, math.NaN()}, nil, Config{}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := BulkLoad([]float64{1, math.Inf(1)}, nil, Config{}); err == nil {
		t.Fatal("Inf accepted")
	}
	if _, err := BulkLoad([]float64{1, 2}, []uint64{1}, Config{}); err == nil {
		t.Fatal("mismatched payloads accepted")
	}
}

func TestBulkLoadUnsortedInput(t *testing.T) {
	keys := []float64{5, 1, 9, 3, 7}
	payloads := []uint64{50, 10, 90, 30, 70}
	tr, err := BulkLoad(keys, payloads, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if v, ok := tr.Get(k); !ok || v != payloads[i] {
			t.Fatalf("Get(%v) = (%v,%v)", k, v, ok)
		}
	}
	if mn, _ := tr.MinKey(); mn != 1 {
		t.Fatalf("MinKey = %v", mn)
	}
	if mx, _ := tr.MaxKey(); mx != 9 {
		t.Fatalf("MaxKey = %v", mx)
	}
}

func TestEmptyIndex(t *testing.T) {
	for _, cfg := range allVariants() {
		tr := New(cfg)
		if tr.Len() != 0 {
			t.Fatal("nonzero length")
		}
		if _, ok := tr.Get(1); ok {
			t.Fatal("Get on empty succeeded")
		}
		if tr.Delete(1) {
			t.Fatal("Delete on empty succeeded")
		}
		if _, ok := tr.MinKey(); ok {
			t.Fatal("MinKey on empty")
		}
		if _, ok := tr.MaxKey(); ok {
			t.Fatal("MaxKey on empty")
		}
		if n := tr.Scan(0, func(float64, uint64) bool { return true }); n != 0 {
			t.Fatalf("Scan on empty visited %d", n)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestColdStartInsertsAllVariants(t *testing.T) {
	for _, cfg := range allVariants() {
		cfg.MaxKeysPerLeaf = 256
		cfg.SplitOnInsert = true
		tr := New(cfg)
		rng := rand.New(rand.NewSource(2))
		ref := make(map[float64]uint64)
		for i := 0; i < 20000; i++ {
			k := math.Floor(rng.Float64() * 1e9)
			ins := tr.Insert(k, uint64(i))
			if _, existed := ref[k]; existed == ins {
				t.Fatalf("%s: insert return mismatch", cfg.VariantName())
			}
			ref[k] = uint64(i)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("%s: Len %d != ref %d", cfg.VariantName(), tr.Len(), len(ref))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", cfg.VariantName(), err)
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				t.Fatalf("%s: Get(%v) = (%v,%v), want (%v,true)", cfg.VariantName(), k, got, ok, v)
			}
		}
	}
}

func TestSplitOnInsertGrowsTree(t *testing.T) {
	cfg := Config{Layout: GappedArray, RMI: AdaptiveRMI, MaxKeysPerLeaf: 128, SplitOnInsert: true}
	tr := New(cfg)
	for i := 0; i < 5000; i++ {
		tr.Insert(float64(i)*7.3, uint64(i))
	}
	st := tr.Stats()
	if st.Splits == 0 {
		t.Fatal("no splits despite 5000 inserts into 128-key leaves")
	}
	if st.NumLeaves < 2 {
		t.Fatalf("NumLeaves = %d", st.NumLeaves)
	}
	if tr.Height() < 2 {
		t.Fatalf("Height = %d, want >= 2 after splits", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNoSplitWithoutFlag(t *testing.T) {
	cfg := Config{Layout: GappedArray, RMI: AdaptiveRMI, MaxKeysPerLeaf: 128, SplitOnInsert: false}
	tr := New(cfg)
	for i := 0; i < 5000; i++ {
		tr.Insert(float64(i)*3.1, uint64(i))
	}
	if st := tr.Stats(); st.Splits != 0 {
		t.Fatalf("splits happened with SplitOnInsert=false: %d", st.Splits)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveInitBoundsLeafSizes(t *testing.T) {
	// Appendix B / Fig 12: adaptive RMI achieves leaves at or below the
	// maximum bound.
	keys := uniqueKeys(50000, 3)
	cfg := Config{RMI: AdaptiveRMI, MaxKeysPerLeaf: 1000}
	tr, err := BulkLoad(keys, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, sz := range tr.LeafSizes() {
		if sz > 1000 {
			t.Fatalf("leaf %d has %d keys > bound 1000", i, sz)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStaticRMIIsTwoLevel(t *testing.T) {
	keys := uniqueKeys(50000, 4)
	tr, err := BulkLoad(keys, nil, Config{RMI: StaticRMI, NumLeafModels: 64})
	if err != nil {
		t.Fatal(err)
	}
	if h := tr.Height(); h != 2 {
		t.Fatalf("static RMI height = %d, want 2", h)
	}
	st := tr.Stats()
	if st.NumInner != 1 {
		t.Fatalf("NumInner = %d, want 1", st.NumInner)
	}
	if st.NumLeaves != 64 {
		t.Fatalf("NumLeaves = %d, want 64", st.NumLeaves)
	}
}

func TestDeleteAllVariants(t *testing.T) {
	keys := uniqueKeys(10000, 5)
	for _, cfg := range allVariants() {
		cfg.MaxKeysPerLeaf = 512
		tr, err := BulkLoad(keys, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys[:5000] {
			if !tr.Delete(k) {
				t.Fatalf("%s: Delete(%v) failed", cfg.VariantName(), k)
			}
		}
		if tr.Len() != 5000 {
			t.Fatalf("%s: Len = %d", cfg.VariantName(), tr.Len())
		}
		for _, k := range keys[:5000] {
			if _, ok := tr.Get(k); ok {
				t.Fatalf("%s: deleted key %v still found", cfg.VariantName(), k)
			}
		}
		for _, k := range keys[5000:] {
			if _, ok := tr.Get(k); !ok {
				t.Fatalf("%s: surviving key %v lost", cfg.VariantName(), k)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", cfg.VariantName(), err)
		}
	}
}

func TestUpdate(t *testing.T) {
	tr, _ := BulkLoad([]float64{1, 2, 3}, []uint64{10, 20, 30}, Config{})
	if !tr.Update(2, 99) {
		t.Fatal("Update failed")
	}
	if v, _ := tr.Get(2); v != 99 {
		t.Fatalf("payload = %d", v)
	}
	if tr.Update(5, 1) {
		t.Fatal("Update of absent key succeeded")
	}
	// Insert of existing key overwrites (payload-only update, §3.2).
	if tr.Insert(3, 77) {
		t.Fatal("duplicate insert returned true")
	}
	if v, _ := tr.Get(3); v != 77 {
		t.Fatalf("payload = %d", v)
	}
}

func TestScanAcrossLeaves(t *testing.T) {
	n := 20000
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(i) * 2
	}
	for _, cfg := range allVariants() {
		cfg.MaxKeysPerLeaf = 256 // force many leaves
		tr := BulkLoadSorted(keys, nil, cfg)
		// Scan 1000 elements from the middle: must cross several leaves.
		start := keys[n/2]
		got, _ := tr.ScanN(start, 1000)
		if len(got) != 1000 {
			t.Fatalf("%s: scan returned %d", cfg.VariantName(), len(got))
		}
		for i, k := range got {
			if k != keys[n/2+i] {
				t.Fatalf("%s: scan[%d] = %v, want %v", cfg.VariantName(), i, k, keys[n/2+i])
			}
		}
		// Scan from before all keys sees the global minimum first.
		first, _ := tr.ScanN(-100, 1)
		if len(first) != 1 || first[0] != 0 {
			t.Fatalf("%s: scan from -100 = %v", cfg.VariantName(), first)
		}
		// Scan beyond the end returns nothing.
		if res, _ := tr.ScanN(keys[n-1]+1, 10); len(res) != 0 {
			t.Fatalf("%s: scan past end returned %d", cfg.VariantName(), len(res))
		}
		// ScanCount agrees with ScanN.
		if c := tr.ScanCount(start, 500); c != 500 {
			t.Fatalf("%s: ScanCount = %d", cfg.VariantName(), c)
		}
	}
}

func TestScanEntireTreeInOrder(t *testing.T) {
	keys := uniqueKeys(15000, 6)
	sorted := append([]float64(nil), keys...)
	sort.Float64s(sorted)
	cfg := Config{RMI: AdaptiveRMI, MaxKeysPerLeaf: 512}
	tr, _ := BulkLoad(keys, nil, cfg)
	var got []float64
	tr.Scan(math.Inf(-1), func(k float64, v uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(sorted) {
		t.Fatalf("full scan saw %d keys, want %d", len(got), len(sorted))
	}
	for i := range got {
		if got[i] != sorted[i] {
			t.Fatalf("scan[%d] = %v, want %v", i, got[i], sorted[i])
		}
	}
}

func TestSizesAccounting(t *testing.T) {
	keys := uniqueKeys(40000, 7)
	tr, _ := BulkLoad(keys, nil, Config{MaxKeysPerLeaf: 1024})
	idx := tr.IndexSizeBytes()
	data := tr.DataSizeBytes()
	if idx <= 0 || data <= 0 {
		t.Fatalf("sizes: idx=%d data=%d", idx, data)
	}
	// The headline property: index size is a tiny fraction of data size.
	if float64(idx) > 0.2*float64(data) {
		t.Fatalf("index size %d not small vs data size %d", idx, data)
	}
	// Data size must cover at least the raw keys+payloads.
	if data < len(keys)*16 {
		t.Fatalf("data size %d below raw minimum %d", data, len(keys)*16)
	}
	// 80-byte payload accounting grows data size accordingly.
	tr80, _ := BulkLoad(keys, nil, Config{MaxKeysPerLeaf: 1024, PayloadBytes: 80})
	if tr80.DataSizeBytes() <= data {
		t.Fatal("PayloadBytes=80 did not grow data size")
	}
}

func TestPredictionErrorSmallOnLinearData(t *testing.T) {
	n := 50000
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(i) * 3
	}
	tr := BulkLoadSorted(keys, nil, Config{MaxKeysPerLeaf: 4096})
	var sum, cnt int
	for i := 0; i < n; i += 17 {
		e, ok := tr.PredictionError(keys[i])
		if !ok {
			t.Fatalf("key %v missing", keys[i])
		}
		sum += e
		cnt++
	}
	if avg := float64(sum) / float64(cnt); avg > 2 {
		t.Fatalf("mean prediction error %v on linear data", avg)
	}
}

func TestSkewedDataAdaptiveDepth(t *testing.T) {
	// Highly skewed (lognormal-like) data should make adaptive RMI
	// recurse into deeper inner nodes for the dense region.
	rng := rand.New(rand.NewSource(8))
	seen := make(map[float64]bool)
	var keys []float64
	for len(keys) < 60000 {
		k := math.Floor(math.Exp(rng.NormFloat64()*2) * 1e6)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	tr, err := BulkLoad(keys, nil, Config{RMI: AdaptiveRMI, MaxKeysPerLeaf: 512, InnerFanout: 16})
	if err != nil {
		t.Fatal(err)
	}
	if h := tr.Height(); h < 3 {
		t.Fatalf("height %d; expected deeper adaptive RMI on skewed data", h)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:1000] {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("key %v lost", k)
		}
	}
}

func TestSequentialInsertAdversarial(t *testing.T) {
	// Fig 5c's adversarial pattern: strictly increasing inserts. All
	// variants must stay correct (performance is the benchmark's
	// concern, correctness is ours).
	for _, cfg := range allVariants() {
		cfg.MaxKeysPerLeaf = 512
		cfg.SplitOnInsert = cfg.RMI == AdaptiveRMI
		tr := New(cfg)
		for i := 0; i < 10000; i++ {
			if !tr.Insert(float64(i), uint64(i)) {
				t.Fatalf("%s: sequential insert %d failed", cfg.VariantName(), i)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", cfg.VariantName(), err)
		}
		for i := 0; i < 10000; i += 331 {
			if _, ok := tr.Get(float64(i)); !ok {
				t.Fatalf("%s: key %d lost", cfg.VariantName(), i)
			}
		}
	}
}

func TestDistributionShiftInserts(t *testing.T) {
	// Fig 5b: initialize from one key domain, insert a disjoint domain.
	init := make([]float64, 10000)
	for i := range init {
		init[i] = float64(i)
	}
	cfg := Config{RMI: AdaptiveRMI, MaxKeysPerLeaf: 512, SplitOnInsert: true}
	tr := BulkLoadSorted(init, nil, cfg)
	for i := 0; i < 10000; i++ {
		tr.Insert(1e6+float64(i), uint64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Splits == 0 {
		t.Fatal("disjoint-domain inserts never split a node")
	}
	if tr.Len() != 20000 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestStatsAggregation(t *testing.T) {
	keys := uniqueKeys(20000, 9)
	tr, _ := BulkLoad(keys, nil, Config{MaxKeysPerLeaf: 1024})
	st := tr.Stats()
	if st.NumLeaves == 0 || st.Height == 0 {
		t.Fatalf("stats: %+v", st)
	}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 20000; i++ {
		tr.Insert(math.Floor(rng.Float64()*1e12)+0.5, uint64(i))
	}
	st2 := tr.Stats()
	if st2.Inserts < 20000 {
		t.Fatalf("Inserts = %d", st2.Inserts)
	}
	if st2.Shifts == 0 && st2.Expands == 0 {
		t.Fatal("no shifts or expands after 20k inserts")
	}
}

// Property: any op sequence leaves every variant equivalent to a map.
func TestQuickAllVariantsAgainstMap(t *testing.T) {
	type op struct {
		Kind    uint8
		Key     uint16
		Payload uint64
	}
	for _, cfg := range allVariants() {
		cfg.MaxKeysPerLeaf = 64
		cfg.SplitOnInsert = true
		cfg.InnerFanout = 4
		cfg.SplitFanout = 4
		name := cfg.VariantName()
		f := func(ops []op) bool {
			tr := New(cfg)
			ref := make(map[float64]uint64)
			for _, o := range ops {
				k := float64(o.Key % 1024)
				switch o.Kind % 4 {
				case 0:
					ins := tr.Insert(k, o.Payload)
					if _, existed := ref[k]; existed == ins {
						return false
					}
					ref[k] = o.Payload
				case 1:
					if tr.Delete(k) != hasKey(ref, k) {
						return false
					}
					delete(ref, k)
				case 2:
					if tr.Update(k, o.Payload) != hasKey(ref, k) {
						return false
					}
					if hasKey(ref, k) {
						ref[k] = o.Payload
					}
				case 3:
					v, ok := tr.Get(k)
					want, existed := ref[k]
					if ok != existed || (ok && v != want) {
						return false
					}
				}
			}
			if tr.Len() != len(ref) {
				return false
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func hasKey(m map[float64]uint64, k float64) bool {
	_, ok := m[k]
	return ok
}

// Property: bulk load + full scan returns exactly the sorted input for
// every variant and random leaf bounds.
func TestQuickBulkLoadScanRoundTrip(t *testing.T) {
	f := func(raw []uint32, layoutSeed uint8) bool {
		seen := make(map[float64]bool)
		var keys []float64
		for _, v := range raw {
			k := float64(v)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		cfg := allVariants()[int(layoutSeed)%4]
		cfg.MaxKeysPerLeaf = 32
		cfg.InnerFanout = 4
		tr, err := BulkLoad(keys, nil, cfg)
		if err != nil {
			return false
		}
		sort.Float64s(keys)
		var got []float64
		tr.Scan(math.Inf(-1), func(k float64, v uint64) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(keys) {
			return false
		}
		for i := range got {
			if got[i] != keys[i] {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGetBulkLoaded(b *testing.B) {
	keys := uniqueKeys(1<<18, 20)
	tr, _ := BulkLoad(keys, nil, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i&(len(keys)-1)])
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	tr := New(Config{SplitOnInsert: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Float64()*1e12, uint64(i))
	}
}
