package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// fuzzDist generates n sorted unique finite keys for one adversarial
// distribution family.
type fuzzDist struct {
	name string
	gen  func(n int, seed int64) []float64
}

func uniqueSorted(n int, seed int64, draw func(*rand.Rand) float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[float64]bool, n)
	keys := make([]float64, 0, n)
	for len(keys) < n {
		k := draw(rng)
		if math.IsNaN(k) || math.IsInf(k, 0) || seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys
}

var fuzzDists = []fuzzDist{
	{"uniform", func(n int, seed int64) []float64 {
		return uniqueSorted(n, seed, func(r *rand.Rand) float64 { return r.Float64() * 1e6 })
	}},
	{"lognormal", func(n int, seed int64) []float64 {
		return uniqueSorted(n, seed, func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64() * 3) })
	}},
	{"clustered", func(n int, seed int64) []float64 {
		return uniqueSorted(n, seed, func(r *rand.Rand) float64 {
			return float64(r.Intn(16))*1e10 + r.NormFloat64()
		})
	}},
	{"sequential", func(n int, seed int64) []float64 {
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = float64(i) * 3
		}
		return keys
	}},
	// Duplicate-free keys adjacent to ±MaxFloat64 and to zero: the
	// magnitudes where model training cancels catastrophically and
	// slot predictions overflow if unclamped.
	{"extremes", genExtremes},
}

func genExtremes(n int, _ int64) []float64 {
	seen := make(map[float64]bool, n)
	keys := make([]float64, 0, n)
	hi := math.MaxFloat64
	lo := -math.MaxFloat64
	d := 5e-324
	for len(keys) < n {
		for _, k := range []float64{hi, lo, d, -d} {
			if !seen[k] && len(keys) < n {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		hi = math.Nextafter(hi, 0)
		lo = math.Nextafter(lo, 0)
		d *= 1.5
		if math.IsInf(d, 0) {
			d = 7e-324
		}
	}
	sort.Float64s(keys)
	return keys
}

// TestCostOptimalEquivalenceFuzz builds every layout over every
// adversarial distribution with both the fanout-tree planner and the
// heuristic builder, and requires identical key→payload contents and
// clean invariants (CheckInvariants audits the exact post-build
// ErrBound via each data node's own checks) from both.
func TestCostOptimalEquivalenceFuzz(t *testing.T) {
	layouts := []Layout{GappedArray, PackedMemoryArray}
	for _, dist := range fuzzDists {
		for _, layout := range layouts {
			t.Run(dist.name+"/"+layout.String(), func(t *testing.T) {
				keys := dist.gen(20000, 42)
				payloads := make([]uint64, len(keys))
				for i := range payloads {
					payloads[i] = uint64(i) * 7
				}
				cfgOpt := Config{Layout: layout, MaxKeysPerLeaf: 512, Load: CostOptimalLoad}
				cfgHeu := Config{Layout: layout, MaxKeysPerLeaf: 512, Load: HeuristicLoad}
				opt := BulkLoadSorted(keys, payloads, cfgOpt)
				heu := BulkLoadSorted(keys, payloads, cfgHeu)
				if err := opt.CheckInvariants(); err != nil {
					t.Fatalf("cost-optimal invariants: %v", err)
				}
				if err := heu.CheckInvariants(); err != nil {
					t.Fatalf("heuristic invariants: %v", err)
				}
				requireSameContents(t, opt, heu)
			})
		}
	}
}

// TestCostOptimalStaticRMIUnaffected: StaticRMI ignores LoadMode — both
// settings build the identical static structure.
func TestCostOptimalStaticRMIUnaffected(t *testing.T) {
	keys := fuzzDists[0].gen(8000, 7)
	a := BulkLoadSorted(keys, nil, Config{RMI: StaticRMI, Load: CostOptimalLoad})
	b := BulkLoadSorted(keys, nil, Config{RMI: StaticRMI, Load: HeuristicLoad})
	if ha, hb := a.Height(), b.Height(); ha != hb {
		t.Fatalf("static RMI heights differ by load mode: %d vs %d", ha, hb)
	}
	requireSameContents(t, a, b)
}

// TestCostOptimalSplitEquivalence drives splits through an insert storm
// in both modes; both trees must keep clean invariants and identical
// contents.
func TestCostOptimalSplitEquivalence(t *testing.T) {
	for _, dist := range fuzzDists[:3] {
		t.Run(dist.name, func(t *testing.T) {
			all := dist.gen(24000, 99)
			rng := rand.New(rand.NewSource(5))
			rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
			init, stream := all[:8000], all[8000:]
			initK, initP, err := SortPairs(append([]float64(nil), init...), nil)
			if err != nil {
				t.Fatal(err)
			}
			mk := func(mode LoadMode) *Tree {
				cfg := Config{MaxKeysPerLeaf: 256, SplitOnInsert: true, SplitFanout: 4, Load: mode}
				tr := BulkLoadSorted(initK, initP, cfg)
				for _, k := range stream {
					tr.Insert(k, math.Float64bits(k))
				}
				return tr
			}
			opt, heu := mk(CostOptimalLoad), mk(HeuristicLoad)
			if err := opt.CheckInvariants(); err != nil {
				t.Fatalf("cost-optimal invariants after splits: %v", err)
			}
			if err := heu.CheckInvariants(); err != nil {
				t.Fatalf("heuristic invariants after splits: %v", err)
			}
			requireSameContents(t, opt, heu)
		})
	}
}

// TestRebuildCostOptimal rebuilds a merge-grown tree through the
// planner and checks contents, invariants, and that the old structure
// is retired.
func TestRebuildCostOptimal(t *testing.T) {
	keys := fuzzDists[1].gen(30000, 3)
	cfg := Config{MaxKeysPerLeaf: 512, Load: HeuristicLoad}
	tr := BulkLoadSorted(keys[:1000], nil, cfg)
	// Grow by merges, the shape recovery replay leaves behind.
	for lo := 1000; lo < len(keys); lo += 4096 {
		hi := lo + 4096
		if hi > len(keys) {
			hi = len(keys)
		}
		tr.Merge(keys[lo:hi], nil)
	}
	retired := 0
	tr.SetRetireHook(func(any) { retired++ })
	before, _ := chainCollect(tr)
	tr.RebuildCostOptimal()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after rebuild: %v", err)
	}
	after, _ := chainCollect(tr)
	if len(before) != len(after) {
		t.Fatalf("rebuild changed count: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("rebuild changed key %d: %v -> %v", i, before[i], after[i])
		}
	}
	if retired == 0 {
		t.Fatal("rebuild retired nothing")
	}
	// Rebuilding an empty tree must stay sane too.
	empty := New(Config{})
	empty.RebuildCostOptimal()
	if err := empty.CheckInvariants(); err != nil {
		t.Fatalf("invariants after empty rebuild: %v", err)
	}
}

// chainCollect walks the leaf chain directly, so keys beyond Scan's
// -1e308 start (the ±MaxFloat64-adjacent extremes) are included.
func chainCollect(tr *Tree) ([]float64, []uint64) {
	var ks []float64
	var ps []uint64
	for l := tr.head.Load(); l != nil; l = l.next.Load() {
		ks, ps = l.data().Collect(ks, ps)
	}
	return ks, ps
}

func requireSameContents(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	ak, ap := chainCollect(a)
	bk, bp := chainCollect(b)
	if len(ak) != len(bk) {
		t.Fatalf("collected lengths differ: %d vs %d", len(ak), len(bk))
	}
	for i := range ak {
		if ak[i] != bk[i] || ap[i] != bp[i] {
			t.Fatalf("contents differ at %d: (%v,%d) vs (%v,%d)", i, ak[i], ap[i], bk[i], bp[i])
		}
	}
}
