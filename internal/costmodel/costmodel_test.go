package costmodel

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/linmodel"
)

func sortedUnique(n int, gen func(*rand.Rand) float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[float64]bool, n)
	keys := make([]float64, 0, n)
	for len(keys) < n {
		k := gen(rng)
		if math.IsNaN(k) || math.IsInf(k, 0) || seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys
}

// refFit is the well-conditioned reference: a two-pass fit in the
// segment-shifted domain (u = k - keys[lo]), where every quantity is
// small. On far-offset data it is strictly better conditioned than
// linmodel.TrainRange, whose global mean accumulates rounding at the
// raw key magnitude.
func refFit(keys []float64, lo, hi int) linmodel.Model {
	n := hi - lo
	off := keys[lo]
	var meanU, meanR float64
	for i := lo; i < hi; i++ {
		meanU += keys[i] - off
	}
	fn := float64(n)
	meanU /= fn
	meanR = (fn - 1) / 2
	var cov, varU float64
	for i := lo; i < hi; i++ {
		du := (keys[i] - off) - meanU
		cov += du * (float64(i-lo) - meanR)
		varU += du * du
	}
	if varU == 0 {
		return linmodel.Model{Intercept: meanR}
	}
	slope := cov / varU
	return linmodel.Model{Slope: slope, Intercept: meanR - slope*meanU - slope*off}
}

// The prefix-moment fit must agree with the well-conditioned reference
// fit on arbitrary sub-segments, within float tolerance.
func TestAccumulatorMatchesTrainRange(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(*rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 1e6 }},
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64() * 4) }},
		{"offset", func(r *rand.Rand) float64 { return 1e12 + r.Float64() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			keys := sortedUnique(5000, tc.gen, 1)
			acc := NewAccumulator(keys)
			rng := rand.New(rand.NewSource(2))
			for trial := 0; trial < 200; trial++ {
				lo := rng.Intn(len(keys) - 2)
				hi := lo + 2 + rng.Intn(len(keys)-lo-2)
				got := acc.Model(lo, hi)
				want := refFit(keys, lo, hi)
				// Compare predictions at the segment ends. The
				// tolerance scales with the rank range: the fits are
				// evaluated in the raw key domain, where Slope*key +
				// Intercept cancels at magnitude |Slope*key|, and the
				// moment differences themselves carry conditioning
				// error — half a percent of the rank range is far
				// below what the cost terms can distinguish.
				tol := 2 + 0.005*float64(hi-lo)
				for _, k := range []float64{keys[lo], keys[hi-1]} {
					g, w := got.Predict(k), want.Predict(k)
					if d := math.Abs(g - w); d > tol {
						t.Fatalf("segment [%d,%d) predict(%v): prefix fit %v, reference fit %v", lo, hi, k, g, w)
					}
				}
			}
		})
	}
}

// Stats must agree with residuals measured directly against the
// segment model on small segments, and the strided-sampled estimates
// on large segments must stay close to (and the max never above) the
// exact values.
func TestAccumulatorStats(t *testing.T) {
	keys := sortedUnique(2000, func(r *rand.Rand) float64 { return r.NormFloat64() * 100 }, 3)
	acc := NewAccumulator(keys)
	exact := func(lo, hi int) (int, float64) {
		m := acc.Model(lo, hi)
		maxErr, sum := 0, 0.0
		for i := lo; i < hi; i++ {
			e := int(math.Floor(m.Predict(keys[i]))) - (i - lo)
			if e < 0 {
				e = -e
			}
			if e > maxErr {
				maxErr = e
			}
			sum += float64(e)
		}
		return maxErr, sum / float64(hi-lo)
	}

	// Small segment (≤ statsMaxSamples): the pass is exhaustive.
	lo, hi := 100, 340
	st := acc.Stats(lo, hi)
	maxErr, meanErr := exact(lo, hi)
	if st.Count != hi-lo || st.MaxErr != maxErr {
		t.Fatalf("Stats = %+v, want Count %d MaxErr %d", st, hi-lo, maxErr)
	}
	if math.Abs(st.MeanErr-meanErr) > 1e-9 {
		t.Fatalf("MeanErr = %v, want %v", st.MeanErr, meanErr)
	}

	// Large segment: strided sampling. The sampled max is a lower bound
	// on the exact max and the mean estimate stays in the ballpark.
	lo, hi = 100, 1700
	st = acc.Stats(lo, hi)
	maxErr, meanErr = exact(lo, hi)
	if st.Count != hi-lo {
		t.Fatalf("Count = %d, want %d", st.Count, hi-lo)
	}
	if st.MaxErr > maxErr {
		t.Fatalf("sampled MaxErr %d exceeds exact %d", st.MaxErr, maxErr)
	}
	if st.MaxErr < 0 {
		t.Fatalf("sampled MaxErr = %d on a modeled segment", st.MaxErr)
	}
	if math.Abs(st.MeanErr-meanErr) > 0.5*meanErr+1 {
		t.Fatalf("sampled MeanErr = %v too far from exact %v", st.MeanErr, meanErr)
	}
}

// Cold segments (below the model threshold) report MaxErr -1 and a
// binary-search cost.
func TestColdSegment(t *testing.T) {
	keys := []float64{1, 2, 3, 4, 5}
	acc := NewAccumulator(keys)
	st := acc.Stats(0, len(keys))
	if st.MaxErr != -1 {
		t.Fatalf("cold segment MaxErr = %d, want -1", st.MaxErr)
	}
	p := Params{}.WithDefaults()
	if c := p.LeafCost(st); c <= 0 {
		t.Fatalf("cold leaf cost = %v, want > 0", c)
	}
}

// LeafCost must price larger errors higher, and must charge the
// exponential-search rate once the bound leaves the bounded window.
func TestLeafCostMonotone(t *testing.T) {
	p := Params{}.WithDefaults()
	prev := 0.0
	for _, e := range []float64{0, 1, 4, 9, 40, 400, 4000} {
		c := p.LeafCost(SegStats{Count: 1000, MaxErr: int(e), MeanErr: e / 2})
		if c <= prev {
			t.Fatalf("LeafCost not increasing at err %v: %v <= %v", e, c, prev)
		}
		prev = c
	}
}

// checkPlan verifies structural sanity: leaves tile [0, n) exactly in
// order, children arrays are powers of two, and repeated child
// pointers are only ever adjacent.
func checkPlan(t *testing.T, pl *Plan, lo, hi int) {
	t.Helper()
	if pl.Children == nil {
		if pl.Lo != lo || pl.Hi != hi {
			t.Fatalf("leaf covers [%d,%d), want [%d,%d)", pl.Lo, pl.Hi, lo, hi)
		}
		return
	}
	if f := len(pl.Children); f&(f-1) != 0 || f < 2 {
		t.Fatalf("fanout %d is not a power of two >= 2", f)
	}
	seen := map[*Plan]bool{}
	var last *Plan
	at := lo
	for i, c := range pl.Children {
		if c == nil {
			t.Fatalf("nil child at slot %d", i)
		}
		if c == last {
			continue
		}
		if seen[c] {
			t.Fatalf("non-adjacent repeated child at slot %d", i)
		}
		seen[c] = true
		last = c
		checkPlan(t, c, at, c.Hi)
		at = c.Hi
	}
	if at != hi {
		t.Fatalf("children cover up to %d, want %d", at, hi)
	}
}

func TestNewPlanTilesKeySpace(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(*rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() }},
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64() * 2) }},
		{"clustered", func(r *rand.Rand) float64 {
			return float64(r.Intn(8))*1e9 + r.Float64()
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			keys := sortedUnique(60000, tc.gen, 7)
			p := Params{MaxKeysPerLeaf: 1024}
			pl := p.NewPlan(keys)
			checkPlan(t, pl, 0, len(keys))
			if pl.Children == nil {
				t.Fatal("60k keys with 1k-leaf bound planned as a single leaf")
			}
		})
	}
}

func TestNewPlanSmallInput(t *testing.T) {
	for _, n := range []int{0, 1, 2, 15, 16, 17} {
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = float64(i)
		}
		pl := Params{}.NewPlan(keys)
		checkPlan(t, pl, 0, n)
	}
}

// A split plan must divide the data or admit it can't (nil).
func TestNewSplitPlanDivides(t *testing.T) {
	keys := sortedUnique(4096, func(r *rand.Rand) float64 { return r.NormFloat64() }, 11)
	pl := Params{MaxKeysPerLeaf: 4096}.NewSplitPlan(keys, 4)
	if pl == nil {
		t.Fatal("split plan nil for a splittable node")
	}
	checkPlan(t, pl, 0, len(keys))
	distinct := 0
	var last *Plan
	for _, c := range pl.Children {
		if c == last {
			continue
		}
		last = c
		if c.Hi > c.Lo {
			distinct++
		}
	}
	if distinct < 2 {
		t.Fatalf("split plan has %d non-empty children, want >= 2", distinct)
	}
	if pl2 := (Params{}).NewSplitPlan([]float64{42}, 4); pl2 != nil {
		t.Fatalf("split plan for a single key = %+v, want nil", pl2)
	}
}

// Adversarial magnitudes: keys adjacent to ±MaxFloat64 and denormals
// must plan without panics and tile correctly.
func TestNewPlanExtremeMagnitudes(t *testing.T) {
	var keys []float64
	k := math.MaxFloat64
	for i := 0; i < 300; i++ {
		keys = append(keys, -k, k)
		k = math.Nextafter(k, 0)
	}
	d := 5e-324
	for i := 0; i < 300; i++ {
		keys = append(keys, d)
		d *= 2
	}
	sort.Float64s(keys)
	pl := Params{MaxKeysPerLeaf: 64}.NewPlan(keys)
	checkPlan(t, pl, 0, len(keys))
}
