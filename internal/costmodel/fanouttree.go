package costmodel

import (
	"math"
	"math/bits"
	"sort"

	"repro/internal/linmodel"
)

// Plan is one node of a cost-optimal build plan over a sorted key
// slice. A nil Children marks a data-node plan over keys[Lo:Hi); a
// non-nil Children is an inner node routing through Model, scaled so
// floor(Model.Predict(key)) clamped into [0, len(Children)) is the
// child slot. Adjacent slots may repeat the same *Plan pointer — the
// planner's merged undersized partitions — mirroring the repeated
// child-pointer convention of the tree itself.
type Plan struct {
	// Lo and Hi delimit the half-open segment of the planned key slice
	// this node covers.
	Lo, Hi int
	// Model is the routing model for inner plans (zero for leaves), in
	// the original key domain, scaled to len(Children) slots.
	Model linmodel.Model
	// Children holds the power-of-two child slots; nil for a leaf.
	Children []*Plan
	// Cost is the modeled expected cost per stored key of operations on
	// this subtree, excluding the traverse into it.
	Cost float64
	// LeafErr is the estimated post-build slot-domain prediction-error
	// bound of a leaf plan (-1 for cold leaves and inner plans).
	LeafErr int
}

// Leaves appends the distinct leaf plans of the subtree in key order.
func (pl *Plan) Leaves(dst []*Plan) []*Plan {
	if pl.Children == nil {
		return append(dst, pl)
	}
	var last *Plan
	for _, c := range pl.Children {
		if c == last {
			continue
		}
		last = c
		dst = c.Leaves(dst)
	}
	return dst
}

// maxPlanDepth caps plan recursion against degenerate data, matching
// the tree builder's own recursion cap.
const maxPlanDepth = 48

// DP cell choices.
const (
	choiceLeaf    uint8 = iota // serve the region with one data node
	choiceSplit                // split into the two halves one level down
	choiceRecurse              // region still oversized at max fanout: fresh child node
)

// cell is one region of the per-node dynamic program.
type cell struct {
	cost   float64 // total modeled cost over the region's keys
	choice uint8
	err    int   // estimated leaf error bound (choiceLeaf)
	child  *Plan // recursed plan (choiceRecurse)
}

// NewPlan builds the cost-optimal fanout-tree plan for the sorted
// unique keys: per node it trains one partition model, evaluates the
// power-of-two fanout candidates by halving its range, merges adjacent
// undersized partitions when the merged data node is modeled cheaper,
// and recurses into regions still oversized at the fanout budget. The
// returned plan's Lo/Hi index the given slice.
func (p Params) NewPlan(keys []float64) *Plan {
	p = p.WithDefaults()
	return p.plan(NewAccumulator(keys), 0, len(keys), 0, 0)
}

// NewSplitPlan plans the replacement subtree for a splitting data node:
// like NewPlan but the root must partition (a single-leaf answer
// returns nil, meaning the node cannot usefully split) and the root
// fanout is capped at the next power of two >= maxFanout. Lo/Hi of the
// returned plan index the given slice.
func (p Params) NewSplitPlan(keys []float64, maxFanout int) *Plan {
	p = p.WithDefaults()
	if maxFanout < 2 {
		maxFanout = 2
	}
	p.MaxFanout = 1 << ceilLog2(maxFanout)
	pl := p.plan(NewAccumulator(keys), 0, len(keys), 0, ceilLog2(p.MaxFanout))
	if pl == nil || pl.Children == nil {
		return nil
	}
	// A split must actually divide the data: a plan whose slots all
	// collapse onto one non-empty child would re-create the unsplit
	// leaf under a useless inner node (and let the caller loop).
	distinct := 0
	var last *Plan
	for _, c := range pl.Children {
		if c == last {
			continue
		}
		last = c
		if c.Hi > c.Lo {
			distinct++
		}
	}
	if distinct < 2 {
		return nil
	}
	return pl
}

// plan builds the plan for acc.keys[lo:hi). forcedLevels > 0 pins the
// fanout-tree depth and forbids the whole-node leaf answer (the split
// path); it returns nil only in that mode, when the segment cannot be
// partitioned at all.
func (p Params) plan(acc *Accumulator, lo, hi, depth, forcedLevels int) *Plan {
	n := hi - lo
	force := forcedLevels > 0
	if !force && (n <= p.MinLeafKeys || depth >= maxPlanDepth) {
		return p.leafPlan(acc, lo, hi)
	}

	// One model per node; candidates are its power-of-two halvings.
	m0 := acc.Model(lo, hi)
	if !usable(m0) {
		m0 = linmodel.TrainEndpoints(acc.keys, lo, hi)
	}
	if !usable(m0) {
		if force {
			return nil
		}
		return p.leafPlan(acc, lo, hi)
	}

	ld := forcedLevels
	if ld == 0 {
		// Deep enough that expected regions fit a leaf, plus headroom
		// for refinement; never deeper than average MinLeafKeys regions
		// and never past the fanout budget.
		ld = ceilLog2((n+p.MaxKeysPerLeaf-1)/p.MaxKeysPerLeaf) + 3
		if m := ceilLog2(p.MaxFanout); ld > m {
			ld = m
		}
		if m := ceilLog2(maxInt(2, n/p.MinLeafKeys)); ld > m {
			ld = m
		}
		if ld < 1 {
			ld = 1
		}
	}
	deepFan := 1 << ld
	md := m0.Scale(float64(deepFan) / float64(n))
	bounds, nonEmpty := regionBounds(acc.keys, md, lo, hi, deepFan)
	if nonEmpty <= 1 {
		if force {
			return nil
		}
		return p.leafPlan(acc, lo, hi)
	}

	// Bottom-up DP over the fanout-tree levels. The deepest level
	// resolves oversized regions by recursing into fresh child plans;
	// every level above may merge two half-regions back into one data
	// node when the merged cost is lower.
	levels := make([][]cell, ld+1)
	deep := make([]cell, deepFan)
	for j := range deep {
		sLo, sHi := bounds[j], bounds[j+1]
		cnt := sHi - sLo
		switch {
		case cnt == 0:
			deep[j] = cell{choice: choiceLeaf, err: -1}
		case cnt <= p.MaxKeysPerLeaf:
			st := acc.Stats(sLo, sHi)
			deep[j] = cell{cost: float64(cnt) * p.LeafCost(st), choice: choiceLeaf, err: p.slotErr(st)}
		default:
			child := p.plan(acc, sLo, sHi, depth+1, 0)
			deep[j] = cell{cost: float64(cnt) * (p.TraverseCost + child.Cost), choice: choiceRecurse, child: child}
		}
	}
	levels[ld] = deep
	for l := ld - 1; l >= 0; l-- {
		step := 1 << (ld - l)
		row := make([]cell, 1<<l)
		for j := range row {
			sLo, sHi := bounds[j*step], bounds[(j+1)*step]
			cnt := sHi - sLo
			left, right := levels[l+1][2*j], levels[l+1][2*j+1]
			row[j] = cell{cost: left.cost + right.cost + float64(cnt)*p.FanoutPenalty, choice: choiceSplit}
			if cnt <= p.MaxKeysPerLeaf && !(l == 0 && force) {
				st := acc.Stats(sLo, sHi)
				if lc := float64(cnt) * p.LeafCost(st); lc <= row[j].cost {
					row[j] = cell{cost: lc, choice: choiceLeaf, err: p.slotErr(st)}
				}
			}
		}
		levels[l] = row
	}

	if levels[0][0].choice == choiceLeaf {
		root := levels[0][0]
		return &Plan{Lo: lo, Hi: hi, Cost: root.cost / float64(n), LeafErr: root.err}
	}
	return p.materialize(acc, lo, hi, levels, bounds, md)
}

// frontierCell is one chosen (level, index) region of the DP solution.
type frontierCell struct {
	level, idx int
}

// materialize turns the DP solution into a Plan node: the frontier of
// non-split cells becomes the children, placed at fanout 2^(deepest
// frontier level) with shallower cells repeated across their slot
// ranges, and empty regions sharing a neighboring child.
func (p Params) materialize(acc *Accumulator, lo, hi int, levels [][]cell, bounds []int, md linmodel.Model) *Plan {
	ld := len(levels) - 1
	var frontier []frontierCell
	maxLevel := 0
	var walk func(l, j int)
	walk = func(l, j int) {
		if levels[l][j].choice == choiceSplit {
			walk(l+1, 2*j)
			walk(l+1, 2*j+1)
			return
		}
		frontier = append(frontier, frontierCell{l, j})
		if l > maxLevel {
			maxLevel = l
		}
	}
	walk(0, 0)

	fan := 1 << maxLevel
	// Scaling by a power of two is exact, so the published model's
	// predictions are the deep model's divided by 2^(ld-maxLevel)
	// bit-for-bit — routing at the final fanout lands every key in the
	// deep region group it was planned into.
	mf := md.Scale(1 / float64(int(1)<<(ld-maxLevel)))
	children := make([]*Plan, fan)
	var last *Plan
	pending := 0 // leading empty slots awaiting the first real child
	for _, fc := range frontier {
		slotLo := fc.idx << (maxLevel - fc.level)
		slotHi := (fc.idx + 1) << (maxLevel - fc.level)
		segLo, segHi := bounds[fc.idx<<(ld-fc.level)], bounds[(fc.idx+1)<<(ld-fc.level)]
		c := levels[fc.level][fc.idx]
		var child *Plan
		switch {
		case segHi == segLo:
			if last == nil {
				pending = slotHi // backfilled by the first real child
				continue
			}
			child = last // empty region: share the preceding child
		case c.choice == choiceRecurse:
			child = c.child
		default:
			child = &Plan{Lo: segLo, Hi: segHi, Cost: c.cost / float64(segHi-segLo), LeafErr: c.err}
		}
		for s := slotLo; s < slotHi; s++ {
			children[s] = child
		}
		if last == nil {
			for s := 0; s < pending; s++ {
				children[s] = child
			}
		}
		last = child
	}

	total := levels[0][0].cost
	return &Plan{Lo: lo, Hi: hi, Model: mf, Children: children, Cost: total / float64(hi-lo)}
}

// leafPlan prices serving keys[lo:hi) with a single data node.
func (p Params) leafPlan(acc *Accumulator, lo, hi int) *Plan {
	st := acc.Stats(lo, hi)
	return &Plan{Lo: lo, Hi: hi, Cost: p.LeafCost(st), LeafErr: p.slotErr(st)}
}

// slotErr translates a rank-domain residual bound into the slot domain
// the built leaf's ErrBound lives in; -1 stays -1 (cold).
func (p Params) slotErr(st SegStats) int {
	if st.MaxErr < 0 {
		return -1
	}
	return int(math.Ceil(float64(st.MaxErr) / p.Density))
}

// regionBounds computes the deep-level region boundaries for a monotone
// model scaled to fan regions: bounds[i]-lo is the first segment index
// whose prediction is >= i, exactly the routing rule of the built node.
func regionBounds(keys []float64, m linmodel.Model, lo, hi, fan int) ([]int, int) {
	n := hi - lo
	bounds := make([]int, fan+1)
	bounds[0] = lo
	bounds[fan] = hi
	for i := 1; i < fan; i++ {
		target := float64(i)
		bounds[i] = lo + sort.Search(n, func(j int) bool { return m.Predict(keys[lo+j]) >= target })
	}
	nonEmpty := 0
	for i := 0; i < fan; i++ {
		if bounds[i+1] < bounds[i] { // pathological slope: clamp
			bounds[i+1] = bounds[i]
		}
		if bounds[i+1] > bounds[i] {
			nonEmpty++
		}
	}
	return bounds, nonEmpty
}

// usable reports whether a model can partition monotonically.
func usable(m linmodel.Model) bool {
	return m.Slope > 0 && !math.IsInf(m.Slope, 0) && !math.IsNaN(m.Slope) && !math.IsNaN(m.Intercept) && !math.IsInf(m.Intercept, 0)
}

// ceilLog2 returns ceil(log2(v)) for v >= 1.
func ceilLog2(v int) int {
	if v <= 1 {
		return 0
	}
	return bits.Len(uint(v - 1))
}

// maxInt returns the larger of a and b.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
