// Package costmodel implements the §4 expected-cost model that drives
// cost-optimal tree construction: bulk load, post-recovery rebuilds,
// and cost-based node splits all plan their structure by minimizing the
// modeled cost of future operations instead of applying fixed fanout
// heuristics.
//
// The model prices the two per-operation quantities the paper
// identifies — expected search iterations (from the prediction-error
// distribution of the leaf model that would serve a segment) and
// expected shifts per insert (from the layout's gap density and the
// error-driven clustering of inserts) — plus a traverse cost per inner
// level. The planner (see Plan) builds a per-node *fanout tree*: the
// node's partition model is trained once, candidate fanouts are the
// powers of two obtained by repeatedly halving that model's range, and
// a dynamic program picks, per region, whether to stop at a data node,
// split further, or recurse into a fresh child node — merging adjacent
// undersized partitions exactly when the merged data node is modeled
// cheaper than separate ones.
//
// Training a candidate partition's model is O(1) after one prefix pass:
// Accumulator keeps running moments of (key, rank) over the node's
// sorted segment, so every sub-segment's least-squares fit is a
// difference of prefix sums. The residual statistics that feed the
// search-cost term still take one pass over the segment, so a full plan
// costs O(n · log fanout) — the same order as the build it guides.
package costmodel

import (
	"math"

	"repro/internal/leafbase"
	"repro/internal/linmodel"
)

// Params configures the cost model and the fanout-tree planner. The
// zero value of every field selects a measured default, so callers only
// override what they know (typically MaxKeysPerLeaf and Density, which
// must match the tree configuration the plan will be built under).
type Params struct {
	// MaxKeysPerLeaf bounds the keys a planned data node may hold,
	// matching core.Config.MaxKeysPerLeaf. Default 4096.
	MaxKeysPerLeaf int
	// MaxFanout caps a single node's fanout at a power of two.
	// Default 1 << 14.
	MaxFanout int
	// Density is the expected post-build occupancy of a data node
	// (stored keys / allocated slots), used to translate rank-domain
	// model residuals into slot-domain search errors and to price the
	// shift distance to the nearest gap. Default 0.64 (the gapped
	// array's d² build occupancy at the paper's default d = 0.8).
	Density float64
	// TraverseCost is the modeled cost of descending one inner level:
	// one model evaluation plus one dependent pointer load. Default 2.
	TraverseCost float64
	// IterCost is the modeled cost of one exponential-search iteration
	// (a data-dependent load and branch). The other cost terms are
	// expressed relative to it. Default 1.
	IterCost float64
	// CompareCost is the modeled cost of one branch-free compare inside
	// the bounded-search window; the window runs at full out-of-order
	// width, so it is cheaper than an iteration. Default 0.25.
	CompareCost float64
	// ShiftCost is the modeled cost of moving one element while making
	// a gap for an insert. Default 0.5.
	ShiftCost float64
	// InsertFrac is the expected fraction of future operations that are
	// inserts, weighting the shift term against the search term.
	// Default 0.5.
	InsertFrac float64
	// FanoutPenalty is the per-key regularization charged for each
	// fanout doubling, modeling the larger child array and router
	// pressure; it is what stops the planner from shattering well-fit
	// regions into needless tiny leaves. Default 0.1.
	FanoutPenalty float64
	// MinLeafKeys is the segment size at or below which the planner
	// always emits a data node (cold nodes below leafbase.MinModelKeys
	// binary-search anyway, so subdividing them buys nothing).
	// Default leafbase.MinModelKeys.
	MinLeafKeys int
}

// WithDefaults returns p with every zero field replaced by its default.
func (p Params) WithDefaults() Params {
	if p.MaxKeysPerLeaf <= 0 {
		p.MaxKeysPerLeaf = 4096
	}
	if p.MaxFanout < 2 {
		p.MaxFanout = 1 << 14
	}
	if p.Density <= 0 || p.Density >= 1 {
		p.Density = 0.64
	}
	if p.TraverseCost <= 0 {
		p.TraverseCost = 2
	}
	if p.IterCost <= 0 {
		p.IterCost = 1
	}
	if p.CompareCost <= 0 {
		p.CompareCost = 0.25
	}
	if p.ShiftCost <= 0 {
		p.ShiftCost = 0.5
	}
	if p.InsertFrac <= 0 {
		p.InsertFrac = 0.5
	}
	if p.FanoutPenalty <= 0 {
		p.FanoutPenalty = 0.1
	}
	if p.MinLeafKeys <= 0 {
		p.MinLeafKeys = leafbase.MinModelKeys
	}
	return p
}

// Accumulator holds prefix moments of (key, rank) over one sorted key
// slice, so the ordinary-least-squares model of any sub-segment
// [lo, hi) is a difference of prefix sums — O(1) per candidate
// partition instead of O(hi-lo). Keys are shifted by the slice's first
// key before accumulation to tame cancellation; segments whose variance
// still cancels catastrophically fall back to the two-pass mean-shifted
// fit (see Model).
type Accumulator struct {
	keys []float64
	off  float64   // keys[0], subtracted before accumulation
	pu   []float64 // pu[i]  = Σ_{j<i} (keys[j]-off)
	puu  []float64 // puu[i] = Σ_{j<i} (keys[j]-off)²
	pur  []float64 // pur[i] = Σ_{j<i} (keys[j]-off)·j
}

// NewAccumulator builds the prefix moments for keys, which must be
// sorted (not verified). One O(n) pass; Model is O(1) afterwards.
func NewAccumulator(keys []float64) *Accumulator {
	a := &Accumulator{
		keys: keys,
		pu:   make([]float64, len(keys)+1),
		puu:  make([]float64, len(keys)+1),
		pur:  make([]float64, len(keys)+1),
	}
	if len(keys) > 0 {
		a.off = keys[0]
	}
	var su, suu, sur float64
	for i, k := range keys {
		u := k - a.off
		su += u
		suu += u * u
		sur += u * float64(i)
		a.pu[i+1] = su
		a.puu[i+1] = suu
		a.pur[i+1] = sur
	}
	return a
}

// Model returns the least-squares rank model of keys[lo:hi] — a model
// predicting local ranks [0, hi-lo) in the original key domain, the
// same fit linmodel.TrainRange computes — in O(1) from the prefix
// moments. When the prefix-difference variance loses too much precision
// to cancellation (segments far from the slice origin with a tiny key
// range), it falls back to the two-pass fit.
func (a *Accumulator) Model(lo, hi int) linmodel.Model {
	n := hi - lo
	switch {
	case n <= 0:
		return linmodel.Model{}
	case n == 1:
		return linmodel.Model{}
	}
	fn := float64(n)
	sumU := a.pu[hi] - a.pu[lo]
	sumUU := a.puu[hi] - a.puu[lo]
	// Local ranks: Σ u·(j-lo) = Σ u·j - lo·Σ u.
	sumUR := (a.pur[hi] - a.pur[lo]) - float64(lo)*sumU
	meanU := sumU / fn
	meanR := (fn - 1) / 2
	varU := sumUU - fn*meanU*meanU
	cov := sumUR - fn*meanU*meanR
	// Relative-cancellation guard: when the surviving variance is below
	// ~1e-9 of the magnitudes that cancelled, the prefix difference has
	// lost half the mantissa; re-fit stably instead.
	if !(varU > 0) || varU < sumUU*1e-9 {
		return linmodel.TrainRange(a.keys, lo, hi)
	}
	slope := cov / varU
	// Shift back to the original key domain: rank = slope·(k-off) + b.
	return linmodel.Model{Slope: slope, Intercept: meanR - slope*meanU - slope*a.off}
}

// SegStats summarizes the prediction-error distribution of a segment's
// would-be data node model, the input to the search-cost term.
type SegStats struct {
	// Count is the number of keys in the segment.
	Count int
	// MaxErr is the maximum rank-domain residual |floor(pred) - rank|;
	// -1 for cold segments below leafbase.MinModelKeys, which hold no
	// model.
	MaxErr int
	// MeanErr is the mean rank-domain residual.
	MeanErr float64
}

// statsMaxSamples caps the residual pass of Stats. The planner prices
// every DP cell with Stats, and a cell can cover thousands of keys;
// measuring every residual would make the plan's residual passes its
// dominant cost (several full passes over the input across the merge
// levels). Above this size the pass samples at a fixed stride instead:
// the mean estimate stays tight on the smooth segments where it
// matters, the max becomes a (deterministic) lower-bound estimate, and
// both are only ever used to *price* candidates — the built leaf
// measures its true error bound itself.
const statsMaxSamples = 256

// Stats trains the segment's rank model (O(1) via the prefix moments)
// and measures its residual distribution — the same quantities
// linmodel.TrainRangeBounded computes, extended with the mean the
// expected-cost terms need. Segments larger than statsMaxSamples are
// strided-sampled, so MaxErr and MeanErr are deterministic estimates
// there, not exact maxima.
func (a *Accumulator) Stats(lo, hi int) SegStats {
	n := hi - lo
	st := SegStats{Count: n, MaxErr: -1}
	if n < leafbase.MinModelKeys {
		return st
	}
	stride := 1
	if n > statsMaxSamples {
		stride = (n + statsMaxSamples - 1) / statsMaxSamples
	}
	m := a.Model(lo, hi)
	st.MaxErr = 0
	var sum float64
	samples := 0
	for i := lo; i < hi; i += stride {
		e := int(math.Floor(m.Predict(a.keys[i]))) - (i - lo)
		if e < 0 {
			e = -e
		}
		if e > st.MaxErr {
			st.MaxErr = e
		}
		sum += float64(e)
		samples++
	}
	st.MeanErr = sum / float64(samples)
	return st
}

// LeafCost returns the modeled expected cost per operation of serving a
// segment with one data node: the probe's search cost — priced by the
// strategy the per-leaf error bound would select, bounded branch-free
// window for small bounds, exponential bracketing for large ones — plus
// the insert-weighted expected shift cost. Residuals are scaled from
// the rank domain to the slot domain by 1/Density, mirroring the
// capacity scaling of the model at build.
func (p Params) LeafCost(st SegStats) float64 {
	if st.Count == 0 {
		return 0
	}
	if st.MaxErr < 0 {
		// Cold node: plain binary search, negligible shifts.
		return p.IterCost * math.Log2(float64(st.Count)+1)
	}
	maxSlot := float64(st.MaxErr) / p.Density
	meanSlot := st.MeanErr / p.Density
	var search float64
	if maxSlot <= float64(leafbase.BoundedSearchMaxErr) {
		// Direct predict + one-sided window of independent compares.
		search = p.IterCost + p.CompareCost*(meanSlot+1)
	} else {
		// Exponential bracketing (~log2 e probes out, ~log2 e back).
		search = p.IterCost * (1 + 2*math.Log2(meanSlot+2))
	}
	// Expected shift: distance to the nearest gap at density d plus the
	// clustering the prediction error concentrates onto popular slots.
	shift := p.ShiftCost * p.InsertFrac * (0.5*p.Density/(1-p.Density) + 0.25*meanSlot)
	return search + shift
}
