// Package pagestore provides the paged-storage substrate for the §7
// "Secondary Storage" extension of ALEX: fixed-size pages addressed by
// PageID, with an in-memory backend (tests, simulation), a file backend,
// and an LRU page cache that counts hits, misses and physical I/O so
// experiments can report the cache behaviour of a disk-backed index.
package pagestore

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/faultfs"
)

// PageID addresses a page within a store. Zero is a valid page.
type PageID uint32

// DefaultPageSize is the conventional 4 KiB database page.
const DefaultPageSize = 4096

// ErrOutOfRange is returned for accesses beyond the allocated pages.
var ErrOutOfRange = errors.New("pagestore: page id out of range")

// Store is a flat array of fixed-size pages.
type Store interface {
	// PageSize returns the immutable page size in bytes.
	PageSize() int
	// Alloc appends a zeroed page and returns its id.
	Alloc() (PageID, error)
	// Read copies page id into buf, which must be PageSize() long.
	Read(id PageID, buf []byte) error
	// Write replaces page id with data, which must be PageSize() long.
	Write(id PageID, data []byte) error
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Close releases resources.
	Close() error
}

// MemStore keeps pages in memory — the simulation backend (the paper's
// testbed has no disk in the loop either; what matters for the
// experiments is the page/cache discipline, not the medium).
type MemStore struct {
	pageSize int
	pages    [][]byte
}

// NewMemStore returns an empty in-memory store. pageSize <= 0 uses the
// default.
func NewMemStore(pageSize int) *MemStore {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemStore{pageSize: pageSize}
}

// PageSize returns the page size.
func (s *MemStore) PageSize() int { return s.pageSize }

// Alloc appends a zeroed page.
func (s *MemStore) Alloc() (PageID, error) {
	s.pages = append(s.pages, make([]byte, s.pageSize))
	return PageID(len(s.pages) - 1), nil
}

// Read copies a page out.
func (s *MemStore) Read(id PageID, buf []byte) error {
	if int(id) >= len(s.pages) {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, id, len(s.pages))
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("pagestore: read buffer %d != page size %d", len(buf), s.pageSize)
	}
	copy(buf, s.pages[id])
	return nil
}

// Write replaces a page.
func (s *MemStore) Write(id PageID, data []byte) error {
	if int(id) >= len(s.pages) {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, id, len(s.pages))
	}
	if len(data) != s.pageSize {
		return fmt.Errorf("pagestore: write buffer %d != page size %d", len(data), s.pageSize)
	}
	copy(s.pages[id], data)
	return nil
}

// NumPages returns the allocated page count.
func (s *MemStore) NumPages() int { return len(s.pages) }

// Close is a no-op for the memory backend.
func (s *MemStore) Close() error { return nil }

// FileStore keeps pages in a file at page-aligned offsets.
type FileStore struct {
	f        faultfs.File
	pageSize int
	n        int
}

// NewFileStore creates (truncating) a page file at path.
func NewFileStore(path string, pageSize int) (*FileStore, error) {
	return NewFileStoreFS(faultfs.OS, path, pageSize)
}

// NewFileStoreFS is NewFileStore opening through fsys, so the paged
// backend participates in the same fault-injection seam as the WAL:
// tests script page-write failures and latency without touching the
// real filesystem semantics.
func NewFileStoreFS(fsys faultfs.FS, path string, pageSize int) (*FileStore, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := faultfs.Create(fsys, path)
	if err != nil {
		return nil, err
	}
	return &FileStore{f: f, pageSize: pageSize}, nil
}

// PageSize returns the page size.
func (s *FileStore) PageSize() int { return s.pageSize }

// Alloc extends the file by one zeroed page.
func (s *FileStore) Alloc() (PageID, error) {
	id := PageID(s.n)
	if err := s.f.Truncate(int64(s.n+1) * int64(s.pageSize)); err != nil {
		return 0, err
	}
	s.n++
	return id, nil
}

// Read reads a page at its aligned offset.
func (s *FileStore) Read(id PageID, buf []byte) error {
	if int(id) >= s.n {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, id, s.n)
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("pagestore: read buffer %d != page size %d", len(buf), s.pageSize)
	}
	_, err := s.f.ReadAt(buf, int64(id)*int64(s.pageSize))
	return err
}

// Write writes a page at its aligned offset.
func (s *FileStore) Write(id PageID, data []byte) error {
	if int(id) >= s.n {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, id, s.n)
	}
	if len(data) != s.pageSize {
		return fmt.Errorf("pagestore: write buffer %d != page size %d", len(data), s.pageSize)
	}
	_, err := s.f.WriteAt(data, int64(id)*int64(s.pageSize))
	return err
}

// NumPages returns the allocated page count.
func (s *FileStore) NumPages() int { return s.n }

// Close closes the underlying file.
func (s *FileStore) Close() error { return s.f.Close() }

// Stats counts cache and I/O activity.
type Stats struct {
	Hits, Misses          uint64
	PhysReads, PhysWrites uint64
	Evictions             uint64
}

// Cache is a write-through LRU page cache in front of a Store. It is
// safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	store    Store
	capacity int
	pages    map[PageID]*cacheEntry
	head     *cacheEntry // most recently used
	tail     *cacheEntry // least recently used
	stats    Stats
}

type cacheEntry struct {
	id         PageID
	data       []byte
	prev, next *cacheEntry
}

// NewCache wraps store with an LRU cache of capacity pages (minimum 1).
func NewCache(store Store, capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{store: store, capacity: capacity, pages: make(map[PageID]*cacheEntry, capacity)}
}

// PageSize returns the page size of the backing store.
func (c *Cache) PageSize() int { return c.store.PageSize() }

// NumPages returns the backing store's page count.
func (c *Cache) NumPages() int { return c.store.NumPages() }

// Alloc allocates a page in the backing store (and does not cache it:
// the caller writes it next, which inserts it).
func (c *Cache) Alloc() (PageID, error) { return c.store.Alloc() }

// Close drops the cache and closes the backing store.
func (c *Cache) Close() error {
	c.mu.Lock()
	c.pages = nil
	c.head, c.tail = nil, nil
	c.mu.Unlock()
	return c.store.Close()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() {
	c.mu.Lock()
	c.stats = Stats{}
	c.mu.Unlock()
}

// Read copies page id into buf, from cache when possible.
func (c *Cache) Read(id PageID, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.pages[id]; ok {
		c.stats.Hits++
		c.touch(e)
		copy(buf, e.data)
		return nil
	}
	c.stats.Misses++
	c.stats.PhysReads++
	data := make([]byte, c.store.PageSize())
	if err := c.store.Read(id, data); err != nil {
		return err
	}
	c.insert(id, data)
	copy(buf, data)
	return nil
}

// Write stores the page write-through and refreshes the cached copy.
func (c *Cache) Write(id PageID, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.PhysWrites++
	if err := c.store.Write(id, data); err != nil {
		return err
	}
	if e, ok := c.pages[id]; ok {
		copy(e.data, data)
		c.touch(e)
		return nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.insert(id, cp)
	return nil
}

// insert adds a fresh entry at the head, evicting the tail if needed.
// Callers hold the lock.
func (c *Cache) insert(id PageID, data []byte) {
	e := &cacheEntry{id: id, data: data}
	c.pushFront(e)
	c.pages[id] = e
	if len(c.pages) > c.capacity {
		victim := c.tail
		c.unlink(victim)
		delete(c.pages, victim.id)
		c.stats.Evictions++
	}
}

// touch moves an entry to the head. Callers hold the lock.
func (c *Cache) touch(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Len returns the number of cached pages.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pages)
}
