package pagestore

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

func testStoreBasics(t *testing.T, s Store) {
	t.Helper()
	if s.NumPages() != 0 {
		t.Fatalf("fresh store has %d pages", s.NumPages())
	}
	ids := make([]PageID, 10)
	for i := range ids {
		id, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if int(id) != i {
			t.Fatalf("Alloc returned %d, want %d", id, i)
		}
	}
	// Fresh pages read back zeroed.
	buf := make([]byte, s.PageSize())
	if err := s.Read(ids[3], buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fresh page not zeroed")
		}
	}
	// Round trip distinct contents.
	for i, id := range ids {
		data := bytes.Repeat([]byte{byte(i + 1)}, s.PageSize())
		if err := s.Write(id, data); err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		if err := s.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) || buf[len(buf)-1] != byte(i+1) {
			t.Fatalf("page %d content corrupted", id)
		}
	}
	// Out of range and size mismatches rejected.
	if err := s.Read(PageID(99), buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read OOR error = %v", err)
	}
	if err := s.Write(PageID(99), buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write OOR error = %v", err)
	}
	if err := s.Read(ids[0], make([]byte, 3)); err == nil {
		t.Fatal("short read buffer accepted")
	}
	if err := s.Write(ids[0], make([]byte, 3)); err == nil {
		t.Fatal("short write buffer accepted")
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore(512)
	if s.PageSize() != 512 {
		t.Fatal("page size")
	}
	testStoreBasics(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemStoreDefaultPageSize(t *testing.T) {
	if NewMemStore(0).PageSize() != DefaultPageSize {
		t.Fatal("default page size")
	}
}

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := NewFileStore(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	testStoreBasics(t, s)
}

func TestCacheHitsAndMisses(t *testing.T) {
	s := NewMemStore(256)
	c := NewCache(s, 4)
	ids := make([]PageID, 8)
	buf := make([]byte, 256)
	for i := range ids {
		id, _ := c.Alloc()
		ids[i] = id
		data := bytes.Repeat([]byte{byte(i)}, 256)
		if err := c.Write(id, data); err != nil {
			t.Fatal(err)
		}
	}
	// All 8 written through; cache holds the last 4.
	if got := c.Stats().PhysWrites; got != 8 {
		t.Fatalf("PhysWrites = %d", got)
	}
	if c.Len() != 4 {
		t.Fatalf("cache len = %d", c.Len())
	}
	c.ResetStats()
	// Reading the last 4 hits; the first 4 miss.
	for i := 4; i < 8; i++ {
		c.Read(ids[i], buf)
		if buf[0] != byte(i) {
			t.Fatalf("content %d", i)
		}
	}
	st := c.Stats()
	if st.Hits != 4 || st.Misses != 0 {
		t.Fatalf("hot reads: %+v", st)
	}
	for i := 0; i < 4; i++ {
		c.Read(ids[i], buf)
		if buf[0] != byte(i) {
			t.Fatalf("content %d", i)
		}
	}
	st = c.Stats()
	if st.Misses != 4 || st.PhysReads != 4 {
		t.Fatalf("cold reads: %+v", st)
	}
	if st.Evictions != 4 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	s := NewMemStore(64)
	c := NewCache(s, 2)
	a, _ := c.Alloc()
	b, _ := c.Alloc()
	d, _ := c.Alloc()
	page := make([]byte, 64)
	c.Write(a, page)
	c.Write(b, page) // cache: {b, a}
	c.Read(a, page)  // touch a: {a, b}
	c.Write(d, page) // evicts b: {d, a}
	c.ResetStats()
	c.Read(a, page)
	c.Read(d, page)
	if st := c.Stats(); st.Misses != 0 {
		t.Fatalf("a/d should be cached: %+v", st)
	}
	c.Read(b, page)
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("b should have been evicted: %+v", st)
	}
}

func TestCacheWriteThroughConsistency(t *testing.T) {
	s := NewMemStore(64)
	c := NewCache(s, 2)
	id, _ := c.Alloc()
	data := bytes.Repeat([]byte{7}, 64)
	c.Write(id, data)
	// The backing store sees the write immediately.
	raw := make([]byte, 64)
	if err := s.Read(id, raw); err != nil || raw[0] != 7 {
		t.Fatalf("write-through failed: %v %d", err, raw[0])
	}
	// Update through cache; read back via cache and store agree.
	data[0] = 9
	c.Write(id, data)
	c.Read(id, raw)
	if raw[0] != 9 {
		t.Fatal("cached copy stale")
	}
	s.Read(id, raw)
	if raw[0] != 9 {
		t.Fatal("store copy stale")
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := NewCache(NewMemStore(64), 0)
	id, _ := c.Alloc()
	c.Write(id, make([]byte, 64))
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	s := NewMemStore(128)
	c := NewCache(s, 8)
	ids := make([]PageID, 32)
	for i := range ids {
		id, _ := c.Alloc()
		ids[i] = id
		data := bytes.Repeat([]byte{byte(i)}, 128)
		c.Write(id, data)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, 128)
			for i := 0; i < 2000; i++ {
				j := rng.Intn(len(ids))
				if err := c.Read(ids[j], buf); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if buf[0] != byte(j) {
					t.Errorf("page %d content %d", j, buf[0])
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := NewFileStore(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Alloc()
	want := bytes.Repeat([]byte{42}, 256)
	s.Write(id, want)
	s.Close()
	// Reopen read-only via os-level check: the file must contain the page.
	s2, err := NewFileStore(filepath.Join(t.TempDir(), "other.db"), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// (NewFileStore truncates, so verify the original file's bytes directly.)
	raw, err := readFileRange(path, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatal("file contents lost")
	}
}

func readFileRange(path string, off, n int) ([]byte, error) {
	b := make([]byte, n)
	f, err := openRead(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	_, err = f.ReadAt(b, int64(off))
	return b, err
}
