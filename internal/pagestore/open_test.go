package pagestore

import "os"

// openRead opens a file for reading in tests.
func openRead(path string) (*os.File, error) { return os.Open(path) }
