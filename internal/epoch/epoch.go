// Package epoch implements epoch-based reclamation bookkeeping for the
// index's copy-on-write node publication. Restructures replace a node's
// storage behind an atomic pointer; the unpublished original may still
// be referenced by lock-free readers mid-probe and by pinned snapshots,
// so it cannot be recycled immediately. Instead the writer *retires* it
// into the current epoch, and snapshot readers *pin* the epoch they
// started in; a retired object becomes reclaimable once every pin from
// its epoch or earlier has been released.
//
// In Go the garbage collector performs the actual freeing — a retired
// object with no remaining references is collected regardless of this
// package. What the manager adds is determinism and observability: the
// retired list holds the only strong reference the index keeps to
// unpublished structures, so dropping an entry makes the object
// collectable at a known point (no unbounded retention while snapshots
// churn), and Stats exposes how much the epoch machinery is holding —
// the "no GC-pressure cliff" guarantee is measurable instead of
// assumed.
package epoch

import "sync"

// Manager tracks the global epoch, pinned readers, and retired objects
// for one index. All methods are safe for concurrent use.
type Manager struct {
	mu       sync.Mutex
	current  uint64
	pins     map[uint64]int // epoch -> active pins
	retired  []entry
	reclaims uint64
}

type entry struct {
	epoch uint64
	obj   any
}

// New returns a manager at epoch 0 with nothing pinned or retired.
func New() *Manager {
	return &Manager{pins: make(map[uint64]int)}
}

// Pin records a reader entering the current epoch (a snapshot being
// taken) and returns the pinned epoch, to be passed to Unpin when the
// reader is done. Pinning advances the global epoch, so objects retired
// after the pin land in a later epoch and are never held back by it
// longer than necessary.
func (m *Manager) Pin() uint64 {
	m.mu.Lock()
	e := m.current
	m.pins[e]++
	m.current++
	m.mu.Unlock()
	return e
}

// Unpin releases a pin taken with Pin and reclaims every retired object
// whose epoch is no longer protected.
func (m *Manager) Unpin(e uint64) {
	m.mu.Lock()
	if n := m.pins[e]; n > 1 {
		m.pins[e] = n - 1
	} else {
		delete(m.pins, e)
	}
	m.reclaimLocked()
	m.mu.Unlock()
}

// Retire hands an unpublished object to the manager, stamped with the
// current epoch. The object is kept reachable until every pin at or
// after its stamp is released, then dropped for the garbage collector.
// A nil obj is ignored.
func (m *Manager) Retire(obj any) {
	if obj == nil {
		return
	}
	m.mu.Lock()
	m.retired = append(m.retired, entry{epoch: m.current, obj: obj})
	if len(m.pins) == 0 {
		// Nothing pinned: the retired list only exists to outlive pins,
		// so reclaim eagerly instead of accumulating.
		m.reclaimLocked()
	}
	m.mu.Unlock()
}

// minPinnedLocked returns the smallest pinned epoch and whether any pin
// is active. Callers hold m.mu.
func (m *Manager) minPinnedLocked() (uint64, bool) {
	var min uint64
	found := false
	for e := range m.pins {
		if !found || e < min {
			min = e
			found = true
		}
	}
	return min, found
}

// reclaimLocked drops every retired entry no pin can still observe: an
// object retired in epoch E was published-out after every pin < E... —
// precisely, a pin taken at epoch P observes objects live at P, which
// includes anything retired at epoch >= P. An entry is therefore safe
// once minPinned > entry.epoch, or unconditionally when nothing is
// pinned. Callers hold m.mu.
func (m *Manager) reclaimLocked() {
	min, pinned := m.minPinnedLocked()
	kept := m.retired[:0]
	for _, e := range m.retired {
		if pinned && e.epoch >= min {
			kept = append(kept, e)
			continue
		}
		m.reclaims++
	}
	// Zero the freed tail so the backing array drops its references.
	for i := len(kept); i < len(m.retired); i++ {
		m.retired[i] = entry{}
	}
	m.retired = kept
}

// Stats reports the manager's state: the current epoch, active pins,
// objects still held on the retired list, and objects reclaimed so far.
func (m *Manager) Stats() (current uint64, pins int, retired int, reclaimed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range m.pins {
		pins += n
	}
	return m.current, pins, len(m.retired), m.reclaims
}
