package epoch

import (
	"sync"
	"testing"
)

func TestRetireWithoutPinsReclaimsEagerly(t *testing.T) {
	m := New()
	for i := 0; i < 10; i++ {
		m.Retire(i)
	}
	_, pins, retired, reclaimed := m.Stats()
	if pins != 0 || retired != 0 || reclaimed != 10 {
		t.Fatalf("pins=%d retired=%d reclaimed=%d, want 0/0/10", pins, retired, reclaimed)
	}
}

func TestPinHoldsRetiredObjects(t *testing.T) {
	m := New()
	e := m.Pin()
	m.Retire("a") // retired at an epoch >= the pin: must be held
	m.Retire("b")
	if _, _, retired, reclaimed := m.Stats(); retired != 2 || reclaimed != 0 {
		t.Fatalf("retired=%d reclaimed=%d before unpin, want 2/0", retired, reclaimed)
	}
	m.Unpin(e)
	if _, _, retired, reclaimed := m.Stats(); retired != 0 || reclaimed != 2 {
		t.Fatalf("retired=%d reclaimed=%d after unpin, want 0/2", retired, reclaimed)
	}
}

func TestOldPinDoesNotHoldNothingButItsView(t *testing.T) {
	m := New()
	e1 := m.Pin()
	m.Retire("seen-by-e1")
	e2 := m.Pin() // advances the epoch past the first retirement
	m.Retire("seen-by-both")
	m.Unpin(e2)
	// e1 still pinned: both retirements are at epochs >= e1, both held.
	if _, _, retired, _ := m.Stats(); retired != 2 {
		t.Fatalf("retired=%d with oldest pin held, want 2", retired)
	}
	m.Unpin(e1)
	if _, _, retired, reclaimed := m.Stats(); retired != 0 || reclaimed != 2 {
		t.Fatalf("retired=%d reclaimed=%d after all unpins, want 0/2", retired, reclaimed)
	}
}

func TestEpochConcurrentPinRetire(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				e := m.Pin()
				m.Retire(i)
				m.Unpin(e)
			}
		}()
	}
	wg.Wait()
	_, pins, retired, reclaimed := m.Stats()
	if pins != 0 {
		t.Fatalf("pins=%d after all unpins", pins)
	}
	if retired != 0 {
		t.Fatalf("retired=%d after all unpins, want 0", retired)
	}
	if reclaimed != 8000 {
		t.Fatalf("reclaimed=%d, want 8000", reclaimed)
	}
}
