package gapped

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildSorted(n int, seed int64) ([]float64, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[float64]bool, n)
	keys := make([]float64, 0, n)
	for len(keys) < n {
		k := rng.Float64() * 1e6
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Float64s(keys)
	payloads := make([]uint64, n)
	for i := range payloads {
		payloads[i] = uint64(i) + 1
	}
	return keys, payloads
}

func TestBulkLoadAndLookup(t *testing.T) {
	keys, payloads := buildSorted(5000, 1)
	a := NewFromSorted(keys, payloads, Config{})
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if a.Num() != len(keys) {
		t.Fatalf("Num = %d, want %d", a.Num(), len(keys))
	}
	for i, k := range keys {
		v, ok := a.Lookup(k)
		if !ok || v != payloads[i] {
			t.Fatalf("Lookup(%v) = (%v, %v), want (%v, true)", k, v, ok, payloads[i])
		}
	}
	if _, ok := a.Lookup(-1); ok {
		t.Fatal("lookup of absent key succeeded")
	}
	if _, ok := a.Lookup(2e6); ok {
		t.Fatal("lookup beyond max succeeded")
	}
}

func TestBulkLoadDensity(t *testing.T) {
	keys, payloads := buildSorted(10000, 2)
	a := NewFromSorted(keys, payloads, Config{Density: 0.8})
	want := float64(len(keys)) / (0.8 * 0.8)
	if got := float64(a.Cap()); got < want || got > want+2 {
		t.Fatalf("capacity %v, want ~%v (density d²)", got, want)
	}
}

func TestInsertIntoEmpty(t *testing.T) {
	a := New(Config{})
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	keys := []float64{5, 3, 9, 1, 7, 2, 8, 4, 6, 0}
	for i, k := range keys {
		if !a.Insert(k, uint64(i)) {
			t.Fatalf("Insert(%v) returned false", k)
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("after Insert(%v): %v", k, err)
		}
	}
	for i, k := range keys {
		if v, ok := a.Lookup(k); !ok || v != uint64(i) {
			t.Fatalf("Lookup(%v) = (%v,%v)", k, v, ok)
		}
	}
}

func TestInsertDuplicateOverwrites(t *testing.T) {
	a := New(Config{})
	if !a.Insert(42, 1) {
		t.Fatal("first insert")
	}
	if a.Insert(42, 2) {
		t.Fatal("duplicate insert should return false")
	}
	if v, _ := a.Lookup(42); v != 2 {
		t.Fatalf("payload after duplicate insert = %d, want 2", v)
	}
	if a.Num() != 1 {
		t.Fatalf("Num = %d, want 1", a.Num())
	}
}

func TestInsertNonFinitePanics(t *testing.T) {
	a := New(Config{})
	for _, k := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Insert(%v) did not panic", k)
				}
			}()
			a.Insert(k, 0)
		}()
	}
}

func TestDensityLimitMaintained(t *testing.T) {
	a := New(Config{Density: 0.75})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		a.Insert(rng.Float64()*1e9, uint64(i))
		if d := a.Density(); a.Cap() > 8 && d > 0.75+1e-9 {
			t.Fatalf("density %v exceeds limit after %d inserts", d, i+1)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if a.Stats.Expands == 0 {
		t.Fatal("no expansions recorded")
	}
}

func TestDeleteAndContract(t *testing.T) {
	keys, payloads := buildSorted(8000, 4)
	a := NewFromSorted(keys, payloads, Config{})
	capBefore := a.Cap()
	for _, k := range keys[:7600] {
		if !a.Delete(k) {
			t.Fatalf("Delete(%v) failed", k)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if a.Cap() >= capBefore {
		t.Fatalf("no contraction: cap %d -> %d", capBefore, a.Cap())
	}
	if a.Stats.Contracts == 0 {
		t.Fatal("contraction not counted")
	}
	for _, k := range keys[7600:] {
		if _, ok := a.Lookup(k); !ok {
			t.Fatalf("surviving key %v lost after contraction", k)
		}
	}
	if a.Delete(keys[0]) {
		t.Fatal("deleting absent key succeeded")
	}
}

func TestDeleteAllThenReinsert(t *testing.T) {
	a := New(Config{})
	for i := 0; i < 100; i++ {
		a.Insert(float64(i), uint64(i))
	}
	for i := 0; i < 100; i++ {
		if !a.Delete(float64(i)) {
			t.Fatalf("Delete(%d)", i)
		}
	}
	if a.Num() != 0 {
		t.Fatalf("Num = %d after deleting all", a.Num())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a.Insert(float64(i)+0.5, uint64(i))
	}
	if a.Num() != 50 {
		t.Fatalf("Num = %d after reinsert", a.Num())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdate(t *testing.T) {
	a := New(Config{})
	a.Insert(1, 10)
	if !a.Update(1, 99) {
		t.Fatal("Update existing failed")
	}
	if v, _ := a.Lookup(1); v != 99 {
		t.Fatalf("payload = %d", v)
	}
	if a.Update(2, 0) {
		t.Fatal("Update of absent key succeeded")
	}
}

func TestScanFrom(t *testing.T) {
	keys, payloads := buildSorted(2000, 5)
	a := NewFromSorted(keys, payloads, Config{})
	// Scan 100 elements from the 500th key.
	var got []float64
	a.ScanFrom(keys[500], func(k float64, v uint64) bool {
		got = append(got, k)
		return len(got) < 100
	})
	if len(got) != 100 {
		t.Fatalf("scan visited %d, want 100", len(got))
	}
	for i, k := range got {
		if k != keys[500+i] {
			t.Fatalf("scan[%d] = %v, want %v", i, k, keys[500+i])
		}
	}
	// Scan from between keys starts at the next element.
	mid := (keys[10] + keys[11]) / 2
	var first float64 = -1
	a.ScanFrom(mid, func(k float64, v uint64) bool { first = k; return false })
	if first != keys[11] {
		t.Fatalf("scan from midpoint started at %v, want %v", first, keys[11])
	}
	// Scan past the end visits nothing.
	count := 0
	a.ScanFrom(keys[len(keys)-1]+1, func(k float64, v uint64) bool { count++; return true })
	if count != 0 {
		t.Fatalf("scan past end visited %d", count)
	}
}

func TestMinMaxKey(t *testing.T) {
	keys, payloads := buildSorted(100, 6)
	a := NewFromSorted(keys, payloads, Config{})
	if k, ok := a.MinKey(); !ok || k != keys[0] {
		t.Fatalf("MinKey = %v,%v", k, ok)
	}
	if k, ok := a.MaxKey(); !ok || k != keys[99] {
		t.Fatalf("MaxKey = %v,%v", k, ok)
	}
	e := New(Config{})
	if _, ok := e.MinKey(); ok {
		t.Fatal("MinKey on empty")
	}
}

func TestPredictionErrorAfterBulkLoad(t *testing.T) {
	// On perfectly linear data, model-based placement should give
	// near-zero prediction error (Theorem 1 / Fig 7b).
	n := 10000
	keys := make([]float64, n)
	payloads := make([]uint64, n)
	for i := range keys {
		keys[i] = float64(i) * 10
	}
	a := NewFromSorted(keys, payloads, Config{})
	var sum int
	for _, k := range keys {
		e, ok := a.PredictionError(k)
		if !ok {
			t.Fatalf("key %v missing", k)
		}
		sum += e
	}
	if avg := float64(sum) / float64(n); avg > 1.0 {
		t.Fatalf("mean prediction error %v on linear data, want <= 1", avg)
	}
}

func TestFullyPackedRegions(t *testing.T) {
	// Sequential appended keys on a left-packed array produce packed runs.
	a := New(Config{})
	for i := 0; i < 1000; i++ {
		a.Insert(float64(i), uint64(i))
	}
	count, maxLen := a.FullyPackedRegions(4)
	if count == 0 && maxLen < 4 {
		t.Skip("no packed regions formed (acceptable; depends on model)")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDensityForOverhead(t *testing.T) {
	cases := []struct{ overhead, wantLo, wantHi float64 }{
		{0.43, 0.75, 0.85},
		{0.20, 0.85, 0.95},
		{1.0, 0.55, 0.65},
		{2.0, 0.40, 0.52},
	}
	for _, c := range cases {
		d := DensityForOverhead(c.overhead)
		if d < c.wantLo || d > c.wantHi {
			t.Fatalf("DensityForOverhead(%v) = %v, want in [%v,%v]", c.overhead, d, c.wantLo, c.wantHi)
		}
		// Round trip: average density (d+d²)/2 should equal 1/(1+overhead).
		avg := (d + d*d) / 2
		if math.Abs(avg-1/(1+c.overhead)) > 1e-9 {
			t.Fatalf("round trip failed for %v: avg %v", c.overhead, avg)
		}
	}
	if d := DensityForOverhead(0); d != 1 {
		t.Fatalf("zero overhead density = %v", d)
	}
}

// Property test: a gapped array under a random workload of inserts,
// deletes, updates and lookups behaves exactly like a sorted map.
func TestQuickAgainstReferenceMap(t *testing.T) {
	type op struct {
		Kind    uint8
		Key     uint16
		Payload uint64
	}
	f := func(ops []op) bool {
		a := New(Config{Density: 0.7})
		ref := make(map[float64]uint64)
		for _, o := range ops {
			k := float64(o.Key % 512) // force collisions and re-inserts
			switch o.Kind % 4 {
			case 0:
				ins := a.Insert(k, o.Payload)
				_, existed := ref[k]
				if ins == existed {
					t.Logf("insert mismatch at key %v: ins=%v existed=%v", k, ins, existed)
					return false
				}
				ref[k] = o.Payload
			case 1:
				del := a.Delete(k)
				_, existed := ref[k]
				if del != existed {
					return false
				}
				delete(ref, k)
			case 2:
				upd := a.Update(k, o.Payload)
				_, existed := ref[k]
				if upd != existed {
					return false
				}
				if existed {
					ref[k] = o.Payload
				}
			case 3:
				v, ok := a.Lookup(k)
				want, existed := ref[k]
				if ok != existed || (ok && v != want) {
					return false
				}
			}
		}
		if a.Num() != len(ref) {
			return false
		}
		if err := a.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		// Full scan must enumerate the reference in sorted order.
		want := make([]float64, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Float64s(want)
		got := make([]float64, 0, len(ref))
		a.ScanFrom(math.Inf(-1), func(k float64, v uint64) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] || ref[got[i]] == 0 && false {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: shift counts stay bounded under uniform random inserts (the
// O(log n) w.h.p. claim of §3.3.1 — verified loosely as average shifts
// per insert being far below n).
func TestShiftsBoundedUnderUniformInserts(t *testing.T) {
	a := New(Config{})
	rng := rand.New(rand.NewSource(9))
	n := 50000
	for i := 0; i < n; i++ {
		a.Insert(rng.Float64(), uint64(i))
	}
	perInsert := float64(a.Stats.Shifts) / float64(n)
	if perInsert > 50 {
		t.Fatalf("average shifts per uniform insert = %v, want small", perInsert)
	}
}

func BenchmarkInsertUniform(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	a := New(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Insert(rng.Float64()*1e12, uint64(i))
	}
}

func BenchmarkLookup(b *testing.B) {
	keys, payloads := buildSorted(1<<17, 11)
	a := NewFromSorted(keys, payloads, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Lookup(keys[i&(len(keys)-1)])
	}
}
