package gapped

import (
	"math"
	"testing"
)

// FuzzArrayOps drives a gapped array with byte-decoded operations and
// cross-checks a map plus the full invariant set after every few ops.
func FuzzArrayOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, 0.8)
	f.Add([]byte{9, 9, 9, 9}, 0.5)
	f.Add([]byte{0, 255, 0, 255, 128, 128}, 0.95)
	f.Fuzz(func(t *testing.T, data []byte, density float64) {
		if math.IsNaN(density) {
			density = 0.8
		}
		a := New(Config{Density: density})
		ref := make(map[float64]uint64)
		for i := 0; i+1 < len(data); i += 2 {
			k := float64(data[i+1])
			switch data[i] % 3 {
			case 0:
				ins := a.Insert(k, uint64(i))
				if _, existed := ref[k]; existed == ins {
					t.Fatalf("insert(%v) = %v, existed %v", k, ins, existed)
				}
				ref[k] = uint64(i)
			case 1:
				_, existed := ref[k]
				if a.Delete(k) != existed {
					t.Fatalf("delete(%v) disagreed", k)
				}
				delete(ref, k)
			case 2:
				v, ok := a.Lookup(k)
				want, existed := ref[k]
				if ok != existed || (ok && v != want) {
					t.Fatalf("lookup(%v) = (%v,%v), want (%v,%v)", k, v, ok, want, existed)
				}
			}
		}
		if a.Num() != len(ref) {
			t.Fatalf("Num %d != %d", a.Num(), len(ref))
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
