// Package gapped implements ALEX's Gapped Array data node layout
// (§3.3.1, Algorithm 1): a model-based array whose gaps are distributed
// "naturally" by inserting each key at the position its linear model
// predicts. When the density of the array reaches the upper limit d, the
// array expands by a factor of 1/d, retrains its model, and re-inserts
// every element model-based (Algorithm 3), restoring density d².
//
// The layout is search-optimized: keys sit at (or very near) their
// predicted positions, so exponential search terminates in a few probes.
// Its weakness is the fully-packed region (Fig 3): worst-case O(n)
// shifts when the model crams many keys into one contiguous run.
package gapped

import (
	"fmt"
	"math"

	"repro/internal/leafbase"
)

// DefaultDensity is the upper density limit d tuned, per §5.1, so that
// data storage overhead is around 43%, comparable to a B+Tree: densities
// cycle in [d², d] with d = 0.8, averaging ≈0.72 occupancy.
const DefaultDensity = 0.8

// minCapacity keeps degenerate nodes from thrashing expansions.
const minCapacity = 4

// Config parameterizes a gapped array node.
type Config struct {
	// Density is the upper density limit d in (0, 1]. The array expands
	// by 1/d when an insert would cross it; initial and post-expansion
	// density is d².
	Density float64
	// LowDensity, when > 0, triggers contraction after deletes once the
	// density falls below it. Defaults to d²/4.
	LowDensity float64
}

func (c Config) withDefaults() Config {
	if c.Density <= 0 || c.Density > 1 {
		c.Density = DefaultDensity
	}
	if c.LowDensity <= 0 {
		c.LowDensity = c.Density * c.Density / 4
	}
	if c.LowDensity >= c.Density*c.Density {
		c.LowDensity = c.Density * c.Density / 2
	}
	return c
}

// DensityForOverhead returns the density limit d that yields the given
// average data space overhead (Fig 10): overhead 0.43 means allocated
// space ≈ 1.43× the minimum, i.e. average density 1/1.43. Densities
// cycle between d² (fresh) and d (full), so the average is (d+d²)/2.
func DensityForOverhead(overhead float64) float64 {
	if overhead <= 0 {
		return 1
	}
	target := 1 / (1 + overhead) // desired average density
	// Solve (d + d²)/2 = target for d in (0, 1].
	d := (math.Sqrt(1+8*target) - 1) / 2
	if d > 1 {
		d = 1
	}
	if d < 0.05 {
		d = 0.05
	}
	return d
}

// Array is a gapped array data node. The zero value is unusable; use New
// or NewFromSorted.
type Array struct {
	leafbase.Base
	cfg Config
}

// New returns an empty gapped array.
func New(cfg Config) *Array {
	a := &Array{cfg: cfg.withDefaults()}
	a.Base.Init(minCapacity)
	return a
}

// NewFromSorted bulk-loads a node from sorted unique keys. The initial
// capacity is n/d² (§3.3.1: "allocating an array of length c*n such that
// the density is also d²").
func NewFromSorted(keys []float64, payloads []uint64, cfg Config) *Array {
	a := &Array{cfg: cfg.withDefaults()}
	a.Base.BuildFromSorted(keys, payloads, a.initialCapacity(len(keys)))
	return a
}

func (a *Array) initialCapacity(n int) int {
	d2 := a.cfg.Density * a.cfg.Density
	capacity := int(math.Ceil(float64(n) / d2))
	if capacity < minCapacity {
		capacity = minCapacity
	}
	return capacity
}

// Config returns the node's configuration.
func (a *Array) Config() Config { return a.cfg }

// Insert adds key with payload, expanding first if the insert would cross
// the density limit (Algorithm 1). It reports whether a new element was
// added; inserting an existing key overwrites its payload and returns
// false.
func (a *Array) Insert(key float64, payload uint64) bool {
	if math.IsNaN(key) || math.IsInf(key, 0) {
		panic("gapped: key must be finite")
	}
	if float64(a.NumKeys+1) > a.cfg.Density*float64(a.Cap()) {
		a.Expand()
	}
	switch a.PlaceModelBased(key, payload, 0, a.Cap()) {
	case leafbase.Inserted:
		return true
	case leafbase.Duplicate:
		return false
	default:
		// Full despite the density check (tiny nodes): force an expansion.
		a.Expand()
		if a.PlaceModelBased(key, payload, 0, a.Cap()) == leafbase.NeedRoom {
			panic("gapped: insert failed after expansion")
		}
		return true
	}
}

// Expand grows the array by 1/d and redistributes all elements
// model-based (Algorithm 3), restoring density to about d².
func (a *Array) Expand() {
	newCap := int(math.Ceil(float64(a.Cap()) / a.cfg.Density))
	if newCap <= a.Cap() {
		newCap = a.Cap() + 1
	}
	a.Stats.Expands++
	a.RebuildModelBased(newCap)
}

// Retrain rebuilds the node at the bulk-load capacity (density d²) with
// a fresh model — the §4 cost-model action the tree takes when the
// node's prediction-error bound says searches have drifted (see
// leafbase.RetrainAdvised). It is exactly the rebuild an expansion
// performs, minus the growth.
func (a *Array) Retrain() {
	a.RebuildModelBased(a.initialCapacity(a.NumKeys))
}

// Delete removes key; when the density drops below the lower bound the
// node contracts back to density d² (§3.2: "nodes can also contract upon
// deletes, and the models are retrained in the same way").
func (a *Array) Delete(key float64) bool {
	if !a.Base.Delete(key) {
		return false
	}
	if a.Cap() > minCapacity && a.Density() < a.cfg.LowDensity {
		a.Stats.Contracts++
		a.RebuildModelBased(a.initialCapacity(a.NumKeys))
	}
	return true
}

// FullyPackedRegions returns the number and maximum length of maximal
// gap-free runs of at least minRun occupied slots — the pathology of
// Fig 3 that makes worst-case inserts O(n).
func (a *Array) FullyPackedRegions(minRun int) (count, maxLen int) {
	run := 0
	for i := 0; i < a.Cap(); i++ {
		if a.Occ.Test(i) {
			run++
			continue
		}
		if run >= minRun {
			count++
		}
		if run > maxLen {
			maxLen = run
		}
		run = 0
	}
	if run >= minRun {
		count++
	}
	if run > maxLen {
		maxLen = run
	}
	return count, maxLen
}

// CheckInvariants verifies base invariants plus the density limit.
func (a *Array) CheckInvariants() error {
	if err := a.Base.CheckInvariants(); err != nil {
		return err
	}
	if a.Cap() > minCapacity && a.NumKeys > 0 {
		if d := a.Density(); d > a.cfg.Density+1e-9 {
			return fmt.Errorf("%w: density %.3f exceeds limit %.3f", leafbase.ErrInvariant, d, a.cfg.Density)
		}
	}
	return nil
}
