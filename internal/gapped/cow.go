package gapped

import (
	"math"

	"repro/internal/leafbase"
)

// This file holds the copy-on-write variants of the mutating
// operations, used by the tree layer for nodes published behind atomic
// pointers. The split is by reallocation, not by operation: value-only
// mutations (gap claims, shifts, payload overwrites, occupancy flips)
// happen in place on the current array — lock-free readers tolerate
// them under the seqlock protocol because every torn read is a
// single-word value, never a pointer — while any path that would
// reallocate the backing arrays (expand, contract, retrain, merge
// rebuild) instead builds a fresh Array off to the side and returns it
// for the caller to publish with one atomic store. A nil repl return
// means the receiver was mutated in place and remains the live array.
//
// The in-place methods (Insert, Expand, Retrain, ...) are kept for
// single-threaded users and tests; an Array published to concurrent
// readers must only be touched through the COW variants.

// CloneForWrite returns an unsealed deep copy of the array, the
// copy-on-write step a writer takes before first mutating a node that a
// snapshot has sealed (leafbase.Seal).
func (a *Array) CloneForWrite() *Array {
	r := &Array{cfg: a.cfg}
	a.Base.CloneInto(&r.Base)
	return r
}

// rebuiltCopy builds a fresh array holding the receiver's current
// elements at the given capacity, with a retrained model — the COW
// counterpart of RebuildModelBased. Work counters carry over so the
// republication is invisible in the stats; the rebuild itself counts a
// retrain, exactly as the in-place path would.
func (a *Array) rebuiltCopy(capacity int) *Array {
	r := &Array{cfg: a.cfg}
	r.Stats = a.Stats
	keys, payloads := a.Collect(nil, nil)
	r.Base.BuildFromSorted(keys, payloads, capacity)
	return r
}

// expandedCopy is Expand applied to a fresh copy: grow by 1/d and
// redistribute model-based, without touching the receiver.
func (a *Array) expandedCopy() *Array {
	newCap := int(math.Ceil(float64(a.Cap()) / a.cfg.Density))
	if newCap <= a.Cap() {
		newCap = a.Cap() + 1
	}
	r := a.rebuiltCopy(newCap)
	r.Stats.Expands++
	return r
}

// InsertCOW is Insert for a published node. It mirrors Insert's
// decision sequence exactly — including expanding for a key that turns
// out to be a duplicate — so the COW path reaches the same end state
// and the same stats as the in-place path.
func (a *Array) InsertCOW(key float64, payload uint64) (repl *Array, inserted bool) {
	if math.IsNaN(key) || math.IsInf(key, 0) {
		panic("gapped: key must be finite")
	}
	cur := a
	if float64(a.NumKeys+1) > a.cfg.Density*float64(a.Cap()) {
		repl = a.expandedCopy()
		cur = repl
	}
	switch cur.PlaceModelBased(key, payload, 0, cur.Cap()) {
	case leafbase.Inserted:
		return repl, true
	case leafbase.Duplicate:
		return repl, false
	default:
		// Full despite the density check (tiny nodes, or a fully packed
		// region with no usable gap): rebuild expanded and place there.
		repl = cur.expandedCopy()
		if repl.PlaceModelBased(key, payload, 0, repl.Cap()) == leafbase.NeedRoom {
			panic("gapped: insert failed after expansion")
		}
		return repl, true
	}
}

// DeleteCOW is Delete for a published node: the removal itself is a
// value-only in-place mutation; only the contraction rebuild is COW.
func (a *Array) DeleteCOW(key float64) (repl *Array, deleted bool) {
	if !a.Base.Delete(key) {
		return nil, false
	}
	if a.Cap() > minCapacity && a.Density() < a.cfg.LowDensity {
		repl = a.rebuiltCopy(a.initialCapacity(a.NumKeys))
		repl.Stats.Contracts++
	}
	return repl, true
}

// RetrainCOW is Retrain for a published node: the fresh-model rebuild
// at bulk-load capacity, built off to the side.
func (a *Array) RetrainCOW() *Array {
	return a.rebuiltCopy(a.initialCapacity(a.NumKeys))
}

// MergeSortedCOW is MergeSorted for a published node. Base.MergeSorted
// is pure (it merges into fresh slices), so the whole operation never
// touches the receiver.
func (a *Array) MergeSortedCOW(keys []float64, payloads []uint64) (repl *Array, added int) {
	checkFiniteBatch(keys)
	mk, mp, added := a.Base.MergeSorted(keys, payloads)
	r := &Array{cfg: a.cfg}
	r.Stats = a.Stats
	newCap := a.initialCapacity(len(mk))
	if newCap > a.Cap() {
		r.Stats.Expands++
	} else if newCap < a.Cap() {
		r.Stats.Contracts++
	}
	r.Base.BuildFromSorted(mk, mp, newCap)
	return r, added
}

// InsertSortedBatchCOW is InsertSortedBatch for a published node. When
// a mid-batch expansion is needed, the remainder of the batch continues
// on the (not yet published) expanded copy.
func (a *Array) InsertSortedBatchCOW(keys []float64, payloads []uint64) (repl *Array, added int) {
	if len(keys) == 0 {
		return nil, 0
	}
	checkFiniteBatch(keys)
	if float64(a.NumKeys+len(keys)) > a.cfg.Density*float64(a.Cap()) {
		return a.MergeSortedCOW(keys, payloads)
	}
	cur := a
	n := 0
	for i := range keys {
		switch cur.PlaceModelBased(keys[i], payloads[i], 0, cur.Cap()) {
		case leafbase.Inserted:
			n++
		case leafbase.Duplicate:
		default:
			repl = cur.expandedCopy()
			cur = repl
			if cur.PlaceModelBased(keys[i], payloads[i], 0, cur.Cap()) == leafbase.NeedRoom {
				panic("gapped: insert failed after expansion")
			}
			n++
		}
	}
	return repl, n
}

// DeleteSortedBatchCOW is DeleteSortedBatch for a published node:
// in-place removals, one COW contraction decision per batch.
func (a *Array) DeleteSortedBatchCOW(keys []float64) (repl *Array, deleted int) {
	n := a.DeleteSortedNoRepack(keys)
	if n > 0 && a.Cap() > minCapacity && a.Density() < a.cfg.LowDensity {
		repl = a.rebuiltCopy(a.initialCapacity(a.NumKeys))
		repl.Stats.Contracts++
	}
	return repl, n
}
