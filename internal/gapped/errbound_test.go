package gapped

import (
	"math/rand"
	"testing"

	"repro/internal/leafbase"
)

// maxTrueErr re-predicts every stored key and returns the node's actual
// maximum prediction error — the quantity ErrBound must never
// under-state.
func maxTrueErr(t *testing.T, a *Array) int {
	t.Helper()
	worst := 0
	for i := a.NextSlot(-1); i >= 0; i = a.NextSlot(i) {
		k, _ := a.At(i)
		e, ok := a.PredictionError(k)
		if !ok {
			t.Fatalf("stored key %v not found by PredictionError", k)
		}
		if e > worst {
			worst = e
		}
	}
	return worst
}

// TestErrBoundUpperBoundProperty drives a gapped array through random
// mutation sequences — inserts (gap claims and shift inserts), deletes
// with contraction, sorted batch inserts, merges, retrains — and after
// every single operation asserts by exhaustive re-prediction that the
// stored bound is a true upper bound on every key's error (the ISSUE 5
// error-bound maintenance property).
func TestErrBoundUpperBoundProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		a := New(Config{})
		check := func(op string) {
			t.Helper()
			if err := a.CheckInvariants(); err != nil {
				t.Fatalf("seed %d after %s: %v", seed, op, err)
			}
			if !a.HasModel {
				return
			}
			if worst := maxTrueErr(t, a); worst > a.ErrBound {
				t.Fatalf("seed %d after %s: true max error %d exceeds stored bound %d",
					seed, op, worst, a.ErrBound)
			}
		}
		key := func() float64 {
			// Clumped keys (narrow decimal offsets around integer bases)
			// force both gap claims and shift inserts.
			return float64(rng.Intn(200)) + float64(rng.Intn(50))/1000
		}
		for op := 0; op < 2000; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				a.Insert(key(), uint64(op))
				check("Insert")
			case 4, 5:
				a.Delete(key())
				check("Delete")
			case 6:
				keys := make([]float64, 0, 16)
				pays := make([]uint64, 0, 16)
				base := key()
				for i := 0; i < 16; i++ {
					keys = append(keys, base+float64(i)/1000)
					pays = append(pays, uint64(i))
				}
				a.InsertSortedBatch(keys, pays)
				check("InsertSortedBatch")
			case 7:
				keys := make([]float64, 0, 32)
				pays := make([]uint64, 0, 32)
				base := key()
				for i := 0; i < 32; i++ {
					keys = append(keys, base+float64(i)/500)
					pays = append(pays, uint64(i))
				}
				a.MergeSorted(keys, pays)
				check("MergeSorted")
			case 8:
				keys := []float64{key(), key(), key()}
				sortNonDecreasing(keys)
				a.DeleteSortedBatch(keys)
				check("DeleteSortedBatch")
			case 9:
				a.Retrain()
				if a.HasModel {
					// A rebuild recomputes the bound exactly: it must equal
					// the true maximum, not merely bound it.
					if worst := maxTrueErr(t, a); worst != a.ErrBound {
						t.Fatalf("seed %d after Retrain: bound %d != true max error %d",
							seed, a.ErrBound, worst)
					}
				}
				check("Retrain")
			}
		}
		if a.HasModel && a.ErrBound > costRetrainErrForTest {
			// Not an invariant violation, just a sanity signal that the
			// clumped workload exercised the high-error regime too.
			t.Logf("seed %d: final bound %d (high-error regime reached)", seed, a.ErrBound)
		}
	}
}

// costRetrainErrForTest mirrors leafbase's drift threshold for the
// regime log above.
const costRetrainErrForTest = 4 * leafbase.BoundedSearchMaxErr

func sortNonDecreasing(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
