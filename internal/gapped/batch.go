package gapped

import (
	"math"

	"repro/internal/leafbase"
)

// InsertSortedBatch adds a non-decreasing batch of keys in one pass,
// reporting how many were new (existing keys have their payloads
// overwritten). The expansion decision is made once for the whole
// batch: a batch that would cross the density limit triggers a single
// merge rebuild — one retrain and one model-based placement pass —
// instead of one expansion per crossing, and a batch that fits is
// placed element by element with no density checks at all.
func (a *Array) InsertSortedBatch(keys []float64, payloads []uint64) int {
	if len(keys) == 0 {
		return 0
	}
	checkFiniteBatch(keys)
	if float64(a.NumKeys+len(keys)) > a.cfg.Density*float64(a.Cap()) {
		return a.MergeSorted(keys, payloads)
	}
	n := 0
	for i := range keys {
		switch a.PlaceModelBased(keys[i], payloads[i], 0, a.Cap()) {
		case leafbase.Inserted:
			n++
		case leafbase.Duplicate:
		default:
			// Below the density limit yet out of usable gaps (a fully
			// packed region, Fig 3): expand once and retry, failing as
			// loudly as the single-key path would.
			a.Expand()
			if a.PlaceModelBased(keys[i], payloads[i], 0, a.Cap()) == leafbase.NeedRoom {
				panic("gapped: insert failed after expansion")
			}
			n++
		}
	}
	return n
}

// MergeSorted bulk-merges a non-decreasing batch into the node: the
// existing elements and the batch are merged into one sorted run and
// the node is rebuilt at the bulk-load capacity (density d²) with a
// single retrain, exactly as NewFromSorted would build it. It returns
// the number of keys that were not already present.
func (a *Array) MergeSorted(keys []float64, payloads []uint64) int {
	checkFiniteBatch(keys)
	mk, mp, added := a.Base.MergeSorted(keys, payloads)
	newCap := a.initialCapacity(len(mk))
	if newCap > a.Cap() {
		a.Stats.Expands++
	} else if newCap < a.Cap() {
		a.Stats.Contracts++
	}
	a.Base.BuildFromSorted(mk, mp, newCap)
	return added
}

// DeleteSortedBatch removes a non-decreasing batch of keys, reporting
// how many were present. The contraction decision is made once per
// batch rather than once per key.
func (a *Array) DeleteSortedBatch(keys []float64) int {
	n := a.DeleteSortedNoRepack(keys)
	if n > 0 && a.Cap() > minCapacity && a.Density() < a.cfg.LowDensity {
		a.Stats.Contracts++
		a.RebuildModelBased(a.initialCapacity(a.NumKeys))
	}
	return n
}

// checkFiniteBatch guards batch entry points the way Insert guards its
// single key.
func checkFiniteBatch(keys []float64) {
	for _, k := range keys {
		if math.IsNaN(k) || math.IsInf(k, 0) {
			panic("gapped: key must be finite")
		}
	}
}
