// Package bitmapx implements the occupancy bitmap ALEX keeps per data
// node (§5.2.3): one bit per array slot marking whether the slot holds a
// real element or a gap. Range scans walk the bitmap to skip gaps, and
// inserts use NextClear/PrevClear to locate the closest gap when a shift
// is needed.
//
// The implementation is a plain []uint64 with word-at-a-time scans using
// math/bits, so skipping long runs of gaps (or long runs of elements)
// costs one trailing-zeros instruction per 64 slots.
package bitmapx

import "math/bits"

// Bitmap is a fixed-capacity bitset. The zero value is an empty bitmap of
// capacity 0; use New for a sized one.
type Bitmap struct {
	words []uint64
	n     int // capacity in bits
	count int // number of set bits, maintained incrementally
}

// New returns a bitmap able to hold n bits, all initially clear.
func New(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Clone returns a deep copy of the bitmap. Copy-on-write node rebuilds
// use it to duplicate a sealed node's occupancy before mutating the
// copy.
func (b *Bitmap) Clone() *Bitmap {
	return &Bitmap{words: append([]uint64(nil), b.words...), n: b.n, count: b.count}
}

// Len returns the capacity in bits.
func (b *Bitmap) Len() int { return b.n }

// Count returns the number of set bits.
func (b *Bitmap) Count() int { return b.count }

// SizeBytes returns the allocated size of the bitmap storage, for the
// paper's data-size accounting.
func (b *Bitmap) SizeBytes() int { return len(b.words) * 8 }

// Test reports whether bit i is set. Out-of-range i reports false.
func (b *Bitmap) Test(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i. It panics if i is out of range.
func (b *Bitmap) Set(i int) {
	if i < 0 || i >= b.n {
		panic("bitmapx: Set out of range")
	}
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.count++
	}
}

// Clear clears bit i. It panics if i is out of range.
func (b *Bitmap) Clear(i int) {
	if i < 0 || i >= b.n {
		panic("bitmapx: Clear out of range")
	}
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b.words[w]&m != 0 {
		b.words[w] &^= m
		b.count--
	}
}

// Reset clears every bit without reallocating.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.count = 0
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// none exists. i may be any value; negative i starts from 0.
func (b *Bitmap) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	w := i >> 6
	cur := b.words[w] >> (uint(i) & 63)
	if cur != 0 {
		return i + bits.TrailingZeros64(cur)
	}
	for w++; w < len(b.words); w++ {
		if b.words[w] != 0 {
			return w<<6 + bits.TrailingZeros64(b.words[w])
		}
	}
	return -1
}

// PrevSet returns the index of the last set bit at or before i, or -1.
// i values beyond the capacity are clamped to the last bit.
func (b *Bitmap) PrevSet(i int) int {
	if i >= b.n {
		i = b.n - 1
	}
	if i < 0 {
		return -1
	}
	w := i >> 6
	cur := b.words[w] << (63 - uint(i)&63)
	if cur != 0 {
		return i - bits.LeadingZeros64(cur)
	}
	for w--; w >= 0; w-- {
		if b.words[w] != 0 {
			return w<<6 + 63 - bits.LeadingZeros64(b.words[w])
		}
	}
	return -1
}

// NextClear returns the index of the first clear bit at or after i within
// the capacity, or -1 if every bit in [i, Len) is set.
func (b *Bitmap) NextClear(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	w := i >> 6
	cur := ^b.words[w] >> (uint(i) & 63)
	if cur != 0 {
		j := i + bits.TrailingZeros64(cur)
		if j < b.n {
			return j
		}
		return -1
	}
	for w++; w < len(b.words); w++ {
		if ^b.words[w] != 0 {
			j := w<<6 + bits.TrailingZeros64(^b.words[w])
			if j < b.n {
				return j
			}
			return -1
		}
	}
	return -1
}

// PrevClear returns the index of the last clear bit at or before i, or -1.
func (b *Bitmap) PrevClear(i int) int {
	if i >= b.n {
		i = b.n - 1
	}
	if i < 0 {
		return -1
	}
	w := i >> 6
	cur := ^b.words[w] << (63 - uint(i)&63)
	if cur != 0 {
		return i - bits.LeadingZeros64(cur)
	}
	for w--; w >= 0; w-- {
		if ^b.words[w] != 0 {
			return w<<6 + 63 - bits.LeadingZeros64(^b.words[w])
		}
	}
	return -1
}

// CountRange returns the number of set bits in [lo, hi).
func (b *Bitmap) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	if lo >= hi {
		return 0
	}
	wLo, wHi := lo>>6, (hi-1)>>6
	if wLo == wHi {
		mask := (^uint64(0) >> (uint(lo) & 63) << (uint(lo) & 63))
		mask &= ^uint64(0) >> (63 - uint(hi-1)&63)
		return bits.OnesCount64(b.words[wLo] & mask)
	}
	total := bits.OnesCount64(b.words[wLo] >> (uint(lo) & 63))
	for w := wLo + 1; w < wHi; w++ {
		total += bits.OnesCount64(b.words[w])
	}
	total += bits.OnesCount64(b.words[wHi] << (63 - uint(hi-1)&63))
	return total
}
