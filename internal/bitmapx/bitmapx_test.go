package bitmapx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// reference is a naive bool-slice implementation used to cross-check.
type reference []bool

func (r reference) nextSet(i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < len(r); i++ {
		if r[i] {
			return i
		}
	}
	return -1
}

func (r reference) prevSet(i int) int {
	if i >= len(r) {
		i = len(r) - 1
	}
	for ; i >= 0; i-- {
		if r[i] {
			return i
		}
	}
	return -1
}

func (r reference) nextClear(i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < len(r); i++ {
		if !r[i] {
			return i
		}
	}
	return -1
}

func (r reference) prevClear(i int) int {
	if i >= len(r) {
		i = len(r) - 1
	}
	for ; i >= 0; i-- {
		if !r[i] {
			return i
		}
	}
	return -1
}

func (r reference) countRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(r) {
		hi = len(r)
	}
	c := 0
	for i := lo; i < hi; i++ {
		if r[i] {
			c++
		}
	}
	return c
}

func TestBasicSetClearTest(t *testing.T) {
	b := New(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitmap Len=%d Count=%d", b.Len(), b.Count())
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Test(0) || !b.Test(64) || !b.Test(129) || b.Test(1) {
		t.Fatal("Test after Set wrong")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	b.Set(64) // idempotent
	if b.Count() != 3 {
		t.Fatalf("double-set Count = %d", b.Count())
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 2 {
		t.Fatalf("after Clear: Test=%v Count=%d", b.Test(64), b.Count())
	}
	b.Clear(64) // idempotent
	if b.Count() != 2 {
		t.Fatalf("double-clear Count = %d", b.Count())
	}
	if b.Test(-1) || b.Test(1000) {
		t.Fatal("out-of-range Test must be false")
	}
}

func TestPanicsOnOutOfRange(t *testing.T) {
	b := New(10)
	for _, f := range []func(){func() { b.Set(10) }, func() { b.Set(-1) }, func() { b.Clear(10) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestScansAgainstReference(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200, 513} {
		b := New(n)
		ref := make(reference, n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
				ref[i] = true
			}
		}
		for i := -2; i <= n+2; i++ {
			if got, want := b.NextSet(i), ref.nextSet(i); got != want {
				t.Fatalf("n=%d NextSet(%d) = %d, want %d", n, i, got, want)
			}
			if got, want := b.PrevSet(i), ref.prevSet(i); got != want {
				t.Fatalf("n=%d PrevSet(%d) = %d, want %d", n, i, got, want)
			}
			if got, want := b.NextClear(i), ref.nextClear(i); got != want {
				t.Fatalf("n=%d NextClear(%d) = %d, want %d", n, i, got, want)
			}
			if got, want := b.PrevClear(i), ref.prevClear(i); got != want {
				t.Fatalf("n=%d PrevClear(%d) = %d, want %d", n, i, got, want)
			}
		}
	}
}

func TestNextClearRespectsCapacity(t *testing.T) {
	b := New(70) // 70 bits across 2 words; bits 70..127 of word 1 are "phantom"
	for i := 0; i < 70; i++ {
		b.Set(i)
	}
	if got := b.NextClear(0); got != -1 {
		t.Fatalf("full bitmap NextClear = %d, want -1", got)
	}
	b.Clear(69)
	if got := b.NextClear(0); got != 69 {
		t.Fatalf("NextClear = %d, want 69", got)
	}
}

func TestCountRange(t *testing.T) {
	n := 300
	b := New(n)
	ref := make(reference, n)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			b.Set(i)
			ref[i] = true
		}
	}
	for trial := 0; trial < 500; trial++ {
		lo := rng.Intn(n+10) - 5
		hi := rng.Intn(n+10) - 5
		if got, want := b.CountRange(lo, hi), ref.countRange(lo, hi); got != want {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", lo, hi, got, want)
		}
	}
	if got := b.CountRange(0, n); got != b.Count() {
		t.Fatalf("full CountRange %d != Count %d", got, b.Count())
	}
}

func TestReset(t *testing.T) {
	b := New(100)
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	b.Reset()
	if b.Count() != 0 || b.NextSet(0) != -1 {
		t.Fatal("Reset did not clear")
	}
}

func TestSizeBytes(t *testing.T) {
	if got := New(64).SizeBytes(); got != 8 {
		t.Fatalf("SizeBytes(64) = %d", got)
	}
	if got := New(65).SizeBytes(); got != 16 {
		t.Fatalf("SizeBytes(65) = %d", got)
	}
	if got := New(0).SizeBytes(); got != 0 {
		t.Fatalf("SizeBytes(0) = %d", got)
	}
}

// Property: for random operation sequences, Count always equals the number
// of distinct set positions and NextSet/NextClear agree with the reference.
func TestQuickOpSequence(t *testing.T) {
	f := func(ops []uint16, probe uint16) bool {
		const n = 257
		b := New(n)
		ref := make(reference, n)
		for _, op := range ops {
			i := int(op) % n
			if op&0x8000 != 0 {
				b.Clear(i)
				ref[i] = false
			} else {
				b.Set(i)
				ref[i] = true
			}
		}
		p := int(probe) % (n + 4)
		return b.Count() == ref.countRange(0, n) &&
			b.NextSet(p) == ref.nextSet(p) &&
			b.NextClear(p) == ref.nextClear(p) &&
			b.PrevSet(p) == ref.prevSet(p) &&
			b.PrevClear(p) == ref.prevClear(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNextSetSparse(b *testing.B) {
	bm := New(1 << 20)
	for i := 0; i < bm.Len(); i += 1024 {
		bm.Set(i)
	}
	b.ResetTimer()
	pos := 0
	for i := 0; i < b.N; i++ {
		pos = bm.NextSet(pos + 1)
		if pos < 0 {
			pos = 0
		}
	}
}
