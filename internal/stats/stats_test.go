package stats

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(4)
	h.Observe(7)
	h.Observe(8)
	h.Observe(1000)
	if h.Total() != 9 {
		t.Fatalf("Total = %d", h.Total())
	}
	b := h.Buckets()
	// bucket 0: {0,0}; bucket 1: {1}; bucket 2: {2,3}; bucket 3: {4,7};
	// bucket 4: {8}; ... bucket for 1000 is [512,1023].
	if b[0].Count != 2 || b[1].Count != 1 || b[2].Count != 2 || b[3].Count != 2 || b[4].Count != 1 {
		t.Fatalf("buckets = %+v", b)
	}
	last := b[len(b)-1]
	if last.Lo != 512 || last.Count != 1 {
		t.Fatalf("last bucket = %+v", last)
	}
	if zf := h.ZeroFraction(); zf < 0.22 || zf > 0.23 {
		t.Fatalf("ZeroFraction = %v", zf)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	h.Observe(2)
	h.Observe(4)
	if h.Mean() != 3 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	h.Observe(-5) // counts as zero
	if h.Mean() != 2 {
		t.Fatalf("Mean with negative = %v", h.Mean())
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram()
	if out := h.Render(20); out != "(empty)\n" {
		t.Fatalf("empty render = %q", out)
	}
	for i := 0; i < 100; i++ {
		h.Observe(i % 16)
	}
	out := h.Render(30)
	if !strings.Contains(out, "█") || !strings.Contains(out, "8-15") {
		t.Fatalf("render missing bars or labels:\n%s", out)
	}
}

func TestLatencyRecorderPercentiles(t *testing.T) {
	r := NewLatencyRecorder(100)
	for i := 1; i <= 100; i++ {
		r.Observe(time.Duration(i) * time.Microsecond)
	}
	if got := r.Median(); got != 50*time.Microsecond {
		t.Fatalf("Median = %v", got)
	}
	if got := r.Percentile(99); got != 99*time.Microsecond {
		t.Fatalf("P99 = %v", got)
	}
	if got := r.Max(); got != 100*time.Microsecond {
		t.Fatalf("Max = %v", got)
	}
	if got := r.Percentile(1); got != 1*time.Microsecond {
		t.Fatalf("P1 = %v", got)
	}
	if got := r.Mean(); got != 50500*time.Nanosecond {
		t.Fatalf("Mean = %v", got)
	}
	if r.Count() != 100 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestLatencyRecorderEmpty(t *testing.T) {
	r := NewLatencyRecorder(0)
	if r.Median() != 0 || r.Max() != 0 || r.Mean() != 0 {
		t.Fatal("empty recorder must return zeros")
	}
}

func TestLatencyRecorderObserveAfterQuery(t *testing.T) {
	r := NewLatencyRecorder(4)
	r.Observe(3 * time.Second)
	_ = r.Median()
	r.Observe(1 * time.Second) // must re-sort
	if got := r.Percentile(0); got != 1*time.Second {
		t.Fatalf("min after late observe = %v", got)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("dataset", "throughput", "index size")
	tb.AddRow("ycsb", "1.2 Mops/s", "4 KiB")
	tb.AddRowf("longlat\t%s\t%s", "0.8 Mops/s", "12 KiB")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "dataset") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "ycsb") || !strings.Contains(lines[3], "longlat") {
		t.Fatalf("rows:\n%s", out)
	}
	// Columns align: "throughput" starts at the same offset everywhere.
	off := strings.Index(lines[0], "throughput")
	if strings.Index(lines[2], "1.2") != off {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTableRowWiderThanHeaderDropped(t *testing.T) {
	tb := NewTable("a")
	tb.AddRow("x", "overflow")
	if strings.Contains(tb.String(), "overflow") {
		t.Fatal("overflow cell kept")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		512:     "512 B",
		2048:    "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Fatalf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatOps(t *testing.T) {
	if got := FormatOps(2.5e6); got != "2.50 Mops/s" {
		t.Fatalf("got %q", got)
	}
	if got := FormatOps(1500); got != "1.5 Kops/s" {
		t.Fatalf("got %q", got)
	}
	if got := FormatOps(50); got != "50 ops/s" {
		t.Fatalf("got %q", got)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != -1 {
		t.Fatal("empty histogram percentile should be -1")
	}
	for i := 0; i < 90; i++ {
		h.Observe(0)
	}
	for i := 0; i < 9; i++ {
		h.Observe(3) // bucket [2,4) -> lo 2
	}
	h.Observe(100) // bucket [64,128) -> lo 64
	if got := h.Percentile(50); got != 0 {
		t.Fatalf("p50 = %d, want 0", got)
	}
	if got := h.Percentile(95); got != 2 {
		t.Fatalf("p95 = %d, want 2", got)
	}
	if got := h.Percentile(100); got != 64 {
		t.Fatalf("p100 = %d, want 64", got)
	}
}

func TestHistogramFromCounts(t *testing.T) {
	src := NewHistogram()
	for _, v := range []int{0, 0, 1, 3, 3, 9, 70} {
		src.Observe(v)
	}
	counts := make([]uint64, 0, 16)
	for _, b := range src.Buckets() {
		counts = append(counts, b.Count)
	}
	h := HistogramFromCounts(counts)
	if h.Total() != src.Total() {
		t.Fatalf("total %d != %d", h.Total(), src.Total())
	}
	for _, p := range []float64{10, 50, 90, 99, 100} {
		if got, want := h.Percentile(p), src.Percentile(p); got != want {
			t.Fatalf("p%v = %d, want %d", p, got, want)
		}
	}
}
