// Package stats provides the measurement substrate for the experiment
// drivers: power-of-two histograms (the prediction-error plots of
// Fig 7), latency recorders with percentiles (the tail-latency study of
// Fig 9), and a fixed-width table printer shared by every experiment's
// output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram buckets non-negative integer samples into power-of-two
// ranges: bucket 0 holds exactly 0, bucket i>0 holds [2^(i-1), 2^i).
// This matches the x-axis of the paper's prediction-error plots.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, 1, 40)}
}

// bucketOf returns the bucket index for v.
func bucketOf(v int) int {
	if v <= 0 {
		return 0
	}
	b := 1
	for limit := 1; v >= limit; limit <<= 1 {
		b++
	}
	return b - 1
}

// Observe records one sample. Negative samples count as zero.
func (h *Histogram) Observe(v int) {
	b := bucketOf(v)
	for len(h.counts) <= b {
		h.counts = append(h.counts, 0)
	}
	h.counts[b]++
	h.total++
	if v > 0 {
		h.sum += float64(v)
	}
}

// Total returns the number of samples.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the mean sample value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Percentile returns the p-th percentile sample value (0 <= p <= 100),
// resolved to the lower bound of the bucket holding that rank — the
// same granularity the histogram stores. It returns -1 for an empty
// histogram.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return -1
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return loOf(i)
		}
	}
	return loOf(len(h.counts) - 1)
}

// HistogramFromCounts builds a Histogram over precomputed power-of-two
// bucket counts with the same bucket semantics (bucket 0 holds exactly
// 0, bucket i>0 holds [2^(i-1), 2^i)) — e.g. the per-leaf error-bound
// histogram the index core aggregates. Sample values are approximated
// by bucket lower bounds, so Mean is approximate while Percentile and
// Render are exact at bucket granularity.
func HistogramFromCounts(counts []uint64) *Histogram {
	h := NewHistogram()
	for i, c := range counts {
		if c == 0 {
			continue
		}
		for len(h.counts) <= i {
			h.counts = append(h.counts, 0)
		}
		h.counts[i] += c
		h.total += c
		h.sum += float64(loOf(i)) * float64(c)
	}
	return h
}

// ZeroFraction returns the fraction of samples equal to zero ("no
// prediction error" in Fig 7b).
func (h *Histogram) ZeroFraction() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[0]) / float64(h.total)
}

// Buckets returns (label, count) pairs for non-empty tail-trimmed output.
func (h *Histogram) Buckets() []BucketCount {
	out := make([]BucketCount, 0, len(h.counts))
	for i, c := range h.counts {
		var label string
		if i == 0 {
			label = "0"
		} else if i == 1 {
			label = "1"
		} else {
			label = fmt.Sprintf("%d-%d", 1<<(i-1), 1<<i-1)
		}
		out = append(out, BucketCount{Label: label, Lo: loOf(i), Count: c})
	}
	return out
}

func loOf(i int) int {
	if i == 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketCount is one histogram bar.
type BucketCount struct {
	Label string
	Lo    int
	Count uint64
}

// Render draws the histogram as ASCII bars of at most width characters.
func (h *Histogram) Render(width int) string {
	var b strings.Builder
	var maxC uint64
	for _, c := range h.counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return "(empty)\n"
	}
	for _, bc := range h.Buckets() {
		bar := int(float64(bc.Count) / float64(maxC) * float64(width))
		fmt.Fprintf(&b, "%12s │%-*s %d\n", bc.Label, width, strings.Repeat("█", bar), bc.Count)
	}
	return b.String()
}

// LatencyRecorder collects durations and reports percentiles (Fig 9).
type LatencyRecorder struct {
	samples []time.Duration
	sorted  bool
}

// NewLatencyRecorder returns an empty recorder with capacity hint n.
func NewLatencyRecorder(n int) *LatencyRecorder {
	return &LatencyRecorder{samples: make([]time.Duration, 0, n)}
}

// Observe records one duration.
func (r *LatencyRecorder) Observe(d time.Duration) {
	r.samples = append(r.samples, d)
	r.sorted = false
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	rank := int(math.Ceil(p/100*float64(len(r.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(r.samples) {
		rank = len(r.samples) - 1
	}
	return r.samples[rank]
}

// Median returns the 50th percentile.
func (r *LatencyRecorder) Median() time.Duration { return r.Percentile(50) }

// Max returns the largest sample.
func (r *LatencyRecorder) Max() time.Duration { return r.Percentile(100) }

// Mean returns the mean duration.
func (r *LatencyRecorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range r.samples {
		sum += d
	}
	return sum / time.Duration(len(r.samples))
}

// Table accumulates rows and prints them with aligned columns; every
// experiment driver reports through it so outputs look uniform.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{Header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...interface{}) {
	parts := strings.Split(fmt.Sprintf(format, cells...), "\t")
	t.AddRow(parts...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// FormatBytes renders a byte count in human units.
func FormatBytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// FormatOps renders an operations-per-second figure compactly.
func FormatOps(opsPerSec float64) string {
	switch {
	case opsPerSec >= 1e6:
		return fmt.Sprintf("%.2f Mops/s", opsPerSec/1e6)
	case opsPerSec >= 1e3:
		return fmt.Sprintf("%.1f Kops/s", opsPerSec/1e3)
	default:
		return fmt.Sprintf("%.0f ops/s", opsPerSec)
	}
}
