// Package search implements the local search routines ALEX and the
// Learned Index baseline use at the leaf level: exponential search from a
// predicted position (ALEX, §3.2) and binary search within error bounds
// (Kraska et al.). Both operate on sorted non-decreasing float64 slices
// and return *lower-bound* positions, i.e. the first index whose key is
// >= the target (len(a) if no such index exists).
//
// A NaN key has no ordered position; every routine returns 0 for it,
// matching sort.SearchFloat64s (whose predicate a[i] < NaN is false
// everywhere). The whole-slice searches get this for free from the
// comparison semantics; the positioned searches (Exponential*,
// BoundedBinary*) guard explicitly, because their bracketing starts at
// the caller's predicted position and would otherwise return it — a
// divergence the batch paths' forced-progress guards used to paper
// over one key at a time.
//
// The package also provides interpolation search, which the paper's
// related-work discussion (§6, [10]) compares against, and simple probe
// counters so microbenchmarks (Fig 11) can report comparison counts.
package search

import "math"

// LowerBound returns the first index i in the sorted slice a with
// a[i] >= key, or len(a) if none. Plain binary search over the whole
// slice; the baseline every other routine is measured against.
func LowerBound(a []float64, key float64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBound returns the first index i with a[i] > key, or len(a).
func UpperBound(a []float64, key float64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LowerBoundRange is LowerBound restricted to a[lo:hi].
func LowerBoundRange(a []float64, key float64, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Exponential finds the lower-bound position of key in the sorted slice a,
// starting from the predicted position pos and doubling the step until the
// target is bracketed, then binary-searching the bracket. This is the
// ALEX leaf search: cost grows with log of the prediction error rather
// than log of the node size.
func Exponential(a []float64, key float64, pos int) int {
	n := len(a)
	if n == 0 || math.IsNaN(key) {
		return 0
	}
	if pos < 0 {
		pos = 0
	} else if pos >= n {
		pos = n - 1
	}
	if a[pos] < key {
		// Target is to the right: bracket (pos+step/2, pos+step].
		step := 1
		lo, hi := pos+1, pos+1
		for hi < n && a[hi] < key {
			lo = hi + 1
			step <<= 1
			hi = pos + step
			if hi >= n {
				hi = n
				break
			}
		}
		if hi < n && a[hi] >= key {
			hi++ // a[hi] may itself be the lower bound
		}
		return LowerBoundRange(a, key, lo, hi)
	}
	// a[pos] >= key: target is at pos or to the left.
	step := 1
	lo, hi := pos, pos
	for lo > 0 && a[lo] >= key {
		hi = lo
		step <<= 1
		lo = pos - step
		if lo < 0 {
			lo = 0
			break
		}
	}
	return LowerBoundRange(a, key, lo, hi+1)
}

// BoundedBinary performs the Learned Index search: binary search for key
// limited to [pos-errLo, pos+errHi] (clamped to the slice). If the key
// would fall outside the window, the nearest window edge is returned;
// callers that cannot trust their bounds should verify and fall back to
// LowerBound.
func BoundedBinary(a []float64, key float64, pos, errLo, errHi int) int {
	if math.IsNaN(key) {
		return 0
	}
	lo := pos - errLo
	hi := pos + errHi + 1
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	if lo >= hi {
		if lo > len(a) {
			return len(a)
		}
		return lo
	}
	return LowerBoundRange(a, key, lo, hi)
}

// LowerBoundBranchless is LowerBound with a branch-free probe loop: the
// interval update is a conditional add the compiler lowers to CMOV, so
// the search pipeline never stalls on a mispredicted key comparison.
// On the short, cache-resident windows the leaf probes search (a few
// dozen slots around a model prediction), mispredictions are the
// dominant cost of the classic loop, which is why the hot read path
// uses this variant.
func LowerBoundBranchless(a []float64, key float64) int {
	return lowerBoundBranchless(a, key, 0, len(a))
}

// lowerBoundBranchless finds the first index in [lo, hi) with
// a[i] >= key (hi if none) without data-dependent branches: each step
// halves the window [base, base+n] with a conditional base advance.
// Callers must pass 0 <= lo <= hi <= len(a).
func lowerBoundBranchless(a []float64, key float64, lo, hi int) int {
	n := hi - lo
	if n <= 0 {
		return lo
	}
	base := lo
	for n > 1 {
		half := n >> 1
		if a[base+half-1] < key { // lowered to CMOV: no branch to mispredict
			base += half
		}
		n -= half
	}
	if a[base] < key {
		base++
	}
	return base
}

// LowerBoundWindow returns the first index in [lo, hi) with a[i] >= key
// (hi if none), by the branch-free halving loop; the window is clamped
// to the slice and an empty window returns its (clamped) lo. A NaN key
// returns the window's clamped lo (0 for a whole-slice window),
// consistent with the package's NaN-first convention.
//
// It is the log-time sibling of LowerBoundLinear — same window
// semantics, different probe structure — suited to windows too wide
// for the linear count. The leaf probe paths use LowerBoundLinear
// (their error-bound threshold keeps windows small); the equivalence
// tests use this variant as the independent reference implementation.
func LowerBoundWindow(a []float64, key float64, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	if lo >= hi {
		if lo > len(a) {
			return len(a)
		}
		return lo
	}
	return lowerBoundBranchless(a, key, lo, hi)
}

// LowerBoundLinear is LowerBoundWindow by branch-free linear count: the
// result is lo plus the number of window elements below key. On a
// sorted window those are exactly the elements left of the lower bound,
// so the result is identical — but the compares are *independent* (the
// compiler lowers the conditional increment to SETcc/CMOV), where the
// binary search's probes form a serial dependency chain. For the small
// windows a tight per-leaf error bound produces, the out-of-order core
// runs the whole count at full width in fewer cycles than log2(window)
// dependent loads. Same clamping and NaN-key behavior as
// LowerBoundWindow (every compare against NaN is false, so a NaN key
// returns the clamped lo).
func LowerBoundLinear(a []float64, key float64, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	if lo >= hi {
		if lo > len(a) {
			return len(a)
		}
		return lo
	}
	n := lo
	for _, v := range a[lo:hi] {
		if v < key { // SETcc, not a branch: no misprediction possible
			n++
		}
	}
	return n
}

// BoundedBinaryBranchless is BoundedBinary over the branch-free probe
// loop; same window clamping, same result.
func BoundedBinaryBranchless(a []float64, key float64, pos, errLo, errHi int) int {
	if math.IsNaN(key) {
		return 0
	}
	lo := pos - errLo
	hi := pos + errHi + 1
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	if lo >= hi {
		if lo > len(a) {
			return len(a)
		}
		return lo
	}
	return lowerBoundBranchless(a, key, lo, hi)
}

// ExponentialBranchless is Exponential with the bracketed window
// resolved by the branch-free probe loop. The doubling phase keeps its
// branches (they are the exit condition), but with a model prediction a
// few slots off the bracket is found in one or two doublings and the
// remaining work is all in the bracket search this variant removes the
// mispredictions from.
func ExponentialBranchless(a []float64, key float64, pos int) int {
	n := len(a)
	if n == 0 || math.IsNaN(key) {
		return 0
	}
	if pos < 0 {
		pos = 0
	} else if pos >= n {
		pos = n - 1
	}
	if a[pos] < key {
		step := 1
		lo, hi := pos+1, pos+1
		for hi < n && a[hi] < key {
			lo = hi + 1
			step <<= 1
			hi = pos + step
			if hi >= n {
				hi = n
				break
			}
		}
		if hi < n && a[hi] >= key {
			hi++ // a[hi] may itself be the lower bound
		}
		return lowerBoundBranchless(a, key, lo, hi)
	}
	step := 1
	lo, hi := pos, pos
	for lo > 0 && a[lo] >= key {
		hi = lo
		step <<= 1
		lo = pos - step
		if lo < 0 {
			lo = 0
			break
		}
	}
	return lowerBoundBranchless(a, key, lo, hi+1)
}

// Interpolation performs classic interpolation search for the lower bound
// of key in a, falling back to binary search when the value distribution
// stops shrinking the window. Included for the §6 comparison and as a
// sanity baseline in microbenchmarks.
func Interpolation(a []float64, key float64) int {
	lo, hi := 0, len(a)-1
	if len(a) == 0 {
		return 0
	}
	for lo <= hi && key >= a[lo] && key <= a[hi] {
		if a[hi] == a[lo] {
			break
		}
		mid := lo + int(float64(hi-lo)*(key-a[lo])/(a[hi]-a[lo]))
		if mid < lo {
			mid = lo
		} else if mid > hi {
			mid = hi
		}
		switch {
		case a[mid] < key:
			lo = mid + 1
		case mid > 0 && a[mid-1] >= key:
			hi = mid - 1
		default:
			return LowerBoundRange(a, key, lo, mid+1)
		}
	}
	return LowerBoundRange(a, key, lo, hi+1)
}

// Probes mirrors the main routines but counts key comparisons, used by the
// Fig 11 microbenchmark to report work as a function of prediction error.
type Probes struct {
	Comparisons int
}

// Exponential is Exponential with comparison counting.
func (p *Probes) Exponential(a []float64, key float64, pos int) int {
	n := len(a)
	if n == 0 || math.IsNaN(key) {
		return 0
	}
	if pos < 0 {
		pos = 0
	} else if pos >= n {
		pos = n - 1
	}
	p.Comparisons++
	if a[pos] < key {
		step := 1
		lo, hi := pos+1, pos+1
		for hi < n {
			p.Comparisons++
			if a[hi] >= key {
				hi++
				break
			}
			lo = hi + 1
			step <<= 1
			hi = pos + step
		}
		if hi > n {
			hi = n
		}
		return p.lowerBound(a, key, lo, hi)
	}
	step := 1
	lo, hi := pos, pos
	for lo > 0 {
		p.Comparisons++
		if a[lo] < key {
			break
		}
		hi = lo
		step <<= 1
		lo = pos - step
		if lo < 0 {
			lo = 0
			p.Comparisons++
			break
		}
	}
	return p.lowerBound(a, key, lo, hi+1)
}

// BoundedBinary is BoundedBinary with comparison counting.
func (p *Probes) BoundedBinary(a []float64, key float64, pos, errLo, errHi int) int {
	if math.IsNaN(key) {
		return 0
	}
	lo := pos - errLo
	hi := pos + errHi + 1
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	if lo >= hi {
		if lo > len(a) {
			return len(a)
		}
		return lo
	}
	return p.lowerBound(a, key, lo, hi)
}

func (p *Probes) lowerBound(a []float64, key float64, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		p.Comparisons++
		if a[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
