package search

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func refLowerBound(a []float64, key float64) int {
	return sort.SearchFloat64s(a, key)
}

func sortedRandom(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64() * 1000
	}
	sort.Float64s(a)
	return a
}

func TestLowerBoundMatchesSort(t *testing.T) {
	a := sortedRandom(1000, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		key := rng.Float64() * 1100
		if got, want := LowerBound(a, key), refLowerBound(a, key); got != want {
			t.Fatalf("LowerBound(%v) = %d, want %d", key, got, want)
		}
	}
	// Exact keys must be found at their first occurrence.
	for i, k := range a {
		got := LowerBound(a, k)
		if a[got] != k || got > i {
			t.Fatalf("LowerBound(exact %v) = %d", k, got)
		}
	}
}

func TestUpperBound(t *testing.T) {
	a := []float64{1, 2, 2, 2, 3}
	if got := UpperBound(a, 2); got != 4 {
		t.Fatalf("UpperBound(2) = %d, want 4", got)
	}
	if got := UpperBound(a, 0); got != 0 {
		t.Fatalf("UpperBound(0) = %d, want 0", got)
	}
	if got := UpperBound(a, 9); got != 5 {
		t.Fatalf("UpperBound(9) = %d, want 5", got)
	}
}

func TestExponentialFromAnyStart(t *testing.T) {
	a := sortedRandom(512, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		key := rng.Float64() * 1100
		pos := rng.Intn(len(a)+40) - 20 // deliberately out-of-range starts too
		if got, want := Exponential(a, key, pos), refLowerBound(a, key); got != want {
			t.Fatalf("Exponential(key=%v, pos=%d) = %d, want %d", key, pos, got, want)
		}
	}
}

func TestExponentialEdgeCases(t *testing.T) {
	if got := Exponential(nil, 5, 0); got != 0 {
		t.Fatalf("empty slice = %d", got)
	}
	one := []float64{10}
	if got := Exponential(one, 5, 0); got != 0 {
		t.Fatalf("before single = %d", got)
	}
	if got := Exponential(one, 15, 0); got != 1 {
		t.Fatalf("after single = %d", got)
	}
	if got := Exponential(one, 10, 0); got != 0 {
		t.Fatalf("exact single = %d", got)
	}
	dup := []float64{5, 5, 5, 5}
	if got := Exponential(dup, 5, 3); got != 0 {
		t.Fatalf("duplicates lower bound = %d, want 0", got)
	}
}

func TestBoundedBinaryWithTrueBounds(t *testing.T) {
	a := sortedRandom(1000, 5)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		key := a[rng.Intn(len(a))]
		want := refLowerBound(a, key)
		// Give a prediction within a synthetic error of the true pos.
		err := rng.Intn(64)
		pos := want + rng.Intn(2*err+1) - err
		got := BoundedBinary(a, key, pos, err, err)
		if got != want {
			t.Fatalf("BoundedBinary(key=%v pos=%d err=%d) = %d, want %d", key, pos, err, got, want)
		}
	}
}

func TestBoundedBinaryClamping(t *testing.T) {
	a := []float64{1, 2, 3}
	if got := BoundedBinary(a, 2, -10, 1, 1); got != refLowerBound(a, 2) {
		// window [-11, -8] clamps to empty at 0; nearest edge returned
		t.Logf("clamped result %d (window miss is acceptable, caller verifies)", got)
	}
	if got := BoundedBinary(a, 99, 2, 0, 0); got < 2 || got > 3 {
		t.Fatalf("edge clamp = %d", got)
	}
	if got := BoundedBinary(nil, 1, 0, 5, 5); got != 0 {
		t.Fatalf("empty = %d", got)
	}
}

func TestInterpolationMatchesSort(t *testing.T) {
	a := sortedRandom(1000, 7)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		key := rng.Float64() * 1100
		if got, want := Interpolation(a, key), refLowerBound(a, key); got != want {
			t.Fatalf("Interpolation(%v) = %d, want %d", key, got, want)
		}
	}
	for _, k := range a[:50] {
		if got, want := Interpolation(a, k), refLowerBound(a, k); got != want {
			t.Fatalf("Interpolation(exact %v) = %d, want %d", k, got, want)
		}
	}
	if got := Interpolation(nil, 5); got != 0 {
		t.Fatalf("empty = %d", got)
	}
}

func TestProbesAgreeWithPlainRoutines(t *testing.T) {
	a := sortedRandom(777, 9)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 3000; i++ {
		key := rng.Float64() * 1100
		pos := rng.Intn(len(a))
		var p Probes
		if got, want := p.Exponential(a, key, pos), Exponential(a, key, pos); got != want {
			t.Fatalf("Probes.Exponential = %d, want %d", got, want)
		}
		if p.Comparisons <= 0 {
			t.Fatal("no comparisons counted")
		}
		var q Probes
		if got, want := q.BoundedBinary(a, key, pos, 32, 32), BoundedBinary(a, key, pos, 32, 32); got != want {
			t.Fatalf("Probes.BoundedBinary = %d, want %d", got, want)
		}
	}
}

// The central claim behind Fig 11: exponential search cost scales with the
// log of the prediction error, so small errors must cost fewer
// comparisons than a bounded binary search with wide bounds.
func TestExponentialCheaperOnSmallError(t *testing.T) {
	n := 1 << 20
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	truePos := n / 2
	key := a[truePos]

	var small, big, bounded Probes
	small.Exponential(a, key, truePos+2)
	big.Exponential(a, key, truePos+4096)
	bounded.BoundedBinary(a, key, truePos+2, 4096, 4096)

	if small.Comparisons >= big.Comparisons {
		t.Fatalf("error-2 search (%d cmps) should beat error-4096 (%d cmps)", small.Comparisons, big.Comparisons)
	}
	if small.Comparisons >= bounded.Comparisons {
		t.Fatalf("exp search with tiny error (%d cmps) should beat bounded binary with 4096 bounds (%d cmps)", small.Comparisons, bounded.Comparisons)
	}
}

// Property: Exponential agrees with sort.SearchFloat64s for arbitrary
// sorted inputs and arbitrary starting positions.
func TestQuickExponential(t *testing.T) {
	f := func(raw []float64, key float64, posSeed uint16) bool {
		a := raw[:0]
		for _, v := range raw {
			if v == v { // drop NaN
				a = append(a, v)
			}
		}
		sort.Float64s(a)
		if key != key {
			return true
		}
		pos := 0
		if len(a) > 0 {
			pos = int(posSeed) % len(a)
		}
		return Exponential(a, key, pos) == refLowerBound(a, key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExponentialError8(b *testing.B)    { benchExp(b, 8) }
func BenchmarkExponentialError1024(b *testing.B) { benchExp(b, 1024) }

func benchExp(b *testing.B, errSize int) {
	n := 1 << 22
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		truePos := rng.Intn(n - 2*errSize - 2)
		_ = Exponential(a, a[truePos+errSize], truePos)
	}
}

func BenchmarkBoundedBinaryError1024(b *testing.B) {
	n := 1 << 22
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	rng := rand.New(rand.NewSource(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		truePos := rng.Intn(n-2048) + 1024
		_ = BoundedBinary(a, a[truePos], truePos-7, 1024, 1024)
	}
}

// The branchless variants must agree with their branching counterparts
// on every input: random windows, duplicate runs, and both empty and
// degenerate slices.
func TestBranchlessVariantsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(130) // includes 0-length slices
		a := sortedRandom(n, int64(trial))
		// Inject duplicate runs so lower-bound ties are exercised.
		for i := 1; i < len(a); i++ {
			if rng.Intn(4) == 0 {
				a[i] = a[i-1]
			}
		}
		sort.Float64s(a)
		for probe := 0; probe < 200; probe++ {
			key := rng.Float64()*1100 - 50
			if rng.Intn(3) == 0 && n > 0 {
				key = a[rng.Intn(n)] // exact hits
			}
			if got, want := LowerBoundBranchless(a, key), LowerBound(a, key); got != want {
				t.Fatalf("LowerBoundBranchless(n=%d, %v) = %d, want %d", n, key, got, want)
			}
			pos := rng.Intn(150) - 20
			if got, want := ExponentialBranchless(a, key, pos), Exponential(a, key, pos); got != want {
				t.Fatalf("ExponentialBranchless(n=%d, %v, pos=%d) = %d, want %d", n, key, pos, got, want)
			}
			errLo, errHi := rng.Intn(40), rng.Intn(40)
			got := BoundedBinaryBranchless(a, key, pos, errLo, errHi)
			want := BoundedBinary(a, key, pos, errLo, errHi)
			if got != want {
				t.Fatalf("BoundedBinaryBranchless(n=%d, %v, pos=%d, -%d/+%d) = %d, want %d",
					n, key, pos, errLo, errHi, got, want)
			}
		}
	}
}

func TestLowerBoundBranchlessQuick(t *testing.T) {
	f := func(raw []float64, key float64) bool {
		for i, v := range raw {
			if v != v { // NaN would break the sort contract
				raw[i] = 0
			}
		}
		sort.Float64s(raw)
		return LowerBoundBranchless(raw, key) == refLowerBound(raw, key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
