package search

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func refLowerBound(a []float64, key float64) int {
	return sort.SearchFloat64s(a, key)
}

func sortedRandom(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64() * 1000
	}
	sort.Float64s(a)
	return a
}

func TestLowerBoundMatchesSort(t *testing.T) {
	a := sortedRandom(1000, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		key := rng.Float64() * 1100
		if got, want := LowerBound(a, key), refLowerBound(a, key); got != want {
			t.Fatalf("LowerBound(%v) = %d, want %d", key, got, want)
		}
	}
	// Exact keys must be found at their first occurrence.
	for i, k := range a {
		got := LowerBound(a, k)
		if a[got] != k || got > i {
			t.Fatalf("LowerBound(exact %v) = %d", k, got)
		}
	}
}

func TestUpperBound(t *testing.T) {
	a := []float64{1, 2, 2, 2, 3}
	if got := UpperBound(a, 2); got != 4 {
		t.Fatalf("UpperBound(2) = %d, want 4", got)
	}
	if got := UpperBound(a, 0); got != 0 {
		t.Fatalf("UpperBound(0) = %d, want 0", got)
	}
	if got := UpperBound(a, 9); got != 5 {
		t.Fatalf("UpperBound(9) = %d, want 5", got)
	}
}

func TestExponentialFromAnyStart(t *testing.T) {
	a := sortedRandom(512, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		key := rng.Float64() * 1100
		pos := rng.Intn(len(a)+40) - 20 // deliberately out-of-range starts too
		if got, want := Exponential(a, key, pos), refLowerBound(a, key); got != want {
			t.Fatalf("Exponential(key=%v, pos=%d) = %d, want %d", key, pos, got, want)
		}
	}
}

func TestExponentialEdgeCases(t *testing.T) {
	if got := Exponential(nil, 5, 0); got != 0 {
		t.Fatalf("empty slice = %d", got)
	}
	one := []float64{10}
	if got := Exponential(one, 5, 0); got != 0 {
		t.Fatalf("before single = %d", got)
	}
	if got := Exponential(one, 15, 0); got != 1 {
		t.Fatalf("after single = %d", got)
	}
	if got := Exponential(one, 10, 0); got != 0 {
		t.Fatalf("exact single = %d", got)
	}
	dup := []float64{5, 5, 5, 5}
	if got := Exponential(dup, 5, 3); got != 0 {
		t.Fatalf("duplicates lower bound = %d, want 0", got)
	}
}

func TestBoundedBinaryWithTrueBounds(t *testing.T) {
	a := sortedRandom(1000, 5)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		key := a[rng.Intn(len(a))]
		want := refLowerBound(a, key)
		// Give a prediction within a synthetic error of the true pos.
		err := rng.Intn(64)
		pos := want + rng.Intn(2*err+1) - err
		got := BoundedBinary(a, key, pos, err, err)
		if got != want {
			t.Fatalf("BoundedBinary(key=%v pos=%d err=%d) = %d, want %d", key, pos, err, got, want)
		}
	}
}

func TestBoundedBinaryClamping(t *testing.T) {
	a := []float64{1, 2, 3}
	if got := BoundedBinary(a, 2, -10, 1, 1); got != refLowerBound(a, 2) {
		// window [-11, -8] clamps to empty at 0; nearest edge returned
		t.Logf("clamped result %d (window miss is acceptable, caller verifies)", got)
	}
	if got := BoundedBinary(a, 99, 2, 0, 0); got < 2 || got > 3 {
		t.Fatalf("edge clamp = %d", got)
	}
	if got := BoundedBinary(nil, 1, 0, 5, 5); got != 0 {
		t.Fatalf("empty = %d", got)
	}
}

func TestInterpolationMatchesSort(t *testing.T) {
	a := sortedRandom(1000, 7)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		key := rng.Float64() * 1100
		if got, want := Interpolation(a, key), refLowerBound(a, key); got != want {
			t.Fatalf("Interpolation(%v) = %d, want %d", key, got, want)
		}
	}
	for _, k := range a[:50] {
		if got, want := Interpolation(a, k), refLowerBound(a, k); got != want {
			t.Fatalf("Interpolation(exact %v) = %d, want %d", k, got, want)
		}
	}
	if got := Interpolation(nil, 5); got != 0 {
		t.Fatalf("empty = %d", got)
	}
}

func TestProbesAgreeWithPlainRoutines(t *testing.T) {
	a := sortedRandom(777, 9)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 3000; i++ {
		key := rng.Float64() * 1100
		pos := rng.Intn(len(a))
		var p Probes
		if got, want := p.Exponential(a, key, pos), Exponential(a, key, pos); got != want {
			t.Fatalf("Probes.Exponential = %d, want %d", got, want)
		}
		if p.Comparisons <= 0 {
			t.Fatal("no comparisons counted")
		}
		var q Probes
		if got, want := q.BoundedBinary(a, key, pos, 32, 32), BoundedBinary(a, key, pos, 32, 32); got != want {
			t.Fatalf("Probes.BoundedBinary = %d, want %d", got, want)
		}
	}
}

// The central claim behind Fig 11: exponential search cost scales with the
// log of the prediction error, so small errors must cost fewer
// comparisons than a bounded binary search with wide bounds.
func TestExponentialCheaperOnSmallError(t *testing.T) {
	n := 1 << 20
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	truePos := n / 2
	key := a[truePos]

	var small, big, bounded Probes
	small.Exponential(a, key, truePos+2)
	big.Exponential(a, key, truePos+4096)
	bounded.BoundedBinary(a, key, truePos+2, 4096, 4096)

	if small.Comparisons >= big.Comparisons {
		t.Fatalf("error-2 search (%d cmps) should beat error-4096 (%d cmps)", small.Comparisons, big.Comparisons)
	}
	if small.Comparisons >= bounded.Comparisons {
		t.Fatalf("exp search with tiny error (%d cmps) should beat bounded binary with 4096 bounds (%d cmps)", small.Comparisons, bounded.Comparisons)
	}
}

// Property: Exponential agrees with sort.SearchFloat64s for arbitrary
// sorted inputs and arbitrary starting positions.
func TestQuickExponential(t *testing.T) {
	f := func(raw []float64, key float64, posSeed uint16) bool {
		a := raw[:0]
		for _, v := range raw {
			if v == v { // drop NaN
				a = append(a, v)
			}
		}
		sort.Float64s(a)
		if key != key {
			return true
		}
		pos := 0
		if len(a) > 0 {
			pos = int(posSeed) % len(a)
		}
		return Exponential(a, key, pos) == refLowerBound(a, key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExponentialError8(b *testing.B)    { benchExp(b, 8) }
func BenchmarkExponentialError1024(b *testing.B) { benchExp(b, 1024) }

func benchExp(b *testing.B, errSize int) {
	n := 1 << 22
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		truePos := rng.Intn(n - 2*errSize - 2)
		_ = Exponential(a, a[truePos+errSize], truePos)
	}
}

func BenchmarkBoundedBinaryError1024(b *testing.B) {
	n := 1 << 22
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	rng := rand.New(rand.NewSource(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		truePos := rng.Intn(n-2048) + 1024
		_ = BoundedBinary(a, a[truePos], truePos-7, 1024, 1024)
	}
}

// The branchless variants must agree with their branching counterparts
// on every input: random windows, duplicate runs, and both empty and
// degenerate slices.
func TestBranchlessVariantsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(130) // includes 0-length slices
		a := sortedRandom(n, int64(trial))
		// Inject duplicate runs so lower-bound ties are exercised.
		for i := 1; i < len(a); i++ {
			if rng.Intn(4) == 0 {
				a[i] = a[i-1]
			}
		}
		sort.Float64s(a)
		for probe := 0; probe < 200; probe++ {
			key := rng.Float64()*1100 - 50
			if rng.Intn(3) == 0 && n > 0 {
				key = a[rng.Intn(n)] // exact hits
			}
			if got, want := LowerBoundBranchless(a, key), LowerBound(a, key); got != want {
				t.Fatalf("LowerBoundBranchless(n=%d, %v) = %d, want %d", n, key, got, want)
			}
			pos := rng.Intn(150) - 20
			if got, want := ExponentialBranchless(a, key, pos), Exponential(a, key, pos); got != want {
				t.Fatalf("ExponentialBranchless(n=%d, %v, pos=%d) = %d, want %d", n, key, pos, got, want)
			}
			errLo, errHi := rng.Intn(40), rng.Intn(40)
			got := BoundedBinaryBranchless(a, key, pos, errLo, errHi)
			want := BoundedBinary(a, key, pos, errLo, errHi)
			if got != want {
				t.Fatalf("BoundedBinaryBranchless(n=%d, %v, pos=%d, -%d/+%d) = %d, want %d",
					n, key, pos, errLo, errHi, got, want)
			}
		}
	}
}

func TestLowerBoundBranchlessQuick(t *testing.T) {
	f := func(raw []float64, key float64) bool {
		for i, v := range raw {
			if v != v { // NaN would break the sort contract
				raw[i] = 0
			}
		}
		sort.Float64s(raw)
		return LowerBoundBranchless(raw, key) == refLowerBound(raw, key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property (ISSUE 5 bugfix sweep): on arrays holding the extremes the
// data nodes actually produce — duplicates (gap fills), +Inf tails,
// ±Inf elements — every positioned search must agree with
// sort.SearchFloat64s for every key, including NaN and ±Inf keys, from
// any starting position and with any window at least as wide as the
// true error. The branchless CMOV variants had no NaN-key guard: they
// used to return the (clamped) predicted position for a NaN key where
// every whole-slice routine returns 0, a divergence the batch
// run-advance loops had to paper over one forced-progress key at a
// time.
func TestErrBoundQuickSearchExtremes(t *testing.T) {
	type tcase struct {
		Raw     []float64
		KeySeed uint16
		PosSeed uint16
		Neg     bool // try a -Inf head / +Inf tail decoration
	}
	// The reference pins the package's NaN-key convention: NaN sorts
	// first (as in sort.Float64sAreSorted's total order), so its lower
	// bound is 0. sort.SearchFloat64s alone would return len(a) — its
	// ">= NaN" predicate is false everywhere — which is why the
	// convention needs pinning at all.
	ref := func(a []float64, key float64) int {
		if math.IsNaN(key) {
			return 0
		}
		return refLowerBound(a, key)
	}
	f := func(c tcase) bool {
		a := make([]float64, 0, len(c.Raw)+4)
		for _, v := range c.Raw {
			if v == v { // drop NaN from the array: data nodes never store it
				a = append(a, v)
			}
		}
		sort.Float64s(a)
		// Duplicate runs and infinity decorations, like gap fills.
		if len(a) > 1 {
			a[len(a)/2] = a[len(a)/2-1]
		}
		if c.Neg {
			a = append([]float64{math.Inf(-1)}, a...)
		}
		a = append(a, math.Inf(1), math.Inf(1))
		keys := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0}
		if len(c.Raw) > 0 {
			keys = append(keys, c.Raw[int(c.KeySeed)%len(c.Raw)])
		}
		for _, key := range keys {
			want := ref(a, key)
			pos := int(c.PosSeed) % (len(a) + 7) // deliberately past the end too
			if got := Exponential(a, key, pos); got != want {
				t.Logf("Exponential(%v, %v, pos=%d) = %d, want %d", a, key, pos, got, want)
				return false
			}
			if got := ExponentialBranchless(a, key, pos); got != want {
				t.Logf("ExponentialBranchless(%v, %v, pos=%d) = %d, want %d", a, key, pos, got, want)
				return false
			}
			// A window covering the whole slice must reproduce the exact
			// lower bound (the contract the per-leaf error bound relies
			// on: window ⊇ true position ⇒ exact result). The window is
			// relative to pos, which the bounded searches deliberately do
			// not clamp — real callers pass an in-range prediction, so
			// the check does too.
			bpos := pos
			if bpos >= len(a) && len(a) > 0 {
				bpos = len(a) - 1
			}
			if got := BoundedBinary(a, key, bpos, len(a), len(a)); got != want {
				t.Logf("BoundedBinary(%v, %v, pos=%d, full) = %d, want %d", a, key, bpos, got, want)
				return false
			}
			if got := BoundedBinaryBranchless(a, key, bpos, len(a), len(a)); got != want {
				t.Logf("BoundedBinaryBranchless(%v, %v, pos=%d, full) = %d, want %d", a, key, bpos, got, want)
				return false
			}
			// Exact windows around the true position, NaN keys excluded
			// (their "position" is the degenerate 0, not pos±err).
			if key == key {
				errLo, errHi := bpos-want, want-bpos
				if errLo < 0 {
					errLo = 0
				}
				if errHi < 0 {
					errHi = 0
				}
				if got := BoundedBinaryBranchless(a, key, bpos, errLo, errHi); got != want {
					t.Logf("BoundedBinaryBranchless(%v, %v, pos=%d, -%d/+%d) = %d, want %d",
						a, key, bpos, errLo, errHi, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// NaN elements never occur inside a data node's key array (occupied
// keys are finite, fills duplicate an occupied key or are +Inf), but a
// defensive guarantee still holds: on arrays with NaNs at arbitrary
// positions every routine terminates — the doubling loops' comparisons
// against NaN are all false, so they exit rather than hang the way the
// PR 4 batch run-advance loops did — and returns an index in [0, len].
func TestSearchNaNElementsTerminate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(40)
		a := make([]float64, n)
		for i := range a {
			switch rng.Intn(5) {
			case 0:
				a[i] = math.NaN()
			case 1:
				a[i] = math.Inf(1)
			default:
				a[i] = rng.Float64() * 100
			}
		}
		key := rng.Float64() * 120
		switch rng.Intn(4) {
		case 0:
			key = math.NaN()
		case 1:
			key = math.Inf(1)
		}
		pos := rng.Intn(50) - 5
		for name, got := range map[string]int{
			"Exponential":             Exponential(a, key, pos),
			"ExponentialBranchless":   ExponentialBranchless(a, key, pos),
			"BoundedBinary":           BoundedBinary(a, key, pos, 8, 8),
			"BoundedBinaryBranchless": BoundedBinaryBranchless(a, key, pos, 8, 8),
			"LowerBound":              LowerBound(a, key),
			"LowerBoundBranchless":    LowerBoundBranchless(a, key),
		} {
			if got < 0 || got > len(a) {
				t.Fatalf("%s(n=%d, key=%v, pos=%d) = %d out of range", name, n, key, pos, got)
			}
		}
	}
}

// The two window primitives must agree with each other and, for
// windows covering the true position, with the whole-slice lower
// bound — on duplicates, ±Inf decorations and empty/degenerate
// windows alike.
func TestLowerBoundWindowVariantsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(100)
		a := sortedRandom(n, int64(trial))
		for i := 1; i < len(a); i++ {
			if rng.Intn(4) == 0 {
				a[i] = a[i-1]
			}
		}
		sort.Float64s(a)
		if n > 0 && rng.Intn(3) == 0 {
			a[n-1] = math.Inf(1)
		}
		for probe := 0; probe < 100; probe++ {
			key := rng.Float64()*1100 - 50
			if rng.Intn(3) == 0 && n > 0 {
				key = a[rng.Intn(n)]
			}
			lo := rng.Intn(120) - 10
			hi := lo + rng.Intn(40) - 2 // empty and inverted windows too
			w := LowerBoundWindow(a, key, lo, hi)
			l := LowerBoundLinear(a, key, lo, hi)
			if w != l {
				t.Fatalf("LowerBoundWindow(n=%d, %v, [%d,%d)) = %d, LowerBoundLinear = %d",
					n, key, lo, hi, w, l)
			}
			if got := LowerBoundWindow(a, key, 0, len(a)); got != refLowerBound(a, key) {
				t.Fatalf("full window = %d, want %d", got, refLowerBound(a, key))
			}
		}
	}
}
