package faultfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"
)

// ErrInjected is the class of every scripted fault: any error an Inject
// rule produces wraps it, so tests can distinguish injected failures
// from real ones with errors.Is.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after the simulated crash
// point. It wraps ErrInjected.
var ErrCrashed = fmt.Errorf("%w: crashed", ErrInjected)

// ErrNoSpace is the injected disk-full error. It wraps both ErrInjected
// and syscall.ENOSPC, so callers see the same errno a real full disk
// produces.
var ErrNoSpace = fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)

// OpKind classifies the operations rules can match.
type OpKind uint8

// Operation kinds, one per seam call.
const (
	OpAny OpKind = iota // matches every kind
	OpOpen
	OpRead
	OpWrite
	OpSync
	OpClose
	OpTruncate
	OpRename
	OpRemove
	OpReadDir
	OpSyncDir
	OpMkdirAll
	OpStat
)

var opNames = [...]string{"any", "open", "read", "write", "sync", "close", "truncate", "rename", "remove", "readdir", "syncdir", "mkdirall", "stat"}

// String names the kind for schedule logs.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Rule is one scripted fault: when the Nth operation matching
// (Kind, PathContains) runs, Action fires.
type Rule struct {
	// Kind restricts the rule to one operation kind; OpAny matches all.
	Kind OpKind
	// PathContains restricts the rule to paths containing the substring
	// (base name or any part of the path); empty matches every path.
	PathContains string
	// Nth fires the rule on the n-th matching operation (1-based);
	// 0 fires on every matching operation.
	Nth int

	// Err fails the operation with this error (wrapped in ErrInjected
	// if it does not already wrap it). Writes with ShortBytes > 0 first
	// write that prefix through to the real file — a short write.
	Err error
	// ShortBytes bounds how many bytes of the matched write reach the
	// file before Err (0 with a non-nil Err fails the write entirely).
	ShortBytes int
	// Delay stalls the operation before it runs — per-op latency.
	Delay time.Duration
	// Crash transitions the filesystem to the crashed state after the
	// rule fires: every subsequent operation fails with ErrCrashed and
	// the crash losses (un-fsynced bytes, unsynced directory entries)
	// are applied to the real files. Combined with ShortBytes on a
	// write rule this is a torn-write-at-crash.
	Crash bool

	seen int // matching ops so far
}

// Inject wraps an inner FS and applies a deterministic scripted
// schedule of faults to the operations flowing through it. The zero
// schedule passes everything through.
//
// Crash simulation: files written through Inject are tracked so that a
// scripted crash can re-create what power loss leaves behind — each
// file is truncated back to its size at the last successful Sync (plus
// the torn prefix of a crashing short write), and files created with
// O_EXCL whose parent directory was never SyncDir'd are removed when
// LoseDirEntries is set (the lost-directory-entry failure mode that
// motivates fsyncing the WAL directory after rotation).
//
// Inject is safe for concurrent use.
type Inject struct {
	inner FS

	mu      sync.Mutex
	rules   []*Rule
	budget  int64 // remaining write bytes before ENOSPC; <0 = unlimited
	crashed bool
	files   map[string]*fileState
	pending map[string]map[string]bool // dir -> entries created but not dir-synced

	// LoseDirEntries makes a crash remove files created (O_EXCL)
	// through this FS whose directory entry was never made durable
	// with SyncDir. Set before use.
	LoseDirEntries bool
}

// fileState tracks one path's durability for crash simulation.
type fileState struct {
	size   int64 // bytes written through the seam (sequential high-water mark)
	synced int64 // size at the last successful Sync
}

// New returns an injector over inner (usually OS) with an empty
// schedule.
func New(inner FS) *Inject {
	return &Inject{
		inner:   inner,
		budget:  -1,
		files:   make(map[string]*fileState),
		pending: make(map[string]map[string]bool),
	}
}

// AddRule appends one scripted fault.
func (j *Inject) AddRule(r Rule) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.rules = append(j.rules, &r)
}

// FailNth fails the n-th operation of the given kind on paths
// containing path with err.
func (j *Inject) FailNth(kind OpKind, path string, n int, err error) {
	j.AddRule(Rule{Kind: kind, PathContains: path, Nth: n, Err: err})
}

// ShortWriteNth makes the n-th matching write persist only the first
// keep bytes, then fail.
func (j *Inject) ShortWriteNth(path string, n, keep int, err error) {
	j.AddRule(Rule{Kind: OpWrite, PathContains: path, Nth: n, ShortBytes: keep, Err: err})
}

// CrashAtWrite crashes the filesystem at the n-th write on paths
// containing path, persisting only torn bytes of that write — the
// torn-write-at-crash schedule.
func (j *Inject) CrashAtWrite(path string, n, torn int) {
	j.AddRule(Rule{Kind: OpWrite, PathContains: path, Nth: n, ShortBytes: torn, Err: ErrCrashed, Crash: true})
}

// DelayOps stalls every operation of the given kind by d.
func (j *Inject) DelayOps(kind OpKind, d time.Duration) {
	j.AddRule(Rule{Kind: kind, Delay: d})
}

// SetWriteBudget arms the disk-full simulation: after total bytes of
// writes have gone through, further writes persist what fits and fail
// with ErrNoSpace. Negative disarms.
func (j *Inject) SetWriteBudget(total int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.budget = total
}

// CrashNow transitions to the crashed state immediately, applying the
// crash losses (see the type comment).
func (j *Inject) CrashNow() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.crashLocked()
}

// Crashed reports whether the simulated crash point has been reached.
func (j *Inject) Crashed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.crashed
}

// crashLocked applies crash losses. Caller holds j.mu.
func (j *Inject) crashLocked() {
	if j.crashed {
		return
	}
	j.crashed = true
	// Un-fsynced bytes are lost: truncate every tracked file back to
	// its durable prefix, through the inner FS (the victim's handles
	// may still be open; a separate handle can truncate regardless).
	for path, st := range j.files {
		if st.size > st.synced {
			if f, err := j.inner.OpenFile(path, os.O_WRONLY, 0); err == nil {
				_ = f.Truncate(st.synced)
				f.Close()
			}
		}
	}
	// Directory entries never made durable are lost with the dir's
	// journal: the files they named disappear.
	if j.LoseDirEntries {
		for dir, names := range j.pending {
			for name := range names {
				_ = j.inner.Remove(filepath.Join(dir, name))
			}
		}
	}
}

// decide matches op (kind, path) against the schedule and returns the
// action to apply: a delay, then either an error (with an optional
// short-write byte bound) or pass-through. bytes is the write size for
// budget accounting.
func (j *Inject) decide(kind OpKind, path string, bytes int) (delay time.Duration, short int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.crashed {
		return 0, 0, ErrCrashed
	}
	short = -1
	for _, r := range j.rules {
		if r.Kind != OpAny && r.Kind != kind {
			continue
		}
		if r.PathContains != "" && !contains(path, r.PathContains) {
			continue
		}
		r.seen++
		if r.Nth != 0 && r.seen != r.Nth {
			continue
		}
		delay += r.Delay
		if r.Err != nil && err == nil {
			err = r.Err
			if !errors.Is(err, ErrInjected) {
				err = fmt.Errorf("%w: %w", ErrInjected, err)
			}
			short = r.ShortBytes
		}
		if r.Crash {
			if short >= 0 && short < bytes {
				// The torn prefix of the crashing write must land
				// before the losses are computed: account it as
				// written but not synced.
				j.noteWriteLocked(path, short)
			}
			j.crashLocked()
		}
	}
	if err == nil && kind == OpWrite && j.budget >= 0 {
		if int64(bytes) > j.budget {
			short = int(j.budget)
			j.budget = 0
			err = ErrNoSpace
		} else {
			j.budget -= int64(bytes)
		}
	}
	return delay, short, err
}

func contains(path, sub string) bool {
	return sub == "" || (len(path) >= len(sub) && indexOf(path, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// noteWriteLocked advances path's written high-water mark.
func (j *Inject) noteWriteLocked(path string, n int) {
	st := j.files[path]
	if st == nil {
		st = &fileState{}
		j.files[path] = st
	}
	st.size += int64(n)
}

// noteSynced marks path fully durable up to its written size.
func (j *Inject) noteSynced(path string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if st := j.files[path]; st != nil {
		st.synced = st.size
	}
}

// notePending records a created-but-not-dir-synced entry.
func (j *Inject) notePending(path string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	dir, name := filepath.Split(path)
	dir = filepath.Clean(dir)
	if j.pending[dir] == nil {
		j.pending[dir] = make(map[string]bool)
	}
	j.pending[dir][name] = true
}

// --- FS surface ----------------------------------------------------------

// OpenFile opens name through the schedule. O_EXCL creations are
// tracked for directory-entry crash loss until the parent is SyncDir'd.
func (j *Inject) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if delay, _, err := j.decide(OpOpen, name, 0); err != nil {
		sleep(delay)
		return nil, err
	} else {
		sleep(delay)
	}
	f, err := j.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if flag&os.O_CREATE != 0 {
		j.mu.Lock()
		if j.files[name] == nil || flag&os.O_TRUNC != 0 {
			j.files[name] = &fileState{}
		}
		j.mu.Unlock()
		if flag&os.O_EXCL != 0 {
			j.notePending(name)
		}
	}
	return &faultFile{j: j, f: f, name: name}, nil
}

// Rename renames through the schedule. The tracked durability state
// moves with the file; the new entry is NOT marked pending (rename
// atomicity on crash is filesystem-specific; Inject models the kept
// outcome, which is legal).
func (j *Inject) Rename(oldpath, newpath string) error {
	delay, _, err := j.decide(OpRename, oldpath, 0)
	sleep(delay)
	if err != nil {
		return err
	}
	if err := j.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	j.mu.Lock()
	if st := j.files[oldpath]; st != nil {
		j.files[newpath] = st
		delete(j.files, oldpath)
	}
	j.mu.Unlock()
	return nil
}

// Remove removes through the schedule.
func (j *Inject) Remove(name string) error {
	delay, _, err := j.decide(OpRemove, name, 0)
	sleep(delay)
	if err != nil {
		return err
	}
	if err := j.inner.Remove(name); err != nil {
		return err
	}
	j.mu.Lock()
	delete(j.files, name)
	j.mu.Unlock()
	return nil
}

// MkdirAll creates directories through the schedule. The new entries
// are not tracked for crash loss (directory trees are created once at
// open, before any data the crash model cares about exists).
func (j *Inject) MkdirAll(name string, perm os.FileMode) error {
	delay, _, err := j.decide(OpMkdirAll, name, 0)
	sleep(delay)
	if err != nil {
		return err
	}
	return j.inner.MkdirAll(name, perm)
}

// Stat stats through the schedule.
func (j *Inject) Stat(name string) (os.FileInfo, error) {
	delay, _, err := j.decide(OpStat, name, 0)
	sleep(delay)
	if err != nil {
		return nil, err
	}
	return j.inner.Stat(name)
}

// ReadDir lists through the schedule.
func (j *Inject) ReadDir(name string) ([]os.DirEntry, error) {
	delay, _, err := j.decide(OpReadDir, name, 0)
	sleep(delay)
	if err != nil {
		return nil, err
	}
	return j.inner.ReadDir(name)
}

// SyncDir syncs through the schedule; success makes the directory's
// pending entries durable for crash simulation.
func (j *Inject) SyncDir(name string) error {
	delay, _, err := j.decide(OpSyncDir, name, 0)
	sleep(delay)
	if err != nil {
		return err
	}
	if err := j.inner.SyncDir(name); err != nil {
		return err
	}
	j.mu.Lock()
	delete(j.pending, filepath.Clean(name))
	j.mu.Unlock()
	return nil
}

func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// --- File surface --------------------------------------------------------

// faultFile threads one file's operations through the schedule.
type faultFile struct {
	j    *Inject
	f    File
	name string
}

func (ff *faultFile) Read(p []byte) (int, error) {
	delay, _, err := ff.j.decide(OpRead, ff.name, 0)
	sleep(delay)
	if err != nil {
		return 0, err
	}
	return ff.f.Read(p)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	delay, _, err := ff.j.decide(OpRead, ff.name, 0)
	sleep(delay)
	if err != nil {
		return 0, err
	}
	return ff.f.ReadAt(p, off)
}

// Write applies short-write and disk-full scripting: when a rule (or
// the write budget) bounds the write, the permitted prefix still
// reaches the file — exactly what a real short write leaves behind.
func (ff *faultFile) Write(p []byte) (int, error) {
	delay, short, err := ff.j.decide(OpWrite, ff.name, len(p))
	sleep(delay)
	if err != nil {
		n := 0
		if short > 0 {
			if short > len(p) {
				short = len(p)
			}
			n, _ = ff.f.Write(p[:short])
			ff.j.mu.Lock()
			ff.j.noteWriteLocked(ff.name, n)
			ff.j.mu.Unlock()
		}
		return n, err
	}
	n, werr := ff.f.Write(p)
	ff.j.mu.Lock()
	ff.j.noteWriteLocked(ff.name, n)
	ff.j.mu.Unlock()
	return n, werr
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	delay, short, err := ff.j.decide(OpWrite, ff.name, len(p))
	sleep(delay)
	if err != nil {
		if short > 0 {
			if short > len(p) {
				short = len(p)
			}
			n, _ := ff.f.WriteAt(p[:short], off)
			return n, err
		}
		return 0, err
	}
	return ff.f.WriteAt(p, off)
}

func (ff *faultFile) Truncate(size int64) error {
	delay, _, err := ff.j.decide(OpTruncate, ff.name, 0)
	sleep(delay)
	if err != nil {
		return err
	}
	return ff.f.Truncate(size)
}

// Sync flushes through the schedule; success marks everything written
// so far crash-durable.
func (ff *faultFile) Sync() error {
	delay, _, err := ff.j.decide(OpSync, ff.name, 0)
	sleep(delay)
	if err != nil {
		return err
	}
	if err := ff.f.Sync(); err != nil {
		return err
	}
	ff.j.noteSynced(ff.name)
	return nil
}

// Close always closes the underlying file, even when the schedule
// injects an error — a leaked descriptor would outlive the simulated
// crash.
func (ff *faultFile) Close() error {
	delay, _, err := ff.j.decide(OpClose, ff.name, 0)
	sleep(delay)
	cerr := ff.f.Close()
	if err != nil {
		return err
	}
	return cerr
}

func (ff *faultFile) Stat() (os.FileInfo, error) { return ff.f.Stat() }

func (ff *faultFile) Name() string { return ff.name }
