package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestFaultPassthrough: an empty schedule must behave exactly like the
// OS filesystem.
func TestFaultPassthrough(t *testing.T) {
	j := New(OS)
	path := filepath.Join(t.TempDir(), "f")
	f, err := Create(j, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("read back %q, %v", b, err)
	}
	if err := j.SyncDir(filepath.Dir(path)); err != nil {
		t.Fatal(err)
	}
}

// TestFaultFailNthSync: the scripted sync fails wrapped in ErrInjected;
// earlier and unrelated syncs pass.
func TestFaultFailNthSync(t *testing.T) {
	j := New(OS)
	boom := errors.New("boom")
	j.FailNth(OpSync, "wal", 2, boom)

	path := filepath.Join(t.TempDir(), "wal-0001.log")
	f, err := Create(j, path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	err = f.Sync()
	if !errors.Is(err, ErrInjected) || !errors.Is(err, boom) {
		t.Fatalf("sync 2 = %v, want ErrInjected wrapping boom", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3: %v", err)
	}
}

// TestFaultShortWrite: the scripted write persists exactly the allowed
// prefix before failing.
func TestFaultShortWrite(t *testing.T) {
	j := New(OS)
	j.ShortWriteNth("f", 1, 3, io.ErrShortWrite)
	path := filepath.Join(t.TempDir(), "f")
	f, err := Create(j, path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write = %d, %v", n, err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "abc" {
		t.Fatalf("file holds %q after short write, want \"abc\"", b)
	}
}

// TestFaultWriteBudget: writes past the budget fail with an error that
// is both ErrInjected and ENOSPC, persisting what fit.
func TestFaultWriteBudget(t *testing.T) {
	j := New(OS)
	j.SetWriteBudget(4)
	path := filepath.Join(t.TempDir(), "f")
	f, err := Create(j, path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("cdef"))
	if n != 2 || !errors.Is(err, ErrNoSpace) || !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("over-budget write = %d, %v", n, err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("post-budget write = %v, want ErrNoSpace", err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "abcd" {
		t.Fatalf("file holds %q, want \"abcd\"", b)
	}
}

// TestFaultCrashLosesUnsynced: after a crash, every operation fails
// with ErrCrashed and un-fsynced bytes are gone from the real file.
func TestFaultCrashLosesUnsynced(t *testing.T) {
	j := New(OS)
	path := filepath.Join(t.TempDir(), "f")
	f, err := Create(j, path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" volatile")); err != nil {
		t.Fatal(err)
	}
	j.CrashNow()
	if !j.Crashed() {
		t.Fatal("Crashed() = false after CrashNow")
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync = %v, want ErrCrashed", err)
	}
	if _, err := j.OpenFile(path, os.O_RDONLY, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open = %v, want ErrCrashed", err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "durable" {
		t.Fatalf("file holds %q after crash, want only the synced prefix \"durable\"", b)
	}
}

// TestFaultCrashAtWrite: the torn-write-at-crash schedule leaves the
// synced prefix plus at most the torn bytes of the crashing write.
func TestFaultCrashAtWrite(t *testing.T) {
	j := New(OS)
	j.CrashAtWrite("f", 2, 2)
	path := filepath.Join(t.TempDir(), "f")
	f, err := Create(j, path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("torn-record"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write = %d, %v, want ErrCrashed", n, err)
	}
	if !j.Crashed() {
		t.Fatal("not crashed after CrashAtWrite fired")
	}
	b, _ := os.ReadFile(path)
	if len(b) < 2 || string(b[:2]) != "ok" {
		t.Fatalf("synced prefix lost: file holds %q", b)
	}
	if len(b) > 2+len("torn-record") {
		t.Fatalf("file grew past the torn write: %q", b)
	}
}

// TestFaultLoseDirEntries: a file created but never made durable with a
// directory sync disappears at the crash; a dir-synced one survives.
func TestFaultLoseDirEntries(t *testing.T) {
	dir := t.TempDir()
	j := New(OS)
	j.LoseDirEntries = true

	// O_EXCL creation is what the tracking keys off — it is how the WAL
	// creates segments.
	excl := os.O_CREATE | os.O_EXCL | os.O_WRONLY
	durable := filepath.Join(dir, "synced")
	f, err := j.OpenFile(durable, excl, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := j.SyncDir(dir); err != nil {
		t.Fatal(err)
	}

	lost := filepath.Join(dir, "pending")
	f2, err := j.OpenFile(lost, excl, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f2.Close()

	j.CrashNow()
	if _, err := os.Stat(durable); err != nil {
		t.Fatalf("dir-synced file lost at crash: %v", err)
	}
	if _, err := os.Stat(lost); !os.IsNotExist(err) {
		t.Fatalf("pending dir entry survived the crash: %v", err)
	}
}

// TestFaultDelay: scripted latency stalls matching operations.
func TestFaultDelay(t *testing.T) {
	j := New(OS)
	j.DelayOps(OpWrite, 15*time.Millisecond)
	f, err := Create(j, filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	f.Write([]byte("a"))
	f.Write([]byte("b"))
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("two delayed writes took %v, want >= 30ms of injected latency", d)
	}
}

// TestFaultEveryNthZero: Nth 0 fires on every matching op.
func TestFaultEveryNthZero(t *testing.T) {
	j := New(OS)
	boom := errors.New("always")
	j.FailNth(OpSync, "", 0, boom)
	f, err := Create(j, filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, boom) {
			t.Fatalf("sync %d = %v, want boom", i, err)
		}
	}
}

// TestFaultCloseAlwaysCloses: an injected Close error must not leak the
// descriptor — a second open of the same path with O_EXCL would
// otherwise be the least of the problems.
func TestFaultCloseAlwaysCloses(t *testing.T) {
	j := New(OS)
	boom := errors.New("close-fail")
	j.FailNth(OpClose, "", 1, boom)
	path := filepath.Join(t.TempDir(), "f")
	f, err := Create(j, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, boom) {
		t.Fatalf("close = %v, want boom", err)
	}
	// The fd is really closed: writing through it must fail at the OS.
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write through an injected-close file succeeded; fd leaked")
	}
}
