// Package faultfs is the filesystem seam of the durability stack: every
// file operation the WAL, the checkpointer and the page store perform
// goes through the FS and File interfaces, with OS as the pass-through
// production implementation and Inject (fault.go) as a deterministic
// scripted fault injector for tests.
//
// The seam exists so that the failure classes a real deployment meets —
// a failed fsync, a disk that fills mid-checkpoint, a short write, a
// crash that tears the last write and loses un-fsynced data or
// directory entries — can be reproduced exactly and asserted against,
// instead of being reasoned about on the happy path only. See
// docs/failure-model.md for the guarantees the stack makes under each
// class.
package faultfs

import (
	"errors"
	"io"
	"os"
	"syscall"
)

// File is the subset of *os.File the durability stack uses. Writers use
// the sequential Write/Sync/Close triple; readers use ReadAt/Stat; the
// page store adds WriteAt/Truncate.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	// Truncate changes the file size.
	Truncate(size int64) error
	// Sync flushes the file to stable storage.
	Sync() error
	// Close releases the file. Implementations close the underlying
	// descriptor even when they report an (injected or real) error.
	Close() error
	// Stat returns file metadata.
	Stat() (os.FileInfo, error)
	// Name returns the name the file was opened with.
	Name() string
}

// FS is the filesystem surface the durability stack needs. All paths
// are interpreted exactly as the os package would.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename is os.Rename. Durability of the new directory entry
	// requires a SyncDir of the parent.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// ReadDir is os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
	// SyncDir fsyncs the directory itself, making entry creation,
	// rename and removal durable. Platforms that cannot fsync a
	// directory report success (the rename/creat syscall ordering is
	// the best available there).
	SyncDir(name string) error
	// MkdirAll is os.MkdirAll. Durability of the new entries requires
	// a SyncDir of each affected parent.
	MkdirAll(name string, perm os.FileMode) error
	// Stat is os.Stat.
	Stat(name string) (os.FileInfo, error)
}

// Open opens name read-only on fsys.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// Create creates or truncates name read-write on fsys.
func Create(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// OS is the pass-through production filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) SyncDir(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		// Some filesystems and platforms cannot fsync a directory
		// handle; that is not a durability failure the caller can act
		// on, so it is not reported as one.
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.ENOTTY) {
			return nil
		}
		return err
	}
	return nil
}
