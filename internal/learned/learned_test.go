package learned

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func uniqueKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[float64]bool, n)
	keys := make([]float64, 0, n)
	for len(keys) < n {
		k := math.Floor(rng.Float64() * 1e12)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func TestBulkLoadAndGet(t *testing.T) {
	keys := uniqueKeys(30000, 1)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i) + 1
	}
	ix, err := BulkLoad(keys, payloads, Config{NumModels: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, ok := ix.Get(k)
		if !ok || v != payloads[i] {
			t.Fatalf("Get(%v) = (%v,%v), want (%v,true)", k, v, ok, payloads[i])
		}
	}
	if _, ok := ix.Get(-1); ok {
		t.Fatal("absent found")
	}
	if ix.NumModels() != 32 {
		t.Fatalf("NumModels = %d", ix.NumModels())
	}
}

func TestBulkLoadRejectsDuplicates(t *testing.T) {
	if _, err := BulkLoad([]float64{1, 1}, nil, Config{}); err == nil {
		t.Fatal("duplicates accepted")
	}
	if _, err := BulkLoad([]float64{1, 2}, []uint64{1}, Config{}); err == nil {
		t.Fatal("mismatched payloads accepted")
	}
}

func TestEmptyIndex(t *testing.T) {
	ix, err := BulkLoad(nil, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Get(5); ok {
		t.Fatal("Get on empty")
	}
	if ix.Len() != 0 {
		t.Fatal("Len != 0")
	}
	ix.Insert(1, 10)
	if v, ok := ix.Get(1); !ok || v != 10 {
		t.Fatalf("after insert into empty: %v,%v", v, ok)
	}
}

func TestErrorBoundsHoldAfterBulkLoad(t *testing.T) {
	keys := uniqueKeys(50000, 2)
	ix, _ := BulkLoad(keys, nil, Config{NumModels: 64})
	if f := ix.Stats().Fallbacks; f != 0 {
		t.Fatalf("%d fallbacks on a fresh index; bounds must hold", f)
	}
	for _, k := range keys {
		ix.Get(k)
	}
	if f := ix.Stats().Fallbacks; f != 0 {
		t.Fatalf("%d fallbacks while reading a static index", f)
	}
}

func TestNaiveInsert(t *testing.T) {
	keys := uniqueKeys(10000, 3)
	ix, _ := BulkLoad(keys, nil, Config{NumModels: 16})
	ref := make(map[float64]uint64, len(keys))
	for _, k := range keys {
		ref[k] = 0
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		k := math.Floor(rng.Float64()*1e12) + 0.5
		ins := ix.Insert(k, uint64(i))
		if _, existed := ref[k]; existed == ins {
			t.Fatal("insert mismatch")
		}
		ref[k] = uint64(i)
	}
	if ix.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(ref))
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, v := range ref {
		got, ok := ix.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%v) = (%v,%v), want (%v,true)", k, got, ok, v)
		}
	}
	// Naive inserts must account massive shifting (Fig 8's point).
	if ix.Stats().Shifts == 0 {
		t.Fatal("no shifts counted")
	}
	if avg := float64(ix.Stats().Shifts) / 5000; avg < float64(ix.Len())/10 {
		t.Fatalf("average shifts per insert %v suspiciously small for a dense array", avg)
	}
}

func TestRetrainRestoresBounds(t *testing.T) {
	keys := uniqueKeys(8192, 5)
	ix, _ := BulkLoad(keys, nil, Config{NumModels: 8, RetrainEvery: 256})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		ix.Insert(math.Floor(rng.Float64()*1e12)+0.25, uint64(i))
	}
	if ix.Stats().Retrains < 2 {
		t.Fatalf("retrains = %d, want several", ix.Stats().Retrains)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	keys := uniqueKeys(5000, 7)
	ix, _ := BulkLoad(keys, nil, Config{})
	for _, k := range keys[:2500] {
		if !ix.Delete(k) {
			t.Fatalf("Delete(%v)", k)
		}
	}
	if ix.Len() != len(keys)-2500 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for _, k := range keys[:2500] {
		if _, ok := ix.Get(k); ok {
			t.Fatalf("deleted %v found", k)
		}
	}
	for _, k := range keys[2500:] {
		if _, ok := ix.Get(k); !ok {
			t.Fatalf("survivor %v lost", k)
		}
	}
	if ix.Delete(keys[0]) {
		t.Fatal("double delete")
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateAndDuplicateInsert(t *testing.T) {
	ix, _ := BulkLoad([]float64{1, 2, 3}, []uint64{1, 2, 3}, Config{})
	if !ix.Update(2, 22) {
		t.Fatal("update")
	}
	if v, _ := ix.Get(2); v != 22 {
		t.Fatalf("v=%d", v)
	}
	if ix.Update(9, 1) {
		t.Fatal("update absent")
	}
	if ix.Insert(3, 33) {
		t.Fatal("dup insert returned true")
	}
	if v, _ := ix.Get(3); v != 33 {
		t.Fatalf("v=%d", v)
	}
}

func TestScan(t *testing.T) {
	keys := uniqueKeys(10000, 8)
	sorted := append([]float64(nil), keys...)
	sort.Float64s(sorted)
	ix, _ := BulkLoad(keys, nil, Config{})
	got, _ := ix.ScanN(sorted[100], 50)
	for i := range got {
		if got[i] != sorted[100+i] {
			t.Fatalf("scan[%d] = %v, want %v", i, got[i], sorted[100+i])
		}
	}
	if n := ix.ScanCount(sorted[len(sorted)-1]+1, 5); n != 0 {
		t.Fatalf("past-end scan = %d", n)
	}
	if k, ok := ix.MinKey(); !ok || k != sorted[0] {
		t.Fatalf("MinKey = %v", k)
	}
	if k, ok := ix.MaxKey(); !ok || k != sorted[len(sorted)-1] {
		t.Fatalf("MaxKey = %v", k)
	}
}

func TestIndexSizeScalesWithModels(t *testing.T) {
	keys := uniqueKeys(30000, 9)
	small, _ := BulkLoad(keys, nil, Config{NumModels: 8})
	big, _ := BulkLoad(keys, nil, Config{NumModels: 1024})
	if big.IndexSizeBytes() <= small.IndexSizeBytes() {
		t.Fatal("more models should cost more index bytes")
	}
	// Error bounds should shrink with more models (better local fits).
	meanErr := func(ix *Index) float64 {
		var sum int
		for _, k := range keys[:2000] {
			e, _ := ix.PredictionError(k)
			sum += e
		}
		return float64(sum) / 2000
	}
	if meanErr(big) > meanErr(small) {
		t.Fatal("more models should not increase mean prediction error")
	}
}

// Property: the learned index matches a map under random ops.
func TestQuickAgainstMap(t *testing.T) {
	type op struct {
		Kind    uint8
		Key     uint16
		Payload uint64
	}
	f := func(initRaw []uint16, ops []op) bool {
		seen := make(map[float64]bool)
		var init []float64
		for _, v := range initRaw {
			k := float64(v)
			if !seen[k] {
				seen[k] = true
				init = append(init, k)
			}
		}
		ix, err := BulkLoad(init, nil, Config{NumModels: 4, RetrainEvery: 64})
		if err != nil {
			return false
		}
		ref := make(map[float64]uint64, len(init))
		for _, k := range init {
			ref[k] = 0
		}
		for _, o := range ops {
			k := float64(o.Key % 1024)
			switch o.Kind % 4 {
			case 0:
				ins := ix.Insert(k, o.Payload)
				if _, existed := ref[k]; existed == ins {
					return false
				}
				ref[k] = o.Payload
			case 1:
				_, existed := ref[k]
				if ix.Delete(k) != existed {
					return false
				}
				delete(ref, k)
			case 2:
				_, existed := ref[k]
				if ix.Update(k, o.Payload) != existed {
					return false
				}
				if existed {
					ref[k] = o.Payload
				}
			case 3:
				v, ok := ix.Get(k)
				want, existed := ref[k]
				if ok != existed || (ok && v != want) {
					return false
				}
			}
		}
		return ix.Len() == len(ref) && ix.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGet(b *testing.B) {
	keys := uniqueKeys(1<<18, 10)
	ix, _ := BulkLoad(keys, nil, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Get(keys[i&(len(keys)-1)])
	}
}
