// Package learned is a best-effort reimplementation of the Learned Index
// of Kraska et al. as the paper's evaluation uses it (§5.1): a two-level
// RMI with linear models at both levels over a single dense sorted
// array, binary search within per-model error bounds for lookups, and —
// since the original supports only static data — the naive O(n) insert
// strategy of §2.3 (shift the array, widen the error bounds, retrain
// periodically). Its insert cost is the reason the paper excludes it
// from read-write benchmarks; this implementation exists to reproduce
// the read-only comparisons (Fig 4a/4e, Fig 7a) and the shift counts of
// Fig 8.
package learned

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/linmodel"
	"repro/internal/search"
)

// Config parameterizes the index.
type Config struct {
	// NumModels is the number of second-stage models. 0 derives one
	// model per ~2048 keys at build time (the paper grid-searches this).
	NumModels int
	// RetrainEvery forces a full rebuild after this many inserts; the
	// naive insert path makes models stale, and periodic retraining is
	// the closest practical reading of §2.3 ("Finally, we update the
	// models..."). 0 means retrain after n/16 inserts.
	RetrainEvery int
	// PayloadBytes is the payload size used in data-size accounting.
	PayloadBytes int
}

func (c Config) withDefaults(n int) Config {
	if c.NumModels <= 0 {
		c.NumModels = n / 2048
		if c.NumModels < 1 {
			c.NumModels = 1
		}
	}
	if c.RetrainEvery <= 0 {
		c.RetrainEvery = n / 16
		if c.RetrainEvery < 256 {
			c.RetrainEvery = 256
		}
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 8
	}
	return c
}

// stage2 is a second-stage model with its error bounds: for every key it
// covers, the true position lies in [pred-errLo, pred+errHi].
type stage2 struct {
	model  linmodel.Model
	errLo  int
	errHi  int
	lo, hi int // key range [lo, hi) this model covers
}

// Index is a Kraska-style learned index over a dense sorted array.
type Index struct {
	cfg    Config
	keys   []float64
	vals   []uint64
	root   linmodel.Model
	models []stage2
	// stale counts naive inserts since the last retrain; effective error
	// bounds are widened by it.
	stale int
	// Stats
	shifts    uint64 // elements moved by naive inserts (Fig 8)
	retrains  uint64
	fallbacks uint64 // lookups that escaped their error bounds
}

// Stats reports operational counters.
type Stats struct {
	Shifts    uint64
	Retrains  uint64
	Fallbacks uint64
}

// Stats returns the operational counters.
func (ix *Index) Stats() Stats {
	return Stats{Shifts: ix.shifts, Retrains: ix.retrains, Fallbacks: ix.fallbacks}
}

// BulkLoad builds the index from keys (need not be sorted; duplicates are
// rejected). payloads may be nil.
func BulkLoad(keys []float64, payloads []uint64, cfg Config) (*Index, error) {
	ks := append([]float64(nil), keys...)
	ps := make([]uint64, len(keys))
	if payloads != nil {
		if len(payloads) != len(keys) {
			return nil, errors.New("learned: len(payloads) != len(keys)")
		}
		copy(ps, payloads)
	}
	idx := make([]int, len(ks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ks[idx[a]] < ks[idx[b]] })
	sk := make([]float64, len(ks))
	sp := make([]uint64, len(ks))
	for i, j := range idx {
		sk[i] = ks[j]
		sp[i] = ps[j]
	}
	for i := 1; i < len(sk); i++ {
		if sk[i] == sk[i-1] {
			return nil, fmt.Errorf("learned: duplicate key %v", sk[i])
		}
	}
	ix := &Index{cfg: cfg.withDefaults(len(sk)), keys: sk, vals: sp}
	ix.train()
	return ix, nil
}

// train fits the two-level RMI over the current array.
func (ix *Index) train() {
	n := len(ix.keys)
	m := ix.cfg.NumModels
	ix.retrains++
	ix.stale = 0
	if n == 0 {
		ix.root = linmodel.Model{}
		ix.models = []stage2{{lo: 0, hi: 0}}
		return
	}
	// Root model maps a key to a second-stage model index.
	ix.root = linmodel.Train(ix.keys).Scale(float64(m) / float64(n))
	// Partition keys by root prediction (monotone, so ranges are
	// contiguous), then fit each stage-2 model on its range, predicting
	// *global* positions, and record its error bounds.
	ix.models = make([]stage2, m)
	bound := 0
	for j := 0; j < m; j++ {
		lo := bound
		if j == m-1 {
			bound = n
		} else {
			target := float64(j + 1)
			bound = lo + sort.Search(n-lo, func(i int) bool { return ix.root.Predict(ix.keys[lo+i]) >= target })
		}
		s2 := stage2{lo: lo, hi: bound}
		if bound > lo {
			// Fit key -> local rank with the error bounds as a by-product
			// of the fit, then shift to global position (an integer shift,
			// under which the floor-domain bounds remain exact).
			s2.model, s2.errLo, s2.errHi = linmodel.TrainRangeBounded(ix.keys, lo, bound)
			s2.model.Intercept += float64(lo)
		}
		ix.models[j] = s2
	}
}

// modelFor returns the second-stage model for key.
func (ix *Index) modelFor(key float64) *stage2 {
	j := ix.root.PredictClamped(key, len(ix.models))
	return &ix.models[j]
}

// lowerBound returns the lower-bound position of key using the RMI plus
// error-bounded binary search, with a verified fallback to full binary
// search when the bounds no longer hold (possible after naive inserts).
func (ix *Index) lowerBound(key float64) int {
	n := len(ix.keys)
	if n == 0 {
		return 0
	}
	s2 := ix.modelFor(key)
	pred := s2.model.PredictClamped(key, n)
	pos := search.BoundedBinaryBranchless(ix.keys, key, pred, s2.errLo+ix.stale, s2.errHi+ix.stale)
	// Verify the window result: pos must be a true lower bound.
	if (pos == n || ix.keys[pos] >= key) && (pos == 0 || ix.keys[pos-1] < key) {
		return pos
	}
	ix.fallbacks++
	return search.LowerBound(ix.keys, key)
}

// Get returns the payload stored for key.
func (ix *Index) Get(key float64) (uint64, bool) {
	pos := ix.lowerBound(key)
	if pos < len(ix.keys) && ix.keys[pos] == key {
		return ix.vals[pos], true
	}
	return 0, false
}

// Contains reports whether key is present.
func (ix *Index) Contains(key float64) bool {
	_, ok := ix.Get(key)
	return ok
}

// PredictionError returns |predicted - actual| for an existing key
// (Fig 7a). ok is false when absent.
func (ix *Index) PredictionError(key float64) (int, bool) {
	pos := ix.lowerBound(key)
	if pos >= len(ix.keys) || ix.keys[pos] != key {
		return 0, false
	}
	s2 := ix.modelFor(key)
	pred := s2.model.PredictClamped(key, len(ix.keys))
	if pred > pos {
		return pred - pos, true
	}
	return pos - pred, true
}

// Insert performs the naive insertion of §2.3: find the position, shift
// everything to its right, and account the model staleness; a full
// retrain runs every RetrainEvery inserts. Inserting an existing key
// overwrites the payload and returns false.
func (ix *Index) Insert(key float64, payload uint64) bool {
	if math.IsNaN(key) || math.IsInf(key, 0) {
		panic("learned: key must be finite")
	}
	pos := ix.lowerBound(key)
	if pos < len(ix.keys) && ix.keys[pos] == key {
		ix.vals[pos] = payload
		return false
	}
	ix.keys = append(ix.keys, 0)
	ix.vals = append(ix.vals, 0)
	copy(ix.keys[pos+1:], ix.keys[pos:])
	copy(ix.vals[pos+1:], ix.vals[pos:])
	ix.keys[pos] = key
	ix.vals[pos] = payload
	ix.shifts += uint64(len(ix.keys) - 1 - pos)
	ix.stale++
	if ix.stale >= ix.cfg.RetrainEvery {
		ix.train()
	}
	return true
}

// Delete removes key with the symmetric naive strategy.
func (ix *Index) Delete(key float64) bool {
	pos := ix.lowerBound(key)
	if pos >= len(ix.keys) || ix.keys[pos] != key {
		return false
	}
	copy(ix.keys[pos:], ix.keys[pos+1:])
	copy(ix.vals[pos:], ix.vals[pos+1:])
	ix.keys = ix.keys[:len(ix.keys)-1]
	ix.vals = ix.vals[:len(ix.vals)-1]
	ix.shifts += uint64(len(ix.keys) - pos)
	ix.stale++
	if ix.stale >= ix.cfg.RetrainEvery {
		ix.train()
	}
	return true
}

// Update overwrites the payload of an existing key.
func (ix *Index) Update(key float64, payload uint64) bool {
	pos := ix.lowerBound(key)
	if pos < len(ix.keys) && ix.keys[pos] == key {
		ix.vals[pos] = payload
		return true
	}
	return false
}

// Len returns the number of stored elements.
func (ix *Index) Len() int { return len(ix.keys) }

// Scan visits elements with key >= start in order until visit returns
// false, returning the count visited.
func (ix *Index) Scan(start float64, visit func(key float64, payload uint64) bool) int {
	n := 0
	for i := ix.lowerBound(start); i < len(ix.keys); i++ {
		n++
		if !visit(ix.keys[i], ix.vals[i]) {
			break
		}
	}
	return n
}

// ScanN collects up to max elements from the first key >= start.
func (ix *Index) ScanN(start float64, max int) ([]float64, []uint64) {
	keys := make([]float64, 0, max)
	vals := make([]uint64, 0, max)
	ix.Scan(start, func(k float64, v uint64) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return len(keys) < max
	})
	return keys, vals
}

// ScanCount visits up to max elements from start without materializing.
func (ix *Index) ScanCount(start float64, max int) int {
	remaining := max
	return ix.Scan(start, func(float64, uint64) bool {
		remaining--
		return remaining > 0
	})
}

// MinKey returns the smallest key.
func (ix *Index) MinKey() (float64, bool) {
	if len(ix.keys) == 0 {
		return 0, false
	}
	return ix.keys[0], true
}

// MaxKey returns the largest key.
func (ix *Index) MaxKey() (float64, bool) {
	if len(ix.keys) == 0 {
		return 0, false
	}
	return ix.keys[len(ix.keys)-1], true
}

// IndexSizeBytes accounts the models per §5.1: each model stores a slope
// and intercept (16 B) plus "two additional integers that represent the
// error bounds" (16 B), plus the root model and per-model range metadata.
func (ix *Index) IndexSizeBytes() int {
	const perModel = 16 + 16 + 16 // model + error bounds + range metadata
	return 16 + perModel*len(ix.models)
}

// DataSizeBytes is the dense sorted array: keys plus payloads, no gaps.
func (ix *Index) DataSizeBytes() int {
	return cap(ix.keys)*8 + cap(ix.vals)*ix.cfg.PayloadBytes
}

// NumModels returns the number of second-stage models.
func (ix *Index) NumModels() int { return len(ix.models) }

// CheckInvariants verifies sortedness, uniqueness, bound coverage and
// model-range partitioning.
func (ix *Index) CheckInvariants() error {
	for i := 1; i < len(ix.keys); i++ {
		if ix.keys[i] <= ix.keys[i-1] {
			return fmt.Errorf("learned: keys out of order at %d", i)
		}
	}
	if len(ix.keys) != len(ix.vals) {
		return errors.New("learned: keys/vals length mismatch")
	}
	// Every key must be found through the bounded search path.
	for i, k := range ix.keys {
		if pos := ix.lowerBound(k); pos != i {
			return fmt.Errorf("learned: lowerBound(%v) = %d, want %d", k, pos, i)
		}
	}
	return nil
}
