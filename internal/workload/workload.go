// Package workload implements the YCSB-style benchmark workloads of
// §5.1.2: read-only, read-heavy (95% reads / 5% inserts), write-heavy
// (50/50), and range-scan (95% scans+reads / 5% inserts, scan length
// uniform up to 100). Reads pick keys from the set of *existing* keys
// with a scrambled Zipfian distribution, so lookups always hit. Reads
// and inserts are interleaved in fixed cycles exactly as the paper
// describes (19 reads / 1 insert for the 95/5 mixes; 1/1 for 50/50).
//
// The runner is index-agnostic: anything satisfying Index (ALEX, the
// B+Tree, the Learned Index) can be driven, and the result carries
// throughput plus enough counters to populate the Fig 4 tables.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/datasets"
	"repro/internal/stats"
)

// Index is the operation surface the runner drives. All three index
// implementations in this repository satisfy it.
type Index interface {
	Get(key float64) (uint64, bool)
	Insert(key float64, payload uint64) bool
	Delete(key float64) bool
	ScanCount(start float64, max int) int
	IndexSizeBytes() int
	DataSizeBytes() int
	Len() int
}

// Kind enumerates the four workloads.
type Kind int

const (
	// ReadOnly is YCSB Workload C.
	ReadOnly Kind = iota
	// ReadHeavy is YCSB Workload B: 95% reads, 5% inserts.
	ReadHeavy
	// WriteHeavy is YCSB Workload A (with inserts instead of updates,
	// as the paper does): 50% reads, 50% inserts.
	WriteHeavy
	// RangeScan is YCSB Workload E: 95% scans, 5% inserts.
	RangeScan
	// DeleteHeavy is an extension beyond the paper's four workloads
	// (§3.2 argues deletes are strictly simpler than inserts — this
	// workload verifies the index under churn): 50% reads, 25% inserts,
	// 25% deletes, so the index size stays roughly constant.
	DeleteHeavy
)

// String returns the workload's name.
func (k Kind) String() string {
	switch k {
	case ReadOnly:
		return "read-only"
	case ReadHeavy:
		return "read-heavy"
	case WriteHeavy:
		return "write-heavy"
	case RangeScan:
		return "range-scan"
	case DeleteHeavy:
		return "delete-heavy"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// mix returns reads, inserts and deletes per cycle (§5.1.2: "for the
// read-heavy workload and range scan workload, we perform 19
// reads/scans, then 1 insert ... for the write-heavy workload, we
// perform 1 read, then 1 insert").
func (k Kind) mix() (reads, inserts, deletes int) {
	switch k {
	case ReadOnly:
		return 1, 0, 0
	case ReadHeavy, RangeScan:
		return 19, 1, 0
	case WriteHeavy:
		return 1, 1, 0
	case DeleteHeavy:
		return 2, 1, 1
	default:
		return 1, 0, 0
	}
}

// Kinds lists the paper's workloads in its order (C, B, A, E).
var Kinds = []Kind{ReadOnly, ReadHeavy, WriteHeavy, RangeScan}

// AllKinds additionally includes the delete-heavy extension workload.
var AllKinds = []Kind{ReadOnly, ReadHeavy, WriteHeavy, RangeScan, DeleteHeavy}

// Spec describes one benchmark run. The index must already contain
// InitKeys (the runner does not bulk load — loading strategy is the
// experiment's concern).
type Spec struct {
	Kind Kind
	// InitKeys are the keys present at the start; lookups draw from
	// these plus whatever has been inserted so far.
	InitKeys []float64
	// InsertStream supplies keys for insert operations in order. When
	// exhausted, the cycle continues with reads only.
	InsertStream []float64
	// Ops is the total number of operations to perform. Default 100000.
	Ops int
	// MaxScanLen bounds range scans; lengths are uniform in
	// [1, MaxScanLen]. Default 100 (§5.1.2).
	MaxScanLen int
	// Seed drives key selection and scan lengths.
	Seed int64
	// InsertLatencies, when non-nil, receives one sample per minibatch
	// of MinibatchSize inserts (Fig 9). MinibatchSize defaults to 1000.
	InsertLatencies *stats.LatencyRecorder
	MinibatchSize   int
}

// Result summarizes a run.
type Result struct {
	Kind         Kind
	Ops          int
	Reads        int
	Inserts      int
	Deletes      int
	Scans        int
	Misses       int // reads or deletes that failed (should stay 0)
	ScannedElems int
	Elapsed      time.Duration
	Throughput   float64 // ops per second
	IndexBytes   int
	DataBytes    int
	FinalLen     int
	// Checksum defeats dead-code elimination and doubles as a
	// reproducibility check across index implementations.
	Checksum uint64
}

// Run drives the workload against idx and returns the measurements.
func Run(idx Index, spec Spec) Result {
	if spec.Ops <= 0 {
		spec.Ops = 100000
	}
	if spec.MaxScanLen <= 0 {
		spec.MaxScanLen = 100
	}
	if spec.MinibatchSize <= 0 {
		spec.MinibatchSize = 1000
	}
	reads, inserts, deletes := spec.Kind.mix()

	rng := rand.New(rand.NewSource(spec.Seed))
	// present holds every key currently in the index, in arrival order;
	// the scrambled Zipfian picks indexes into it (deletes swap-remove,
	// so selection stays O(1)).
	present := make([]float64, len(spec.InitKeys), len(spec.InitKeys)+len(spec.InsertStream))
	copy(present, spec.InitKeys)
	zipf := datasets.NewZipfian(rng, maxInt(len(present), 1), datasets.ZipfTheta)

	res := Result{Kind: spec.Kind}
	insertPos := 0
	payload := uint64(1)

	var batchStart time.Time
	batchCount := 0
	recording := spec.InsertLatencies != nil

	start := time.Now()
	if recording {
		batchStart = start
	}
	for res.Ops < spec.Ops {
		// Read (or scan) phase of the cycle.
		for r := 0; r < reads && res.Ops < spec.Ops; r++ {
			if len(present) == 0 {
				break
			}
			key := present[zipf.Scrambled()%len(present)]
			if spec.Kind == RangeScan {
				n := rng.Intn(spec.MaxScanLen) + 1
				got := idx.ScanCount(key, n)
				res.ScannedElems += got
				res.Scans++
				res.Checksum += uint64(got)
			} else {
				v, ok := idx.Get(key)
				if !ok {
					res.Misses++
				}
				res.Checksum += v
				res.Reads++
			}
			res.Ops++
		}
		// Insert phase.
		for w := 0; w < inserts && res.Ops < spec.Ops; w++ {
			if insertPos >= len(spec.InsertStream) {
				break
			}
			key := spec.InsertStream[insertPos]
			insertPos++
			if idx.Insert(key, payload) {
				present = append(present, key)
				zipf.SetN(len(present))
			}
			payload++
			res.Inserts++
			res.Ops++
			if recording {
				batchCount++
				if batchCount == spec.MinibatchSize {
					now := time.Now()
					spec.InsertLatencies.Observe(now.Sub(batchStart))
					batchStart = now
					batchCount = 0
				}
			}
		}
		// Delete phase (extension workload): remove Zipf-chosen live keys.
		for d := 0; d < deletes && res.Ops < spec.Ops; d++ {
			if len(present) == 0 {
				break
			}
			i := zipf.Scrambled() % len(present)
			key := present[i]
			if !idx.Delete(key) {
				res.Misses++
			}
			last := len(present) - 1
			present[i] = present[last]
			present = present[:last]
			res.Deletes++
			res.Ops++
		}
		if inserts == 0 && reads == 0 && deletes == 0 {
			break
		}
		// A cycle with no possible progress (no keys, stream exhausted,
		// read-only with empty index) must terminate.
		if len(present) == 0 && insertPos >= len(spec.InsertStream) {
			break
		}
	}
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Ops) / res.Elapsed.Seconds()
	}
	res.IndexBytes = idx.IndexSizeBytes()
	res.DataBytes = idx.DataSizeBytes()
	res.FinalLen = idx.Len()
	return res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
