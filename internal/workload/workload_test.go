package workload

import (
	"testing"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/learned"
	"repro/internal/stats"
)

// Compile-time checks: all three indexes satisfy Index.
var (
	_ Index = (*core.Tree)(nil)
	_ Index = (*btree.Tree)(nil)
	_ Index = (*learned.Index)(nil)
)

func initKeys(n int) ([]float64, []float64) {
	keys := datasets.GenYCSB(n*2, 42)
	return keys[:n], keys[n:]
}

func TestKindStringsAndMixes(t *testing.T) {
	want := map[Kind]string{
		ReadOnly: "read-only", ReadHeavy: "read-heavy",
		WriteHeavy: "write-heavy", RangeScan: "range-scan",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%v.String() = %q", int(k), k.String())
		}
	}
	if r, i, d := ReadOnly.mix(); r != 1 || i != 0 || d != 0 {
		t.Fatal("read-only mix")
	}
	if r, i, d := ReadHeavy.mix(); r != 19 || i != 1 || d != 0 {
		t.Fatal("read-heavy mix")
	}
	if r, i, d := WriteHeavy.mix(); r != 1 || i != 1 || d != 0 {
		t.Fatal("write-heavy mix")
	}
	if r, i, d := RangeScan.mix(); r != 19 || i != 1 || d != 0 {
		t.Fatal("range-scan mix")
	}
	if r, i, d := DeleteHeavy.mix(); r != 2 || i != 1 || d != 1 {
		t.Fatal("delete-heavy mix")
	}
	if DeleteHeavy.String() != "delete-heavy" {
		t.Fatal("delete-heavy name")
	}
	if len(AllKinds) != len(Kinds)+1 {
		t.Fatal("AllKinds should add exactly the delete-heavy extension")
	}
}

func TestDeleteHeavyChurn(t *testing.T) {
	init, stream := initKeys(10000)
	tr, _ := core.BulkLoad(init, nil, core.Config{})
	res := Run(tr, Spec{Kind: DeleteHeavy, InitKeys: init, InsertStream: stream, Ops: 20000, Seed: 11})
	if res.Deletes == 0 || res.Inserts == 0 {
		t.Fatalf("deletes=%d inserts=%d", res.Deletes, res.Inserts)
	}
	if res.Misses != 0 {
		t.Fatalf("misses = %d; reads and deletes must always hit", res.Misses)
	}
	// Inserts ≈ deletes, so the index size stays near the initial size.
	if res.FinalLen != len(init)+res.Inserts-res.Deletes {
		t.Fatalf("FinalLen %d != %d+%d-%d", res.FinalLen, len(init), res.Inserts, res.Deletes)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Same churn against the B+Tree must agree on final contents.
	bt := btree.BulkLoad(datasets.Sorted(init), nil, btree.Config{})
	res2 := Run(bt, Spec{Kind: DeleteHeavy, InitKeys: init, InsertStream: stream, Ops: 20000, Seed: 11})
	if res2.FinalLen != res.FinalLen || res2.Checksum != res.Checksum {
		t.Fatalf("btree churn diverged: len %d vs %d, sum %d vs %d",
			res2.FinalLen, res.FinalLen, res2.Checksum, res.Checksum)
	}
}

func TestReadOnlyNeverMisses(t *testing.T) {
	init, _ := initKeys(20000)
	tr, err := core.BulkLoad(init, nil, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(tr, Spec{Kind: ReadOnly, InitKeys: init, Ops: 50000, Seed: 1})
	if res.Ops != 50000 || res.Reads != 50000 {
		t.Fatalf("ops=%d reads=%d", res.Ops, res.Reads)
	}
	if res.Misses != 0 {
		t.Fatalf("misses = %d; lookups must always hit (§5.1.2)", res.Misses)
	}
	if res.Inserts != 0 {
		t.Fatalf("read-only performed %d inserts", res.Inserts)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestMixRatiosRespected(t *testing.T) {
	init, stream := initKeys(10000)
	tr, _ := core.BulkLoad(init, nil, core.Config{})
	res := Run(tr, Spec{Kind: ReadHeavy, InitKeys: init, InsertStream: stream, Ops: 40000, Seed: 2})
	frac := float64(res.Inserts) / float64(res.Ops)
	if frac < 0.04 || frac > 0.06 {
		t.Fatalf("read-heavy insert fraction = %v, want ~0.05", frac)
	}
	if res.Misses != 0 {
		t.Fatalf("misses = %d", res.Misses)
	}
	tr2, _ := core.BulkLoad(init, nil, core.Config{})
	res2 := Run(tr2, Spec{Kind: WriteHeavy, InitKeys: init, InsertStream: stream, Ops: 15000, Seed: 3})
	frac2 := float64(res2.Inserts) / float64(res2.Ops)
	if frac2 < 0.45 || frac2 > 0.55 {
		t.Fatalf("write-heavy insert fraction = %v, want ~0.5", frac2)
	}
	if res2.FinalLen != len(init)+res2.Inserts {
		t.Fatalf("FinalLen %d != init %d + inserts %d", res2.FinalLen, len(init), res2.Inserts)
	}
}

func TestInsertStreamExhaustionFallsBackToReads(t *testing.T) {
	init, _ := initKeys(5000)
	stream := init[:0] // empty stream
	tr, _ := core.BulkLoad(init, nil, core.Config{})
	res := Run(tr, Spec{Kind: WriteHeavy, InitKeys: init, InsertStream: stream, Ops: 10000, Seed: 4})
	if res.Inserts != 0 {
		t.Fatalf("inserted %d with empty stream", res.Inserts)
	}
	if res.Ops != 10000 {
		t.Fatalf("ops = %d; should continue with reads", res.Ops)
	}
}

func TestEmptyIndexReadOnlyTerminates(t *testing.T) {
	tr := core.New(core.Config{})
	res := Run(tr, Spec{Kind: ReadOnly, Ops: 1000, Seed: 5})
	if res.Ops != 0 {
		t.Fatalf("ops = %d on empty index", res.Ops)
	}
}

func TestRangeScanCountsElements(t *testing.T) {
	init, stream := initKeys(20000)
	tr, _ := core.BulkLoad(init, nil, core.Config{})
	res := Run(tr, Spec{Kind: RangeScan, InitKeys: init, InsertStream: stream, Ops: 5000, Seed: 6, MaxScanLen: 100})
	if res.Scans == 0 {
		t.Fatal("no scans")
	}
	if res.ScannedElems == 0 {
		t.Fatal("no scanned elements")
	}
	avg := float64(res.ScannedElems) / float64(res.Scans)
	if avg < 25 || avg > 75 {
		t.Fatalf("mean scan length %v, want ~50 for uniform [1,100]", avg)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	init, stream := initKeys(10000)
	run := func() Result {
		tr, _ := core.BulkLoad(init, nil, core.Config{})
		return Run(tr, Spec{Kind: ReadHeavy, InitKeys: init, InsertStream: stream, Ops: 20000, Seed: 7})
	}
	a, b := run(), run()
	if a.Checksum != b.Checksum || a.Ops != b.Ops || a.Inserts != b.Inserts {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestSameChecksumAcrossIndexes(t *testing.T) {
	// The workload result must be index-independent: ALEX and B+Tree
	// return the same payloads for the same op sequence.
	init, stream := initKeys(10000)
	sorted := datasets.Sorted(init)
	alexT, _ := core.BulkLoad(init, nil, core.Config{})
	btreeT := btree.BulkLoad(sorted, nil, btree.Config{})
	spec := Spec{Kind: WriteHeavy, InitKeys: init, InsertStream: stream, Ops: 20000, Seed: 8}
	ra := Run(alexT, spec)
	rb := Run(btreeT, spec)
	if ra.Checksum != rb.Checksum {
		t.Fatalf("checksum mismatch: alex %d vs btree %d", ra.Checksum, rb.Checksum)
	}
	if ra.FinalLen != rb.FinalLen {
		t.Fatalf("final length mismatch: %d vs %d", ra.FinalLen, rb.FinalLen)
	}
}

func TestInsertLatencyRecording(t *testing.T) {
	init, stream := initKeys(3000)
	tr, _ := core.BulkLoad(init, nil, core.Config{})
	rec := stats.NewLatencyRecorder(16)
	Run(tr, Spec{
		Kind: WriteHeavy, InitKeys: init, InsertStream: stream,
		Ops: 6000, Seed: 9, InsertLatencies: rec, MinibatchSize: 500,
	})
	if rec.Count() < 4 {
		t.Fatalf("recorded %d minibatches, want several", rec.Count())
	}
	if rec.Max() <= 0 {
		t.Fatal("non-positive latency")
	}
}

func TestSizesReported(t *testing.T) {
	init, _ := initKeys(10000)
	tr, _ := core.BulkLoad(init, nil, core.Config{})
	res := Run(tr, Spec{Kind: ReadOnly, InitKeys: init, Ops: 1000, Seed: 10})
	if res.IndexBytes <= 0 || res.DataBytes <= 0 {
		t.Fatalf("sizes: %d / %d", res.IndexBytes, res.DataBytes)
	}
}
