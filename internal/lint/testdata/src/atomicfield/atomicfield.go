// Package atomicfield is an alexvet fixture: atomic-typed and
// //alex:atomic-annotated fields copied, overwritten, or leaked, next
// to the atomic access shapes the analyzer must accept.
package atomicfield

import "sync/atomic"

type node struct{ next *node }

type table struct {
	head atomic.Pointer[node]
	cnt  atomic.Uint64
	//alex:atomic
	word uint32
}

func good(t *table, n *node) {
	t.head.Store(n)
	_ = t.head.Load()
	t.cnt.Add(1)
	atomic.AddUint32(&t.word, 1)
	_ = atomic.LoadUint32(&t.word)
	p := &t.cnt
	p.Add(1)
}

func copies(t *table) atomic.Uint64 {
	return t.cnt // want `used as a value`
}

func overwrite(t *table) {
	t.cnt = atomic.Uint64{} // want `overwrites atomic field`
}

func plainStore(t *table) {
	t.word = 1 // want `accessed non-atomically`
}

func escape(t *table) *uint32 {
	return &t.word // want `escapes outside a sync/atomic call`
}
