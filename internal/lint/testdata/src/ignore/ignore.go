// Package ignore is an alexvet fixture for the suppression directive:
// a reasoned //alexvet:ignore suppresses findings on its line or the
// line below, and a bare directive (no reason) is itself a finding.
package ignore

import "errors"

var errSeam = errors.New("seam")

type file struct{}

func (file) Sync() error { return errSeam }

func suppressedSameLine(f file) {
	_ = f.Sync() //alexvet:ignore fixture: same-line directives suppress the finding here
}

func suppressedLineAbove(f file) {
	//alexvet:ignore fixture: directives on the line above also apply
	_ = f.Sync()
}

//alexvet:ignore
func bare() {}
