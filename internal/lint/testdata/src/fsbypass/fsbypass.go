// Package fsbypass is an alexvet fixture: direct os file operations
// and *os.File handles that bypass the faultfs seam, next to the os
// predicates and constants the analyzer must keep allowing.
package fsbypass

import (
	"errors"
	"io"
	"os"
)

func open(name string) error {
	f, err := os.Open(name) // want `os.Open bypasses the faultfs seam` `f holds a \*os.File`
	if err != nil {
		return err
	}
	return f.Close() // want `\(\*os.File\).Close bypasses the faultfs seam`
}

func mkdir(dir string) error {
	return os.MkdirAll(dir, 0o755) // want `os.MkdirAll bypasses the faultfs seam`
}

func handle(f *os.File) error { // want `f holds a \*os.File`
	return f.Sync() // want `\(\*os.File\).Sync bypasses the faultfs seam`
}

func classify(err error) bool {
	return os.IsNotExist(err) || errors.Is(err, os.ErrNotExist)
}

func flags() int { return os.O_CREATE | os.O_RDWR }

func mode() os.FileMode { return 0o644 }

func viaSeam(w io.Writer) error {
	_, err := w.Write([]byte("through the interface"))
	return err
}
