// Package locknest is an alexvet fixture: peer-lock nesting (the same
// field on two different receivers) and lock-accumulating loops, next
// to the hierarchy, sequential, per-iteration, and whitelisted shapes
// the analyzer must accept.
package locknest

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

type tree struct {
	gate   sync.RWMutex
	shards []*shard
}

func peerNest(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want `acquired while holding peer lock`
	b.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

func peerNestDeferred(a, b *shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `acquired while holding peer lock`
	b.n++
	b.mu.Unlock()
}

func accumulate(t *tree) {
	t.gate.Lock()
	for _, s := range t.shards {
		s.mu.Lock() // want `loop acquires`
	}
	t.gate.Unlock()
}

// hierarchy is legal: gate and shard mutex are different levels of the
// documented lock order, not peers.
func hierarchy(t *tree, s *shard) {
	t.gate.RLock()
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	t.gate.RUnlock()
}

func sequential(a, b *shard) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func perIteration(t *tree) {
	for _, s := range t.shards {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

// lockAllRead is the whitelisted consistent-cut shape: every shard in
// one canonical order behind the exclusive gate.
func lockAllRead(t *tree) {
	t.gate.Lock()
	for _, s := range t.shards {
		s.mu.Lock()
	}
	t.gate.Unlock()
}
