// Package epochpair is an alexvet fixture: epoch pins that leak on
// some or all return paths, next to the release shapes the analyzer
// must accept (deferred, flow-matched, closure-owned).
package epochpair

import (
	"errors"

	"repro/internal/lint/testdata/src/epochpair/internal/epoch"
)

var errFixture = errors.New("fixture")

func leak(m *epoch.Manager) {
	m.Pin() // want `Pin without a matching Unpin`
}

func leakOnEarlyReturn(m *epoch.Manager, bad bool) error {
	e := m.Pin()
	if bad {
		return errFixture // want `return leaks the epoch pin`
	}
	m.Unpin(e)
	return nil
}

func leakInSwitch(m *epoch.Manager, n int) int {
	e := m.Pin()
	switch n {
	case 0:
		return 0 // want `return leaks the epoch pin`
	}
	m.Unpin(e)
	return n
}

func deferred(m *epoch.Manager) {
	e := m.Pin()
	defer m.Unpin(e)
}

func closureOwner(m *epoch.Manager) func() {
	e := m.Pin()
	return func() { m.Unpin(e) }
}

func flowMatched(m *epoch.Manager, n int) int {
	e := m.Pin()
	if n > 0 {
		m.Unpin(e)
		return n
	}
	m.Unpin(e)
	return 0
}
