// Package epoch is a minimal stand-in for repro/internal/epoch so the
// epochpair fixture exercises the real matcher: the receiver type is
// named Manager and the package path ends in internal/epoch.
package epoch

// Manager is the stand-in epoch manager.
type Manager struct{ pinned uint64 }

// Pin enters an epoch.
func (m *Manager) Pin() uint64 { m.pinned++; return m.pinned }

// Unpin leaves the epoch entered by Pin.
func (m *Manager) Unpin(e uint64) { _ = e }
