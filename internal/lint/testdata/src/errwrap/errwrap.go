// Package errwrap is an alexvet fixture: durability errors discarded
// with a blank assign, swallowed by an err != nil branch that returns
// nil, or flattened by fmt.Errorf without %w — next to the handled,
// wrapped, and benign-classifier shapes the analyzer must accept.
package errwrap

import (
	"errors"
	"fmt"
	"os"
)

var errSeam = errors.New("seam")

type file struct{}

func (file) Sync() error { return errSeam }

func discard(f file) {
	_ = f.Sync() // want `discarded with`
}

func swallow(f file) error {
	err := f.Sync()
	if err != nil {
		return nil // want `the failure is swallowed`
	}
	return nil
}

func flatten(err error) error {
	return fmt.Errorf("sync failed: %v", err) // want `without %w`
}

func wrapped(err error) error {
	return fmt.Errorf("sync failed: %w", err)
}

func handled(f file) error {
	if err := f.Sync(); err != nil {
		return fmt.Errorf("flush: %w", err)
	}
	return nil
}

// classified is the benign-classifier idiom: the error branch first
// gives real failures an escape path, so the later nil return is a
// classified benign case, not a swallow.
func classified(name string) error {
	if _, err := os.Stat(name); err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		return nil
	}
	return nil
}
