//go:build race

package optparity

func fast(x, y int) int { return x + y }

func onlyRace() {}
