//go:build !race

// Package optparity is an alexvet fixture: a race/!race file pair
// whose declared surfaces have drifted (a decl missing from each
// world and a signature that differs between them).
package optparity // want `func onlyProd is missing from the race build` `func onlyRace is missing from the !race build` `func fast signature differs`

func fast(x int) int { return x }

func onlyProd() {}
