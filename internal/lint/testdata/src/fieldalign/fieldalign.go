// Package fieldalign is an alexvet fixture: a struct whose field
// order wastes padding next to its packed equivalent.
package fieldalign

type padded struct { // want `bytes of padding per value`
	a bool
	b float64
	c bool
}

type packed struct {
	b float64
	a bool
	c bool
}

func use() (padded, packed) { return padded{}, packed{} }
