//go:build race

package optparityok

const tuning = 1

type guard struct{}

func fast(x int) int { return x + tuning + 0 }

func (guard) check() {}
