//go:build !race

// Package optparityok is an alexvet fixture: a race/!race file pair
// whose surfaces match exactly — optparity must stay silent.
package optparityok

const tuning = 1

type guard struct{}

func fast(x int) int { return x + tuning }

func (guard) check() {}
