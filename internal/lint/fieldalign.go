package lint

import (
	"go/ast"
	"go/types"
	"runtime"
	"sort"
	"strings"
)

// FieldAlign is the advisory struct-layout pass for the hot packages:
// it measures each struct's size under the gc layout rules and
// compares it against the best achievable permutation of its fields.
// Findings are advisory (printed, never blocking): field order in hot
// structs also encodes cache-line intent, so a human decides whether
// a suggested reorder is safe — but the wasted bytes are measured in
// every CI log instead of assumed away.
var FieldAlign = &Analyzer{
	Name: "fieldalign",
	Doc: "advisory: structs whose field order wastes padding bytes versus the " +
		"optimal permutation, with the suggested order",
	Scopes: []Scope{
		{Pkg: "internal/core"},
		{Pkg: "internal/leafbase"},
	},
	Advisory: true,
	Run:      runFieldAlign,
}

func runFieldAlign(pass *Pass) error {
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Defs[ts.Name]
			if !ok {
				return true
			}
			tstruct, ok := obj.Type().Underlying().(*types.Struct)
			if !ok || tstruct.NumFields() < 2 {
				return true
			}
			cur := sizes.Sizeof(tstruct)
			best, order := bestLayout(sizes, tstruct)
			if best < cur {
				pass.Reportf(st.Pos(),
					"struct %s is %d bytes; reordering fields to (%s) makes it %d — %d bytes of padding per value",
					ts.Name.Name, cur, strings.Join(order, ", "), best, cur-best)
			}
			return true
		})
	}
	return nil
}

// bestLayout computes the smallest struct size achievable by
// reordering fields: the classic greedy order (descending alignment,
// then descending size) is optimal for gc's layout rules, with the
// zero-size-final-field caveat handled by measuring the real
// permutation through types.Sizes rather than summing by hand.
func bestLayout(sizes types.Sizes, st *types.Struct) (int64, []string) {
	n := st.NumFields()
	fields := make([]*types.Var, n)
	for i := 0; i < n; i++ {
		fields[i] = st.Field(i)
	}
	sort.SliceStable(fields, func(i, j int) bool {
		ai, aj := sizes.Alignof(fields[i].Type()), sizes.Alignof(fields[j].Type())
		if ai != aj {
			return ai > aj
		}
		si, sj := sizes.Sizeof(fields[i].Type()), sizes.Sizeof(fields[j].Type())
		return si > sj
	})
	// A zero-sized field must not end the struct (it would force a
	// full padding slot to give it a distinct address); the greedy
	// order puts them last, so bump one non-zero field behind them.
	if n > 1 && sizes.Sizeof(fields[n-1].Type()) == 0 {
		for i := n - 1; i >= 0; i-- {
			if sizes.Sizeof(fields[i].Type()) != 0 {
				f := fields[i]
				copy(fields[i:], fields[i+1:])
				fields[n-1] = f
				break
			}
		}
	}
	reordered := types.NewStruct(fields, nil)
	names := make([]string, n)
	for i, f := range fields {
		names[i] = f.Name()
	}
	return sizes.Sizeof(reordered), names
}
