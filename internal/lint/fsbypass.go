package lint

import (
	"go/ast"
	"go/types"
)

// fsBypassBanned are the package-level os functions that perform file
// or directory operations the faultfs seam models. Predicates
// (IsNotExist), constants (O_CREATE), and types (FileMode, FileInfo,
// DirEntry) stay allowed — they carry no I/O.
var fsBypassBanned = map[string]bool{
	"Open": true, "Create": true, "OpenFile": true, "CreateTemp": true,
	"Rename": true, "Remove": true, "RemoveAll": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"ReadDir": true, "ReadFile": true, "WriteFile": true,
	"Stat": true, "Lstat": true, "Truncate": true, "Chtimes": true,
	"Link": true, "Symlink": true, "NewFile": true,
}

// FSBypass forbids direct os file operations — and any (*os.File)
// method call — inside the durability stack. Every file op there must
// go through internal/faultfs (the FS/File seam): a bypassed op is an
// op the fault-torture matrix can never exercise, so its failure
// handling is untested by construction. docs/failure-model.md states
// the seam contract; this analyzer enforces it.
var FSBypass = &Analyzer{
	Name: "fsbypass",
	Doc: "forbid direct os.* file operations and (*os.File) method calls in the " +
		"durability stack; all file I/O must go through the internal/faultfs seam",
	Scopes: []Scope{
		{Pkg: "internal/wal"},
		{Pkg: "internal/pagestore"},
		// In the root package only the durability files are in scope;
		// the whole package is still analyzed (cross-file type facts),
		// but only findings inside these files are reported.
		{Pkg: "", Files: []string{"durable.go", "snapshot.go", "replication.go"}},
	},
	Run: runFSBypass,
}

func runFSBypass(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name := usedPackageFunc(pass.Info, call); pkg == "os" && fsBypassBanned[name] {
				pass.Reportf(call.Pos(),
					"os.%s bypasses the faultfs seam; route it through faultfs.FS so the fault-torture matrix can exercise its failure path", name)
				return true
			}
			if recvPkg, recvType, name := methodOn(pass.Info, call); recvPkg == "os" && recvType == "File" {
				pass.Reportf(call.Pos(),
					"(*os.File).%s bypasses the faultfs seam; hold a faultfs.File instead", name)
			}
			return true
		})
	}
	// A declared *os.File anywhere in the package is the escape hatch
	// that makes the method-call check evadable (assign the file to a
	// variable, call through it elsewhere); ban holding the concrete
	// type at all.
	for id, obj := range pass.Info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			continue
		}
		if named := namedOf(v.Type()); named != nil && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File" {
			pass.Reportf(id.Pos(),
				"%s holds a *os.File, bypassing the faultfs seam; hold a faultfs.File instead", id.Name)
		}
	}
	return nil
}
