package lint

import (
	"go/ast"
)

// EpochPair checks that every epoch.Manager Pin is matched by an
// Unpin on all return paths of the function that pinned. A leaked pin
// holds every structure retired after it reachable forever — the
// "no GC-pressure cliff" guarantee of internal/epoch dies silently —
// so the pairing is enforced like lost-cancel vetting: the pin must be
// released by a deferred Unpin, an Unpin before each return, or by
// handing the unpin duty to a function literal (the snapshot-release
// closure pattern IndexSnapshot uses).
var EpochPair = &Analyzer{
	Name: "epochpair",
	Doc: "every epoch.Manager Pin must be matched by an Unpin on all return " +
		"paths (deferred, flow-matched, or owned by an escaping closure)",
	Run: runEpochPair,
}

func runEpochPair(pass *Pass) error {
	funcBodies(pass.Files, func(name string, node ast.Node, body *ast.BlockStmt) {
		// Collect the Pin calls belonging to THIS body (nested
		// literals are analyzed as their own bodies).
		var pins []*ast.CallExpr
		walkStack(body, func(n ast.Node, stack []ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isEpochCall(pass, call, "Pin") {
				pins = append(pins, call)
			}
			return true
		})
		for _, pin := range pins {
			checkPin(pass, body, pin)
		}
	})
	return nil
}

// isEpochCall reports whether call invokes the named method on an
// epoch.Manager.
func isEpochCall(pass *Pass, call *ast.CallExpr, method string) bool {
	recvPkg, recvType, name := methodOn(pass.Info, call)
	if name != method || recvType != "Manager" {
		return false
	}
	return recvPkg == "repro/internal/epoch" || recvPkg == "internal/epoch" ||
		// Fixtures load the epoch package under its module-derived
		// path; match on the trailing element to stay portable.
		hasSuffixPath(recvPkg, "internal/epoch")
}

func hasSuffixPath(path, suffix string) bool {
	return len(path) > len(suffix) && path[len(path)-len(suffix)-1] == '/' && path[len(path)-len(suffix):] == suffix
}

// checkPin verifies one Pin call is released on every path out of
// body. The analysis is statement-ordered, not a full CFG: it walks
// the statements after the Pin in the Pin's own block, flagging any
// return reachable before a release. A release is a plain Unpin call,
// a deferred Unpin, or the creation of a function literal containing
// an Unpin (ownership handed to the closure — the snapshot pattern).
func checkPin(pass *Pass, body *ast.BlockStmt, pin *ast.CallExpr) {
	// If no Unpin appears anywhere in the body (including closures),
	// the pin leaks unconditionally.
	if !containsCallNamed(body, "Unpin") {
		pass.Reportf(pin.Pos(), "epoch.Pin without a matching Unpin in this function; the pin leaks and retired structures are held forever")
		return
	}
	block, idx := enclosingStmt(body, pin)
	if block == nil {
		// Pin buried in an expression we cannot order statements
		// around (e.g. an argument); the body-wide Unpin presence
		// above is the best available check.
		return
	}
	for _, stmt := range block.List[idx+1:] {
		if releasesPin(stmt) {
			return
		}
		flagReturnsIn(pass, stmt)
	}
	// Falling off the end of the block: either the block is the whole
	// function body (implicit return) or control continues in the
	// enclosing statement. Conservatively accept — the body-wide
	// Unpin-presence check already ran, and over-reporting here would
	// flag loops that release on a later iteration's branch.
}

// enclosingStmt finds the statement list containing the statement that
// (transitively) contains the call, returning the block and index.
func enclosingStmt(body *ast.BlockStmt, call *ast.CallExpr) (*ast.BlockStmt, int) {
	var block *ast.BlockStmt
	idx := -1
	var walk func(b *ast.BlockStmt) bool
	walk = func(b *ast.BlockStmt) bool {
		for i, stmt := range b.List {
			if !within(stmt, call) {
				continue
			}
			// Prefer the innermost block: recurse into nested blocks
			// of this statement first.
			inner := innermostBlock(stmt, call)
			if inner != nil {
				if walk(inner) {
					return true
				}
			}
			block, idx = b, i
			return true
		}
		return false
	}
	walk(body)
	return block, idx
}

// within reports whether node's range covers target.
func within(node ast.Node, target ast.Node) bool {
	return node.Pos() <= target.Pos() && target.End() <= node.End()
}

// innermostBlock returns a block statement inside stmt containing the
// call, or nil.
func innermostBlock(stmt ast.Stmt, call *ast.CallExpr) *ast.BlockStmt {
	var found *ast.BlockStmt
	ast.Inspect(stmt, func(n ast.Node) bool {
		if b, ok := n.(*ast.BlockStmt); ok && within(b, call) {
			found = b
		}
		return true
	})
	return found
}

// releasesPin reports whether stmt releases the pin: an Unpin call in
// statement position or deferred, or a function literal created here
// that contains the Unpin (ownership transfer).
func releasesPin(stmt ast.Stmt) bool {
	release := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if release {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			if containsCallNamed(x, "Unpin") {
				release = true
			}
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Unpin" {
				release = true
			}
		}
		return !release
	})
	return release
}

// flagReturnsIn reports every return statement nested in stmt that is
// not preceded (within its own nested block, in source order) by a
// release.
func flagReturnsIn(pass *Pass, stmt ast.Stmt) {
	if ret, ok := stmt.(*ast.ReturnStmt); ok {
		reportLeakedReturn(pass, ret)
		return
	}
	flagList := func(list []ast.Stmt) bool {
		// Walk the statements in order, stopping at a release: returns
		// after a release inside the same branch are fine.
		for _, s := range list {
			if releasesPin(s) {
				return false
			}
			if ret, ok := s.(*ast.ReturnStmt); ok {
				reportLeakedReturn(pass, ret)
			}
		}
		return true
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			return flagList(x.List)
		case *ast.CaseClause:
			return flagList(x.Body)
		case *ast.CommClause:
			return flagList(x.Body)
		}
		return true
	})
}

func reportLeakedReturn(pass *Pass, ret *ast.ReturnStmt) {
	pass.Reportf(ret.Pos(), "return leaks the epoch pin taken above; Unpin (or defer it) before returning")
}
