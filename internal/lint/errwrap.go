package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// errwrapDiscardMethods are methods whose error return carries a
// durability fact: discarding one with `_ =` silently swallows an
// injected (or real) disk failure, leaving the degradation contract
// unexercised. Close is deliberately absent on read-only paths —
// idiomatic `defer f.Close()` drops the error in statement position,
// not via `_ =` — but an explicit `_ = f.Close()` on any seam type is
// still a conscious swallow and is flagged.
var errwrapDiscardMethods = map[string]bool{
	"Sync": true, "SyncDir": true, "Flush": true, "Close": true,
	"Write": true, "WriteAt": true, "Truncate": true,
	"Rename": true, "Remove": true, "MkdirAll": true, "Append": true,
}

// ErrWrap enforces the error contract of the durability write path
// (docs/failure-model.md): degradation errors must keep their
// errors.Is chain (an error formatted with %v instead of %w strips
// ErrDegraded and every errors.Is caller silently stops matching), a
// durability error must never be discarded with `_ =`, and the
// `if err != nil { return nil }` swallow pattern is forbidden.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "durability errors keep their errors.Is chain (%w, not %v), are never " +
		"blank-discarded, and never swallowed by `if err != nil { return nil }`",
	// internal/faultfs is deliberately out of scope: the injector's own
	// best-effort discards (truncating files during a simulated crash)
	// ARE the crash semantics, not the write path under contract.
	Scopes: []Scope{
		{Pkg: "internal/wal"},
		{Pkg: "internal/pagestore"},
		{Pkg: "", Files: []string{"durable.go", "snapshot.go", "replication.go"}},
	},
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				checkBlankDiscard(pass, x)
			case *ast.IfStmt:
				checkNilSwallow(pass, x)
			case *ast.CallExpr:
				checkErrorfWrap(pass, x)
			}
			return true
		})
	}
	return nil
}

// checkBlankDiscard flags `_ = x.Sync()`-shaped statements where the
// discarded call is a durability-surface method returning an error.
func checkBlankDiscard(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || id.Name != "_" {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	if tv, ok := pass.Info.Types[call]; !ok || !isErrorType(tv.Type) {
		return
	}
	var name string
	if _, _, m := methodOn(pass.Info, call); m != "" {
		name = m
	} else if _, fn := usedPackageFunc(pass.Info, call); fn != "" {
		name = fn
	}
	if errwrapDiscardMethods[name] {
		pass.Reportf(assign.Pos(),
			"durability error from %s discarded with `_ =`; handle it (degrade, log, or return) — an injected fault here vanishes silently",
			exprString(pass.Fset, call.Fun))
	}
}

// checkNilSwallow flags `if err != nil { return nil }`: an error was
// observed and then deliberately replaced by success. Conversions that
// keep the error (return err, return wrapped) or return a sentinel
// are fine; only the all-nil-error return inside the error branch is
// the swallow. The classifier idiom
// `if err != nil { if !os.IsNotExist(err) { return nil, err }; ... }`
// is also fine: an earlier statement in the branch gives the error an
// escape path, so the later nil return is a classified benign case,
// not a swallow.
func checkNilSwallow(pass *Pass, ifstmt *ast.IfStmt) {
	bin, ok := ifstmt.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "!=" || !isNilIdent(bin.Y) {
		return
	}
	if tv, ok := pass.Info.Types[bin.X]; !ok || !isErrorType(tv.Type) {
		return
	}
	// The enclosing function's error result positions.
	errSlots := errorResultSlots(pass, ifstmt)
	if len(errSlots) == 0 {
		return
	}
	for _, stmt := range ifstmt.Body.List {
		if containsErrorEscape(stmt, errSlots) {
			return // the error can still propagate; later nil returns classified it benign
		}
		ret, ok := stmt.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			continue
		}
		allNil := true
		for _, slot := range errSlots {
			if slot >= len(ret.Results) || !isNilIdent(ret.Results[slot]) {
				allNil = false
				break
			}
		}
		if allNil {
			pass.Reportf(ret.Pos(),
				"error checked non-nil but nil returned in its place; the failure is swallowed — return the error (or wrap it)")
		}
	}
}

// containsErrorEscape reports whether stmt contains a return that
// propagates a non-nil value in an error slot (function literals are
// skipped — their returns leave a different function).
func containsErrorEscape(stmt ast.Stmt, errSlots []int) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		for _, slot := range errSlots {
			if slot < len(ret.Results) && !isNilIdent(ret.Results[slot]) {
				found = true
			}
		}
		return true
	})
	return found
}

// errorResultSlots returns the result indices with error type for the
// function enclosing node (via the innermost FuncDecl/FuncLit whose
// range covers it).
func errorResultSlots(pass *Pass, node ast.Node) []int {
	var ftype *ast.FuncType
	for _, f := range pass.Files {
		if !within(f, node) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil && within(d.Body, node) {
					ftype = d.Type
				}
			case *ast.FuncLit:
				if within(d.Body, node) {
					ftype = d.Type
				}
			}
			return true
		})
	}
	if ftype == nil || ftype.Results == nil {
		return nil
	}
	var slots []int
	i := 0
	for _, field := range ftype.Results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		tv, ok := pass.Info.Types[field.Type]
		for j := 0; j < n; j++ {
			if ok && isErrorType(tv.Type) {
				slots = append(slots, i)
			}
			i++
		}
	}
	return slots
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// checkErrorfWrap flags fmt.Errorf calls that format an error-typed
// argument without a single %w: the produced error loses its
// errors.Is chain, so ErrDegraded (and injected faultfs sentinels)
// stop matching downstream.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if pkg, name := usedPackageFunc(pass.Info, call); pkg != "fmt" || name != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		tv, ok := pass.Info.Types[arg]
		if ok && isErrorType(tv.Type) {
			pass.Reportf(call.Pos(),
				"fmt.Errorf formats an error without %%w; the errors.Is chain (ErrDegraded, injected fault sentinels) is stripped")
			return
		}
	}
}
